// Integration tests for the simulated kernel: process execution, syscalls,
// fork/exec/wait, signals and handlers, job control, pipes, timers, and the
// ptrace baseline.
#include <gtest/gtest.h>

#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

// Runs a program to completion and returns its wait status.
int RunProgram(Sim& sim, const std::string& src,
               const std::vector<std::string>& argv = {}) {
  auto img = sim.InstallProgram("/bin/prog", src);
  EXPECT_TRUE(img.ok());
  auto pid = sim.Start("/bin/prog", argv);
  EXPECT_TRUE(pid.ok());
  auto st = sim.kernel().RunToExit(*pid);
  EXPECT_TRUE(st.ok()) << "program did not exit: " << ErrnoName(st.error());
  return st.ok() ? *st : -1;
}

TEST(KernelExec, HelloWorldWritesToConsole) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_write
      ldi r1, 1           ; stdout
      ldi r2, msg
      ldi r3, 14
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "hello, world!\n"
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
  EXPECT_EQ(sim.ConsoleOutput(), "hello, world!\n");
}

TEST(KernelExec, ExitStatusPropagates) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_exit
      ldi r1, 42
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 42);
}

TEST(KernelExec, ArgvIsDeliveredOnTheStack) {
  Sim sim;
  // Prints argv[1].
  int st = RunProgram(sim, R"(
      ; r1 = argc, r2 = argv
      ldw r4, [r2+4]      ; argv[1]
      ; strlen
      mov r5, r4
len:  ldb r6, [r5]
      cmpi r6, 0
      jz out
      addi r5, 1
      jmp len
out:  sub r5, r4          ; length
      ldi r0, SYS_write
      ldi r1, 1
      mov r2, r4
      mov r3, r5
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )",
                      {"prog", "argument-one"});
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(sim.ConsoleOutput(), "argument-one");
}

TEST(KernelExec, SpawnFailsForMissingFile) {
  Sim sim;
  auto pid = sim.Start("/bin/nonexistent");
  ASSERT_FALSE(pid.ok());
  EXPECT_EQ(pid.error(), Errno::kENOENT);
}

TEST(KernelExec, SpawnFailsWithoutExecPermission) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/noexec", "  nop\n", 0644);
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/noexec", {}, Creds::User(100, 100));
  ASSERT_FALSE(pid.ok());
  EXPECT_EQ(pid.error(), Errno::kEACCES);
}

TEST(KernelExec, BadMagicIsENOEXEC) {
  Sim sim;
  std::vector<uint8_t> junk(8192, 0x5A);
  ASSERT_TRUE(sim.kernel().WriteFileAt("/bin/junk", junk, 0755).ok());
  auto pid = sim.Start("/bin/junk");
  ASSERT_FALSE(pid.ok());
  EXPECT_EQ(pid.error(), Errno::kENOEXEC);
}

TEST(KernelFork, ParentAndChildBothRun) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ; parent: wait for child, exit with child's code
      ldi r0, SYS_wait
      sys
      mov r5, r1          ; status
      ldi r6, 8
      shr r5, r6          ; exit code
      ldi r0, SYS_exit
      mov r1, r5
      sys
child:
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, cmsg
      ldi r3, 6
      sys
      ldi r0, SYS_exit
      ldi r1, 7
      sys
      .data
cmsg: .asciz "child\n"
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 7);
  EXPECT_EQ(sim.ConsoleOutput(), "child\n");
}

TEST(KernelFork, ForkedChildGetsCopyOnWriteMemory) {
  Sim sim;
  // Parent writes to a data word after fork; child must see the old value.
  int st = RunProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ; parent: overwrite the shared-looking word, then wait
      ldi r4, 999
      ldi r5, var
      stw r4, [r5]
      ldi r0, SYS_wait
      sys
      mov r5, r1
      ldi r6, 8
      shr r5, r6
      ldi r0, SYS_exit
      mov r1, r5
      sys
child:
      ; give the parent time to clobber its copy
      ldi r0, SYS_sleep
      ldi r1, 3000
      sys
      ldi r5, var
      ldw r4, [r5]
      ldi r0, SYS_exit
      mov r1, r4
      sys
      .data
var:  .word 55
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 55) << "child saw parent's write: COW broken";
}

TEST(KernelExecSyscall, ExecReplacesTheImage) {
  Sim sim;
  auto second = sim.InstallProgram("/bin/second", R"(
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, m
      ldi r3, 7
      sys
      ldi r0, SYS_exit
      ldi r1, 5
      sys
      .data
m:    .asciz "second\n"
  )");
  ASSERT_TRUE(second.ok());
  int st = RunProgram(sim, R"(
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ; not reached on success
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/bin/second"
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 5);
  EXPECT_EQ(sim.ConsoleOutput(), "second\n");
}

TEST(KernelSignal, DefaultActionTerminates) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/prog", R"(
spin: jmp spin
  )");
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  // Let it run a little, then kill it.
  for (int i = 0; i < 10; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(sim.kernel().Kill(sim.controller(), *pid, SIGTERM).ok());
  auto st = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(WIfSignaled(*st));
  EXPECT_EQ(WTermSig(*st), SIGTERM);
}

TEST(KernelSignal, HandlerRunsAndSigreturnRestores) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ; install handler for SIGUSR1
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR1
      ldi r2, handler
      ldi r3, 0
      sys
      ; send it to ourselves
      ldi r0, SYS_getpid
      sys
      mov r5, r0
      ldi r0, SYS_kill
      mov r1, r5
      ldi r2, SIGUSR1
      sys
      ; after the handler returns here via sigreturn
      ldi r0, SYS_exit
      ldi r1, 0
      sys
handler:
      ; r1 = signal number; write a marker
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, mark
      ldi r3, 3
      sys
      ldi r0, SYS_sigreturn
      sys
      .data
mark: .asciz "hi\n"
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
  EXPECT_EQ(sim.ConsoleOutput(), "hi\n");
}

TEST(KernelSignal, IgnoredSignalIsDiscarded) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR1
      ldi r2, SIG_IGN
      ldi r3, 0
      sys
      ldi r0, SYS_getpid
      sys
      mov r5, r0
      ldi r0, SYS_kill
      mov r1, r5
      ldi r2, SIGUSR1
      sys
      ldi r0, SYS_exit
      ldi r1, 21
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 21);
}

TEST(KernelSignal, HeldSignalDeliveredOnUnblock) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ; handler increments nothing; it writes "X"
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR1
      ldi r2, handler
      ldi r3, 0
      sys
      ; block SIGUSR1
      ldi r0, SYS_sigprocmask
      ldi r1, 0           ; SIG_BLOCK
      ldi r2, mask
      ldi r3, 0
      sys
      ; raise it: must NOT be delivered yet
      ldi r0, SYS_getpid
      sys
      mov r5, r0
      ldi r0, SYS_kill
      mov r1, r5
      ldi r2, SIGUSR1
      sys
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, before
      ldi r3, 1
      sys
      ; unblock: delivery happens now
      ldi r0, SYS_sigprocmask
      ldi r1, 1           ; SIG_UNBLOCK
      ldi r2, mask
      ldi r3, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
handler:
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, xmark
      ldi r3, 1
      sys
      ldi r0, SYS_sigreturn
      sys
      .data
mask:   .word 0x8000, 0, 0, 0   ; bit 15 = SIGUSR1 (16)
before: .asciz "B"
xmark:  .asciz "X"
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(sim.ConsoleOutput(), "BX") << "signal must be deferred until unblocked";
}

TEST(KernelSignal, SigKillCannotBeCaught) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_sigaction
      ldi r1, SIGKILL
      ldi r2, handler
      ldi r3, 0
      sys
      ; sigaction must fail; spin regardless
spin: jmp spin
handler:
      ldi r0, SYS_sigreturn
      sys
  )");
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  for (int i = 0; i < 20; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(sim.kernel().Kill(sim.controller(), *pid, SIGKILL).ok());
  auto st = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(WIfSignaled(*st));
  EXPECT_EQ(WTermSig(*st), SIGKILL);
}

TEST(KernelSignal, FaultBecomesSignalWithCoreDefault) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r1, 1
      ldi r2, 0
      div r1, r2          ; FLTIZDIV -> SIGFPE -> core
  )");
  EXPECT_TRUE(WIfSignaled(st));
  EXPECT_EQ(WTermSig(st), SIGFPE);
  EXPECT_TRUE(st & 0x80) << "core-dump bit";
}

TEST(KernelSignal, FaultSignalCanBeCaught) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_sigaction
      ldi r1, SIGSEGV
      ldi r2, handler
      ldi r3, 0
      sys
      ldi r4, 0x100       ; unmapped
      ldw r5, [r4]        ; faults
      ; unreached
      ldi r0, SYS_exit
      ldi r1, 1
      sys
handler:
      ; r2 carries the faulting address
      ldi r0, SYS_exit
      ldi r1, 33
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 33);
}

TEST(KernelSleep, SleepAndAlarm) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ; alarm in 2000 ticks; pause; SIGALRM handler exits 9
      ldi r0, SYS_sigaction
      ldi r1, SIGALRM
      ldi r2, handler
      ldi r3, 0
      sys
      ldi r0, SYS_alarm
      ldi r1, 2000
      sys
      ldi r0, SYS_pause
      sys
      ; pause returns EINTR after the handler; exit 1 if we get here wrongly
      ldi r0, SYS_exit
      ldi r1, 9
      sys
handler:
      ldi r0, SYS_sigreturn
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 9);
}

TEST(KernelSleep, SleepCompletesAfterTicks) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_time
      sys
      mov r5, r0
      ldi r0, SYS_sleep
      ldi r1, 5000
      sys
      ldi r0, SYS_time
      sys
      sub r0, r5
      cmpi r0, 5000
      jge good
      ldi r0, SYS_exit
      ldi r1, 1
      sys
good: ldi r0, SYS_exit
      ldi r1, 0
      sys
  )");
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  auto st = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(WExitCode(*st), 0) << "sleep must last at least the requested ticks";
}

TEST(KernelPipe, PipeCarriesDataBetweenProcesses) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_pipe
      sys
      mov r8, r0          ; read end
      mov r9, r1          ; write end
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ; parent: close write end, read 5 bytes, write them to console
      ldi r0, SYS_close
      mov r1, r9
      sys
      ldi r0, SYS_read
      mov r1, r8
      ldi r2, buf
      ldi r3, 5
      sys
      mov r7, r0          ; bytes read
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, buf
      mov r3, r7
      sys
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r0, SYS_close
      mov r1, r8
      sys
      ldi r0, SYS_write
      mov r1, r9
      ldi r2, msg
      ldi r3, 5
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "pipe!"
      .bss
buf:  .space 16
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(sim.ConsoleOutput(), "pipe!");
}

TEST(KernelPipe, ReadFromClosedWriteEndIsEof) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_pipe
      sys
      mov r8, r0
      mov r9, r1
      ldi r0, SYS_close
      mov r1, r9
      sys
      ldi r0, SYS_read
      mov r1, r8
      ldi r2, buf
      ldi r3, 8
      sys
      ; r0 == 0 -> exit 0
      ldi r1, 77
      cmpi r0, 0
      jnz bad
      ldi r1, 0
bad:  ldi r0, SYS_exit
      sys
      .bss
buf:  .space 8
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelVfork, ParentWaitsUntilChildExecs) {
  Sim sim;
  auto second = sim.InstallProgram("/bin/second", R"(
      ldi r0, SYS_exit
      ldi r1, 3
      sys
  )");
  ASSERT_TRUE(second.ok());
  int st = RunProgram(sim, R"(
      ldi r0, SYS_vfork
      sys
      cmpi r0, 0
      jz child
      ; parent resumes only after child exec'd; reap it
      ldi r0, SYS_wait
      sys
      mov r5, r1
      ldi r6, 8
      shr r5, r6
      ldi r0, SYS_exit
      mov r1, r5
      sys
child:
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/bin/second"
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 3);
}

TEST(KernelLwp, ThreadsShareTheAddressSpace) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ; create a second lwp running at thread with its own stack
      ldi r0, SYS_lwp_create
      ldi r1, thread
      ldi r2, tstack+2048
      sys
      ; main lwp: wait for the flag the thread sets
loop: ldi r5, flag
      ldw r4, [r5]
      cmpi r4, 1
      jnz loop
      ldi r0, SYS_exit
      ldi r1, 0
      sys
thread:
      ldi r4, 1
      ldi r5, flag
      stw r4, [r5]
      ldi r0, SYS_lwp_exit
      sys
      .data
flag: .word 0
      .bss
tstack: .space 2048
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelPtrace, TracemeStopsOnSignalAndParentWaits) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      mov r8, r0          ; child pid
      ; wait: child stops with SIGTRAP-like stop on SIGUSR1
      ldi r0, SYS_wait
      sys
      ; status & 0xFF == 0x7F means stopped
      mov r5, r1
      ldi r6, 0xFF
      and r5, r6
      cmpi r5, 0x7F
      jnz bad
      ; continue the child, clearing the signal: ptrace(PT_CONT=7, pid, 1, 0)
      ldi r0, SYS_ptrace
      ldi r1, 7
      mov r2, r8
      ldi r3, 1
      ldi r4, 0
      sys
      ldi r0, SYS_wait
      sys
      mov r5, r1
      ldi r6, 8
      shr r5, r6
      ldi r0, SYS_exit
      mov r1, r5          ; child's exit code
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 99
      sys
child:
      ldi r0, SYS_ptrace  ; PT_TRACEME
      ldi r1, 0
      sys
      ldi r0, SYS_getpid
      sys
      mov r5, r0
      ldi r0, SYS_kill
      mov r1, r5
      ldi r2, SIGUSR1     ; stops because traced
      sys
      ldi r0, SYS_exit
      ldi r1, 11
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 11);
}

TEST(KernelSuspend, SigsuspendWaitsForSignal) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR2
      ldi r2, handler
      ldi r3, 0
      sys
      ldi r0, SYS_sigsuspend
      ldi r1, emptymask
      sys
      ; EINTR return after handler
      ldi r0, SYS_exit
      ldi r1, 4
      sys
handler:
      ldi r0, SYS_sigreturn
      sys
      .data
emptymask: .word 0, 0, 0, 0
  )");
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  // Let it reach the suspend, then signal it.
  bool asleep = sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(*pid);
    if (p == nullptr) {
      return true;
    }
    Lwp* l = p->MainLwp();
    return l != nullptr && l->state == LwpState::kSleeping;
  });
  ASSERT_TRUE(asleep);
  ASSERT_TRUE(sim.kernel().Kill(sim.controller(), *pid, SIGUSR2).ok());
  auto st = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(WExitCode(*st), 4);
}

TEST(KernelMmap, AnonymousMappingIsZeroFilledAndWritable) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_mmap
      ldi r1, 0x40000000
      ldi r2, 8192
      ldi r3, 6           ; PROT_READ|PROT_WRITE
      ldi r4, 2           ; MAP_PRIVATE
      ldi r5, -1          ; anonymous
      ldi r6, 0
      sys
      mov r8, r0          ; base
      ldw r4, [r8]        ; zero-filled
      cmpi r4, 0
      jnz bad
      ldi r4, 123
      stw r4, [r8+4096]
      ldw r5, [r8+4096]
      cmpi r5, 123
      jnz bad
      ; munmap and verify the access then faults (SIGSEGV, caught -> exit 0)
      ldi r0, SYS_sigaction
      ldi r1, SIGSEGV
      ldi r2, handler
      ldi r3, 0
      sys
      ldi r0, SYS_munmap
      mov r1, r8
      ldi r2, 8192
      sys
      ldw r4, [r8]        ; must fault
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
handler:
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelBrk, BreakGrowsOnRequest) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ; grow the break by 3 pages beyond its current end and store there
      ldi r0, SYS_brk
      ldi r1, 0x80100000  ; well beyond initial break
      sys
      jcs bad
      ldi r4, 7
      ldi r5, 0x800FF000
      stw r4, [r5]
      ldw r6, [r5]
      cmpi r6, 7
      jnz bad
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelStack, StackGrowsAutomatically) {
  Sim sim;
  // Touch memory well below the initial stack allocation.
  int st = RunProgram(sim, R"(
      mov r4, sp
      ldi r5, 0x20000      ; 128K below sp (initial stack is 64K)
      sub r4, r5
      ldi r6, 31
      stw r6, [r4]
      ldw r7, [r4]
      cmpi r7, 31
      jnz bad
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelWait, WaitForMultipleChildren) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r8, 3           ; three children
spawn:
      cmpi r8, 0
      jz reap
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r5, 1
      sub r8, r5
      jmp spawn
child:
      ldi r0, SYS_exit
      ldi r1, 2
      sys
reap:
      ldi r8, 3
reapl:
      cmpi r8, 0
      jz done
      ldi r0, SYS_wait
      sys
      jcs bad
      ldi r5, 1
      sub r8, r5
      jmp reapl
done: ; a fourth wait must fail with ECHILD (carry set)
      ldi r0, SYS_wait
      sys
      jcc bad
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelFiles, OpenWriteReadRoundTrip) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_creat
      ldi r1, path
      ldi r2, 0x1A4       ; 0644
      sys
      jcs bad
      mov r8, r0
      ldi r0, SYS_write
      mov r1, r8
      ldi r2, msg
      ldi r3, 4
      sys
      ldi r0, SYS_close
      mov r1, r8
      sys
      ldi r0, SYS_open
      ldi r1, path
      ldi r2, O_RDONLY
      ldi r3, 0
      sys
      jcs bad
      mov r8, r0
      ldi r0, SYS_read
      mov r1, r8
      ldi r2, buf
      ldi r3, 4
      sys
      cmpi r0, 4
      jnz bad
      ldw r4, [r2]
      ldi r5, msg
      ldw r5, [r5]
      cmp r4, r5
      jnz bad
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/tmp/t.dat"
msg:  .asciz "abcd"
      .bss
buf:  .space 8
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelMisc, GetpidGetppidRelationship) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      mov r8, r0
      ldi r0, SYS_wait
      sys
      ; child exits with 1 if its ppid == parent's pid (we can't easily
      ; compare across processes; the child checks getppid != 0)
      mov r5, r1
      ldi r6, 8
      shr r5, r6
      ldi r0, SYS_exit
      mov r1, r5
      sys
child:
      ldi r0, SYS_getppid
      sys
      cmpi r0, 0
      jz bad
      ldi r0, SYS_exit
      ldi r1, 1
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 0
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 1);
}

TEST(KernelMisc, UnknownSyscallIsENOSYS) {
  Sim sim;
  int st = RunProgram(sim, R"(
      ldi r0, SYS_otime   ; the obsolete call: kernel refuses it
      sys
      jcs good
      ldi r0, SYS_exit
      ldi r1, 1
      sys
good: ; r0 holds the errno (ENOSYS = 89)
      cmpi r0, 89
      jnz bad
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 2
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelNative, NativeWaitReapsSpawnedChild) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exit
      ldi r1, 17
      sys
  )").ok());
  // Spawn as a child of the controller so Wait() can see it.
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(pid.ok());
  auto wr = sim.kernel().Wait(sim.controller());
  ASSERT_TRUE(wr.ok());
  EXPECT_EQ(wr->pid, *pid);
  EXPECT_TRUE(WIfExited(wr->status));
  EXPECT_EQ(WExitCode(wr->status), 17);
  EXPECT_EQ(sim.kernel().FindProc(*pid), nullptr) << "zombie must be reaped";
}

TEST(KernelPoll, NfdsAboveLimitIsEinval) {
  Sim sim;
  // Regression: nfds beyond the cap used to be silently clamped to 64,
  // making poll report on a truncated set while claiming success. It must
  // fail loudly instead. The cap is configurable now; pin the historical
  // value so the old boundary keeps being exercised.
  sim.kernel().SetPollMaxFds(64);
  int st = RunProgram(sim, R"(
      ldi r0, SYS_poll
      ldi r1, pfd
      ldi r2, 65          ; kPollMaxFds + 1
      ldi r3, 0
      sys
      jcs err
      ldi r0, SYS_exit
      ldi r1, 0
      sys
err:  mov r1, r0
      ldi r0, SYS_exit
      sys
      .bss
pfd:  .space 12
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), static_cast<int>(Errno::kEINVAL));
}

TEST(KernelPoll, NfdsAtLimitIsAccepted) {
  Sim sim;
  // Exactly kPollMaxFds descriptors is legal; with all slots naming an
  // invalid fd and a zero timeout, every entry comes back POLLNVAL.
  int st = RunProgram(sim, R"(
      ; fill 64 pollfd slots: fd=99 (invalid), events=POLLIN
      ldi r4, pfd
      ldi r8, 64
fill: ldi r5, 99
      stw r5, [r4]
      ldi r5, 1
      stw r5, [r4+4]
      addi r4, 12
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz fill
      ldi r0, SYS_poll
      ldi r1, pfd
      ldi r2, 64
      ldi r3, 0
      sys
      jcs err
      cmpi r0, 64         ; every slot reports POLLNVAL
      jnz bad
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
err:  mov r1, r0
      ldi r0, SYS_exit
      sys
      .bss
pfd:  .space 768
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelPoll, ConfiguredCapMovesTheBoundary) {
  Sim sim;
  // The cap is a knob, not a constant: with it raised to 128, the old
  // boundary (65 fds) is legal and the new one (129) is the EINVAL line.
  sim.kernel().SetPollMaxFds(128);
  int st = RunProgram(sim, R"(
      ; fill 65 pollfd slots: fd=99 (invalid), events=POLLIN
      ldi r4, pfd
      ldi r8, 65
fill: ldi r5, 99
      stw r5, [r4]
      ldi r5, 1
      stw r5, [r4+4]
      addi r4, 12
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz fill
      ldi r0, SYS_poll
      ldi r1, pfd
      ldi r2, 65          ; old cap + 1: legal under the raised cap
      ldi r3, 0
      sys
      jcs err
      cmpi r0, 65         ; every slot reports POLLNVAL
      jnz bad
      ldi r0, SYS_poll
      ldi r1, pfd
      ldi r2, 129         ; new cap + 1: the EINVAL line moved with the knob
      ldi r3, 0
      sys
      jcs chk
      jmp bad
chk:  cmpi r0, 22         ; EINVAL
      jnz bad
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
err:  mov r1, r0
      ldi r0, SYS_exit
      sys
      .bss
pfd:  .space 780
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

}  // namespace
}  // namespace svr4
