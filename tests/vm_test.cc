// Unit tests for the VM substrate: mappings, copy-on-write, protections,
// stack/break growth, watchpoints, and page data.
#include <gtest/gtest.h>

#include <cstring>

#include "svr4proc/vm/vm.h"

namespace svr4 {
namespace {

std::shared_ptr<AnonObject> Anon() { return std::make_shared<AnonObject>(); }

// A VmObject with recognizable page contents (byte = page index).
class PatternObject : public VmObject {
 public:
  Result<PagePtr> GetPage(uint64_t page_index) override {
    auto it = cache_.find(page_index);
    if (it != cache_.end()) {
      return it->second;
    }
    auto page = std::make_shared<VmPage>();
    std::memset(page->bytes.data(), static_cast<int>(page_index & 0xFF), kPageSize);
    cache_[page_index] = page;
    return page;
  }
  std::map<uint64_t, PagePtr> cache_;
};

TEST(VmMapping, BasicMapAndAccess) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, 2 * kPageSize, MA_READ | MA_WRITE, Anon(), 0, "seg").ok());
  uint32_t v = 0xABCD;
  EXPECT_FALSE(as.MemWrite(0x10000, &v, 4).has_value());
  uint32_t r = 0;
  EXPECT_FALSE(as.MemRead(0x10000, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 0xABCDu);
}

TEST(VmMapping, UnmappedAccessIsBoundsFault) {
  AddressSpace as;
  uint32_t v;
  auto f = as.MemRead(0x5000, &v, 4, Access::kRead);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTBOUNDS);
  EXPECT_EQ(f->addr, 0x5000u);
}

TEST(VmMapping, ProtectionViolationIsAccessFault) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ, Anon(), 0, "ro").ok());
  uint32_t v = 1;
  auto f = as.MemWrite(0x10000, &v, 4);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTACCESS);
  // Exec on a non-exec page.
  f = as.MemRead(0x10000, &v, 1, Access::kExec);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTACCESS);
}

TEST(VmMapping, AccessCrossingPagesWorks) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, 2 * kPageSize, MA_READ | MA_WRITE, Anon(), 0, "seg").ok());
  std::vector<uint8_t> data(100, 0x5A);
  EXPECT_FALSE(as.MemWrite(0x10000 + kPageSize - 50, data.data(),
                           static_cast<uint32_t>(data.size()))
                   .has_value());
  std::vector<uint8_t> back(100);
  EXPECT_FALSE(as.MemRead(0x10000 + kPageSize - 50, back.data(), 100, Access::kRead)
                   .has_value());
  EXPECT_EQ(back, data);
}

TEST(VmMapping, AccessCrossingIntoUnmappedFaultsAtBoundary) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "seg").ok());
  std::vector<uint8_t> data(64, 1);
  auto f = as.MemWrite(0x10000 + kPageSize - 8, data.data(), 64);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTBOUNDS);
  EXPECT_EQ(f->addr, 0x10000u + kPageSize);
}

TEST(VmMapping, MapReplacesOverlap) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, 4 * kPageSize, MA_READ | MA_WRITE, Anon(), 0, "a").ok());
  uint32_t v = 7;
  ASSERT_FALSE(as.MemWrite(0x11000, &v, 4).has_value());
  // Re-map the middle two pages.
  ASSERT_TRUE(as.Map(0x11000, 2 * kPageSize, MA_READ, Anon(), 0, "b").ok());
  uint32_t r = 1;
  ASSERT_FALSE(as.MemRead(0x11000, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 0u) << "fresh anon object, old contents gone";
  auto maps = as.Maps();
  EXPECT_EQ(maps.size(), 3u) << "left remainder, new piece, right remainder";
}

TEST(VmMapping, UnmapSplitsMappings) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, 4 * kPageSize, MA_READ | MA_WRITE, Anon(), 0, "a").ok());
  uint32_t v = 42;
  ASSERT_FALSE(as.MemWrite(0x13000, &v, 4).has_value());
  ASSERT_TRUE(as.Unmap(0x11000, kPageSize).ok());
  EXPECT_TRUE(as.Mapped(0x10000));
  EXPECT_FALSE(as.Mapped(0x11000));
  EXPECT_TRUE(as.Mapped(0x12000));
  uint32_t r = 0;
  ASSERT_FALSE(as.MemRead(0x13000, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 42u) << "data in the surviving piece is preserved";
}

TEST(VmProtect, ProtectSplitsAndApplies) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, 4 * kPageSize, MA_READ | MA_WRITE, Anon(), 0, "a").ok());
  ASSERT_TRUE(as.Protect(0x11000, kPageSize, MA_READ).ok());
  uint32_t v = 1;
  EXPECT_FALSE(as.MemWrite(0x10000, &v, 4).has_value());
  auto f = as.MemWrite(0x11000, &v, 4);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTACCESS);
  EXPECT_FALSE(as.MemWrite(0x12000, &v, 4).has_value());
}

TEST(VmProtect, ProtectUnmappedIsError) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ, Anon(), 0, "a").ok());
  EXPECT_FALSE(as.Protect(0x10000, 2 * kPageSize, MA_READ).ok());
}

TEST(VmCow, PrivateMappingsShareUntilWrite) {
  auto obj = std::make_shared<PatternObject>();
  AddressSpace a;
  AddressSpace b;
  ASSERT_TRUE(a.Map(0x10000, kPageSize, MA_READ | MA_WRITE, obj, 0, "x").ok());
  ASSERT_TRUE(b.Map(0x20000, kPageSize, MA_READ | MA_WRITE, obj, 0, "x").ok());
  uint8_t ra = 0, rb = 0;
  ASSERT_FALSE(a.MemRead(0x10000, &ra, 1, Access::kRead).has_value());
  ASSERT_FALSE(b.MemRead(0x20000, &rb, 1, Access::kRead).has_value());
  EXPECT_EQ(ra, 0);
  EXPECT_EQ(rb, 0);
  // a writes: b and the object stay intact.
  uint8_t w = 0xEE;
  ASSERT_FALSE(a.MemWrite(0x10000, &w, 1).has_value());
  ASSERT_FALSE(b.MemRead(0x20000, &rb, 1, Access::kRead).has_value());
  EXPECT_EQ(rb, 0) << "b's view unaffected by a's private write";
  EXPECT_EQ(obj->cache_.at(0)->bytes[0], 0) << "the object is unaffected";
}

TEST(VmCow, SharedMappingsWriteThrough) {
  auto obj = std::make_shared<PatternObject>();
  AddressSpace a;
  AddressSpace b;
  ASSERT_TRUE(a.Map(0x10000, kPageSize, MA_READ | MA_WRITE | MA_SHARED, obj, 0, "x").ok());
  ASSERT_TRUE(b.Map(0x20000, kPageSize, MA_READ | MA_SHARED, obj, 0, "x").ok());
  uint8_t w = 0x77;
  ASSERT_FALSE(a.MemWrite(0x10000, &w, 1).has_value());
  uint8_t rb = 0;
  ASSERT_FALSE(b.MemRead(0x20000, &rb, 1, Access::kRead).has_value());
  EXPECT_EQ(rb, 0x77) << "modifications to a shared mapping are visible to all";
}

TEST(VmCow, CloneGivesCopyOnWriteSemantics) {
  AddressSpace parent;
  ASSERT_TRUE(parent.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  uint32_t v = 111;
  ASSERT_FALSE(parent.MemWrite(0x10000, &v, 4).has_value());
  auto child = parent.Clone();
  // Parent writes after the clone: the child sees the old value.
  v = 222;
  ASSERT_FALSE(parent.MemWrite(0x10000, &v, 4).has_value());
  uint32_t r = 0;
  ASSERT_FALSE(child->MemRead(0x10000, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 111u);
  // Child writes independently.
  v = 333;
  ASSERT_FALSE(child->MemWrite(0x10000, &v, 4).has_value());
  ASSERT_FALSE(parent.MemRead(0x10000, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 222u);
}

TEST(VmCow, ChainOfClones) {
  AddressSpace g0;
  ASSERT_TRUE(g0.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  uint32_t v = 1;
  ASSERT_FALSE(g0.MemWrite(0x10000, &v, 4).has_value());
  auto g1 = g0.Clone();
  auto g2 = g1->Clone();
  v = 2;
  ASSERT_FALSE(g1->MemWrite(0x10000, &v, 4).has_value());
  uint32_t r = 0;
  ASSERT_FALSE(g0.MemRead(0x10000, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 1u);
  ASSERT_FALSE(g2->MemRead(0x10000, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 1u);
}

TEST(VmPrIo, ForcedWriteIgnoresProtections) {
  auto obj = std::make_shared<PatternObject>();
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_EXEC, obj, 0, "text").ok());
  uint8_t bpt = 0x02;
  auto n = as.PrWrite(0x10000, std::span<const uint8_t>(&bpt, 1));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  // The object's page is untouched (COW), the mapping sees the new byte.
  EXPECT_EQ(obj->cache_.at(0)->bytes[0], 0);
  uint8_t r = 0;
  ASSERT_FALSE(as.MemRead(0x10000, &r, 1, Access::kExec).has_value());
  EXPECT_EQ(r, 0x02);
}

TEST(VmPrIo, StartInUnmappedAreaFails) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ, Anon(), 0, "x").ok());
  uint8_t b;
  auto n = as.PrRead(0x20000, std::span<uint8_t>(&b, 1));
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error(), Errno::kEIO);
}

TEST(VmPrIo, TruncatesAtHoles) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "a").ok());
  ASSERT_TRUE(as.Map(0x12000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "b").ok());
  std::vector<uint8_t> buf(3 * kPageSize, 1);
  auto n = as.PrRead(0x10F00, std::span<uint8_t>(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0x100) << "read stops at the hole, not at the later mapping";
  auto w = as.PrWrite(0x10F00, std::span<const uint8_t>(buf.data(), buf.size()));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, 0x100);
}

TEST(VmStack, GrowsDownAutomatically) {
  AddressSpace as;
  uint32_t top = 0x80000;
  ASSERT_TRUE(as.Map(top - 4 * kPageSize, 4 * kPageSize, MA_READ | MA_WRITE | MA_STACK,
                     Anon(), 0, "stack", /*grows_down=*/true)
                  .ok());
  uint32_t below = top - 10 * kPageSize;
  uint32_t v = 9;
  EXPECT_FALSE(as.MemWrite(below, &v, 4).has_value()) << "stack grows to cover it";
  EXPECT_TRUE(as.Mapped(below));
  uint32_t r = 0;
  ASSERT_FALSE(as.MemRead(below, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 9u);
}

TEST(VmStack, GrowthHasALimit) {
  AddressSpace as;
  uint32_t top = 0x8000000;
  ASSERT_TRUE(as.Map(top - kPageSize, kPageSize, MA_READ | MA_WRITE | MA_STACK, Anon(),
                     0, "stack", true)
                  .ok());
  uint32_t far_below = top - (kMaxStackGrowPages + 8) * kPageSize;
  uint32_t v = 1;
  auto f = as.MemWrite(far_below, &v, 4);
  ASSERT_TRUE(f.has_value()) << "far beyond the growth window: fault";
  EXPECT_EQ(f->fault, FLTBOUNDS);
}

TEST(VmStack, GrowthStopsAtLowerMapping) {
  AddressSpace as;
  uint32_t top = 0x80000;
  ASSERT_TRUE(as.Map(top - kPageSize, kPageSize, MA_READ | MA_WRITE | MA_STACK, Anon(),
                     0, "stack", true)
                  .ok());
  // A mapping sits right below where the stack would grow.
  ASSERT_TRUE(as.Map(top - 5 * kPageSize, kPageSize, MA_READ, Anon(), 0, "obstacle").ok());
  uint32_t v = 1;
  auto f = as.MemWrite(top - 5 * kPageSize + 8, &v, 4);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTACCESS) << "hits the obstacle, not stack growth";
}

TEST(VmBreak, GrowAndShrink) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x20000, kPageSize, MA_READ | MA_WRITE | MA_BREAK, Anon(), 0,
                     "break")
                  .ok());
  ASSERT_TRUE(as.SetBreak(0x28000).ok());
  EXPECT_EQ(*as.BreakEnd(), 0x28000u);
  uint32_t v = 5;
  EXPECT_FALSE(as.MemWrite(0x27000, &v, 4).has_value());
  ASSERT_TRUE(as.SetBreak(0x21000).ok());
  EXPECT_EQ(*as.BreakEnd(), 0x21000u);
  auto f = as.MemWrite(0x27000, &v, 4);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTBOUNDS) << "shrunk break area is gone";
}

TEST(VmBreak, CannotGrowIntoNextMapping) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x20000, kPageSize, MA_READ | MA_WRITE | MA_BREAK, Anon(), 0,
                     "break")
                  .ok());
  ASSERT_TRUE(as.Map(0x23000, kPageSize, MA_READ, Anon(), 0, "next").ok());
  EXPECT_FALSE(as.SetBreak(0x30000).ok());
  EXPECT_TRUE(as.SetBreak(0x23000).ok()) << "growth up to the neighbour is fine";
}

TEST(VmWatch, PreciseByteRanges) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  ASSERT_TRUE(as.AddWatch(Watch{0x10010, 4, WA_WRITE}).ok());
  uint32_t v = 1;
  EXPECT_FALSE(as.MemWrite(0x10000, &v, 4).has_value()) << "before the range";
  EXPECT_FALSE(as.MemWrite(0x10014, &v, 4).has_value()) << "after the range";
  auto f = as.MemWrite(0x10012, &v, 2);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTWATCH);
  // Reads do not trigger a write watchpoint.
  EXPECT_FALSE(as.MemRead(0x10010, &v, 4, Access::kRead).has_value());
}

TEST(VmWatch, OverlappingAccessTriggers) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  ASSERT_TRUE(as.AddWatch(Watch{0x10010, 1, WA_WRITE}).ok());
  uint32_t v = 1;
  // A 4-byte store covering the watched byte fires.
  auto f = as.MemWrite(0x1000E, &v, 4);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTWATCH);
}

TEST(VmWatch, ExecWatch) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE | MA_EXEC, Anon(), 0,
                     "t")
                  .ok());
  ASSERT_TRUE(as.AddWatch(Watch{0x10020, 1, WA_EXEC}).ok());
  uint8_t b;
  EXPECT_FALSE(as.MemRead(0x10020, &b, 1, Access::kRead).has_value())
      << "plain read does not fire an exec watch";
  auto f = as.MemRead(0x10020, &b, 1, Access::kExec);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTWATCH);
}

TEST(VmWatch, ClearRestoresFullSpeed) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  ASSERT_TRUE(as.AddWatch(Watch{0x10010, 4, WA_WRITE}).ok());
  ASSERT_TRUE(as.ClearWatch(0x10010).ok());
  uint32_t v = 1;
  EXPECT_FALSE(as.MemWrite(0x10010, &v, 4).has_value());
  EXPECT_FALSE(as.ClearWatch(0x10010).ok()) << "already gone";
}

TEST(VmWatch, InvalidWatchRejected) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  EXPECT_FALSE(as.AddWatch(Watch{0x10000, 0, WA_WRITE}).ok()) << "zero size";
  EXPECT_FALSE(as.AddWatch(Watch{0x10000, 4, 0}).ok()) << "no mode";
  EXPECT_FALSE(as.AddWatch(Watch{0x90000, 4, WA_READ}).ok()) << "unmapped";
}

TEST(VmPageData, ReferencedAndModifiedTracking) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, 4 * kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  uint32_t v = 1;
  ASSERT_FALSE(as.MemWrite(0x11000, &v, 4).has_value());
  uint32_t r;
  ASSERT_FALSE(as.MemRead(0x12000, &r, 4, Access::kRead).has_value());
  auto segs = as.SamplePageData(/*clear=*/true);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].pg[0], 0);
  EXPECT_EQ(segs[0].pg[1], PG_REFERENCED | PG_MODIFIED);
  EXPECT_EQ(segs[0].pg[2], PG_REFERENCED);
  EXPECT_EQ(segs[0].pg[3], 0);
  // The clearing sample reset the bits.
  segs = as.SamplePageData(false);
  for (uint8_t pg : segs[0].pg) {
    EXPECT_EQ(pg, 0);
  }
}

TEST(VmMisc, VirtualSizeAndResidency) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, 8 * kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  EXPECT_EQ(as.VirtualSize(), 8 * kPageSize);
  EXPECT_EQ(as.ResidentPages(), 0u) << "nothing materialized yet";
  uint32_t v = 1;
  ASSERT_FALSE(as.MemWrite(0x10000, &v, 4).has_value());
  EXPECT_EQ(as.ResidentPages(), 1u);
}

TEST(VmMisc, AsFaultMaterializesRange) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, 4 * kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  ASSERT_TRUE(as.AsFault(0x10000, 3 * kPageSize, /*for_write=*/false).ok());
  EXPECT_EQ(as.ResidentPages(), 3u);
  EXPECT_FALSE(as.AsFault(0x90000, 4, false).ok());
}

TEST(VmMisc, ObjectAtFindsBackingObject) {
  auto obj = std::make_shared<PatternObject>();
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ, obj, 0, "f").ok());
  ASSERT_TRUE(as.Map(0x20000, kPageSize, MA_READ, Anon(), 0, "a").ok());
  EXPECT_EQ(as.ObjectAt(0x10000).get(), obj.get());
  EXPECT_EQ(as.ObjectAt(0x20000), nullptr) << "anonymous objects have no identity";
  EXPECT_EQ(as.ObjectAt(0x30000), nullptr);
}

TEST(VmMisc, MapRejectsBadArguments) {
  AddressSpace as;
  EXPECT_FALSE(as.Map(0x10001, kPageSize, MA_READ, Anon(), 0, "x").ok())
      << "unaligned start";
  EXPECT_FALSE(as.Map(0x10000, 0, MA_READ, Anon(), 0, "x").ok()) << "zero length";
  EXPECT_FALSE(as.Map(0x10000, kPageSize, MA_READ, nullptr, 0, "x").ok()) << "no object";
  EXPECT_FALSE(as.Map(0xFFFFF000, 2 * kPageSize, MA_READ, Anon(), 0, "x").ok())
      << "wraps around the address space";
}

// --- Edge cases the software TLB must not break ------------------------------

TEST(VmStack, GrowsExactlyAtLimit) {
  AddressSpace as;
  uint32_t top = 0x8000000;
  ASSERT_TRUE(as.Map(top - kPageSize, kPageSize, MA_READ | MA_WRITE | MA_STACK, Anon(),
                     0, "stack", true)
                  .ok());
  // gap_pages == kMaxStackGrowPages: still inside the growth window.
  uint32_t at_limit = top - kPageSize - kMaxStackGrowPages * kPageSize;
  uint32_t v = 7;
  EXPECT_FALSE(as.MemWrite(at_limit, &v, 4).has_value());
  EXPECT_TRUE(as.Mapped(at_limit));
  uint32_t r = 0;
  ASSERT_FALSE(as.MemRead(at_limit, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 7u);

  // One page further down would need kMaxStackGrowPages + 1 pages: fault.
  AddressSpace as2;
  ASSERT_TRUE(as2.Map(top - kPageSize, kPageSize, MA_READ | MA_WRITE | MA_STACK, Anon(),
                      0, "stack", true)
                  .ok());
  uint32_t past_limit = top - kPageSize - (kMaxStackGrowPages + 1) * kPageSize;
  auto f = as2.MemWrite(past_limit, &v, 4);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTBOUNDS);
}

TEST(VmCow, CloneAfterWarmTlbIsolatesParentAndChild) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  uint32_t v = 0x1111;
  // Warm the parent's TLB with a writable-in-place entry.
  ASSERT_FALSE(as.MemWrite(0x10000, &v, 4).has_value());
  ASSERT_FALSE(as.MemWrite(0x10000, &v, 4).has_value());
  EXPECT_GT(as.counters().tlb_hits, 0u);

  auto child = as.Clone();

  // The warm entry must not let the parent scribble on the shared page.
  uint32_t pv = 0x2222;
  ASSERT_FALSE(as.MemWrite(0x10000, &pv, 4).has_value());
  uint32_t cr = 0;
  ASSERT_FALSE(child->MemRead(0x10000, &cr, 4, Access::kRead).has_value());
  EXPECT_EQ(cr, 0x1111u) << "child still sees the pre-fork value";

  // And the other way: the child's write stays invisible to the parent.
  uint32_t cv = 0x3333;
  ASSERT_FALSE(child->MemWrite(0x10000, &cv, 4).has_value());
  uint32_t pr = 0;
  ASSERT_FALSE(as.MemRead(0x10000, &pr, 4, Access::kRead).has_value());
  EXPECT_EQ(pr, 0x2222u);
}

TEST(VmWatch, RangeCrossingPageBoundary) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, 2 * kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  uint32_t boundary = 0x10000 + kPageSize;
  // Warm the TLB on both pages first; the watch must still fire afterwards.
  uint32_t v = 1;
  ASSERT_FALSE(as.MemWrite(boundary - 8, &v, 4).has_value());
  ASSERT_FALSE(as.MemWrite(boundary + 8, &v, 4).has_value());
  ASSERT_TRUE(as.AddWatch(Watch{boundary - 2, 4, WA_WRITE}).ok());

  // A store to the tail of the first page fires.
  auto f = as.MemWrite(boundary - 2, &v, 1);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTWATCH);
  // A store to the head of the second page fires too.
  f = as.MemWrite(boundary + 1, &v, 1);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTWATCH);
  // Unwatched bytes on either page proceed at full speed.
  EXPECT_FALSE(as.MemWrite(boundary - 8, &v, 4).has_value());
  EXPECT_FALSE(as.MemWrite(boundary + 2, &v, 4).has_value());
}

TEST(VmTlb, CountersTrackHitsAndInvalidation) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  uint32_t v = 0;
  ASSERT_FALSE(as.MemRead(0x10000, &v, 4, Access::kRead).has_value());  // fill
  uint64_t hits0 = as.counters().tlb_hits;
  for (int i = 0; i < 10; ++i) {
    ASSERT_FALSE(as.MemRead(0x10000 + 4 * i, &v, 4, Access::kRead).has_value());
  }
  EXPECT_EQ(as.counters().tlb_hits, hits0 + 10);

  // A protection change invalidates the cached permission immediately.
  uint32_t w = 5;
  ASSERT_FALSE(as.MemWrite(0x10000, &w, 4).has_value());  // warms write_ok
  ASSERT_TRUE(as.Protect(0x10000, kPageSize, MA_READ).ok());
  auto f = as.MemWrite(0x10000, &w, 4);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->fault, FLTACCESS) << "stale TLB entry must not bypass mprotect";
}

TEST(VmTlb, DisableKnobFallsBackToSlowPath) {
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE, Anon(), 0, "d").ok());
  as.SetTlbEnabled(false);
  EXPECT_FALSE(as.TlbEnabled());
  uint32_t v = 0xBEEF;
  ASSERT_FALSE(as.MemWrite(0x10000, &v, 4).has_value());
  uint32_t r = 0;
  ASSERT_FALSE(as.MemRead(0x10000, &r, 4, Access::kRead).has_value());
  EXPECT_EQ(r, 0xBEEFu);
  EXPECT_EQ(as.counters().tlb_hits, 0u);
  EXPECT_GT(as.counters().slow_lookups, 0u);

  as.SetTlbEnabled(true);
  ASSERT_FALSE(as.MemRead(0x10000, &r, 4, Access::kRead).has_value());  // fill
  ASSERT_FALSE(as.MemRead(0x10000, &r, 4, Access::kRead).has_value());
  EXPECT_GT(as.counters().tlb_hits, 0u);
}

// --- Instruction fetch through the address space -----------------------------

TEST(CpuFetch, StraddlingInstructionExecutes) {
  AddressSpace as;
  ASSERT_TRUE(
      as.Map(0x10000, 2 * kPageSize, MA_READ | MA_WRITE | MA_EXEC, Anon(), 0, "t").ok());
  // ldi r1, 0xDDCCBBAA with the opcode on the last byte of the first page.
  uint32_t pc = 0x10000 + kPageSize - 1;
  uint8_t instr[6] = {kOpLdi, 0x01, 0xAA, 0xBB, 0xCC, 0xDD};
  ASSERT_FALSE(as.MemWrite(pc, instr, sizeof(instr)).has_value());
  Regs regs;
  FpRegs fp;
  regs.pc = pc;
  StepResult r = CpuStep(regs, fp, as);
  EXPECT_EQ(r.kind, StepResult::kOk);
  EXPECT_EQ(regs.r[1], 0xDDCCBBAAu);
  EXPECT_EQ(regs.pc, pc + 6);
}

TEST(CpuFetch, MidInstructionFaultReportsOperandAddress) {
  AddressSpace as;
  // Only the first page is mapped; the instruction runs off its end.
  ASSERT_TRUE(as.Map(0x10000, kPageSize, MA_READ | MA_WRITE | MA_EXEC, Anon(), 0, "t").ok());
  uint32_t page_end = 0x10000 + kPageSize;
  uint32_t pc = page_end - 2;  // opcode + rd fit; the imm32 does not
  uint8_t head[2] = {kOpLdi, 0x01};
  ASSERT_FALSE(as.MemWrite(pc, head, sizeof(head)).has_value());
  Regs regs;
  FpRegs fp;
  regs.pc = pc;
  StepResult r = CpuStep(regs, fp, as);
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(r.fault, FLTBOUNDS);
  EXPECT_EQ(r.fault_addr, page_end)
      << "the fault address is the first missing operand byte, not the opcode";
  EXPECT_EQ(regs.pc, pc) << "pc stays at the faulting instruction";
}

}  // namespace
}  // namespace svr4
