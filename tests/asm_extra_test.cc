// Additional assembler/toolchain coverage: error diagnostics, operand edge
// cases, library imports, and layout rules.
#include <gtest/gtest.h>

#include <cstring>

#include "svr4proc/isa/assembler.h"
#include "svr4proc/isa/isa.h"

namespace svr4 {
namespace {

Assembler Small() { return Assembler(AsmOptions{.text_base = 0x1000, .data_align = 0x100}); }

TEST(AsmErrors, MemoryOffsetOutOfRange) {
  auto as = Small();
  EXPECT_FALSE(as.Assemble("  ldw r1, [r2+40000]\n").ok());
  EXPECT_NE(as.error().find("out of range"), std::string::npos);
  EXPECT_FALSE(as.Assemble("  ldw r1, [r2-40000]\n").ok());
}

TEST(AsmErrors, BadRegisterNames) {
  auto as = Small();
  EXPECT_FALSE(as.Assemble("  mov r16, r0\n").ok());
  EXPECT_FALSE(as.Assemble("  mov rx, r0\n").ok());
  EXPECT_FALSE(as.Assemble("  fadd f9, f0\n").ok());
}

TEST(AsmErrors, WrongOperandCounts) {
  auto as = Small();
  EXPECT_FALSE(as.Assemble("  nop r1\n").ok());
  EXPECT_FALSE(as.Assemble("  mov r1\n").ok());
  EXPECT_FALSE(as.Assemble("  ldi r1\n").ok());
  EXPECT_FALSE(as.Assemble("  jmp a, b\na: nop\nb: nop\n").ok());
}

TEST(AsmErrors, DirectiveMisuse) {
  auto as = Small();
  EXPECT_FALSE(as.Assemble("  .bss\n  .word 1\n").ok()) << ".word in .bss";
  EXPECT_FALSE(as.Assemble("  .bss\n  .asciz \"x\"\n").ok());
  EXPECT_FALSE(as.Assemble("  .space -4\n").ok());
  EXPECT_FALSE(as.Assemble("  .frobnicate\n").ok());
  EXPECT_FALSE(as.Assemble("  .equ x\n").ok());
  EXPECT_FALSE(as.Assemble("  .bss\nx: nop\n").ok()) << "instructions only in .text";
}

TEST(AsmOperands, CharLiteralsAndEscapes) {
  auto as = Small();
  auto img = as.Assemble(R"(
      ldi r1, 'A'
      ldi r2, '\n'
      ldi r3, '\\'
      sys
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  uint32_t v;
  std::memcpy(&v, img->text.data() + 2, 4);
  EXPECT_EQ(v, static_cast<uint32_t>('A'));
  std::memcpy(&v, img->text.data() + 8, 4);
  EXPECT_EQ(v, static_cast<uint32_t>('\n'));
  std::memcpy(&v, img->text.data() + 14, 4);
  EXPECT_EQ(v, static_cast<uint32_t>('\\'));
}

TEST(AsmOperands, StringEscapes) {
  auto as = Small();
  auto img = as.Assemble("  .data\ns: .asciz \"a\\tb\\nc\\\"d\"\n");
  ASSERT_TRUE(img.ok()) << as.error();
  EXPECT_EQ(std::memcmp(img->data.data(), "a\tb\nc\"d", 8), 0);
}

TEST(AsmOperands, NegativeAndHexImmediates) {
  auto as = Small();
  auto img = as.Assemble(R"(
      ldi r1, -1
      ldi r2, 0xDEADBEEF
      cmpi r1, -100
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  uint32_t v;
  std::memcpy(&v, img->text.data() + 2, 4);
  EXPECT_EQ(v, 0xFFFFFFFFu);
  std::memcpy(&v, img->text.data() + 8, 4);
  EXPECT_EQ(v, 0xDEADBEEFu);
}

TEST(AsmOperands, MemoryOffsetWithEquate) {
  auto as = Small();
  auto img = as.Assemble(R"(
      .equ OFF, 12
      ldw r1, [r2+OFF]
      ldw r3, [r2-OFF]
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  int16_t off;
  std::memcpy(&off, img->text.data() + 2, 2);
  EXPECT_EQ(off, 12);
  std::memcpy(&off, img->text.data() + 6, 2);
  EXPECT_EQ(off, -12);
}

TEST(AsmLayout, CommentsAndBlankLines) {
  auto as = Small();
  auto img = as.Assemble(R"(
; full-line comment
      nop        ; trailing comment
# hash comment
      nop
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  EXPECT_EQ(img->text.size(), 2u);
}

TEST(AsmLayout, SemicolonInsideStringIsNotAComment) {
  auto as = Small();
  auto img = as.Assemble("  .data\ns: .asciz \"a;b\"\n");
  ASSERT_TRUE(img.ok()) << as.error();
  EXPECT_EQ(std::memcmp(img->data.data(), "a;b", 4), 0);
}

TEST(AsmLayout, LabelOnItsOwnLine) {
  auto as = Small();
  auto img = as.Assemble(R"(
start:
      nop
end:  nop
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  EXPECT_EQ(*img->SymbolValue("start"), 0x1000u);
  EXPECT_EQ(*img->SymbolValue("end"), 0x1001u);
}

TEST(AsmLayout, DataAlignmentRespectsOption) {
  Assembler as(AsmOptions{.text_base = 0x80000000, .data_align = 0x8000});
  auto img = as.Assemble("  nop\n  .data\nd: .word 1\n");
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->data_vaddr, 0x80008000u) << "Figure 2's data address";
}

TEST(AsmLayout, AlignDirective) {
  auto as = Small();
  auto img = as.Assemble(R"(
      .data
a:    .byte 1
      .align 8
b:    .word 2
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  EXPECT_EQ(*img->SymbolValue("b") % 8, 0u);
}

TEST(AsmLibrary, ImportedSymbolsResolveAndDoNotReexport) {
  Assembler lib_as(AsmOptions{.text_base = 0xC0100000, .data_align = 0x100});
  auto lib = lib_as.Assemble(R"(
libfn:  ret
libvar: nop
  )");
  ASSERT_TRUE(lib.ok());

  Assembler as = Small();
  as.ImportLibrary(*lib, "libq");
  auto img = as.Assemble("  call libfn\n");
  ASSERT_TRUE(img.ok()) << as.error();
  EXPECT_EQ(img->lib, "libq");
  uint32_t target;
  std::memcpy(&target, img->text.data() + 1, 4);
  EXPECT_EQ(target, 0xC0100000u);
  // Imported symbols do not re-appear in the program's own symbol table.
  for (const auto& s : img->symbols) {
    EXPECT_NE(s.name, "libfn");
  }
}

TEST(AsmLibrary, LibDirectiveOverridesImportName) {
  auto as = Small();
  auto img = as.Assemble("  .lib \"libz\"\n  nop\n");
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->lib, "libz");
}

TEST(AsmSymbols, EquReferencedBeforeDefinitionFails) {
  // .equ values are resolved at the point of use for data directives but
  // label-like uses in instructions are fixed up; a forward .equ is the
  // documented unsupported case.
  auto as = Small();
  auto ok = as.Assemble("  ldi r1, K\n  .equ K, 5\n");
  // Forward reference through the fixup path resolves (equates land in the
  // final symbol map), so this must actually succeed:
  EXPECT_TRUE(ok.ok()) << as.error();
  uint32_t v;
  std::memcpy(&v, ok->text.data() + 2, 4);
  EXPECT_EQ(v, 5u);
}

TEST(AsmSymbols, WordListWithLabelsAndNumbers) {
  auto as = Small();
  auto img = as.Assemble(R"(
      .data
tbl:  .word 1, two, 3
two:  .word 2
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  uint32_t v;
  std::memcpy(&v, img->data.data() + 4, 4);
  EXPECT_EQ(v, *img->SymbolValue("two"));
}

TEST(AsmSymbols, SymbolTableTypesAreRight) {
  auto as = Small();
  auto img = as.Assemble(R"(
      .equ K, 9
t:    nop
      .data
d:    .word 1
      .bss
b:    .space 4
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  auto type_of = [&](const std::string& name) {
    for (const auto& s : img->symbols) {
      if (s.name == name) {
        return s.type;
      }
    }
    return SymType::kAbs;
  };
  EXPECT_EQ(type_of("t"), SymType::kText);
  EXPECT_EQ(type_of("d"), SymType::kData);
  EXPECT_EQ(type_of("b"), SymType::kBss);
  EXPECT_EQ(type_of("K"), SymType::kAbs);
}

}  // namespace
}  // namespace svr4
