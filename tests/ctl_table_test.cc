// Tests for the unified control-plane core (procfs/ctl.h): table
// completeness against the PIOC*/PC* code inventories, differential
// equivalence of the two /proc front-ends, and the control audit ring.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "svr4proc/procfs/ctl.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"
#include "svr4proc/tools/truss.h"

namespace svr4 {
namespace {

constexpr char kCounter[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
)";

constexpr char kExiter[] = R"(
      ldi r0, SYS_exit
      ldi r1, 3
      sys
)";

Pid StartProgram(Sim& sim, const std::string& src, const std::string& path = "/bin/prog") {
  auto img = sim.InstallProgram(path, src);
  EXPECT_TRUE(img.ok());
  auto pid = sim.Start(path);
  EXPECT_TRUE(pid.ok());
  return pid.ok() ? *pid : -1;
}

// --- Table completeness ------------------------------------------------------

// Mirror inventories of every code the headers define. A new code must be
// added here AND to the table; the test cross-checks the two.
constexpr uint32_t kAllPioc[] = {
    PIOCSTATUS, PIOCSTOP,   PIOCWSTOP,  PIOCRUN,    PIOCGTRACE,   PIOCSTRACE,
    PIOCSSIG,   PIOCKILL,   PIOCUNKILL, PIOCGHOLD,  PIOCSHOLD,    PIOCMAXSIG,
    PIOCACTION, PIOCGFAULT, PIOCSFAULT, PIOCCFAULT, PIOCGENTRY,   PIOCSENTRY,
    PIOCGEXIT,  PIOCSEXIT,  PIOCSFORK,  PIOCRFORK,  PIOCSRLC,     PIOCRRLC,
    PIOCGREG,   PIOCSREG,   PIOCGFPREG, PIOCSFPREG, PIOCNMAP,     PIOCMAP,
    PIOCOPENM,  PIOCCRED,   PIOCGROUPS, PIOCPSINFO, PIOCNICE,     PIOCGETPR,
    PIOCGETU,   PIOCUSAGE,  PIOCNWATCH, PIOCGWATCH, PIOCSWATCH,   PIOCPAGEDATA,
    PIOCLWPIDS, PIOCVMSTATS, PIOCAUDIT,  PIOCKSTAT,  PIOCPSALL,    PIOCPROF,
};

constexpr int32_t kAllPc[] = {
    PCNULL,   PCSTOP,   PCDSTOP,  PCWSTOP, PCRUN,    PCSTRACE, PCSFAULT,
    PCSENTRY, PCSEXIT,  PCSHOLD,  PCKILL,  PCUNKILL, PCSSIG,   PCCSIG,
    PCCFAULT, PCSREG,   PCSFPREG, PCNICE,  PCSET,    PCUNSET,  PCWATCH,
};

TEST(CtlTable, EveryPiocCodeAppearsExactlyOnce) {
  std::map<uint32_t, int> seen;
  for (const CtlOp& op : CtlOpTable()) {
    if (op.pioc != 0) {
      ++seen[op.pioc];
    }
  }
  for (uint32_t code : kAllPioc) {
    EXPECT_EQ(seen[code], 1) << "PIOC code " << (code & 0xFF);
  }
  EXPECT_EQ(seen.size(), std::size(kAllPioc)) << "table has PIOC codes the inventory lacks";
}

TEST(CtlTable, EveryPcCodeAppearsExactlyOnce) {
  std::map<int32_t, int> seen;
  for (const CtlOp& op : CtlOpTable()) {
    if (op.pc >= 0) {
      ++seen[op.pc];
    }
  }
  for (int32_t code : kAllPc) {
    EXPECT_EQ(seen[code], 1) << "PC code " << code;
  }
  EXPECT_EQ(seen.size(), std::size(kAllPc)) << "table has PC codes the inventory lacks";
}

// PrCtlOperandSize is now derived from the table; pin the wire protocol so a
// table edit cannot silently change message framing.
TEST(CtlTable, OperandSizesMatchWireProtocol) {
  EXPECT_EQ(PrCtlOperandSize(PCNULL), 0);
  EXPECT_EQ(PrCtlOperandSize(PCSTOP), 0);
  EXPECT_EQ(PrCtlOperandSize(PCDSTOP), 0);
  EXPECT_EQ(PrCtlOperandSize(PCWSTOP), 0);
  EXPECT_EQ(PrCtlOperandSize(PCCSIG), 0);
  EXPECT_EQ(PrCtlOperandSize(PCCFAULT), 0);
  EXPECT_EQ(PrCtlOperandSize(PCRUN), 8);
  EXPECT_EQ(PrCtlOperandSize(PCKILL), 4);
  EXPECT_EQ(PrCtlOperandSize(PCUNKILL), 4);
  EXPECT_EQ(PrCtlOperandSize(PCNICE), 4);
  EXPECT_EQ(PrCtlOperandSize(PCSET), 4);
  EXPECT_EQ(PrCtlOperandSize(PCUNSET), 4);
  EXPECT_EQ(PrCtlOperandSize(PCSTRACE), static_cast<int>(sizeof(SigSet)));
  EXPECT_EQ(PrCtlOperandSize(PCSHOLD), static_cast<int>(sizeof(SigSet)));
  EXPECT_EQ(PrCtlOperandSize(PCSFAULT), static_cast<int>(sizeof(FltSet)));
  EXPECT_EQ(PrCtlOperandSize(PCSENTRY), static_cast<int>(sizeof(SysSet)));
  EXPECT_EQ(PrCtlOperandSize(PCSEXIT), static_cast<int>(sizeof(SysSet)));
  EXPECT_EQ(PrCtlOperandSize(PCSSIG), static_cast<int>(sizeof(SigInfo)));
  EXPECT_EQ(PrCtlOperandSize(PCSREG), static_cast<int>(sizeof(Regs)));
  EXPECT_EQ(PrCtlOperandSize(PCSFPREG), static_cast<int>(sizeof(FpRegs)));
  EXPECT_EQ(PrCtlOperandSize(PCWATCH), static_cast<int>(sizeof(PrWatch)));
  EXPECT_EQ(PrCtlOperandSize(9999), -1);
  EXPECT_EQ(PrCtlOperandSize(-5), -1);
}

TEST(CtlTable, RowsAreInternallyConsistent) {
  for (const CtlOp& op : CtlOpTable()) {
    if (op.pc >= 0) {
      // Operations with a ctl encoding carry a valid wire size.
      EXPECT_GE(op.operand_size, 0) << op.name;
      EXPECT_EQ(op.alias_pc, -1) << op.name << ": dual rows cannot be aliases";
    } else {
      EXPECT_NE(op.pioc, 0u) << op.name << ": row with neither encoding";
    }
    if (op.alias_pc >= 0) {
      // Alias rows delegate; the alias target must exist and take a flag word.
      EXPECT_EQ(op.handler, nullptr) << op.name;
      const CtlOp* target = FindCtlOpByPc(op.alias_pc);
      ASSERT_NE(target, nullptr) << op.name;
      EXPECT_EQ(target->arg, CtlArgKind::kFlags) << op.name;
    } else {
      EXPECT_NE(op.handler, nullptr) << op.name;
    }
    if (op.read_only) {
      // Query rows are never audited and never block.
      EXPECT_FALSE(op.blocking) << op.name;
    }
    // Lookups round-trip.
    if (op.pioc != 0) {
      EXPECT_EQ(FindCtlOpByPioc(op.pioc), &op) << op.name;
    }
    if (op.pc >= 0) {
      EXPECT_EQ(FindCtlOpByPc(op.pc), &op) << op.name;
    }
  }
}

// --- Differential harness ----------------------------------------------------

// One deterministic simulation per front-end; the same control script is
// driven through PIOC* ioctls in one and ctl messages in the other. The
// PrStatus snapshots and audit rings must match byte for byte (deterministic
// virtual time makes ticks comparable).
class Differential {
 public:
  Differential() {
    pid_flat_ = StartProgram(flat_, kCounter);
    pid_hier_ = StartProgram(hier_, kCounter);
    EXPECT_EQ(pid_flat_, pid_hier_);
    auto h = ProcHandle::Grab(flat_.kernel(), flat_.controller(), pid_flat_);
    EXPECT_TRUE(h.ok());
    handle_ = std::make_unique<ProcHandle>(std::move(*h));
    char path[64];
    std::snprintf(path, sizeof(path), "/proc2/%05d/ctl", pid_hier_);
    auto fd = hier_.kernel().Open(hier_.controller(), path, O_WRONLY);
    EXPECT_TRUE(fd.ok());
    ctl_fd_ = fd.ok() ? *fd : -1;
  }

  ProcHandle& flat() { return *handle_; }

  Result<int64_t> Ctl(const void* bytes, size_t n) {
    return hier_.kernel().Write(hier_.controller(), ctl_fd_, bytes, n);
  }
  template <typename T>
  Result<int64_t> Ctl1(int32_t code, const T& operand) {
    std::vector<uint8_t> buf(4 + sizeof(T));
    std::memcpy(buf.data(), &code, 4);
    std::memcpy(buf.data() + 4, &operand, sizeof(T));
    return Ctl(buf.data(), buf.size());
  }
  Result<int64_t> Ctl0(int32_t code) { return Ctl(&code, 4); }
  Result<int64_t> CtlRun(uint32_t flags, uint32_t vaddr = 0) {
    uint8_t buf[12];
    int32_t code = PCRUN;
    std::memcpy(buf, &code, 4);
    std::memcpy(buf + 4, &flags, 4);
    std::memcpy(buf + 8, &vaddr, 4);
    return Ctl(buf, sizeof(buf));
  }

  // Both processes' state, serialized for comparison.
  PrStatus FlatStatus() {
    auto st = flat().Status();
    EXPECT_TRUE(st.ok());
    return st.ok() ? *st : PrStatus{};
  }
  PrStatus HierStatus() {
    char path[64];
    std::snprintf(path, sizeof(path), "/proc2/%05d/status", pid_hier_);
    auto fd = hier_.kernel().Open(hier_.controller(), path, O_RDONLY);
    EXPECT_TRUE(fd.ok());
    PrStatus st;
    auto n = hier_.kernel().Read(hier_.controller(), *fd, &st, sizeof(st));
    EXPECT_TRUE(n.ok());
    EXPECT_EQ(*n, static_cast<int64_t>(sizeof(st)));
    (void)hier_.kernel().Close(hier_.controller(), *fd);
    return st;
  }
  PrCtlAudit FlatAudit() {
    auto a = flat().Audit();
    EXPECT_TRUE(a.ok());
    return a.ok() ? *a : PrCtlAudit{};
  }
  PrCtlAudit HierAudit() {
    char path[64];
    std::snprintf(path, sizeof(path), "/proc2/%05d/ctlaudit", pid_hier_);
    auto fd = hier_.kernel().Open(hier_.controller(), path, O_RDONLY);
    EXPECT_TRUE(fd.ok());
    PrCtlAudit a;
    auto n = hier_.kernel().Read(hier_.controller(), *fd, &a, sizeof(a));
    EXPECT_TRUE(n.ok());
    (void)hier_.kernel().Close(hier_.controller(), *fd);
    return a;
  }

  void ExpectIdentical() {
    PrStatus fs = FlatStatus();
    PrStatus hs = HierStatus();
    EXPECT_EQ(std::memcmp(&fs, &hs, sizeof(PrStatus)), 0) << "PrStatus diverged";
    PrCtlAudit fa = FlatAudit();
    PrCtlAudit ha = HierAudit();
    EXPECT_EQ(fa.pr_total, ha.pr_total);
    EXPECT_EQ(std::memcmp(&fa, &ha, sizeof(PrCtlAudit)), 0) << "audit diverged:\n"
        << FormatCtlAudit(fa) << "--- vs ---\n" << FormatCtlAudit(ha);
  }

 private:
  Sim flat_;
  Sim hier_;
  Pid pid_flat_ = -1;
  Pid pid_hier_ = -1;
  std::unique_ptr<ProcHandle> handle_;
  int ctl_fd_ = -1;
};

TEST(CtlDifferential, StopRunScriptMatches) {
  Differential d;
  // stop; run; stop again — the canonical debugger heartbeat.
  EXPECT_TRUE(d.flat().Stop().ok());
  EXPECT_TRUE(d.Ctl0(PCSTOP).ok());
  d.ExpectIdentical();

  EXPECT_TRUE(d.flat().Run().ok());
  EXPECT_TRUE(d.CtlRun(0).ok());

  EXPECT_TRUE(d.flat().Stop().ok());
  EXPECT_TRUE(d.Ctl0(PCSTOP).ok());
  d.ExpectIdentical();
}

TEST(CtlDifferential, TraceHoldKillScriptMatches) {
  Differential d;
  EXPECT_TRUE(d.flat().Stop().ok());
  EXPECT_TRUE(d.Ctl0(PCSTOP).ok());

  SigSet trace;
  trace.Add(SIGINT);
  trace.Add(SIGUSR1);
  EXPECT_TRUE(d.flat().SetSigTrace(trace).ok());
  EXPECT_TRUE(d.Ctl1(PCSTRACE, trace).ok());

  SigSet hold;
  hold.Add(SIGHUP);
  hold.Add(SIGKILL);  // must be stripped identically by both paths
  EXPECT_TRUE(d.flat().SetHold(hold).ok());
  EXPECT_TRUE(d.Ctl1(PCSHOLD, hold).ok());

  EXPECT_TRUE(d.flat().Kill(SIGUSR1).ok());
  int32_t sig = SIGUSR1;
  EXPECT_TRUE(d.Ctl1(PCKILL, sig).ok());

  d.ExpectIdentical();
}

TEST(CtlDifferential, ModeAliasesAuditAsCanonicalOps) {
  Differential d;
  EXPECT_TRUE(d.flat().Stop().ok());
  EXPECT_TRUE(d.Ctl0(PCSTOP).ok());

  // PIOCSRLC/PIOCSFORK are pure aliases of PCSET; both paths must record
  // the same canonical name in the audit ring.
  EXPECT_TRUE(d.flat().SetRunOnLastClose(true).ok());
  EXPECT_TRUE(d.flat().SetInheritOnFork(true).ok());
  uint32_t rlc = PR_RLC, fork = PR_FORK;
  EXPECT_TRUE(d.Ctl1(PCSET, rlc).ok());
  EXPECT_TRUE(d.Ctl1(PCSET, fork).ok());
  d.ExpectIdentical();

  PrCtlAudit a = d.FlatAudit();
  ASSERT_GE(a.pr_n, 2u);
  EXPECT_STREQ(a.pr_rec[a.pr_n - 1].pr_op, "PCSET");
  EXPECT_STREQ(a.pr_rec[a.pr_n - 2].pr_op, "PCSET");
}

TEST(CtlDifferential, PrivilegedNiceMatches) {
  Differential d;
  EXPECT_TRUE(d.flat().Stop().ok());
  EXPECT_TRUE(d.Ctl0(PCSTOP).ok());

  // A super-user controller may raise priority; both paths apply the same
  // predicate and clamp, and both rings record the PCNICE.
  int32_t delta = -4;
  EXPECT_TRUE(d.flat().Nice(-4).ok());
  EXPECT_TRUE(d.Ctl1(PCNICE, delta).ok());
  d.ExpectIdentical();
}

// --- Reconciled semantics ----------------------------------------------------

TEST(CtlReconciled, PcrunRejectsSetFlagsItCannotCarry) {
  Sim sim;
  Pid pid = StartProgram(sim, kCounter);
  char path[64];
  std::snprintf(path, sizeof(path), "/proc2/%05d/ctl", pid);
  auto fd = sim.kernel().Open(sim.controller(), path, O_WRONLY);
  ASSERT_TRUE(fd.ok());

  int32_t stop = PCSTOP;
  ASSERT_TRUE(sim.kernel().Write(sim.controller(), *fd, &stop, 4).ok());

  // The 8-byte PCRUN message has no room for the sets PRSTRACE/PRSHOLD/
  // PRSFAULT promise; honoring them would install empty sets. The unified
  // core rejects the combination instead of silently masking it.
  uint8_t buf[12];
  int32_t code = PCRUN;
  uint32_t flags = PRSTRACE;
  uint32_t vaddr = 0;
  std::memcpy(buf, &code, 4);
  std::memcpy(buf + 4, &flags, 4);
  std::memcpy(buf + 8, &vaddr, 4);
  auto r = sim.kernel().Write(sim.controller(), *fd, buf, sizeof(buf));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEINVAL);

  // The flat encoding carries the sets in prrun_t, so there PRSTRACE works.
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  ASSERT_TRUE(h.ok());
  PrRun run;
  run.pr_flags = PRSTRACE;
  run.pr_trace.Add(SIGINT);
  EXPECT_TRUE(h->Run(run).ok());
  auto got = h->GetSigTrace();
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->Has(SIGINT));
}

TEST(CtlReconciled, NicePrivilegeIsUniform) {
  // An unprivileged caller may cede priority but not raise it — now
  // enforced by one predicate on the table row, through either front-end.
  Sim sim;
  Pid pid = StartProgram(sim, kCounter);
  Proc* target = sim.kernel().FindProc(pid);
  ASSERT_NE(target, nullptr);
  Creds user;
  user.ruid = user.euid = user.suid = target->creds.ruid = 100;
  user.rgid = user.egid = user.sgid = target->creds.rgid = 100;
  Proc* joe = sim.NewController(user, "joe");

  auto h = ProcHandle::Grab(sim.kernel(), joe, pid);
  ASSERT_TRUE(h.ok());
  auto up = h->Nice(3);
  EXPECT_TRUE(up.ok());
  auto down = h->Nice(-3);
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.error(), Errno::kEPERM);

  char path[64];
  std::snprintf(path, sizeof(path), "/proc2/%05d/ctl", pid);
  auto fd = sim.kernel().Open(joe, path, O_WRONLY);
  ASSERT_TRUE(fd.ok());
  uint8_t buf[8];
  int32_t code = PCNICE;
  int32_t delta = -3;
  std::memcpy(buf, &code, 4);
  std::memcpy(buf + 4, &delta, 4);
  auto r = sim.kernel().Write(joe, *fd, buf, sizeof(buf));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEPERM);
  EXPECT_EQ(target->nice, 23);  // only the +3 took effect
}

TEST(CtlReconciled, UnknownIoctlErrnoOrderPreserved) {
  Sim sim;
  Pid pid = StartProgram(sim, kCounter);

  // Read-only descriptor: unknown control codes fail EBADF before EINVAL.
  auto ro = ProcHandle::Grab(sim.kernel(), sim.controller(), pid, O_RDONLY);
  ASSERT_TRUE(ro.ok());
  auto r1 = sim.kernel().Ioctl(sim.controller(), ro->fd(), 0x9999, nullptr);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error(), Errno::kEBADF);

  // Writable descriptor: EINVAL.
  auto rw = ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  ASSERT_TRUE(rw.ok());
  auto r2 = sim.kernel().Ioctl(sim.controller(), rw->fd(), 0x9999, nullptr);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error(), Errno::kEINVAL);
}

// --- Audit ring --------------------------------------------------------------

TEST(CtlAudit, RecordsControlOpsNotQueries) {
  Sim sim;
  Pid pid = StartProgram(sim, kCounter);
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  ASSERT_TRUE(h.ok());

  ASSERT_TRUE(h->Stop().ok());
  (void)h->Status();   // queries must not pollute the ring
  (void)h->Psinfo();
  (void)h->Audit();
  ASSERT_TRUE(h->Kill(SIGUSR1).ok());

  auto a = h->Audit();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->pr_total, 2u);
  ASSERT_EQ(a->pr_n, 2u);
  EXPECT_STREQ(a->pr_rec[0].pr_op, "PCSTOP");
  EXPECT_STREQ(a->pr_rec[1].pr_op, "PCKILL");
  EXPECT_EQ(a->pr_rec[0].pr_caller, sim.controller()->pid);
  EXPECT_EQ(a->pr_rec[0].pr_lwpid, 0);
  EXPECT_EQ(a->pr_rec[0].pr_errno, 0);
  EXPECT_GE(a->pr_rec[1].pr_tick, a->pr_rec[0].pr_tick);
}

TEST(CtlAudit, RingWrapsAndKeepsNewest) {
  Sim sim;
  Pid pid = StartProgram(sim, kCounter);
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Stop().ok());

  SigSet s;
  s.Add(SIGINT);
  const int kOps = kCtlAuditCap + 10;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(h->SetSigTrace(s).ok());
  }
  auto a = h->Audit();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->pr_total, static_cast<uint64_t>(kOps) + 1);  // + the PCSTOP
  EXPECT_EQ(a->pr_n, static_cast<uint32_t>(kCtlAuditCap));
  // The PCSTOP and the first 10 PCSTRACEs were overwritten; all retained
  // records are PCSTRACE, oldest first.
  for (uint32_t i = 0; i < a->pr_n; ++i) {
    EXPECT_STREQ(a->pr_rec[i].pr_op, "PCSTRACE");
  }
  // Ticks never decrease across the retained window.
  for (uint32_t i = 1; i < a->pr_n; ++i) {
    EXPECT_GE(a->pr_rec[i].pr_tick, a->pr_rec[i - 1].pr_tick);
  }
}

TEST(CtlAudit, FailedOpsAreRecordedWithErrno) {
  Sim sim;
  Pid pid = StartProgram(sim, kCounter);
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Stop().ok());

  auto bad = h->Kill(0);  // invalid signal
  ASSERT_FALSE(bad.ok());

  auto a = h->Audit();
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->pr_n, 2u);
  EXPECT_STREQ(a->pr_rec[1].pr_op, "PCKILL");
  EXPECT_EQ(a->pr_rec[1].pr_errno, static_cast<int32_t>(bad.error()));
}

TEST(CtlAudit, SurvivesZombieAndIsReadableBothWays) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kExiter).ok());
  // Child of the (native) controller: stays a zombie until waited for.
  auto spid = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(spid.ok());
  Pid pid = *spid;
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Stop().ok());
  ASSERT_TRUE(h->SetRunOnLastClose(true).ok());
  ASSERT_TRUE(h->Run().ok());
  ASSERT_TRUE(sim.kernel().RunToExit(pid).ok());
  Proc* p = sim.kernel().FindProc(pid);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->state, Proc::State::kZombie);

  // PIOCAUDIT still answers on the zombie (like PIOCPSINFO)...
  auto a = h->Audit();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->pr_total, 3u);  // PCSTOP, PCSET, PCRUN

  // ...and the ctlaudit file serves identical bytes.
  char path[64];
  std::snprintf(path, sizeof(path), "/proc2/%05d/ctlaudit", pid);
  auto fd = sim.kernel().Open(sim.controller(), path, O_RDONLY);
  ASSERT_TRUE(fd.ok());
  PrCtlAudit file;
  auto n = sim.kernel().Read(sim.controller(), *fd, &file, sizeof(file));
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, static_cast<int64_t>(sizeof(file)));
  EXPECT_EQ(std::memcmp(&*a, &file, sizeof(PrCtlAudit)), 0);
}

TEST(CtlAudit, TrussDecodesTheRing) {
  Sim sim;
  Pid pid = StartProgram(sim, kCounter);
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Stop().ok());
  ASSERT_TRUE(h->Kill(SIGUSR1).ok());

  auto a = h->Audit();
  ASSERT_TRUE(a.ok());
  std::string report = FormatCtlAudit(*a);
  EXPECT_NE(report.find("PCSTOP"), std::string::npos);
  EXPECT_NE(report.find("PCKILL"), std::string::npos);
  EXPECT_NE(report.find("2 total"), std::string::npos);
}

TEST(CtlAudit, LwpScopedOpsRecordTheLwp) {
  Sim sim;
  Pid pid = StartProgram(sim, kCounter);
  Proc* p = sim.kernel().FindProc(pid);
  ASSERT_NE(p, nullptr);
  int lwpid = p->MainLwp()->lwpid;

  char path[64];
  std::snprintf(path, sizeof(path), "/proc2/%05d/lwp/%d/lwpctl", pid, lwpid);
  auto fd = sim.kernel().Open(sim.controller(), path, O_WRONLY);
  ASSERT_TRUE(fd.ok());
  int32_t stop = PCSTOP;
  ASSERT_TRUE(sim.kernel().Write(sim.controller(), *fd, &stop, 4).ok());

  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid, O_RDONLY);
  ASSERT_TRUE(h.ok());
  auto a = h->Audit();
  ASSERT_TRUE(a.ok());
  ASSERT_EQ(a->pr_n, 1u);
  EXPECT_STREQ(a->pr_rec[0].pr_op, "PCSTOP");
  EXPECT_EQ(a->pr_rec[0].pr_lwpid, lwpid);
}

}  // namespace
}  // namespace svr4
