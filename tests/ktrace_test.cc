// Tests for the kernel event-trace ring and metrics registry (ktrace.h):
// ring wraparound and snapshot ABI, /proc2 exposure (kernel-wide and
// per-pid, including a descriptor held across a reap), PIOCKSTAT, the
// chaos-determinism guarantee (tracing never perturbs a seeded run), and
// the PrUsage audit (every field incremented, minor/major fault split,
// zombie and multi-LWP interrogation).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "svr4proc/kernel/faults.h"
#include "svr4proc/kernel/ktrace.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

struct Target {
  Pid pid;
  Aout image;
};

Target StartProgram(Sim& sim, const std::string& src, const std::string& path = "/bin/prog") {
  auto img = sim.InstallProgram(path, src);
  EXPECT_TRUE(img.ok());
  auto pid = sim.Start(path);
  EXPECT_TRUE(pid.ok());
  return Target{pid.ok() ? *pid : -1, img.ok() ? *img : Aout{}};
}

ProcHandle Grab(Sim& sim, Pid pid, int oflags = O_RDONLY) {
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid, oflags);
  EXPECT_TRUE(h.ok()) << "grab failed: " << (h.ok() ? "" : ErrnoName(h.error()));
  return std::move(*h);
}

// Reads an open descriptor to EOF and parses the trace-snapshot ABI.
PrTrace DrainTraceFd(Sim& sim, int fd) {
  std::vector<uint8_t> raw;
  char buf[512];
  for (;;) {
    auto n = sim.kernel().Read(sim.controller(), fd, buf, sizeof(buf));
    EXPECT_TRUE(n.ok());
    if (!n.ok() || *n == 0) {
      break;
    }
    raw.insert(raw.end(), buf, buf + *n);
  }
  PrTrace t;
  if (raw.empty()) {
    return t;
  }
  EXPECT_GE(raw.size(), sizeof(KtSnapHeader));
  std::memcpy(&t.hdr, raw.data(), sizeof(t.hdr));
  EXPECT_EQ(t.hdr.kt_magic, kKtMagic);
  EXPECT_EQ(t.hdr.kt_recsize, sizeof(KtRec));
  EXPECT_EQ(raw.size(), sizeof(KtSnapHeader) + t.hdr.kt_nrec * sizeof(KtRec));
  t.recs.resize(t.hdr.kt_nrec);
  std::memcpy(t.recs.data(), raw.data() + sizeof(t.hdr), t.recs.size() * sizeof(KtRec));
  return t;
}

std::string ReadWholeFile(Sim& sim, const std::string& path) {
  auto fd = sim.kernel().Open(sim.controller(), path, O_RDONLY);
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) {
    return {};
  }
  std::string out;
  char buf[512];
  for (;;) {
    auto n = sim.kernel().Read(sim.controller(), *fd, buf, sizeof(buf));
    EXPECT_TRUE(n.ok());
    if (!n.ok() || *n == 0) {
      break;
    }
    out.append(buf, *n);
  }
  (void)sim.kernel().Close(sim.controller(), *fd);
  return out;
}

// ---------------------------------------------------------------------------
// The ring itself, standalone (no kernel).
// ---------------------------------------------------------------------------

TEST(KtRing, WraparoundKeepsNewestOldestFirst) {
  uint64_t tick = 0;
  KTrace kt(&tick, /*cpu_src=*/nullptr, /*cap=*/8);
  kt.EnableRing(true);
  for (uint32_t i = 0; i < 20; ++i) {
    tick = 100 + i;
    kt.Emit(KtEvent::kFault, /*pid=*/1, /*lwpid=*/1, /*a0=*/i, /*a1=*/0);
  }
  EXPECT_EQ(kt.total(), 20u);
  EXPECT_EQ(kt.dropped(), 12u);

  auto snap = kt.Snapshot();
  ASSERT_EQ(snap.size(), sizeof(KtSnapHeader) + 8 * sizeof(KtRec));
  KtSnapHeader h;
  std::memcpy(&h, snap.data(), sizeof(h));
  EXPECT_EQ(h.kt_magic, kKtMagic);
  EXPECT_EQ(h.kt_version, kKtVersion);
  EXPECT_EQ(h.kt_recsize, sizeof(KtRec));
  EXPECT_EQ(h.kt_nrec, 8u);
  EXPECT_EQ(h.kt_total, 20u);
  EXPECT_EQ(h.kt_dropped, 12u);
  // The survivors are the newest 8, oldest first, ticks monotone.
  for (uint32_t i = 0; i < 8; ++i) {
    KtRec r;
    std::memcpy(&r, snap.data() + sizeof(h) + i * sizeof(r), sizeof(r));
    EXPECT_EQ(r.kt_a0, 12 + i);
    EXPECT_EQ(r.kt_tick, 100u + 12 + i);
    EXPECT_EQ(r.kt_event, static_cast<uint32_t>(KtEvent::kFault));
  }
}

TEST(KtRing, DisarmedEmitIsNoOpAndSnapshotEmpty) {
  uint64_t tick = 5;
  KTrace kt(&tick);
  kt.Emit(KtEvent::kFork, 1, 1, 2, 0);
  EXPECT_EQ(kt.total(), 0u);
  EXPECT_EQ(kt.event_count(KtEvent::kFork), 0u);
  EXPECT_TRUE(kt.Snapshot().empty());
  EXPECT_FALSE(kt.armed());
}

TEST(KtRing, MetricsOnlyFoldsWithoutRingRecords) {
  uint64_t tick = 0;
  KTrace kt(&tick);
  kt.EnableMetrics(true);
  // Two getpid exits (one errno), latencies 3 and 5 ticks.
  uint32_t num = SYS_getpid;
  kt.Emit(KtEvent::kSyscallExit, 1, 1, num, 3);
  kt.Emit(KtEvent::kSyscallExit, 1, 1, num | (static_cast<uint32_t>(Errno::kEINVAL) << 16), 5);
  EXPECT_EQ(kt.total(), 0u);  // ring off: nothing retained
  EXPECT_EQ(kt.event_count(KtEvent::kSyscallExit), 2u);
  const KtSyscallStat& s = kt.syscall_stat(SYS_getpid);
  EXPECT_EQ(s.calls, 2u);
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.lat.sum, 8u);
  EXPECT_EQ(s.lat.max, 5u);
}

TEST(KtRing, HistogramBucketsAreLog2) {
  EXPECT_EQ(KtHist::BucketOf(0), 0u);
  EXPECT_EQ(KtHist::BucketOf(1), 1u);
  EXPECT_EQ(KtHist::BucketOf(2), 2u);
  EXPECT_EQ(KtHist::BucketOf(3), 2u);
  EXPECT_EQ(KtHist::BucketOf(4), 3u);
  EXPECT_EQ(KtHist::BucketOf(1023), 10u);
  EXPECT_EQ(KtHist::BucketOf(~0ull), 31u);  // tail bucket absorbs
  KtHist h;
  h.Record(0);
  h.Record(7);
  EXPECT_EQ(h.count, 2u);
  EXPECT_EQ(h.sum, 7u);
  EXPECT_EQ(h.max, 7u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.5);
  EXPECT_EQ(h.bucket[0], 1u);
  EXPECT_EQ(h.bucket[3], 1u);
}

// ---------------------------------------------------------------------------
// /proc2 exposure.
// ---------------------------------------------------------------------------

constexpr char kForker[] = R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r8, 10
loop: ldi r0, SYS_getpid
      sys
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz loop
      ldi r0, SYS_exit
      ldi r1, 7
      sys
)";

TEST(KtraceProc, KernelTraceFileRoundTrip) {
  Sim sim;
  sim.kernel().SetTracing(/*ring=*/true, /*metrics=*/true);
  auto t = StartProgram(sim, kForker);
  ASSERT_TRUE(sim.kernel().RunToExit(t.pid).ok());

  auto snap = ReadTraceFile(sim.kernel(), sim.controller(), "/proc2/kernel/trace");
  ASSERT_TRUE(snap.ok());
  EXPECT_GT(snap->hdr.kt_nrec, 0u);
  EXPECT_EQ(snap->hdr.kt_version, kKtVersion);
  uint64_t seen = 0;
  bool saw_fork = false, saw_exit = false, saw_entry = false;
  uint64_t last_tick = 0;
  for (const KtRec& r : snap->recs) {
    EXPECT_GE(r.kt_tick, last_tick) << "ring must serialize oldest-first";
    last_tick = r.kt_tick;
    ++seen;
    saw_fork |= r.kt_event == static_cast<uint32_t>(KtEvent::kFork);
    saw_exit |= r.kt_event == static_cast<uint32_t>(KtEvent::kExit);
    saw_entry |= r.kt_event == static_cast<uint32_t>(KtEvent::kSyscallEntry);
  }
  EXPECT_EQ(seen, snap->hdr.kt_nrec);
  EXPECT_TRUE(saw_fork);
  EXPECT_TRUE(saw_exit);
  EXPECT_TRUE(saw_entry);
}

TEST(KtraceProc, DisabledRingReadsEmptyNotEnoent) {
  Sim sim;  // tracing never armed
  auto t = StartProgram(sim, kForker);
  ASSERT_TRUE(sim.kernel().RunToExit(t.pid).ok());

  auto fd = sim.kernel().Open(sim.controller(), "/proc2/kernel/trace", O_RDONLY);
  ASSERT_TRUE(fd.ok()) << "a disabled ring must still exist in the namespace";
  char buf[64];
  auto n = sim.kernel().Read(sim.controller(), *fd, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u) << "disabled ring reads as an empty file";
  (void)sim.kernel().Close(sim.controller(), *fd);

  auto snap = ReadTraceFile(sim.kernel(), sim.controller(), "/proc2/kernel/trace");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->hdr.kt_nrec, 0u);
  EXPECT_TRUE(snap->recs.empty());
}

TEST(KtraceProc, SnapshotWhileRunningStaysConsistent) {
  Sim sim;
  sim.kernel().SetTracing(true, true);
  StartProgram(sim, R"(
loop: ldi r0, SYS_getpid
      sys
      jmp loop
  )");
  uint64_t prev_total = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 25; ++i) {
      sim.kernel().Step();
    }
    auto snap = sim.kernel().ktrace().Snapshot();
    ASSERT_GE(snap.size(), sizeof(KtSnapHeader));
    KtSnapHeader h;
    std::memcpy(&h, snap.data(), sizeof(h));
    EXPECT_EQ(h.kt_magic, kKtMagic);
    EXPECT_EQ(snap.size(), sizeof(h) + h.kt_nrec * sizeof(KtRec));
    EXPECT_GE(h.kt_total, prev_total) << "total is monotonic while running";
    prev_total = h.kt_total;
    uint64_t last_tick = 0;
    for (uint32_t i = 0; i < h.kt_nrec; ++i) {
      KtRec r;
      std::memcpy(&r, snap.data() + sizeof(h) + i * sizeof(r), sizeof(r));
      EXPECT_GE(r.kt_tick, last_tick);
      last_tick = r.kt_tick;
    }
  }
}

TEST(KtraceProc, HeldFdServesReapedZombiesPidFilter) {
  Sim sim;
  sim.kernel().SetTracing(true, true);
  auto t = StartProgram(sim, kForker);

  // Run until the fork happened, then find the child by parentage.
  Pid child = -1;
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    for (Pid c = t.pid + 1; c < t.pid + 10; ++c) {
      Proc* p = sim.kernel().FindProc(c);
      if (p != nullptr && p->ppid == t.pid) {
        child = c;
        return true;
      }
    }
    return false;
  }));
  ASSERT_GT(child, 0);

  // Hold a descriptor on the child's trace file across its exit AND reap.
  char path[64];
  std::snprintf(path, sizeof(path), "/proc2/%05d/trace", child);
  auto fd = sim.kernel().Open(sim.controller(), path, O_RDONLY);
  ASSERT_TRUE(fd.ok());

  ASSERT_TRUE(sim.kernel().RunToExit(t.pid).ok());
  ASSERT_EQ(sim.kernel().FindProc(child), nullptr) << "child must be fully reaped";

  PrTrace tr = DrainTraceFd(sim, *fd);
  EXPECT_GT(tr.hdr.kt_nrec, 0u) << "reaped pid still has ring history";
  bool saw_child_exit = false;
  for (const KtRec& r : tr.recs) {
    EXPECT_EQ(r.kt_pid, child) << "per-pid file must filter to its pid";
    saw_child_exit |= r.kt_event == static_cast<uint32_t>(KtEvent::kExit);
  }
  EXPECT_TRUE(saw_child_exit);
  (void)sim.kernel().Close(sim.controller(), *fd);
}

// ---------------------------------------------------------------------------
// PIOCKSTAT and the metrics text.
// ---------------------------------------------------------------------------

TEST(Kstat, PiocKstatReportsRegistry) {
  Sim sim;
  sim.kernel().SetTracing(/*ring=*/false, /*metrics=*/true);
  auto t = StartProgram(sim, R"(
      ldi r8, 50
loop: ldi r0, SYS_getpid
      sys
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz loop
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )");
  ASSERT_TRUE(sim.kernel().RunToExit(t.pid).ok());

  auto h = Grab(sim, sim.kernel().init_proc()->pid);
  auto ks = h.Kstat();
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->pr_ring_on, 0u);
  EXPECT_EQ(ks->pr_metrics_on, 1u);
  EXPECT_EQ(ks->pr_trace_total, 0u) << "ring off: nothing appended";
  EXPECT_GT(ks->pr_ticks, 0u);
  EXPECT_GT(ks->pr_instructions, 0u);
  EXPECT_GT(ks->pr_events[static_cast<uint32_t>(KtEvent::kSyscallEntry)], 0u);
  EXPECT_EQ(ks->pr_sys[SYS_getpid].pr_calls, 50u);
  EXPECT_EQ(ks->pr_sys[SYS_getpid].pr_errors, 0u);
}

TEST(Kstat, MetricsTextFoldsFaultSiteCounters) {
  Sim sim;
  sim.kernel().SetTracing(false, true);
  FaultPlan plan;
  // A site evaluated by any run but firing never: evals count, fires zero.
  plan.Arm(FaultSite::kCopyin, FaultRule{/*seed=*/3, /*num=*/0, /*den=*/16, /*max_hits=*/0});
  sim.kernel().SetFaultPlan(plan);
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 6
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "hello\n"
  )");
  ASSERT_TRUE(sim.kernel().RunToExit(t.pid).ok());

  std::string text = ReadWholeFile(sim, "/proc2/kernel/metrics");
  EXPECT_NE(text.find("ktrace ring=off metrics=on"), std::string::npos) << text;
  EXPECT_NE(text.find("counter syscall[write]"), std::string::npos) << text;
  EXPECT_NE(text.find("hist runq_depth"), std::string::npos) << text;
  // Satellite: the fault injector's per-site eval/fire counters render in
  // the same registry (their single home stays FaultInjector).
  EXPECT_NE(text.find("counter fault_site[COPYIN] evals="), std::string::npos) << text;
}

TEST(Kstat, StopWaitHistogramRecordsStopLatency) {
  Sim sim;
  sim.kernel().SetTracing(false, true);
  auto t = StartProgram(sim, R"(
loop: ldi r0, SYS_getpid
      sys
      jmp loop
  )");
  for (int i = 0; i < 50; ++i) {
    sim.kernel().Step();
  }
  auto h = Grab(sim, t.pid, O_RDWR);
  ASSERT_TRUE(h.Stop().ok());
  EXPECT_GE(sim.kernel().ktrace().stop_wait().count, 1u);
}

// ---------------------------------------------------------------------------
// Tracing must never perturb a seeded chaos run.
// ---------------------------------------------------------------------------

constexpr char kChaosBurst[] = R"(
      ldi r0, SYS_getpid
      sys
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 6
      sys
      ldi r0, SYS_open
      ldi r1, nopath
      ldi r2, O_RDONLY
      ldi r3, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "chaos\n"
nopath: .asciz "/no/such"
)";

FaultPlan LowRatePlan(uint64_t seed) {
  FaultPlan plan;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    plan.Arm(static_cast<FaultSite>(i),
             FaultRule{seed, /*num=*/1, /*den=*/16, /*max_hits=*/8});
  }
  return plan;
}

// ticks, instructions, console output: the whole observable outcome.
std::tuple<uint64_t, uint64_t, std::string> ChaosRun(uint64_t seed, bool traced) {
  Sim sim;
  EXPECT_TRUE(sim.InstallProgram("/bin/prog", kChaosBurst).ok());
  auto pid = sim.Start("/bin/prog");
  EXPECT_TRUE(pid.ok());
  sim.kernel().SetFaultPlan(LowRatePlan(seed));
  sim.kernel().SetChaosScheduler(seed);
  if (traced) {
    sim.kernel().SetTracing(/*ring=*/true, /*metrics=*/true);
  }
  sim.kernel().RunUntil(
      [&]() { return sim.kernel().FindProc(*pid) == nullptr; }, 400'000);
  EXPECT_TRUE(sim.kernel().CheckInvariants().empty());
  return {sim.kernel().Ticks(), sim.kernel().counters().instructions,
          sim.ConsoleOutput()};
}

TEST(KtraceChaos, TwentySeedSweepIsUnperturbedByTracing) {
  for (uint64_t seed = 301; seed <= 320; ++seed) {
    auto plain = ChaosRun(seed, /*traced=*/false);
    auto traced = ChaosRun(seed, /*traced=*/true);
    EXPECT_EQ(std::get<0>(plain), std::get<0>(traced)) << "seed " << seed << ": ticks diverged";
    EXPECT_EQ(std::get<1>(plain), std::get<1>(traced))
        << "seed " << seed << ": instruction count diverged";
    EXPECT_EQ(std::get<2>(plain), std::get<2>(traced))
        << "seed " << seed << ": console output diverged";
  }
}

// ---------------------------------------------------------------------------
// PrUsage audit: every field, the fault split, zombies, multi-LWP.
// ---------------------------------------------------------------------------

TEST(UsageAudit, EveryFieldIncrements) {
  Sim sim;
  // Touches every accounting source: a handler-delivered signal (pr_nsig),
  // console writes (pr_ioch), syscalls (pr_sysc/pr_stime), the instruction
  // stream (pr_utime), file-backed text/data pages (pr_majf), and zero-fill
  // stack/bss pages (pr_minf). Ends in a spin so the process stays live.
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR1
      ldi r2, handler
      ldi r3, 0
      sys
      ldi r0, SYS_getpid
      sys
      mov r5, r0
      ldi r0, SYS_kill
      mov r1, r5
      ldi r2, SIGUSR1
      sys
      ldi r4, scratch
      ldi r5, 99
      stw r5, [r4]
      ; a blocking syscall: kernel time (pr_stime) accrues only while a
      ; call is in progress across ticks
      ldi r0, SYS_sleep
      ldi r1, 3
      sys
spin: jmp spin
handler:
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 4
      sys
      ldi r0, SYS_sigreturn
      sys
      .data
msg:  .asciz "sig\n"
      .bss
scratch: .space 64
  )");
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(t.pid);
    return p != nullptr && p->nsignals > 0 && p->ioch > 0;
  }));
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }

  auto h = Grab(sim, t.pid);
  auto u = h.Usage();
  ASSERT_TRUE(u.ok());
  EXPECT_GT(u->pr_tstamp, 0u);
  EXPECT_GT(u->pr_rtime, 0u);
  EXPECT_GT(u->pr_utime, 0u);
  EXPECT_GT(u->pr_stime, 0u);
  EXPECT_GT(u->pr_minf, 0u) << "stack/bss zero-fill is a minor fault";
  EXPECT_GT(u->pr_majf, 0u) << "first touch of file-backed text is a major fault";
  EXPECT_GT(u->pr_nsig, 0u);
  EXPECT_GT(u->pr_sysc, 0u);
  EXPECT_GT(u->pr_ioch, 0u);
  EXPECT_EQ(u->pr_tstamp, u->pr_create + u->pr_rtime);
}

TEST(UsageAudit, MinorMajorSplitMatchesVmCounters) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
spin: jmp spin
      .data
var:  .word 7
  )");
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  auto h = Grab(sim, t.pid);
  auto u = h.Usage();
  ASSERT_TRUE(u.ok());
  // A live process with its original image: usage is exactly the live
  // address-space counters (the fold bases are zero).
  EXPECT_EQ(u->pr_minf, p->as->counters().minor_faults);
  EXPECT_EQ(u->pr_majf, p->as->counters().major_faults);
  EXPECT_GT(u->pr_majf, 0u) << "text and .data pages are file-backed";
  EXPECT_GT(u->pr_minf, 0u) << "the .data store breaks copy-on-write";
}

TEST(UsageAudit, ZombieRetainsFoldedCounts) {
  Sim sim;
  // Parent forks then spins without waiting: the child stays a zombie.
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
spin: jmp spin
child:
      ; store into an inherited .data page: breaks copy-on-write, so the
      ; child earns a minor fault of its own before exiting
      ldi r4, msg
      ldi r5, 67
      stb r5, [r4]
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 2
      sys
      ldi r0, SYS_exit
      ldi r1, 3
      sys
      .data
msg:  .asciz "c\n"
  )");
  Pid child = -1;
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    for (Pid c = t.pid + 1; c < t.pid + 10; ++c) {
      Proc* p = sim.kernel().FindProc(c);
      if (p != nullptr && p->ppid == t.pid) {
        child = c;
        return p->as == nullptr;  // exited: image dropped, counters folded
      }
    }
    return false;
  }));
  auto h = Grab(sim, child);
  auto u = h.Usage();
  ASSERT_TRUE(u.ok()) << "PIOCUSAGE must work on a zombie";
  EXPECT_GT(u->pr_create, 0u) << "forked after the parent ran";
  EXPECT_GT(u->pr_sysc, 0u);
  EXPECT_GT(u->pr_utime, 0u);
  EXPECT_GT(u->pr_ioch, 0u);
  EXPECT_GT(u->pr_majf, 0u) << "fault counts fold into the proc at exit";
  EXPECT_GT(u->pr_minf, 0u);
}

TEST(UsageAudit, MultiLwpProcessAggregates) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_lwp_create
      ldi r1, thread
      ldi r2, tstack+1024
      sys
m:    ldi r4, c1
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp m
thread:
      ldi r4, c2
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp thread
      .data
c1:   .word 0
c2:   .word 0
      .bss
tstack: .space 1024
  )");
  for (int i = 0; i < 600; ++i) {
    sim.kernel().Step();
  }
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->lwps.size(), 2u);
  auto h = Grab(sim, t.pid);
  auto u = h.Usage();
  ASSERT_TRUE(u.ok()) << "PIOCUSAGE must work on a multi-LWP process";
  EXPECT_GT(u->pr_utime, 200u) << "utime spans both lwps";
  EXPECT_GT(u->pr_sysc, 0u);
  EXPECT_EQ(u->pr_tstamp, sim.kernel().Ticks());
}

}  // namespace
}  // namespace svr4
