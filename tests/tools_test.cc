// Tests for the /proc applications: ps, truss, and the debugger.
#include <gtest/gtest.h>

#include "svr4proc/tools/debugger.h"
#include "svr4proc/tools/ps.h"
#include "svr4proc/tools/sim.h"
#include "svr4proc/tools/truss.h"

namespace svr4 {
namespace {

constexpr char kCounter[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
)";

TEST(PsTool, SnapshotSeesAllProcesses) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto p1 = sim.Start("/bin/prog");
  auto p2 = sim.Start("/bin/prog");
  ASSERT_TRUE(p1.ok() && p2.ok());
  auto snap = PsSnapshot(sim.kernel(), sim.controller());
  ASSERT_TRUE(snap.ok());
  // sched, init, pageout, controller, two targets.
  EXPECT_GE(snap->size(), 6u);
  int targets = 0;
  for (const auto& ps : *snap) {
    if (ps.pr_pid == *p1 || ps.pr_pid == *p2) {
      ++targets;
      EXPECT_STREQ(ps.pr_fname, "prog");
    }
  }
  EXPECT_EQ(targets, 2);
}

TEST(PsTool, FormattedListingHasHeaderAndRows) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  ASSERT_TRUE(sim.Start("/bin/prog").ok());
  auto out = PsFormat(sim.kernel(), sim.controller(), PsOptions{.full = true});
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("UID"), std::string::npos);
  EXPECT_NE(out->find("prog"), std::string::npos);
  EXPECT_NE(out->find("init"), std::string::npos);
}

TEST(PsTool, NonRootSeesOnlyOpenableProcesses) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto mine = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::User(100, 10));
  auto theirs = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::User(200, 20));
  ASSERT_TRUE(mine.ok() && theirs.ok());
  Proc* user = sim.NewController(Creds::User(100, 10), "user");
  auto snap = PsSnapshot(sim.kernel(), user);
  ASSERT_TRUE(snap.ok());
  bool saw_mine = false, saw_theirs = false;
  for (const auto& ps : *snap) {
    if (ps.pr_pid == *mine) {
      saw_mine = true;
    }
    if (ps.pr_pid == *theirs) {
      saw_theirs = true;
    }
  }
  EXPECT_TRUE(saw_mine);
  EXPECT_FALSE(saw_theirs) << "/proc open permissions gate the listing";
}

TEST(PsTool, LsProcRendersFigure1) {
  Sim sim;
  auto out = LsProc(sim.kernel(), sim.controller());
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("00000"), std::string::npos);
  EXPECT_NE(out->find("00001"), std::string::npos);
  EXPECT_NE(out->find("00002"), std::string::npos);
}

TEST(TrussTool, ReportsSyscallsSignalsAndExit) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_getpid
      sys
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 3
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "hi\n"
  )").ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Truss truss(sim.kernel(), sim.controller());
  ASSERT_TRUE(truss.Trace(*pid).ok());
  const std::string& rep = truss.report();
  EXPECT_NE(rep.find("getpid()"), std::string::npos) << rep;
  EXPECT_NE(rep.find("write(0x1, "), std::string::npos) << rep;
  EXPECT_NE(rep.find("= 3"), std::string::npos) << "write returned 3";
  EXPECT_NE(rep.find("exited"), std::string::npos);
  EXPECT_EQ(sim.ConsoleOutput(), "hi\n") << "truss must not alter behaviour";
}

TEST(TrussTool, ReportsFaultsAndSignals) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r1, 1
      ldi r2, 0
      div r1, r2
  )").ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Truss truss(sim.kernel(), sim.controller());
  ASSERT_TRUE(truss.Trace(*pid).ok());
  EXPECT_NE(truss.report().find("FLTIZDIV"), std::string::npos) << truss.report();
  EXPECT_NE(truss.report().find("SIGFPE"), std::string::npos) << truss.report();
}

TEST(TrussTool, ErrorsAreSymbolic) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_open
      ldi r1, path
      ldi r2, O_RDONLY
      ldi r3, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
path: .asciz "/no/such/file"
  )").ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Truss truss(sim.kernel(), sim.controller());
  ASSERT_TRUE(truss.Trace(*pid).ok());
  EXPECT_NE(truss.report().find("ENOENT"), std::string::npos) << truss.report();
}

TEST(TrussTool, FollowForkTracesChildren) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r0, SYS_getppid
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )").ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Truss truss(sim.kernel(), sim.controller(), TrussOptions{.follow_fork = true});
  ASSERT_TRUE(truss.Trace(*pid).ok());
  EXPECT_NE(truss.report().find("getppid()"), std::string::npos)
      << "the child's syscalls are traced too:\n"
      << truss.report();
  auto it = truss.syscall_counts().find(SYS_exit);
  ASSERT_NE(it, truss.syscall_counts().end());
  EXPECT_GE(it->second, 2u) << "both exits seen";
}

TEST(TrussTool, CountsMode) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r8, 5
loop: ldi r0, SYS_getpid
      sys
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz loop
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )").ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Truss truss(sim.kernel(), sim.controller(), TrussOptions{.counts_only = true});
  ASSERT_TRUE(truss.Trace(*pid).ok());
  EXPECT_EQ(truss.syscall_counts().at(SYS_getpid), 5u);
  EXPECT_NE(truss.CountsTable().find("getpid"), std::string::npos);
}

TEST(DebuggerTool, BreakpointHitAndResume) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  ASSERT_TRUE(dbg.SetBreakpoint("loop").ok());
  auto stop = dbg.Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop->kind, Debugger::StopInfo::kBreakpoint);
  EXPECT_EQ(stop->symbol, "loop");
  EXPECT_EQ(stop->addr, *dbg.Lookup("loop"));
  // Continue again: one full loop iteration back to the same breakpoint.
  auto v1 = dbg.ReadWord("var");
  ASSERT_TRUE(v1.ok());
  stop = dbg.Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop->kind, Debugger::StopInfo::kBreakpoint);
  auto v2 = dbg.ReadWord("var");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, *v1 + 1) << "exactly one loop iteration between hits";
}

TEST(DebuggerTool, ConditionalBreakpoint) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  // Break at `loop` only when r5 (the counter) reaches 10.
  ASSERT_TRUE(dbg.SetConditionalBreakpoint(
                     *dbg.Lookup("loop"),
                     [](const PrStatus& st) { return st.pr_reg.r[5] >= 10; })
                  .ok());
  auto stop = dbg.Continue();
  ASSERT_TRUE(stop.ok());
  ASSERT_EQ(stop->kind, Debugger::StopInfo::kBreakpoint);
  EXPECT_GE(stop->status.pr_reg.r[5], 10u);
  EXPECT_EQ(stop->status.pr_reg.r[5], 10u) << "stops at the first satisfying hit";
  EXPECT_GE(dbg.breakpoint_evaluations(), 10u) << "the false hits were evaluated";
}

TEST(DebuggerTool, SingleStepWalksInstructions) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  auto st0 = dbg.handle().Status();
  ASSERT_TRUE(st0.ok());
  uint32_t pc = st0->pr_reg.pc;
  auto st1 = dbg.StepInstruction();
  ASSERT_TRUE(st1.ok());
  EXPECT_EQ(st1->pr_reg.pc, pc + 6);  // ldi
  auto st2 = dbg.StepInstruction();
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(st2->pr_reg.pc, pc + 10);  // ldw
}

TEST(DebuggerTool, WatchpointOnNamedVariable) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  ASSERT_TRUE(dbg.WatchVariable("var", 4, WA_WRITE).ok());
  auto stop = dbg.Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop->kind, Debugger::StopInfo::kWatchpoint);
  EXPECT_EQ(stop->addr, *dbg.Lookup("var"));
  EXPECT_EQ(stop->symbol, "var");
}

TEST(DebuggerTool, WriteVariableBySymbol) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  ASSERT_TRUE(dbg.WriteWord("var", 5000).ok());
  auto v = dbg.ReadWord("var");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5000u);
}

TEST(DebuggerTool, DisassembleShowsOriginalInstructionUnderBreakpoint) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  uint32_t loop = *dbg.Lookup("loop");
  ASSERT_TRUE(dbg.SetBreakpoint(loop).ok());
  auto dis = dbg.Disassemble(loop, 2);
  ASSERT_TRUE(dis.ok());
  EXPECT_NE(dis->find("ldi r4"), std::string::npos)
      << "the planted BPT must not leak into the listing:\n"
      << *dis;
  EXPECT_EQ(dis->find("bpt"), std::string::npos);
}

TEST(DebuggerTool, DetachLiftsBreakpointsAndResumes) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  {
    Debugger dbg(sim.kernel(), sim.controller());
    ASSERT_TRUE(dbg.Attach(*pid).ok());
    ASSERT_TRUE(dbg.SetBreakpoint("loop").ok());
    ASSERT_TRUE(dbg.Detach().ok());
  }
  // The process must run freely (no breakpoint faults, not stopped).
  for (int i = 0; i < 500; ++i) {
    sim.kernel().Step();
  }
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->state, Proc::State::kActive);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning);
}

TEST(DebuggerTool, ContinueReportsExit) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exit
      ldi r1, 12
      sys
  )").ok());
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(pid.ok());
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  auto stop = dbg.Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop->kind, Debugger::StopInfo::kExited);
  EXPECT_EQ(WExitCode(stop->exit_status), 12);
}

TEST(DebuggerTool, GrabAnExistingRunningProcess) {
  Sim sim;
  // "the ability to grab and debug an existing process"
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  for (int i = 0; i < 1000; ++i) {
    sim.kernel().Step();  // it has been running for a while
  }
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  auto v = dbg.ReadWord("var");
  ASSERT_TRUE(v.ok());
  EXPECT_GT(*v, 0u) << "attached mid-run with symbols resolved via PIOCOPENM";
}

}  // namespace
}  // namespace svr4
