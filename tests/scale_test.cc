// Scale tests for the process population layers: pid wraparound and reuse
// in a bounded pid space, O(1) lifecycle cost independent of table size,
// streaming-readdir cursor stability under churn, bulk snapshots matching
// the per-pid operations, and monitors holding thousands of descriptors.
//
// Sizes default small enough for a laptop run; SVR4PROC_SCALE_PROCS scales
// the big-population tests up (CI smoke runs them at 10^5).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/ps.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

constexpr char kSpin[] = "spin: jmp spin\n";
constexpr char kExit[] = R"(
      ldi r0, SYS_exit
      ldi r1, 0
      sys
)";

size_t ScaleProcs() {
  const char* env = std::getenv("SVR4PROC_SCALE_PROCS");
  if (env != nullptr && *env != 0) {
    long v = std::strtol(env, nullptr, 10);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return 20'000;
}

// One spawn → run-to-exit → reap cycle. The trailing Step() lets the
// event-driven reaper drain the zombie (its parent is init).
void ChurnOnce(Sim& sim) {
  auto pid = sim.Start("/bin/ex");
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(sim.kernel().RunToExit(*pid).ok());
  sim.kernel().Step();
  ASSERT_EQ(sim.kernel().FindProc(*pid), nullptr) << "zombie not reaped";
}

// --- Pid allocation: wraparound and reuse ----------------------------------

TEST(ScalePidTable, PidWraparoundReusesFreedPids) {
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetMaxPid(16);
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/ex", kExit).ok());

  // Fill the pid space: sched/init/pageout/controller already hold four.
  std::vector<Pid> held;
  for (;;) {
    auto pid = sim.Start("/bin/spin");
    if (!pid.ok()) {
      EXPECT_EQ(pid.error(), Errno::kEAGAIN);
      break;
    }
    held.push_back(*pid);
  }
  EXPECT_EQ(k.ProcCount(), 16u);
  ASSERT_GE(held.size(), 8u);

  // Free one pid from the middle and allocate again: the allocator must
  // wrap its cursor around the end of the bitmap and land on the hole.
  Pid freed = held[held.size() / 2];
  ASSERT_TRUE(k.Kill(sim.controller(), freed, SIGKILL).ok());
  ASSERT_TRUE(k.RunUntil([&] { return k.FindProc(freed) == nullptr; }));
  auto reused = sim.Start("/bin/spin");
  ASSERT_TRUE(reused.ok());
  EXPECT_EQ(*reused, freed);

  // Sustained churn inside the bounded space: every cycle reuses a pid.
  for (int i = 0; i < 50; ++i) {
    Pid victim = held[i % held.size()];
    ASSERT_TRUE(k.Kill(sim.controller(), victim, SIGKILL).ok());
    ASSERT_TRUE(k.RunUntil([&] { return k.FindProc(victim) == nullptr; }));
    auto next = sim.Start("/bin/spin");
    ASSERT_TRUE(next.ok());
    held[i % held.size()] = *next;
  }
  EXPECT_TRUE(k.CheckInvariants().empty());
}

TEST(ScalePidTable, StaleDescriptorAcrossPidReuseIsInert) {
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetMaxPid(16);
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());

  auto victim = sim.Start("/bin/spin");
  ASSERT_TRUE(victim.ok());
  auto fd = k.Open(sim.controller(), "/proc/" + std::to_string(*victim), O_RDWR);
  ASSERT_TRUE(fd.ok());

  // Kill and reap the victim, then churn until its pid is reused. The pid
  // space is tiny, so the allocator comes back around within a few spawns.
  ASSERT_TRUE(k.Kill(sim.controller(), *victim, SIGKILL).ok());
  ASSERT_TRUE(k.RunUntil([&] { return k.FindProc(*victim) == nullptr; }));
  Pid successor = -1;
  for (int i = 0; i < 64 && successor != *victim; ++i) {
    auto pid = sim.Start("/bin/spin");
    ASSERT_TRUE(pid.ok());
    successor = *pid;
    if (successor != *victim) {
      ASSERT_TRUE(k.Kill(sim.controller(), successor, SIGKILL).ok());
      ASSERT_TRUE(k.RunUntil([&] { return k.FindProc(successor) == nullptr; }));
    }
  }
  ASSERT_EQ(successor, *victim) << "pid never came back around";

  // The held descriptor must see ENOENT, not the successor: same pid,
  // different incarnation.
  PrPsinfo ps{};
  auto io = k.Ioctl(sim.controller(), *fd, PIOCPSINFO, &ps);
  ASSERT_FALSE(io.ok());
  EXPECT_EQ(io.error(), Errno::kENOENT);

  // Poll on the stale descriptor reports POLLNVAL, not the successor's state.
  PollFd pf{*fd, POLLPRI, 0};
  auto nready = k.PollFds(sim.controller(), std::span<PollFd>(&pf, 1), 0);
  ASSERT_TRUE(nready.ok());
  EXPECT_EQ(*nready, 1);
  EXPECT_EQ(pf.revents, POLLNVAL);

  // The stale descriptor holds no claim in the exclusivity ledger: an
  // exclusive grab of the successor succeeds while it is still open.
  auto excl =
      k.Open(sim.controller(), "/proc/" + std::to_string(successor), O_RDWR | O_EXCL);
  ASSERT_TRUE(excl.ok());
  ASSERT_TRUE(k.Close(sim.controller(), *excl).ok());

  // Closing the stale descriptor must not disturb the successor's ledger.
  ASSERT_TRUE(k.Close(sim.controller(), *fd).ok());
  auto again =
      k.Open(sim.controller(), "/proc/" + std::to_string(successor), O_RDWR | O_EXCL);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(k.Close(sim.controller(), *again).ok());
  EXPECT_TRUE(k.CheckInvariants().empty());
}

// --- Lifecycle cost vs population size -------------------------------------

// Times a burst of spawn/exit/reap cycles against a bystander population of
// the given size. Returns the best of three runs in nanoseconds.
uint64_t ChurnNanos(size_t bystanders, int cycles) {
  Sim sim;
  Kernel& k = sim.kernel();
  EXPECT_TRUE(sim.InstallProgram("/bin/ex", kExit).ok());
  for (size_t i = 0; i < bystanders; ++i) {
    EXPECT_NE(k.CreateNativeProc(Creds::Root(), "bystander"), nullptr);
  }
  uint64_t best = ~0ull;
  for (int run = 0; run < 3; ++run) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < cycles; ++i) {
      ChurnOnce(sim);
    }
    auto t1 = std::chrono::steady_clock::now();
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    best = std::min(best, ns);
  }
  return best;
}

TEST(ScaleChurn, LifecycleCostIndependentOfPopulation) {
  // An O(live-procs) walk anywhere in fork/exit/reap would make the large
  // population ~8x slower per cycle. O(1) structures keep the ratio near 1;
  // the bound leaves room for cache effects and noisy machines.
  uint64_t small = ChurnNanos(1'000, 200);
  uint64_t large = ChurnNanos(8'000, 200);
  double ratio = static_cast<double>(large) / static_cast<double>(small + 1);
  EXPECT_LT(ratio, 4.0) << "small=" << small << "ns large=" << large << "ns";
}

TEST(ScaleChurn, BigPopulationChurnStaysCoherent) {
  const size_t n = ScaleProcs();
  Sim sim;
  Kernel& k = sim.kernel();
  ASSERT_TRUE(sim.InstallProgram("/bin/ex", kExit).ok());
  const size_t base = k.ProcCount();
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NE(k.CreateNativeProc(Creds::Root(), "bystander"), nullptr);
  }
  ASSERT_EQ(k.ProcCount(), base + n);

  for (int i = 0; i < 100; ++i) {
    ChurnOnce(sim);
  }
  EXPECT_EQ(k.ProcCount(), base + n);

  // The allocation bitmap, hash table, and all-procs list agree.
  size_t walked = 0;
  Pid prev = -1;
  for (Pid pid = k.NextAllocatedPid(0); pid >= 0; pid = k.NextAllocatedPid(pid + 1)) {
    EXPECT_GT(pid, prev);
    EXPECT_NE(k.FindProc(pid), nullptr);
    prev = pid;
    ++walked;
  }
  EXPECT_EQ(walked, k.ProcCount());
  EXPECT_TRUE(k.CheckInvariants().empty());
}

TEST(ScaleChurn, ZombieFootprintShrinksBeforeReap) {
  // A zombie holds only its exit status and identity: the audit ring, the
  // descriptor table's capacity, and the lwp storage are released one Step
  // after exit, not at reap time. A monitor holding 10^5 unreaped zombies
  // must not also hold 10^5 full descriptor tables.
  Sim sim;
  Kernel& k = sim.kernel();
  ASSERT_TRUE(sim.InstallProgram("/bin/ex", kExit).ok());
  // Parent is the controller, which never waits: the zombie persists.
  auto z = k.Spawn("/bin/ex", {"ex"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(k.RunToExit(*z).ok());
  Proc* p = k.FindProc(*z);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->state, Proc::State::kZombie);
  // The slim pass runs at the start of the next Step.
  k.Step();
  EXPECT_EQ(p->trace.audit, nullptr) << "audit ring survived the slim pass";
  EXPECT_EQ(p->fds.capacity(), 0u);
  EXPECT_EQ(p->lwps.capacity(), 0u);
  EXPECT_EQ(ProcDynamicFootprint(*p), 0u);
  // The totals survive for PIOCAUDIT/psinfo, and the reap still works.
  EXPECT_TRUE(k.CheckInvariants().empty());
  auto ps = PsSnapshotAll(k, sim.controller());
  ASSERT_TRUE(ps.ok());
  bool saw = false;
  for (const PrPsinfo& row : *ps) {
    saw |= row.pr_pid == *z && row.pr_state == 'Z';
  }
  EXPECT_TRUE(saw);
}

// --- Streaming readdir under churn ------------------------------------------

TEST(ScaleReaddir, CursorStableAcrossChurn) {
  Sim sim;
  Kernel& k = sim.kernel();
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());

  std::vector<Pid> survivors;
  for (int i = 0; i < 40; ++i) {
    auto pid = sim.Start("/bin/spin");
    ASSERT_TRUE(pid.ok());
    survivors.push_back(*pid);
  }

  for (const char* root : {"/proc", "/proc2"}) {
    uint64_t cookie = 0;
    std::vector<Pid> seen;
    std::vector<Pid> churn;
    std::vector<DirEnt> ents;
    int churn_rounds = 0;
    for (;;) {
      ents.clear();
      auto got = k.ReadDirChunk(sim.controller(), root, &cookie, 16, &ents);
      ASSERT_TRUE(got.ok());
      if (*got == 0) {
        break;
      }
      for (const auto& e : ents) {
        if (e.name == "kernel") {
          continue;  // /proc2's kernel directory leads the listing
        }
        seen.push_back(static_cast<Pid>(std::strtol(e.name.c_str(), nullptr, 10)));
      }
      // Churn between the first chunks: one birth, one death. The cursor
      // must neither skip a stable entry nor produce a duplicate. Bounded,
      // because every birth lands ahead of the cursor and extends the walk.
      if (++churn_rounds <= 6) {
        auto born = sim.Start("/bin/spin");
        ASSERT_TRUE(born.ok());
        churn.push_back(*born);
        if (churn.size() > 1) {
          Pid victim = churn.front();
          churn.erase(churn.begin());
          ASSERT_TRUE(k.Kill(sim.controller(), victim, SIGKILL).ok());
          ASSERT_TRUE(k.RunUntil([&] { return k.FindProc(victim) == nullptr; }));
        }
      }
    }
    // Strictly ascending means no duplicates and no cursor regression.
    EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
    // Every process alive for the whole walk shows up exactly once.
    for (Pid s : survivors) {
      EXPECT_EQ(std::count(seen.begin(), seen.end(), s), 1) << root << " pid " << s;
    }
    // Clean up this root's leftover churn procs before the next pass.
    for (Pid p : churn) {
      ASSERT_TRUE(k.Kill(sim.controller(), p, SIGKILL).ok());
      ASSERT_TRUE(k.RunUntil([&] { return k.FindProc(p) == nullptr; }));
    }
  }
  EXPECT_TRUE(k.CheckInvariants().empty());
}

// --- Bulk snapshots -----------------------------------------------------------

TEST(ScaleSnapshot, PsAllMatchesPerPidPsinfo) {
  Sim sim;
  Kernel& k = sim.kernel();
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/ex", kExit).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(sim.Start("/bin/spin").ok());
  }
  // One zombie: its parent is the native controller, which never waits.
  auto z = k.Spawn("/bin/ex", {"ex"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(k.RunToExit(*z).ok());
  ASSERT_NE(k.FindProc(*z), nullptr);

  auto all = PsSnapshotAll(k, sim.controller());
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), k.ProcCount());

  // The bulk rows match what PIOCPSINFO reports pid by pid — including the
  // zombie, which the paper says keeps its /proc entry until reaped.
  bool saw_zombie = false;
  for (const PrPsinfo& row : *all) {
    auto h = ProcHandle::Grab(k, sim.controller(), row.pr_pid, O_RDONLY);
    ASSERT_TRUE(h.ok()) << "pid " << row.pr_pid;
    auto one = h->Psinfo();
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one->pr_pid, row.pr_pid);
    EXPECT_EQ(one->pr_ppid, row.pr_ppid);
    EXPECT_EQ(one->pr_state, row.pr_state);
    EXPECT_EQ(one->pr_nlwp, row.pr_nlwp);
    EXPECT_STREQ(one->pr_fname, row.pr_fname);
    saw_zombie |= row.pr_state == 'Z';
  }
  EXPECT_TRUE(saw_zombie);

  // /proc2/kernel/psall serves the same table as packed bytes.
  auto attr = k.Stat(sim.controller(), "/proc2/kernel/psall");
  ASSERT_TRUE(attr.ok());
  ASSERT_EQ(attr->size, all->size() * sizeof(PrPsinfo));
  std::vector<uint8_t> buf(attr->size);
  auto fd = k.Open(sim.controller(), "/proc2/kernel/psall", O_RDONLY);
  ASSERT_TRUE(fd.ok());
  auto nread = k.Read(sim.controller(), *fd, buf.data(), buf.size());
  ASSERT_TRUE(nread.ok());
  ASSERT_EQ(static_cast<size_t>(*nread), buf.size());
  ASSERT_TRUE(k.Close(sim.controller(), *fd).ok());
  for (size_t i = 0; i < all->size(); ++i) {
    PrPsinfo row{};
    std::memcpy(&row, buf.data() + i * sizeof(PrPsinfo), sizeof(PrPsinfo));
    EXPECT_EQ(row.pr_pid, (*all)[i].pr_pid);
    EXPECT_EQ(row.pr_state, (*all)[i].pr_state);
  }
}

TEST(ScaleSnapshot, ChunkedPsWalkMatchesBulk) {
  Sim sim;
  Kernel& k = sim.kernel();
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(sim.Start("/bin/spin").ok());
  }
  auto walked = PsSnapshot(k, sim.controller());
  auto bulk = PsSnapshotAll(k, sim.controller());
  ASSERT_TRUE(walked.ok());
  ASSERT_TRUE(bulk.ok());
  ASSERT_EQ(walked->size(), bulk->size());
  for (size_t i = 0; i < bulk->size(); ++i) {
    EXPECT_EQ((*walked)[i].pr_pid, (*bulk)[i].pr_pid);
    EXPECT_EQ((*walked)[i].pr_state, (*bulk)[i].pr_state);
  }
}

TEST(ScaleSnapshot, WindowedPsAllMatchesBulk) {
  // The pr_start_pid/pr_limit window operands page through the population
  // in bounded memory; chaining pr_next_pid must reproduce the bulk
  // snapshot exactly, whatever the window size.
  Sim sim;
  Kernel& k = sim.kernel();
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(sim.Start("/bin/spin").ok());
  }
  auto h = ProcHandle::Grab(k, sim.controller(), 1, O_RDONLY);
  ASSERT_TRUE(h.ok());
  PrPsAll bulk;
  ASSERT_TRUE(k.Ioctl(sim.controller(), h->fd(), PIOCPSALL, &bulk).ok());
  ASSERT_EQ(bulk.pr_procs.size(), k.ProcCount());
  EXPECT_EQ(bulk.pr_next_pid, -1);

  for (uint32_t limit : {1u, 7u, 1000u}) {
    std::vector<PrPsinfo> paged;
    PrPsAll w;
    w.pr_limit = limit;
    for (;;) {
      w.pr_procs.clear();
      w.pr_next_pid = -1;
      ASSERT_TRUE(k.Ioctl(sim.controller(), h->fd(), PIOCPSALL, &w).ok());
      EXPECT_LE(w.pr_procs.size(), limit);
      paged.insert(paged.end(), w.pr_procs.begin(), w.pr_procs.end());
      if (w.pr_next_pid < 0) {
        break;
      }
      w.pr_start_pid = w.pr_next_pid;
    }
    ASSERT_EQ(paged.size(), bulk.pr_procs.size()) << "limit=" << limit;
    for (size_t i = 0; i < paged.size(); ++i) {
      EXPECT_EQ(paged[i].pr_pid, bulk.pr_procs[i].pr_pid);
      EXPECT_EQ(paged[i].pr_state, bulk.pr_procs[i].pr_state);
    }
  }
}

// --- Monitors with large descriptor sets -------------------------------------

TEST(ScalePoll, MonitorHoldsThousandsOfDescriptors) {
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetFdLimit(4096);
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());

  // A native monitor holding one /proc descriptor per process — the shape
  // the old wired 64-entry poll cap made impossible.
  std::vector<PollFd> fds;
  for (int i = 0; i < 1'500; ++i) {
    Proc* p = k.CreateNativeProc(Creds::Root(), "worker");
    ASSERT_NE(p, nullptr);
    auto fd = k.Open(sim.controller(), "/proc/" + std::to_string(p->pid), O_RDONLY);
    ASSERT_TRUE(fd.ok());
    fds.push_back(PollFd{*fd, POLLPRI, 0});
  }

  // Nothing is stopped yet: a full sweep reports no ready descriptors.
  auto nready = k.PollFds(sim.controller(), std::span<PollFd>(fds), 0);
  ASSERT_TRUE(nready.ok());
  EXPECT_EQ(*nready, 0);

  // Stop one traced process; exactly its descriptor turns POLLPRI.
  auto pid = sim.Start("/bin/spin");
  ASSERT_TRUE(pid.ok());
  auto h = ProcHandle::Grab(k, sim.controller(), *pid, O_RDWR);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Stop().ok());
  auto fd = k.Open(sim.controller(), "/proc/" + std::to_string(*pid), O_RDONLY);
  ASSERT_TRUE(fd.ok());
  fds.push_back(PollFd{*fd, POLLPRI, 0});
  nready = k.PollFds(sim.controller(), std::span<PollFd>(fds), 0);
  ASSERT_TRUE(nready.ok());
  EXPECT_EQ(*nready, 1);
  EXPECT_EQ(fds.back().revents, POLLPRI);
}

}  // namespace
}  // namespace svr4
