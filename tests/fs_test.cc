// Unit tests for the VFS layer: path resolution, mounts, memfs, devices
// (console/pipes), descriptor semantics, and file-backed VM objects.
#include <gtest/gtest.h>

#include <cstring>

#include "svr4proc/fs/dev.h"
#include "svr4proc/fs/memfs.h"
#include "svr4proc/fs/vfs.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

VAttr Mode(uint32_t mode, Uid uid = 0, Gid gid = 0) {
  VAttr a;
  a.mode = mode;
  a.uid = uid;
  a.gid = gid;
  return a;
}

TEST(Vfs, ResolveWalksComponents) {
  Vfs vfs;
  ASSERT_TRUE(vfs.MkdirAll("/a/b/c", Mode(0755)).ok());
  auto c = vfs.Resolve("/a/b/c");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->type(), VType::kDir);
  EXPECT_TRUE(vfs.Resolve("/a//b/./c").ok()) << "duplicate slashes and dots";
  EXPECT_FALSE(vfs.Resolve("/a/x").ok());
  EXPECT_FALSE(vfs.Resolve("relative/path").ok());
}

TEST(Vfs, ResolveParentSplitsLeaf) {
  Vfs vfs;
  ASSERT_TRUE(vfs.MkdirAll("/dir", Mode(0755)).ok());
  std::string leaf;
  auto parent = vfs.ResolveParent("/dir/file.txt", &leaf);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(leaf, "file.txt");
  // Parent of a top-level name is the root.
  parent = vfs.ResolveParent("/top", &leaf);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->get(), vfs.root().get());
}

TEST(Vfs, MountCoversDirectory) {
  Vfs vfs;
  ASSERT_TRUE(vfs.MkdirAll("/mnt", Mode(0755)).ok());
  auto fsroot = std::make_shared<MemDir>(Mode(0755));
  (void)fsroot->Create("inside", Mode(0644));
  ASSERT_TRUE(vfs.Mount("/mnt", fsroot).ok());
  auto f = vfs.Resolve("/mnt/inside");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->type(), VType::kReg);
}

TEST(MemFs, CreateWriteRead) {
  Vfs vfs;
  std::string leaf;
  auto root = vfs.ResolveParent("/f", &leaf);
  auto file = (*root)->Create("f", Mode(0644));
  ASSERT_TRUE(file.ok());
  OpenFile of;
  of.vp = *file;
  std::string text = "hello file";
  auto n = (*file)->Write(of, 0, std::span<const uint8_t>(
                                     reinterpret_cast<const uint8_t*>(text.data()),
                                     text.size()));
  ASSERT_TRUE(n.ok());
  std::vector<uint8_t> buf(32);
  auto r = (*file)->Read(of, 0, buf);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, static_cast<int64_t>(text.size()));
  EXPECT_EQ(std::memcmp(buf.data(), text.data(), text.size()), 0);
  // Sparse write extends with zeros.
  uint8_t b = 0xFF;
  ASSERT_TRUE((*file)->Write(of, 100, std::span<const uint8_t>(&b, 1)).ok());
  auto attr = (*file)->GetAttr();
  EXPECT_EQ(attr->size, 101u);
}

TEST(MemFs, DirectoryOperations) {
  auto dir = std::make_shared<MemDir>(Mode(0755));
  ASSERT_TRUE(dir->Create("a", Mode(0644)).ok());
  ASSERT_TRUE(dir->Mkdir("sub", Mode(0755)).ok());
  EXPECT_FALSE(dir->Create("a", Mode(0644)).ok()) << "EEXIST";
  auto ents = dir->Readdir();
  ASSERT_TRUE(ents.ok());
  EXPECT_EQ(ents->size(), 2u);
  // Removing a non-empty directory fails.
  auto sub = dir->Lookup("sub");
  ASSERT_TRUE((*sub)->Create("inner", Mode(0644)).ok());
  EXPECT_FALSE(dir->Remove("sub").ok());
  ASSERT_TRUE((*sub)->Remove("inner").ok());
  EXPECT_TRUE(dir->Remove("sub").ok());
  EXPECT_TRUE(dir->Remove("a").ok());
  EXPECT_FALSE(dir->Remove("a").ok()) << "ENOENT";
}

TEST(MemFs, PermissionChecksOnOpen) {
  auto file = std::make_shared<MemFile>(Mode(0600, 100, 10));
  OpenFile of;
  of.vp = file;
  of.oflags = O_RDONLY;
  EXPECT_TRUE(file->Open(of, Creds::User(100, 10), nullptr).ok()) << "owner";
  EXPECT_FALSE(file->Open(of, Creds::User(101, 10), nullptr).ok()) << "stranger";
  EXPECT_TRUE(file->Open(of, Creds::Root(), nullptr).ok()) << "super-user";
  of.oflags = O_WRONLY;
  EXPECT_FALSE(file->Open(of, Creds::User(101, 10), nullptr).ok());
}

TEST(MemFs, GroupPermissions) {
  auto file = std::make_shared<MemFile>(Mode(0640, 100, 10));
  OpenFile of;
  of.vp = file;
  of.oflags = O_RDONLY;
  Creds member = Creds::User(200, 10);
  EXPECT_TRUE(file->Open(of, member, nullptr).ok()) << "group read";
  of.oflags = O_WRONLY;
  EXPECT_FALSE(file->Open(of, member, nullptr).ok()) << "group has no write";
  Creds supp = Creds::User(200, 99);
  supp.groups = {10};
  of.oflags = O_RDONLY;
  EXPECT_TRUE(file->Open(of, supp, nullptr).ok()) << "supplementary group";
}

TEST(MemFs, FileVmObjectSharesPages) {
  auto file = std::make_shared<MemFile>(Mode(0644));
  std::vector<uint8_t> data(2 * kPageSize, 0x11);
  OpenFile of;
  of.vp = file;
  ASSERT_TRUE(file->Write(of, 0, data).ok());
  auto o1 = file->GetVmObject();
  auto o2 = file->GetVmObject();
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_EQ(o1->get(), o2->get()) << "one object per file: mappings share pages";
  auto p = (*o1)->GetPage(0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->bytes[0], 0x11);
  // Past EOF: zero-filled.
  auto p2 = (*o1)->GetPage(5);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ((*p2)->bytes[0], 0);
}

TEST(Console, CapturesOutputAndServesInput) {
  ConsoleVnode con;
  OpenFile of;
  std::string s = "printed";
  ASSERT_TRUE(con.Write(of, 0, std::span<const uint8_t>(
                                   reinterpret_cast<const uint8_t*>(s.data()), s.size()))
                  .ok());
  EXPECT_EQ(con.output(), "printed");
  con.PushInput("typed");
  std::vector<uint8_t> buf(3);
  auto n = con.Read(of, 0, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3);
  EXPECT_EQ(std::memcmp(buf.data(), "typ", 3), 0);
  EXPECT_TRUE(con.Poll(of) & POLLIN);
}

TEST(Pipes, DataFlowAndBackpressureSignalling) {
  auto buf = std::make_shared<PipeBuf>();
  PipeVnode rd(buf, false);
  PipeVnode wr(buf, true);
  OpenFile rof, wof;
  rof.vp = nullptr;
  Creds cr;
  (void)rd.Open(rof, cr, nullptr);
  (void)wr.Open(wof, cr, nullptr);

  // Empty pipe with a live writer: EAGAIN (kernel turns this into a sleep).
  uint8_t b;
  auto r = rd.Read(rof, 0, std::span<uint8_t>(&b, 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEAGAIN);

  std::string s = "xy";
  ASSERT_TRUE(wr.Write(wof, 0, std::span<const uint8_t>(
                                   reinterpret_cast<const uint8_t*>(s.data()), s.size()))
                  .ok());
  r = rd.Read(rof, 0, std::span<uint8_t>(&b, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(b, 'x');

  // Fill to capacity: the next write is EAGAIN.
  std::vector<uint8_t> big(PipeBuf::kCapacity, 0);
  (void)wr.Write(wof, 0, big);
  auto w = wr.Write(wof, 0, std::span<const uint8_t>(big.data(), 1));
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.error(), Errno::kEAGAIN);

  // Writer closes: EOF after draining.
  wr.Close(wof);
  while (true) {
    auto n = rd.Read(rof, 0, std::span<uint8_t>(big.data(), big.size()));
    ASSERT_TRUE(n.ok());
    if (*n == 0) {
      break;
    }
  }
  EXPECT_TRUE(rd.Poll(rof) & POLLHUP);
}

TEST(Pipes, WriteWithoutReadersIsEpipe) {
  auto buf = std::make_shared<PipeBuf>();
  PipeVnode wr(buf, true);
  OpenFile wof;
  Creds cr;
  (void)wr.Open(wof, cr, nullptr);
  uint8_t b = 1;
  auto w = wr.Write(wof, 0, std::span<const uint8_t>(&b, 1));
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.error(), Errno::kEPIPE);
}

TEST(Descriptors, DupSharesOffset) {
  Sim sim;
  Kernel& k = sim.kernel();
  Proc* me = sim.controller();
  std::vector<uint8_t> content = {'a', 'b', 'c', 'd', 'e', 'f'};
  ASSERT_TRUE(k.WriteFileAt("/tmp/f", content).ok());
  int fd = *k.Open(me, "/tmp/f", O_RDONLY);
  uint8_t b;
  ASSERT_TRUE(k.Read(me, fd, &b, 1).ok());
  EXPECT_EQ(b, 'a');
  // lseek is shared through the open-file object; a second open is not.
  int fd2 = *k.Open(me, "/tmp/f", O_RDONLY);
  ASSERT_TRUE(k.Read(me, fd2, &b, 1).ok());
  EXPECT_EQ(b, 'a') << "independent open file, independent offset";
  ASSERT_TRUE(k.Read(me, fd, &b, 1).ok());
  EXPECT_EQ(b, 'b');
}

TEST(Descriptors, LseekSemantics) {
  Sim sim;
  Kernel& k = sim.kernel();
  Proc* me = sim.controller();
  std::vector<uint8_t> content(100, 7);
  ASSERT_TRUE(k.WriteFileAt("/tmp/f", content).ok());
  int fd = *k.Open(me, "/tmp/f", O_RDONLY);
  EXPECT_EQ(*k.Lseek(me, fd, 10, SEEK_SET_), 10);
  EXPECT_EQ(*k.Lseek(me, fd, 5, SEEK_CUR_), 15);
  EXPECT_EQ(*k.Lseek(me, fd, -10, SEEK_END_), 90);
  EXPECT_FALSE(k.Lseek(me, fd, -200, SEEK_CUR_).ok()) << "negative position";
  EXPECT_FALSE(k.Lseek(me, fd, 0, 9).ok()) << "bad whence";
}

TEST(Descriptors, BadFdErrors) {
  Sim sim;
  Kernel& k = sim.kernel();
  Proc* me = sim.controller();
  uint8_t b;
  EXPECT_EQ(k.Read(me, 42, &b, 1).error(), Errno::kEBADF);
  EXPECT_EQ(k.Close(me, 42).error(), Errno::kEBADF);
  int fd = *k.Open(me, "/tmp", O_RDONLY);
  ASSERT_TRUE(k.Close(me, fd).ok());
  EXPECT_EQ(k.Close(me, fd).error(), Errno::kEBADF) << "double close";
}

TEST(Descriptors, OpenCreatRespectsUmaskAndTrunc) {
  Sim sim;
  Kernel& k = sim.kernel();
  Proc* me = sim.controller();
  int fd = *k.Open(me, "/tmp/new", O_WRONLY | O_CREAT, 0666);
  uint8_t b = 1;
  ASSERT_TRUE(k.Write(me, fd, &b, 1).ok());
  (void)k.Close(me, fd);
  auto attr = *k.Stat(me, "/tmp/new");
  EXPECT_EQ(attr.mode, 0666u & ~me->umask);
  EXPECT_EQ(attr.size, 1u);
  // O_TRUNC empties it.
  fd = *k.Open(me, "/tmp/new", O_WRONLY | O_TRUNC);
  (void)k.Close(me, fd);
  EXPECT_EQ(k.Stat(me, "/tmp/new")->size, 0u);
}

}  // namespace
}  // namespace svr4
