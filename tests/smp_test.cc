// Tests for the deterministic SMP model: per-CPU run queues with work
// stealing, round-robin CPU stepping, cross-CPU TLB/code shootdown IPIs,
// the free-running mode, and the /proc faces of the topology
// (/proc2/kernel/cpus, pr_cpuid). The determinism contract under test:
// ncpus=1 is bit-identical to the uniprocessor kernel, and any fixed
// (ncpus, seed) pair replays exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "svr4proc/kernel/faults.h"
#include "svr4proc/kernel/ktrace.h"
#include "svr4proc/kernel/smp.h"
#include "svr4proc/tools/debugger.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

constexpr char kSpinForever[] = R"(
spin: addi r8, 1
      jmp spin
)";

// Counts to a bound, writes a marker, exits: enough instructions that a
// multi-CPU run spreads quanta around, bounded so RunToExit terminates.
constexpr char kCountAndExit[] = R"(
      ldi r8, 0
loop: addi r8, 1
      cmpi r8, 3000
      jlt loop
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 5
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "done\n"
)";

// Fork/exit churn: twelve generations of fork + wait. Steal-vs-wakeup
// bookkeeping has to survive lwps being enrolled, stolen, and torn down
// while other CPUs keep running.
constexpr char kForkChurn[] = R"(
      ldi r9, 0
again:
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_wait
      sys
      addi r9, 1
      cmpi r9, 12
      jlt again
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r0, SYS_exit
      ldi r1, 0
      sys
)";

void ExpectInvariantsClean(Kernel& k, const char* where) {
  auto violations = k.CheckInvariants();
  for (const auto& v : violations) {
    ADD_FAILURE() << where << ": invariant violated: " << v;
  }
}

// Runs until `pid` has exited (zombie or already reaped) — unlike
// RunToExit, tolerant of init having reaped the child meanwhile.
void DrainPid(Kernel& k, Pid pid) {
  bool done = k.RunUntil(
      [&] {
        Proc* p = k.FindProc(pid);
        return p == nullptr || p->state == Proc::State::kZombie;
      },
      2'000'000);
  EXPECT_TRUE(done) << "pid " << pid << " never exited";
}

uint64_t TotalSteals(const Kernel& k) {
  uint64_t n = 0;
  for (int i = 0; i < k.smp().ncpus(); ++i) {
    n += k.smp().cpu(i).stats.steals;
  }
  return n;
}

// Counts kIpi records in the kernel's trace ring.
uint64_t IpiRecordCount(Kernel& k) {
  auto snap = k.ktrace().Snapshot();
  if (snap.size() < sizeof(KtSnapHeader)) {
    return 0;
  }
  KtSnapHeader h;
  std::memcpy(&h, snap.data(), sizeof(h));
  uint64_t n = 0;
  for (uint32_t i = 0; i < h.kt_nrec; ++i) {
    KtRec r;
    std::memcpy(&r, snap.data() + sizeof(h) + i * sizeof(r), sizeof(r));
    if (r.kt_event == static_cast<uint32_t>(KtEvent::kIpi)) {
      ++n;
    }
  }
  return n;
}

std::string ReadWholeFile(Sim& sim, const std::string& path) {
  auto fd = sim.kernel().Open(sim.controller(), path, O_RDONLY);
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) {
    return {};
  }
  std::string out;
  char buf[512];
  for (;;) {
    auto n = sim.kernel().Read(sim.controller(), *fd, buf, sizeof(buf));
    EXPECT_TRUE(n.ok());
    if (!n.ok() || *n == 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(*n));
  }
  (void)sim.kernel().Close(sim.controller(), *fd);
  return out;
}

// ---------------------------------------------------------------------------
// ncpus=1 is the uniprocessor kernel, bit for bit.
// ---------------------------------------------------------------------------

// Save/clear the SMP env knobs for the duration of a test: the point of
// the identity test is the *default* topology, which CI jobs override.
struct ScopedDefaultSmpEnv {
  std::string ncpus, mode;
  bool had_ncpus, had_mode;
  ScopedDefaultSmpEnv() {
    const char* n = std::getenv("SVR4PROC_NCPUS");
    const char* m = std::getenv("SVR4PROC_SMP_MODE");
    had_ncpus = n != nullptr;
    had_mode = m != nullptr;
    ncpus = n != nullptr ? n : "";
    mode = m != nullptr ? m : "";
    unsetenv("SVR4PROC_NCPUS");
    unsetenv("SVR4PROC_SMP_MODE");
  }
  ~ScopedDefaultSmpEnv() {
    if (had_ncpus) setenv("SVR4PROC_NCPUS", ncpus.c_str(), 1);
    if (had_mode) setenv("SVR4PROC_SMP_MODE", mode.c_str(), 1);
  }
};

TEST(Smp, SingleCpuIsByteIdenticalToDefault) {
  // Run the same traced workload on a default kernel and on one where the
  // SMP plumbing was explicitly engaged at ncpus=1. Everything observable —
  // console bytes, tick count, the full trace ring — must be identical:
  // CPU 0's queue IS the old machinery, not a copy of it.
  ScopedDefaultSmpEnv env_guard;
  std::string console[2];
  uint64_t ticks[2];
  std::vector<uint8_t> snap[2];
  for (int run = 0; run < 2; ++run) {
    Sim sim;
    if (run == 1) {
      sim.kernel().SetNumCpus(1);
      sim.kernel().SetSmpMode(SmpMode::kDeterministic);
    }
    sim.kernel().SetTracing(true, true);
    ASSERT_TRUE(sim.InstallProgram("/bin/churn", kForkChurn).ok());
    auto pid = sim.Start("/bin/churn");
    ASSERT_TRUE(pid.ok());
    auto st = sim.kernel().RunToExit(*pid);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(WExitCode(*st), 0);
    console[run] = sim.ConsoleOutput();
    ticks[run] = sim.kernel().Ticks();
    snap[run] = sim.kernel().ktrace().Snapshot();
    ExpectInvariantsClean(sim.kernel(), "single-cpu");
  }
  EXPECT_EQ(console[0], console[1]);
  EXPECT_EQ(ticks[0], ticks[1]);
  EXPECT_EQ(snap[0], snap[1]) << "trace rings diverged";
}

// ---------------------------------------------------------------------------
// A fixed (ncpus, seed) pair replays exactly.
// ---------------------------------------------------------------------------

TEST(Smp, FourCpuDeterministicReplay) {
  for (bool chaos : {false, true}) {
    std::string console[2];
    uint64_t ticks[2];
    std::vector<uint8_t> snap[2];
    for (int run = 0; run < 2; ++run) {
      Sim sim;
      sim.kernel().SetNumCpus(4);
      sim.kernel().SetTracing(true, true);
      if (chaos) {
        sim.kernel().SetChaosScheduler(7);
      }
      ASSERT_TRUE(sim.InstallProgram("/bin/churn", kForkChurn).ok());
      ASSERT_TRUE(sim.InstallProgram("/bin/count", kCountAndExit).ok());
      auto a = sim.Start("/bin/churn");
      auto b = sim.Start("/bin/count");
      auto c = sim.Start("/bin/count");
      ASSERT_TRUE(a.ok() && b.ok() && c.ok());
      DrainPid(sim.kernel(), *a);
      DrainPid(sim.kernel(), *b);
      DrainPid(sim.kernel(), *c);
      console[run] = sim.ConsoleOutput();
      ticks[run] = sim.kernel().Ticks();
      snap[run] = sim.kernel().ktrace().Snapshot();
      ExpectInvariantsClean(sim.kernel(), chaos ? "4cpu-chaos" : "4cpu");
    }
    EXPECT_EQ(console[0], console[1]) << "chaos=" << chaos;
    EXPECT_EQ(ticks[0], ticks[1]) << "chaos=" << chaos;
    EXPECT_EQ(snap[0], snap[1]) << "trace rings diverged, chaos=" << chaos;
  }
}

// ---------------------------------------------------------------------------
// Cross-CPU stop: a directed stop against an lwp homed on another CPU is
// modeled as a rescheduling IPI.
// ---------------------------------------------------------------------------

TEST(Smp, CrossCpuStopSendsIpi) {
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetNumCpus(4);
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpinForever).ok());
  std::vector<Pid> pids;
  for (int i = 0; i < 4; ++i) {
    auto pid = sim.Start("/bin/spin");
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  for (int i = 0; i < 64; ++i) {
    k.Step();
  }
  // Stop every spinner: the enrollment spread them over the CPUs, so at
  // least three are homed away from CPU 0 (the controller's context) and
  // each of those stops must charge an IPI.
  uint64_t before = k.smp().TotalIpisSent();
  for (Pid pid : pids) {
    auto h = ProcHandle::Grab(k, sim.controller(), pid);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(h->Stop().ok());
  }
  EXPECT_GT(k.smp().TotalIpisSent(), before) << "no rescheduling IPI charged";
  // Pending interrupts are acknowledged at the target's next quantum
  // boundary; run the kernel forward and check conservation.
  for (int i = 0; i < 16; ++i) {
    k.Step();
  }
  ExpectInvariantsClean(k, "cross-cpu-stop");
}

// ---------------------------------------------------------------------------
// Shootdown: planting a breakpoint in text that another CPU has current
// must appear in the trace as cross-CPU interrupts.
// ---------------------------------------------------------------------------

TEST(Smp, BreakpointPlantShootsDownRemoteCpus) {
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetNumCpus(4);
  k.SetTracing(true, true);
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpinForever).ok());
  std::vector<Pid> pids;
  for (int i = 0; i < 4; ++i) {
    auto pid = sim.Start("/bin/spin");
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  // Spread quanta so every CPU has some spinner's address space current.
  for (int i = 0; i < 64; ++i) {
    k.Step();
  }
  uint64_t ipis_before = IpiRecordCount(k);
  // Plant a breakpoint in each spinner: the PrWrite into executing text
  // bumps the code generation and shoots down whichever CPUs hold that
  // address space — at least one of the four targets is mid-quantum-state
  // on a CPU other than the controller's.
  for (Pid pid : pids) {
    Debugger dbg(k, sim.controller());
    ASSERT_TRUE(dbg.Attach(pid).ok());
    ASSERT_TRUE(dbg.SetBreakpoint("spin").ok());
    ASSERT_TRUE(dbg.Detach().ok());
  }
  EXPECT_GT(IpiRecordCount(k), ipis_before)
      << "no kIpi trace record from the code shootdown";
  for (int i = 0; i < 16; ++i) {
    k.Step();
  }
  ExpectInvariantsClean(k, "breakpoint-shootdown");
}

// ---------------------------------------------------------------------------
// Work stealing keeps every CPU busy and never loses or duplicates an lwp.
// ---------------------------------------------------------------------------

TEST(Smp, StealingBalancesLoadUnderChurn) {
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetNumCpus(4);
  ASSERT_TRUE(sim.InstallProgram("/bin/churn", kForkChurn).ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpinForever).ok());
  // One long-running spinner plus churn: CPUs whose queues drain as
  // children exit must steal rather than idle.
  ASSERT_TRUE(sim.Start("/bin/spin").ok());
  auto churn = sim.Start("/bin/churn");
  ASSERT_TRUE(churn.ok());
  ASSERT_TRUE(k.RunToExit(*churn).ok());
  EXPECT_GT(TotalSteals(k), 0u) << "drained CPUs never stole work";
  uint64_t busy_cpus = 0;
  for (int i = 0; i < k.smp().ncpus(); ++i) {
    busy_cpus += k.smp().cpu(i).stats.quanta > 0 ? 1 : 0;
  }
  EXPECT_GE(busy_cpus, 2u) << "work never spread beyond one CPU";
  ExpectInvariantsClean(k, "steal-churn");
}

// ---------------------------------------------------------------------------
// Free-running mode: real worker threads, same observable results.
// ---------------------------------------------------------------------------

TEST(Smp, FreeRunMatchesDeterministicResults) {
  std::string console[2];
  for (int run = 0; run < 2; ++run) {
    Sim sim;
    Kernel& k = sim.kernel();
    k.SetNumCpus(4);
    k.SetSmpMode(run == 0 ? SmpMode::kDeterministic : SmpMode::kFreeRun);
    ASSERT_TRUE(sim.InstallProgram("/bin/count", kCountAndExit).ok());
    auto pid = sim.Start("/bin/count");
    ASSERT_TRUE(pid.ok());
    auto st = k.RunToExit(*pid);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(WExitCode(*st), 0);
    console[run] = sim.ConsoleOutput();
    ExpectInvariantsClean(k, run == 0 ? "free-run/det" : "free-run/free");
  }
  // A single process writes its console bytes in program order regardless
  // of scheduling mode.
  EXPECT_EQ(console[0], console[1]);
}

TEST(Smp, FreeRunSurvivesForkChurnAndStops) {
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetNumCpus(4);
  k.SetSmpMode(SmpMode::kFreeRun);
  ASSERT_TRUE(sim.InstallProgram("/bin/churn", kForkChurn).ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpinForever).ok());
  auto spin = sim.Start("/bin/spin");
  auto churn = sim.Start("/bin/churn");
  ASSERT_TRUE(spin.ok() && churn.ok());
  auto st = k.RunToExit(*churn);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(WExitCode(*st), 0);
  // A directed stop against the still-spinning process: the controller's
  // kernel work interleaves with parked workers, and the stop lands.
  auto h = ProcHandle::Grab(k, sim.controller(), *spin);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Stop().ok());
  auto status = h->Status();
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->pr_flags & PR_STOPPED, 0u);
  ExpectInvariantsClean(k, "free-run-churn");
}

// ---------------------------------------------------------------------------
// The observability faces: /proc2/kernel/cpus and pr_cpuid.
// ---------------------------------------------------------------------------

TEST(Smp, CpusFileAndPsinfoExposeTopology) {
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetNumCpus(4);
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpinForever).ok());
  std::vector<Pid> pids;
  for (int i = 0; i < 4; ++i) {
    auto pid = sim.Start("/bin/spin");
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  for (int i = 0; i < 64; ++i) {
    k.Step();
  }
  std::string cpus = ReadWholeFile(sim, "/proc2/kernel/cpus");
  EXPECT_NE(cpus.find("ncpus 4"), std::string::npos) << cpus;
  EXPECT_NE(cpus.find("cpu0"), std::string::npos);
  EXPECT_NE(cpus.find("cpu3"), std::string::npos);
  EXPECT_NE(cpus.find("steals"), std::string::npos);

  // pr_cpuid: every spinner reports a valid CPU, and the enrollment spread
  // means they are not all on CPU 0.
  bool off_zero = false;
  for (Pid pid : pids) {
    auto h = ProcHandle::Grab(k, sim.controller(), pid);
    ASSERT_TRUE(h.ok());
    auto ps = h->Psinfo();
    ASSERT_TRUE(ps.ok());
    EXPECT_LT(ps->pr_cpuid, 4);
    off_zero |= ps->pr_cpuid != 0;
    auto st = h->Status();
    ASSERT_TRUE(st.ok());
    EXPECT_LT(st->pr_cpuid, 4u);
  }
  EXPECT_TRUE(off_zero) << "all lwps report CPU 0 at ncpus=4";
}

// Shrinking the CPU set rehomes every lwp into range and keeps running.
TEST(Smp, ResizeRehomesLwps) {
  Sim sim;
  Kernel& k = sim.kernel();
  k.SetNumCpus(4);
  ASSERT_TRUE(sim.InstallProgram("/bin/count", kCountAndExit).ok());
  std::vector<Pid> pids;
  for (int i = 0; i < 6; ++i) {
    auto pid = sim.Start("/bin/count");
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
  }
  for (int i = 0; i < 40; ++i) {
    k.Step();
  }
  k.SetNumCpus(2);
  ExpectInvariantsClean(k, "post-shrink");
  for (Pid pid : pids) {
    DrainPid(k, pid);
  }
  ExpectInvariantsClean(k, "post-shrink-drain");
}

}  // namespace
}  // namespace svr4
