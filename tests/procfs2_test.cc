// Tests for the hierarchical /proc2 (the paper's proposed restructuring) and
// for the ptrace-as-a-library implementation built on /proc.
#include <gtest/gtest.h>

#include <cstring>

#include "svr4proc/procfs/procfs2.h"
#include "svr4proc/ptlib/ptrace_lib.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

constexpr char kCounter[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
)";

struct Target {
  Pid pid;
  Aout image;
};

Target StartProgram(Sim& sim, const std::string& src, const std::string& path = "/bin/prog") {
  auto img = sim.InstallProgram(path, src);
  EXPECT_TRUE(img.ok());
  auto pid = sim.Start(path);
  EXPECT_TRUE(pid.ok());
  return Target{pid.ok() ? *pid : -1, img.ok() ? *img : Aout{}};
}

std::string Pr2Path(Pid pid, const std::string& file) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/proc2/%05d/%s", pid, file.c_str());
  return buf;
}

// Builds a control-message stream.
class CtlMsg {
 public:
  CtlMsg& Cmd(int32_t code) {
    Append(&code, 4);
    return *this;
  }
  template <typename T>
  CtlMsg& Cmd(int32_t code, const T& operand) {
    Append(&code, 4);
    Append(&operand, sizeof(T));
    return *this;
  }
  CtlMsg& Run(uint32_t flags, uint32_t vaddr = 0) {
    int32_t code = PCRUN;
    Append(&code, 4);
    Append(&flags, 4);
    Append(&vaddr, 4);
    return *this;
  }
  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  void Append(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

// Opens a /proc2 file and returns the fd.
int OpenPr2(Sim& sim, Pid pid, const std::string& file, int oflags) {
  auto fd = sim.kernel().Open(sim.controller(), Pr2Path(pid, file), oflags);
  EXPECT_TRUE(fd.ok()) << "open " << file << ": "
                       << (fd.ok() ? "" : std::string(ErrnoName(fd.error())));
  return fd.ok() ? *fd : -1;
}

Result<int64_t> WriteCtl(Sim& sim, int fd, const CtlMsg& msg) {
  return sim.kernel().Write(sim.controller(), fd, msg.bytes().data(), msg.bytes().size());
}

TEST(Proc2Dir, HierarchyIsNavigable) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto root = sim.kernel().ReadDir(sim.controller(), "/proc2");
  ASSERT_TRUE(root.ok());
  bool found = false;
  char want[8];
  std::snprintf(want, sizeof(want), "%05d", t.pid);
  for (const auto& e : *root) {
    if (e.name == want) {
      EXPECT_EQ(e.type, VType::kDir) << "process entries are directories now";
      found = true;
    }
  }
  EXPECT_TRUE(found);

  auto dir = sim.kernel().ReadDir(sim.controller(), Pr2Path(t.pid, ""));
  ASSERT_TRUE(dir.ok());
  std::vector<std::string> names;
  for (const auto& e : *dir) {
    names.push_back(e.name);
  }
  for (const char* want_file :
       {"as", "ctl", "status", "psinfo", "map", "cred", "sigact", "usage", "lwp"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want_file), names.end())
        << "missing " << want_file;
  }

  auto lwps = sim.kernel().ReadDir(sim.controller(), Pr2Path(t.pid, "lwp"));
  ASSERT_TRUE(lwps.ok());
  ASSERT_EQ(lwps->size(), 1u);
  EXPECT_EQ((*lwps)[0].name, "1");
}

TEST(Proc2Status, ReadStatusMatchesFlatIoctl) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), t.pid);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Stop().ok());
  auto flat = h->Status();
  ASSERT_TRUE(flat.ok());

  int fd = OpenPr2(sim, t.pid, "status", O_RDONLY);
  PrStatus st;
  auto n = sim.kernel().Read(sim.controller(), fd, &st, sizeof(st));
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, static_cast<int64_t>(sizeof(st)));
  EXPECT_EQ(st.pr_pid, flat->pr_pid);
  EXPECT_EQ(st.pr_why, flat->pr_why);
  EXPECT_EQ(st.pr_flags, flat->pr_flags);
  EXPECT_EQ(st.pr_reg.pc, flat->pr_reg.pc);
}

TEST(Proc2Status, PartialReadsAtOffsets) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int fd = OpenPr2(sim, t.pid, "psinfo", O_RDONLY);
  PrPsinfo whole;
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), fd, &whole, sizeof(whole)).ok());
  // Seek back into the middle and reread.
  ASSERT_TRUE(sim.kernel().Lseek(sim.controller(), fd, 4, SEEK_SET_).ok());
  std::vector<uint8_t> chunk(8);
  auto n = sim.kernel().Read(sim.controller(), fd, chunk.data(), chunk.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 8);
  EXPECT_EQ(std::memcmp(chunk.data(), reinterpret_cast<uint8_t*>(&whole) + 4, 8), 0);
}

TEST(Proc2Ctl, StopAndRunViaControlMessages) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  ASSERT_TRUE(WriteCtl(sim, ctl, CtlMsg().Cmd(PCSTOP)).ok());
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped);
  EXPECT_EQ(p->MainLwp()->stop_why, PR_REQUESTED);
  ASSERT_TRUE(WriteCtl(sim, ctl, CtlMsg().Run(0)).ok());
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning);
}

TEST(Proc2Ctl, BatchedMessagesInOneWrite) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  // "The use of a control file ... makes it possible to combine several
  // control operations in a single write system call."
  SigSet sigs;
  sigs.Add(SIGUSR1);
  FltSet faults;
  faults.Add(FLTBPT);
  uint32_t modes = PR_FORK | PR_RLC;
  CtlMsg batch;
  batch.Cmd(PCSTOP).Cmd(PCSTRACE, sigs).Cmd(PCSFAULT, faults).Cmd(PCSET, modes);
  auto n = WriteCtl(sim, ctl, batch);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, static_cast<int64_t>(batch.bytes().size()));

  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped);
  EXPECT_TRUE(p->trace.sigtrace.Has(SIGUSR1));
  EXPECT_TRUE(p->trace.flttrace.Has(FLTBPT));
  EXPECT_TRUE(p->trace.inherit_on_fork);
  EXPECT_TRUE(p->trace.run_on_last_close);
}

TEST(Proc2Ctl, ErrorMidStreamKeepsEarlierEffects) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  SigSet sigs;
  sigs.Add(SIGUSR2);
  CtlMsg batch;
  batch.Cmd(PCSTRACE, sigs).Cmd(9999);  // unknown message
  auto n = WriteCtl(sim, ctl, batch);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error(), Errno::kEINVAL);
  Proc* p = sim.kernel().FindProc(t.pid);
  EXPECT_TRUE(p->trace.sigtrace.Has(SIGUSR2)) << "messages already executed stand";
}

TEST(Proc2Ctl, KillAndSignalInjection) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  int32_t sig = SIGKILL;
  ASSERT_TRUE(WriteCtl(sim, ctl, CtlMsg().Cmd(PCKILL, sig)).ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_TRUE(WIfSignaled(*ec));
  EXPECT_EQ(WTermSig(*ec), SIGKILL);
}

TEST(Proc2Ctl, SetRegistersViaMessage) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  ASSERT_TRUE(WriteCtl(sim, ctl, CtlMsg().Cmd(PCSTOP)).ok());
  int sfd = OpenPr2(sim, t.pid, "status", O_RDONLY);
  PrStatus st;
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), sfd, &st, sizeof(st)).ok());
  Regs regs = st.pr_reg;
  regs.r[11] = 0xABCD;
  ASSERT_TRUE(WriteCtl(sim, ctl, CtlMsg().Cmd(PCSREG, regs)).ok());
  Proc* p = sim.kernel().FindProc(t.pid);
  EXPECT_EQ(p->MainLwp()->regs.r[11], 0xABCDu);
}

TEST(Proc2Ctl, WatchpointViaMessage) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  uint32_t var = *t.image.SymbolValue("var");
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  FltSet faults;
  faults.Add(FLTWATCH);
  PrWatch w{var, 4, WA_WRITE};
  CtlMsg batch;
  batch.Cmd(PCSTOP).Cmd(PCSFAULT, faults).Cmd(PCWATCH, w).Run(0);
  ASSERT_TRUE(WriteCtl(sim, ctl, batch).ok());
  // Wait for the watchpoint to fire.
  ASSERT_TRUE(WriteCtl(sim, ctl, CtlMsg().Cmd(PCWSTOP)).ok());
  Proc* p = sim.kernel().FindProc(t.pid);
  EXPECT_EQ(p->MainLwp()->stop_why, PR_FAULTED);
  EXPECT_EQ(p->MainLwp()->stop_what, FLTWATCH);
}

TEST(Proc2Ctl, SignalInjectionViaPCSSIG) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR1
      ldi r2, handler
      ldi r3, 0
      sys
spin: jmp spin
handler:
      ldi r0, SYS_exit
      ldi r1, 66
      sys
  )");
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  SigInfo info;
  info.si_signo = SIGUSR1;
  CtlMsg batch;
  batch.Cmd(PCDSTOP).Cmd(PCWSTOP).Cmd(PCSSIG, info).Run(0);
  ASSERT_TRUE(WriteCtl(sim, ctl, batch).ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 66) << "the injected signal reached the handler";
}

TEST(Proc2Ctl, UnkillDeletesPendingSignal) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  int32_t term = SIGTERM;
  CtlMsg batch;
  batch.Cmd(PCDSTOP).Cmd(PCWSTOP).Cmd(PCKILL, term).Cmd(PCUNKILL, term).Run(0);
  ASSERT_TRUE(WriteCtl(sim, ctl, batch).ok());
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->state, Proc::State::kActive) << "the deleted signal never fired";
}

TEST(Proc2Ctl, NiceViaMessage) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  int32_t delta = 7;
  ASSERT_TRUE(WriteCtl(sim, ctl, CtlMsg().Cmd(PCNICE, delta)).ok());
  EXPECT_EQ(sim.kernel().FindProc(t.pid)->nice, 27);
}

TEST(Proc2Lwp, FpRegistersViaLwpCtl) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  ASSERT_TRUE(WriteCtl(sim, ctl, CtlMsg().Cmd(PCSTOP)).ok());
  int lctl = OpenPr2(sim, t.pid, "lwp/1/lwpctl", O_WRONLY);
  FpRegs fp;
  fp.f[4] = 6.25;
  ASSERT_TRUE(WriteCtl(sim, lctl, CtlMsg().Cmd(PCSFPREG, fp)).ok());
  int lst = OpenPr2(sim, t.pid, "lwp/1/lwpstatus", O_RDONLY);
  PrLwpStatus ls;
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), lst, &ls, sizeof(ls)).ok());
  EXPECT_DOUBLE_EQ(ls.pr_fpreg.f[4], 6.25);
}

TEST(Proc2Files, AsFileReadsAndWritesMemory) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  uint32_t var = *t.image.SymbolValue("var");
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  int as = OpenPr2(sim, t.pid, "as", O_RDWR);
  ASSERT_TRUE(sim.kernel().Lseek(sim.controller(), as, var, SEEK_SET_).ok());
  uint32_t v = 0;
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), as, &v, 4).ok());
  EXPECT_GT(v, 0u);
  uint32_t big = 900000;
  ASSERT_TRUE(sim.kernel().Lseek(sim.controller(), as, var, SEEK_SET_).ok());
  ASSERT_TRUE(sim.kernel().Write(sim.controller(), as, &big, 4).ok());
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(sim.kernel().Lseek(sim.controller(), as, var, SEEK_SET_).ok());
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), as, &v, 4).ok());
  EXPECT_GE(v, big);
}

TEST(Proc2Files, AccessModesEnforced) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  // ctl is write-only.
  auto r = sim.kernel().Open(sim.controller(), Pr2Path(t.pid, "ctl"), O_RDONLY);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEACCES);
  // status files are read-only.
  r = sim.kernel().Open(sim.controller(), Pr2Path(t.pid, "status"), O_WRONLY);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEACCES);
  // Reading from a ctl fd / writing to a status fd fail outright.
  int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
  uint8_t b;
  EXPECT_FALSE(sim.kernel().Read(sim.controller(), ctl, &b, 1).ok());
}

TEST(Proc2Files, MapFileSerializesMappings) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  int fd = OpenPr2(sim, t.pid, "map", O_RDONLY);
  std::vector<PrMapEntry> maps(32);
  auto n = sim.kernel().Read(sim.controller(), fd, maps.data(),
                             maps.size() * sizeof(PrMapEntry));
  ASSERT_TRUE(n.ok());
  size_t count = static_cast<size_t>(*n) / sizeof(PrMapEntry);
  ASSERT_GE(count, 3u) << "text, data, break, stack at least";
  bool text = false;
  for (size_t i = 0; i < count; ++i) {
    if ((maps[i].pr_mflags & MA_EXEC) && maps[i].pr_vaddr == 0x80000000u) {
      text = true;
    }
  }
  EXPECT_TRUE(text);
}

TEST(Proc2Files, CredAndUsage) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  int cfd = OpenPr2(sim, t.pid, "cred", O_RDONLY);
  PrCred cred;
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), cfd, &cred, sizeof(cred)).ok());
  EXPECT_EQ(cred.pr_ruid, 0u);
  int ufd = OpenPr2(sim, t.pid, "usage", O_RDONLY);
  PrUsage usage;
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), ufd, &usage, sizeof(usage)).ok());
  EXPECT_GT(usage.pr_utime, 0u);
}

TEST(Proc2Lwp, PerLwpStatusAndControl) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_lwp_create
      ldi r1, thread
      ldi r2, tstack+1024
      sys
spin: jmp spin
thread:
      ldi r7, 0x77
t2:   jmp t2
      .bss
tstack: .space 1024
  )");
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  // Two lwp subdirectories.
  auto lwps = sim.kernel().ReadDir(sim.controller(), Pr2Path(t.pid, "lwp"));
  ASSERT_TRUE(lwps.ok());
  ASSERT_EQ(lwps->size(), 2u);

  // Stop only lwp 2 via its own ctl file; lwp 1 keeps running.
  int ctl2 = OpenPr2(sim, t.pid, "lwp/2/lwpctl", O_WRONLY);
  ASSERT_TRUE(WriteCtl(sim, ctl2, CtlMsg().Cmd(PCDSTOP)).ok());
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->FindLwp(2)->state, LwpState::kStopped);
  EXPECT_EQ(p->FindLwp(1)->state, LwpState::kRunning)
      << "a per-lwp stop leaves siblings running";

  // Read lwp 2's registers through its status file.
  int st2 = OpenPr2(sim, t.pid, "lwp/2/lwpstatus", O_RDONLY);
  PrLwpStatus ls;
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), st2, &ls, sizeof(ls)).ok());
  EXPECT_EQ(ls.pr_lwpid, 2);
  EXPECT_TRUE(ls.pr_flags & PR_STOPPED);
  EXPECT_EQ(ls.pr_reg.r[7], 0x77u);

  // Resume it per-lwp.
  ASSERT_TRUE(WriteCtl(sim, ctl2, CtlMsg().Run(0)).ok());
  EXPECT_EQ(p->FindLwp(2)->state, LwpState::kRunning);
}

TEST(Proc2Security, SamePermissionRulesAsFlat) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::User(100, 10));
  ASSERT_TRUE(pid.ok());
  Proc* stranger = sim.NewController(Creds::User(200, 20), "stranger");
  auto r = sim.kernel().Open(stranger, Pr2Path(*pid, "status"), O_RDONLY);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEACCES);
}

TEST(Proc2Security, SetIdExecInvalidatesDescriptorsToo) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/suid", "spin: jmp spin\n", 04755, 0, 0).ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/bin/suid"
  )").ok());
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::User(100, 10));
  ASSERT_TRUE(pid.ok());
  Proc* owner = sim.NewController(Creds::User(100, 10), "owner");
  auto fd = sim.kernel().Open(owner, Pr2Path(*pid, "status"), O_RDONLY);
  ASSERT_TRUE(fd.ok());
  PrStatus st;
  ASSERT_TRUE(sim.kernel().Read(owner, *fd, &st, sizeof(st)).ok());

  sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(*pid);
    return p == nullptr ||
           (p->MainLwp() != nullptr && p->MainLwp()->state == LwpState::kStopped);
  });
  // The pre-exec descriptor is invalid now.
  ASSERT_TRUE(sim.kernel().Lseek(owner, *fd, 0, SEEK_SET_).ok());
  auto r = sim.kernel().Read(owner, *fd, &st, sizeof(st));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEACCES);
  // A fresh open by the owner is refused (set-id target).
  auto again = sim.kernel().Open(owner, Pr2Path(*pid, "status"), O_RDONLY);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error(), Errno::kEACCES);
  // The super-user can.
  EXPECT_TRUE(sim.kernel().Open(sim.controller(), Pr2Path(*pid, "status"),
                                O_RDONLY).ok());
}

TEST(Proc2Dir, ZombieKeepsPsinfoButLosesContextFiles) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/quick", R"(
      ldi r0, SYS_exit
      ldi r1, 5
      sys
  )").ok());
  auto pid = sim.kernel().Spawn("/bin/quick", {"quick"}, Creds::Root(),
                                sim.controller());
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(sim.kernel().RunToExit(*pid).ok());
  // psinfo still answers; status and as do not.
  int pfd = OpenPr2(sim, *pid, "psinfo", O_RDONLY);
  PrPsinfo ps;
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), pfd, &ps, sizeof(ps)).ok());
  EXPECT_EQ(ps.pr_state, 'Z');
  int sfd = OpenPr2(sim, *pid, "status", O_RDONLY);
  PrStatus st;
  EXPECT_FALSE(sim.kernel().Read(sim.controller(), sfd, &st, sizeof(st)).ok());
  int afd = OpenPr2(sim, *pid, "as", O_RDWR);
  uint8_t b;
  EXPECT_FALSE(sim.kernel().Read(sim.controller(), afd, &b, 1).ok());
}

TEST(Proc2Ctl, RunOnLastCloseWorksThroughCtl) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  {
    int ctl = OpenPr2(sim, t.pid, "ctl", O_WRONLY);
    SigSet sigs;
    sigs.Add(SIGUSR1);
    uint32_t rlc = PR_RLC;
    CtlMsg batch;
    batch.Cmd(PCSTOP).Cmd(PCSTRACE, sigs).Cmd(PCSET, rlc);
    ASSERT_TRUE(WriteCtl(sim, ctl, batch).ok());
    Proc* p = sim.kernel().FindProc(t.pid);
    EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped);
    ASSERT_TRUE(sim.kernel().Close(sim.controller(), ctl).ok());
  }
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning)
      << "closing the last writable ctl descriptor releases the process";
  EXPECT_TRUE(p->trace.sigtrace.Empty());
}

// ---------------------------------------------------------------------------
// ptrace as a library over /proc.
// ---------------------------------------------------------------------------

TEST(PtraceLibTest, AttachToUnrelatedProcess) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  PtraceLib pt(sim.kernel(), sim.controller());
  // Real ptrace could never do this; /proc makes it a library feature.
  ASSERT_TRUE(pt.Attach(t.pid).ok());
  Proc* p = sim.kernel().FindProc(t.pid);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped);
  // PEEK the first text word.
  auto w = pt.Ptrace(PT_PEEKTEXT, t.pid, 0x80000000, 0);
  ASSERT_TRUE(w.ok());
  uint32_t first_word;
  std::memcpy(&first_word, t.image.text.data(), 4);
  EXPECT_EQ(static_cast<uint32_t>(*w), first_word);
  ASSERT_TRUE(pt.Detach(t.pid).ok());
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning);
}

TEST(PtraceLibTest, BreakpointDebuggingThroughPtraceApi) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  uint32_t loop = *t.image.SymbolValue("loop");
  PtraceLib pt(sim.kernel(), sim.controller());
  ASSERT_TRUE(pt.Attach(t.pid).ok());

  // Plant a breakpoint with POKETEXT (word-granular, like the real thing).
  auto orig = pt.Ptrace(PT_PEEKTEXT, t.pid, loop, 0);
  ASSERT_TRUE(orig.ok());
  uint32_t patched = (static_cast<uint32_t>(*orig) & ~0xFFu) | kBreakpointByte;
  ASSERT_TRUE(pt.Ptrace(PT_POKETEXT, t.pid, loop, patched).ok());
  ASSERT_TRUE(pt.Ptrace(PT_CONT, t.pid, 1, 0).ok());

  auto wr = pt.Wait();
  ASSERT_TRUE(wr.ok());
  EXPECT_EQ(wr->pid, t.pid);
  ASSERT_TRUE(WIfStopped(wr->status));
  EXPECT_EQ(WStopSig(wr->status), SIGTRAP);
  auto pc = pt.Ptrace(PT_PEEKUSER, t.pid, 16, 0);
  ASSERT_TRUE(pc.ok());
  EXPECT_EQ(static_cast<uint32_t>(*pc), loop);

  // Restore, single-step, re-plant: the classic dance.
  ASSERT_TRUE(pt.Ptrace(PT_POKETEXT, t.pid, loop, static_cast<uint32_t>(*orig)).ok());
  ASSERT_TRUE(pt.Ptrace(PT_STEP, t.pid, 1, 0).ok());
  auto wr2 = pt.Wait();
  ASSERT_TRUE(wr2.ok());
  ASSERT_TRUE(WIfStopped(wr2->status));
  auto pc2 = pt.Ptrace(PT_PEEKUSER, t.pid, 16, 0);
  ASSERT_TRUE(pc2.ok());
  EXPECT_EQ(static_cast<uint32_t>(*pc2), loop + 6) << "stepped one instruction";

  ASSERT_TRUE(pt.Ptrace(PT_KILL, t.pid, 0, 0).ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WTermSig(*ec), SIGKILL);
}

TEST(PtraceLibTest, SignalInjectionOnContinue) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR1
      ldi r2, handler
      ldi r3, 0
      sys
spin: jmp spin
handler:
      ldi r0, SYS_exit
      ldi r1, 55
      sys
  )");
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  PtraceLib pt(sim.kernel(), sim.controller());
  ASSERT_TRUE(pt.Attach(t.pid).ok());
  // Continue with an injected SIGUSR1: the handler must run.
  ASSERT_TRUE(pt.Ptrace(PT_CONT, t.pid, 1, SIGUSR1).ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_TRUE(WIfExited(*ec));
  EXPECT_EQ(WExitCode(*ec), 55);
}

TEST(PtraceLibTest, WaitReportsExit) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_sleep
      ldi r1, 100
      sys
      ldi r0, SYS_exit
      ldi r1, 8
      sys
  )");
  PtraceLib pt(sim.kernel(), sim.controller());
  ASSERT_TRUE(pt.Attach(t.pid).ok());
  ASSERT_TRUE(pt.Ptrace(PT_CONT, t.pid, 1, 0).ok());
  auto wr = pt.Wait();
  ASSERT_TRUE(wr.ok());
  EXPECT_EQ(wr->pid, t.pid);
  EXPECT_TRUE(WIfExited(wr->status));
  EXPECT_EQ(WExitCode(wr->status), 8);
  EXPECT_FALSE(pt.attached(t.pid)) << "exited tracee is forgotten";
}

}  // namespace
}  // namespace svr4
