// Coverage for the in-kernel ptrace(2) baseline (the "competing mechanism")
// and for core dumps — the post-mortem side of the debugging story.
#include <gtest/gtest.h>

#include <cstring>

#include "svr4proc/kernel/core.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

// A VCPU parent that TRACEMEs a forked child and drives it with ptrace
// requests, checking results in-program and exiting with a verdict code.
int RunVerdictProgram(Sim& sim, const std::string& src) {
  auto img = sim.InstallProgram("/bin/v", src);
  EXPECT_TRUE(img.ok());
  auto pid = sim.Start("/bin/v");
  EXPECT_TRUE(pid.ok());
  auto st = sim.kernel().RunToExit(*pid);
  EXPECT_TRUE(st.ok());
  return st.ok() ? *st : -1;
}

TEST(KernelPtrace, PeekPokeUserRegisters) {
  Sim sim;
  // Parent: wait for the traced child's stop, read its r5 via PEEKUSER (5),
  // write a new value via POKEUSER, continue; the child exits with r5.
  int st = RunVerdictProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      mov r8, r0
      ldi r0, SYS_wait
      sys
      ; PEEKUSER r5
      ldi r0, SYS_ptrace
      ldi r1, 3           ; PT_PEEKUSER
      mov r2, r8
      ldi r3, 5           ; register index
      ldi r4, 0
      sys
      cmpi r0, 1111
      jnz bad
      ; POKEUSER r5 = 42
      ldi r0, SYS_ptrace
      ldi r1, 6           ; PT_POKEUSER
      mov r2, r8
      ldi r3, 5
      ldi r4, 42
      sys
      ; continue with no signal
      ldi r0, SYS_ptrace
      ldi r1, 7           ; PT_CONT
      mov r2, r8
      ldi r3, 1
      ldi r4, 0
      sys
      ldi r0, SYS_wait
      sys
      mov r5, r1
      ldi r6, 8
      shr r5, r6
      ldi r0, SYS_exit
      mov r1, r5          ; child's exit code (should be 42)
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 99
      sys
child:
      ldi r0, SYS_ptrace  ; PT_TRACEME
      ldi r1, 0
      sys
      ldi r5, 1111
      ldi r0, SYS_getpid
      sys
      mov r7, r0
      ldi r0, SYS_kill    ; stop ourselves (traced: any signal stops)
      mov r1, r7
      ldi r2, SIGUSR1
      sys
      ldi r0, SYS_exit
      mov r1, r5          ; exits with whatever the parent poked into r5
      sys
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 42);
}

TEST(KernelPtrace, StepExecutesOneInstruction) {
  Sim sim;
  int st = RunVerdictProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      mov r8, r0
      ldi r0, SYS_wait
      sys
      ; remember pc
      ldi r0, SYS_ptrace
      ldi r1, 3           ; PEEKUSER
      mov r2, r8
      ldi r3, 16          ; pc
      ldi r4, 0
      sys
      mov r9, r0
      ; single-step (pc stays, sig cleared)
      ldi r0, SYS_ptrace
      ldi r1, 9           ; PT_STEP
      mov r2, r8
      ldi r3, 1
      ldi r4, 0
      sys
      ldi r0, SYS_wait    ; stops again after one instruction (SIGTRAP)
      sys
      ldi r0, SYS_ptrace
      ldi r1, 3
      mov r2, r8
      ldi r3, 16
      ldi r4, 0
      sys
      sub r0, r9          ; pc delta
      cmpi r0, 6          ; one ldi instruction
      jnz bad
      ldi r0, SYS_ptrace  ; PT_KILL
      ldi r1, 8
      mov r2, r8
      ldi r3, 0
      ldi r4, 0
      sys
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
child:
      ldi r0, SYS_ptrace
      ldi r1, 0
      sys
      ldi r0, SYS_getpid
      sys
      mov r7, r0
      ldi r0, SYS_kill
      mov r1, r7
      ldi r2, SIGUSR1
      sys
      ; instructions the parent steps through
      ldi r5, 1
      ldi r5, 2
spin: jmp spin
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelPtrace, RequestsOnNonChildFail) {
  Sim sim;
  // The controller (native) is not the parent of the spawned process, and
  // the process never called TRACEME: every request must fail.
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", "spin: jmp spin\n").ok());
  auto pid = sim.Start("/bin/spin");
  auto r = sim.kernel().Ptrace(sim.controller(), PT_PEEKTEXT, *pid, 0x80000000, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kESRCH)
      << "ptrace cannot control unrelated processes — that is /proc's edge";
}

TEST(KernelPtrace, RequestsOnRunningChildFail) {
  Sim sim;
  int st = RunVerdictProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      mov r8, r0
      ; child is traced but RUNNING (no stop yet): PEEK must fail
      ldi r0, SYS_ptrace
      ldi r1, 1           ; PT_PEEKTEXT
      mov r2, r8
      ldi r3, 0x80000000
      ldi r4, 0
      sys
      jcc bad             ; must have failed (carry set)
      ldi r0, SYS_kill
      mov r1, r8
      ldi r2, SIGKILL
      sys
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
child:
      ldi r0, SYS_ptrace
      ldi r1, 0
      sys
spin: jmp spin
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
}

TEST(KernelPtrace, ContWithSignalDeliversIt) {
  Sim sim;
  int st = RunVerdictProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      mov r8, r0
      ldi r0, SYS_wait    ; child's self-stop
      sys
      ; continue delivering SIGTERM: default action terminates the child
      ldi r0, SYS_ptrace
      ldi r1, 7
      mov r2, r8
      ldi r3, 1
      ldi r4, SIGTERM
      sys
      ldi r0, SYS_wait
      sys
      ; status low 7 bits = terminating signal
      mov r5, r1
      ldi r6, 0x7F
      and r5, r6
      ldi r0, SYS_exit
      mov r1, r5
      sys
child:
      ldi r0, SYS_ptrace
      ldi r1, 0
      sys
      ldi r0, SYS_getpid
      sys
      mov r7, r0
      ldi r0, SYS_kill
      mov r1, r7
      ldi r2, SIGUSR1
      sys
spin: jmp spin
  )");
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), SIGTERM);
}

// ---------------------------------------------------------------------------
// Core dumps.
// ---------------------------------------------------------------------------

TEST(CoreDumpTest, FatalSignalWritesLoadableCore) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/crash", R"(
      ldi r7, 0xFEED
      ldi r4, marker
      ldi r5, 0x600D
      stw r5, [r4]
      ldi r1, 1
      ldi r2, 0
      div r1, r2          ; FLTIZDIV -> SIGFPE -> core
      .data
marker: .word 0
  )");
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/crash");
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  ASSERT_TRUE(*ec & 0x80) << "core bit set";

  char path[32];
  std::snprintf(path, sizeof(path), "/tmp/core.%d", *pid);
  auto attr = sim.kernel().Stat(sim.controller(), path);
  ASSERT_TRUE(attr.ok()) << "core file written";

  // Load and examine it post mortem.
  std::vector<uint8_t> bytes(attr->size);
  int fd = *sim.kernel().Open(sim.controller(), path, O_RDONLY);
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), fd, bytes.data(), bytes.size()).ok());
  auto core = CoreDump::Parse(bytes);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->sig, SIGFPE);
  EXPECT_EQ(core->status.pr_reg.r[7], 0xFEEDu) << "registers at death";
  EXPECT_STREQ(core->psinfo.pr_fname, "crash");
  // The data segment contents are in the dump.
  uint32_t marker = 0;
  auto n = core->ReadMem(*img->SymbolValue("marker"),
                         std::span<uint8_t>(reinterpret_cast<uint8_t*>(&marker), 4));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(marker, 0x600Du);
  // The pc points at the faulting instruction.
  uint8_t op = 0;
  ASSERT_TRUE(core->ReadMem(core->status.pr_reg.pc,
                            std::span<uint8_t>(&op, 1)).ok());
  EXPECT_EQ(op, kOpDiv);
}

TEST(CoreDumpTest, PlainTerminationWritesNoCore) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", "spin: jmp spin\n").ok());
  auto pid = sim.Start("/bin/spin");
  for (int i = 0; i < 20; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(sim.kernel().Kill(sim.controller(), *pid, SIGTERM).ok());
  ASSERT_TRUE(sim.kernel().RunToExit(*pid).ok());
  char path[32];
  std::snprintf(path, sizeof(path), "/tmp/core.%d", *pid);
  EXPECT_FALSE(sim.kernel().Stat(sim.controller(), path).ok());
}

TEST(CoreDumpTest, SetIdProcessNeverDumps) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/suidcrash", R"(
      ldi r1, 1
      ldi r2, 0
      div r1, r2
  )", 04755, 0, 0).ok());
  auto pid = sim.Start("/bin/suidcrash", {}, Creds::User(100, 10));
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(sim.kernel().RunToExit(*pid).ok());
  char path[32];
  std::snprintf(path, sizeof(path), "/tmp/core.%d", *pid);
  EXPECT_FALSE(sim.kernel().Stat(sim.controller(), path).ok())
      << "set-id processes are never dumped";
}

TEST(CoreDumpTest, ParseRejectsGarbage) {
  std::vector<uint8_t> junk(64, 0xAB);
  EXPECT_FALSE(CoreDump::Parse(junk).ok());
  EXPECT_FALSE(CoreDump::Parse({}).ok());
}

}  // namespace
}  // namespace svr4
