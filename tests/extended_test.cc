// Extended coverage: forced syscall injection, truss-on-command, poll from
// simulated processes, deeper signal semantics, vfork sharing, multi-process
// debugging, and a randomized process-tree stress test.
#include <gtest/gtest.h>

#include <random>

#include "svr4proc/tools/debugger.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"
#include "svr4proc/tools/truss.h"

namespace svr4 {
namespace {

constexpr char kCounter[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
)";

// ---------------------------------------------------------------------------
// Forced syscall execution (paper, "Miscellaneous").
// ---------------------------------------------------------------------------

TEST(InjectSyscall, ForcesGetpidWithoutConsent) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/c", kCounter).ok());
  auto pid = sim.Start("/bin/c");
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  auto r = dbg.InjectSyscall(SYS_getpid, {});
  ASSERT_TRUE(r.ok()) << ErrnoName(r.error());
  EXPECT_EQ(static_cast<Pid>(*r), *pid);
}

TEST(InjectSyscall, ForcesWriteToConsole) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/c", kCounter);
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/c");
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  // Write the counter variable's first byte count... simpler: make the
  // target print 4 bytes of its own data segment to its stdout.
  uint32_t var = *img->SymbolValue("var");
  uint32_t planted = 0x21696821;  // "!hi!"
  ASSERT_TRUE(dbg.WriteWord("var", planted).ok());
  auto r = dbg.InjectSyscall(SYS_write, {1, var, 4});
  ASSERT_TRUE(r.ok()) << ErrnoName(r.error());
  EXPECT_EQ(*r, 4u);
  EXPECT_EQ(sim.ConsoleOutput(), "!hi!")
      << "the process wrote to its console without its knowledge";
}

TEST(InjectSyscall, TargetResumesUndisturbed) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/c", kCounter);
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/c");
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  auto before = *dbg.handle().GetRegs();
  ASSERT_TRUE(dbg.InjectSyscall(SYS_getuid, {}).ok());
  auto after = *dbg.handle().GetRegs();
  EXPECT_EQ(before, after) << "registers fully restored";
  // The planted SYS byte is gone; execution continues normally.
  ASSERT_TRUE(dbg.Detach().ok());
  uint32_t var = *img->SymbolValue("var");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  uint32_t v1 = 0, v2 = 0;
  (void)h.ReadMem(var, &v1, 4);
  for (int i = 0; i < 300; ++i) {
    sim.kernel().Step();
  }
  (void)h.ReadMem(var, &v2, 4);
  EXPECT_GT(v2, v1);
}

TEST(InjectSyscall, ErrorResultsPropagate) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/c", kCounter).ok());
  auto pid = sim.Start("/bin/c");
  Debugger dbg(sim.kernel(), sim.controller());
  ASSERT_TRUE(dbg.Attach(*pid).ok());
  auto r = dbg.InjectSyscall(SYS_close, {77});  // bad fd
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEBADF);
}

// ---------------------------------------------------------------------------
// truss applied to commands it starts itself.
// ---------------------------------------------------------------------------

TEST(TrussCommand, ArmsBeforeFirstInstruction) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/first", R"(
      ldi r0, SYS_getpid   ; the very first thing the program does
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )").ok());
  Truss truss(sim.kernel(), sim.controller());
  ASSERT_TRUE(truss.TraceCommand("/bin/first", {"first"}).ok());
  EXPECT_NE(truss.report().find("getpid()"), std::string::npos)
      << "even the first syscall is seen:\n"
      << truss.report();
}

// ---------------------------------------------------------------------------
// poll(2) from simulated processes.
// ---------------------------------------------------------------------------

TEST(VcpuPoll, PollOnPipeWakesOnData) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/p", R"(
      ldi r0, SYS_pipe
      sys
      mov r8, r0          ; read end
      mov r9, r1          ; write end
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ; parent: poll the read end (events = POLLIN = 1), infinite timeout
      ldi r4, pfd
      stw r8, [r4]        ; fd
      ldi r5, 1
      stw r5, [r4+4]      ; events = POLLIN
      ldi r0, SYS_poll
      mov r1, r4
      ldi r2, 1
      ldi r3, -1
      sys
      cmpi r0, 1          ; one ready descriptor
      jnz bad
      ldw r5, [r4+8]      ; revents
      cmpi r5, 1
      jnz bad
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r0, SYS_sleep
      ldi r1, 2000
      sys
      ldi r0, SYS_write
      mov r1, r9
      ldi r2, pfd         ; any 1 byte
      ldi r3, 1
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
      .bss
pfd:  .space 12
  )").ok());
  auto pid = sim.Start("/bin/p");
  ASSERT_TRUE(pid.ok());
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 0) << "poll slept until the pipe had data";
}

TEST(VcpuPoll, TimeoutExpires) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/p", R"(
      ldi r0, SYS_pipe
      sys
      mov r8, r0
      ldi r4, pfd
      stw r8, [r4]
      ldi r5, 1
      stw r5, [r4+4]
      ldi r0, SYS_time
      sys
      mov r9, r0
      ldi r0, SYS_poll
      mov r1, r4
      ldi r2, 1
      ldi r3, 3000        ; ticks
      sys
      cmpi r0, 0          ; timed out, nothing ready
      jnz bad
      ldi r0, SYS_time
      sys
      sub r0, r9
      cmpi r0, 3000
      jlt bad
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
      .bss
pfd:  .space 12
  )").ok());
  auto pid = sim.Start("/bin/p");
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 0);
}

// ---------------------------------------------------------------------------
// Deeper signal semantics.
// ---------------------------------------------------------------------------

TEST(SignalsDeep, SigcldHandlerRunsOnChildExit) {
  Sim sim;
  int st = [&]() -> int {
    auto img = sim.InstallProgram("/bin/p", R"(
      ldi r0, SYS_sigaction
      ldi r1, SIGCLD
      ldi r2, handler
      ldi r3, 0
      sys
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_pause   ; interrupted by SIGCLD
      sys
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r0, SYS_exit
      ldi r1, 1
      sys
handler:
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, c
      ldi r3, 1
      sys
      ldi r0, SYS_sigreturn
      sys
      .data
c:    .asciz "C"
    )");
    EXPECT_TRUE(img.ok());
    auto pid = sim.Start("/bin/p");
    auto ec = sim.kernel().RunToExit(*pid);
    EXPECT_TRUE(ec.ok());
    return ec.ok() ? *ec : -1;
  }();
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(WExitCode(st), 0);
  EXPECT_EQ(sim.ConsoleOutput(), "C") << "SIGCLD handler ran";
}

TEST(SignalsDeep, HandlerMaskDefersNestedSignal) {
  Sim sim;
  // The handler for SIGUSR1 holds SIGUSR2 (via the sigaction mask); a
  // SIGUSR2 raised inside the handler is deferred until sigreturn.
  int st = [&]() -> int {
    auto img = sim.InstallProgram("/bin/p", R"(
      ; install h2 for SIGUSR2
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR2
      ldi r2, h2
      ldi r3, 0
      sys
      ; install h1 for SIGUSR1 with mask {SIGUSR2}
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR1
      ldi r2, h1
      ldi r3, mask2
      sys
      ; raise SIGUSR1
      ldi r0, SYS_getpid
      sys
      mov r7, r0
      ldi r0, SYS_kill
      mov r1, r7
      ldi r2, SIGUSR1
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
h1:
      ; inside h1: raise SIGUSR2 — must NOT run until h1 returns
      ldi r0, SYS_getpid
      sys
      mov r7, r0
      ldi r0, SYS_kill
      mov r1, r7
      ldi r2, SIGUSR2
      sys
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, m1
      ldi r3, 1
      sys
      ldi r0, SYS_sigreturn
      sys
h2:
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, m2
      ldi r3, 1
      sys
      ldi r0, SYS_sigreturn
      sys
      .data
mask2: .word 0x10000, 0, 0, 0    ; bit 16 = SIGUSR2 (17)
m1:    .asciz "1"
m2:    .asciz "2"
    )");
    EXPECT_TRUE(img.ok());
    auto pid = sim.Start("/bin/p");
    auto ec = sim.kernel().RunToExit(*pid);
    EXPECT_TRUE(ec.ok());
    return ec.ok() ? *ec : -1;
  }();
  EXPECT_TRUE(WIfExited(st));
  EXPECT_EQ(sim.ConsoleOutput(), "12")
      << "the nested signal is deferred until the first handler returns";
}

TEST(SignalsDeep, AlarmZeroCancelsPendingAlarm) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/p", R"(
      ldi r0, SYS_alarm
      ldi r1, 500
      sys
      ldi r0, SYS_alarm   ; cancel; returns remaining ticks
      ldi r1, 0
      sys
      cmpi r0, 0
      jz bad              ; remaining must be > 0
      ; outlive the cancelled alarm; SIGALRM default would kill us
      ldi r0, SYS_sleep
      ldi r1, 2000
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
bad:  ldi r0, SYS_exit
      ldi r1, 1
      sys
  )").ok());
  auto pid = sim.Start("/bin/p");
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_TRUE(WIfExited(*ec)) << "the cancelled alarm never fired";
  EXPECT_EQ(WExitCode(*ec), 0);
}

TEST(SignalsDeep, BrokenPipeRaisesSigpipe) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/p", R"(
      ldi r0, SYS_pipe
      sys
      mov r8, r0
      mov r9, r1
      ldi r0, SYS_close   ; close the read end
      mov r1, r8
      sys
      ldi r0, SYS_write   ; write to the widowed pipe
      mov r1, r9
      ldi r2, buf
      ldi r3, 1
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
buf:  .byte 1
  )").ok());
  auto pid = sim.kernel().Spawn("/bin/p", {"p"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(pid.ok());
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_TRUE(WIfSignaled(*ec));
  EXPECT_EQ(WTermSig(*ec), SIGPIPE);
}

// ---------------------------------------------------------------------------
// vfork address-space sharing.
// ---------------------------------------------------------------------------

TEST(VforkDeep, ChildWritesAreVisibleToParent) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/p", R"(
      ldi r0, SYS_vfork
      sys
      cmpi r0, 0
      jz child
      ; parent resumes after the child exits; its write is visible because
      ; "the address space is shared between parent and child".
      ldi r4, var
      ldw r5, [r4]
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      mov r1, r5
      sys
child:
      ldi r4, var
      ldi r5, 77
      stw r5, [r4]
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
var:  .word 11
  )").ok());
  auto pid = sim.Start("/bin/p");
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 77) << "vfork shares the address space";
}

// ---------------------------------------------------------------------------
// exec with a real argv array from the caller's memory.
// ---------------------------------------------------------------------------

TEST(ExecDeep, ArgvArrayIsPassedThrough) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/echoarg", R"(
      ; prints argv[1]
      ldw r4, [r2+4]
      mov r5, r4
len:  ldb r6, [r5]
      cmpi r6, 0
      jz go
      addi r5, 1
      jmp len
go:   sub r5, r4
      ldi r0, SYS_write
      ldi r1, 1
      mov r2, r4
      mov r3, r5
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )").ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/launcher", R"(
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, argv
      sys
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/bin/echoarg"
a0:   .asciz "echoarg"
a1:   .asciz "from-exec"
argv: .word a0, a1, 0
  )").ok());
  auto pid = sim.Start("/bin/launcher");
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 0);
  EXPECT_EQ(sim.ConsoleOutput(), "from-exec");
}

// ---------------------------------------------------------------------------
// Multi-process debugging with poll — the paper's motivation for adding
// poll(2) support on /proc descriptors.
// ---------------------------------------------------------------------------

TEST(MultiProcess, DebugThreeProcessesWithPoll) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/c", kCounter);
  ASSERT_TRUE(img.ok());
  uint32_t loop = *img->SymbolValue("loop");
  std::vector<ProcHandle> handles;
  for (int i = 0; i < 3; ++i) {
    auto pid = sim.Start("/bin/c");
    ASSERT_TRUE(pid.ok());
    auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
    ASSERT_TRUE(h.ok());
    handles.push_back(std::move(*h));
  }
  // Breakpoint all three.
  uint8_t bpt = kBreakpointByte;
  FltSet faults;
  faults.Add(FLTBPT);
  for (auto& h : handles) {
    ASSERT_TRUE(h.Stop().ok());
    ASSERT_TRUE(h.SetFltTrace(faults).ok());
    ASSERT_TRUE(h.WriteMem(loop, &bpt, 1).ok());  // COW: each has its own copy
    ASSERT_TRUE(h.Run().ok());
  }
  // Poll until each has stopped once. POLLPRI is level-triggered, so only
  // the not-yet-handled descriptors go into each poll set.
  std::set<size_t> seen;
  while (seen.size() < handles.size()) {
    std::vector<PollFd> pfds;
    std::vector<size_t> idx;
    for (size_t i = 0; i < handles.size(); ++i) {
      if (!seen.count(i)) {
        PollFd pf;
        pf.fd = handles[i].fd();
        pf.events = POLLPRI;
        pfds.push_back(pf);
        idx.push_back(i);
      }
    }
    auto n = sim.kernel().PollFds(sim.controller(), pfds, 1'000'000);
    ASSERT_TRUE(n.ok());
    ASSERT_GT(*n, 0);
    for (size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents & POLLPRI) {
        auto st = *handles[idx[k]].Status();
        EXPECT_EQ(st.pr_why, PR_FAULTED);
        EXPECT_EQ(st.pr_reg.pc, loop);
        seen.insert(idx[k]);
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u);
}

// ---------------------------------------------------------------------------
// Flat-/proc odds and ends.
// ---------------------------------------------------------------------------

TEST(ProcOdds, SeekEndGivesVirtualSize) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/c", kCounter).ok());
  auto pid = sim.Start("/bin/c");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  auto end = sim.kernel().Lseek(sim.controller(), h.fd(), 0, SEEK_END_);
  ASSERT_TRUE(end.ok());
  Proc* p = sim.kernel().FindProc(*pid);
  EXPECT_EQ(static_cast<uint32_t>(*end), p->as->VirtualSize());
}

TEST(ProcOdds, UnknownIoctlIsEINVAL) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/c", kCounter).ok());
  auto pid = sim.Start("/bin/c");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  auto r = sim.kernel().Ioctl(sim.controller(), h.fd(), 0x9999, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEINVAL);
}

TEST(ProcOdds, IoctlOnRegularFileIsENOTTY) {
  Sim sim;
  ASSERT_TRUE(sim.kernel().WriteFileAt("/tmp/f", std::vector<uint8_t>{1}).ok());
  int fd = *sim.kernel().Open(sim.controller(), "/tmp/f", O_RDONLY);
  auto r = sim.kernel().Ioctl(sim.controller(), fd, PIOCSTATUS, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kENOTTY);
}

TEST(ProcOdds, OpenMappedObjectOnLibraryAddress) {
  Sim sim;
  auto lib = sim.InstallLibrary("libx", R"(
libfn: ret
  )");
  ASSERT_TRUE(lib.ok());
  Assembler as = sim.NewAssembler();
  as.ImportLibrary(*lib, "libx");
  auto img = as.Assemble(R"(
      .lib "libx"
spin: jmp spin
  )");
  ASSERT_TRUE(img.ok());
  ASSERT_TRUE(sim.kernel().InstallAout("/bin/p", *img).ok());
  auto pid = sim.Start("/bin/p");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  // PIOCOPENM at a library address yields the library file, whose symbol
  // table contains libfn.
  auto fd = h.OpenMappedObject(false, *lib->SymbolValue("libfn"));
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> bytes(1 << 16);
  auto n = sim.kernel().Read(sim.controller(), *fd, bytes.data(), bytes.size());
  ASSERT_TRUE(n.ok());
  bytes.resize(static_cast<size_t>(*n));
  auto parsed = Aout::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->SymbolValue("libfn").ok());
}

TEST(ProcOdds, MultipleReadOnlyControllersCoexistWithWriter) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/c", kCounter).ok());
  auto pid = sim.Start("/bin/c");
  auto writer = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid, O_RDWR | O_EXCL);
  ASSERT_TRUE(writer.ok());
  auto ro1 = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid, O_RDONLY);
  auto ro2 = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid, O_RDONLY);
  ASSERT_TRUE(ro1.ok());
  ASSERT_TRUE(ro2.ok());
  ASSERT_TRUE(writer->Stop().ok());
  EXPECT_TRUE(ro1->Status().ok());
  EXPECT_TRUE(ro2->Psinfo().ok());
}

// ---------------------------------------------------------------------------
// LWP scheduling fairness.
// ---------------------------------------------------------------------------

TEST(Scheduling, LwpsShareTheProcessor) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/t", R"(
      ldi r0, SYS_lwp_create
      ldi r1, thread
      ldi r2, tstack+1024
      sys
m:    ldi r4, c1
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp m
thread:
t:    ldi r4, c2
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp t
      .data
c1:   .word 0
c2:   .word 0
      .bss
tstack: .space 1024
  )").ok());
  auto pid = sim.Start("/bin/t");
  for (int i = 0; i < 4000; ++i) {
    sim.kernel().Step();
  }
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  uint32_t c1 = 0, c2 = 0;
  Assembler as = sim.NewAssembler();
  // Addresses: read through /proc using the symbols from a fresh assembly.
  auto img = Aout::Parse([
    &]() {
    std::vector<uint8_t> bytes(1 << 16);
    auto fd = h.OpenMappedObject(true);
    auto n = sim.kernel().Read(sim.controller(), *fd, bytes.data(), bytes.size());
    bytes.resize(static_cast<size_t>(*n));
    return bytes;
  }());
  ASSERT_TRUE(img.ok());
  (void)h.ReadMem(*img->SymbolValue("c1"), &c1, 4);
  (void)h.ReadMem(*img->SymbolValue("c2"), &c2, 4);
  EXPECT_GT(c1, 0u);
  EXPECT_GT(c2, 0u);
  double ratio = static_cast<double>(c1) / static_cast<double>(c2);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5) << "round-robin keeps both lwps progressing";
}

TEST(Scheduling, NiceWeightsProcessorShares) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/c", kCounter).ok());
  auto favored = sim.Start("/bin/c");
  auto niced = sim.Start("/bin/c");
  ASSERT_TRUE(favored.ok() && niced.ok());
  auto hn = *ProcHandle::Grab(sim.kernel(), sim.controller(), *niced);
  ASSERT_TRUE(hn.Nice(19).ok());  // 20 -> 39: minimal share
  for (int i = 0; i < 8000; ++i) {
    sim.kernel().Step();
  }
  Proc* pf = sim.kernel().FindProc(*favored);
  Proc* pn = sim.kernel().FindProc(*niced);
  ASSERT_NE(pf, nullptr);
  ASSERT_NE(pn, nullptr);
  EXPECT_GT(pn->utime, 0u) << "the niced process still runs";
  EXPECT_GT(pf->utime, pn->utime * 4)
      << "nice(19) yields a much smaller share of the processor";
}

TEST(TrussFilter, TracesOnlySelectedSyscalls) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/p", R"(
      ldi r0, SYS_getpid
      sys
      ldi r0, SYS_getuid
      sys
      ldi r0, SYS_getpid
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )").ok());
  auto pid = sim.Start("/bin/p");
  TrussOptions opts;
  opts.filter.Add(SYS_getuid);
  Truss truss(sim.kernel(), sim.controller(), opts);
  ASSERT_TRUE(truss.Trace(*pid).ok());
  EXPECT_NE(truss.report().find("getuid()"), std::string::npos);
  EXPECT_EQ(truss.report().find("getpid()"), std::string::npos)
      << "unselected calls are not traced:\n"
      << truss.report();
}

// ---------------------------------------------------------------------------
// Randomized process-tree stress: fork/exec/exit storms with invariants.
// ---------------------------------------------------------------------------

TEST(Stress, RandomProcessTreeConvergesCleanly) {
  Sim sim;
  // A program that forks a few children (depth-limited by argv... kept
  // simple: each process forks twice if a data flag allows, then exits).
  ASSERT_TRUE(sim.InstallProgram("/bin/tree", R"(
      ; r1 = argc (1 or 2). With 2 args, fork two leaf children.
      cmpi r1, 2
      jlt leaf
      ldi r8, 2
f:    cmpi r8, 0
      jz reap
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz leaf
      ldi r5, 1
      sub r8, r5
      jmp f
reap: ldi r0, SYS_wait
      sys
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
leaf:
      ldi r0, SYS_sleep
      ldi r1, 50
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )").ok());

  std::mt19937 rng(4242);
  std::vector<Pid> roots;
  for (int round = 0; round < 10; ++round) {
    // Launch a few trees.
    int launch = 1 + static_cast<int>(rng() % 3);
    for (int i = 0; i < launch; ++i) {
      auto pid = sim.kernel().Spawn("/bin/tree", {"tree", "deep"}, Creds::Root(),
                                    sim.controller());
      ASSERT_TRUE(pid.ok());
      roots.push_back(*pid);
    }
    // Interleave with stepping.
    for (int i = 0; i < static_cast<int>(rng() % 2000); ++i) {
      sim.kernel().Step();
    }
  }
  // Drain: everything exits; the controller reaps its children.
  for (Pid root : roots) {
    auto ec = sim.kernel().RunToExit(root);
    if (ec.ok()) {
      auto wr = sim.kernel().Wait(sim.controller(), root);
      ASSERT_TRUE(wr.ok());
      EXPECT_TRUE(WIfExited(wr->status));
    }
  }
  // Invariants: no strays — only the eternal processes remain.
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    return sim.kernel().AllPids().size() <= 4;  // sched, init, pageout, controller
  }, 1'000'000));
  for (Pid pid : sim.kernel().AllPids()) {
    Proc* p = sim.kernel().FindProc(pid);
    EXPECT_NE(p->state, Proc::State::kZombie) << "no zombies leak";
  }
}

TEST(Stress, ManySimultaneousControllersAndTargets) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/c", kCounter).ok());
  std::vector<Pid> pids;
  std::vector<ProcHandle> handles;
  for (int i = 0; i < 20; ++i) {
    auto pid = sim.Start("/bin/c");
    ASSERT_TRUE(pid.ok());
    pids.push_back(*pid);
    handles.push_back(*ProcHandle::Grab(sim.kernel(), sim.controller(), *pid));
  }
  std::mt19937 rng(7);
  for (int op = 0; op < 400; ++op) {
    auto& h = handles[rng() % handles.size()];
    switch (rng() % 4) {
      case 0: {
        (void)h.Stop();
        break;
      }
      case 1: {
        auto st = h.Status();
        if (st.ok() && (st->pr_flags & PR_ISTOP)) {
          (void)h.Run();
        }
        break;
      }
      case 2: {
        uint32_t v;
        (void)h.ReadMem(0x80008000, &v, 4);
        break;
      }
      case 3: {
        for (int i = 0; i < 20; ++i) {
          sim.kernel().Step();
        }
        break;
      }
    }
  }
  // Everything is still alive and controllable.
  for (auto& h : handles) {
    auto st = h.Status();
    ASSERT_TRUE(st.ok());
    if (st->pr_flags & PR_ISTOP) {
      EXPECT_TRUE(h.Run().ok());
    }
  }
  for (Pid pid : pids) {
    EXPECT_NE(sim.kernel().FindProc(pid), nullptr);
  }
}

}  // namespace
}  // namespace svr4
