// Behavioral tests for the flat /proc interface: every paper-documented
// semantic from Figure 1's directory listing through the issig() stop logic
// and the security provisions.
#include <gtest/gtest.h>

#include <cstring>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

constexpr char kSpin[] = "spin: jmp spin\n";

constexpr char kCounter[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
)";

// Sleeps, then verifies the sleep lasted; exits 42 on EINTR.
constexpr char kSleeper[] = R"(
      ldi r0, SYS_time
      sys
      mov r8, r0
      ldi r0, SYS_sleep
      ldi r1, 20000
      sys
      jcs intr
      ldi r0, SYS_time
      sys
      sub r0, r8
      cmpi r0, 20000
      jlt short
      ldi r0, SYS_exit
      ldi r1, 0
      sys
short:
      ldi r0, SYS_exit
      ldi r1, 1
      sys
intr: cmpi r0, 4          ; EINTR
      jnz other
      ldi r0, SYS_exit
      ldi r1, 42
      sys
other:
      ldi r0, SYS_exit
      ldi r1, 2
      sys
)";

struct Target {
  Pid pid;
  Aout image;
};

Target StartProgram(Sim& sim, const std::string& src, const std::string& path = "/bin/prog",
                    const Creds& creds = Creds::Root()) {
  auto img = sim.InstallProgram(path, src);
  EXPECT_TRUE(img.ok()) << "assembly failed";
  auto pid = sim.Start(path, {}, creds);
  EXPECT_TRUE(pid.ok());
  return Target{pid.ok() ? *pid : -1, img.ok() ? *img : Aout{}};
}

ProcHandle Grab(Sim& sim, Pid pid, int oflags = O_RDWR) {
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid, oflags);
  EXPECT_TRUE(h.ok()) << "grab failed: " << ErrnoName(h.error());
  return std::move(*h);
}

// ---------------------------------------------------------------------------
// Figure 1: the /proc directory.
// ---------------------------------------------------------------------------

TEST(ProcDir, EntriesAreFiveDigitPids) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto ents = sim.kernel().ReadDir(sim.controller(), "/proc");
  ASSERT_TRUE(ents.ok());
  bool found0 = false;
  bool found_target = false;
  for (const auto& e : *ents) {
    EXPECT_EQ(e.name.size(), 5u) << "pid names are zero-padded decimals";
    if (e.name == "00000") {
      found0 = true;
    }
    char want[8];
    std::snprintf(want, sizeof(want), "%05d", t.pid);
    if (e.name == want) {
      found_target = true;
    }
  }
  EXPECT_TRUE(found0) << "process 0 (sched) is listed";
  EXPECT_TRUE(found_target);
}

TEST(ProcDir, SystemProcessesHaveSizeZero) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  // "system processes such as process 0 and process 2 have no user-level
  // address space, so their sizes are zero."
  auto a0 = sim.kernel().Stat(sim.controller(), "/proc/00000");
  ASSERT_TRUE(a0.ok());
  EXPECT_EQ(a0->size, 0u);
  auto a2 = sim.kernel().Stat(sim.controller(), "/proc/00002");
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->size, 0u);
  char path[24];
  std::snprintf(path, sizeof(path), "/proc/%05d", t.pid);
  auto at = sim.kernel().Stat(sim.controller(), path);
  ASSERT_TRUE(at.ok());
  EXPECT_GT(at->size, 0u) << "a user process reports its total VM size";
}

TEST(ProcDir, OwnerIsRealUidGid) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kSpin).ok());
  auto pid = sim.Start("/bin/prog", {}, Creds::User(137, 42));
  ASSERT_TRUE(pid.ok());
  char path[24];
  std::snprintf(path, sizeof(path), "/proc/%05d", *pid);
  auto at = sim.kernel().Stat(sim.controller(), path);
  ASSERT_TRUE(at.ok());
  EXPECT_EQ(at->uid, 137u);
  EXPECT_EQ(at->gid, 42u);
}

TEST(ProcDir, LookupOfNonProcessFails) {
  Sim sim;
  EXPECT_FALSE(sim.kernel().Stat(sim.controller(), "/proc/09999").ok());
  EXPECT_FALSE(sim.kernel().Stat(sim.controller(), "/proc/banana").ok());
}

// ---------------------------------------------------------------------------
// Address-space I/O.
// ---------------------------------------------------------------------------

TEST(ProcAsIo, ReadAndWriteAtVirtualAddresses) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  uint32_t var = *t.image.SymbolValue("var");

  // Let it count for a while, then peek at the counter.
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  uint32_t value = 0;
  auto n = h.ReadMem(var, &value, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4);
  EXPECT_GT(value, 0u);

  // Write a new value; the running process must observe it.
  uint32_t big = 1u << 30;
  ASSERT_TRUE(h.WriteMem(var, &big, 4).ok());
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.ReadMem(var, &value, 4).ok());
  EXPECT_GE(value, big);
}

TEST(ProcAsIo, UnmappedOffsetFails) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto h = Grab(sim, t.pid);
  uint8_t byte;
  auto n = h.ReadMem(0x10000, &byte, 1);
  ASSERT_FALSE(n.ok()) << "I/O with an offset in an unmapped area fails";
  EXPECT_EQ(n.error(), Errno::kEIO);
}

TEST(ProcAsIo, TransfersTruncateAtUnmappedBoundary) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto h = Grab(sim, t.pid);
  // The text mapping is exactly one page; read across its end.
  uint32_t text_end = 0x80000000 + kPageSize;
  std::vector<uint8_t> buf(64);
  auto n = h.ReadMem(text_end - 8, buf.data(), buf.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 8) << "reads truncate at the boundary";
  // "This includes writes as well as reads."
  auto w = h.WriteMem(text_end - 8, buf.data(), buf.size());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, 8) << "writes truncate at the boundary";
}

TEST(ProcAsIo, BreakpointWriteIsCopyOnWrite) {
  Sim sim;
  // Two processes executing the same a.out share text pages.
  auto img = sim.InstallProgram("/bin/prog", kCounter);
  ASSERT_TRUE(img.ok());
  auto pid_a = sim.Start("/bin/prog");
  auto pid_b = sim.Start("/bin/prog");
  ASSERT_TRUE(pid_a.ok() && pid_b.ok());
  auto ha = Grab(sim, *pid_a);
  auto hb = Grab(sim, *pid_b);

  uint32_t text = img->text_vaddr;
  uint8_t orig_a, orig_b;
  ASSERT_TRUE(ha.ReadMem(text, &orig_a, 1).ok());
  ASSERT_TRUE(hb.ReadMem(text, &orig_b, 1).ok());
  EXPECT_EQ(orig_a, orig_b);

  // The process itself can't store into r-x text, but a controlling process
  // can; COW keeps everyone else intact.
  uint8_t bpt = kBreakpointByte;
  ASSERT_TRUE(ha.WriteMem(text, &bpt, 1).ok());

  uint8_t now_a = 0, now_b = 0;
  ASSERT_TRUE(ha.ReadMem(text, &now_a, 1).ok());
  ASSERT_TRUE(hb.ReadMem(text, &now_b, 1).ok());
  EXPECT_EQ(now_a, bpt);
  EXPECT_EQ(now_b, orig_b) << "writing to one process must not corrupt another";

  // The a.out file itself is unchanged.
  auto fd = sim.kernel().Open(sim.controller(), "/bin/prog", O_RDONLY);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(sim.kernel().Lseek(sim.controller(), *fd, Aout::TextFileOffset(),
                                 SEEK_SET_).ok());
  uint8_t file_byte = 0;
  ASSERT_TRUE(sim.kernel().Read(sim.controller(), *fd, &file_byte, 1).ok());
  EXPECT_EQ(file_byte, orig_b) << "the executable file must not be corrupted";
}

// ---------------------------------------------------------------------------
// Stop and run.
// ---------------------------------------------------------------------------

TEST(ProcStop, StopOnDemandAndStatus) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Stop().ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->pr_flags & PR_STOPPED);
  EXPECT_TRUE(st->pr_flags & PR_ISTOP) << "stopped on an event of interest";
  EXPECT_EQ(st->pr_why, PR_REQUESTED);
  EXPECT_EQ(st->pr_pid, t.pid);
  EXPECT_GT(st->pr_reg.pc, 0u);
  // pr_instr carries the instruction at pc.
  uint8_t byte;
  ASSERT_TRUE(h.ReadMem(st->pr_reg.pc, &byte, 1).ok());
  EXPECT_EQ(st->pr_instr & 0xFF, byte);
}

TEST(ProcStop, RunResumesExecution) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  uint32_t var = *t.image.SymbolValue("var");
  ASSERT_TRUE(h.Stop().ok());
  uint32_t v1 = 0, v2 = 0;
  ASSERT_TRUE(h.ReadMem(var, &v1, 4).ok());
  // While stopped, nothing advances.
  for (int i = 0; i < 50; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.ReadMem(var, &v2, 4).ok());
  EXPECT_EQ(v1, v2);
  ASSERT_TRUE(h.Run().ok());
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.ReadMem(var, &v2, 4).ok());
  EXPECT_GT(v2, v1);
}

TEST(ProcStop, RunOnNonStoppedProcessIsEBUSY) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  auto r = h.Run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEBUSY);
}

TEST(ProcStop, StopOfSleepingProcessDoesNotDisturbSyscall) {
  Sim sim;
  auto t = StartProgram(sim, kSleeper);
  auto h = Grab(sim, t.pid);
  // Let it get into the sleep.
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(t.pid);
    return p != nullptr && p->MainLwp() != nullptr &&
           p->MainLwp()->state == LwpState::kSleeping;
  }));
  ASSERT_TRUE(h.Stop().ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->pr_flags & PR_ASLEEP) << "stopped while asleep in a syscall";
  EXPECT_EQ(st->pr_why, PR_REQUESTED);
  EXPECT_EQ(st->pr_syscall, SYS_sleep);
  // Resume: the sleep continues as if nothing happened.
  ASSERT_TRUE(h.Run().ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 0) << "the sleep must complete undisturbed";
}

TEST(ProcStop, AbortSyscallWhileAsleepGivesEintrWithoutSignals) {
  Sim sim;
  auto t = StartProgram(sim, kSleeper);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(t.pid);
    return p != nullptr && p->MainLwp() != nullptr &&
           p->MainLwp()->state == LwpState::kSleeping;
  }));
  ASSERT_TRUE(h.Stop().ok());
  PrRun r;
  r.pr_flags = PRSABORT;
  ASSERT_TRUE(h.Run(r).ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 42) << "the aborted call fails with EINTR";
}

TEST(ProcStop, WstopWaitsForAStop) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_TRUE(sim.kernel().PrStop(p).ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->pr_flags & PR_STOPPED);
}

TEST(ProcStop, WstopOnExitingProcessIsENOENT) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )");
  auto h = Grab(sim, t.pid);
  auto r = h.WaitStop();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kENOENT);
}

TEST(ProcStop, SingleStepExecutesExactlyOneInstruction) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(FLTTRACE);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  auto before = h.GetRegs();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(h.Step().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_why, PR_FAULTED);
  EXPECT_EQ(st->pr_what, FLTTRACE);
  // Exactly one instruction: `ldi r4, var` is 6 bytes.
  EXPECT_EQ(st->pr_reg.pc, before->pc + 6);
}

// ---------------------------------------------------------------------------
// Events of interest: system calls.
// ---------------------------------------------------------------------------

constexpr char kOneWrite[] = R"(
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 14
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "hello, world!\n"
)";

TEST(ProcSyscall, EntryStopSeesArgumentsBeforeExecution) {
  Sim sim;
  auto t = StartProgram(sim, kOneWrite);
  auto h = Grab(sim, t.pid);
  SysSet entry;
  entry.Add(SYS_write);
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.SetSysEntry(entry).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_why, PR_SYSENTRY);
  EXPECT_EQ(st->pr_what, SYS_write);
  EXPECT_EQ(st->pr_syscall, SYS_write);
  EXPECT_EQ(st->pr_nsysarg, 3);
  EXPECT_EQ(st->pr_sysarg[0], 1u);           // fd
  EXPECT_EQ(st->pr_sysarg[2], 14u);          // count
  EXPECT_TRUE(sim.ConsoleOutput().empty()) << "stop happens before execution";
}

TEST(ProcSyscall, DebuggerCanChangeArgumentsAtEntry) {
  Sim sim;
  auto t = StartProgram(sim, kOneWrite);
  auto h = Grab(sim, t.pid);
  SysSet entry;
  entry.Add(SYS_write);
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.SetSysEntry(entry).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  // "This gives a debugger the opportunity to change the system call
  // arguments before processing occurs."
  auto regs = h.GetRegs();
  ASSERT_TRUE(regs.ok());
  regs->r[3] = 5;  // shorten the write
  ASSERT_TRUE(h.SetRegs(*regs).ok());
  ASSERT_TRUE(h.Run().ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(sim.ConsoleOutput(), "hello");
}

TEST(ProcSyscall, DebuggerCanManufactureReturnValuesAtExit) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_getuid
      sys
      mov r1, r0
      ldi r0, SYS_exit
      sys
  )");
  auto h = Grab(sim, t.pid);
  SysSet exits;
  exits.Add(SYS_getuid);
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.SetSysExit(exits).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_why, PR_SYSEXIT);
  EXPECT_EQ(st->pr_what, SYS_getuid);
  EXPECT_EQ(st->pr_reg.r[0], 0u) << "real return value stored before the stop";
  auto regs = *h.GetRegs();
  regs.r[0] = 42;  // manufacture a different uid
  ASSERT_TRUE(h.SetRegs(regs).ok());
  ASSERT_TRUE(h.Run().ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 42);
}

TEST(ProcSyscall, AbortAtEntrySkipsTheCall) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_getuid
      sys
      jcs failed
      ldi r0, SYS_exit
      ldi r1, 1          ; the call succeeded: wrong for this test
      sys
failed:
      cmpi r0, 4         ; EINTR
      jnz other
      ldi r0, SYS_exit
      ldi r1, 0
      sys
other:
      ldi r0, SYS_exit
      ldi r1, 2
      sys
  )");
  auto h = Grab(sim, t.pid);
  SysSet entry;
  entry.Add(SYS_getuid);
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.SetSysEntry(entry).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  PrRun r;
  r.pr_flags = PRSABORT;
  ASSERT_TRUE(h.Run(r).ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 0) << "aborted syscall returns EINTR";
}

TEST(ProcSyscall, ObsoleteSyscallEmulatedEntirelyAtUserLevel) {
  Sim sim;
  // The kernel refuses SYS_otime with ENOSYS. A controlling process
  // intercepts it and simulates it: "older system calls or alternate
  // versions of them can be simulated entirely at user level."
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_otime
      sys
      jcs failed
      mov r1, r0
      ldi r0, SYS_exit
      sys
failed:
      ldi r0, SYS_exit
      ldi r1, 255
      sys
  )");
  auto h = Grab(sim, t.pid);
  SysSet set;
  set.Add(SYS_otime);
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.SetSysEntry(set).ok());
  ASSERT_TRUE(h.SetSysExit(set).ok());
  ASSERT_TRUE(h.Run().ok());

  // Entry: abort so the kernel never sees the call.
  ASSERT_TRUE(h.WaitStop().ok());
  ASSERT_EQ(h.Status()->pr_why, PR_SYSENTRY);
  PrRun r;
  r.pr_flags = PRSABORT;
  ASSERT_TRUE(h.Run(r).ok());

  // Exit: manufacture the emulated result.
  ASSERT_TRUE(h.WaitStop().ok());
  ASSERT_EQ(h.Status()->pr_why, PR_SYSEXIT);
  auto regs = *h.GetRegs();
  regs.r[0] = 99;             // the emulated "otime" result
  regs.psr &= ~kPsrC;         // success, not EINTR
  ASSERT_TRUE(h.SetRegs(regs).ok());
  ASSERT_TRUE(h.Run().ok());

  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 99);
}

// ---------------------------------------------------------------------------
// Events of interest: faults (breakpoints).
// ---------------------------------------------------------------------------

TEST(ProcFault, BreakpointViaFaultTracing) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  uint32_t loop = *t.image.SymbolValue("loop");

  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(FLTBPT);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  // Plant the breakpoint: replace the instruction with BPT.
  uint8_t orig;
  ASSERT_TRUE(h.ReadMem(loop, &orig, 1).ok());
  uint8_t bpt = kBreakpointByte;
  ASSERT_TRUE(h.WriteMem(loop, &bpt, 1).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());

  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_why, PR_FAULTED);
  EXPECT_EQ(st->pr_what, FLTBPT);
  EXPECT_EQ(st->pr_reg.pc, loop) << "pc is left at the breakpoint address";
  EXPECT_EQ(st->pr_info.si_code, FLTBPT);

  // Lift, clear the fault, continue: the program keeps counting.
  ASSERT_TRUE(h.WriteMem(loop, &orig, 1).ok());
  ASSERT_TRUE(h.RunClearFault().ok());
  uint32_t var = *t.image.SymbolValue("var");
  uint32_t v1 = 0, v2 = 0;
  ASSERT_TRUE(h.ReadMem(var, &v1, 4).ok());
  for (int i = 0; i < 300; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.ReadMem(var, &v2, 4).ok());
  EXPECT_GT(v2, v1);
}

TEST(ProcFault, UnclearedFaultConvertsToSignal) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  uint32_t loop = *t.image.SymbolValue("loop");
  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(FLTBPT);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  uint8_t bpt = kBreakpointByte;
  ASSERT_TRUE(h.WriteMem(loop, &bpt, 1).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  // Resume WITHOUT PRCFAULT: the fault becomes SIGTRAP; default action kills.
  ASSERT_TRUE(h.Run().ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_TRUE(WIfSignaled(*ec));
  EXPECT_EQ(WTermSig(*ec), SIGTRAP);
}

TEST(ProcFault, UntracedBreakpointBecomesSigtrap) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  uint32_t loop = *t.image.SymbolValue("loop");
  ASSERT_TRUE(h.Stop().ok());
  uint8_t bpt = kBreakpointByte;
  ASSERT_TRUE(h.WriteMem(loop, &bpt, 1).ok());
  ASSERT_TRUE(h.Run().ok());
  // FLTBPT is not traced: SIGTRAP with default action terminates (core).
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_TRUE(WIfSignaled(*ec));
  EXPECT_EQ(WTermSig(*ec), SIGTRAP);
}

// ---------------------------------------------------------------------------
// Events of interest: signals, job control, the issig() dance.
// ---------------------------------------------------------------------------

constexpr char kSigEcho[] = R"(
      ; handler writes "X" on SIGUSR1, then continues spinning
      ldi r0, SYS_sigaction
      ldi r1, SIGUSR1
      ldi r2, handler
      ldi r3, 0
      sys
spin: jmp spin
handler:
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, xmark
      ldi r3, 1
      sys
      ldi r0, SYS_sigreturn
      sys
      .data
xmark: .asciz "X"
)";

TEST(ProcSignal, SignalledStopThenDelivery) {
  Sim sim;
  auto t = StartProgram(sim, kSigEcho);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Stop().ok());
  SigSet sigs;
  sigs.Add(SIGUSR1);
  ASSERT_TRUE(h.SetSigTrace(sigs).ok());
  ASSERT_TRUE(h.Run().ok());
  // Let the handler be installed, then signal it.
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.Kill(SIGUSR1).ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_why, PR_SIGNALLED);
  EXPECT_EQ(st->pr_what, SIGUSR1);
  EXPECT_EQ(st->pr_cursig, SIGUSR1);
  EXPECT_TRUE(sim.ConsoleOutput().empty());
  // Resume without clearing: the signal is delivered to the handler.
  ASSERT_TRUE(h.Run().ok());
  for (int i = 0; i < 400; ++i) {
    sim.kernel().Step();
  }
  EXPECT_EQ(sim.ConsoleOutput(), "X");
}

TEST(ProcSignal, SignalledStopClearedSuppressesDelivery) {
  Sim sim;
  auto t = StartProgram(sim, kSigEcho);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Stop().ok());
  SigSet sigs;
  sigs.Add(SIGUSR1);
  ASSERT_TRUE(h.SetSigTrace(sigs).ok());
  ASSERT_TRUE(h.Run().ok());
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.Kill(SIGUSR1).ok());
  ASSERT_TRUE(h.WaitStop().ok());
  ASSERT_TRUE(h.RunClearSig().ok());
  for (int i = 0; i < 400; ++i) {
    sim.kernel().Step();
  }
  EXPECT_TRUE(sim.ConsoleOutput().empty()) << "cleared signal must not be delivered";
}

TEST(ProcSignal, UnkillRemovesPendingSignal) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.Kill(SIGTERM).ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->pr_sigpend.Has(SIGTERM));
  ASSERT_TRUE(h.Unkill(SIGTERM).ok());
  st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->pr_sigpend.Has(SIGTERM));
  ASSERT_TRUE(h.Run().ok());
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->state, Proc::State::kActive) << "deleted signal must not kill";
}

TEST(ProcSignal, JobControlDoubleStopAndProcGetsTheLastWord) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Stop().ok());
  SigSet sigs;
  sigs.Add(SIGTSTP);
  ASSERT_TRUE(h.SetSigTrace(sigs).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.Kill(SIGTSTP).ok());
  // First stop: the signalled stop.
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = *h.Status();
  EXPECT_EQ(st.pr_why, PR_SIGNALLED);
  EXPECT_EQ(st.pr_what, SIGTSTP);
  // Set running without clearing the signal: the default action is taken
  // within issig() — a job-control stop.
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  st = *h.Status();
  EXPECT_EQ(st.pr_why, PR_JOBCONTROL);
  EXPECT_EQ(st.pr_what, SIGTSTP);
  EXPECT_FALSE(st.pr_flags & PR_ISTOP);
  // "Such a stopped process can be restarted only by sending it SIGCONT."
  auto r = h.Run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEBUSY);
  // Direct it to stop; then continue it: it stops on the requested stop
  // before exiting issig(). "/proc gets the last word."
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.Kill(SIGCONT).ok());
  ASSERT_TRUE(h.WaitStop().ok());
  st = *h.Status();
  EXPECT_EQ(st.pr_why, PR_REQUESTED);
  EXPECT_TRUE(st.pr_flags & PR_ISTOP);
  ASSERT_TRUE(h.Run().ok());
  for (int i = 0; i < 50; ++i) {
    sim.kernel().Step();
  }
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning);
}

TEST(ProcSignal, SetCurrentSignalInjectsIt) {
  Sim sim;
  auto t = StartProgram(sim, kSigEcho);
  auto h = Grab(sim, t.pid);
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();  // install the handler
  }
  ASSERT_TRUE(h.Stop().ok());
  SigInfo info;
  info.si_signo = SIGUSR1;
  ASSERT_TRUE(h.SetCurSig(info).ok());
  ASSERT_TRUE(h.Run().ok());
  for (int i = 0; i < 400; ++i) {
    sim.kernel().Step();
  }
  EXPECT_EQ(sim.ConsoleOutput(), "X") << "injected signal reaches the handler";
}

// ---------------------------------------------------------------------------
// Multiple processes: inherit-on-fork, breakpoint lifting.
// ---------------------------------------------------------------------------

constexpr char kForker[] = R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_wait
      sys
      mov r5, r1
      ldi r6, 8
      shr r5, r6
      ldi r0, SYS_exit
      mov r1, r5
      sys
child:
      call f
      ldi r0, SYS_exit
      ldi r1, 7
      sys
f:    ldi r9, 1234
      ret
)";

TEST(ProcFork, InheritOnForkGivesControlOfChildBeforeItRuns) {
  Sim sim;
  auto t = StartProgram(sim, kForker);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.SetInheritOnFork(true).ok());
  SysSet exits;
  exits.Add(SYS_fork);
  ASSERT_TRUE(h.SetSysExit(exits).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = *h.Status();
  ASSERT_EQ(st.pr_why, PR_SYSEXIT);
  ASSERT_EQ(st.pr_what, SYS_fork);
  Pid child_pid = static_cast<Pid>(st.pr_reg.r[0]);
  ASSERT_GT(child_pid, 0);
  // "The debugger sees the parent's stop on exit from fork and uses the
  // return value (the pid of the child) to open the child's /proc file.
  // Because the child stopped before executing any user-level code, the
  // debugger can maintain complete control."
  auto hc = Grab(sim, child_pid);
  auto cst = *hc.Status();
  EXPECT_TRUE(cst.pr_flags & PR_STOPPED);
  EXPECT_EQ(cst.pr_why, PR_SYSEXIT);
  EXPECT_EQ(cst.pr_what, SYS_fork);
  EXPECT_EQ(cst.pr_reg.r[0], 0u) << "fork returns 0 in the child";
  // The child inherited the tracing flags.
  auto child_exits = hc.GetSysExit();
  ASSERT_TRUE(child_exits.ok());
  EXPECT_TRUE(child_exits->Has(SYS_fork));
  EXPECT_TRUE(cst.pr_flags & PR_FORK);
  // Release both; everything completes.
  ASSERT_TRUE(hc.Run().ok());
  ASSERT_TRUE(h.Run().ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 7);
}

TEST(ProcFork, BreakpointLiftingRecipeKeepsChildClean) {
  Sim sim;
  auto t = StartProgram(sim, kForker);
  auto h = Grab(sim, t.pid);
  uint32_t f_addr = *t.image.SymbolValue("f");

  ASSERT_TRUE(h.Stop().ok());
  // No inherit-on-fork: children run unmolested — but planted breakpoints
  // would be inherited through the shared text. The paper's recipe: trace
  // entry and exit of fork; lift breakpoints at entry; re-establish at exit.
  SysSet set;
  set.Add(SYS_fork);
  ASSERT_TRUE(h.SetSysEntry(set).ok());
  ASSERT_TRUE(h.SetSysExit(set).ok());
  FltSet faults;
  faults.Add(FLTBPT);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());

  uint8_t orig;
  ASSERT_TRUE(h.ReadMem(f_addr, &orig, 1).ok());
  uint8_t bpt = kBreakpointByte;
  ASSERT_TRUE(h.WriteMem(f_addr, &bpt, 1).ok());
  ASSERT_TRUE(h.Run().ok());

  // Stop on entry to fork: lift the breakpoints.
  ASSERT_TRUE(h.WaitStop().ok());
  ASSERT_EQ(h.Status()->pr_why, PR_SYSENTRY);
  ASSERT_TRUE(h.WriteMem(f_addr, &orig, 1).ok());
  ASSERT_TRUE(h.Run().ok());

  // Stop on exit from fork (parent): re-establish the breakpoints.
  ASSERT_TRUE(h.WaitStop().ok());
  ASSERT_EQ(h.Status()->pr_why, PR_SYSEXIT);
  ASSERT_TRUE(h.WriteMem(f_addr, &bpt, 1).ok());
  ASSERT_TRUE(h.Run().ok());

  // The child runs f() breakpoint-free and exits 7; the parent passes that
  // through as its own exit code.
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_TRUE(WIfExited(*ec));
  EXPECT_EQ(WExitCode(*ec), 7) << "the child must not hit the lifted breakpoint";
}

TEST(ProcFork, VforkSharedAddressSpaceNeedsSpecialCare) {
  // "Special care must be taken with vfork because the address space is
  // shared between parent and child until the child exits or execs. /proc
  // provides sufficient mechanism to deal with this case efficiently."
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/second", R"(
      ldi r0, SYS_exit
      ldi r1, 9
      sys
  )").ok());
  auto t = StartProgram(sim, R"(
      call f              ; parent uses f before and after the vfork
      ldi r0, SYS_vfork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_wait
      sys
      call f
      mov r5, r1
      ldi r6, 8
      shr r5, r6
      ldi r0, SYS_exit
      mov r1, r5
      sys
child:
      call f              ; runs in the SHARED address space
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 1
      sys
f:    ldi r9, 3
      ret
      .data
path: .asciz "/bin/second"
  )");
  auto h = Grab(sim, t.pid);
  uint32_t f_addr = *t.image.SymbolValue("f");

  ASSERT_TRUE(h.Stop().ok());
  SysSet both;
  both.Add(SYS_vfork);
  ASSERT_TRUE(h.SetSysEntry(both).ok());
  ASSERT_TRUE(h.SetSysExit(both).ok());
  FltSet faults;
  faults.Add(FLTBPT);
  faults.Add(FLTTRACE);  // for the step-over
  ASSERT_TRUE(h.SetFltTrace(faults).ok());

  uint8_t orig, bpt = kBreakpointByte;
  ASSERT_TRUE(h.ReadMem(f_addr, &orig, 1).ok());
  ASSERT_TRUE(h.WriteMem(f_addr, &bpt, 1).ok());
  ASSERT_TRUE(h.Run().ok());

  // First the parent's own breakpoint hit before the vfork.
  ASSERT_TRUE(h.WaitStop().ok());
  ASSERT_EQ(h.Status()->pr_why, PR_FAULTED);
  ASSERT_TRUE(h.WriteMem(f_addr, &orig, 1).ok());
  {
    PrRun r;
    r.pr_flags = PRSTEP | PRCFAULT;
    ASSERT_TRUE(h.Run(r).ok());
    ASSERT_TRUE(h.WaitStop().ok());
    ASSERT_TRUE(h.WriteMem(f_addr, &bpt, 1).ok());
    PrRun r2;
    r2.pr_flags = PRCFAULT;
    ASSERT_TRUE(h.Run(r2).ok());
  }

  // Entry to vfork: LIFT the breakpoints. With an ordinary fork, COW would
  // protect the child; with vfork the child writes the parent's own pages,
  // so a leftover breakpoint would fire in the shared text.
  ASSERT_TRUE(h.WaitStop().ok());
  ASSERT_EQ(h.Status()->pr_why, PR_SYSENTRY);
  ASSERT_TRUE(h.WriteMem(f_addr, &orig, 1).ok());
  ASSERT_TRUE(h.Run().ok());

  // Exit from vfork (parent, after the child exec'd): re-establish. The
  // address space is private again.
  ASSERT_TRUE(h.WaitStop().ok());
  ASSERT_EQ(h.Status()->pr_why, PR_SYSEXIT);
  ASSERT_TRUE(h.WriteMem(f_addr, &bpt, 1).ok());
  ASSERT_TRUE(h.Run().ok());

  // The parent's post-vfork call to f hits the re-established breakpoint.
  ASSERT_TRUE(h.WaitStop().ok());
  ASSERT_EQ(h.Status()->pr_why, PR_FAULTED);
  ASSERT_EQ(h.Status()->pr_reg.pc, f_addr);
  ASSERT_TRUE(h.WriteMem(f_addr, &orig, 1).ok());
  ASSERT_TRUE(h.RunClearFault().ok());

  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 9) << "child exec'd cleanly through the shared space";
}

// ---------------------------------------------------------------------------
// run-on-last-close, persistence of tracing flags.
// ---------------------------------------------------------------------------

TEST(ProcClose, TracingFlagsPersistAfterCloseByDefault) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  {
    auto h = Grab(sim, t.pid);
    ASSERT_TRUE(h.Stop().ok());
    SigSet sigs;
    sigs.Add(SIGUSR1);
    ASSERT_TRUE(h.SetSigTrace(sigs).ok());
  }  // close: no run-on-last-close — the process stays stopped, flags stay
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped)
      << "a process can be left hanging and later reattached";
  auto h2 = Grab(sim, t.pid);
  auto sigs = h2.GetSigTrace();
  ASSERT_TRUE(sigs.ok());
  EXPECT_TRUE(sigs->Has(SIGUSR1));
  ASSERT_TRUE(h2.Run().ok());
}

TEST(ProcClose, RunOnLastCloseClearsTracingAndResumes) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  {
    auto h = Grab(sim, t.pid);
    ASSERT_TRUE(h.Stop().ok());
    SigSet sigs;
    sigs.Add(SIGUSR1);
    ASSERT_TRUE(h.SetSigTrace(sigs).ok());
    ASSERT_TRUE(h.SetRunOnLastClose(true).ok());
  }  // last writable close
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning)
      << "run-on-last-close sets a stopped process running";
  EXPECT_TRUE(p->trace.sigtrace.Empty()) << "all tracing flags cleared";
  EXPECT_FALSE(p->trace.run_on_last_close);
}

TEST(ProcClose, ReadOnlyCloseDoesNotTriggerRunOnLastClose) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.SetRunOnLastClose(true).ok());
  {
    auto ro = Grab(sim, t.pid, O_RDONLY);
    auto st = ro.Status();
    ASSERT_TRUE(st.ok());
  }  // closing a read-only descriptor: not the last WRITABLE close
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped);
  EXPECT_TRUE(p->trace.run_on_last_close);
}

// ---------------------------------------------------------------------------
// Security.
// ---------------------------------------------------------------------------

TEST(ProcSecurity, UidAndGidMustBothMatch) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kSpin).ok());
  auto pid = sim.Start("/bin/prog", {}, Creds::User(100, 10));
  ASSERT_TRUE(pid.ok());

  Proc* same = sim.NewController(Creds::User(100, 10), "same");
  EXPECT_TRUE(ProcHandle::Grab(sim.kernel(), same, *pid).ok());

  Proc* wrong_gid = sim.NewController(Creds::User(100, 11), "wrong-gid");
  auto r1 = ProcHandle::Grab(sim.kernel(), wrong_gid, *pid);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error(), Errno::kEACCES);

  Proc* wrong_uid = sim.NewController(Creds::User(101, 10), "wrong-uid");
  auto r2 = ProcHandle::Grab(sim.kernel(), wrong_uid, *pid);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error(), Errno::kEACCES);

  EXPECT_TRUE(ProcHandle::Grab(sim.kernel(), sim.controller(), *pid).ok())
      << "the super-user can always open";
}

TEST(ProcSecurity, SetIdProcessOpenableOnlyBySuperuser) {
  Sim sim;
  // A setuid-root executable started by an ordinary user.
  ASSERT_TRUE(sim.InstallProgram("/bin/suid", kSpin, 04755, 0, 0).ok());
  auto pid = sim.Start("/bin/suid", {}, Creds::User(100, 10));
  ASSERT_TRUE(pid.ok());
  Proc* owner = sim.NewController(Creds::User(100, 10), "owner");
  auto r = ProcHandle::Grab(sim.kernel(), owner, *pid);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEACCES);
  EXPECT_TRUE(ProcHandle::Grab(sim.kernel(), sim.controller(), *pid).ok());
}

TEST(ProcSecurity, ExclusiveOpenBlocksOtherWriters) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto excl = ProcHandle::Grab(sim.kernel(), sim.controller(), t.pid, O_RDWR | O_EXCL);
  ASSERT_TRUE(excl.ok());
  auto other = ProcHandle::Grab(sim.kernel(), sim.controller(), t.pid, O_RDWR);
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.error(), Errno::kEBUSY);
  // "Read-only opens are unaffected in this case."
  auto ro = ProcHandle::Grab(sim.kernel(), sim.controller(), t.pid, O_RDONLY);
  EXPECT_TRUE(ro.ok());
  // After the exclusive holder closes, writers may open again.
  excl->Close();
  EXPECT_TRUE(ProcHandle::Grab(sim.kernel(), sim.controller(), t.pid, O_RDWR).ok());
}

TEST(ProcSecurity, ExclusiveOpenFailsIfWritersExist) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto w = Grab(sim, t.pid);
  auto excl = ProcHandle::Grab(sim.kernel(), sim.controller(), t.pid, O_RDWR | O_EXCL);
  ASSERT_FALSE(excl.ok());
  EXPECT_EQ(excl.error(), Errno::kEBUSY);
}

TEST(ProcSecurity, SetIdExecInvalidatesDescriptors) {
  Sim sim;
  // Target (owned by user 100) execs a setuid-root program.
  ASSERT_TRUE(sim.InstallProgram("/bin/suid", kSpin, 04755, 0, 0).ok());
  auto img = sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/bin/suid"
  )");
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/prog", {}, Creds::User(100, 10));
  ASSERT_TRUE(pid.ok());

  Proc* owner = sim.NewController(Creds::User(100, 10), "owner");
  auto h = ProcHandle::Grab(sim.kernel(), owner, *pid);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Status().ok());

  // Run until the set-id exec has happened and the process has stopped.
  sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(*pid);
    return p == nullptr || (p->MainLwp() != nullptr &&
                            p->MainLwp()->state == LwpState::kStopped);
  });
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->setid);
  EXPECT_EQ(p->creds.euid, 0u) << "the set-id operation is honored";
  EXPECT_TRUE(p->trace.run_on_last_close) << "RLC is set on a set-id exec";
  EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped)
      << "the traced process is directed to stop";

  // The old descriptor is invalid: nothing but close succeeds.
  auto st = h->Status();
  ASSERT_FALSE(st.ok());
  auto rd = h->ReadMem(0x80000000, nullptr, 0);
  uint8_t b;
  rd = h->ReadMem(0x80000000, &b, 1);
  EXPECT_FALSE(rd.ok());

  // A privileged controller can reopen the file to retain control.
  auto root_h = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  ASSERT_TRUE(root_h.ok());
  EXPECT_TRUE(root_h->Status().ok());
  root_h->Close();

  // Just closing the invalid descriptor clears tracing and sets it running.
  h->Close();
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning);
  EXPECT_FALSE(p->trace.run_on_last_close);
}

TEST(ProcSecurity, ReadOnlyStaleDrainRunsLastClose) {
  Sim sim;
  // Regression: a set-id exec invalidates descriptors and sets
  // run-on-last-close whenever ANY open exists — including read-only-only
  // populations. The stale drain used to fire last-close only when a
  // writable stale close emptied the writable ledger, so a target whose
  // controllers were all read-only at exec time stayed directed-stopped
  // forever after the last stale close.
  ASSERT_TRUE(sim.InstallProgram("/bin/suid", kSpin, 04755, 0, 0).ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/bin/suid"
  )").ok());
  auto pid = sim.Start("/bin/prog", {}, Creds::User(100, 10));
  ASSERT_TRUE(pid.ok());
  Proc* owner = sim.NewController(Creds::User(100, 10), "owner");
  auto h = ProcHandle::Grab(sim.kernel(), owner, *pid, O_RDONLY);
  ASSERT_TRUE(h.ok());
  sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(*pid);
    return p == nullptr || (p->MainLwp() != nullptr &&
                            p->MainLwp()->state == LwpState::kStopped);
  });
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->trace.run_on_last_close) << "RLC is set on a set-id exec";
  ASSERT_EQ(p->trace.stale_total_opens, 1);
  ASSERT_EQ(p->trace.stale_writable_opens, 0) << "the only open was read-only";
  ASSERT_EQ(p->MainLwp()->state, LwpState::kStopped);

  // Closing the last (read-only) stale descriptor must release the target.
  h->Close();
  EXPECT_EQ(p->trace.stale_total_opens, 0);
  EXPECT_FALSE(p->trace.run_on_last_close)
      << "the read-only-only stale drain must still run last-close";
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning)
      << "nothing else can ever resume a target with no descriptors left";
}

TEST(ProcSecurity, StaleCloseDoesNotDisturbNewController) {
  Sim sim;
  // Regression: closing a descriptor invalidated by a set-id exec used to
  // run the ordinary close path, decrementing the *new* incarnation's open
  // counters — one stale close could zero writable_opens, fire last-close,
  // drop another controller's exclusivity, and set the process running
  // underneath it.
  ASSERT_TRUE(sim.InstallProgram("/bin/suid", kSpin, 04755, 0, 0).ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/bin/suid"
  )").ok());
  auto pid = sim.Start("/bin/prog", {}, Creds::User(100, 10));
  ASSERT_TRUE(pid.ok());
  Proc* owner = sim.NewController(Creds::User(100, 10), "owner");
  auto h = ProcHandle::Grab(sim.kernel(), owner, *pid);  // writable, pre-exec
  ASSERT_TRUE(h.ok());
  sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(*pid);
    return p == nullptr || (p->MainLwp() != nullptr &&
                            p->MainLwp()->state == LwpState::kStopped);
  });
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->trace.stale_writable_opens, 1)
      << "invalidation moved the old descriptor to the stale ledger";
  EXPECT_EQ(p->trace.writable_opens, 0);

  // A privileged controller takes exclusive control of the new incarnation.
  auto root_h =
      ProcHandle::Grab(sim.kernel(), sim.controller(), *pid, O_RDWR | O_EXCL);
  ASSERT_TRUE(root_h.ok());
  EXPECT_TRUE(p->trace.excl);
  EXPECT_EQ(p->trace.writable_opens, 1);

  // Closing the stale descriptor must not touch the live ledger, drop the
  // exclusive right, or resume the stopped process.
  h->Close();
  EXPECT_TRUE(p->trace.excl) << "stale close stole the exclusive right";
  EXPECT_EQ(p->trace.writable_opens, 1) << "stale close hit the live counter";
  EXPECT_EQ(p->trace.total_opens, 1);
  EXPECT_EQ(p->trace.stale_writable_opens, 0) << "the stale ledger drains";
  EXPECT_EQ(p->trace.stale_total_opens, 0);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped)
      << "the new controller's target must stay stopped";
  auto other = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  ASSERT_FALSE(other.ok()) << "exclusivity survives the stale close";
  EXPECT_EQ(other.error(), Errno::kEBUSY);

  // The live controller's last close still triggers run-on-last-close.
  root_h->Close();
  EXPECT_FALSE(p->trace.excl);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning);
}

// ---------------------------------------------------------------------------
// Information operations.
// ---------------------------------------------------------------------------

TEST(ProcInfo, PsinfoSnapshot) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog", "arg1"}, Creds::User(5, 6));
  ASSERT_TRUE(pid.ok());
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  auto h = Grab(sim, *pid);
  auto ps = h.Psinfo();
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(ps->pr_pid, *pid);
  EXPECT_EQ(ps->pr_uid, 5u);
  EXPECT_EQ(ps->pr_gid, 6u);
  EXPECT_STREQ(ps->pr_fname, "prog");
  EXPECT_STREQ(ps->pr_psargs, "prog arg1");
  EXPECT_EQ(ps->pr_state, 'R');
  EXPECT_GT(ps->pr_size, 0u);
  EXPECT_GT(ps->pr_time, 0u);
}

TEST(ProcInfo, ZombiePsinfo) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exit
      ldi r1, 3
      sys
  )").ok());
  // Child of the (native) controller: stays a zombie until waited for.
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(sim.kernel().RunToExit(*pid).ok());
  auto h = Grab(sim, *pid);
  auto ps = h.Psinfo();
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(ps->pr_state, 'Z');
  EXPECT_EQ(ps->pr_zomb, 1);
  // Context operations fail on a zombie.
  EXPECT_FALSE(h.Status().ok());
  EXPECT_FALSE(h.GetRegs().ok());
}

TEST(ProcInfo, CredentialsAndGroups) {
  Sim sim;
  Creds creds = Creds::User(100, 10);
  creds.groups = {10, 20, 30};
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kSpin).ok());
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog"}, creds);
  ASSERT_TRUE(pid.ok());
  auto h = Grab(sim, *pid);
  auto c = h.Cred();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->pr_ruid, 100u);
  EXPECT_EQ(c->pr_euid, 100u);
  EXPECT_EQ(c->pr_rgid, 10u);
  EXPECT_EQ(c->pr_ngroups, 3u);
  EXPECT_EQ(c->pr_groups[2], 30u);
}

TEST(ProcInfo, UsageCountsResources) {
  Sim sim;
  auto t = StartProgram(sim, R"(
loop: ldi r0, SYS_getpid
      sys
      jmp loop
  )");
  auto h = Grab(sim, t.pid);
  for (int i = 0; i < 500; ++i) {
    sim.kernel().Step();
  }
  auto u = h.Usage();
  ASSERT_TRUE(u.ok());
  EXPECT_GT(u->pr_utime, 0u);
  EXPECT_GT(u->pr_sysc, 5u);
  EXPECT_GT(u->pr_rtime, 0u);
}

TEST(ProcInfo, MapShowsFigure2Structure) {
  Sim sim;
  // A shared library mapped at a high address, like Figure 2's 0xC01xxxxx
  // entries.
  auto lib = sim.InstallLibrary("libdemo", R"(
libfn: ldi r9, 5
       ret
       .data
libdat: .word 99
  )");
  ASSERT_TRUE(lib.ok());
  Assembler as = sim.NewAssembler();
  as.ImportLibrary(*lib, "libdemo");
  auto img = as.Assemble(R"(
      .lib "libdemo"
      call libfn
spin: jmp spin
      .data
      .word 1
      .bss
      .space 64
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  ASSERT_TRUE(sim.kernel().InstallAout("/bin/libby", *img).ok());
  auto pid = sim.Start("/bin/libby");
  ASSERT_TRUE(pid.ok());

  auto h = Grab(sim, *pid);
  auto maps = h.GetMap();
  ASSERT_TRUE(maps.ok());

  bool text_ok = false, data_ok = false, stack_ok = false, break_ok = false;
  bool lib_text_ok = false, lib_data_ok = false;
  for (const auto& m : *maps) {
    // Everything is private: "this is generally the case unless processes
    // explicitly arrange to communicate through a shared mapping."
    EXPECT_FALSE(m.pr_mflags & MA_SHARED);
    std::string name = m.pr_mapname;
    if (name == "libby" && (m.pr_mflags & MA_EXEC)) {
      EXPECT_TRUE(m.pr_mflags & MA_READ);
      EXPECT_FALSE(m.pr_mflags & MA_WRITE);
      EXPECT_EQ(m.pr_vaddr, 0x80000000u);
      text_ok = true;
    }
    if (name == "libby" && (m.pr_mflags & MA_WRITE)) {
      data_ok = true;
    }
    if (m.pr_mflags & MA_STACK) {
      EXPECT_TRUE(m.pr_mflags & MA_WRITE);
      stack_ok = true;
    }
    if (m.pr_mflags & MA_BREAK) {
      break_ok = true;
    }
    if (name == "libdemo" && (m.pr_mflags & MA_EXEC)) {
      EXPECT_GE(m.pr_vaddr, 0xC0100000u);
      lib_text_ok = true;
    }
    if (name == "libdemo" && (m.pr_mflags & MA_WRITE)) {
      lib_data_ok = true;
    }
  }
  EXPECT_TRUE(text_ok) << "a.out text: private read/exec";
  EXPECT_TRUE(data_ok) << "a.out data: private read/write";
  EXPECT_TRUE(stack_ok) << "stack mapping flagged MA_STACK";
  EXPECT_TRUE(break_ok) << "break mapping appears despite the disclaimers";
  EXPECT_TRUE(lib_text_ok) << "shared library text mapped high";
  EXPECT_TRUE(lib_data_ok) << "shared library data mapped";

  // And the program actually ran through the library call.
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.Stop().ok());
  auto regs = h.GetRegs();
  ASSERT_TRUE(regs.ok());
  EXPECT_EQ(regs->r[9], 5u) << "the library function executed";
}

TEST(ProcInfo, OpenMappedObjectFindsSymbolTables) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  // "This enables a debugger to find executable file symbol tables ...
  // without having to know pathnames."
  auto fd = h.OpenMappedObject(/*use_exe=*/false, 0x80000000);
  ASSERT_TRUE(fd.ok());
  std::vector<uint8_t> bytes(1 << 16);
  auto n = sim.kernel().Read(sim.controller(), *fd, bytes.data(), bytes.size());
  ASSERT_TRUE(n.ok());
  bytes.resize(static_cast<size_t>(*n));
  auto parsed = Aout::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  auto var = parsed->SymbolValue("var");
  ASSERT_TRUE(var.ok());
  EXPECT_EQ(*var, *t.image.SymbolValue("var"));
}

TEST(ProcInfo, DeprecatedRawStructureOps) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto h = Grab(sim, t.pid);
  // "These operations are provided for completeness but their use is
  // deprecated."
  PrRawProc raw;
  ASSERT_TRUE(sim.kernel().Ioctl(sim.controller(), h.fd(), PIOCGETPR, &raw).ok());
  EXPECT_EQ(raw.p_pid, t.pid);
  PrRawUser u;
  ASSERT_TRUE(sim.kernel().Ioctl(sim.controller(), h.fd(), PIOCGETU, &u).ok());
  EXPECT_STREQ(u.u_comm, "prog");
}

TEST(ProcInfo, MaxSigAndActions) {
  Sim sim;
  auto t = StartProgram(sim, kSigEcho);
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  auto h = Grab(sim, t.pid);
  int maxsig = 0;
  ASSERT_TRUE(sim.kernel().Ioctl(sim.controller(), h.fd(), PIOCMAXSIG, &maxsig).ok());
  EXPECT_EQ(maxsig, 128);
  auto acts = h.GetActions();
  ASSERT_TRUE(acts.ok());
  EXPECT_NE((*acts)[SIGUSR1 - 1].handler, SIG_DFL) << "handler installed";
  EXPECT_EQ((*acts)[SIGUSR2 - 1].handler, SIG_DFL);
}

TEST(ProcInfo, NiceAdjustsPriority) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Nice(5).ok());
  EXPECT_EQ(sim.kernel().FindProc(t.pid)->nice, 25);
}

TEST(ProcInfo, ControlOpsRequireWritableDescriptor) {
  Sim sim;
  auto t = StartProgram(sim, kSpin);
  auto ro = Grab(sim, t.pid, O_RDONLY);
  EXPECT_TRUE(ro.Status().ok()) << "read-only ops work on read-only fds";
  auto r = ro.Stop();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEBADF) << "control ops need write access";
}

// ---------------------------------------------------------------------------
// Proposed extensions: watchpoints, page data, poll.
// ---------------------------------------------------------------------------

constexpr char kWatchTarget[] = R"(
      ldi r4, var
      ldi r5, 1
      stw r5, [r4+8]   ; same page, NOT watched
      stw r5, [r4]     ; watched: FLTWATCH
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
var:  .word 0
      .word 0, 0, 0
)";

TEST(ProcWatch, WatchpointFiresOnlyOnWatchedBytes) {
  Sim sim;
  auto t = StartProgram(sim, kWatchTarget);
  auto h = Grab(sim, t.pid);
  uint32_t var = *t.image.SymbolValue("var");
  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(FLTWATCH);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  ASSERT_TRUE(h.SetWatch(PrWatch{var, 4, WA_WRITE}).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = *h.Status();
  EXPECT_EQ(st.pr_why, PR_FAULTED);
  EXPECT_EQ(st.pr_what, FLTWATCH);
  EXPECT_EQ(st.pr_info.si_addr, var);
  // The unwatched same-page store already executed: "the traced process
  // stops only when a watchpoint really fires."
  uint32_t pad = 0;
  ASSERT_TRUE(h.ReadMem(var + 8, &pad, 4).ok());
  EXPECT_EQ(pad, 1u);
  uint32_t v = 0;
  ASSERT_TRUE(h.ReadMem(var, &v, 4).ok());
  EXPECT_EQ(v, 0u) << "the watched store has not executed yet";
  // Clear the watchpoint and the fault; the program completes.
  ASSERT_TRUE(h.ClearWatch(var).ok());
  ASSERT_TRUE(h.RunClearFault().ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 0);
}

TEST(ProcWatch, ByteGranularity) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r4, buf
      ldi r5, 7
      stb r5, [r4+0]
      stb r5, [r4+1]   ; watched single byte
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
buf:  .word 0
  )");
  auto h = Grab(sim, t.pid);
  uint32_t buf = *t.image.SymbolValue("buf");
  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(FLTWATCH);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  // "down to a single byte"
  ASSERT_TRUE(h.SetWatch(PrWatch{buf + 1, 1, WA_WRITE}).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = *h.Status();
  EXPECT_EQ(st.pr_what, FLTWATCH);
  EXPECT_EQ(st.pr_info.si_addr, buf + 1);
}

TEST(ProcWatch, ReadWatchpoints) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r4, var
      ldw r5, [r4]
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
var:  .word 11
  )");
  auto h = Grab(sim, t.pid);
  uint32_t var = *t.image.SymbolValue("var");
  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(FLTWATCH);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  ASSERT_TRUE(h.SetWatch(PrWatch{var, 4, WA_READ}).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  EXPECT_EQ(h.Status()->pr_what, FLTWATCH);
  auto watches = h.GetWatches();
  ASSERT_TRUE(watches.ok());
  ASSERT_EQ(watches->size(), 1u);
  EXPECT_EQ((*watches)[0].pr_wflags, WA_READ);
}

TEST(ProcPageData, ReferencedAndModifiedBits) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  uint32_t var = *t.image.SymbolValue("var");
  for (int i = 0; i < 300; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.Stop().ok());
  auto pd = h.PageData(/*clear=*/true);
  ASSERT_TRUE(pd.ok());
  bool data_modified = false;
  for (const auto& seg : pd->segs) {
    if (var >= seg.vaddr && var < seg.vaddr + seg.pg.size() * kPageSize) {
      uint32_t idx = (var - seg.vaddr) / kPageSize;
      data_modified = (seg.pg[idx] & PG_MODIFIED) != 0;
    }
  }
  EXPECT_TRUE(data_modified) << "the counter's data page is modified";
  // After the clearing sample, a fresh sample shows no activity (stopped).
  auto pd2 = h.PageData(false);
  ASSERT_TRUE(pd2.ok());
  for (const auto& seg : pd2->segs) {
    for (uint8_t pg : seg.pg) {
      EXPECT_EQ(pg, 0) << "sampling cleared the referenced/modified bits";
    }
  }
}

TEST(ProcPoll, PollReportsStopAsPri) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  PollFd pf;
  pf.fd = h.fd();
  pf.events = POLLPRI;
  auto n = sim.kernel().PollFds(sim.controller(), std::span<PollFd>(&pf, 1), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0) << "not stopped: not ready";
  ASSERT_TRUE(h.Stop().ok());
  n = sim.kernel().PollFds(sim.controller(), std::span<PollFd>(&pf, 1), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_TRUE(pf.revents & POLLPRI);
}

TEST(ProcPoll, PollWaitsForAnyOfSeveralProcesses) {
  Sim sim;
  // "to wait for any one of a set of controlled processes to stop"
  auto ta = StartProgram(sim, kCounter, "/bin/a");
  auto tb = StartProgram(sim, R"(
      ldi r0, SYS_sleep
      ldi r1, 500
      sys
      bpt                 ; traced fault: stops
spin: jmp spin
  )",
                         "/bin/b");
  auto ha = Grab(sim, ta.pid);
  auto hb = Grab(sim, tb.pid);
  FltSet faults;
  faults.Add(FLTBPT);
  ASSERT_TRUE(hb.Stop().ok());
  ASSERT_TRUE(hb.SetFltTrace(faults).ok());
  ASSERT_TRUE(hb.Run().ok());

  PollFd pfs[2];
  pfs[0].fd = ha.fd();
  pfs[0].events = POLLPRI;
  pfs[1].fd = hb.fd();
  pfs[1].events = POLLPRI;
  auto n = sim.kernel().PollFds(sim.controller(), pfs, 1'000'000);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_FALSE(pfs[0].revents & POLLPRI);
  EXPECT_TRUE(pfs[1].revents & POLLPRI) << "the breakpointed process stopped";
}

TEST(ProcPoll, UnrequestedPriIsNotReported) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  ASSERT_TRUE(h.Stop().ok());
  // Regression: a stopped target used to leak POLLPRI into revents even
  // when the caller never asked for it. Like POLLIN/POLLOUT, POLLPRI must
  // be gated on events; only POLLERR/POLLHUP/POLLNVAL pass unrequested.
  PollFd pf;
  pf.fd = h.fd();
  pf.events = 0;
  auto n = sim.kernel().PollFds(sim.controller(), std::span<PollFd>(&pf, 1), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0) << "POLLPRI was not requested";
  EXPECT_EQ(pf.revents, 0);
  pf.events = POLLIN;
  n = sim.kernel().PollFds(sim.controller(), std::span<PollFd>(&pf, 1), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0) << "POLLIN does not imply POLLPRI";
  EXPECT_EQ(pf.revents, 0);
}

TEST(ProcPoll, HupOnZombieIsReportedUnrequested) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )").ok());
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(pid.ok());
  auto h = Grab(sim, *pid);
  ASSERT_TRUE(sim.kernel().RunToExit(*pid).ok());
  // POLLHUP belongs to the always-reported class: events = 0 must not
  // suppress it.
  PollFd pf;
  pf.fd = h.fd();
  pf.events = 0;
  auto n = sim.kernel().PollFds(sim.controller(), std::span<PollFd>(&pf, 1), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_EQ(pf.revents, POLLHUP);
}

TEST(ProcPoll, NvalAfterSetIdExecIsReportedUnrequested) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/suid", kSpin, 04755, 0, 0).ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/bin/suid"
  )").ok());
  auto pid = sim.Start("/bin/prog", {}, Creds::User(100, 10));
  ASSERT_TRUE(pid.ok());
  Proc* owner = sim.NewController(Creds::User(100, 10), "owner");
  auto h = ProcHandle::Grab(sim.kernel(), owner, *pid);
  ASSERT_TRUE(h.ok());
  sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(*pid);
    return p == nullptr || (p->MainLwp() != nullptr &&
                            p->MainLwp()->state == LwpState::kStopped);
  });
  // The set-id exec invalidated the descriptor: poll reports POLLNVAL even
  // with no events requested, so a multiplexing controller notices.
  PollFd pf;
  pf.fd = h->fd();
  pf.events = 0;
  auto n = sim.kernel().PollFds(owner, std::span<PollFd>(&pf, 1), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_EQ(pf.revents, POLLNVAL);
  h->Close();
}

TEST(ProcPoll, BlockedPollWakesOnStopDespiteSpuriousWakeups) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_sleep
      ldi r1, 500
      sys
      bpt
spin: jmp spin
  )");
  auto h = Grab(sim, t.pid);
  FltSet faults;
  faults.Add(FLTBPT);
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  ASSERT_TRUE(h.Run().ok());
  // Spurious wakeups on the poll channel force the sleeping poller through
  // extra wake/recheck/re-block cycles; the result must be unchanged.
  FaultPlan plan;
  plan.Arm(FaultSite::kSpuriousWakeup, FaultRule{17, 1, 4, 64});
  sim.kernel().SetFaultPlan(plan);
  PollFd pf;
  pf.fd = h.fd();
  pf.events = POLLPRI;
  auto n = sim.kernel().PollFds(sim.controller(), std::span<PollFd>(&pf, 1), 1'000'000);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_TRUE(pf.revents & POLLPRI) << "the breakpoint stop wakes the poller";
  EXPECT_GT(sim.kernel().fault_injector()->fires(FaultSite::kSpuriousWakeup), 0u)
      << "the sweep actually exercised spurious wakeups";
}

TEST(ProcPoll, PollReportsExitAsHup) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )").ok());
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(pid.ok());
  auto h = Grab(sim, *pid);
  ASSERT_TRUE(sim.kernel().RunToExit(*pid).ok());
  PollFd pf;
  pf.fd = h.fd();
  pf.events = POLLPRI;
  auto n = sim.kernel().PollFds(sim.controller(), std::span<PollFd>(&pf, 1), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_TRUE(pf.revents & POLLHUP);
}

// ---------------------------------------------------------------------------
// Registers.
// ---------------------------------------------------------------------------

TEST(ProcRegs, GetAndSetRegisters) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r7, 0x1111
spin: jmp spin
  )");
  auto h = Grab(sim, t.pid);
  for (int i = 0; i < 50; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.Stop().ok());
  auto regs = h.GetRegs();
  ASSERT_TRUE(regs.ok());
  EXPECT_EQ(regs->r[7], 0x1111u);
  regs->r[7] = 0x2222;
  ASSERT_TRUE(h.SetRegs(*regs).ok());
  auto again = h.GetRegs();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->r[7], 0x2222u);
}

TEST(ProcRegs, FloatingPointRegisters) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      fldi f2, 2.75
spin: jmp spin
  )");
  auto h = Grab(sim, t.pid);
  for (int i = 0; i < 50; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.Stop().ok());
  auto fp = h.GetFpRegs();
  ASSERT_TRUE(fp.ok());
  EXPECT_DOUBLE_EQ(fp->f[2], 2.75);
  fp->f[3] = -1.5;
  ASSERT_TRUE(h.SetFpRegs(*fp).ok());
  EXPECT_DOUBLE_EQ(h.GetFpRegs()->f[3], -1.5);
}

// ---------------------------------------------------------------------------
// /proc + ptrace interactions (Figure 4).
// ---------------------------------------------------------------------------

TEST(ProcPtrace, ProcStopsFirstThenPtraceHasControl) {
  Sim sim;
  // parent forks; child TRACEMEs, announces itself, and spins. The parent
  // waits for the ptrace stop and continues the child once.
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      mov r8, r0
      ldi r0, SYS_wait        ; returns when the child ptrace-stops
      sys
      ldi r0, SYS_ptrace      ; PT_CONT(child, addr=1, sig=0)
      ldi r1, 7
      mov r2, r8
      ldi r3, 1
      ldi r4, 0
      sys
      ldi r0, SYS_wait        ; child continues; blocks until it dies
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r0, SYS_ptrace      ; PT_TRACEME
      ldi r1, 0
      sys
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, mark
      ldi r3, 1
      sys
spin: jmp spin
      .data
mark: .asciz "A"
  )");
  (void)t;
  // Wait until the child announces itself.
  ASSERT_TRUE(sim.kernel().RunUntil([&]() { return !sim.ConsoleOutput().empty(); }));
  // Find the child: the only process whose pt_traced flag is set.
  Pid child_pid = -1;
  for (Pid pid : sim.kernel().AllPids()) {
    Proc* p = sim.kernel().FindProc(pid);
    if (p != nullptr && p->pt_traced) {
      child_pid = pid;
    }
  }
  ASSERT_GT(child_pid, 0);
  auto h = Grab(sim, child_pid);
  SigSet sigs;
  sigs.Add(SIGUSR1);
  ASSERT_TRUE(h.SetSigTrace(sigs).ok());
  ASSERT_TRUE(h.Kill(SIGUSR1).ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = *h.Status();
  EXPECT_EQ(st.pr_why, PR_SIGNALLED);
  EXPECT_TRUE(st.pr_flags & PR_ISTOP) << "/proc sees its signalled stop first";
  EXPECT_TRUE(st.pr_flags & PR_PTRACE);

  // "The process must be set running through /proc before it can be
  // manipulated by ptrace. Even though the process is logically set running,
  // it remains stopped ... and cannot be set running again through /proc;
  // ptrace has control."
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(child_pid);
    return p != nullptr && p->pt_owned_stop;
  }));
  auto r = h.Run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEBUSY);

  // Direct a stop through /proc; when ptrace sets it running (the parent's
  // PT_CONT), it stops again on the requested stop before exiting issig().
  ASSERT_TRUE(h.Stop().ok());
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    Proc* p = sim.kernel().FindProc(child_pid);
    if (p == nullptr) {
      return true;
    }
    Lwp* l = p->MainLwp();
    return l != nullptr && l->state == LwpState::kStopped && l->stop_why == PR_REQUESTED;
  }));
  auto st2 = *h.Status();
  EXPECT_EQ(st2.pr_why, PR_REQUESTED);
  // Clean up: release and kill the child.
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.Kill(SIGKILL).ok());
  auto ec = sim.kernel().RunToExit(t.pid);
  EXPECT_TRUE(ec.ok());
}

// ---------------------------------------------------------------------------
// LWP ids through the flat interface.
// ---------------------------------------------------------------------------

TEST(ProcLwp, LwpIdsListsThreads) {
  Sim sim;
  auto t = StartProgram(sim, R"(
      ldi r0, SYS_lwp_create
      ldi r1, thread
      ldi r2, tstack+1024
      sys
spin: jmp spin
thread:
t2:   jmp t2
      .bss
tstack: .space 1024
  )");
  auto h = Grab(sim, t.pid);
  for (int i = 0; i < 50; ++i) {
    sim.kernel().Step();
  }
  auto ids = h.LwpIds();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->n, 2u);
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_nlwp, 2u);
}

// ---------------------------------------------------------------------------
// Execution-path statistics (PIOCVMSTATS).
// ---------------------------------------------------------------------------

TEST(ProcVmStats, CountersAdvanceWithExecution) {
  Sim sim;
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  for (int i = 0; i < 500; ++i) {
    sim.kernel().Step();
  }
  auto s1 = h.VmStats();
  ASSERT_TRUE(s1.ok());
  EXPECT_GT(s1->pr_instructions, 0u);
  EXPECT_GT(s1->pr_tlb_hits, 0u) << "a tight loop should run out of the TLB";
  EXPECT_GT(s1->pr_slow_lookups, 0u) << "first touches take the slow path";

  for (int i = 0; i < 500; ++i) {
    sim.kernel().Step();
  }
  auto s2 = h.VmStats();
  ASSERT_TRUE(s2.ok());
  EXPECT_GT(s2->pr_instructions, s1->pr_instructions);
  EXPECT_GT(s2->pr_tlb_hits, s1->pr_tlb_hits);
}

}  // namespace
}  // namespace svr4
