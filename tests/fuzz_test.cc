// Model-based randomized tests: the VM checked against a shadow reference
// model, a.out parsing against corrupted inputs, and process-group signal
// semantics under random interleavings.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>

#include "svr4proc/isa/aout.h"
#include "svr4proc/isa/assembler.h"
#include "svr4proc/tools/sim.h"
#include "svr4proc/vm/vm.h"

namespace svr4 {
namespace {

// A byte-level reference model of one address space: per-byte presence,
// permissions, and content.
class ShadowAs {
 public:
  struct Byte {
    bool mapped = false;
    bool readable = false;
    bool writable = false;
    uint8_t value = 0;
  };

  void Map(uint32_t start, uint32_t len, bool r, bool w) {
    for (uint32_t a = start; a < start + len; ++a) {
      bytes_[a] = Byte{true, r, w, 0};
    }
  }
  void Unmap(uint32_t start, uint32_t len) {
    for (uint32_t a = start; a < start + len; ++a) {
      bytes_.erase(a);
    }
  }
  void Protect(uint32_t start, uint32_t len, bool r, bool w) {
    for (uint32_t a = start; a < start + len; ++a) {
      auto it = bytes_.find(a);
      if (it != bytes_.end()) {
        it->second.readable = r;
        it->second.writable = w;
      }
    }
  }
  // Returns false if the access should fault.
  bool Read(uint32_t addr, uint32_t len, std::vector<uint8_t>* out) {
    out->resize(len);
    for (uint32_t i = 0; i < len; ++i) {
      auto it = bytes_.find(addr + i);
      if (it == bytes_.end() || !it->second.readable) {
        return false;
      }
      (*out)[i] = it->second.value;
    }
    return true;
  }
  bool Write(uint32_t addr, std::span<const uint8_t> data) {
    for (uint32_t i = 0; i < data.size(); ++i) {
      auto it = bytes_.find(addr + i);
      if (it == bytes_.end() || !it->second.writable) {
        return false;
      }
    }
    for (uint32_t i = 0; i < data.size(); ++i) {
      bytes_[addr + i].value = data[i];
    }
    return true;
  }

 private:
  std::map<uint32_t, Byte> bytes_;
};

TEST(VmFuzz, RandomOperationsMatchShadowModel) {
  std::mt19937 rng(20260704);
  constexpr uint32_t kBase = 0x100000;
  constexpr uint32_t kPages = 64;  // a 256K arena

  for (int trial = 0; trial < 8; ++trial) {
    AddressSpace as;
    ShadowAs shadow;
    for (int op = 0; op < 300; ++op) {
      uint32_t page = rng() % kPages;
      uint32_t npages = 1 + rng() % 4;
      uint32_t start = kBase + page * kPageSize;
      uint32_t len = npages * kPageSize;
      switch (rng() % 5) {
        case 0: {  // map anon rw or ro
          bool writable = rng() % 2;
          uint32_t prot = MA_READ | (writable ? MA_WRITE : 0u);
          ASSERT_TRUE(as.Map(start, len, prot, std::make_shared<AnonObject>(), 0,
                             "fuzz")
                          .ok());
          shadow.Map(start, len, true, writable);
          break;
        }
        case 1: {  // unmap
          ASSERT_TRUE(as.Unmap(start, len).ok());
          shadow.Unmap(start, len);
          break;
        }
        case 2: {  // protect (only when fully mapped; else both must refuse)
          uint32_t prot = (rng() % 2) ? (MA_READ | MA_WRITE) : MA_READ;
          bool ok = as.Protect(start, len, prot).ok();
          if (ok) {
            shadow.Protect(start, len, true, prot & MA_WRITE);
          }
          break;
        }
        case 3: {  // write a small run at a random byte offset
          uint32_t addr = kBase + (rng() % (kPages * kPageSize));
          uint32_t n = 1 + rng() % 64;
          std::vector<uint8_t> data(n);
          for (auto& b : data) {
            b = static_cast<uint8_t>(rng());
          }
          bool model_ok = shadow.Write(addr, data);
          auto real = as.MemWrite(addr, data.data(), n);
          EXPECT_EQ(!real.has_value(), model_ok)
              << "write fault divergence at 0x" << std::hex << addr;
          break;
        }
        case 4: {  // read back and compare contents
          uint32_t addr = kBase + (rng() % (kPages * kPageSize));
          uint32_t n = 1 + rng() % 64;
          std::vector<uint8_t> want;
          bool model_ok = shadow.Read(addr, n, &want);
          std::vector<uint8_t> got(n);
          auto real = as.MemRead(addr, got.data(), n, Access::kRead);
          ASSERT_EQ(!real.has_value(), model_ok)
              << "read fault divergence at 0x" << std::hex << addr;
          if (model_ok) {
            EXPECT_EQ(got, want) << "content divergence at 0x" << std::hex << addr;
          }
          break;
        }
      }
    }
  }
}

TEST(VmFuzz, PrIoNeverFaultsAndRespectsShadowContents) {
  std::mt19937 rng(777);
  AddressSpace as;
  ASSERT_TRUE(as.Map(0x200000, 8 * kPageSize, MA_READ, std::make_shared<AnonObject>(),
                     0, "ro")
                  .ok());
  // PrWrite ignores protections (forced access) — fill read-only memory.
  for (int i = 0; i < 100; ++i) {
    uint32_t addr = 0x200000 + (rng() % (8 * kPageSize - 64));
    std::vector<uint8_t> data(1 + rng() % 64);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng());
    }
    auto w = as.PrWrite(addr, data);
    ASSERT_TRUE(w.ok());
    ASSERT_EQ(*w, static_cast<int64_t>(data.size()));
    std::vector<uint8_t> back(data.size());
    auto r = as.PrRead(addr, back);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(back, data);
  }
}

TEST(AoutFuzz, TruncationsAndBitflipsNeverCrashParse) {
  Assembler as;
  auto img = as.Assemble(R"(
main: ldi r1, msg
      sys
      .data
msg:  .asciz "payload for fuzzing with symbols"
other: .word 1, 2, 3
  )");
  ASSERT_TRUE(img.ok());
  img->symbols.push_back({"extra", 42, SymType::kAbs});
  auto bytes = img->Serialize();

  // Every truncation length parses cleanly or fails cleanly.
  for (size_t n = 0; n <= bytes.size(); n += 97) {
    auto r = Aout::Parse(std::span<const uint8_t>(bytes.data(), n));
    (void)r;  // must simply not crash / not over-read
  }
  // Random bit flips.
  std::mt19937 rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    auto copy = bytes;
    int flips = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < flips; ++i) {
      copy[rng() % copy.size()] ^= static_cast<uint8_t>(1u << (rng() % 8));
    }
    auto r = Aout::Parse(copy);
    if (r.ok()) {
      // If it parsed, the contents must be internally consistent enough to
      // use without crashing.
      (void)r->SymbolValue("main");
      (void)r->NearestSymbol(0x80000005);
      (void)r->VirtualSize();
    }
  }
}

TEST(ProcessGroups, KillToGroupReachesAllMembers) {
  Sim sim;
  // A leader that setpgrp()s and forks two members, then everyone pauses.
  ASSERT_TRUE(sim.InstallProgram("/bin/grp", R"(
      ldi r0, SYS_setpgrp
      sys
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz member
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz member
wait1:
      ldi r0, SYS_pause
      sys
      jmp wait1
member:
      ldi r0, SYS_pause
      sys
      jmp member
  )").ok());
  auto pid = sim.Start("/bin/grp");
  ASSERT_TRUE(pid.ok());
  // Let the group assemble: 3 processes sleeping in pause.
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    int asleep = 0;
    for (Pid p : sim.kernel().AllPids()) {
      Proc* q = sim.kernel().FindProc(p);
      if (q != nullptr && q->pgrp == *pid && q->state == Proc::State::kActive &&
          q->MainLwp() != nullptr && q->MainLwp()->state == LwpState::kSleeping) {
        ++asleep;
      }
    }
    return asleep == 3;
  }));
  // kill(-pgrp, SIGTERM) terminates the whole group.
  ASSERT_TRUE(sim.kernel().Kill(sim.controller(), -*pid, SIGTERM).ok());
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    for (Pid p : sim.kernel().AllPids()) {
      Proc* q = sim.kernel().FindProc(p);
      if (q != nullptr && q->pgrp == *pid && q->state == Proc::State::kActive) {
        return false;
      }
    }
    return true;
  }));
  SUCCEED();
}

TEST(ProcessGroups, JobControlStopsWholeGroup) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/grp", R"(
      ldi r0, SYS_setpgrp
      sys
      ldi r0, SYS_fork
      sys
spin: jmp spin
  )").ok());
  auto pid = sim.Start("/bin/grp");
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    int members = 0;
    for (Pid p : sim.kernel().AllPids()) {
      Proc* q = sim.kernel().FindProc(p);
      if (q != nullptr && q->pgrp == *pid) {
        ++members;
      }
    }
    return members == 2;
  }));
  ASSERT_TRUE(sim.kernel().Kill(sim.controller(), -*pid, SIGSTOP).ok());
  ASSERT_TRUE(sim.kernel().RunUntil([&]() {
    for (Pid p : sim.kernel().AllPids()) {
      Proc* q = sim.kernel().FindProc(p);
      if (q != nullptr && q->pgrp == *pid && q->MainLwp() != nullptr &&
          q->MainLwp()->state != LwpState::kStopped) {
        return false;
      }
    }
    return true;
  }));
  // And SIGCONT to the group resumes everyone.
  ASSERT_TRUE(sim.kernel().Kill(sim.controller(), -*pid, SIGCONT).ok());
  for (Pid p : sim.kernel().AllPids()) {
    Proc* q = sim.kernel().FindProc(p);
    if (q != nullptr && q->pgrp == *pid) {
      EXPECT_EQ(q->MainLwp()->state, LwpState::kRunning);
    }
  }
}

}  // namespace
}  // namespace svr4
