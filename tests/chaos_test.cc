// The seeded chaos harness: deterministic fault injection, the chaos
// scheduler, the kernel invariant checker, and sweeps of the example
// workloads (truss, debugger, fork-following) across many seeds. Every
// sweep asserts that Kernel::CheckInvariants() stays clean and that the
// simulation tears down without leaks (the sanitizer build enforces the
// latter).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "svr4proc/kernel/faults.h"
#include "svr4proc/tools/debugger.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"
#include "svr4proc/tools/truss.h"

namespace svr4 {
namespace {

// A branch-free burst of syscalls: every path, including injected-error
// paths, leads to exit.
constexpr char kSysBurst[] = R"(
      ldi r0, SYS_getpid
      sys
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 6
      sys
      ldi r0, SYS_open
      ldi r1, nopath
      ldi r2, O_RDONLY
      ldi r3, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "chaos\n"
nopath: .asciz "/no/such"
)";

// Parent forks, both sides write one byte, parent reaps the child.
constexpr char kForkWriter[] = R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, pmsg
      ldi r3, 1
      sys
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, cmsg
      ldi r3, 1
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
pmsg: .asciz "P"
cmsg: .asciz "C"
)";

// A bounded loop with a named label for breakpoints, then a clean exit.
constexpr char kBoundedLoop[] = R"(
      ldi r8, 0
loop: addi r8, 1
      cmpi r8, 40
      jlt loop
      ldi r0, SYS_exit
      ldi r1, 0
      sys
)";

// A fault plan arming every site at a low, seed-controlled rate. max_hits
// keeps each site bounded so no run can livelock on repeated injection.
FaultPlan LowRatePlan(uint64_t seed) {
  FaultPlan plan;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    plan.Arm(static_cast<FaultSite>(i),
             FaultRule{seed, /*num=*/1, /*den=*/16, /*max_hits=*/8});
  }
  return plan;
}

void ExpectInvariantsClean(Kernel& k, uint64_t seed) {
  auto violations = k.CheckInvariants();
  for (const auto& v : violations) {
    ADD_FAILURE() << "seed " << seed << ": invariant violated: " << v;
  }
}

// ---------------------------------------------------------------------------
// FaultInjector unit behavior.
// ---------------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameSequence) {
  FaultPlan plan;
  plan.Arm(FaultSite::kCopyin, FaultRule{42, 1, 4, 1000});
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.Fire(FaultSite::kCopyin), b.Fire(FaultSite::kCopyin))
        << "diverged at evaluation " << i;
  }
  EXPECT_EQ(a.fires(FaultSite::kCopyin), b.fires(FaultSite::kCopyin));
  EXPECT_GT(a.fires(FaultSite::kCopyin), 0u) << "1/4 over 500 draws must hit";
  EXPECT_LT(a.fires(FaultSite::kCopyin), 500u);
}

TEST(FaultInjector, SitesDrawIndependentStreams) {
  FaultPlan plan;
  plan.Arm(FaultSite::kCopyin, FaultRule{7, 1, 2, 1000});
  plan.Arm(FaultSite::kCopyout, FaultRule{7, 1, 2, 1000});
  FaultInjector inj(plan);
  bool diverged = false;
  for (int i = 0; i < 64; ++i) {
    if (inj.Fire(FaultSite::kCopyin) != inj.Fire(FaultSite::kCopyout)) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged) << "per-site streams must not be in lockstep";
}

TEST(FaultInjector, DisabledSiteNeverFires) {
  FaultPlan plan;
  plan.Arm(FaultSite::kVmMap, FaultRule{1, 1, 1, 100});
  FaultInjector inj(plan);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.Fire(FaultSite::kCopyin)) << "unarmed site fired";
  }
  EXPECT_EQ(inj.evals(FaultSite::kCopyin), 100u) << "evaluations are counted";
  EXPECT_EQ(inj.fires(FaultSite::kCopyin), 0u);
}

TEST(FaultInjector, MaxHitsCapsFiring) {
  FaultPlan plan;
  plan.Arm(FaultSite::kVnodeRead, FaultRule{9, 1, 1, 3});
  FaultInjector inj(plan);
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (inj.Fire(FaultSite::kVnodeRead)) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 3) << "max_hits bounds total injections";
  EXPECT_EQ(inj.fires(FaultSite::kVnodeRead), 3u);
}

TEST(FaultInjector, DescribeNamesArmedSites) {
  FaultPlan plan;
  plan.Arm(FaultSite::kTlbFlush, FaultRule{5, 1, 8, 16});
  FaultInjector inj(plan);
  std::string d = inj.Describe();
  EXPECT_NE(d.find("TLB_FLUSH"), std::string::npos) << d;
  EXPECT_NE(d.find("prob=1/8"), std::string::npos) << d;
  EXPECT_EQ(d.find("COPYIN"), std::string::npos) << "unarmed sites are omitted";
}

// ---------------------------------------------------------------------------
// Targeted injection through the kernel seams.
// ---------------------------------------------------------------------------

TEST(FaultInjection, CopyinFailsSyscallWithEfault) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 5
      sys
      jcs err
      ldi r0, SYS_exit
      ldi r1, 0
      sys
err:  mov r1, r0
      ldi r0, SYS_exit
      sys
      .data
msg:  .asciz "hello"
  )").ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  FaultPlan plan;
  plan.Arm(FaultSite::kCopyin, FaultRule{1, 1, 1, 1});
  sim.kernel().SetFaultPlan(plan);
  auto st = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(WIfExited(*st));
  EXPECT_EQ(WExitCode(*st), static_cast<int>(Errno::kEFAULT))
      << "the injected copyin failure surfaces as EFAULT";
  EXPECT_EQ(sim.kernel().fault_injector()->fires(FaultSite::kCopyin), 1u);
  ExpectInvariantsClean(sim.kernel(), 1);
}

TEST(FaultInjection, VnodeReadFailsWithEioUntilCleared) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kSysBurst).ok());
  FaultPlan plan;
  plan.Arm(FaultSite::kVnodeRead, FaultRule{3, 1, 1, 2});
  sim.kernel().SetFaultPlan(plan);
  auto fd = sim.kernel().Open(sim.controller(), "/bin/prog", O_RDONLY);
  ASSERT_TRUE(fd.ok());
  char buf[16];
  auto r = sim.kernel().Read(sim.controller(), *fd, buf, sizeof(buf));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Errno::kEIO);
  r = sim.kernel().Read(sim.controller(), *fd, buf, sizeof(buf));
  ASSERT_FALSE(r.ok()) << "max_hits=2: the second read is also poisoned";
  r = sim.kernel().Read(sim.controller(), *fd, buf, sizeof(buf));
  EXPECT_TRUE(r.ok()) << "after max_hits the site goes quiet";
  sim.kernel().ClearFaultPlan();
  EXPECT_EQ(sim.kernel().fault_injector(), nullptr);
  ASSERT_TRUE(sim.kernel().Close(sim.controller(), *fd).ok());
  ExpectInvariantsClean(sim.kernel(), 3);
}

TEST(FaultInjection, DelayedStopStillLands) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", "spin: jmp spin\n").ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  FaultPlan plan;
  plan.Arm(FaultSite::kDelayedStop, FaultRule{11, 1, 1, 2});
  sim.kernel().SetFaultPlan(plan);
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  ASSERT_TRUE(h.ok());
  // The first two deliveries are deferred by injection; the directive stays
  // pending and the stop must still land.
  ASSERT_TRUE(h->Stop().ok());
  auto st = h->Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(sim.kernel().fault_injector()->fires(FaultSite::kDelayedStop), 2u);
  ExpectInvariantsClean(sim.kernel(), 11);
}

TEST(FaultInjection, SpuriousWakeupDoesNotBreakPoll) {
  Sim sim;
  auto img = sim.InstallProgram("/bin/prog", "spin: jmp spin\n");
  ASSERT_TRUE(img.ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  FaultPlan plan;
  plan.Arm(FaultSite::kSpuriousWakeup, FaultRule{13, 1, 2, 64});
  sim.kernel().SetFaultPlan(plan);
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  ASSERT_TRUE(h.ok());
  PollFd pf;
  pf.fd = h->fd();
  pf.events = POLLPRI;
  // The target never stops: every spurious wakeup must re-block until the
  // timeout expires with nothing ready.
  auto n = sim.kernel().PollFds(sim.controller(), std::span<PollFd>(&pf, 1), 500);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);
  EXPECT_EQ(pf.revents, 0);
  ExpectInvariantsClean(sim.kernel(), 13);
}

// ---------------------------------------------------------------------------
// The invariant checker itself.
// ---------------------------------------------------------------------------

TEST(Invariants, CleanOnFreshAndActiveKernel) {
  Sim sim;
  ExpectInvariantsClean(sim.kernel(), 0);
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kSysBurst).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  ASSERT_TRUE(h.ok());
  ExpectInvariantsClean(sim.kernel(), 0);
  ASSERT_TRUE(h->Stop().ok());
  ExpectInvariantsClean(sim.kernel(), 0);
  ASSERT_TRUE(h->Run().ok());
  h->Close();
  ASSERT_TRUE(sim.kernel().RunToExit(*pid).ok());
  ExpectInvariantsClean(sim.kernel(), 0);
}

TEST(Invariants, DetectsOpenCountImbalance) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", "spin: jmp spin\n").ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  ASSERT_TRUE(h.ok());
  ExpectInvariantsClean(sim.kernel(), 0);
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  ++p->trace.total_opens;  // simulate a leaked reference
  EXPECT_FALSE(sim.kernel().CheckInvariants().empty())
      << "an unbalanced open ledger must be reported";
  --p->trace.total_opens;
  ExpectInvariantsClean(sim.kernel(), 0);
}

TEST(Invariants, DetectsExclWithoutWriter) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", "spin: jmp spin\n").ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  p->trace.excl = true;  // exclusivity with no writable descriptor
  EXPECT_FALSE(sim.kernel().CheckInvariants().empty());
  p->trace.excl = false;
  ExpectInvariantsClean(sim.kernel(), 0);
}

// ---------------------------------------------------------------------------
// /proc2/kernel/faults introspection.
// ---------------------------------------------------------------------------

std::string ReadFaultsFile(Sim& sim) {
  auto fd = sim.kernel().Open(sim.controller(), "/proc2/kernel/faults", O_RDONLY);
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) {
    return {};
  }
  char buf[1024];
  auto n = sim.kernel().Read(sim.controller(), *fd, buf, sizeof(buf));
  EXPECT_TRUE(n.ok());
  EXPECT_TRUE(sim.kernel().Close(sim.controller(), *fd).ok());
  return n.ok() ? std::string(buf, static_cast<size_t>(*n)) : std::string();
}

TEST(FaultsFile, ReportsOffThenArmedPlan) {
  Sim sim;
  EXPECT_EQ(ReadFaultsFile(sim), "faults: off\n");
  FaultPlan plan;
  plan.Arm(FaultSite::kCopyout, FaultRule{21, 1, 32, 8});
  sim.kernel().SetFaultPlan(plan);
  std::string d = ReadFaultsFile(sim);
  EXPECT_NE(d.find("armed"), std::string::npos) << d;
  EXPECT_NE(d.find("COPYOUT"), std::string::npos) << d;
  EXPECT_NE(d.find("seed=21"), std::string::npos) << d;
  // Read-only: a writable open is refused.
  auto wfd = sim.kernel().Open(sim.controller(), "/proc2/kernel/faults", O_RDWR);
  ASSERT_FALSE(wfd.ok());
  EXPECT_EQ(wfd.error(), Errno::kEACCES);
}

TEST(FaultsFile, ReadableWithZombiePresent) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", R"(
      ldi r0, SYS_exit
      ldi r1, 3
      sys
  )").ok());
  // Child of the native controller: stays a zombie until waited for.
  auto pid = sim.kernel().Spawn("/bin/prog", {"prog"}, Creds::Root(), sim.controller());
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(sim.kernel().RunToExit(*pid).ok());
  FaultPlan plan;
  plan.Arm(FaultSite::kVfsResolve, FaultRule{33, 0, 1, 8});  // armed site, rate 0
  sim.kernel().SetFaultPlan(plan);
  std::string d = ReadFaultsFile(sim);
  EXPECT_NE(d.find("armed"), std::string::npos) << d;
  ExpectInvariantsClean(sim.kernel(), 33);
}

// ---------------------------------------------------------------------------
// Chaos scheduler.
// ---------------------------------------------------------------------------

TEST(ChaosScheduler, SameSeedIsDeterministic) {
  std::string console[2];
  uint64_t ticks[2];
  for (int run = 0; run < 2; ++run) {
    Sim sim;
    ASSERT_TRUE(sim.InstallProgram("/bin/prog", kForkWriter).ok());
    auto pid = sim.Start("/bin/prog");
    ASSERT_TRUE(pid.ok());
    sim.kernel().SetChaosScheduler(99);
    auto st = sim.kernel().RunToExit(*pid);
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(WExitCode(*st), 0);
    console[run] = sim.ConsoleOutput();
    ticks[run] = sim.kernel().Ticks();
    ExpectInvariantsClean(sim.kernel(), 99);
  }
  EXPECT_EQ(console[0], console[1]) << "same seed, same interleaving";
  EXPECT_EQ(ticks[0], ticks[1]);
}

TEST(ChaosScheduler, EnableAndClear) {
  Sim sim;
  EXPECT_FALSE(sim.kernel().ChaosSchedulerEnabled());
  sim.kernel().SetChaosScheduler(1);
  EXPECT_TRUE(sim.kernel().ChaosSchedulerEnabled());
  sim.kernel().ClearChaosScheduler();
  EXPECT_FALSE(sim.kernel().ChaosSchedulerEnabled());
}

// ---------------------------------------------------------------------------
// Seed sweeps over the example workloads. Together these cover 110 seeds;
// every seed runs with the chaos scheduler on and all sites armed at a low
// rate, and must leave the kernel invariant-clean with a clean teardown.
// ---------------------------------------------------------------------------

TEST(ChaosSweep, TrussWorkload) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Sim sim;
    ASSERT_TRUE(sim.InstallProgram("/bin/prog", kSysBurst).ok());
    sim.kernel().SetFaultPlan(LowRatePlan(seed));
    sim.kernel().SetChaosScheduler(seed);
    Truss truss(sim.kernel(), sim.controller());
    // Injected errors may abort the trace early; that is chaos working as
    // intended. Only the kernel's internal consistency is asserted.
    (void)truss.TraceCommand("/bin/prog", {"prog"});
    ExpectInvariantsClean(sim.kernel(), seed);
  }
}

TEST(ChaosSweep, DebuggerWorkload) {
  for (uint64_t seed = 101; seed <= 135; ++seed) {
    Sim sim;
    ASSERT_TRUE(sim.InstallProgram("/bin/prog", kBoundedLoop).ok());
    auto pid = sim.Start("/bin/prog");
    ASSERT_TRUE(pid.ok());
    sim.kernel().SetFaultPlan(LowRatePlan(seed));
    sim.kernel().SetChaosScheduler(seed);
    Debugger dbg(sim.kernel(), sim.controller());
    if (dbg.Attach(*pid).ok()) {
      if (dbg.SetBreakpoint("loop").ok()) {
        for (int i = 0; i < 3; ++i) {
          auto stop = dbg.Continue();
          if (!stop.ok() || stop->kind == Debugger::StopInfo::kExited) {
            break;
          }
        }
      }
      (void)dbg.Detach();
    }
    // Drain whatever is left; a failed detach may leave the target wedged,
    // so the drive is bounded rather than run-to-exit.
    sim.kernel().RunUntil(
        [&]() { return sim.kernel().FindProc(*pid) == nullptr; }, 100'000);
    ExpectInvariantsClean(sim.kernel(), seed);
  }
}

TEST(ChaosSweep, ForkFollowWorkload) {
  for (uint64_t seed = 201; seed <= 235; ++seed) {
    Sim sim;
    ASSERT_TRUE(sim.InstallProgram("/bin/prog", kForkWriter).ok());
    sim.kernel().SetFaultPlan(LowRatePlan(seed));
    sim.kernel().SetChaosScheduler(seed);
    Truss truss(sim.kernel(), sim.controller(), TrussOptions{.follow_fork = true});
    (void)truss.TraceCommand("/bin/prog", {"prog"});
    ExpectInvariantsClean(sim.kernel(), seed);
  }
}

TEST(ChaosSweep, LastCloseVsSetIdExecTwoCpus) {
  // The PR 7 residual: a controller's last close racing the target's set-id
  // exec on the other CPU. Depending on the interleaving the close lands
  // pre-invalidation (live close) or post-invalidation (stale drain); in
  // every interleaving the target must end up able to run — a stale drain
  // that fails to release a directed-stopped target leaves it wedged
  // forever, which the bounded run-to-exit below turns into a failure.
  constexpr char kSuidExits[] = R"(
      ldi r8, 0
loop: addi r8, 1
      cmpi r8, 30
      jlt loop
      ldi r0, SYS_exit
      ldi r1, 0
      sys
)";
  constexpr char kExecSuid[] = R"(
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
path: .asciz "/bin/suid"
)";
  for (uint64_t seed = 401; seed <= 440; ++seed) {
    Sim sim;
    sim.kernel().SetNumCpus(2);
    ASSERT_TRUE(sim.InstallProgram("/bin/suid", kSuidExits, 04755, 0, 0).ok());
    ASSERT_TRUE(sim.InstallProgram("/bin/prog", kExecSuid).ok());
    auto pid = sim.Start("/bin/prog", {}, Creds::User(100, 10));
    ASSERT_TRUE(pid.ok());
    Proc* owner = sim.NewController(Creds::User(100, 10), "owner");
    ASSERT_NE(owner, nullptr);
    auto h = ProcHandle::Grab(sim.kernel(), owner, *pid, O_RDONLY);
    ASSERT_TRUE(h.ok());
    sim.kernel().SetChaosScheduler(seed);
    // Vary where the close lands relative to the exec.
    int steps = static_cast<int>(seed % 20);
    for (int i = 0; i < steps; ++i) {
      sim.kernel().Step();
    }
    h->Close();
    // No descriptor is left anywhere; whatever state the race produced,
    // the target must run to exit.
    bool gone = sim.kernel().RunUntil(
        [&]() { return sim.kernel().FindProc(*pid) == nullptr; }, 200'000);
    EXPECT_TRUE(gone) << "seed " << seed
                      << ": target wedged after its last descriptor closed";
    ExpectInvariantsClean(sim.kernel(), seed);
  }
}

TEST(ChaosSweep, SmpTopologies) {
  // The ncpus axis: the same seeded chaos + fault runs, but on 2- and
  // 4-CPU topologies. The chaos scheduler draws the CPU as well as the lwp,
  // work stealing backfills drained queues, and the per-CPU queue and IPI
  // conservation invariants must hold at every seed.
  for (int ncpus : {2, 4}) {
    for (uint64_t seed = 301; seed <= 312; ++seed) {
      Sim sim;
      sim.kernel().SetNumCpus(ncpus);
      ASSERT_TRUE(sim.InstallProgram("/bin/prog", kForkWriter).ok());
      sim.kernel().SetFaultPlan(LowRatePlan(seed));
      sim.kernel().SetChaosScheduler(seed);
      Truss truss(sim.kernel(), sim.controller(), TrussOptions{.follow_fork = true});
      (void)truss.TraceCommand("/bin/prog", {"prog"});
      ExpectInvariantsClean(sim.kernel(), seed);
    }
  }
}

}  // namespace
}  // namespace svr4
