// Tests for the dbx-style command interpreter.
#include <gtest/gtest.h>

#include "svr4proc/tools/dbx_shell.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

constexpr char kFib[] = R"(
      ldi r1, 0
      ldi r2, 1
loop: mov r3, r1
      add r3, r2
      mov r1, r2
      mov r2, r3
      ldi r4, current
      stw r3, [r4]
      jmp loop
      .data
current: .word 0
)";

constexpr char kCalls[] = R"(
main: call outer
      jmp main
outer:
      call inner
      ret
inner:
      ldi r9, 5
busy: cmpi r9, 0
      jz out
      ldi r8, 1
      sub r9, r8
      jmp busy
out:  ret
)";

struct Session {
  Sim sim;
  std::unique_ptr<DbxShell> shell;
  Pid pid = 0;

  void Start(const std::string& src) {
    ASSERT_TRUE(sim.InstallProgram("/bin/t", src).ok());
    auto p = sim.Start("/bin/t");
    ASSERT_TRUE(p.ok());
    pid = *p;
    shell = std::make_unique<DbxShell>(sim.kernel(), sim.controller());
    ASSERT_TRUE(shell->Attach(pid).ok());
  }
};

TEST(DbxShellTest, BreakpointAndPrint) {
  Session s;
  s.Start(kFib);
  EXPECT_NE(s.shell->Command("stop at loop").find("breakpoint set at loop"),
            std::string::npos);
  EXPECT_NE(s.shell->Command("cont").find("breakpoint at loop"), std::string::npos);
  (void)s.shell->Command("cont");
  auto out = s.shell->Command("print current");
  EXPECT_NE(out.find("current = "), std::string::npos);
}

TEST(DbxShellTest, ConditionalStop) {
  Session s;
  s.Start(kFib);
  EXPECT_NE(s.shell->Command("stop at loop if r3 > 100").find("conditional"),
            std::string::npos);
  (void)s.shell->Command("cont");
  auto regs = *s.shell->debugger().handle().GetRegs();
  EXPECT_GT(regs.r[3], 100u);
  EXPECT_EQ(regs.r[3], 144u) << "first fibonacci > 100";
}

TEST(DbxShellTest, AssignAndStatus) {
  Session s;
  s.Start(kFib);
  EXPECT_EQ(s.shell->Command("assign current = 777"), "current = 777\n");
  EXPECT_NE(s.shell->Command("print current").find("current = 777"), std::string::npos);
  auto status = s.shell->Command("status");
  EXPECT_NE(status.find("PR_REQUESTED"), std::string::npos);
}

TEST(DbxShellTest, StepAndRegs) {
  Session s;
  s.Start(kFib);
  auto out = s.shell->Command("step 2");
  EXPECT_NE(out.find("stopped at"), std::string::npos);
  auto regs = s.shell->Command("regs");
  EXPECT_NE(regs.find("pc"), std::string::npos);
  EXPECT_NE(regs.find("r15"), std::string::npos);
}

TEST(DbxShellTest, DisassembleAtSymbol) {
  Session s;
  s.Start(kFib);
  auto out = s.shell->Command("dis loop 3");
  EXPECT_NE(out.find("mov r3, r1"), std::string::npos);
  EXPECT_NE(out.find("add r3, r2"), std::string::npos);
}

TEST(DbxShellTest, WhereShowsCallChain) {
  Session s;
  s.Start(kCalls);
  // Break inside the innermost function; the stack holds return addresses
  // into outer and main.
  (void)s.shell->Command("stop at busy");
  (void)s.shell->Command("cont");
  auto where = s.shell->Command("where");
  EXPECT_NE(where.find("#0"), std::string::npos);
  EXPECT_NE(where.find("busy"), std::string::npos);
  EXPECT_NE(where.find("outer"), std::string::npos) << where;
  EXPECT_NE(where.find("main"), std::string::npos) << where;
}

TEST(DbxShellTest, WatchCommand) {
  Session s;
  s.Start(kFib);
  EXPECT_NE(s.shell->Command("watch current").find("watchpoint on current"),
            std::string::npos);
  auto out = s.shell->Command("cont");
  EXPECT_NE(out.find("watchpoint: current"), std::string::npos) << out;
}

TEST(DbxShellTest, ForcedSyscallCommand) {
  Session s;
  s.Start(kFib);
  auto out = s.shell->Command("syscall getpid");
  char want[32];
  std::snprintf(want, sizeof(want), "getpid = %u\n", static_cast<unsigned>(s.pid));
  EXPECT_EQ(out, want);
}

TEST(DbxShellTest, KillAndErrors) {
  Session s;
  s.Start(kFib);
  EXPECT_NE(s.shell->Command("frobnicate").find("unknown command"), std::string::npos);
  EXPECT_NE(s.shell->Command("print nosuchsym").find("no such symbol"),
            std::string::npos);
  EXPECT_EQ(s.shell->Command("kill"), "killed\n");
  auto ec = s.sim.kernel().RunToExit(s.pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WTermSig(*ec), SIGKILL);
}

TEST(DbxShellTest, ScriptProducesTranscript) {
  Session s;
  s.Start(kFib);
  auto transcript = s.shell->Script(R"(# a comment
stop at loop
cont
print current
detach)");
  EXPECT_NE(transcript.find("dbx> stop at loop"), std::string::npos);
  EXPECT_NE(transcript.find("dbx> detach"), std::string::npos);
  EXPECT_NE(transcript.find("detached"), std::string::npos);
}

}  // namespace
}  // namespace svr4
