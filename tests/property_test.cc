// Property-style parameterized tests: invariants swept across instruction
// sets, signal/fault spaces, boundary offsets, and batch sizes.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "svr4proc/isa/disasm.h"
#include "svr4proc/procfs/procfs2.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

// ---------------------------------------------------------------------------
// ISA properties.
// ---------------------------------------------------------------------------

class OpcodeProperty : public testing::TestWithParam<int> {};

TEST_P(OpcodeProperty, DisassemblerLengthMatchesInstrLength) {
  uint8_t opcode = static_cast<uint8_t>(GetParam());
  std::vector<uint8_t> bytes(12, 0);
  bytes[0] = opcode;
  auto d = DisassembleOne(bytes);
  int expect = InstrLength(opcode);
  if (expect == 0) {
    EXPECT_EQ(d.length, 1) << "illegal bytes consume exactly one byte";
    EXPECT_NE(d.mnemonic.find("illegal"), std::string::npos);
  } else {
    EXPECT_EQ(d.length, expect);
    EXPECT_EQ(d.mnemonic.find("illegal"), std::string::npos);
    EXPECT_FALSE(OpcodeName(opcode).empty());
  }
}

TEST_P(OpcodeProperty, NamedOpcodesAssembleToThemselves) {
  uint8_t opcode = static_cast<uint8_t>(GetParam());
  if (InstrLength(opcode) == 0) {
    GTEST_SKIP();
  }
  // Disassemble a synthetic instruction, reassemble the text, and check the
  // opcode byte survives the round trip.
  std::vector<uint8_t> bytes(12, 0);
  bytes[0] = opcode;
  auto d = DisassembleOne(bytes);
  Assembler as(AsmOptions{.text_base = 0x1000});
  auto img = as.Assemble("  " + d.mnemonic + "\n");
  ASSERT_TRUE(img.ok()) << d.mnemonic << ": " << as.error();
  ASSERT_FALSE(img->text.empty());
  EXPECT_EQ(img->text[0], opcode) << d.mnemonic;
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeProperty, testing::Range(0, 256));

// Random byte soup never makes the disassembler crash or claim impossible
// lengths; walking it always terminates.
TEST(DisasmProperty, RandomBytesAreHandled) {
  std::mt19937 rng(12345);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> soup(64);
    for (auto& b : soup) {
      b = static_cast<uint8_t>(rng());
    }
    size_t off = 0;
    while (off < soup.size()) {
      auto d = DisassembleOne(std::span<const uint8_t>(soup).subspan(off));
      ASSERT_GE(d.length, 1);
      ASSERT_LE(d.length, 10);
      off += static_cast<size_t>(d.length);
    }
  }
}

// ---------------------------------------------------------------------------
// FixedSet properties.
// ---------------------------------------------------------------------------

class SigSetProperty : public testing::TestWithParam<int> {};

TEST_P(SigSetProperty, AddRemoveHasInvariants) {
  int m = GetParam();
  SigSet s;
  EXPECT_FALSE(s.Has(m));
  s.Add(m);
  EXPECT_EQ(s.Has(m), SigSet::Valid(m)) << "only valid members are stored";
  EXPECT_EQ(s.Count(), SigSet::Valid(m) ? 1 : 0);
  s.Add(m);
  EXPECT_EQ(s.Count(), SigSet::Valid(m) ? 1 : 0) << "add is idempotent";
  s.Remove(m);
  EXPECT_FALSE(s.Has(m));
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(SigSet::Full().Has(m), SigSet::Valid(m));
}

INSTANTIATE_TEST_SUITE_P(MemberSweep, SigSetProperty,
                         testing::Values(-5, 0, 1, 2, 31, 32, 33, 64, 96, 127, 128, 129,
                                         1000));

TEST(SetAlgebraProperty, DeMorganOnRandomSets) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    SysSet a, b;
    for (int i = 0; i < 40; ++i) {
      a.Add(static_cast<int>(rng() % 512) + 1);
      b.Add(static_cast<int>(rng() % 512) + 1);
    }
    // (a | b) - b == a - b
    SysSet lhs = a;
    lhs |= b;
    lhs -= b;
    SysSet rhs = a;
    rhs -= b;
    EXPECT_EQ(lhs, rhs);
    // (a & b) is a subset of both.
    SysSet i = a;
    i &= b;
    for (int m = 1; m <= 512; ++m) {
      if (i.Has(m)) {
        EXPECT_TRUE(a.Has(m));
        EXPECT_TRUE(b.Has(m));
      }
    }
    // Count(a) + Count(b) == Count(a|b) + Count(a&b)
    SysSet u = a;
    u |= b;
    EXPECT_EQ(a.Count() + b.Count(), u.Count() + i.Count());
  }
}

// ---------------------------------------------------------------------------
// /proc address-space I/O truncation: a sweep across the mapping boundary.
// ---------------------------------------------------------------------------

class TruncationProperty : public testing::TestWithParam<int> {};

TEST_P(TruncationProperty, ReadAndWriteTruncateExactlyAtBoundary) {
  int back = GetParam();  // bytes before the end of the text page
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", "spin: jmp spin\n").ok());
  auto pid = sim.Start("/bin/spin");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  uint32_t end = 0x80000000 + kPageSize;  // one text page
  uint32_t start = end - static_cast<uint32_t>(back);
  std::vector<uint8_t> buf(back + 64);
  auto n = h.ReadMem(start, buf.data(), buf.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, back);
  auto w = h.WriteMem(start, buf.data(), buf.size());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(*w, back);
}

INSTANTIATE_TEST_SUITE_P(BoundarySweep, TruncationProperty,
                         testing::Values(1, 2, 3, 4, 7, 8, 63, 64, 1000));

// ---------------------------------------------------------------------------
// Fault -> signal conversion and fault tracing, swept across fault kinds.
// ---------------------------------------------------------------------------

struct FaultCase {
  const char* name;
  const char* program;  // program that incurs the fault
  int fault;
  int signal;
};

const FaultCase kFaultCases[] = {
    {"izdiv",
     R"(
      ldi r1, 1
      ldi r2, 0
      div r1, r2
     )",
     FLTIZDIV, SIGFPE},
    {"iovf",
     R"(
      ldi r1, 0x7fffffff
      ldi r2, 1
      addv r1, r2
     )",
     FLTIOVF, SIGFPE},
    {"bpt", "      bpt\n", FLTBPT, SIGTRAP},
    {"ill", "      .byte 0x00\n", FLTILL, SIGILL},
    {"priv", "      hlt\n", FLTPRIV, SIGILL},
    {"bounds",
     R"(
      ldi r1, 0x100
      ldw r2, [r1]
     )",
     FLTBOUNDS, SIGSEGV},
    {"access",
     R"(
      ldi r1, start      ; text is read/exec, not writable
      ldi r2, 1
      stw r2, [r1]
start: nop
     )",
     FLTACCESS, SIGSEGV},
    {"fpe",
     R"(
      fldi f0, 1.0
      fldi f1, 0.0
      fdiv f0, f1
     )",
     FLTFPE, SIGFPE},
    {"stack",
     R"(
      ldi r15, 0x100     ; point sp at unmapped memory
      push r1
     )",
     FLTSTACK, SIGSEGV},
};

class FaultProperty : public testing::TestWithParam<FaultCase> {};

TEST_P(FaultProperty, UntracedFaultConvertsToItsSignal) {
  const FaultCase& fc = GetParam();
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/f", fc.program).ok());
  auto pid = sim.Start("/bin/f");
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_TRUE(WIfSignaled(*ec));
  EXPECT_EQ(WTermSig(*ec), fc.signal) << fc.name;
}

TEST_P(FaultProperty, TracedFaultStopsWithFaultNumber) {
  const FaultCase& fc = GetParam();
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/f", fc.program).ok());
  auto pid = sim.Start("/bin/f");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(fc.fault);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = *h.Status();
  EXPECT_EQ(st.pr_why, PR_FAULTED) << fc.name;
  EXPECT_EQ(st.pr_what, fc.fault) << fc.name;
  // Resuming without clearing converts to the same signal.
  ASSERT_TRUE(h.Run().ok());
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WTermSig(*ec), fc.signal) << fc.name;
}

INSTANTIATE_TEST_SUITE_P(FaultSweep, FaultProperty, testing::ValuesIn(kFaultCases),
                         [](const testing::TestParamInfo<FaultCase>& info) {
                           return info.param.name;
                         });

// ---------------------------------------------------------------------------
// Signal default actions, swept across the signal space.
// ---------------------------------------------------------------------------

class SignalDefaultProperty : public testing::TestWithParam<int> {};

TEST_P(SignalDefaultProperty, DefaultActionsApply) {
  int sig = GetParam();
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", "spin: jmp spin\n").ok());
  // Child of the controller so a terminated process stays a zombie we can
  // inspect rather than being auto-reaped by init.
  auto pid = sim.kernel().Spawn("/bin/spin", {"spin"}, Creds::Root(), sim.controller());
  for (int i = 0; i < 20; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(sim.kernel().Kill(sim.controller(), *pid, sig).ok());
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  switch (DefaultDisp(sig)) {
    case SigDisp::kTerminate:
      EXPECT_EQ(p->state, Proc::State::kZombie) << SignalName(sig);
      EXPECT_EQ(WTermSig(p->exit_status), sig);
      EXPECT_FALSE(p->exit_status & 0x80) << "no core for plain termination";
      break;
    case SigDisp::kCore:
      EXPECT_EQ(p->state, Proc::State::kZombie) << SignalName(sig);
      EXPECT_EQ(WTermSig(p->exit_status), sig);
      EXPECT_TRUE(p->exit_status & 0x80) << "core-dump bit set";
      break;
    case SigDisp::kIgnore:
      EXPECT_EQ(p->state, Proc::State::kActive) << SignalName(sig);
      EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning);
      break;
    case SigDisp::kStop:
      EXPECT_EQ(p->state, Proc::State::kActive) << SignalName(sig);
      EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped);
      EXPECT_EQ(p->MainLwp()->stop_why, PR_JOBCONTROL);
      break;
    case SigDisp::kContinue:
      EXPECT_EQ(p->state, Proc::State::kActive) << SignalName(sig);
      EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSignals, SignalDefaultProperty,
                         testing::Range(1, static_cast<int>(kNumSignals) + 1),
                         [](const testing::TestParamInfo<int>& info) {
                           return std::string(SignalName(info.param));
                         });

// ---------------------------------------------------------------------------
// Syscall entry/exit stops, swept across syscalls: the entry stop sees the
// arguments, the exit stop sees the result, pr_what always matches.
// ---------------------------------------------------------------------------

struct SysCase {
  const char* name;
  int num;
  const char* body;  // performs the syscall once, then exits
};

const SysCase kSysCases[] = {
    {"getpid", SYS_getpid, "      ldi r0, SYS_getpid\n      sys\n"},
    {"getuid", SYS_getuid, "      ldi r0, SYS_getuid\n      sys\n"},
    {"time", SYS_time, "      ldi r0, SYS_time\n      sys\n"},
    {"umask", SYS_umask, "      ldi r0, SYS_umask\n      ldi r1, 0x12\n      sys\n"},
    {"alarm", SYS_alarm, "      ldi r0, SYS_alarm\n      ldi r1, 0\n      sys\n"},
    {"nice", SYS_nice, "      ldi r0, SYS_nice\n      ldi r1, 1\n      sys\n"},
    {"dup", SYS_dup, "      ldi r0, SYS_dup\n      ldi r1, 1\n      sys\n"},
};

class SyscallStopProperty : public testing::TestWithParam<SysCase> {};

TEST_P(SyscallStopProperty, EntryThenExitWithMatchingNumbers) {
  const SysCase& sc = GetParam();
  Sim sim;
  std::string prog = std::string(sc.body) +
                     "      ldi r0, SYS_exit\n      ldi r1, 0\n      sys\n";
  ASSERT_TRUE(sim.InstallProgram("/bin/s", prog).ok());
  auto pid = sim.Start("/bin/s");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  ASSERT_TRUE(h.Stop().ok());
  SysSet set;
  set.Add(sc.num);
  ASSERT_TRUE(h.SetSysEntry(set).ok());
  ASSERT_TRUE(h.SetSysExit(set).ok());
  ASSERT_TRUE(h.Run().ok());

  ASSERT_TRUE(h.WaitStop().ok());
  auto st = *h.Status();
  EXPECT_EQ(st.pr_why, PR_SYSENTRY) << sc.name;
  EXPECT_EQ(st.pr_what, sc.num);
  EXPECT_EQ(st.pr_syscall, sc.num);
  EXPECT_EQ(st.pr_nsysarg, SyscallNargs(sc.num));
  ASSERT_TRUE(h.Run().ok());

  ASSERT_TRUE(h.WaitStop().ok());
  st = *h.Status();
  EXPECT_EQ(st.pr_why, PR_SYSEXIT) << sc.name;
  EXPECT_EQ(st.pr_what, sc.num);
  EXPECT_FALSE(st.pr_reg.psr & kPsrC) << sc.name << " should have succeeded";
  ASSERT_TRUE(h.Run().ok());
  auto ec = sim.kernel().RunToExit(*pid);
  ASSERT_TRUE(ec.ok());
  EXPECT_EQ(WExitCode(*ec), 0);
}

INSTANTIATE_TEST_SUITE_P(SyscallSweep, SyscallStopProperty, testing::ValuesIn(kSysCases),
                         [](const testing::TestParamInfo<SysCase>& info) {
                           return info.param.name;
                         });

// ---------------------------------------------------------------------------
// Batched control messages are equivalent to the same messages one per
// write, for any batch size.
// ---------------------------------------------------------------------------

class BatchProperty : public testing::TestWithParam<int> {};

TEST_P(BatchProperty, BatchedEqualsSequential) {
  int n = GetParam();
  auto build_msgs = [&](int count) {
    std::vector<std::vector<uint8_t>> msgs;
    for (int i = 0; i < count; ++i) {
      std::vector<uint8_t> m;
      int32_t code = PCSTRACE;
      SigSet sigs;
      // Different payload per message so ordering matters.
      sigs.Add((i % kNumSignals) + 1);
      m.insert(m.end(), reinterpret_cast<uint8_t*>(&code),
               reinterpret_cast<uint8_t*>(&code) + 4);
      m.insert(m.end(), reinterpret_cast<uint8_t*>(&sigs),
               reinterpret_cast<uint8_t*>(&sigs) + sizeof(sigs));
      msgs.push_back(std::move(m));
    }
    return msgs;
  };

  auto run = [&](bool batched) {
    Sim sim;
    (void)sim.InstallProgram("/bin/spin", "spin: jmp spin\n");
    auto pid = sim.Start("/bin/spin");
    char path[40];
    std::snprintf(path, sizeof(path), "/proc2/%05d/ctl", *pid);
    int ctl = *sim.kernel().Open(sim.controller(), path, O_WRONLY);
    auto msgs = build_msgs(n);
    if (batched) {
      std::vector<uint8_t> all;
      for (const auto& m : msgs) {
        all.insert(all.end(), m.begin(), m.end());
      }
      EXPECT_TRUE(sim.kernel().Write(sim.controller(), ctl, all.data(), all.size()).ok());
    } else {
      for (const auto& m : msgs) {
        EXPECT_TRUE(sim.kernel().Write(sim.controller(), ctl, m.data(), m.size()).ok());
      }
    }
    return sim.kernel().FindProc(*pid)->trace.sigtrace;
  };

  EXPECT_EQ(run(true), run(false));
}

INSTANTIATE_TEST_SUITE_P(BatchSweep, BatchProperty, testing::Values(1, 2, 3, 8, 17, 64));

// ---------------------------------------------------------------------------
// Stop/run cycles never lose progress or wedge the target.
// ---------------------------------------------------------------------------

class StopRunProperty : public testing::TestWithParam<int> {};

TEST_P(StopRunProperty, RepeatedCyclesPreserveProgress) {
  int cycles = GetParam();
  Sim sim;
  auto img = sim.InstallProgram("/bin/counter", R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
  )");
  auto pid = sim.Start("/bin/counter");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  uint32_t var = *img->SymbolValue("var");
  uint32_t prev = 0;
  for (int c = 0; c < cycles; ++c) {
    for (int i = 0; i < 50; ++i) {
      sim.kernel().Step();
    }
    ASSERT_TRUE(h.Stop().ok());
    uint32_t now = 0;
    ASSERT_TRUE(h.ReadMem(var, &now, 4).ok());
    EXPECT_GE(now, prev) << "the counter never goes backwards";
    prev = now;
    ASSERT_TRUE(h.Run().ok());
  }
  // Still making progress at the end.
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  uint32_t final_v = 0;
  ASSERT_TRUE(h.ReadMem(var, &final_v, 4).ok());
  EXPECT_GT(final_v, prev);
}

INSTANTIATE_TEST_SUITE_P(CycleSweep, StopRunProperty, testing::Values(1, 5, 25));

}  // namespace
}  // namespace svr4
