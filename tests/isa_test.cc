// Unit tests for the virtual ISA: encoder/assembler, interpreter semantics,
// fault generation, and a.out round-trips.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "svr4proc/base/fixed_set.h"
#include "svr4proc/isa/aout.h"
#include "svr4proc/isa/assembler.h"
#include "svr4proc/isa/cpu.h"
#include "svr4proc/isa/disasm.h"
#include "svr4proc/isa/isa.h"

namespace svr4 {
namespace {

// Flat, fully read/write/execute memory for interpreter tests.
class FlatMemory : public MemoryIf {
 public:
  explicit FlatMemory(uint32_t base, uint32_t size) : base_(base), bytes_(size, 0) {}

  std::optional<MemFault> MemRead(uint32_t addr, void* buf, uint32_t len,
                                  Access /*kind*/) override {
    if (!InRange(addr, len)) {
      return MemFault{FLTBOUNDS, addr};
    }
    std::memcpy(buf, &bytes_[addr - base_], len);
    return std::nullopt;
  }
  std::optional<MemFault> MemWrite(uint32_t addr, const void* buf, uint32_t len) override {
    if (!InRange(addr, len)) {
      return MemFault{FLTBOUNDS, addr};
    }
    std::memcpy(&bytes_[addr - base_], buf, len);
    return std::nullopt;
  }

  void Load(uint32_t addr, const std::vector<uint8_t>& image) {
    std::memcpy(&bytes_[addr - base_], image.data(), image.size());
  }
  uint32_t base() const { return base_; }

 private:
  bool InRange(uint32_t addr, uint32_t len) const {
    return addr >= base_ && addr + len <= base_ + bytes_.size() && addr + len >= addr;
  }
  uint32_t base_;
  std::vector<uint8_t> bytes_;
};

struct Machine {
  Regs regs;
  FpRegs fp;
  FlatMemory mem{0x1000, 0x10000};

  Machine() {
    regs.pc = 0x1000;
    regs.set_sp(0x1000 + 0xF000);
  }

  StepResult Step() { return CpuStep(regs, fp, mem); }

  // Runs until syscall/fault or instruction limit.
  StepResult Run(int max = 10000) {
    StepResult r;
    for (int i = 0; i < max; ++i) {
      r = Step();
      if (r.kind != StepResult::kOk) {
        return r;
      }
    }
    ADD_FAILURE() << "program did not stop";
    return r;
  }

  void LoadAsm(const std::string& src) {
    Assembler as(AsmOptions{.text_base = 0x1000, .data_align = 0x100});
    auto img = as.Assemble(src);
    ASSERT_TRUE(img.ok()) << as.error();
    mem.Load(img->text_vaddr, img->text);
    if (!img->data.empty()) {
      mem.Load(img->data_vaddr, img->data);
    }
    regs.pc = img->entry;
  }
};

TEST(InstrLength, BreakpointIsShortestInstruction) {
  // The paper: the breakpoint instruction should be the shortest instruction
  // in the instruction set so it never overwrites a following instruction.
  EXPECT_EQ(InstrLength(kOpBpt), kBreakpointLength);
  for (int op = 0; op < 256; ++op) {
    int len = InstrLength(static_cast<uint8_t>(op));
    if (len > 0) {
      EXPECT_GE(len, kBreakpointLength);
    }
  }
}

TEST(Cpu, LdiMovAdd) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 5
      ldi r2, 7
      add r1, r2
      mov r3, r1
      sys
  )");
  auto r = m.Run();
  EXPECT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[1], 12u);
  EXPECT_EQ(m.regs.r[3], 12u);
}

TEST(Cpu, ArithmeticOps) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 100
      ldi r2, 6
      mod r1, r2      ; r1 = 4
      ldi r3, 3
      mul r3, r1      ; r3 = 12
      ldi r4, 0xF0
      ldi r5, 0x0F
      xor r4, r5      ; r4 = 0xFF
      shl r4, r3      ; r4 = 0xFF000
      sys
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[1], 4u);
  EXPECT_EQ(m.regs.r[3], 12u);
  EXPECT_EQ(m.regs.r[4], 0xFF000u);
}

TEST(Cpu, DivideByZeroFaults) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 9
      ldi r2, 0
      div r1, r2
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(r.fault, FLTIZDIV);
  // pc is left at the faulting instruction (restartable).
  uint8_t op = 0;
  ASSERT_FALSE(m.mem.MemRead(m.regs.pc, &op, 1, Access::kExec));
  EXPECT_EQ(op, kOpDiv);
}

TEST(Cpu, SignedOverflowFaultsOnAddv) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 0x7fffffff
      ldi r2, 1
      addv r1, r2
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(r.fault, FLTIOVF);
}

TEST(Cpu, PlainAddWrapsWithoutFault) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 0x7fffffff
      ldi r2, 1
      add r1, r2
      sys
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[1], 0x80000000u);
}

TEST(Cpu, BptFaultLeavesPcAtBreakpointAddress) {
  Machine m;
  m.LoadAsm(R"(
      nop
here: bpt
      nop
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(r.fault, FLTBPT);
  EXPECT_EQ(m.regs.pc, 0x1000u + 1);  // address of the bpt itself
  EXPECT_EQ(r.fault_addr, m.regs.pc);
}

TEST(Cpu, IllegalOpcodeFaults) {
  Machine m;
  m.mem.Load(0x1000, {0x00});
  auto r = m.Step();
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(r.fault, FLTILL);
}

TEST(Cpu, PrivilegedInstructionFaults) {
  Machine m;
  m.LoadAsm("hlt\n");
  auto r = m.Step();
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(r.fault, FLTPRIV);
}

TEST(Cpu, TraceBitFaultsAfterEveryInstruction) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 1
      ldi r2, 2
      sys
  )");
  m.regs.psr |= kPsrT;
  auto r = m.Step();
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(r.fault, FLTTRACE);
  EXPECT_EQ(m.regs.r[1], 1u);             // instruction executed
  EXPECT_EQ(m.regs.pc, 0x1000u + 6);      // pc advanced past it
  r = m.Step();
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(m.regs.r[2], 2u);
  m.regs.psr &= ~kPsrT;
  r = m.Step();
  EXPECT_EQ(r.kind, StepResult::kSyscall);
}

TEST(Cpu, LoadStore) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 0x2000
      ldi r2, 0xdeadbeef
      stw r2, [r1+8]
      ldw r3, [r1+8]
      ldb r4, [r1+8]
      sys
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[3], 0xdeadbeefu);
  EXPECT_EQ(m.regs.r[4], 0xefu);  // little endian low byte
}

TEST(Cpu, NegativeOffsets) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 0x2010
      ldi r2, 77
      stw r2, [r1-16]
      ldw r3, [r1-16]
      sys
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[3], 77u);
}

TEST(Cpu, ConditionalBranches) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 10
      ldi r2, 0
loop: cmpi r1, 0
      jz done
      add r2, r1
      ldi r3, 1
      sub r1, r3
      jmp loop
done: sys
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[2], 55u);  // 10+9+...+1
}

TEST(Cpu, SignedComparisons) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, -5
      cmpi r1, 3
      jlt is_less
      ldi r2, 0
      sys
is_less:
      ldi r2, 1
      sys
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[2], 1u) << "-5 < 3 signed";
}

TEST(Cpu, CallRetAndStack) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 4
      call double_it
      call double_it
      sys
double_it:
      add r1, r1
      ret
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[1], 16u);
}

TEST(Cpu, PushPop) {
  Machine m;
  m.LoadAsm(R"(
      ldi r1, 11
      ldi r2, 22
      push r1
      push r2
      pop r3
      pop r4
      sys
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[3], 22u);
  EXPECT_EQ(m.regs.r[4], 11u);
}

TEST(Cpu, IndirectCall) {
  Machine m;
  m.LoadAsm(R"(
      ldi r5, target
      callr r5
      sys
target:
      ldi r1, 99
      ret
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[1], 99u);
}

TEST(Cpu, FloatingPoint) {
  Machine m;
  m.LoadAsm(R"(
      fldi f0, 1.5
      fldi f1, 2.5
      fadd f0, f1
      ftoi r1, f0
      ldi r2, 10
      itof f2, r2
      fmul f2, f0
      ftoi r3, f2
      sys
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[1], 4u);
  EXPECT_EQ(m.regs.r[3], 40u);
  EXPECT_DOUBLE_EQ(m.fp.f[0], 4.0);
}

TEST(Cpu, FloatDivideByZeroFaults) {
  Machine m;
  m.LoadAsm(R"(
      fldi f0, 1.0
      fldi f1, 0.0
      fdiv f0, f1
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(r.fault, FLTFPE);
  EXPECT_NE(m.fp.fsr, 0u) << "sticky FP status recorded";
}

TEST(Cpu, UnmappedFetchFaults) {
  Machine m;
  m.regs.pc = 0x9000000;
  auto r = m.Step();
  ASSERT_EQ(r.kind, StepResult::kFault);
  EXPECT_EQ(r.fault, FLTBOUNDS);
  EXPECT_EQ(r.fault_addr, 0x9000000u);
}

TEST(Cpu, SyscallErrorBranching) {
  Machine m;
  m.LoadAsm(R"(
      ldi r0, 1
      cmpi r0, 1
      jcs never
      ldi r1, 1
      sys
never:
      ldi r1, 2
      sys
  )");
  auto r = m.Run();
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(m.regs.r[1], 1u);
}

TEST(Assembler, DataSectionAndLabels) {
  Assembler as(AsmOptions{.text_base = 0x1000, .data_align = 0x100});
  auto img = as.Assemble(R"(
      ldi r1, msg
      ldb r2, [r1]
      sys
      .data
msg:  .asciz "Hi"
val:  .word 1234, val
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  EXPECT_EQ(img->data[0], 'H');
  EXPECT_EQ(img->data[1], 'i');
  EXPECT_EQ(img->data[2], 0);
  uint32_t v;
  std::memcpy(&v, img->data.data() + 3, 4);
  EXPECT_EQ(v, 1234u);
  std::memcpy(&v, img->data.data() + 7, 4);
  EXPECT_EQ(v, img->data_vaddr + 3) << "label self-reference in .word";
}

TEST(Assembler, BssAndSpace) {
  Assembler as;
  auto img = as.Assemble(R"(
      nop
      .bss
buf:  .space 100
      .align 8
b2:   .space 4
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  EXPECT_EQ(img->bss_size, 108u);
  auto buf = img->SymbolValue("buf");
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(*buf, img->bss_vaddr);
}

TEST(Assembler, EquAndExpressions) {
  Assembler as(AsmOptions{.text_base = 0x1000, .data_align = 0x100});
  auto img = as.Assemble(R"(
      .equ KSIZE, 0x40
      ldi r1, KSIZE
      ldi r2, table+4
      sys
      .data
table: .word 1, 2, 3
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  // Verify by executing.
  FlatMemory mem(0x1000, 0x10000);
  mem.Load(img->text_vaddr, img->text);
  mem.Load(img->data_vaddr, img->data);
  Regs regs;
  FpRegs fp;
  regs.pc = img->entry;
  regs.set_sp(0xF000);
  StepResult r;
  do {
    r = CpuStep(regs, fp, mem);
  } while (r.kind == StepResult::kOk);
  ASSERT_EQ(r.kind, StepResult::kSyscall);
  EXPECT_EQ(regs.r[1], 0x40u);
  EXPECT_EQ(regs.r[2], img->data_vaddr + 4);
}

TEST(Assembler, EntryDirective) {
  Assembler as;
  auto img = as.Assemble(R"(
      .entry main
helper: ret
main:   nop
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  EXPECT_EQ(img->entry, img->text_vaddr + 1);
}

TEST(Assembler, ErrorsAreReportedWithLineNumbers) {
  Assembler as;
  auto img = as.Assemble("  nop\n  frobnicate r1\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(as.error().find("line 2"), std::string::npos) << as.error();
  EXPECT_NE(as.error().find("frobnicate"), std::string::npos);
}

TEST(Assembler, UndefinedSymbolIsAnError) {
  Assembler as;
  auto img = as.Assemble("  jmp nowhere\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(as.error().find("nowhere"), std::string::npos) << as.error();
}

TEST(Assembler, DuplicateLabelIsAnError) {
  Assembler as;
  auto img = as.Assemble("a: nop\na: nop\n");
  ASSERT_FALSE(img.ok());
  EXPECT_NE(as.error().find("duplicate"), std::string::npos) << as.error();
}

TEST(Assembler, PredefinedSymbols) {
  Assembler as;
  as.Define("SYS_exit", 1);
  auto img = as.Assemble("  ldi r0, SYS_exit\n  sys\n");
  ASSERT_TRUE(img.ok()) << as.error();
}

TEST(Aout, SerializeParseRoundTrip) {
  Assembler as;
  auto img = as.Assemble(R"(
      .entry main
main: ldi r1, greeting
      sys
      .data
greeting: .asciz "hello, world"
      .bss
scratch: .space 64
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  img->lib = "libdemo";

  auto bytes = img->Serialize();
  auto parsed = Aout::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->entry, img->entry);
  EXPECT_EQ(parsed->text, img->text);
  EXPECT_EQ(parsed->data, img->data);
  EXPECT_EQ(parsed->bss_size, img->bss_size);
  EXPECT_EQ(parsed->lib, "libdemo");
  ASSERT_EQ(parsed->symbols.size(), img->symbols.size());
  auto main_sym = parsed->SymbolValue("main");
  ASSERT_TRUE(main_sym.ok());
  EXPECT_EQ(*main_sym, img->entry);
}

TEST(Aout, ParseRejectsGarbage) {
  std::vector<uint8_t> junk(100, 0xAB);
  EXPECT_FALSE(Aout::Parse(junk).ok());
  EXPECT_FALSE(Aout::Parse({}).ok());
}

TEST(Aout, NearestSymbol) {
  Aout a;
  a.symbols = {{"start", 0x1000, SymType::kText},
               {"middle", 0x1010, SymType::kText},
               {"konst", 42, SymType::kAbs}};
  auto near = a.NearestSymbol(0x1015);
  EXPECT_EQ(near.name, "middle");
  EXPECT_EQ(near.offset, 5u);
  near = a.NearestSymbol(0x100);
  EXPECT_TRUE(near.name.empty());
}

TEST(Aout, VirtualSizeCoversAllSegments) {
  Assembler as;
  auto img = as.Assemble(R"(
      nop
      .data
      .word 1
      .bss
      .space 4096
  )");
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->VirtualSize(), 1u + 4u + 4096u);
}

TEST(Disasm, RoundTripsRepresentativeInstructions) {
  Assembler as(AsmOptions{.text_base = 0x1000});
  auto img = as.Assemble(R"(
      nop
      bpt
      ldi r1, 0x1234
      add r1, r2
      ldw r3, [sp+8]
      stw r3, [fp-4]
      jmp 0x1000
      call 0x1000
      push r7
      ret
      sys
  )");
  ASSERT_TRUE(img.ok()) << as.error();
  std::span<const uint8_t> code(img->text);
  std::vector<std::string> expect = {"nop",
                                     "bpt",
                                     "ldi r1, 0x1234",
                                     "add r1, r2",
                                     "ldw r3, [sp+8]",
                                     "stw r3, [fp-4]",
                                     "jmp 0x1000",
                                     "call 0x1000",
                                     "push r7",
                                     "ret",
                                     "sys"};
  size_t off = 0;
  for (const auto& want : expect) {
    auto d = DisassembleOne(code.subspan(off));
    EXPECT_EQ(d.mnemonic, want);
    off += static_cast<size_t>(d.length);
  }
  EXPECT_EQ(off, code.size());
}

TEST(Disasm, IllegalBytesRenderedSafely) {
  std::vector<uint8_t> junk = {0xAB};
  auto d = DisassembleOne(junk);
  EXPECT_EQ(d.length, 1);
  EXPECT_NE(d.mnemonic.find("illegal"), std::string::npos);
}

TEST(FixedSet, BasicOperations) {
  SigSet s;
  EXPECT_TRUE(s.Empty());
  s.Add(9);
  s.Add(15);
  EXPECT_TRUE(s.Has(9));
  EXPECT_FALSE(s.Has(10));
  EXPECT_EQ(s.Count(), 2);
  EXPECT_EQ(s.First(), 9);
  s.Remove(9);
  EXPECT_FALSE(s.Has(9));
  s.Fill();
  EXPECT_FALSE(s.Has(0)) << "member 0 does not exist";
  EXPECT_TRUE(s.Has(1));
  EXPECT_TRUE(s.Has(128));
  EXPECT_FALSE(s.Has(129));
  EXPECT_EQ(s.Count(), 128);
}

TEST(FixedSet, SetAlgebra) {
  SysSet a{1, 2, 3};
  SysSet b{3, 4};
  SysSet u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 4);
  SysSet i = a;
  i &= b;
  EXPECT_EQ(i.Count(), 1);
  EXPECT_TRUE(i.Has(3));
  SysSet d = a;
  d -= b;
  EXPECT_EQ(d.Count(), 2);
  EXPECT_FALSE(d.Has(3));
  EXPECT_TRUE(SysSet::Full().Has(512));
}

}  // namespace
}  // namespace svr4
