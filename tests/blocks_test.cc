// The predecoded basic-block execution engine: decoder consistency with the
// interpreter's tables, differential engine equivalence, and the
// generation-based invalidation edges (self-modifying code, breakpoint
// plants, watchpoints, the trace bit, exec). Architectural behaviour must be
// byte-identical to the interpreter in every one of these.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <span>
#include <string>

#include "svr4proc/isa/blocks.h"
#include "svr4proc/isa/disasm.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

constexpr char kCounter[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
)";

struct Target {
  Pid pid;
  Aout image;
};

Target StartProgram(Sim& sim, const std::string& src,
                    const std::string& path = "/bin/prog") {
  auto img = sim.InstallProgram(path, src);
  EXPECT_TRUE(img.ok()) << "assembly failed";
  auto pid = sim.Start(path);
  EXPECT_TRUE(pid.ok());
  return Target{pid.ok() ? *pid : -1, img.ok() ? *img : Aout{}};
}

ProcHandle Grab(Sim& sim, Pid pid, int oflags = O_RDWR) {
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid, oflags);
  EXPECT_TRUE(h.ok()) << "grab failed: " << ErrnoName(h.error());
  return std::move(*h);
}

// ---------------------------------------------------------------------------
// Decoder consistency: InstrLength, the disassembler, and the predecoder
// must agree on the length of every defined opcode and reject undefined
// bytes identically — otherwise the block engine drifts from CpuStep.
// ---------------------------------------------------------------------------

TEST(BlockDecoder, AgreesWithInstrLengthAndDisassemblerOnAllOpcodes) {
  for (int op = 0; op < 256; ++op) {
    uint8_t buf[kFetchWindowBytes] = {};
    buf[0] = static_cast<uint8_t>(op);
    const int len = InstrLength(buf[0]);
    auto d = DisassembleOne(std::span<const uint8_t>(buf, sizeof(buf)));
    PInstr pi;
    const int plen = PredecodeOne(buf, 0x1000, &pi);

    if (len == 0) {
      EXPECT_EQ(d.length, 1) << "opcode " << op;
      EXPECT_NE(d.mnemonic.find("illegal"), std::string::npos) << "opcode " << op;
      EXPECT_EQ(pi.kind, B_ILL) << "opcode " << op;
      EXPECT_EQ(plen, 1) << "opcode " << op;
      EXPECT_TRUE(IsBlockTerminator(buf[0]))
          << "undefined opcode " << op << " must end a block (it traps)";
    } else {
      EXPECT_EQ(d.length, len) << "opcode " << op;
      EXPECT_EQ(plen, len) << "opcode " << op;
      EXPECT_EQ(static_cast<int>(pi.len), len) << "opcode " << op;
      EXPECT_NE(pi.kind, B_ILL) << "defined opcode " << op;
      EXPECT_EQ(pi.pc, 0x1000u) << "opcode " << op;
    }
  }
}

// ---------------------------------------------------------------------------
// Differential equivalence: the same program must produce the same exit
// status, the same virtual time, and the same instruction count under both
// engines — not just the same answer, the same execution.
// ---------------------------------------------------------------------------

// Arithmetic, flags, loads/stores, call/ret through a register, push/pop,
// floating point, and syscalls, iterated enough to make any divergence in
// budget accounting or flag semantics visible in the totals.
constexpr char kMixed[] = R"(
      ldi r8, 0           ; checksum
      ldi r9, 40          ; outer counter
outer:
      ldi r4, var
      ldw r5, [r4]
      addi r5, 3
      stw r5, [r4]
      add r8, r5
      ldi r5, fn
      callr r5
      push r8
      pop r10
      xor r8, r10         ; zero (flags exercise)
      mov r8, r10
      itof f1, r8
      fldi f0, 2.5
      fadd f0, f1
      ftoi r7, f0
      xor r8, r7
      ldi r0, SYS_getpid
      sys
      ldi r5, 1
      sub r9, r5
      cmpi r9, 0
      jnz outer
      ldi r5, 255
      and r8, r5
      mov r1, r8
      ldi r0, SYS_exit
      sys
fn:   ldi r6, 17
      mul r6, r8
      xor r8, r6
      ret
      .data
var:  .word 0
)";

struct RunTotals {
  int status = 0;
  uint64_t ticks = 0;
  uint64_t instructions = 0;
};

RunTotals RunUnder(ExecEngine engine, const std::string& src) {
  Sim sim;
  sim.kernel().SetExecEngine(engine);
  auto img = sim.InstallProgram("/bin/prog", src);
  EXPECT_TRUE(img.ok());
  auto pid = sim.Start("/bin/prog");
  EXPECT_TRUE(pid.ok());
  auto st = sim.kernel().RunToExit(*pid);
  EXPECT_TRUE(st.ok());
  return RunTotals{st.ok() ? *st : -1, sim.kernel().Ticks(),
                   sim.kernel().counters().instructions};
}

TEST(BlockEngine, DifferentialLockstepWithInterpreter) {
  RunTotals interp = RunUnder(ExecEngine::kInterp, kMixed);
  RunTotals blocks = RunUnder(ExecEngine::kBlocks, kMixed);
  EXPECT_EQ(interp.status, blocks.status);
  EXPECT_EQ(interp.ticks, blocks.ticks)
      << "engines diverged in virtual time: budget accounting differs";
  EXPECT_EQ(interp.instructions, blocks.instructions);
  EXPECT_TRUE(WIfExited(interp.status));
}

TEST(BlockEngine, ExactResultUnderBlocks) {
  // Not just engine-vs-engine: pin one known answer so both being wrong
  // can't pass. 300 iterations of +1 -> exit code 300 & 0xff = 44.
  constexpr char kToN[] = R"(
      ldi r5, 0
loop: addi r5, 1
      cmpi r5, 300
      jlt loop
      mov r1, r5
      ldi r0, SYS_exit
      sys
  )";
  RunTotals blocks = RunUnder(ExecEngine::kBlocks, kToN);
  ASSERT_TRUE(WIfExited(blocks.status));
  EXPECT_EQ(WExitCode(blocks.status), 300 & 0xFF);
  RunTotals interp = RunUnder(ExecEngine::kInterp, kToN);
  EXPECT_EQ(interp.status, blocks.status);
  EXPECT_EQ(interp.ticks, blocks.ticks);
}

// ---------------------------------------------------------------------------
// Invalidation edges.
// ---------------------------------------------------------------------------

TEST(BlockInvalidate, SelfModifyingCodeInOwnBlock) {
  // The program makes its text writable, then a single straight-line block
  // patches the immediate of an instruction later in that very block. The
  // executor's post-store generation check must abandon the predecoded
  // copy, so the patched byte (42) is what executes — on both engines.
  constexpr char kSelfMod[] = R"(
      ldi r0, SYS_mprotect
      ldi r1, tgt
      ldi r2, 0xFFFFF000
      and r1, r2
      ldi r2, 4096
      ldi r3, 7           ; READ|WRITE|EXEC
      sys
      ldi r4, tgt+2       ; low byte of the ldi immediate below
      ldi r5, 42
      stb r5, [r4]
tgt:  ldi r6, 0           ; becomes ldi r6, 42 before it executes
      mov r1, r6
      ldi r0, SYS_exit
      sys
  )";
  RunTotals blocks = RunUnder(ExecEngine::kBlocks, kSelfMod);
  ASSERT_TRUE(WIfExited(blocks.status));
  EXPECT_EQ(WExitCode(blocks.status), 42)
      << "a stale predecoded block executed the pre-patch immediate";
  RunTotals interp = RunUnder(ExecEngine::kInterp, kSelfMod);
  EXPECT_EQ(interp.status, blocks.status);
  EXPECT_EQ(interp.ticks, blocks.ticks);
}

TEST(BlockInvalidate, BreakpointPlantedMidBlockFires) {
  Sim sim;
  sim.kernel().SetExecEngine(ExecEngine::kBlocks);
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  uint32_t loop = *t.image.SymbolValue("loop");

  // Let the loop get hot so its block is cached.
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(FLTBPT);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());

  // Plant mid-block: the stw is the 4th instruction of the loop body.
  // ldi(6) + ldw(4) + addi(6) = byte offset 16.
  uint32_t mid = loop + 16;
  uint8_t orig;
  ASSERT_TRUE(h.ReadMem(mid, &orig, 1).ok());
  uint8_t bpt = kBreakpointByte;
  ASSERT_TRUE(h.WriteMem(mid, &bpt, 1).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_why, PR_FAULTED);
  EXPECT_EQ(st->pr_what, FLTBPT);
  EXPECT_EQ(st->pr_reg.pc, mid) << "pc must rest on the breakpoint itself";

  // Second plant into the SAME page: the COW copy is already private, so
  // this /proc write happens in place with no TLB flush — the separate code
  // generation must still drop the cached block.
  ASSERT_TRUE(h.WriteMem(mid, &orig, 1).ok());  // heal the first one
  uint32_t mid2 = loop + 6;  // the ldw
  ASSERT_TRUE(h.ReadMem(mid2, &orig, 1).ok());
  ASSERT_TRUE(h.WriteMem(mid2, &bpt, 1).ok());
  ASSERT_TRUE(h.RunClearFault().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_what, FLTBPT);
  EXPECT_EQ(st->pr_reg.pc, mid2)
      << "a breakpoint planted without a TLB flush must still invalidate";
}

TEST(BlockInvalidate, WatchpointArmedMidRunFires) {
  Sim sim;
  sim.kernel().SetExecEngine(ExecEngine::kBlocks);
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  uint32_t var = *t.image.SymbolValue("var");

  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(FLTWATCH);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  PrWatch w;
  w.pr_vaddr = var;
  w.pr_size = 4;
  w.pr_wflags = WA_WRITE;
  ASSERT_TRUE(h.SetWatch(w).ok());
  ASSERT_TRUE(h.Run().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto st = h.Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_why, PR_FAULTED);
  EXPECT_EQ(st->pr_what, FLTWATCH)
      << "the hot cached block must not outrun a freshly armed watchpoint";
}

TEST(BlockInvalidate, TraceBitStepsExactlyOneInstruction) {
  Sim sim;
  sim.kernel().SetExecEngine(ExecEngine::kBlocks);
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);

  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  ASSERT_TRUE(h.Stop().ok());
  FltSet faults;
  faults.Add(FLTTRACE);
  ASSERT_TRUE(h.SetFltTrace(faults).ok());
  auto before = h.Status();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(h.Step().ok());
  ASSERT_TRUE(h.WaitStop().ok());
  auto after = h.Status();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->pr_why, PR_FAULTED);
  EXPECT_EQ(after->pr_what, FLTTRACE);
  EXPECT_EQ(after->pr_utime, before->pr_utime + 1)
      << "PRSTEP with a hot block cached must retire exactly one instruction";
  EXPECT_NE(after->pr_reg.pc, before->pr_reg.pc);
}

TEST(BlockInvalidate, ExecReplacesAddressSpaceAndBlocks) {
  Sim sim;
  sim.kernel().SetExecEngine(ExecEngine::kBlocks);
  auto img = sim.InstallProgram("/bin/second", R"(
      ldi r5, 0
loop: addi r5, 1
      cmpi r5, 50
      jlt loop
      ldi r0, SYS_exit
      ldi r1, 7
      sys
  )");
  ASSERT_TRUE(img.ok());
  // Run a hot loop, then exec the second image; the fresh address space
  // starts with an empty block cache and must run the new text correctly.
  auto t = StartProgram(sim, R"(
      ldi r5, 0
warm: addi r5, 1
      cmpi r5, 2000
      jlt warm
      ldi r0, SYS_exec
      ldi r1, path
      ldi r2, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 1           ; exec failed
      sys
      .data
path: .asciz "/bin/second"
  )");
  auto st = sim.kernel().RunToExit(t.pid);
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(WIfExited(*st));
  EXPECT_EQ(WExitCode(*st), 7);
}

// ---------------------------------------------------------------------------
// Engine knob and counters.
// ---------------------------------------------------------------------------

TEST(BlockEngineKnob, EnvironmentOverrideSelectsEngine) {
  ASSERT_EQ(setenv("SVR4PROC_EXEC_ENGINE", "interp", 1), 0);
  {
    Kernel k;
    EXPECT_EQ(k.exec_engine(), ExecEngine::kInterp);
  }
  ASSERT_EQ(setenv("SVR4PROC_EXEC_ENGINE", "blocks", 1), 0);
  {
    Kernel k;
    EXPECT_EQ(k.exec_engine(), ExecEngine::kBlocks);
  }
  ASSERT_EQ(setenv("SVR4PROC_EXEC_ENGINE", "bogus", 1), 0);
  {
    Kernel k;
    EXPECT_EQ(k.exec_engine(), ExecEngine::kAuto) << "unknown values mean auto";
  }
  ASSERT_EQ(unsetenv("SVR4PROC_EXEC_ENGINE"), 0);
  {
    Kernel k;
    EXPECT_EQ(k.exec_engine(), ExecEngine::kAuto);
    k.SetExecEngine(ExecEngine::kBlocks);
    EXPECT_EQ(k.exec_engine(), ExecEngine::kBlocks);
  }
}

TEST(BlockStatsExposure, VmStatsAndKernelMetricsCarryBlockCounters) {
  Sim sim;
  // Pinned (not left on auto) so this test means the same thing when the
  // whole suite runs under SVR4PROC_EXEC_ENGINE=interp in CI.
  sim.kernel().SetExecEngine(ExecEngine::kBlocks);
  auto t = StartProgram(sim, kCounter);
  auto h = Grab(sim, t.pid);
  for (int i = 0; i < 500; ++i) {
    sim.kernel().Step();
  }
  auto s = h.VmStats();
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->pr_bb_built, 0u);
  EXPECT_GT(s->pr_bb_hits, 0u) << "a tight loop must run out of the block cache";
  EXPECT_GT(s->pr_bb_hits, s->pr_bb_misses);

  EXPECT_GT(sim.kernel().counters().quanta_blocks, 0u);
  EXPECT_EQ(sim.kernel().counters().quanta_interp, 0u);

  char buf[4096];
  auto fd = sim.kernel().Open(sim.controller(), "/proc2/kernel/metrics", O_RDONLY);
  ASSERT_TRUE(fd.ok());
  auto n = sim.kernel().Read(sim.controller(), *fd, buf, sizeof(buf) - 1);
  ASSERT_TRUE(n.ok());
  buf[*n] = 0;
  std::string text(buf);
  EXPECT_NE(text.find("exec_engine blocks"), std::string::npos) << text;
  EXPECT_NE(text.find("bb_hits "), std::string::npos);
  EXPECT_NE(text.find("bb_built "), std::string::npos);
  EXPECT_NE(text.find("exec_quanta_blocks "), std::string::npos);
}

TEST(BlockStatsExposure, FallbacksCountedWhenTlbDisabled) {
  Sim sim;
  sim.kernel().SetExecEngine(ExecEngine::kBlocks);
  auto t = StartProgram(sim, kCounter);
  Proc* p = sim.kernel().FindProc(t.pid);
  ASSERT_NE(p, nullptr);
  p->as->SetTlbEnabled(false);  // CodeCacheActive() false -> per-step fallback
  for (int i = 0; i < 100; ++i) {
    sim.kernel().Step();
  }
  auto h = Grab(sim, t.pid);
  auto s = h.VmStats();
  ASSERT_TRUE(s.ok());
  EXPECT_GT(s->pr_bb_fallbacks, 0u);
  EXPECT_EQ(s->pr_bb_hits, 0u) << "no blocks may serve with the TLB disabled";
}

}  // namespace
}  // namespace svr4
