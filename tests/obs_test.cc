// End-to-end latency attribution (observability PR): procd RPC spans, the
// deterministic sampling profiler (PIOCPROF / /proc2/<pid>/prof), and
// scheduler wait accounting. Also the format contracts: every line of
// /proc2/kernel/metrics and /proc2/kernel/procd parses as `key value`, and
// the arming contracts: profiler+spans armed vs disarmed leaves a 20-seed
// chaos sweep snapshot-identical, and remote reads match local reads byte
// for byte.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "svr4proc/kernel/faults.h"
#include "svr4proc/kernel/ktrace.h"
#include "svr4proc/procd/client.h"
#include "svr4proc/procd/procd.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

namespace svr4 {
namespace {

constexpr char kSpin[] = R"(
loop: ldi r0, SYS_getpid
      sys
      addi r1, 1
      jmp loop
)";

constexpr char kBurst[] = R"(
      ldi r0, SYS_getpid
      sys
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 6
      sys
      ldi r0, SYS_open
      ldi r1, nopath
      ldi r2, O_RDONLY
      ldi r3, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "chaos\n"
nopath: .asciz "/no/such"
)";

FaultPlan LowRatePlan(uint64_t seed) {
  FaultPlan plan;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    plan.Arm(static_cast<FaultSite>(i),
             FaultRule{seed, /*num=*/1, /*den=*/16, /*max_hits=*/8});
  }
  return plan;
}

Pid StartSpin(Sim& sim) {
  EXPECT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  auto pid = sim.Start("/bin/spin");
  EXPECT_TRUE(pid.ok());
  return pid.ok() ? *pid : -1;
}

// Total samples in a folded-stack dump (sum of the trailing counts).
uint64_t FoldedTotal(const std::string& text) {
  uint64_t total = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      break;
    }
    size_t sp = text.rfind(' ', nl);
    if (sp != std::string::npos && sp > pos) {
      total += std::strtoull(text.c_str() + sp + 1, nullptr, 10);
    }
    pos = nl + 1;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Golden parse: every metrics line is `key value`, under both CPU counts,
// with chaos faults armed (fault_site lines included).
// ---------------------------------------------------------------------------

TEST(ObsGoldenParse, MetricsFormatStableAcrossCpusAndFaults) {
  for (int ncpus : {1, 4}) {
    Sim sim;
    sim.kernel().SetNumCpus(ncpus);
    sim.kernel().SetTracing(/*ring=*/true, /*metrics=*/true);
    sim.kernel().SetFaultPlan(LowRatePlan(42));
    EXPECT_TRUE(sim.InstallProgram("/bin/prog", kBurst).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(sim.Start("/bin/prog").ok());
    }
    for (int i = 0; i < 400; ++i) {
      sim.kernel().Step();
    }
    LocalProcIo io(sim.kernel(), sim.controller());
    auto text = ReadTextFile(io, "/proc2/kernel/metrics");
    ASSERT_TRUE(text.ok());
    ASSERT_FALSE(text->empty());
    std::string bad;
    EXPECT_TRUE(ValidateMetricsText(*text, &bad))
        << "ncpus=" << ncpus << ": malformed metrics line: \"" << bad << "\"";
    // The registry rendered something beyond the header.
    EXPECT_NE(text->find("counter "), std::string::npos);
    EXPECT_NE(text->find("hist "), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// The sampling profiler.
// ---------------------------------------------------------------------------

TEST(ObsProfiler, ArmsSamplesAndDumpsFoldedStacks) {
  Sim sim;
  Pid pid = StartSpin(sim);
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid, O_RDWR);
  ASSERT_TRUE(h.ok());
  // Period 0: one sample per instruction — sample count must equal the
  // instructions the process retires while armed.
  ASSERT_TRUE(h->SetProf(0).ok());
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  auto st = h->Status();
  ASSERT_TRUE(st.ok());
  auto folded = h->Prof();
  ASSERT_TRUE(folded.ok());
  ASSERT_FALSE(folded->empty());
  EXPECT_EQ(FoldedTotal(*folded), st->pr_utime)
      << "period 2^0 means every retired instruction is a sample";
  // Folded-stack shape: every line is "spin;0xPC N".
  EXPECT_EQ(folded->compare(0, 7, "spin;0x"), 0) << folded->substr(0, 32);

  // Disarm keeps the buckets readable; re-arm resets them.
  ASSERT_TRUE(h->ClearProf().ok());
  auto kept = h->Prof();
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(*kept, *folded) << "disarm must freeze, not clear, the buckets";
  ASSERT_TRUE(h->SetProf(4).ok());
  auto reset = h->Prof();
  ASSERT_TRUE(reset.ok());
  EXPECT_TRUE(reset->empty()) << "re-arming starts a fresh accumulation";

  // Period sanity: >30 is rejected.
  EXPECT_FALSE(h->SetProf(31).ok());
}

TEST(ObsProfiler, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    Sim sim;
    Pid pid = StartSpin(sim);
    auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid, O_RDWR);
    EXPECT_TRUE(h.ok());
    EXPECT_TRUE(h->SetProf(2).ok());
    for (int i = 0; i < 300; ++i) {
      sim.kernel().Step();
    }
    auto folded = h->Prof();
    EXPECT_TRUE(folded.ok());
    return folded.ok() ? *folded : std::string();
  };
  std::string a = run();
  std::string b = run();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "instruction-count-driven sampling must be deterministic";
}

TEST(ObsProfiler, SampleTotalsMatchAcrossEngines) {
  // The interpreter samples at exact pcs, the block engine at block-entry
  // pcs — bucket granularity differs by design, but the sample *count* is
  // driven by retired instructions and must agree.
  auto run = [](ExecEngine e) {
    Sim sim;
    sim.kernel().SetExecEngine(e);
    Pid pid = StartSpin(sim);
    auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid, O_RDWR);
    EXPECT_TRUE(h.ok());
    EXPECT_TRUE(h->SetProf(3).ok());
    for (int i = 0; i < 300; ++i) {
      sim.kernel().Step();
    }
    auto folded = h->Prof();
    EXPECT_TRUE(folded.ok());
    return FoldedTotal(folded.ok() ? *folded : std::string());
  };
  uint64_t interp = run(ExecEngine::kInterp);
  uint64_t blocks = run(ExecEngine::kBlocks);
  EXPECT_NE(interp, 0u);
  EXPECT_EQ(interp, blocks);
}

TEST(ObsProfiler, RemoteReadsMatchLocalByteForByte) {
  Sim sim;
  Pid pid = StartSpin(sim);
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), pid, O_RDWR);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->SetProf(2).ok());
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  ProcdServer srv(sim.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));
  // Remote PIOCPROF round-trips too (disarm, then re-enable local state).
  auto rh = ProcHandle::Grab(rio, pid, O_RDWR);
  ASSERT_TRUE(rh.ok());
  char path[64];
  std::snprintf(path, sizeof(path), "/proc2/%05d/prof", pid);
  auto local = ReadTextFile(h->io(), path);
  auto remote = ReadTextFile(rio, path);
  ASSERT_TRUE(local.ok());
  ASSERT_TRUE(remote.ok());
  ASSERT_FALSE(local->empty());
  EXPECT_EQ(*local, *remote);
  EXPECT_TRUE(rh->ClearProf().ok()) << "PIOCPROF must work over the wire";
}

// ---------------------------------------------------------------------------
// Scheduler wait accounting.
// ---------------------------------------------------------------------------

TEST(ObsWaitAccounting, RunqWaitsRecordedAndAggregatedIntoKstat) {
  Sim sim;
  sim.kernel().SetTracing(/*ring=*/false, /*metrics=*/true);
  EXPECT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  // More runnable processes than CPUs: every dispatch of a waiting lwp
  // harvests a nonzero enqueue->dispatch wait.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sim.Start("/bin/spin").ok());
  }
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(),
                            sim.kernel().init_proc()->pid, O_RDONLY);
  ASSERT_TRUE(h.ok());
  auto ks = h->Kstat();
  ASSERT_TRUE(ks.ok());
  EXPECT_GT(ks->pr_runq_wait_count, 0u);
  EXPECT_GT(ks->pr_runq_wait_sum, 0u) << "4 runnable on 1 cpu must wait";
  EXPECT_GE(ks->pr_runq_wait_max, 1u);

  // The per-CPU histogram shows up in the text registry, and the kstat
  // aggregate equals the per-CPU sums (single home, two renderings).
  LocalProcIo io(sim.kernel(), sim.controller());
  auto text = ReadTextFile(io, "/proc2/kernel/metrics");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("hist runq_wait[cpu0]"), std::string::npos);
  uint64_t count = 0, sum = 0;
  const KTrace& kt = sim.kernel().ktrace();
  for (int c = 0; c < kKtMaxCpus; ++c) {
    count += kt.runq_wait(c).count;
    sum += kt.runq_wait(c).sum;
  }
  EXPECT_EQ(ks->pr_runq_wait_count, count);
  EXPECT_EQ(ks->pr_runq_wait_sum, sum);
}

TEST(ObsWaitAccounting, DisarmedRecordsNothing) {
  Sim sim;
  EXPECT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sim.Start("/bin/spin").ok());
  }
  for (int i = 0; i < 200; ++i) {
    sim.kernel().Step();
  }
  const KTrace& kt = sim.kernel().ktrace();
  for (int c = 0; c < kKtMaxCpus; ++c) {
    EXPECT_EQ(kt.runq_wait(c).count, 0u);
    EXPECT_EQ(kt.steal_lat(c).count, 0u);
  }
}

// ---------------------------------------------------------------------------
// procd RPC spans.
// ---------------------------------------------------------------------------

TEST(ObsProcdSpans, CountersAlwaysOnAndRemoteTextMatchesLocalFile) {
  Sim sim;
  EXPECT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  auto pid = sim.Start("/bin/spin");
  ASSERT_TRUE(pid.ok());
  ProcdServer srv(sim.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));
  auto h = ProcHandle::Grab(rio, *pid, O_RDONLY);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Status().ok());
  ASSERT_TRUE(h->Psinfo().ok());

  // Spans disarmed: the dequeue-time counters still advance, and the text
  // fetched over the wire (kStats) is byte-identical to an immediately
  // following local read of /proc2/kernel/procd — the ordering contract.
  auto remote = rio.ProcdStats();
  ASSERT_TRUE(remote.ok());
  LocalProcIo lio(sim.kernel(), sim.controller());
  auto local = ProcdStats(lio);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*remote, *local);

  std::string bad;
  EXPECT_TRUE(ValidateMetricsText(*remote, &bad)) << "bad line: \"" << bad << "\"";
  EXPECT_NE(remote->find("counter procd_op[ioctl] count="), std::string::npos);
  EXPECT_NE(remote->find("counter procd_op[stats] count=1"), std::string::npos)
      << "the kStats frame counts itself (dequeue-time accounting)";
  EXPECT_NE(remote->find("counter procd_peer["), std::string::npos);
  EXPECT_NE(remote->find("pump_rounds="), std::string::npos);
  EXPECT_EQ(remote->find("hist procd_lat_ns"), std::string::npos)
      << "no latency histograms while spans are disarmed";

  const ProcdServer::OpSpan& span = srv.op_span(PdOp::kIoctl);
  EXPECT_GT(span.count, 0u);
  EXPECT_EQ(span.lat_ns.count, 0u);
}

TEST(ObsProcdSpans, ArmedSpansRecordLatencyAndParks) {
  Sim sim;
  EXPECT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  auto pid = sim.Start("/bin/spin");
  ASSERT_TRUE(pid.ok());
  ProcdServer srv(sim.kernel());
  srv.EnableSpans(true);
  RemoteProcIo rio(srv.Connect(Creds::Root()));
  auto h = ProcHandle::Grab(rio, *pid, O_RDWR);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Status().ok());
  // A blocking op that parks: PIOCSTOP stops the target, the wait half
  // parks until the pump's Step drives the lwp to its stop.
  ASSERT_TRUE(h->Stop().ok());
  ASSERT_TRUE(h->Run().ok());

  const ProcdServer::OpSpan& ioctl_span = srv.op_span(PdOp::kIoctl);
  EXPECT_GT(ioctl_span.count, 0u);
  EXPECT_GT(ioctl_span.lat_ns.count, 0u) << "armed spans record reply latency";
  EXPECT_GT(ioctl_span.bytes.count, 0u);
  EXPECT_GT(ioctl_span.parks, 0u) << "the PIOCSTOP wait half parked";
  EXPECT_GT(ioctl_span.park_ticks.count, 0u);

  auto text = rio.ProcdStats();
  ASSERT_TRUE(text.ok());
  std::string bad;
  EXPECT_TRUE(ValidateMetricsText(*text, &bad)) << "bad line: \"" << bad << "\"";
  EXPECT_NE(text->find("hist procd_lat_ns[ioctl]"), std::string::npos);
  EXPECT_NE(text->find("hist procd_park_ticks[ioctl]"), std::string::npos);
  EXPECT_NE(text->find("hist procd_parked_peers"), std::string::npos);
}

TEST(ObsProcdSpans, FileReadsProcdOffWithoutAServer) {
  Sim sim;
  LocalProcIo io(sim.kernel(), sim.controller());
  auto text = ProcdStats(io);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "procd off\n");
  // The off text still parses (tools' canary must not trip on it).
  EXPECT_TRUE(ValidateMetricsText(*text));
}

// ---------------------------------------------------------------------------
// The arming contract: spans + profiler armed vs disarmed is
// snapshot-identical over a 20-seed chaos sweep.
// ---------------------------------------------------------------------------

// ticks, instructions, console output: the whole observable outcome.
std::tuple<uint64_t, uint64_t, std::string> ObsChaosRun(uint64_t seed, bool armed) {
  Sim sim;
  EXPECT_TRUE(sim.InstallProgram("/bin/prog", kBurst).ok());
  auto pid = sim.Start("/bin/prog");
  EXPECT_TRUE(pid.ok());
  // Both runs carry a procd peer and issue the same RPC before the run, so
  // the only difference is the arming itself. The RPC happens before the
  // fault plan is armed — the plan includes kPeerDisconnect, which would
  // otherwise chaos-kill the peer mid-handshake.
  ProcdServer srv(sim.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));
  if (armed) {
    srv.EnableSpans(true);
    sim.kernel().SetTracing(/*ring=*/true, /*metrics=*/true);
    EXPECT_TRUE(sim.kernel().SetProfiling(sim.kernel().FindProc(*pid), 2).ok());
  }
  auto h = ProcHandle::Grab(rio, *pid, O_RDONLY);
  EXPECT_TRUE(h.ok());
  if (h.ok()) {
    EXPECT_TRUE(h->Status().ok());
  }
  sim.kernel().SetFaultPlan(LowRatePlan(seed));
  sim.kernel().SetChaosScheduler(seed);
  sim.kernel().RunUntil(
      [&]() { return sim.kernel().FindProc(*pid) == nullptr; }, 400'000);
  EXPECT_TRUE(sim.kernel().CheckInvariants().empty());
  return {sim.kernel().Ticks(), sim.kernel().counters().instructions,
          sim.ConsoleOutput()};
}

TEST(ObsNeutral, TwentySeedChaosSweepIdenticalArmedVsDisarmed) {
  for (uint64_t seed = 701; seed <= 720; ++seed) {
    auto plain = ObsChaosRun(seed, /*armed=*/false);
    auto armed = ObsChaosRun(seed, /*armed=*/true);
    EXPECT_EQ(std::get<0>(plain), std::get<0>(armed))
        << "seed " << seed << ": ticks diverged";
    EXPECT_EQ(std::get<1>(plain), std::get<1>(armed))
        << "seed " << seed << ": instruction count diverged";
    EXPECT_EQ(std::get<2>(plain), std::get<2>(armed))
        << "seed " << seed << ": console output diverged";
  }
}

}  // namespace
}  // namespace svr4
