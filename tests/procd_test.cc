// procd behavioral tests: RPC round-trips, remote tools producing
// byte-identical output to their local counterparts, peer death at every
// blocking point behaving exactly like a local close of every descriptor
// the peer held, the seeded PEER_DISCONNECT chaos sweep, and the windowed
// PIOCPSALL cursor under pid churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "svr4proc/kernel/faults.h"
#include "svr4proc/procd/client.h"
#include "svr4proc/procd/procd.h"
#include "svr4proc/procfs/procfs2.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/ps.h"
#include "svr4proc/tools/sim.h"
#include "svr4proc/tools/truss.h"

namespace svr4 {
namespace {

constexpr char kSpin[] = "spin: jmp spin\n";

constexpr char kCounter[] = R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
)";

// A short, branch-free burst of syscalls ending in exit — a deterministic
// truss subject.
constexpr char kSysBurst[] = R"(
      ldi r0, SYS_getpid
      sys
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, msg
      ldi r3, 6
      sys
      ldi r0, SYS_open
      ldi r1, nopath
      ldi r2, O_RDONLY
      ldi r3, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
msg:  .asciz "hello\n"
nopath: .asciz "/no/such"
)";

std::string FlatPath(Pid pid) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/proc/%05d", pid);
  return buf;
}

void ExpectInvariantsClean(Kernel& k, uint64_t seed) {
  auto violations = k.CheckInvariants();
  for (const auto& v : violations) {
    ADD_FAILURE() << "seed " << seed << ": invariant violated: " << v;
  }
}

// ---------------------------------------------------------------------------
// RPC round-trips.
// ---------------------------------------------------------------------------

TEST(ProcdRpc, HelloReportsPeerControllerPid) {
  Sim sim;
  ProcdServer srv(sim.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));
  auto pid = rio.PeerPid();
  ASSERT_TRUE(pid.ok());
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->native) << "a peer's descriptor table is a native proc";
  EXPECT_EQ(srv.PeerCount(), 1u);
}

TEST(ProcdRpc, OpenIoctlCloseMatchesLocal) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  ProcdServer srv(sim.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));

  auto fd = rio.Open(FlatPath(*pid), O_RDONLY);
  ASSERT_TRUE(fd.ok());
  PrPsinfo remote_ps;
  ASSERT_TRUE(rio.Ioctl(*fd, PIOCPSINFO, &remote_ps).ok());

  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid, O_RDONLY);
  ASSERT_TRUE(h.ok());
  auto local_ps = h->Psinfo();
  ASSERT_TRUE(local_ps.ok());
  EXPECT_EQ(std::memcmp(&remote_ps, &*local_ps, sizeof(PrPsinfo)), 0)
      << "the wire round-trip must not perturb a single byte";
  EXPECT_TRUE(rio.Close(*fd).ok());
}

TEST(ProcdRpc, RemoteHandleStopAndRun) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  ProcdServer srv(sim.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));

  auto h = ProcHandle::Grab(rio, *pid);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Stop().ok()) << "remote PIOCSTOP parks, completes on stop";
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped);
  auto st = h->Status();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pr_why, PR_REQUESTED);
  ASSERT_TRUE(h->Run().ok());
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning);
}

TEST(ProcdRpc, CtlStreamParksMidBatchAndRunsTail) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  ProcdServer srv(sim.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));

  char path[32];
  std::snprintf(path, sizeof(path), "/proc2/%d/ctl", *pid);
  auto fd = rio.Open(path, O_WRONLY);
  ASSERT_TRUE(fd.ok());

  // One batched write: PCSTOP (blocking — the server must park, not pump
  // inline) followed by PCSTRACE. The tail must run after the stop lands.
  std::vector<uint8_t> stream;
  auto put32 = [&](int32_t v) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    stream.insert(stream.end(), p, p + 4);
  };
  put32(PCSTOP);
  put32(PCSTRACE);
  SigSet sigs;
  sigs.Add(SIGUSR1);
  const uint8_t* sp = reinterpret_cast<const uint8_t*>(&sigs);
  stream.insert(stream.end(), sp, sp + sizeof(SigSet));

  auto wrote = rio.Write(*fd, stream.data(), stream.size());
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, static_cast<int64_t>(stream.size()))
      << "the reply reports the whole batched stream consumed";

  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->MainLwp()->state, LwpState::kStopped);
  EXPECT_TRUE(p->trace.sigtrace.Has(SIGUSR1))
      << "the post-park continuation executed the stream tail";
}

TEST(ProcdRpc, WstopOnNativeTargetIdlesToDeadlock) {
  Sim sim;
  Proc* tgt = sim.kernel().CreateNativeProc(Creds::Root(), "inert");
  ASSERT_NE(tgt, nullptr);
  ProcdServer srv(sim.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));
  auto h = ProcHandle::Grab(rio, tgt->pid);
  ASSERT_TRUE(h.ok());
  auto ws = h->WaitStop();
  ASSERT_FALSE(ws.ok());
  EXPECT_EQ(ws.error(), Errno::kEDEADLK)
      << "an idle simulation resolves a parked wait like local PIOCWSTOP";
}

// ---------------------------------------------------------------------------
// Byte-identical remote tools.
// ---------------------------------------------------------------------------

TEST(ProcdByteIdentical, TrussRemoteVsLocal) {
  // Two identical simulations. Sim A mirrors sim B's procd peer with an
  // extra native controller so both kernels assign the target the same pid.
  Sim a;
  Sim b;
  ASSERT_TRUE(a.InstallProgram("/bin/prog", kSysBurst).ok());
  ASSERT_TRUE(b.InstallProgram("/bin/prog", kSysBurst).ok());
  ASSERT_NE(a.NewController(Creds::Root(), "peer-standin"), nullptr);
  ProcdServer srv(b.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));

  Truss local(a.kernel(), a.controller());
  ASSERT_TRUE(local.TraceCommand("/bin/prog", {"prog"}).ok());
  Truss remote(rio);
  ASSERT_TRUE(remote.TraceCommand("/bin/prog", {"prog"}).ok());

  EXPECT_FALSE(local.report().empty());
  EXPECT_EQ(local.report(), remote.report())
      << "remote truss must reproduce the local report byte for byte";
}

TEST(ProcdByteIdentical, PsRemoteVsLocal) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(sim.Start("/bin/prog").ok());
  }
  ASSERT_TRUE(sim.Start("/bin/spin", {}, Creds::User(100, 10)).ok());
  for (int i = 0; i < 50; ++i) {
    sim.kernel().Step();
  }
  ProcdServer srv(sim.kernel());
  RemoteProcIo rio(srv.Connect(Creds::Root()));

  // Same kernel, so the peer's own controller row appears in both listings
  // identically; nothing in the remote path may shift a byte.
  auto local_fmt = PsFormat(sim.kernel(), sim.controller(), PsOptions{.full = true});
  ASSERT_TRUE(local_fmt.ok());
  auto remote_fmt = PsFormat(rio, PsOptions{.full = true});
  ASSERT_TRUE(remote_fmt.ok());
  EXPECT_EQ(*local_fmt, *remote_fmt);

  auto local_ls = LsProc(sim.kernel(), sim.controller());
  auto remote_ls = LsProc(rio);
  ASSERT_TRUE(local_ls.ok());
  ASSERT_TRUE(remote_ls.ok());
  EXPECT_EQ(*local_ls, *remote_ls);

  auto local_all = PsSnapshotAll(sim.kernel(), sim.controller());
  ASSERT_TRUE(local_all.ok());
  auto remote_all = PsSnapshotAll(rio, 1);
  ASSERT_TRUE(remote_all.ok());
  ASSERT_EQ(local_all->size(), remote_all->size());
  for (size_t i = 0; i < local_all->size(); ++i) {
    EXPECT_EQ(std::memcmp(&(*local_all)[i], &(*remote_all)[i], sizeof(PrPsinfo)), 0)
        << "PIOCPSALL row " << i << " differs over the wire";
  }
}

// ---------------------------------------------------------------------------
// Peer death at every blocking point == local close of every descriptor.
// ---------------------------------------------------------------------------

TEST(ProcdPeerDeath, MidWstopWaitReleasesLedger) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  ProcdServer srv(sim.kernel());
  auto conn = srv.Connect(Creds::Root());
  RemoteProcIo rio(conn);
  auto h = ProcHandle::Grab(rio, *pid);
  ASSERT_TRUE(h.ok());
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->trace.writable_opens, 1);

  // Park a PIOCWSTOP by hand (calling through the client would block the
  // test): the target never stops, so the wait stays parked across pumps.
  PdWriter w;
  w.Put<int32_t>(h->fd());
  w.Put<uint32_t>(PIOCWSTOP);
  w.Put<uint32_t>(0);
  w.Put<uint32_t>(0);
  PdWriteFrame(conn->c2s, PdOp::kIoctl, 0, /*tag=*/777, w.bytes());
  for (int i = 0; i < 5; ++i) {
    srv.Pump();
  }
  PdFrame f;
  EXPECT_FALSE(conn->s2c.NextFrame(&f)) << "the wait must be parked, not answered";

  // The peer dies mid-wait. Every effect of a local close must follow.
  conn->client_closed = true;
  srv.Pump();
  EXPECT_TRUE(conn->server_closed);
  EXPECT_EQ(srv.PeerCount(), 0u);
  EXPECT_EQ(p->trace.writable_opens, 0) << "peer death drains the ledger";
  EXPECT_EQ(p->trace.total_opens, 0);
  EXPECT_NE(p->MainLwp()->state, LwpState::kStopped);
  srv.Pump();  // a dead peer must be inert on later pumps
  ExpectInvariantsClean(sim.kernel(), 0);
}

TEST(ProcdPeerDeath, MidPollSubscriptionReleasesDescriptors) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kSpin).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  ProcdServer srv(sim.kernel());
  auto conn = srv.Connect(Creds::Root());
  RemoteProcIo rio(conn);
  auto fd = rio.Open(FlatPath(*pid), O_RDONLY);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(rio.Subscribe(*fd, POLLPRI).ok());

  // Park an infinite poll for a condition that never arrives.
  PdWriter w;
  w.Put<int64_t>(-1);
  w.Put<uint32_t>(1);
  w.Put<int32_t>(*fd);
  w.Put<int32_t>(POLLPRI);
  PdWriteFrame(conn->c2s, PdOp::kPoll, 0, /*tag=*/778, w.bytes());
  for (int i = 0; i < 5; ++i) {
    srv.Pump();
  }
  PdFrame f;
  EXPECT_FALSE(conn->s2c.NextFrame(&f)) << "the poll must be parked";

  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->trace.total_opens, 1);
  conn->client_closed = true;
  srv.Pump();
  EXPECT_EQ(p->trace.total_opens, 0)
      << "the subscribed descriptor closes with its peer";
  srv.Pump();
  ExpectInvariantsClean(sim.kernel(), 0);
}

TEST(ProcdPeerDeath, HoldingExclusiveOpenReleasesIt) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  ProcdServer srv(sim.kernel());
  auto conn = srv.Connect(Creds::Root());
  {
    RemoteProcIo rio(conn);
    auto h = ProcHandle::Grab(rio, *pid, O_RDWR | O_EXCL);
    ASSERT_TRUE(h.ok());
    Proc* p = sim.kernel().FindProc(*pid);
    ASSERT_NE(p, nullptr);
    ASSERT_TRUE(p->trace.excl);

    // Another controller is locked out while the peer lives.
    auto blocked = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
    ASSERT_FALSE(blocked.ok());
    EXPECT_EQ(blocked.error(), Errno::kEBUSY);

    conn->client_closed = true;  // the transport dies, handle still "open"
    srv.Pump();
  }
  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->trace.excl) << "O_EXCL dies with the peer, as with a close";
  auto excl = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid, O_RDWR | O_EXCL);
  EXPECT_TRUE(excl.ok()) << "the exclusive right is reclaimable";
  ExpectInvariantsClean(sim.kernel(), 0);
}

TEST(ProcdPeerDeath, SoleRunOnLastCloseDescriptorFiresIt) {
  Sim sim;
  ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
  auto pid = sim.Start("/bin/prog");
  ASSERT_TRUE(pid.ok());
  ProcdServer srv(sim.kernel());
  auto conn = srv.Connect(Creds::Root());
  RemoteProcIo rio(conn);
  auto h = ProcHandle::Grab(rio, *pid);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h->Stop().ok());
  SigSet sigs;
  sigs.Add(SIGUSR1);
  ASSERT_TRUE(h->SetSigTrace(sigs).ok());
  ASSERT_TRUE(h->SetRunOnLastClose(true).ok());

  Proc* p = sim.kernel().FindProc(*pid);
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->MainLwp()->state, LwpState::kStopped);

  // The transport dies without a single Close frame. The kernel must see
  // exactly what ProcClose.RunOnLastCloseClearsTracingAndResumes sees.
  conn->client_closed = true;
  srv.Pump();
  EXPECT_EQ(p->MainLwp()->state, LwpState::kRunning)
      << "run-on-last-close fires on peer death";
  EXPECT_TRUE(p->trace.sigtrace.Empty()) << "all tracing flags cleared";
  EXPECT_FALSE(p->trace.run_on_last_close);
  ExpectInvariantsClean(sim.kernel(), 0);
}

// ---------------------------------------------------------------------------
// The seeded PEER_DISCONNECT chaos sweep.
// ---------------------------------------------------------------------------

TEST(ProcdChaosSweep, PeerDisconnectKeepsInvariantsAcrossSeeds) {
  uint64_t chaos_hits = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    Sim sim;
    ASSERT_TRUE(sim.InstallProgram("/bin/prog", kCounter).ok());
    ASSERT_TRUE(sim.InstallProgram("/bin/spin", kSpin).ok());
    auto pid1 = sim.Start("/bin/prog");
    auto pid2 = sim.Start("/bin/spin");
    ASSERT_TRUE(pid1.ok());
    ASSERT_TRUE(pid2.ok());

    FaultPlan plan;
    plan.Arm(FaultSite::kPeerDisconnect,
             FaultRule{seed, /*num=*/1, /*den=*/8, /*max_hits=*/4});
    sim.kernel().SetFaultPlan(plan);
    sim.kernel().SetChaosScheduler(seed);

    ProcdServer srv(sim.kernel());
    std::vector<std::unique_ptr<RemoteProcIo>> peers;
    for (int i = 0; i < 3; ++i) {
      peers.push_back(std::make_unique<RemoteProcIo>(srv.Connect(Creds::Root())));
    }
    // Every operation may die with kEIO when the chaos site severs the
    // peer mid-exchange; the kernel must stay consistent regardless.
    for (size_t i = 0; i < peers.size(); ++i) {
      RemoteProcIo& rio = *peers[i];
      Pid target = (i + seed) % 2 == 0 ? *pid1 : *pid2;
      int oflags = (i + seed) % 3 == 0 ? (O_RDWR | O_EXCL) : O_RDWR;
      auto h = ProcHandle::Grab(rio, target, oflags);
      if (!h.ok()) {
        continue;
      }
      (void)h->Psinfo();
      (void)h->SetRunOnLastClose(true);
      (void)h->Stop();
      if ((i + seed) % 2 == 0) {
        (void)h->Run();
      }
      auto fd = rio.Open(FlatPath(target), O_RDONLY);
      if (fd.ok()) {
        (void)rio.Subscribe(*fd, POLLPRI | POLLHUP);
        PollFd pf{*fd, POLLPRI, 0};
        std::span<PollFd> span1(&pf, 1);
        (void)rio.PollFds(span1, 0);
      }
      rio.Poke();
    }
    // Drain: drop every surviving peer, then pump to full idle.
    for (auto& rio : peers) {
      rio->Hangup();
    }
    for (int i = 0; i < 10'000 && srv.Pump(); ++i) {
    }
    EXPECT_EQ(srv.PeerCount(), 0u) << "seed " << seed;
    chaos_hits += srv.stats().chaos_disconnects;
    ExpectInvariantsClean(sim.kernel(), seed);
  }
  EXPECT_GT(chaos_hits, 0u)
      << "a 1/8 rate over 100 seeds must sever at least one peer";
}

// ---------------------------------------------------------------------------
// Windowed PIOCPSALL under churn (the pr_next_pid cursor).
// ---------------------------------------------------------------------------

TEST(ProcdPsall, WindowedCursorUnderChurnAndPidWrapNeverSkipsOrDuplicates) {
  Sim sim;
  sim.kernel().SetMaxPid(64);
  std::vector<Pid> stable;
  std::vector<Proc*> victims;
  for (int i = 0; i < 12; ++i) {
    Proc* p = sim.kernel().CreateNativeProc(Creds::Root(), "keep");
    ASSERT_NE(p, nullptr);
    stable.push_back(p->pid);
  }
  for (int i = 0; i < 12; ++i) {
    Proc* p = sim.kernel().CreateNativeProc(Creds::Root(), "churn");
    ASSERT_NE(p, nullptr);
    victims.push_back(p);
  }

  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), 1, O_RDONLY);
  ASSERT_TRUE(h.ok());

  // Page with a tiny window; between pages, kill victims and create
  // replacements so the pid counter wraps and pids get reused mid-scan.
  std::vector<Pid> seen;
  PrPsAll all;
  all.pr_start_pid = 0;
  all.pr_limit = 4;
  int pages = 0;
  size_t next_victim = 0;
  for (; pages < 64; ++pages) {
    ASSERT_TRUE(h->io().Ioctl(h->fd(), PIOCPSALL, &all).ok());
    for (const auto& ps : all.pr_procs) {
      seen.push_back(ps.pr_pid);
    }
    if (all.pr_next_pid < 0) {
      break;
    }
    // Churn: two exits, two births, one Step to reap the zombies.
    for (int k = 0; k < 2 && next_victim < victims.size(); ++k) {
      sim.kernel().DestroyNativeProc(victims[next_victim++]);
    }
    sim.kernel().Step();
    (void)sim.kernel().CreateNativeProc(Creds::Root(), "newcomer");
    (void)sim.kernel().CreateNativeProc(Creds::Root(), "newcomer");
    all.pr_start_pid = all.pr_next_pid;
  }
  ASSERT_LT(pages, 64) << "the cursor must terminate";

  std::set<Pid> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), seen.size())
      << "no pid may be returned twice in one windowed scan";
  for (Pid pid : stable) {
    EXPECT_EQ(std::count(seen.begin(), seen.end(), pid), 1)
        << "pid " << pid << " alive across the whole scan must appear once";
  }
  ExpectInvariantsClean(sim.kernel(), 0);
}

}  // namespace
}  // namespace svr4
