// A performance monitor built on the proposed extensions: the resource
// usage interface (PIOCUSAGE) and the page data interface, "whereby a
// performance monitor can sample page-level referenced and modified
// information for a process on intervals at will."
#include <cstdio>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

int main() {
  Sim sim;
  // A worker with phased behaviour: a syscall-heavy phase, then a
  // memory-heavy phase sweeping a large bss buffer.
  (void)sim.InstallProgram("/bin/worker", R"(
      ; phase 1: 200 getpid calls
      ldi r8, 200
p1:   ldi r0, SYS_getpid
      sys
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz p1
      ; phase 2: sweep a 64K buffer forever
p2:   ldi r4, buf
      ldi r8, 16384       ; words
sweep:
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      addi r4, 4
      ldi r6, 1
      sub r8, r6
      cmpi r8, 0
      jnz sweep
      jmp p2
      .bss
buf:  .space 65536
  )");
  auto pid = sim.Start("/bin/worker");
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);

  std::printf("%-8s %10s %10s %8s %8s %10s\n", "sample", "utime", "stime", "sysc",
              "faults", "dirty-pages");
  PrUsage prev{};
  for (int sample = 1; sample <= 6; ++sample) {
    // Let the target run between samples.
    for (int i = 0; i < 20000; ++i) {
      sim.kernel().Step();
    }
    auto u = *h.Usage();
    auto pd = *h.PageData(/*clear=*/true);  // sample and reset ref/mod bits
    int dirty = 0;
    for (const auto& seg : pd.segs) {
      for (uint8_t pg : seg.pg) {
        if (pg & PG_MODIFIED) {
          ++dirty;
        }
      }
    }
    std::printf("%-8d %10llu %10llu %8llu %8llu %10d\n", sample,
                static_cast<unsigned long long>(u.pr_utime - prev.pr_utime),
                static_cast<unsigned long long>(u.pr_stime - prev.pr_stime),
                static_cast<unsigned long long>(u.pr_sysc - prev.pr_sysc),
                static_cast<unsigned long long>(u.pr_minf - prev.pr_minf), dirty);
    prev = u;
  }
  std::printf("\n(phase 1 shows syscall counts; phase 2 shows the dirty-page\n"
              " working set of the sweep — all sampled without stopping the\n"
              " process or altering its behaviour)\n");
  return 0;
}
