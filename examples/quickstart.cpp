// Quickstart: boot a simulated System V kernel, run a program, and poke at
// it through /proc — the 60-second tour of the library.
#include <cstdio>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/ps.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

int main() {
  // A complete system: kernel, VFS, /proc and /proc2 mounted, a root
  // controller process for us to act as.
  Sim sim;

  // Install and start a small program (assembled on the fly).
  auto image = sim.InstallProgram("/bin/counter", R"(
loop: ldi r4, var
      ldw r5, [r4]
      addi r5, 1
      stw r5, [r4]
      jmp loop
      .data
var:  .word 0
  )");
  if (!image.ok()) {
    std::printf("assembly failed\n");
    return 1;
  }
  auto pid = sim.Start("/bin/counter");
  std::printf("started /bin/counter as pid %d\n", *pid);

  // Let the simulation run for a while.
  for (int i = 0; i < 2000; ++i) {
    sim.kernel().Step();
  }

  // The process appears as a file in /proc (Figure 1 of the paper).
  auto listing = LsProc(sim.kernel(), sim.controller());
  std::printf("\n$ ls -l /proc\n%s", listing->c_str());

  // Open its process file and use the PIOC* operations.
  auto h = ProcHandle::Grab(sim.kernel(), sim.controller(), *pid);
  if (!h.ok()) {
    std::printf("grab failed\n");
    return 1;
  }

  // Read its memory at a symbol's virtual address: lseek + read on the
  // process file.
  uint32_t var_addr = *image->SymbolValue("var");
  uint32_t value = 0;
  (void)h->ReadMem(var_addr, &value, 4);
  std::printf("\ncounter value read through /proc: %u\n", value);

  // Stop it on demand and inspect the full status structure.
  (void)h->Stop();
  auto st = *h->Status();
  std::printf("stopped: why=%s pc=0x%x nlwp=%u utime=%llu\n",
              std::string(PrWhyName(st.pr_why)).c_str(), st.pr_reg.pc, st.pr_nlwp,
              static_cast<unsigned long long>(st.pr_utime));

  // Rewrite its memory while stopped, resume, and watch it continue from
  // the planted value.
  uint32_t planted = 1000000;
  (void)h->WriteMem(var_addr, &planted, 4);
  (void)h->Run();
  for (int i = 0; i < 500; ++i) {
    sim.kernel().Step();
  }
  (void)h->ReadMem(var_addr, &value, 4);
  std::printf("after planting 1000000 and resuming: %u\n", value);

  std::printf("\nquickstart OK\n");
  return 0;
}
