// kstat: samples the kernel event-trace ring and metrics registry through
// /proc itself — PIOCKSTAT for the structured registry snapshot,
// /proc2/kernel/metrics for the text rendering, and /proc2/kernel/trace for
// the raw event ring. The kernel's own observability travels over the same
// filesystem interface a debugger uses for processes.
#include <cstdio>

#include "svr4proc/procd/client.h"
#include "svr4proc/procd/procd.h"
#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

// The format canary: any /proc2/kernel/{metrics,procd} line that drifts
// from the `key value` grammar makes this tool fail, so renderer changes
// that would break downstream parsers are caught by the smoke run.
int ValidateOrDie(const char* what, const std::string& text) {
  std::string bad;
  if (!ValidateMetricsText(text, &bad)) {
    std::fprintf(stderr, "kstat: malformed %s line: \"%s\"\n", what, bad.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  Sim sim;
  // Arm both layers: the ring records individual events, the registry
  // aggregates counters and latency histograms.
  sim.kernel().SetTracing(/*ring=*/true, /*metrics=*/true);

  // Workload: a parent forks a syscall-happy child and waits for it.
  (void)sim.InstallProgram("/bin/forker", R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r8, 50
loop: ldi r0, SYS_getpid
      sys
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz loop
      ldi r0, SYS_exit
      ldi r1, 7
      sys
  )");
  auto pid = sim.Start("/bin/forker");
  (void)sim.kernel().RunToExit(*pid);

  // --- PIOCKSTAT: the structured registry snapshot -------------------------
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(),
                             sim.kernel().init_proc()->pid, O_RDONLY);
  auto ks = *h.Kstat();
  std::printf("kstat @ tick %llu: %llu instructions, %llu trace records "
              "(%llu dropped)\n",
              static_cast<unsigned long long>(ks.pr_ticks),
              static_cast<unsigned long long>(ks.pr_instructions),
              static_cast<unsigned long long>(ks.pr_trace_total),
              static_cast<unsigned long long>(ks.pr_trace_dropped));

  std::printf("\nevents:\n");
  for (uint32_t e = 0; e < kKtEventCount; ++e) {
    if (ks.pr_events[e] != 0) {
      std::printf("  %-16s %8llu\n", KtEventName(static_cast<KtEvent>(e)),
                  static_cast<unsigned long long>(ks.pr_events[e]));
    }
  }

  std::printf("\nsyscalls:             calls   errors  avg(ticks)\n");
  for (int s = 0; s < kPrKstatSyscalls; ++s) {
    const PrKstatSys& st = ks.pr_sys[s];
    if (st.pr_calls == 0) {
      continue;
    }
    std::printf("  %-16s %8llu %8llu %11.1f\n",
                std::string(SyscallName(s)).c_str(),
                static_cast<unsigned long long>(st.pr_calls),
                static_cast<unsigned long long>(st.pr_errors),
                static_cast<double>(st.pr_latsum) / static_cast<double>(st.pr_calls));
  }

  // --- Scheduler wait accounting (aggregated over CPUs) --------------------
  std::printf("\nscheduler waits:        count  avg(ticks)  max(ticks)\n");
  struct WaitRow {
    const char* name;
    unsigned long long count, sum, max;
  } wait_rows[] = {
      {"stop_wait", ks.pr_stop_wait_count, ks.pr_stop_wait_sum, ks.pr_stop_wait_max},
      {"runq_wait", ks.pr_runq_wait_count, ks.pr_runq_wait_sum, ks.pr_runq_wait_max},
      {"steal", ks.pr_steal_count, ks.pr_steal_sum, ks.pr_steal_max},
  };
  for (const WaitRow& w : wait_rows) {
    std::printf("  %-16s %8llu %11.1f %11llu\n", w.name, w.count,
                w.count != 0 ? static_cast<double>(w.sum) / static_cast<double>(w.count)
                             : 0.0,
                w.max);
  }

  // --- The event ring, read back as a file ---------------------------------
  auto t = *ReadTraceFile(sim.kernel(), sim.controller(), "/proc2/kernel/trace");
  std::printf("\nlast events of %u in the ring:\n", t.hdr.kt_nrec);
  size_t first = t.recs.size() > 12 ? t.recs.size() - 12 : 0;
  for (size_t i = first; i < t.recs.size(); ++i) {
    const KtRec& r = t.recs[i];
    std::printf("  tick=%-6llu pid=%-3d %-14s a0=0x%x a1=0x%x\n",
                static_cast<unsigned long long>(r.kt_tick), r.kt_pid,
                KtEventName(static_cast<KtEvent>(r.kt_event)), r.kt_a0, r.kt_a1);
  }

  // --- The registry, rendered as text by the kernel ------------------------
  LocalProcIo lio(sim.kernel(), sim.controller());
  auto metrics = *ReadTextFile(lio, "/proc2/kernel/metrics");
  if (int rc = ValidateOrDie("/proc2/kernel/metrics", metrics)) {
    return rc;
  }
  std::printf("\n/proc2/kernel/metrics (first 1024 of %zu bytes):\n%.1024s",
              metrics.size(), metrics.c_str());

  // --- Bulk population snapshot (PIOCPSALL) --------------------------------
  // One operation returns psinfo for every process in the system; at large
  // populations this replaces the open/PIOCPSINFO/close loop ps(1) runs.
  auto all = *h.PsinfoAll();
  int active = 0, zombies = 0;
  for (const PrPsinfo& ps : all) {
    if (ps.pr_state == 'Z') {
      ++zombies;
    } else {
      ++active;
    }
  }
  std::printf("\npopulation (PIOCPSALL): %zu processes, %d active, %d zombie\n",
              all.size(), active, zombies);

  // --- Block-engine counters (PIOCVMSTATS) ---------------------------------
  // The trace ring forces the instrumented interpreter; with tracing
  // disarmed the predecoded-block engine runs and its cache counters show
  // up both per-process (PIOCVMSTATS) and kernel-wide (the bb_* lines of
  // /proc2/kernel/metrics).
  sim.kernel().SetTracing(/*ring=*/false, /*metrics=*/false);
  // The spinner never exits: in free-running SMP mode a Step executes
  // thousands of instructions, and the sections below (PIOCVMSTATS,
  // PIOCPROF, /proc2/<pid>/prof) need the process alive to interrogate.
  (void)sim.InstallProgram("/bin/spin", R"(
loop: addi r1, 1
      jmp loop
  )");
  auto spin = sim.Start("/bin/spin");
  auto hs = *ProcHandle::Grab(sim.kernel(), sim.controller(), *spin, O_RDWR);
  for (int i = 0; i < 2000; ++i) {
    sim.kernel().Step();
  }
  auto vs = *hs.VmStats();
  std::printf("\nblock engine (pid %d): built=%llu hits=%llu misses=%llu "
              "invalidations=%llu fallbacks=%llu\n",
              *spin, static_cast<unsigned long long>(vs.pr_bb_built),
              static_cast<unsigned long long>(vs.pr_bb_hits),
              static_cast<unsigned long long>(vs.pr_bb_misses),
              static_cast<unsigned long long>(vs.pr_bb_invalidations),
              static_cast<unsigned long long>(vs.pr_bb_fallbacks));

  // --- The sampling profiler (PIOCPROF / /proc2/<pid>/prof) ----------------
  // Arm a 1-per-16-instruction pc sampler on the spinner, let it run, and
  // read the folded-stack dump back through the filesystem. Piping these
  // lines into flamegraph.pl is the whole flamegraph recipe.
  if (!hs.SetProf(/*period_log2=*/4).ok()) {
    std::fprintf(stderr, "kstat: PIOCPROF failed\n");
    return 1;
  }
  for (int i = 0; i < 2000; ++i) {
    sim.kernel().Step();
  }
  auto folded = *hs.Prof();
  std::printf("\nprofile of pid %d (folded stacks, 1/16 instructions):\n%s",
              *spin, folded.c_str());

  // --- procd RPC spans (/proc2/kernel/procd) -------------------------------
  // Attach a procd peer, arm spans, run a few remote operations, and read
  // the span registry back both ways: over the wire (kStats RPC) and as a
  // local /proc2 file. The two renders come from the same registry.
  ProcdServer srv(sim.kernel());
  srv.EnableSpans(true);
  RemoteProcIo rio(srv.Connect(Creds::Root()));
  auto rh = ProcHandle::Grab(rio, sim.kernel().init_proc()->pid, O_RDONLY);
  if (rh.ok()) {
    (void)rh->Status();
    (void)rh->Psinfo();
    (void)rh->Kstat();
  }
  auto span_text = rio.ProcdStats();
  if (!span_text.ok()) {
    std::fprintf(stderr, "kstat: kStats RPC failed\n");
    return 1;
  }
  if (int rc = ValidateOrDie("/proc2/kernel/procd", *span_text)) {
    return rc;
  }
  std::printf("\n/proc2/kernel/procd:\n%s", span_text->c_str());
  return 0;
}
