// kstat: samples the kernel event-trace ring and metrics registry through
// /proc itself — PIOCKSTAT for the structured registry snapshot,
// /proc2/kernel/metrics for the text rendering, and /proc2/kernel/trace for
// the raw event ring. The kernel's own observability travels over the same
// filesystem interface a debugger uses for processes.
#include <cstdio>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

int main() {
  Sim sim;
  // Arm both layers: the ring records individual events, the registry
  // aggregates counters and latency histograms.
  sim.kernel().SetTracing(/*ring=*/true, /*metrics=*/true);

  // Workload: a parent forks a syscall-happy child and waits for it.
  (void)sim.InstallProgram("/bin/forker", R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r8, 50
loop: ldi r0, SYS_getpid
      sys
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz loop
      ldi r0, SYS_exit
      ldi r1, 7
      sys
  )");
  auto pid = sim.Start("/bin/forker");
  (void)sim.kernel().RunToExit(*pid);

  // --- PIOCKSTAT: the structured registry snapshot -------------------------
  auto h = *ProcHandle::Grab(sim.kernel(), sim.controller(),
                             sim.kernel().init_proc()->pid, O_RDONLY);
  auto ks = *h.Kstat();
  std::printf("kstat @ tick %llu: %llu instructions, %llu trace records "
              "(%llu dropped)\n",
              static_cast<unsigned long long>(ks.pr_ticks),
              static_cast<unsigned long long>(ks.pr_instructions),
              static_cast<unsigned long long>(ks.pr_trace_total),
              static_cast<unsigned long long>(ks.pr_trace_dropped));

  std::printf("\nevents:\n");
  for (uint32_t e = 0; e < kKtEventCount; ++e) {
    if (ks.pr_events[e] != 0) {
      std::printf("  %-16s %8llu\n", KtEventName(static_cast<KtEvent>(e)),
                  static_cast<unsigned long long>(ks.pr_events[e]));
    }
  }

  std::printf("\nsyscalls:             calls   errors  avg(ticks)\n");
  for (int s = 0; s < kPrKstatSyscalls; ++s) {
    const PrKstatSys& st = ks.pr_sys[s];
    if (st.pr_calls == 0) {
      continue;
    }
    std::printf("  %-16s %8llu %8llu %11.1f\n",
                std::string(SyscallName(s)).c_str(),
                static_cast<unsigned long long>(st.pr_calls),
                static_cast<unsigned long long>(st.pr_errors),
                static_cast<double>(st.pr_latsum) / static_cast<double>(st.pr_calls));
  }

  // --- The event ring, read back as a file ---------------------------------
  auto t = *ReadTraceFile(sim.kernel(), sim.controller(), "/proc2/kernel/trace");
  std::printf("\nlast events of %u in the ring:\n", t.hdr.kt_nrec);
  size_t first = t.recs.size() > 12 ? t.recs.size() - 12 : 0;
  for (size_t i = first; i < t.recs.size(); ++i) {
    const KtRec& r = t.recs[i];
    std::printf("  tick=%-6llu pid=%-3d %-14s a0=0x%x a1=0x%x\n",
                static_cast<unsigned long long>(r.kt_tick), r.kt_pid,
                KtEventName(static_cast<KtEvent>(r.kt_event)), r.kt_a0, r.kt_a1);
  }

  // --- The registry, rendered as text by the kernel ------------------------
  char buf[1024];
  auto fd = sim.kernel().Open(sim.controller(), "/proc2/kernel/metrics", O_RDONLY);
  auto n = sim.kernel().Read(sim.controller(), *fd, buf, sizeof(buf) - 1);
  buf[n.ok() ? *n : 0] = 0;
  std::printf("\n/proc2/kernel/metrics (first %d bytes):\n%s", static_cast<int>(*n),
              buf);

  // --- Bulk population snapshot (PIOCPSALL) --------------------------------
  // One operation returns psinfo for every process in the system; at large
  // populations this replaces the open/PIOCPSINFO/close loop ps(1) runs.
  auto all = *h.PsinfoAll();
  int active = 0, zombies = 0;
  for (const PrPsinfo& ps : all) {
    if (ps.pr_state == 'Z') {
      ++zombies;
    } else {
      ++active;
    }
  }
  std::printf("\npopulation (PIOCPSALL): %zu processes, %d active, %d zombie\n",
              all.size(), active, zombies);

  // --- Block-engine counters (PIOCVMSTATS) ---------------------------------
  // The trace ring forces the instrumented interpreter; with tracing
  // disarmed the predecoded-block engine runs and its cache counters show
  // up both per-process (PIOCVMSTATS) and kernel-wide (the bb_* lines of
  // /proc2/kernel/metrics).
  sim.kernel().SetTracing(/*ring=*/false, /*metrics=*/false);
  (void)sim.InstallProgram("/bin/spin", R"(
      ldi r1, 0
      ldi r2, 200000
loop: addi r1, 1
      cmp r1, r2
      jlt loop
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )");
  auto spin = sim.Start("/bin/spin");
  auto hs = *ProcHandle::Grab(sim.kernel(), sim.controller(), *spin, O_RDWR);
  for (int i = 0; i < 2000; ++i) {
    sim.kernel().Step();
  }
  auto vs = *hs.VmStats();
  std::printf("\nblock engine (pid %d): built=%llu hits=%llu misses=%llu "
              "invalidations=%llu fallbacks=%llu\n",
              *spin, static_cast<unsigned long long>(vs.pr_bb_built),
              static_cast<unsigned long long>(vs.pr_bb_hits),
              static_cast<unsigned long long>(vs.pr_bb_misses),
              static_cast<unsigned long long>(vs.pr_bb_invalidations),
              static_cast<unsigned long long>(vs.pr_bb_fallbacks));
  return 0;
}
