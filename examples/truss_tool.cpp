// The truss(1) scenario: symbolic tracing of system calls, faults, and
// signals, including following a fork — "truss output can be startling."
#include <cstdio>

#include "svr4proc/tools/sim.h"
#include "svr4proc/tools/truss.h"

using namespace svr4;

int main() {
  Sim sim;

  // A program that exercises files, pipes, fork, and signals.
  (void)sim.InstallProgram("/bin/busy", R"(
      ; create a file and write to it
      ldi r0, SYS_creat
      ldi r1, fname
      ldi r2, 0x1A4
      sys
      mov r8, r0
      ldi r0, SYS_write
      mov r1, r8
      ldi r2, data
      ldi r3, 9
      sys
      ldi r0, SYS_close
      mov r1, r8
      sys
      ; fork a child that reads it back
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_wait
      sys
      ; open a file that does not exist (shows a symbolic errno)
      ldi r0, SYS_open
      ldi r1, missing
      ldi r2, O_RDONLY
      ldi r3, 0
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      ldi r0, SYS_open
      ldi r1, fname
      ldi r2, O_RDONLY
      ldi r3, 0
      sys
      mov r8, r0
      ldi r0, SYS_read
      mov r1, r8
      ldi r2, buf
      ldi r3, 9
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
      .data
fname:   .asciz "/tmp/t.dat"
missing: .asciz "/tmp/nonesuch"
data:    .asciz "nine char"
      .bss
buf:  .space 16
  )");

  auto pid = sim.Start("/bin/busy");
  std::printf("$ truss -f busy\n");
  Truss truss(sim.kernel(), sim.controller(), TrussOptions{.follow_fork = true});
  auto r = truss.Trace(*pid);
  if (!r.ok()) {
    std::printf("truss failed: %s\n", std::string(ErrnoName(r.error())).c_str());
    return 1;
  }
  std::printf("%s", truss.report().c_str());

  // Counts mode on a second run: the -c summary.
  auto pid2 = sim.Start("/bin/busy");
  Truss counts(sim.kernel(), sim.controller(),
               TrussOptions{.follow_fork = true, .counts_only = true});
  (void)counts.Trace(*pid2);
  std::printf("\n$ truss -cf busy\n%s", counts.CountsTable().c_str());

  // Tracing a crash: the fault and the fatal signal are reported.
  (void)sim.InstallProgram("/bin/crash", R"(
      ldi r1, 5
      ldi r2, 0
      div r1, r2
  )");
  auto pid3 = sim.Start("/bin/crash");
  Truss crash(sim.kernel(), sim.controller());
  (void)crash.Trace(*pid3);
  std::printf("\n$ truss crash\n%s", crash.report().c_str());
  return 0;
}
