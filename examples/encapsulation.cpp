// Complete encapsulation of the system call environment: an "obsolete"
// system call (SYS_otime) that the kernel refuses with ENOSYS is emulated
// entirely at user level by a controlling process — "one way in which
// obsolete facilities could be supported 'forever' without cluttering up
// the operating system."
#include <cstdio>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

int main() {
  Sim sim;
  (void)sim.InstallProgram("/bin/legacy", R"(
      ; a "legacy binary" that calls the long-removed otime syscall in a loop
      ldi r8, 3
loop: ldi r0, SYS_otime
      sys
      jcs failed
      ; print the result digit (emulator returns '0'+n)
      ldi r9, digit
      stb r0, [r9]
      ldi r0, SYS_write
      ldi r1, 1
      ldi r2, digit
      ldi r3, 1
      sys
      ldi r5, 1
      sub r8, r5
      cmpi r8, 0
      jnz loop
      ldi r0, SYS_exit
      ldi r1, 0
      sys
failed:
      ldi r0, SYS_exit
      ldi r1, 1
      sys
      .data
digit: .byte 0
  )");
  // Without the emulator the program fails immediately: prove it first.
  {
    auto probe = sim.Start("/bin/legacy");
    auto ec = sim.kernel().RunToExit(*probe);
    std::printf("without emulation: legacy binary exits %d (otime => ENOSYS)\n",
                WExitCode(*ec));
  }

  // Now the real run, armed before it executes anything.
  auto pid = sim.Start("/bin/legacy");

  // The emulator: trace entry and exit of SYS_otime; abort the call at
  // entry so the kernel never executes it; manufacture the return value at
  // exit.
  auto h = std::move(*ProcHandle::Grab(sim.kernel(), sim.controller(), *pid));
  SysSet set;
  set.Add(SYS_otime);
  (void)h.Stop();
  (void)h.SetSysEntry(set);
  (void)h.SetSysExit(set);
  (void)h.Run();

  int emulated = 0;
  for (;;) {
    auto w = h.WaitStop();
    if (!w.ok()) {
      break;  // the target exited
    }
    auto st = *h.Status();
    if (st.pr_why == PR_SYSENTRY && st.pr_what == SYS_otime) {
      PrRun r;
      r.pr_flags = PRSABORT;  // the kernel never sees the call
      (void)h.Run(r);
    } else if (st.pr_why == PR_SYSEXIT && st.pr_what == SYS_otime) {
      auto regs = *h.GetRegs();
      regs.r[0] = static_cast<uint32_t>('0' + (++emulated));  // emulated result
      regs.psr &= ~kPsrC;  // success, not the EINTR of the abort
      (void)h.SetRegs(regs);
      (void)h.Run();
    } else {
      (void)h.Run();
    }
  }

  std::printf("with emulation: legacy binary printed \"%s\" and exited cleanly\n",
              sim.ConsoleOutput().c_str());
  std::printf("emulated %d otime calls entirely at user level\n", emulated);
  return 0;
}
