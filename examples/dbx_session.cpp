// A scripted dbx-style session — "the standard debuggers sdb(1) and dbx(1)
// have been rewritten in SVR4 to use /proc". The whole session is a command
// script; the transcript is printed verbatim.
#include <cstdio>

#include "svr4proc/tools/dbx_shell.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

int main() {
  Sim sim;
  (void)sim.InstallProgram("/bin/app", R"(
main: call compute
      jmp main
compute:
      ldi r1, 0
      ldi r2, 1
loop: mov r3, r1
      add r3, r2
      mov r1, r2
      mov r2, r3
      ldi r4, result
      stw r3, [r4]
      cmpi r3, 1000000
      jlt loop
      ret
      .data
result: .word 0
  )");
  auto pid = sim.Start("/bin/app");
  for (int i = 0; i < 300; ++i) {
    sim.kernel().Step();
  }

  DbxShell dbx(sim.kernel(), sim.controller());
  if (!dbx.Attach(*pid).ok()) {
    std::printf("attach failed\n");
    return 1;
  }
  std::printf("attached to pid %d\n\n", *pid);
  std::printf("%s", dbx.Script(R"(status
dis compute 4
stop at loop if r3 > 500
cont
print result
where
assign result = 0
step 3
regs
syscall getpid
detach)").c_str());
  return 0;
}
