// The proposed restructuring in action: the hierarchical /proc2 with status
// files read by read(2), control effected by structured messages written to
// ctl files (batched: "several control operations in a single write"), and
// per-lwp subdirectories for the threads of a multi-threaded process.
#include <cstdio>
#include <cstring>

#include "svr4proc/procfs/procfs2.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

namespace {

// Appends one control message to a buffer.
template <typename T>
void Msg(std::vector<uint8_t>& buf, int32_t code, const T& operand) {
  buf.insert(buf.end(), reinterpret_cast<const uint8_t*>(&code),
             reinterpret_cast<const uint8_t*>(&code) + 4);
  buf.insert(buf.end(), reinterpret_cast<const uint8_t*>(&operand),
             reinterpret_cast<const uint8_t*>(&operand) + sizeof(T));
}
void Msg(std::vector<uint8_t>& buf, int32_t code) {
  buf.insert(buf.end(), reinterpret_cast<const uint8_t*>(&code),
             reinterpret_cast<const uint8_t*>(&code) + 4);
}

}  // namespace

int main() {
  Sim sim;
  // A three-threaded process: main lwp plus two workers.
  (void)sim.InstallProgram("/bin/threads", R"(
      ldi r0, SYS_lwp_create
      ldi r1, worker
      ldi r2, stack1+1024
      sys
      ldi r0, SYS_lwp_create
      ldi r1, worker
      ldi r2, stack2+1024
      sys
main: jmp main
worker:
      ; r1 = my lwpid (passed by lwp_create)
      mov r7, r1
w:    addi r6, 1
      jmp w
      .bss
stack1: .space 1024
stack2: .space 1024
  )");
  auto pid = sim.Start("/bin/threads");
  for (int i = 0; i < 2000; ++i) {
    sim.kernel().Step();
  }

  char base[32];
  std::snprintf(base, sizeof(base), "/proc2/%05d", *pid);
  Kernel& k = sim.kernel();
  Proc* me = sim.controller();

  // Walk the hierarchy.
  std::printf("$ ls %s\n  ", base);
  auto ents = k.ReadDir(me, base);
  for (const auto& e : *ents) {
    std::printf("%s ", e.name.c_str());
  }
  std::printf("\n$ ls %s/lwp\n  ", base);
  auto lwps = k.ReadDir(me, std::string(base) + "/lwp");
  for (const auto& e : *lwps) {
    std::printf("%s ", e.name.c_str());
  }
  std::printf("\n");

  // Read the status file — no ioctl anywhere.
  int sfd = *k.Open(me, std::string(base) + "/status", O_RDONLY);
  PrStatus st;
  (void)k.Read(me, sfd, &st, sizeof(st));
  std::printf("\nstatus: pid=%d nlwp=%u utime=%llu\n", st.pr_pid, st.pr_nlwp,
              static_cast<unsigned long long>(st.pr_utime));

  // One write, several control operations: stop, trace SIGUSR1, set
  // run-on-last-close.
  int ctl = *k.Open(me, std::string(base) + "/ctl", O_WRONLY);
  std::vector<uint8_t> batch;
  Msg(batch, PCSTOP);
  SigSet sigs;
  sigs.Add(SIGUSR1);
  Msg(batch, PCSTRACE, sigs);
  uint32_t rlc = PR_RLC;
  Msg(batch, PCSET, rlc);
  (void)k.Write(me, ctl, batch.data(), batch.size());
  std::printf("wrote %zu bytes = 3 control messages in ONE write(2)\n", batch.size());

  // Per-lwp registers through the lwp subdirectory.
  for (int lwp = 1; lwp <= 3; ++lwp) {
    char p[64];
    std::snprintf(p, sizeof(p), "%s/lwp/%d/lwpstatus", base, lwp);
    auto fd = k.Open(me, p, O_RDONLY);
    if (!fd.ok()) {
      continue;
    }
    PrLwpStatus ls;
    (void)k.Read(me, *fd, &ls, sizeof(ls));
    std::printf("lwp %d: pc=0x%x r6=%u r7=%u\n", ls.pr_lwpid, ls.pr_reg.pc,
                ls.pr_reg.r[6], ls.pr_reg.r[7]);
  }

  // Resume through the ctl file and let the workers run on.
  std::vector<uint8_t> run;
  uint32_t flags = 0, vaddr = 0;
  int32_t code = PCRUN;
  run.insert(run.end(), reinterpret_cast<uint8_t*>(&code),
             reinterpret_cast<uint8_t*>(&code) + 4);
  run.insert(run.end(), reinterpret_cast<uint8_t*>(&flags),
             reinterpret_cast<uint8_t*>(&flags) + 4);
  run.insert(run.end(), reinterpret_cast<uint8_t*>(&vaddr),
             reinterpret_cast<uint8_t*>(&vaddr) + 4);
  (void)k.Write(me, ctl, run.data(), run.size());
  std::printf("\nresumed via PCRUN message; hierarchy demo OK\n");
  return 0;
}
