// Controlling multiple processes: inherit-on-fork to seize children before
// their first instruction, and the breakpoint-lifting recipe that lets
// children run unmolested (paper, "Controlling Multiple Processes").
#include <cstdio>

#include "svr4proc/tools/proclib.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

int main() {
  Sim sim;
  auto image = sim.InstallProgram("/bin/forker", R"(
      ldi r0, SYS_fork
      sys
      cmpi r0, 0
      jz child
      ldi r0, SYS_wait
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
child:
      call helper
      ldi r0, SYS_exit
      ldi r1, 0
      sys
helper:
      ldi r9, 7
      ret
  )");

  // --- Part 1: take control of new processes ------------------------------
  {
    auto pid = sim.Start("/bin/forker");
    auto h = std::move(*ProcHandle::Grab(sim.kernel(), sim.controller(), *pid));
    (void)h.Stop();
    (void)h.SetInheritOnFork(true);
    SysSet exits;
    exits.Add(SYS_fork);
    (void)h.SetSysExit(exits);
    (void)h.Run();
    (void)h.WaitStop();  // parent stops on exit from fork
    Pid child = static_cast<Pid>(h.Status()->pr_reg.r[0]);
    auto hc = std::move(*ProcHandle::Grab(sim.kernel(), sim.controller(), child));
    auto cst = *hc.Status();
    std::printf("part 1: child %d seized at %s before its first instruction "
                "(fork returned %u there)\n",
                child, std::string(PrWhyName(cst.pr_why)).c_str(), cst.pr_reg.r[0]);
    (void)hc.Run();
    (void)h.Run();
    (void)sim.kernel().RunToExit(*pid);
  }

  // --- Part 2: let new processes run unmolested ---------------------------
  {
    auto pid = sim.Start("/bin/forker");
    auto h = std::move(*ProcHandle::Grab(sim.kernel(), sim.controller(), *pid));
    uint32_t helper = *image->SymbolValue("helper");
    (void)h.Stop();
    // Breakpoint in code the child will execute. Without the recipe the
    // child would inherit it and die on SIGTRAP.
    FltSet faults;
    faults.Add(FLTBPT);
    (void)h.SetFltTrace(faults);
    SysSet both;
    both.Add(SYS_fork);
    (void)h.SetSysEntry(both);
    (void)h.SetSysExit(both);
    uint8_t orig, bpt = kBreakpointByte;
    (void)h.ReadMem(helper, &orig, 1);
    (void)h.WriteMem(helper, &bpt, 1);
    (void)h.Run();

    (void)h.WaitStop();  // entry to fork: lift all the breakpoints
    (void)h.WriteMem(helper, &orig, 1);
    std::printf("part 2: lifted breakpoints at entry to fork\n");
    (void)h.Run();

    (void)h.WaitStop();  // exit from fork (parent): re-establish them
    (void)h.WriteMem(helper, &bpt, 1);
    std::printf("part 2: re-established breakpoints at exit from fork\n");
    (void)h.Run();

    auto ec = sim.kernel().RunToExit(*pid);
    std::printf("part 2: child ran helper() unmolested; parent exited %d\n",
                WExitCode(*ec));
  }
  return 0;
}
