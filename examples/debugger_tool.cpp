// A scripted debugger session: symbols via PIOCOPENM, breakpoints fielded as
// FLTBPT faults, conditional breakpoints, single-stepping, watchpoints, and
// grabbing a process that is already running.
#include <cstdio>

#include "svr4proc/tools/debugger.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

int main() {
  Sim sim;
  (void)sim.InstallProgram("/bin/fib", R"(
      ; iteratively computes fibonacci numbers into `current`
      ldi r1, 0          ; a
      ldi r2, 1          ; b
loop: mov r3, r1
      add r3, r2         ; r3 = a + b
      mov r1, r2
      mov r2, r3
      ldi r4, current
      stw r3, [r4]
      jmp loop
      .data
current: .word 0
  )");
  auto pid = sim.Start("/bin/fib");

  // Let it run; then grab it mid-flight, like sdb's new "grab an existing
  // process" capability.
  for (int i = 0; i < 500; ++i) {
    sim.kernel().Step();
  }

  Debugger dbg(sim.kernel(), sim.controller());
  if (!dbg.Attach(*pid).ok()) {
    std::printf("attach failed\n");
    return 1;
  }
  std::printf("attached to pid %d; symbols loaded via PIOCOPENM\n", *pid);

  uint32_t loop = *dbg.Lookup("loop");
  std::printf("\ndisassembly at `loop` (0x%x):\n%s", loop,
              dbg.Disassemble(loop, 5)->c_str());

  // Plain breakpoint.
  (void)dbg.SetBreakpoint("loop");
  auto stop = *dbg.Continue();
  std::printf("\nhit breakpoint at %s, fib=%u\n", stop.symbol.c_str(),
              *dbg.ReadWord("current"));

  // Conditional breakpoint: break when the value passes 10000. The false
  // hits are evaluated debugger-side — "breakpoints per second" is the
  // figure of merit the paper cites.
  (void)dbg.ClearBreakpoint(loop);
  (void)dbg.SetConditionalBreakpoint(loop, [](const PrStatus& st) {
    return st.pr_reg.r[3] > 10000;
  });
  stop = *dbg.Continue();
  std::printf("conditional breakpoint: first fib > 10000 is %u (%llu evaluations)\n",
              stop.status.pr_reg.r[3],
              static_cast<unsigned long long>(dbg.breakpoint_evaluations()));
  (void)dbg.ClearBreakpoint(loop);

  // Single-step a few instructions.
  std::printf("\nsingle stepping:\n");
  for (int i = 0; i < 4; ++i) {
    auto st = *dbg.StepInstruction();
    std::printf("  pc=0x%x (%s)\n", st.pr_reg.pc, dbg.SymbolAt(st.pr_reg.pc).c_str());
  }

  // Watchpoint on the data word (the proposed watchpoint facility).
  (void)dbg.WatchVariable("current", 4, WA_WRITE);
  stop = *dbg.Continue();
  std::printf("\nwatchpoint fired at %s (addr 0x%x) — next store to `current`\n",
              stop.symbol.c_str(), stop.addr);
  (void)dbg.UnwatchVariable("current");

  (void)dbg.Detach();
  std::printf("\ndetached; target runs free again\n");
  return 0;
}
