// The ps(1) scenario: several processes in different states, listed with
// one PIOCPSINFO per process — each line a true snapshot (paper,
// "Applications"). Also renders Figure 1's ls -l /proc.
#include <cstdio>

#include "svr4proc/tools/ps.h"
#include "svr4proc/tools/sim.h"

using namespace svr4;

int main() {
  Sim sim;

  (void)sim.InstallProgram("/bin/spinner", "spin: jmp spin\n");
  (void)sim.InstallProgram("/bin/sleeper", R"(
      ldi r0, SYS_sleep
      ldi r1, 1000000
      sys
      ldi r0, SYS_exit
      ldi r1, 0
      sys
  )");
  (void)sim.InstallProgram("/bin/worker", R"(
loop: ldi r0, SYS_getpid
      sys
      jmp loop
  )");

  auto p1 = sim.Start("/bin/spinner", {"spinner"});
  auto p2 = sim.Start("/bin/sleeper", {"sleeper", "-t", "3600"});
  auto p3 = sim.kernel().Spawn("/bin/worker", {"worker"}, Creds::User(1001, 100));
  (void)p3;

  // Run long enough for the sleeper to sleep and the others to burn time.
  for (int i = 0; i < 3000; ++i) {
    sim.kernel().Step();
  }
  // Stop the spinner so a 'T' state shows up.
  Proc* spin = sim.kernel().FindProc(*p1);
  (void)sim.kernel().PrStop(spin);
  (void)sim.kernel().PrWaitStop(spin);
  (void)p2;

  std::printf("$ ls -l /proc        # Figure 1 of the paper\n");
  std::printf("%s", LsProc(sim.kernel(), sim.controller())->c_str());

  std::printf("\n$ ps -ef\n");
  std::printf("%s", PsFormat(sim.kernel(), sim.controller(), PsOptions{.full = true})
                        ->c_str());

  std::printf(
      "\nNote: because ps runs with super-user privilege and opens the\n"
      "process files read-only, the opens always succeed and no interference\n"
      "is created for controlling and controlled processes.\n");
  return 0;
}
