#include "svr4proc/vm/vm.h"

#include <algorithm>
#include <cstring>

#include "svr4proc/isa/blocks.h"
#include "svr4proc/kernel/faults.h"
#include "svr4proc/kernel/ktrace.h"
#include "svr4proc/kernel/smp.h"

namespace svr4 {

// Out of line so the header can hold BlockCache by unique_ptr without
// seeing its definition.
AddressSpace::AddressSpace() = default;
AddressSpace::~AddressSpace() = default;

BlockCache& AddressSpace::blocks() {
  if (!bcache_) {
    bcache_ = std::make_unique<BlockCache>();
  }
  return *bcache_;
}

uint32_t AddressSpace::FlagsAt(uint32_t addr) const {
  const Mapping* m = FindMapping(addr);
  return m != nullptr ? m->flags : 0;
}

void AddressSpace::TlbFlush() const {
  ++tlb_gen_;
  ++code_gen_;  // anything that can move frames or change mappings also
                // invalidates predecoded blocks
  ++counters_.tlb_flushes;
  if (kt_ != nullptr) {
    kt_->Emit(KtEvent::kTlbFlush, kt_pid_, 0, tlb_gen_, 0);
  }
  if (smp_ != nullptr) {
    // The generation bump already invalidated every CPU's bank; the IPIs
    // model (and make observable) the interrupts a real kernel would need.
    smp_->Shootdown(this, kt_pid_);
  }
}

void AddressSpace::CodeShootdown() const {
  if (smp_ != nullptr) {
    smp_->Shootdown(this, kt_pid_);
  }
}

void AddressSpace::SetCpuCount(int n) {
  if (n < 1) {
    n = 1;
  }
  if (static_cast<size_t>(n) != tlb_banks_.size()) {
    tlb_banks_.assign(static_cast<size_t>(n),
                      std::array<TlbEntry, kTlbEntries>{});
  }
  tlb_ = tlb_banks_[0].data();  // the vector may have reallocated
}

bool AddressSpace::HasWritableSharedMapping() const {
  for (const auto& [start, m] : maps_) {
    if ((m.flags & MA_SHARED) != 0 && (m.flags & MA_WRITE) != 0) {
      return true;
    }
  }
  return false;
}

Result<PagePtr> AnonObject::GetPage(uint64_t page_index) {
  // Serialized: free-running SMP workers can materialize pages of a shared
  // object concurrently from different address spaces.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(page_index);
  if (it == pages_.end()) {
    it = pages_.emplace(page_index, std::make_shared<VmPage>()).first;
  }
  return it->second;
}

AddressSpace::Mapping* AddressSpace::FindMapping(uint32_t addr) {
  auto it = maps_.upper_bound(addr);
  if (it == maps_.begin()) {
    return nullptr;
  }
  --it;
  Mapping& m = it->second;
  if (addr >= m.start && addr < m.end()) {
    return &m;
  }
  return nullptr;
}

const AddressSpace::Mapping* AddressSpace::FindMapping(uint32_t addr) const {
  return const_cast<AddressSpace*>(this)->FindMapping(addr);
}

AddressSpace::Mapping* AddressSpace::GrowStackFor(uint32_t addr) {
  if (finj_ && finj_->Fire(FaultSite::kVmGrow)) {
    return nullptr;  // injected growth refusal: the access faults
  }
  // Find the nearest grows-down mapping above addr and extend it if the
  // fault is within the automatic growth window and the space is free.
  for (auto& [start, m] : maps_) {
    if (!m.grows_down || addr >= m.start) {
      continue;
    }
    uint32_t gap_pages = (m.start - PageAlignDown(addr)) / kPageSize;
    if (gap_pages == 0 || gap_pages > kMaxStackGrowPages) {
      continue;
    }
    uint32_t new_start = PageAlignDown(addr);
    // The grown region must not collide with another mapping.
    bool collides = false;
    for (auto& [s2, m2] : maps_) {
      if (&m2 == &m) {
        continue;
      }
      if (m2.start < m.start && m2.end() > new_start) {
        collides = true;
        break;
      }
    }
    if (collides) {
      return nullptr;
    }
    Mapping grown = std::move(m);
    maps_.erase(grown.start);
    grown.frames.insert(grown.frames.begin(), gap_pages, Frame{});
    grown.npages += gap_pages;
    grown.start = new_start;
    // obj_pgoff stays 0 for anon stacks; adjust for object-backed ones.
    auto [it, ok] = maps_.emplace(new_start, std::move(grown));
    (void)ok;
    TlbFlush();  // the frames vector was reallocated and reindexed
    return &it->second;
  }
  return nullptr;
}

Result<void> AddressSpace::Map(uint32_t start, uint32_t len, uint32_t ma_flags,
                               std::shared_ptr<VmObject> obj, uint64_t obj_offset,
                               std::string name, bool grows_down) {
  if (len == 0 || start % kPageSize != 0 || obj_offset % kPageSize != 0) {
    return Errno::kEINVAL;
  }
  if (finj_ && finj_->Fire(FaultSite::kVmMap)) {
    return Errno::kENOMEM;
  }
  uint32_t end = start + PageAlignUp(len);
  if (end <= start) {
    return Errno::kENOMEM;  // wraps
  }
  if (!obj) {
    return Errno::kEINVAL;
  }
  SVR4_RETURN_IF_ERROR(Unmap(start, end - start));

  Mapping m;
  m.start = start;
  m.npages = (end - start) / kPageSize;
  m.flags = ma_flags;
  if (obj->IsAnon()) {
    m.flags |= MA_ANON;
  }
  m.obj = std::move(obj);
  m.obj_pgoff = obj_offset / kPageSize;
  m.name = std::move(name);
  m.grows_down = grows_down;
  m.frames.resize(m.npages);
  maps_.emplace(start, std::move(m));
  TlbFlush();
  return Result<void>::Ok();
}

Result<void> AddressSpace::Unmap(uint32_t start, uint32_t len) {
  if (start % kPageSize != 0 || len == 0) {
    return Errno::kEINVAL;
  }
  uint32_t end = start + PageAlignUp(len);
  // Collect overlapping mappings; split partial overlaps.
  bool changed = false;
  std::vector<Mapping> to_insert;
  for (auto it = maps_.begin(); it != maps_.end();) {
    Mapping& m = it->second;
    if (m.end() <= start || m.start >= end) {
      ++it;
      continue;
    }
    // Left remainder.
    if (m.start < start) {
      Mapping left = m;
      left.npages = (start - m.start) / kPageSize;
      left.frames.resize(left.npages);
      left.grows_down = false;  // the low end is being cut; no longer a stack base
      to_insert.push_back(std::move(left));
    }
    // Right remainder.
    if (m.end() > end) {
      Mapping right = m;
      uint32_t skip = (end - m.start) / kPageSize;
      right.start = end;
      right.npages = m.npages - skip;
      right.obj_pgoff = m.obj_pgoff + skip;
      right.frames.assign(m.frames.begin() + skip, m.frames.end());
      to_insert.push_back(std::move(right));
    }
    it = maps_.erase(it);
    changed = true;
  }
  for (auto& m : to_insert) {
    uint32_t s = m.start;
    maps_.emplace(s, std::move(m));
  }
  if (changed) {
    TlbFlush();
  }
  return Result<void>::Ok();
}

Result<void> AddressSpace::Protect(uint32_t start, uint32_t len, uint32_t prot) {
  if (start % kPageSize != 0 || len == 0) {
    return Errno::kEINVAL;
  }
  uint32_t end = start + PageAlignUp(len);
  prot &= (MA_READ | MA_WRITE | MA_EXEC);
  // All pages must be mapped (mprotect semantics).
  for (uint32_t a = start; a < end; a += kPageSize) {
    if (!FindMapping(a)) {
      return Errno::kENOMEM;
    }
  }
  // Split mappings at the boundaries, then adjust protection flags.
  std::vector<std::pair<uint32_t, uint32_t>> cuts = {{start, end}};
  for (auto& [s, e] : cuts) {
    for (auto it = maps_.begin(); it != maps_.end();) {
      Mapping& m = it->second;
      if (m.end() <= s || m.start >= e) {
        ++it;
        continue;
      }
      if (m.start >= s && m.end() <= e) {
        m.flags = (m.flags & ~(MA_READ | MA_WRITE | MA_EXEC)) | prot;
        ++it;
        continue;
      }
      // Partial overlap: split into covered and uncovered pieces.
      Mapping whole = std::move(m);
      it = maps_.erase(it);
      uint32_t lo = std::max(whole.start, s);
      uint32_t hi = std::min(whole.end(), e);
      auto make_piece = [&whole](uint32_t ps, uint32_t pe) {
        Mapping piece = whole;
        uint32_t skip = (ps - whole.start) / kPageSize;
        piece.start = ps;
        piece.npages = (pe - ps) / kPageSize;
        piece.obj_pgoff = whole.obj_pgoff + skip;
        piece.frames.assign(whole.frames.begin() + skip,
                            whole.frames.begin() + skip + piece.npages);
        piece.grows_down = whole.grows_down && ps == whole.start;
        return piece;
      };
      if (whole.start < lo) {
        Mapping p = make_piece(whole.start, lo);
        maps_.emplace(p.start, std::move(p));
      }
      {
        Mapping p = make_piece(lo, hi);
        p.flags = (p.flags & ~(MA_READ | MA_WRITE | MA_EXEC)) | prot;
        maps_.emplace(p.start, std::move(p));
      }
      if (whole.end() > hi) {
        Mapping p = make_piece(hi, whole.end());
        maps_.emplace(p.start, std::move(p));
      }
      it = maps_.begin();  // restart; the map changed shape
    }
  }
  TlbFlush();
  return Result<void>::Ok();
}

Result<void> AddressSpace::SetBreak(uint32_t new_end) {
  for (auto& [start, m] : maps_) {
    if (!(m.flags & MA_BREAK)) {
      continue;
    }
    if (new_end < m.start) {
      return Errno::kEINVAL;
    }
    uint32_t want_pages = (PageAlignUp(new_end) - m.start) / kPageSize;
    if (want_pages == 0) {
      want_pages = 0;
    }
    if (want_pages > m.npages) {
      if (finj_ && finj_->Fire(FaultSite::kVmGrow)) {
        return Errno::kENOMEM;
      }
      // Refuse growth into a following mapping.
      auto next = maps_.upper_bound(m.start);
      if (next != maps_.end() && m.start + want_pages * kPageSize > next->second.start) {
        return Errno::kENOMEM;
      }
    }
    m.frames.resize(want_pages);
    m.npages = want_pages;
    TlbFlush();  // resize may have reallocated the frames vector
    return Result<void>::Ok();
  }
  return Errno::kENOMEM;  // no break mapping
}

Result<uint32_t> AddressSpace::BreakEnd() const {
  for (const auto& [start, m] : maps_) {
    if (m.flags & MA_BREAK) {
      return m.end();
    }
  }
  return Errno::kENOMEM;
}

Result<VmPage*> AddressSpace::EnsureFrame(Mapping& m, uint32_t page_index, bool for_write) {
  Frame& f = m.frames[page_index];
  const bool shared = (m.flags & MA_SHARED) != 0;
  if (!f.page) {
    if (shared) {
      auto pg = m.obj->GetPage(m.obj_pgoff + page_index);
      if (!pg.ok()) {
        return pg.error();
      }
      f.page = *pg;
      f.owned = false;
      // Anonymous shared memory zero-fills; file-backed pages pay I/O.
      if (m.obj->IsAnon()) {
        ++counters_.minor_faults;
      } else {
        ++counters_.major_faults;
      }
    } else if (m.obj->IsAnon()) {
      // Private anonymous memory: private zero page, no object involvement.
      f.page = std::make_shared<VmPage>();
      f.owned = true;
      ++counters_.minor_faults;
    } else {
      auto pg = m.obj->GetPage(m.obj_pgoff + page_index);
      if (!pg.ok()) {
        return pg.error();
      }
      f.page = *pg;
      f.owned = false;  // still the object's page; copy on write
      ++counters_.major_faults;
    }
  }
  if (for_write && !shared) {
    // Copy-on-write: the frame may be the object's page or shared with a
    // forked relative.
    if (!f.owned || f.page.use_count() > 1) {
      auto copy = std::make_shared<VmPage>(*f.page);
      f.page = std::move(copy);
      f.owned = true;
      ++counters_.minor_faults;  // resolved from an in-memory page
      if (kt_ != nullptr) {
        kt_->Emit(KtEvent::kCowBreak, kt_pid_, 0, m.start + page_index * kPageSize, 0);
      }
      TlbFlush();  // cached translations may point at the replaced page
    }
  }
  return f.page.get();
}

const Watch* AddressSpace::WatchHit(uint32_t addr, uint32_t len, Access kind) const {
  int want = kind == Access::kRead ? WA_READ : kind == Access::kWrite ? WA_WRITE : WA_EXEC;
  for (const auto& w : watches_) {
    if ((w.wflags & want) == 0) {
      continue;
    }
    uint64_t a_end = static_cast<uint64_t>(addr) + len;
    uint64_t w_end = static_cast<uint64_t>(w.vaddr) + w.size;
    if (addr < w_end && w.vaddr < a_end) {
      return &w;
    }
  }
  return nullptr;
}

std::optional<MemFault> AddressSpace::AccessCommon(uint32_t addr, void* rbuf, const void* wbuf,
                                                   uint32_t len, Access kind) {
  // Watchpoints fire with byte granularity; the "details of recovering from
  // machine faults taken due to references to unwatched data that happens to
  // fall in the same page as watched data" are below this simulation's level
  // of abstraction — unwatched accesses simply proceed.
  if (watch_active_) {
    if (const Watch* w = WatchHit(addr, len, kind)) {
      return MemFault{FLTWATCH, std::max(addr, w->vaddr)};
    }
  }

  uint32_t need = kind == Access::kWrite ? MA_WRITE : kind == Access::kExec ? MA_EXEC : MA_READ;
  uint32_t done = 0;
  while (done < len) {
    uint32_t a = addr + done;
    Mapping* m = FindMapping(a);
    if (!m) {
      m = GrowStackFor(a);
      if (!m) {
        return MemFault{FLTBOUNDS, a};
      }
    }
    ++counters_.slow_lookups;
    if ((m->flags & need) == 0) {
      return MemFault{FLTACCESS, a};
    }
    if (kind == Access::kWrite && (m->flags & MA_EXEC) != 0) {
      ++code_gen_;  // self-modifying code: drop predecoded blocks
      CodeShootdown();
    }
    // Copy page-at-a-time within this mapping without re-resolving it.
    uint32_t m_end = m->end();
    while (done < len) {
      a = addr + done;
      if (a >= m_end || a < m->start) {
        break;  // left the mapping (or wrapped); resolve again
      }
      uint32_t page_index = (a - m->start) / kPageSize;
      auto page = EnsureFrame(*m, page_index, kind == Access::kWrite);
      if (!page.ok()) {
        return MemFault{FLTBOUNDS, a};
      }
      uint32_t in_page = a & (kPageSize - 1);
      uint32_t chunk = std::min(len - done, kPageSize - in_page);
      Frame& f = m->frames[page_index];
      if (kind == Access::kWrite) {
        std::memcpy((*page)->bytes.data() + in_page, static_cast<const uint8_t*>(wbuf) + done,
                    chunk);
        f.pg |= PG_REFERENCED | PG_MODIFIED;
      } else {
        std::memcpy(static_cast<uint8_t*>(rbuf) + done, (*page)->bytes.data() + in_page, chunk);
        f.pg |= PG_REFERENCED;
      }
      TlbFill(*m, page_index, f);
      done += chunk;
    }
  }
  return std::nullopt;
}

namespace {

// memcpy with a size-specialised dispatch: the TLB hit paths see 1/2/4/8-byte
// accesses almost exclusively, and fixed-size copies compile to single
// load/store pairs where a variable-length memcpy pays its dispatch cost on
// every instruction.
inline void CopySmall(void* dst, const void* src, uint32_t n) {
  switch (n) {
    case 1:
      std::memcpy(dst, src, 1);
      break;
    case 2:
      std::memcpy(dst, src, 2);
      break;
    case 4:
      std::memcpy(dst, src, 4);
      break;
    case 8:
      std::memcpy(dst, src, 8);
      break;
    default:
      std::memcpy(dst, src, n);
      break;
  }
}

}  // namespace

void AddressSpace::TlbFill(const Mapping& m, uint32_t page_index, Frame& f) {
  if (!TlbActive()) {
    return;
  }
  uint32_t vpn = (m.start >> kPageShift) + page_index;
  TlbEntry& e = tlb_[vpn & (kTlbEntries - 1)];
  e.vpn = vpn;
  e.gen = tlb_gen_;
  e.flags = m.flags & (MA_READ | MA_WRITE | MA_EXEC);
  // A store may go in place only when no COW copy would be needed: the
  // mapping is bona-fide shared memory, or this frame already holds a
  // private copy nobody else references.
  e.write_ok = (m.flags & MA_WRITE) != 0 &&
               ((m.flags & MA_SHARED) != 0 || (f.owned && f.page.use_count() == 1));
  e.page = f.page.get();
  e.frame = &f;
}

std::optional<MemFault> AddressSpace::MemRead(uint32_t addr, void* buf, uint32_t len,
                                              Access kind) {
  // TLB fast path: single-page access whose translation is cached with the
  // required permission.
  if (TlbActive() && len != 0 && ((addr & (kPageSize - 1)) + len) <= kPageSize) {
    uint32_t vpn = addr >> kPageShift;
    TlbEntry& e = tlb_[vpn & (kTlbEntries - 1)];
    uint32_t need = kind == Access::kExec ? MA_EXEC : MA_READ;
    if (e.gen == tlb_gen_ && e.vpn == vpn && (e.flags & need) != 0) {
      ++counters_.tlb_hits;
      CopySmall(buf, e.page->bytes.data() + (addr & (kPageSize - 1)), len);
      e.frame->pg |= PG_REFERENCED;
      return std::nullopt;
    }
    ++counters_.tlb_misses;
  }
  return AccessCommon(addr, buf, nullptr, len, kind);
}

std::optional<MemFault> AddressSpace::MemWrite(uint32_t addr, const void* buf, uint32_t len) {
  if (TlbActive() && len != 0 && ((addr & (kPageSize - 1)) + len) <= kPageSize) {
    uint32_t vpn = addr >> kPageShift;
    TlbEntry& e = tlb_[vpn & (kTlbEntries - 1)];
    if (e.gen == tlb_gen_ && e.vpn == vpn && e.write_ok) {
      ++counters_.tlb_hits;
      if (e.flags & MA_EXEC) {
        ++code_gen_;  // store into executable memory: drop predecoded blocks
        CodeShootdown();
      }
      CopySmall(e.page->bytes.data() + (addr & (kPageSize - 1)), buf, len);
      e.frame->pg |= PG_REFERENCED | PG_MODIFIED;
      return std::nullopt;
    }
    ++counters_.tlb_misses;
  }
  return AccessCommon(addr, nullptr, buf, len, Access::kWrite);
}

uint32_t AddressSpace::FetchWindow(uint32_t addr, void* buf, uint32_t len) {
  // Watch-active address spaces must take the byte-exact path so an
  // over-read never trips an exec watchpoint on bytes past the instruction.
  if (!TlbActive() || len == 0) {
    return 0;
  }
  uint32_t in_page = addr & (kPageSize - 1);
  uint32_t avail = std::min(len, kPageSize - in_page);
  uint32_t vpn = addr >> kPageShift;
  TlbEntry& e = tlb_[vpn & (kTlbEntries - 1)];
  if (e.gen != tlb_gen_ || e.vpn != vpn || (e.flags & MA_EXEC) == 0) {
    ++counters_.tlb_misses;
    // Prime the entry with one slow-path byte fetch; on fault let the caller
    // take the exact path so the fault address comes out right.
    uint8_t probe = 0;
    if (AccessCommon(addr, &probe, nullptr, 1, Access::kExec)) {
      return 0;
    }
    if (e.gen != tlb_gen_ || e.vpn != vpn || (e.flags & MA_EXEC) == 0) {
      return 0;  // not cacheable right now (e.g. TLB disabled mid-call)
    }
  } else {
    ++counters_.tlb_hits;
  }
  const uint8_t* src = e.page->bytes.data() + in_page;
  if (avail == 16) {
    // The interpreter's full window: one fixed-size copy (two 8-byte moves)
    // instead of a variable-length memcpy on every instruction.
    std::memcpy(buf, src, 16);
  } else {
    std::memcpy(buf, src, avail);
  }
  e.frame->pg |= PG_REFERENCED;
  return avail;
}

void AddressSpace::SetTlbEnabled(bool on) {
  if (tlb_enabled_ == on) {
    return;
  }
  tlb_enabled_ = on;
  TlbFlush();
}

Result<void> AddressSpace::AsFault(uint32_t addr, uint32_t len, bool for_write) {
  uint32_t end_addr = addr + len;
  for (uint32_t a = PageAlignDown(addr); a < end_addr; a += kPageSize) {
    Mapping* m = FindMapping(a);
    if (!m) {
      return Errno::kEFAULT;
    }
    uint32_t page_index = (a - m->start) / kPageSize;
    bool want_write = for_write && !(m->flags & MA_SHARED);
    auto page = EnsureFrame(*m, page_index, want_write);
    if (!page.ok()) {
      return page.error();
    }
  }
  return Result<void>::Ok();
}

Result<int64_t> AddressSpace::PrRead(uint32_t addr, std::span<uint8_t> buf) {
  if (buf.empty()) {
    return int64_t{0};
  }
  uint64_t done = 0;
  while (done < buf.size()) {
    uint32_t a = addr + static_cast<uint32_t>(done);
    Mapping* m = FindMapping(a);
    if (!m) {
      if (done == 0) {
        return Errno::kEIO;  // offset in an unmapped area
      }
      break;  // truncate at the boundary
    }
    ++counters_.slow_lookups;
    // Copy page-at-a-time to the end of this mapping without re-resolving.
    while (done < buf.size()) {
      a = addr + static_cast<uint32_t>(done);
      if (a >= m->end() || a < m->start) {
        break;
      }
      uint32_t page_index = (a - m->start) / kPageSize;
      auto page = EnsureFrame(*m, page_index, /*for_write=*/false);
      if (!page.ok()) {
        return static_cast<int64_t>(done);
      }
      uint32_t in_page = a & (kPageSize - 1);
      uint32_t chunk = static_cast<uint32_t>(
          std::min<uint64_t>(buf.size() - done, kPageSize - in_page));
      std::memcpy(buf.data() + done, (*page)->bytes.data() + in_page, chunk);
      m->frames[page_index].pg |= PG_REFERENCED;
      done += chunk;
    }
  }
  return static_cast<int64_t>(done);
}

Result<int64_t> AddressSpace::PrWrite(uint32_t addr, std::span<const uint8_t> buf) {
  if (buf.empty()) {
    return int64_t{0};
  }
  uint64_t done = 0;
  while (done < buf.size()) {
    uint32_t a = addr + static_cast<uint32_t>(done);
    Mapping* m = FindMapping(a);
    if (!m) {
      if (done == 0) {
        return Errno::kEIO;
      }
      break;  // writes are truncated at the boundary too
    }
    ++counters_.slow_lookups;
    if (m->flags & MA_EXEC) {
      // A controller writing text (planting a breakpoint, patching code)
      // must invalidate predecoded blocks even when the COW copy was
      // already private and no TLB flush happens. If the target is
      // mid-quantum on another CPU, the shootdown IPI is what (observably)
      // forces it off the stale code.
      ++code_gen_;
      CodeShootdown();
    }
    while (done < buf.size()) {
      a = addr + static_cast<uint32_t>(done);
      if (a >= m->end() || a < m->start) {
        break;
      }
      uint32_t page_index = (a - m->start) / kPageSize;
      // Copy-on-write for private mappings — planting a breakpoint in shared
      // text never corrupts other processes or the executable file. Writes to
      // bona-fide shared memory go through to the object.
      auto page = EnsureFrame(*m, page_index, /*for_write=*/true);
      if (!page.ok()) {
        return static_cast<int64_t>(done);
      }
      uint32_t in_page = a & (kPageSize - 1);
      uint32_t chunk = static_cast<uint32_t>(
          std::min<uint64_t>(buf.size() - done, kPageSize - in_page));
      std::memcpy((*page)->bytes.data() + in_page, buf.data() + done, chunk);
      m->frames[page_index].pg |= PG_REFERENCED | PG_MODIFIED;
      done += chunk;
    }
  }
  return static_cast<int64_t>(done);
}

AddressSpacePtr AddressSpace::Clone() const {
  auto child = std::make_shared<AddressSpace>();
  child->maps_ = maps_;  // shares PagePtr frames: COW via use_count
  child->watches_ = watches_;
  child->watch_active_ = watch_active_;
  child->tlb_enabled_ = tlb_enabled_;
  child->finj_ = finj_;
  child->smp_ = smp_;
  if (tlb_banks_.size() > 1) {
    child->SetCpuCount(static_cast<int>(tlb_banks_.size()));
  }
  // Our frames just became COW-shared with the child: cached write-in-place
  // entries are no longer valid.
  TlbFlush();
  return child;
}

Result<void> AddressSpace::AddWatch(const Watch& w) {
  if (w.size == 0 || (w.wflags & (WA_READ | WA_WRITE | WA_EXEC)) == 0) {
    return Errno::kEINVAL;
  }
  if (!Mapped(w.vaddr)) {
    return Errno::kEFAULT;
  }
  watches_.push_back(w);
  watch_active_ = true;
  TlbFlush();
  return Result<void>::Ok();
}

Result<void> AddressSpace::ClearWatch(uint32_t vaddr) {
  auto before = watches_.size();
  watches_.erase(std::remove_if(watches_.begin(), watches_.end(),
                                [vaddr](const Watch& w) { return w.vaddr == vaddr; }),
                 watches_.end());
  watch_active_ = !watches_.empty();
  TlbFlush();
  return before != watches_.size() ? Result<void>::Ok() : Result<void>(Errno::kESRCH);
}

void AddressSpace::ClearAllWatches() {
  watches_.clear();
  watch_active_ = false;
  TlbFlush();
}

std::vector<MappingInfo> AddressSpace::Maps() const {
  std::vector<MappingInfo> out;
  out.reserve(maps_.size());
  for (const auto& [start, m] : maps_) {
    MappingInfo info;
    info.vaddr = m.start;
    info.size = m.npages * kPageSize;
    info.offset = m.obj_pgoff * kPageSize;
    info.flags = m.flags;
    info.name = m.name;
    out.push_back(std::move(info));
  }
  return out;
}

uint32_t AddressSpace::VirtualSize() const {
  uint32_t total = 0;
  for (const auto& [start, m] : maps_) {
    total += m.npages * kPageSize;
  }
  return total;
}

uint32_t AddressSpace::ResidentPages() const {
  uint32_t n = 0;
  for (const auto& [start, m] : maps_) {
    for (const auto& f : m.frames) {
      if (f.page) {
        ++n;
      }
    }
  }
  return n;
}

bool AddressSpace::Mapped(uint32_t addr) const { return FindMapping(addr) != nullptr; }

std::shared_ptr<VmObject> AddressSpace::ObjectAt(uint32_t addr) const {
  const Mapping* m = FindMapping(addr);
  if (!m || m->obj->IsAnon()) {
    return nullptr;
  }
  return m->obj;
}

std::vector<PageDataSeg> AddressSpace::SamplePageData(bool clear) {
  std::vector<PageDataSeg> out;
  for (auto& [start, m] : maps_) {
    PageDataSeg seg;
    seg.vaddr = m.start;
    seg.pg.reserve(m.npages);
    for (auto& f : m.frames) {
      seg.pg.push_back(f.pg);
      if (clear) {
        f.pg = 0;
      }
    }
    out.push_back(std::move(seg));
  }
  return out;
}

}  // namespace svr4
