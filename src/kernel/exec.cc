// Process lifecycle: fork/vfork, exec (image loading: the mapping structure
// of Figure 2), exit, and reaping.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "svr4proc/kernel/core.h"
#include "svr4proc/kernel/kernel.h"

namespace svr4 {
namespace {

// User address-space layout.
constexpr uint32_t kStackTop = 0xBFFFE000;
constexpr uint32_t kInitialStackPages = 16;

std::string Basename(const std::string& path) {
  auto pos = path.rfind('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

}  // namespace

Result<Pid> Kernel::ForkCommon(Lwp* parent_lwp, bool vfork) {
  Proc* parent = parent_lwp->proc;
  Proc* child = AllocProc(parent->name, parent->creds, parent);
  if (child == nullptr) {
    return Errno::kEAGAIN;  // pid space exhausted
  }
  child->psargs = parent->psargs;
  child->umask = parent->umask;
  child->nice = parent->nice;
  child->exe = parent->exe;
  child->setid = parent->setid;

  if (vfork) {
    // vfork: "the address space is shared between parent and child until the
    // child exits or execs."
    child->as = parent->as;
    child->is_vfork_child = true;
  } else {
    child->as = parent->as ? parent->as->Clone() : nullptr;
    if (child->as) {
      child->as->SetKtrace(&kt_, child->pid);
      child->as->SetSmp(&smp_);
      child->as->SetCpuCount(smp_.ncpus());
    }
  }

  // Descriptors are shared open-file objects.
  child->fds = parent->fds;
  for (auto& of : child->fds) {
    if (of) {
      ++of->refs;
    }
  }

  // Signal dispositions are inherited; pending signals are not.
  child->sig.actions = parent->sig.actions;
  child->sig.hold = parent->sig.hold;

  // /proc: "the child inherits all of the parent's tracing flags" when
  // inherit-on-fork is set; otherwise it starts with all tracing cleared.
  if (parent->trace.inherit_on_fork) {
    child->trace.sigtrace = parent->trace.sigtrace;
    child->trace.flttrace = parent->trace.flttrace;
    child->trace.sysentry = parent->trace.sysentry;
    child->trace.sysexit = parent->trace.sysexit;
    child->trace.inherit_on_fork = true;
    child->trace.run_on_last_close = parent->trace.run_on_last_close;
  }

  // The child's first thread of control is a copy of the forking lwp,
  // resumed at the fork return with value 0. It passes through the syscall
  // exit path so that, when exit from fork is traced, "the child stopped
  // before executing any user-level code" and full control is possible.
  auto cl = std::make_unique<Lwp>();
  cl->lwpid = 1;
  child->next_lwpid = 1;
  cl->proc = child;
  cl->regs = parent_lwp->regs;
  cl->fpregs = parent_lwp->fpregs;
  cl->cur_syscall = parent_lwp->cur_syscall;
  cl->sys_entry_tick = parent_lwp->sys_entry_tick;  // child fork-exit latency
  Lwp* craw = cl.get();
  child->lwps.push_back(std::move(cl));
  // Enroll before FinishSyscall: a traced fork-exit stops the lwp, and the
  // stop transition must find it on the run queue to take it off.
  EnrollLwp(craw);
  craw->in_syscall = true;
  craw->sys_phase = SysPhase::kExec;  // FinishSyscall runs the exit-side path
  FinishSyscall(craw, SysResult::Ok(0));

  kt_.Emit(KtEvent::kFork, parent->pid, parent_lwp->lwpid,
           static_cast<uint32_t>(child->pid), vfork ? 1 : 0);
  return child->pid;
}

Kernel::SysResult Kernel::SysFork(Lwp* lwp, bool vfork) {
  if (!vfork) {
    auto pid = ForkCommon(lwp, false);
    if (!pid.ok()) {
      return SysResult::Fail(pid.error());
    }
    return SysResult::Ok(static_cast<uint32_t>(*pid));
  }
  // vfork: create on the first pass, then sleep until the child execs or
  // exits.
  if (lwp->vfork_child == 0) {
    auto pid = ForkCommon(lwp, true);
    if (!pid.ok()) {
      return SysResult::Fail(pid.error());
    }
    lwp->vfork_child = *pid;
  }
  Proc* child = FindProc(lwp->vfork_child);
  if (child == nullptr || child->vfork_done) {
    return SysResult::Ok(static_cast<uint32_t>(lwp->vfork_child));
  }
  return SysResult::Block(SleepSpec{child, 0, true});
}

Result<void> Kernel::ExecImage(Proc* p, const std::string& path,
                               const std::vector<std::string>& argv) {
  auto vp = vfs_.Resolve(path);
  if (!vp.ok()) {
    return vp.error();
  }
  auto attr = (*vp)->GetAttr();
  if (!attr.ok()) {
    return attr.error();
  }
  if (attr->type != VType::kReg) {
    return Errno::kEACCES;
  }
  if (!CredsPermit(p->creds, attr->uid, attr->gid, attr->mode, kPermExec)) {
    return Errno::kEACCES;
  }

  // Read and parse the whole image.
  std::vector<uint8_t> bytes(attr->size);
  OpenFile tmp;
  tmp.vp = *vp;
  auto n = (*vp)->Read(tmp, 0, bytes);
  if (!n.ok() || static_cast<uint64_t>(*n) != attr->size) {
    return Errno::kEIO;
  }
  auto image = Aout::Parse(bytes);
  if (!image.ok()) {
    return image.error();
  }

  // Resolve the shared library before committing to the new image.
  Aout lib_image;
  VnodePtr lib_vp;
  if (!image->lib.empty()) {
    auto lv = vfs_.Resolve("/lib/" + image->lib);
    if (!lv.ok()) {
      return Errno::kENOENT;
    }
    auto lattr = (*lv)->GetAttr();
    if (!lattr.ok()) {
      return lattr.error();
    }
    std::vector<uint8_t> lbytes(lattr->size);
    OpenFile ltmp;
    ltmp.vp = *lv;
    auto ln = (*lv)->Read(ltmp, 0, lbytes);
    if (!ln.ok()) {
      return Errno::kEIO;
    }
    auto li = Aout::Parse(lbytes);
    if (!li.ok()) {
      return li.error();
    }
    lib_image = std::move(*li);
    lib_vp = *lv;
  }

  // Honor set-id bits; enforce /proc security.
  bool setid_exec = false;
  if (attr->mode & 04000) {
    p->creds.euid = attr->uid;
    p->creds.suid = attr->uid;
    setid_exec = true;
  }
  if (attr->mode & 02000) {
    p->creds.egid = attr->gid;
    p->creds.sgid = attr->gid;
    setid_exec = true;
  }
  if (setid_exec) {
    p->setid = true;
    if (p->trace.total_opens > 0) {
      // "The set-id operation is honored but the file descriptor held by the
      // controlling process becomes invalid ... the traced process is
      // directed to stop and its run-on-last-close flag is set."
      ++p->trace.gen;
      // Rebalance the open counts at invalidation time: the outstanding
      // descriptors now belong to a dead generation, so their counts move
      // to the stale ledger and any exclusivity they held dissolves. A new
      // controller of the new generation starts from clean counters.
      p->trace.stale_writable_opens += p->trace.writable_opens;
      p->trace.stale_total_opens += p->trace.total_opens;
      p->trace.writable_opens = 0;
      p->trace.total_opens = 0;
      p->trace.excl = false;
      p->trace.dstop_pending = true;
      p->trace.run_on_last_close = true;
    }
  }

  // Build the new address space: Figure 2's structure. Text is a private
  // read/execute mapping of the executable file; data private read/write;
  // bss and stack anonymous; the break mapping grows on brk(2) request; a
  // shared library contributes its own text and data mappings.
  auto as = std::make_shared<AddressSpace>();
  as->SetFaultInjector(finj_.get());
  as->SetKtrace(&kt_, p->pid);
  as->SetSmp(&smp_);
  as->SetCpuCount(smp_.ncpus());
  auto fobj = (*vp)->GetVmObject();
  if (!fobj.ok()) {
    return fobj.error();
  }
  std::string base = Basename(path);
  if (!image->text.empty()) {
    SVR4_RETURN_IF_ERROR(as->Map(image->text_vaddr,
                                 static_cast<uint32_t>(image->text.size()),
                                 MA_READ | MA_EXEC, *fobj, Aout::TextFileOffset(), base));
  }
  if (!image->data.empty()) {
    SVR4_RETURN_IF_ERROR(as->Map(image->data_vaddr,
                                 static_cast<uint32_t>(image->data.size()),
                                 MA_READ | MA_WRITE, *fobj, image->DataFileOffset(), base));
  }
  uint32_t data_end = image->data_vaddr + static_cast<uint32_t>(image->data.size());
  uint32_t bss_end = image->bss_vaddr + image->bss_size;
  if (image->bss_size > 0) {
    uint32_t bss_map_start = PageAlignUp(std::max(data_end, image->data_vaddr));
    if (bss_end > bss_map_start) {
      SVR4_RETURN_IF_ERROR(as->Map(bss_map_start, bss_end - bss_map_start,
                                   MA_READ | MA_WRITE, std::make_shared<AnonObject>(), 0,
                                   base));
    }
  }
  // The break segment: grown on explicit request by brk(2). It appears in
  // the PIOCMAP list "despite all the disclaimers".
  uint32_t brk_base = PageAlignUp(std::max({data_end, bss_end, image->text_vaddr +
                                            static_cast<uint32_t>(image->text.size())}));
  SVR4_RETURN_IF_ERROR(as->Map(brk_base, kPageSize, MA_READ | MA_WRITE | MA_BREAK,
                               std::make_shared<AnonObject>(), 0, "break"));
  // The initial program stack segment, grown automatically by the system.
  SVR4_RETURN_IF_ERROR(as->Map(kStackTop - kInitialStackPages * kPageSize,
                               kInitialStackPages * kPageSize,
                               MA_READ | MA_WRITE | MA_STACK,
                               std::make_shared<AnonObject>(), 0, "stack",
                               /*grows_down=*/true));
  if (!lib_image.text.empty()) {
    auto lobj = lib_vp->GetVmObject();
    if (!lobj.ok()) {
      return lobj.error();
    }
    SVR4_RETURN_IF_ERROR(as->Map(lib_image.text_vaddr,
                                 static_cast<uint32_t>(lib_image.text.size()),
                                 MA_READ | MA_EXEC, *lobj, Aout::TextFileOffset(),
                                 image->lib));
    if (!lib_image.data.empty()) {
      SVR4_RETURN_IF_ERROR(as->Map(lib_image.data_vaddr,
                                   static_cast<uint32_t>(lib_image.data.size()),
                                   MA_READ | MA_WRITE, *lobj, lib_image.DataFileOffset(),
                                   image->lib));
    }
    if (lib_image.bss_size > 0) {
      uint32_t lend = lib_image.data_vaddr + static_cast<uint32_t>(lib_image.data.size());
      uint32_t lbss_start = PageAlignUp(lend);
      uint32_t lbss_end = lib_image.bss_vaddr + lib_image.bss_size;
      if (lbss_end > lbss_start) {
        SVR4_RETURN_IF_ERROR(as->Map(lbss_start, lbss_end - lbss_start, MA_READ | MA_WRITE,
                                     std::make_shared<AnonObject>(), 0, image->lib));
      }
    }
  }

  // Lay out argv on the stack: strings at the top, then the pointer array.
  uint32_t sp = kStackTop;
  std::vector<uint32_t> ptrs;
  for (auto it = argv.rbegin(); it != argv.rend(); ++it) {
    sp -= static_cast<uint32_t>(it->size()) + 1;
    SVR4_RETURN_IF_ERROR(
        [&]() -> Result<void> {
          auto r = as->PrWrite(sp, std::span<const uint8_t>(
                                       reinterpret_cast<const uint8_t*>(it->c_str()),
                                       it->size() + 1));
          if (!r.ok() || *r != static_cast<int64_t>(it->size() + 1)) {
            return Errno::kEFAULT;
          }
          return Result<void>::Ok();
        }());
    ptrs.push_back(sp);
  }
  std::reverse(ptrs.begin(), ptrs.end());
  ptrs.push_back(0);
  sp &= ~3u;
  sp -= static_cast<uint32_t>(ptrs.size() * 4);
  uint32_t argv_va = sp;
  {
    auto r = as->PrWrite(sp, std::span<const uint8_t>(
                                 reinterpret_cast<const uint8_t*>(ptrs.data()),
                                 ptrs.size() * 4));
    if (!r.ok()) {
      return Errno::kEFAULT;
    }
  }
  sp -= 16;  // headroom

  // Commit: the process transforms.
  if (p->is_vfork_child && !p->vfork_done) {
    p->vfork_done = true;
    Wakeup(p);
  }
  // The outgoing address space takes its fault accounting with it; fold the
  // classes into the proc so PIOCUSAGE survives exec. A vfork child's shared
  // space (use_count > 1) still belongs to the parent — nothing to fold.
  if (p->as && p->as.use_count() == 1) {
    p->minflt_base += p->as->counters().minor_faults;
    p->majflt_base += p->as->counters().major_faults;
    smp_.DropAs(p->as.get());
  }
  p->as = std::move(as);
  p->exe = *vp;
  p->name = base;
  {
    std::string args;
    for (const auto& a : argv) {
      if (!args.empty()) {
        args += ' ';
      }
      args += a;
    }
    p->psargs = args.substr(0, 80);
  }

  // Caught signals revert to default; ignored stay ignored; tracing flags
  // persist across exec.
  for (auto& act : p->sig.actions) {
    if (act.handler != SIG_IGN) {
      act = SigAction{};
    }
  }
  p->sig.cursig = 0;

  // exec kills every other thread of control and resets the caller.
  Lwp* survivor = nullptr;
  for (auto& l : p->lwps) {
    if (survivor == nullptr && l->state != LwpState::kDead) {
      survivor = l.get();
    } else {
      LwpSetState(l.get(), LwpState::kDead);
    }
  }
  if (survivor == nullptr) {
    auto nl = std::make_unique<Lwp>();
    nl->lwpid = 1;
    nl->proc = p;
    survivor = nl.get();
    p->lwps.push_back(std::move(nl));
    EnrollLwp(survivor);
  }
  survivor->regs = Regs{};
  survivor->fpregs = FpRegs{};
  survivor->regs.pc = image->entry;
  survivor->regs.set_sp(sp);
  survivor->regs.r[1] = static_cast<uint32_t>(argv.size());
  survivor->regs.r[2] = argv_va;
  survivor->sig_reported = false;
  survivor->pt_reported = false;
  if (survivor->state == LwpState::kDead) {
    LwpSetState(survivor, LwpState::kRunning);
  }
  kt_.Emit(KtEvent::kExec, p->pid, survivor->lwpid, image->entry, 0);
  return Result<void>::Ok();
}

Result<Pid> Kernel::Spawn(const std::string& path, const std::vector<std::string>& argv,
                          const Creds& creds, Proc* parent) {
  Proc* p = AllocProc(Basename(path), creds, parent ? parent : init_);
  if (p == nullptr) {
    return Errno::kEAGAIN;  // pid space exhausted
  }

  // Standard descriptors on the console.
  auto of = std::make_shared<OpenFile>();
  of->vp = console_;
  of->oflags = O_RDWR;
  of->writable = true;
  for (int i = 0; i < 3; ++i) {
    (void)FdAlloc(p, of);
  }

  auto l = std::make_unique<Lwp>();
  l->lwpid = 1;
  l->proc = p;
  Lwp* lraw = l.get();
  p->lwps.push_back(std::move(l));
  EnrollLwp(lraw);

  auto r = ExecImage(p, path, argv.empty() ? std::vector<std::string>{path} : argv);
  if (!r.ok()) {
    FdCloseAll(p);
    FreeProc(p);
    return r.error();
  }
  return p->pid;
}

void Kernel::ExitProc(Proc* p, int wstatus) {
  if (p->state == Proc::State::kZombie) {
    return;
  }
  // Termination with the core-dump bit writes a post-mortem image first
  // (never for set-id processes — the same confidentiality rule /proc
  // enforces on live inspection).
  if (WIfSignaled(wstatus) && (wstatus & 0x80) && p->as && !p->setid) {
    DumpCore(p, WTermSig(wstatus));
  }
  for (auto& l : p->lwps) {
    LwpSetState(l.get(), LwpState::kDead);
  }
  FdCloseAll(p);

  if (p->is_vfork_child && !p->vfork_done) {
    p->vfork_done = true;
    Wakeup(p);
  }
  // Address-space teardown: a zombie has no user address space, so its
  // /proc file reports size zero and address-space I/O fails. The fault
  // accounting folds into the proc first so PIOCUSAGE on the zombie still
  // reports it (shared vfork spaces keep their counts with the parent).
  if (p->as && p->as.use_count() == 1) {
    p->minflt_base += p->as->counters().minor_faults;
    p->majflt_base += p->as->counters().major_faults;
    smp_.DropAs(p->as.get());
  }
  p->as.reset();

  // Reparent children to init; any that are already zombies will never be
  // waited for, so queue them for reaping. O(children of p): pop the
  // intrusive children list rather than scanning every process.
  while (Proc* q = p->pt_first_child) {
    ChildUnlink(q);
    q->ppid = init_->pid;
    ChildLink(init_, q);
    if (q->state == Proc::State::kZombie) {
      MarkReapable(q->pid);
    }
  }

  p->state = Proc::State::kZombie;
  p->exit_status = wstatus;
  // Queue for zombie slimming: the next Step() releases the audit ring,
  // descriptor-table capacity, and lwp storage (deferred because frames up
  // the stack may still hold Lwp pointers).
  slim_list_.push_back(p->pid);
  kt_.Emit(KtEvent::kExit, p->pid, 0, static_cast<uint32_t>(wstatus), 0);

  Proc* parent = FindProc(p->ppid);
  if (parent == nullptr || parent == init_) {
    MarkReapable(p->pid);
  }
  if (parent != nullptr) {
    SigInfo info;
    info.si_signo = SIGCLD;
    info.si_pid = p->pid;
    PostSignal(parent, SIGCLD, info);
    Wakeup(parent);
  }
  Wakeup(p);  // anything sleeping on this process (vfork, waiters)
  Wakeup(PollChan());
}

void Kernel::DumpCore(Proc* p, int sig) {
  CoreDump core;
  core.sig = sig;
  core.status = BuildPrStatus(*this, p);
  core.psinfo = BuildPrPsinfo(*this, p);
  for (const auto& m : p->as->Maps()) {
    CoreDump::Segment seg;
    seg.vaddr = m.vaddr;
    seg.mflags = m.flags;
    seg.bytes.resize(m.size);
    auto n = p->as->PrRead(m.vaddr, seg.bytes);
    if (!n.ok()) {
      continue;
    }
    seg.bytes.resize(static_cast<size_t>(*n));
    core.segments.push_back(std::move(seg));
  }
  char path[32];
  std::snprintf(path, sizeof(path), "/tmp/core.%d", p->pid);
  (void)WriteFileAt(path, core.Serialize(), 0600, p->creds.ruid, p->creds.rgid);
}

void Kernel::ReapZombie(Proc* zombie, Proc* parent) {
  parent->cutime += zombie->utime + zombie->cutime;
  parent->cstime += zombie->stime + zombie->cstime;
  FreeProc(zombie);
}

}  // namespace svr4
