// ptrace(2): the mechanism /proc supersedes, kept both because "ptrace is
// made obsolete by /proc but is still required by the System V Interface
// Definition" and because the paper's comparisons (bandwidth, stop
// semantics, Figure 4 interactions) need it live.
#include <cstring>

#include "svr4proc/kernel/kernel.h"

namespace svr4 {
namespace {

// Register indices for PT_PEEKUSER/PT_POKEUSER: 0..15 = r0..r15, 16 = pc,
// 17 = psr.
constexpr uint32_t kUserPc = 16;
constexpr uint32_t kUserPsr = 17;

}  // namespace

Result<int64_t> Kernel::PtraceImpl(Proc* caller, int req, Pid pid, uint32_t addr,
                                   uint32_t data) {
  if (req == PT_TRACEME) {
    caller->pt_traced = true;
    return int64_t{0};
  }

  Proc* t = FindProc(pid);
  if (t == nullptr || t->state != Proc::State::kActive) {
    return Errno::kESRCH;
  }
  // ptrace controls only one's own traced children — the inability to
  // control unrelated processes is among its documented shortcomings.
  if (t->ppid != caller->pid || !t->pt_traced) {
    return Errno::kESRCH;
  }
  if (req == PT_KILL) {
    SigInfo info;
    info.si_signo = SIGKILL;
    PostSignal(t, SIGKILL, info);
    return int64_t{0};
  }
  // Everything else requires the child to be in a ptrace-owned stop.
  Lwp* lwp = t->RepresentativeLwp();
  if (lwp == nullptr || lwp->state != LwpState::kStopped || !t->pt_owned_stop) {
    return Errno::kESRCH;
  }

  switch (req) {
    case PT_PEEKTEXT:
    case PT_PEEKDATA: {
      // One word per call: this narrowness is the bandwidth baseline the
      // paper contrasts /proc against.
      uint32_t word = 0;
      if (!t->as) {
        return Errno::kEIO;
      }
      auto n = t->as->PrRead(addr, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&word), 4));
      if (!n.ok() || *n != 4) {
        return Errno::kEIO;
      }
      return static_cast<int64_t>(word);
    }
    case PT_POKETEXT:
    case PT_POKEDATA: {
      if (!t->as) {
        return Errno::kEIO;
      }
      auto n = t->as->PrWrite(
          addr, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&data), 4));
      if (!n.ok() || *n != 4) {
        return Errno::kEIO;
      }
      return int64_t{0};
    }
    case PT_PEEKUSER: {
      if (addr < kNumRegs) {
        return static_cast<int64_t>(lwp->regs.r[addr]);
      }
      if (addr == kUserPc) {
        return static_cast<int64_t>(lwp->regs.pc);
      }
      if (addr == kUserPsr) {
        return static_cast<int64_t>(lwp->regs.psr);
      }
      return Errno::kEIO;
    }
    case PT_POKEUSER: {
      if (addr < kNumRegs) {
        lwp->regs.r[addr] = data;
      } else if (addr == kUserPc) {
        lwp->regs.pc = data;
      } else if (addr == kUserPsr) {
        lwp->regs.psr = data;
      } else {
        return Errno::kEIO;
      }
      return int64_t{0};
    }
    case PT_CONT:
    case PT_STEP: {
      if (addr != 1) {
        lwp->regs.pc = addr;
      }
      if (data == 0) {
        t->sig.cursig = 0;
        for (auto& l : t->lwps) {
          l->sig_reported = false;
          l->pt_reported = false;
        }
      } else if (SigSet::Valid(static_cast<int>(data))) {
        t->sig.cursig = static_cast<int>(data);
        t->sig.cursig_info = SigInfo{};
        t->sig.cursig_info.si_signo = static_cast<int>(data);
        // A replaced signal is delivered, not re-reported to ptrace.
        for (auto& l : t->lwps) {
          l->pt_reported = true;
          l->sig_reported = true;
        }
      } else {
        return Errno::kEINVAL;
      }
      if (req == PT_STEP) {
        lwp->regs.psr |= kPsrT;
      }
      t->pt_owned_stop = false;
      t->pt_stopsig = 0;
      ResumeLwp(lwp);
      return int64_t{0};
    }
    default:
      return Errno::kEINVAL;
  }
}

}  // namespace svr4
