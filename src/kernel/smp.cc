#include "svr4proc/kernel/smp.h"

#include "svr4proc/kernel/ktrace.h"

namespace svr4 {

namespace {

// Same splitmix64 the fault injector uses: every per-CPU steal stream is an
// independent, replayable sequence.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void SmpState::Resize(int n) {
  cpus_.assign(static_cast<size_t>(n), CpuState{});
  for (int i = 0; i < n; ++i) {
    cpus_[static_cast<size_t>(i)].id = i;
    // Fixed per-CPU seed: steal choices replay across runs and are
    // independent of the chaos scheduler's stream.
    cpus_[static_cast<size_t>(i)].steal_rng =
        0x57EA15EEDull ^ (static_cast<uint64_t>(i) * 0xA24BAED4963EE407ull);
  }
}

void SmpState::Shootdown(const void* as, int32_t pid) {
  int n = ncpus();
  if (n <= 1) {
    return;
  }
  int self = cur_cpu_src_ != nullptr ? *cur_cpu_src_ : 0;
  for (int i = 0; i < n; ++i) {
    CpuState& c = cpus_[static_cast<size_t>(i)];
    if (i == self || c.cur_as != as) {
      continue;
    }
    uint64_t pending =
        c.ipi_pending.fetch_add(1, std::memory_order_relaxed) + 1;
    CpuState& from = cpus_[static_cast<size_t>(self)];
    // atomic_ref: free-running workers shoot down through the VM layer
    // while other workers do the same, and all of them charge the BSP
    // (cur_cpu 0) as the sender.
    std::atomic_ref<uint64_t>(from.stats.ipis_sent)
        .fetch_add(1, std::memory_order_relaxed);
    if (kt_ != nullptr && kt_->armed()) {
      // a0 = sending CPU, a1 = target CPU in the low half and the target's
      // pending depth in the high half — enough to replay the protocol.
      kt_->Emit(KtEvent::kIpi, pid, 0, static_cast<uint32_t>(self),
                static_cast<uint32_t>(i) | (static_cast<uint32_t>(pending) << 16));
    }
  }
}

void SmpState::ReschedIpi(int target_cpu, int32_t pid, int lwpid) {
  if (ncpus() <= 1 || target_cpu < 0 || target_cpu >= ncpus()) {
    return;
  }
  int self = cur_cpu_src_ != nullptr ? *cur_cpu_src_ : 0;
  if (target_cpu == self) {
    return;
  }
  CpuState& c = cpus_[static_cast<size_t>(target_cpu)];
  uint64_t pending = c.ipi_pending.fetch_add(1, std::memory_order_relaxed) + 1;
  ++cpus_[static_cast<size_t>(self)].stats.ipis_sent;
  if (kt_ != nullptr && kt_->armed()) {
    kt_->Emit(KtEvent::kIpi, pid, lwpid, static_cast<uint32_t>(self),
              static_cast<uint32_t>(target_cpu) |
                  (static_cast<uint32_t>(pending) << 16));
  }
}

uint64_t SmpState::AckIpis(int cpu) {
  CpuState& c = cpus_[static_cast<size_t>(cpu)];
  uint64_t n = c.ipi_pending.exchange(0, std::memory_order_relaxed);
  c.stats.ipis_received += n;
  return n;
}

uint64_t SmpState::StealDraw(int cpu) {
  return SplitMix64(cpus_[static_cast<size_t>(cpu)].steal_rng);
}

uint64_t SmpState::TotalIpisSent() const {
  uint64_t n = 0;
  for (const CpuState& c : cpus_) {
    n += c.stats.ipis_sent;
  }
  return n;
}

uint64_t SmpState::TotalIpisPending() const {
  uint64_t n = 0;
  for (const CpuState& c : cpus_) {
    n += c.ipi_pending.load(std::memory_order_relaxed);
  }
  return n;
}

SmpWorkers::~SmpWorkers() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void SmpWorkers::Ensure(int n) {
  while (static_cast<int>(threads_.size()) < n) {
    int idx = static_cast<int>(threads_.size());
    threads_.emplace_back([this, idx] { WorkerMain(idx); });
  }
}

void SmpWorkers::Dispatch(int n, const std::function<void(int)>& fn) {
  if (n <= 0) {
    return;
  }
  if (n == 1) {
    fn(0);  // no point waking a worker for a single chunk
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  Ensure(n);
  fn_ = &fn;
  nwork_ = n;
  active_ = n;
  ++seq_;
  cv_work_.notify_all();
  cv_done_.wait(lk, [this] { return active_ == 0; });
  fn_ = nullptr;
}

void SmpWorkers::WorkerMain(int idx) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || (seq_ != seen && idx < nwork_); });
      if (stop_) {
        return;
      }
      seen = seq_;
      fn = fn_;
    }
    (*fn)(idx);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_ == 0) {
        cv_done_.notify_one();
      }
    }
  }
}

}  // namespace svr4
