// Kernel core: construction, scheduling, the issig()/psig() stop logic of
// the paper's Figure 4, signal posting, timers, the native-process file API,
// and the /proc control primitives.
#include "svr4proc/kernel/kernel.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>

#include "svr4proc/fs/memfs.h"
#include "svr4proc/isa/blocks.h"
#include "svr4proc/isa/cpu.h"
#include "svr4proc/vm/vm.h"

namespace svr4 {
namespace {

// Sentinel wait channel for poll-style sleeps.
const int kPollChanStorage = 0;
const void* const kPollChan = &kPollChanStorage;

int FaultToSignal(int fault) {
  switch (fault) {
    case FLTBPT:
    case FLTTRACE:
    case FLTWATCH:
      return SIGTRAP;
    case FLTILL:
    case FLTPRIV:
      return SIGILL;
    case FLTACCESS:
    case FLTBOUNDS:
    case FLTSTACK:
      return SIGSEGV;
    case FLTIZDIV:
    case FLTIOVF:
    case FLTFPE:
      return SIGFPE;
    default:
      return SIGSEGV;
  }
}

}  // namespace

const void* Kernel::PollChan() { return kPollChan; }

Kernel::Kernel() {
  pid_hash_.assign(1024, nullptr);
  pid_bitmap_.assign((static_cast<size_t>(max_pid_) + 63) / 64, 0);
  console_ = std::make_shared<ConsoleVnode>();

  VAttr dir_attr;
  dir_attr.type = VType::kDir;
  dir_attr.mode = 0755;
  for (const char* d : {"/bin", "/lib", "/tmp", "/dev", "/proc", "/proc2"}) {
    (void)vfs_.MkdirAll(d, dir_attr);
  }

  // The system processes of Figure 1: sizes are zero because they have no
  // user-level address space.
  Proc* sched = AllocProc("sched", Creds::Root(), nullptr);
  sched->system_proc = true;
  Proc* init = AllocProc("init", Creds::Root(), sched);
  init->native = true;  // init is not scheduled; it adopts and reaps
  init_ = init;
  Proc* pageout = AllocProc("pageout", Creds::Root(), sched);
  pageout->system_proc = true;

  // Engine pin for tests/benches/CI sweeps; unset or unrecognized = auto.
  if (const char* e = std::getenv("SVR4PROC_EXEC_ENGINE")) {
    if (std::strcmp(e, "interp") == 0) {
      exec_engine_ = ExecEngine::kInterp;
    } else if (std::strcmp(e, "blocks") == 0) {
      exec_engine_ = ExecEngine::kBlocks;
    }
  }

  // SMP wiring: the trace ring stamps kIpi records and cur_cpu_ names the
  // CPU whose quantum the kernel is currently executing.
  smp_.SetKtrace(&kt_);
  smp_.SetCpuSource(&cur_cpu_);
  // Topology pin for tests/benches/CI sweeps; unset = uniprocessor.
  if (const char* n = std::getenv("SVR4PROC_NCPUS")) {
    int v = std::atoi(n);
    if (v >= 1) {
      SetNumCpus(v);
    }
  }
  if (const char* m = std::getenv("SVR4PROC_SMP_MODE")) {
    if (std::strcmp(m, "free") == 0) {
      smp_.set_mode(SmpMode::kFreeRun);
    } else if (std::strcmp(m, "det") == 0) {
      smp_.set_mode(SmpMode::kDeterministic);
    }
  }
}

Kernel::~Kernel() {
  // Procs are owned raw through the intrusive all-procs list.
  Proc* p = all_head_;
  while (p != nullptr) {
    Proc* next = p->pt_all_next;
    delete p;
    p = next;
  }
}

// --- Process table -----------------------------------------------------------

Pid Kernel::AllocPid() {
  // Word-wise free-bit scan from the cursor, wrapping once at max_pid_.
  // Freed pids are therefore reused only after the whole space has been
  // traversed — the longest grace period for held stale /proc descriptors.
  auto scan = [&](Pid lo, Pid hi) -> Pid {
    if (lo >= hi) {
      return -1;
    }
    size_t first_word = static_cast<size_t>(lo) / 64;
    size_t last_word = static_cast<size_t>(hi - 1) / 64;
    for (size_t w = first_word; w <= last_word; ++w) {
      uint64_t free_bits = ~pid_bitmap_[w];
      if (w == first_word) {
        free_bits &= ~0ull << (lo % 64);
      }
      if (free_bits == 0) {
        continue;
      }
      Pid pid = static_cast<Pid>(w * 64 + std::countr_zero(free_bits));
      return pid < hi ? pid : -1;
    }
    return -1;
  };
  Pid start = (next_pid_ >= 0 && next_pid_ < max_pid_) ? next_pid_ : 0;
  Pid pid = scan(start, max_pid_);
  if (pid < 0) {
    pid = scan(0, start);  // wraparound
  }
  if (pid < 0) {
    return -1;  // every pid is held by a live or zombie process
  }
  pid_bitmap_[static_cast<size_t>(pid) / 64] |= 1ull << (pid % 64);
  next_pid_ = pid + 1;
  return pid;
}

Pid Kernel::NextAllocatedPid(Pid from) const {
  if (from < 0) {
    from = 0;
  }
  size_t nbits = pid_bitmap_.size() * 64;
  if (static_cast<size_t>(from) >= nbits) {
    return -1;
  }
  size_t w = static_cast<size_t>(from) / 64;
  uint64_t word = pid_bitmap_[w] & (~0ull << (from % 64));
  for (;;) {
    if (word != 0) {
      return static_cast<Pid>(w * 64 + std::countr_zero(word));
    }
    if (++w >= pid_bitmap_.size()) {
      return -1;
    }
    word = pid_bitmap_[w];
  }
}

void Kernel::SetMaxPid(Pid max) {
  if (max < 1) {
    max = 1;
  }
  max_pid_ = max;
  // Never shrink the bitmap: pids already allocated above the new bound
  // stay valid (and findable) until reaped; the allocator simply stops
  // handing out new ones up there.
  size_t words = (static_cast<size_t>(max) + 63) / 64;
  if (words > pid_bitmap_.size()) {
    pid_bitmap_.resize(words, 0);
  }
  if (next_pid_ >= max_pid_) {
    next_pid_ = 0;
  }
}

void Kernel::PidHashInsert(Proc* p) {
  if (nprocs_ >= pid_hash_.size()) {
    // Double the buckets and rehash through the all-procs list; amortized
    // O(1) per insert, same policy as any open-hash table.
    std::vector<Proc*> grown(pid_hash_.size() * 2, nullptr);
    for (Proc* q = all_head_; q != nullptr; q = q->pt_all_next) {
      size_t b = static_cast<size_t>(q->pid) & (grown.size() - 1);
      q->pt_hash_next = grown[b];
      grown[b] = q;
    }
    pid_hash_ = std::move(grown);
  }
  size_t b = static_cast<size_t>(p->pid) & (pid_hash_.size() - 1);
  p->pt_hash_next = pid_hash_[b];
  pid_hash_[b] = p;
}

void Kernel::PidHashRemove(Proc* p) {
  size_t b = static_cast<size_t>(p->pid) & (pid_hash_.size() - 1);
  Proc** link = &pid_hash_[b];
  while (*link != nullptr && *link != p) {
    link = &(*link)->pt_hash_next;
  }
  if (*link == p) {
    *link = p->pt_hash_next;
  }
  p->pt_hash_next = nullptr;
}

void Kernel::ChildLink(Proc* parent, Proc* child) {
  child->pt_parent = parent;
  child->pt_sib_prev = nullptr;
  child->pt_sib_next = nullptr;
  if (parent == nullptr) {
    return;  // sched has no parent
  }
  if (parent->pt_last_child == nullptr) {
    parent->pt_first_child = child;
    parent->pt_last_child = child;
    return;
  }
  child->pt_sib_prev = parent->pt_last_child;
  parent->pt_last_child->pt_sib_next = child;
  parent->pt_last_child = child;
}

void Kernel::ChildUnlink(Proc* child) {
  Proc* parent = child->pt_parent;
  if (parent == nullptr) {
    return;
  }
  if (child->pt_sib_prev != nullptr) {
    child->pt_sib_prev->pt_sib_next = child->pt_sib_next;
  } else {
    parent->pt_first_child = child->pt_sib_next;
  }
  if (child->pt_sib_next != nullptr) {
    child->pt_sib_next->pt_sib_prev = child->pt_sib_prev;
  } else {
    parent->pt_last_child = child->pt_sib_prev;
  }
  child->pt_parent = nullptr;
  child->pt_sib_prev = nullptr;
  child->pt_sib_next = nullptr;
}

void Kernel::FreeProc(Proc* p) {
  ReleaseProf(p);
  // Defensive scheduler-queue unlink: by the time a proc is freed its lwps
  // are dead and off every queue, but a missed transition must not leave a
  // dangling queue node behind.
  for (auto& l : p->lwps) {
    if (l->q_where == Lwp::kQRun) {
      RunqRemove(l.get());
    } else if (l->q_where == Lwp::kQSleep) {
      SleepqRemove(l.get());
    }
  }
  ChildUnlink(p);
  PidHashRemove(p);
  if (p->pt_all_prev != nullptr) {
    p->pt_all_prev->pt_all_next = p->pt_all_next;
  } else {
    all_head_ = p->pt_all_next;
  }
  if (p->pt_all_next != nullptr) {
    p->pt_all_next->pt_all_prev = p->pt_all_prev;
  } else {
    all_tail_ = p->pt_all_prev;
  }
  --nprocs_;
  size_t bit = static_cast<size_t>(p->pid);
  if (bit < pid_bitmap_.size() * 64) {
    pid_bitmap_[bit / 64] &= ~(1ull << (bit % 64));
  }
  audit_watermark_.erase(p->ident);
  delete p;
}

Proc* Kernel::AllocProc(const std::string& name, const Creds& creds, Proc* parent) {
  Pid pid = AllocPid();
  if (pid < 0) {
    return nullptr;  // pid space exhausted: fork fails with EAGAIN
  }
  Proc* p = new Proc();
  p->pid = pid;
  p->ident = NextProcGen();
  p->ppid = parent ? parent->pid : 0;
  p->pgrp = parent ? parent->pgrp : p->pid;
  p->sid = parent ? parent->sid : p->pid;
  p->name = name;
  p->psargs = name;
  p->creds = creds;
  p->start_tick = ticks_;
  PidHashInsert(p);
  if (all_tail_ == nullptr) {
    all_head_ = p;
    all_tail_ = p;
  } else {
    p->pt_all_prev = all_tail_;
    all_tail_->pt_all_next = p;
    all_tail_ = p;
  }
  ++nprocs_;
  ChildLink(parent, p);
  return p;
}

Proc* Kernel::CreateNativeProc(const Creds& creds, std::string name) {
  Proc* p = AllocProc(name, creds, init_);
  if (p != nullptr) {
    p->native = true;
  }
  return p;
}

void Kernel::DestroyNativeProc(Proc* p) {
  if (p == nullptr || !p->native || p->state == Proc::State::kZombie) {
    return;
  }
  // ExitProc runs FdCloseAll, so every vnode Close hook fires — a vanished
  // procd peer releases /proc ledgers, O_EXCL, and run-on-last-close exactly
  // as a local controller closing each descriptor would. The zombie is
  // reaped by DrainReapList on the next Step (parent is init).
  ExitProc(p, 0);
}

Proc* Kernel::FindProc(Pid pid) {
  if (pid < 0) {
    return nullptr;
  }
  Proc* p = pid_hash_[static_cast<size_t>(pid) & (pid_hash_.size() - 1)];
  while (p != nullptr && p->pid != pid) {
    p = p->pt_hash_next;
  }
  return p;
}

std::vector<Pid> Kernel::AllPids() const {
  std::vector<Pid> out;
  out.reserve(nprocs_);
  for (Pid pid = NextAllocatedPid(0); pid >= 0; pid = NextAllocatedPid(pid + 1)) {
    out.push_back(pid);
  }
  return out;
}

// --- File descriptors ----------------------------------------------------------

Result<int> Kernel::FdAlloc(Proc* p, OpenFilePtr of) {
  of->refs++;
  for (size_t i = 0; i < p->fds.size(); ++i) {
    if (!p->fds[i]) {
      p->fds[i] = std::move(of);
      return static_cast<int>(i);
    }
  }
  if (p->fds.size() >= fd_limit_) {
    of->refs--;
    return Errno::kEMFILE;
  }
  p->fds.push_back(std::move(of));
  return static_cast<int>(p->fds.size() - 1);
}

Result<OpenFilePtr> Kernel::FdGet(Proc* p, int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= p->fds.size() || !p->fds[fd]) {
    return Errno::kEBADF;
  }
  return p->fds[fd];
}

void Kernel::FdRelease(OpenFilePtr of) {
  if (!of) {
    return;
  }
  if (--of->refs == 0) {
    of->vp->Close(*of);
    Wakeup(kPollChan);
    // Pipe sleepers must notice EOF / EPIPE.
    if (auto* pipe = dynamic_cast<PipeVnode*>(of->vp.get())) {
      Wakeup(pipe->buf().get());
    }
  }
}

void Kernel::FdCloseAll(Proc* p) {
  for (auto& of : p->fds) {
    FdRelease(std::move(of));
  }
  p->fds.clear();
}

Result<int> Kernel::OpenCommon(Proc* p, const std::string& path, int oflags, uint32_t mode) {
  auto vp = vfs_.Resolve(path);
  if (!vp.ok()) {
    if (vp.error() == Errno::kENOENT && (oflags & O_CREAT)) {
      std::string leaf;
      auto parent = vfs_.ResolveParent(path, &leaf);
      if (!parent.ok()) {
        return parent.error();
      }
      VAttr attr;
      attr.mode = mode & ~p->umask;
      attr.uid = p->creds.euid;
      attr.gid = p->creds.egid;
      auto made = (*parent)->Create(leaf, attr);
      if (!made.ok()) {
        return made.error();
      }
      vp = made;
    } else {
      return vp.error();
    }
  }
  auto of = std::make_shared<OpenFile>();
  of->vp = *vp;
  of->oflags = oflags;
  int acc = oflags & O_ACCMODE;
  of->writable = acc == O_WRONLY || acc == O_RDWR;
  SVR4_RETURN_IF_ERROR((*vp)->Open(*of, p->creds, p));
  auto fd = FdAlloc(p, of);
  if (!fd.ok()) {
    of->refs = 1;  // undo path: run the close hook exactly once
    FdRelease(of);
  }
  return fd;
}

Result<int> Kernel::Open(Proc* p, const std::string& path, int oflags, uint32_t mode) {
  return OpenCommon(p, path, oflags, mode);
}

Result<void> Kernel::Close(Proc* p, int fd) {
  auto of = FdGet(p, fd);
  if (!of.ok()) {
    return of.error();
  }
  p->fds[fd] = nullptr;
  FdRelease(*of);
  return Result<void>::Ok();
}

Result<int64_t> Kernel::ReadCommon(Proc* p, OpenFile& of, std::span<uint8_t> buf) {
  int acc = of.oflags & O_ACCMODE;
  if (acc == O_WRONLY) {
    return Errno::kEBADF;
  }
  if (finj_ && finj_->Fire(FaultSite::kVnodeRead)) {
    return Errno::kEIO;
  }
  auto n = of.vp->Read(of, of.offset, buf);
  if (n.ok()) {
    of.offset += static_cast<uint64_t>(*n);
    p->ioch += static_cast<uint64_t>(*n);
  }
  return n;
}

Result<int64_t> Kernel::WriteCommon(Proc* p, OpenFile& of, std::span<const uint8_t> buf) {
  if (!of.writable) {
    return Errno::kEBADF;
  }
  if (finj_ && finj_->Fire(FaultSite::kVnodeWrite)) {
    return Errno::kEIO;
  }
  auto n = of.vp->Write(of, of.offset, buf);
  if (n.ok()) {
    of.offset += static_cast<uint64_t>(*n);
    p->ioch += static_cast<uint64_t>(*n);
  }
  return n;
}

Result<int64_t> Kernel::Read(Proc* p, int fd, void* buf, uint64_t n) {
  auto of = FdGet(p, fd);
  if (!of.ok()) {
    return of.error();
  }
  // Native callers pump the simulation through blocking reads (pipes).
  for (;;) {
    auto r = ReadCommon(p, **of, std::span<uint8_t>(static_cast<uint8_t*>(buf), n));
    if (r.ok() || r.error() != Errno::kEAGAIN) {
      return r;
    }
    if (!Step()) {
      return Errno::kEDEADLK;
    }
  }
}

Result<int64_t> Kernel::Write(Proc* p, int fd, const void* buf, uint64_t n) {
  auto of = FdGet(p, fd);
  if (!of.ok()) {
    return of.error();
  }
  for (;;) {
    auto r = WriteCommon(p, **of,
                         std::span<const uint8_t>(static_cast<const uint8_t*>(buf), n));
    if (r.ok() || r.error() != Errno::kEAGAIN) {
      if (r.ok() && (*of)->vp->type() == VType::kFifo) {
        if (auto* pipe = dynamic_cast<PipeVnode*>((*of)->vp.get())) {
          Wakeup(pipe->buf().get());
        }
        Wakeup(kPollChan);
      }
      return r;
    }
    if (!Step()) {
      return Errno::kEDEADLK;
    }
  }
}

Result<int64_t> Kernel::Lseek(Proc* p, int fd, int64_t off, int whence) {
  auto of = FdGet(p, fd);
  if (!of.ok()) {
    return of.error();
  }
  int64_t base = 0;
  switch (whence) {
    case SEEK_SET_:
      base = 0;
      break;
    case SEEK_CUR_:
      base = static_cast<int64_t>((*of)->offset);
      break;
    case SEEK_END_: {
      auto attr = (*of)->vp->GetAttr();
      if (!attr.ok()) {
        return attr.error();
      }
      base = static_cast<int64_t>(attr->size);
      break;
    }
    default:
      return Errno::kEINVAL;
  }
  int64_t pos = base + off;
  if (pos < 0) {
    return Errno::kEINVAL;
  }
  (*of)->offset = static_cast<uint64_t>(pos);
  return pos;
}

Result<int32_t> Kernel::Ioctl(Proc* p, int fd, uint32_t op, void* arg) {
  auto of = FdGet(p, fd);
  if (!of.ok()) {
    return of.error();
  }
  return (*of)->vp->Ioctl(**of, p, op, arg);
}

Result<std::vector<DirEnt>> Kernel::ReadDir(Proc* /*p*/, const std::string& path) {
  auto vp = vfs_.Resolve(path);
  if (!vp.ok()) {
    return vp.error();
  }
  return (*vp)->Readdir();
}

Result<size_t> Kernel::ReadDirChunk(Proc* /*p*/, const std::string& path,
                                    uint64_t* cookie, size_t max,
                                    std::vector<DirEnt>* out) {
  auto vp = vfs_.Resolve(path);
  if (!vp.ok()) {
    return vp.error();
  }
  return (*vp)->ReaddirChunk(cookie, max, out);
}

Result<VAttr> Kernel::Stat(Proc* /*p*/, const std::string& path) {
  auto vp = vfs_.Resolve(path);
  if (!vp.ok()) {
    return vp.error();
  }
  return (*vp)->GetAttr();
}

Result<int> Kernel::PollFds(Proc* p, std::span<PollFd> fds, int64_t timeout_ticks) {
  uint64_t deadline = timeout_ticks < 0 ? 0 : ticks_ + static_cast<uint64_t>(timeout_ticks);
  for (;;) {
    int ready = 0;
    for (auto& pf : fds) {
      pf.revents = 0;
      auto of = FdGet(p, pf.fd);
      if (!of.ok()) {
        pf.revents = POLLNVAL;
        ++ready;
        continue;
      }
      int bits = (*of)->vp->Poll(**of);
      // Only POLLERR/POLLHUP/POLLNVAL may be reported unrequested; POLLPRI
      // (like POLLIN/POLLOUT) must have been asked for in events.
      pf.revents = bits & (pf.events | POLLERR | POLLHUP | POLLNVAL);
      if (pf.revents != 0) {
        ++ready;
      }
    }
    if (ready > 0) {
      return ready;
    }
    if (timeout_ticks == 0) {
      return 0;
    }
    if (deadline != 0 && ticks_ >= deadline) {
      return 0;
    }
    if (!Step()) {
      return 0;  // system idle; nothing will ever become ready
    }
  }
}

// --- Setup helpers -----------------------------------------------------------

Result<void> Kernel::WriteFileAt(const std::string& path, std::span<const uint8_t> bytes,
                                 uint32_t mode, Uid uid, Gid gid) {
  std::string leaf;
  auto parent = vfs_.ResolveParent(path, &leaf);
  if (!parent.ok()) {
    return parent.error();
  }
  VnodePtr file;
  auto existing = (*parent)->Lookup(leaf);
  if (existing.ok()) {
    file = *existing;
  } else {
    VAttr attr;
    attr.mode = mode;
    attr.uid = uid;
    attr.gid = gid;
    auto made = (*parent)->Create(leaf, attr);
    if (!made.ok()) {
      return made.error();
    }
    file = *made;
  }
  OpenFile of;
  of.vp = file;
  of.writable = true;
  auto n = file->Write(of, 0, bytes);
  if (!n.ok()) {
    return n.error();
  }
  return Result<void>::Ok();
}

Result<void> Kernel::InstallAout(const std::string& path, const Aout& image, uint32_t mode,
                                 Uid uid, Gid gid) {
  auto bytes = image.Serialize();
  return WriteFileAt(path, bytes, mode, uid, gid);
}

// --- Scheduler queues --------------------------------------------------------

void Kernel::RunqInsert(Lwp* l) {
  // Wait accounting: stamp the tick this lwp became runnable (metrics
  // armed only, so the disarmed path stays a pure list splice). Re-inserts
  // that continue one wait — steal migration, SetNumCpus rehoming — find
  // the stamp already set and leave it alone.
  if (kt_.metrics_on() && l->runq_enq_tick == 0) {
    l->runq_enq_tick = ticks_ + 1;
  }
  // The lwp's home CPU (l->cpu, always 0 uniprocessor) names the queue.
  CpuState& c = smp_.cpu(l->cpu);
  l->q_where = Lwp::kQRun;
  ++c.runq_len;
  if (c.runq_next == nullptr) {
    l->q_prev = l;
    l->q_next = l;
    c.runq_next = l;
    return;
  }
  // Insert just before the cursor: the newcomer runs last in the current
  // rotation, i.e. FIFO round-robin.
  Lwp* at = c.runq_next;
  l->q_prev = at->q_prev;
  l->q_next = at;
  at->q_prev->q_next = l;
  at->q_prev = l;
}

void Kernel::RunqRemove(Lwp* l) {
  CpuState& c = smp_.cpu(l->cpu);
  l->q_where = Lwp::kQNone;
  --c.runq_len;
  if (l->q_next == l) {
    c.runq_next = nullptr;
  } else {
    l->q_prev->q_next = l->q_next;
    l->q_next->q_prev = l->q_prev;
    if (c.runq_next == l) {
      c.runq_next = l->q_next;
    }
  }
  l->q_prev = nullptr;
  l->q_next = nullptr;
}

size_t Kernel::SleepBucket(const void* chan) {
  uintptr_t h = reinterpret_cast<uintptr_t>(chan);
  h ^= h >> 9;  // channels are object addresses; mix out alignment zeros
  return static_cast<size_t>((h * 0x9E3779B97F4A7C15ull) >> 32) &
         (kSleepBuckets - 1);
}

void Kernel::SleepqInsert(Lwp* l) {
  size_t b = SleepBucket(l->sleep.chan);
  l->q_where = Lwp::kQSleep;
  l->q_prev = nullptr;
  l->q_next = sleepq_[b];
  if (sleepq_[b] != nullptr) {
    sleepq_[b]->q_prev = l;
  }
  sleepq_[b] = l;
}

void Kernel::SleepqRemove(Lwp* l) {
  size_t b = SleepBucket(l->sleep.chan);
  if (l->q_prev != nullptr) {
    l->q_prev->q_next = l->q_next;
  } else {
    sleepq_[b] = l->q_next;
  }
  if (l->q_next != nullptr) {
    l->q_next->q_prev = l->q_prev;
  }
  l->q_prev = nullptr;
  l->q_next = nullptr;
  l->q_where = Lwp::kQNone;
}

void Kernel::LwpSetState(Lwp* l, LwpState ns) {
  if (l->state == ns) {
    return;
  }
  if (l->q_where == Lwp::kQRun) {
    RunqRemove(l);
    // Leaving the runnable state ends any in-progress runq wait unharvested
    // (the lwp blocked or stopped before it was ever dispatched).
    l->runq_enq_tick = 0;
  } else if (l->q_where == Lwp::kQSleep) {
    // Dequeue before anything can overwrite l->sleep: the bucket is keyed
    // on the channel the lwp went to sleep on.
    SleepqRemove(l);
  }
  l->state = ns;
  if (ns == LwpState::kRunning) {
    Proc* p = l->proc;
    if (p->state == Proc::State::kActive && !p->native && !p->system_proc) {
      RunqInsert(l);
    }
  } else if (ns == LwpState::kSleeping && l->sleep.chan != nullptr) {
    SleepqInsert(l);
  }
}

void Kernel::EnrollLwp(Lwp* l) {
  // A freshly constructed lwp is kRunning by default and has never passed
  // through LwpSetState; put it on the run queue if it is schedulable.
  // Home CPUs go round-robin in enroll order — deterministic, and at
  // ncpus == 1 the counter never moves so nothing changes.
  Proc* p = l->proc;
  if (l->state == LwpState::kRunning && l->q_where == Lwp::kQNone &&
      p->state == Proc::State::kActive && !p->native && !p->system_proc) {
    if (smp_.ncpus() > 1) {
      l->cpu = static_cast<int>(enroll_seq_++ %
                                static_cast<uint64_t>(smp_.ncpus()));
    }
    RunqInsert(l);
  }
}

// --- Scheduling -----------------------------------------------------------------

Lwp* Kernel::PickNextOn(int cpu) {
  CpuState& c = smp_.cpu(cpu);
  Lwp* pick = c.runq_next;
  if (pick == nullptr) {
    return StealFor(cpu);
  }
  c.runq_next = pick->q_next;
  return pick;
}

// Work stealing: the thief's queue has drained, so migrate one runnable lwp
// from a seeded-randomly chosen nonempty victim queue. The draw comes from
// the thief's own splitmix64 stream, so a given (topology, workload) pair
// replays the same migrations.
Lwp* Kernel::StealFor(int thief) {
  if (smp_.ncpus() <= 1) {
    return nullptr;
  }
  int victims[kMaxCpus];
  int nv = 0;
  for (int i = 0; i < smp_.ncpus(); ++i) {
    if (i != thief && smp_.cpu(i).runq_next != nullptr) {
      victims[nv++] = i;
    }
  }
  if (nv == 0) {
    return nullptr;
  }
  int victim = victims[smp_.StealDraw(thief) % static_cast<uint64_t>(nv)];
  // Take the lwp at the victim's cursor — the one that would have run next
  // there — and rehome it. Remove while l->cpu still names the victim.
  Lwp* l = smp_.cpu(victim).runq_next;
  if (l->runq_enq_tick != 0) {
    // Enqueue->steal latency, charged to the thief. The stamp survives the
    // migration so the runq-wait histogram still sees enqueue->dispatch.
    uint64_t stamp = l->runq_enq_tick;
    kt_.RecordStealLat(thief, ticks_ - (stamp - 1));
  }
  RunqRemove(l);
  l->cpu = thief;
  CpuState& tc = smp_.cpu(thief);
  RunqInsert(l);  // thief's queue was empty: l becomes its only member
  tc.runq_next = l->q_next;  // cursor past the pick, as PickNextOn would
  ++tc.stats.steals;
  return l;
}

size_t Kernel::RunqLenTotal() const {
  size_t n = 0;
  for (int i = 0; i < smp_.ncpus(); ++i) {
    n += smp_.cpu(i).runq_len;
  }
  return n;
}

// A heap entry is live iff the process/lwp timer state still matches its
// tick; cancelled or re-armed timers simply leave stale entries behind to be
// discarded here.
void Kernel::ArmAlarm(Proc* p) {
  if (p->alarm_tick != 0) {
    timerq_.push(TimerEvent{p->alarm_tick, p->pid, 0});
  }
}

void Kernel::ArmSleepTimer(Lwp* lwp) {
  if (lwp->sleep.wake_tick != 0) {
    timerq_.push(TimerEvent{lwp->sleep.wake_tick, lwp->proc->pid, lwp->lwpid});
  }
}

void Kernel::FireDueTimers() {
  while (!timerq_.empty() && timerq_.top().tick <= ticks_) {
    TimerEvent ev = timerq_.top();
    timerq_.pop();
    Proc* p = FindProc(ev.pid);
    if (p == nullptr || p->state != Proc::State::kActive) {
      continue;  // stale
    }
    if (ev.lwpid == 0) {
      if (p->alarm_tick != ev.tick) {
        continue;  // alarm cancelled or re-armed since
      }
      p->alarm_tick = 0;
      SigInfo info;
      info.si_signo = SIGALRM;
      PostSignal(p, SIGALRM, info);
      ++counters_.timer_events;
    } else {
      Lwp* l = p->FindLwp(ev.lwpid);
      if (l != nullptr && l->state == LwpState::kSleeping && l->sleep.wake_tick == ev.tick) {
        LwpSetState(l, LwpState::kRunning);
        ++counters_.timer_events;
      }
    }
  }
}

uint64_t Kernel::NextTimerTick() {
  while (!timerq_.empty()) {
    const TimerEvent& ev = timerq_.top();
    Proc* p = FindProc(ev.pid);
    bool live = false;
    if (p != nullptr && p->state == Proc::State::kActive) {
      if (ev.lwpid == 0) {
        live = p->alarm_tick == ev.tick;
      } else {
        Lwp* l = p->FindLwp(ev.lwpid);
        live = l != nullptr && l->state == LwpState::kSleeping && l->sleep.wake_tick == ev.tick;
      }
    }
    if (live) {
      return ev.tick;
    }
    timerq_.pop();
  }
  return 0;
}

void Kernel::MarkReapable(Pid pid) { reap_list_.push_back(pid); }

void Kernel::DrainReapList() {
  while (!reap_list_.empty()) {
    Pid pid = reap_list_.back();
    reap_list_.pop_back();
    Proc* p = FindProc(pid);
    if (p == nullptr) {
      continue;  // already reaped (e.g. by an explicit wait)
    }
    if (p->state == Proc::State::kZombie &&
        (p->ppid == init_->pid || FindProc(p->ppid) == nullptr)) {
      FreeProc(p);
      ++counters_.reaps;
    }
  }
}

bool Kernel::Step() {
  DrainReapList();
  DrainZombieSlim();
  FireDueTimers();
  if (finj_ && finj_->Fire(FaultSite::kSpuriousWakeup)) {
    // Wake every poll-style sleeper with nothing actually ready: they must
    // re-evaluate their poll sets and go back to sleep unharmed.
    Wakeup(kPollChan);
  }
  // Free-running mode engages only with real parallelism available and no
  // observation hooks armed: fault injection, chaos, and tracing all force
  // the deterministic path (the same fallback contract as the block
  // engine's hook gate).
  if (smp_.mode() == SmpMode::kFreeRun && smp_.ncpus() > 1 &&
      finj_ == nullptr && !chaos_ && !kt_.armed() && prof_armed_ == 0) {
    return StepFreeRun();
  }
  int cpu = 0;
  Lwp* lwp;
  if (chaos_) {
    lwp = PickNextChaos(&cpu);
  } else {
    // Rotate dispatch over the CPUs. The rotation state is only consulted
    // on a multiprocessor, so uniprocessor stepping is unchanged.
    if (smp_.ncpus() > 1) {
      cpu = cur_cpu_rr_;
      cur_cpu_rr_ = (cur_cpu_rr_ + 1) % smp_.ncpus();
    }
    lwp = PickNextOn(cpu);
  }
  if (lwp == nullptr) {
    // Nothing runnable; jump the clock to the earliest timed wakeup.
    uint64_t next = NextTimerTick();
    if (next == 0) {
      return false;
    }
    ticks_ = std::max(ticks_ + 1, next);
    FireDueTimers();
    return true;
  }
  RunQuantumOn(cpu, lwp);
  return true;
}

void Kernel::RunQuantumOn(int cpu, Lwp* lwp, int budget_override) {
  CpuState& c = smp_.cpu(cpu);
  cur_cpu_ = cpu;
  // Quantum boundary: acknowledge pending cross-CPU interrupts — unless the
  // IPI-delay fault site fires, modeling slow delivery (safe because the
  // generation counters, not the IPIs, carry correctness).
  if (c.ipi_pending.load(std::memory_order_relaxed) != 0 &&
      !(finj_ && finj_->Fire(FaultSite::kIpiDelay))) {
    smp_.AckIpis(cpu);
  }
  Proc* p = lwp->proc;
  if (lwp->runq_enq_tick != 0) {
    // First dispatch since the lwp became runnable: harvest the runq wait.
    // RecordRunqWait is metrics-gated, so a stale stamp left by disarming
    // mid-run is simply cleared.
    kt_.RecordRunqWait(cpu, ticks_ - (lwp->runq_enq_tick - 1));
    lwp->runq_enq_tick = 0;
  }
  if (kt_.armed() && (p->pid != c.last_pid || lwp->lwpid != c.last_lwpid)) {
    // A context switch: record who ran before on this CPU and sample total
    // run-queue depth (the count includes the lwp just picked). Once per
    // switch, not per quantum, so an idle single-process system stays quiet.
    uint32_t depth = static_cast<uint32_t>(RunqLenTotal());
    kt_.Emit(KtEvent::kSchedSwitch, p->pid, lwp->lwpid,
             static_cast<uint32_t>(c.last_pid), depth);
    c.last_pid = p->pid;
    c.last_lwpid = lwp->lwpid;
  }
  // Switch counting for /proc2/kernel/cpus is tracked separately from the
  // trace attribution so arming the ring mid-run cannot change what records
  // a previously-disarmed kernel would have emitted.
  if (p->pid != c.sw_pid || lwp->lwpid != c.sw_lwpid) {
    ++c.stats.switches;
    c.sw_pid = p->pid;
    c.sw_lwpid = lwp->lwpid;
  }
  c.cur_as = p->as.get();
  if (p->as) {
    p->as->BindCpu(cpu);
  }
  ++c.stats.quanta;
  uint64_t before = counters_.instructions;
  // nice(2) weights the quantum: the default (20) gets kQuantum; a fully
  // niced process (39) gets a sliver; a high-priority one (0) gets double.
  int quantum = kQuantum * (40 - p->nice) / 20;
  if (budget_override > 0) {
    quantum = budget_override;
  }
  ExecuteLwp(lwp, std::max(quantum, 4));
  c.stats.instructions += counters_.instructions - before;
  cur_cpu_ = 0;  // back to controller context
}

void Kernel::SetNumCpus(int n) {
  n = std::max(1, std::min(n, kMaxCpus));
  // Drain every queue in deterministic (cpu, rotation) order, resize, then
  // rehome the drained lwps round-robin over the new CPU set.
  std::vector<Lwp*> drained;
  for (int i = 0; i < smp_.ncpus(); ++i) {
    CpuState& c = smp_.cpu(i);
    while (c.runq_next != nullptr) {
      Lwp* l = c.runq_next;
      RunqRemove(l);
      drained.push_back(l);
    }
  }
  smp_.Resize(n);
  for (size_t i = 0; i < drained.size(); ++i) {
    drained[i]->cpu = static_cast<int>(i % static_cast<size_t>(n));
    RunqInsert(drained[i]);
  }
  enroll_seq_ = drained.size();
  cur_cpu_rr_ = 0;
  for (Proc* p = all_head_; p != nullptr; p = p->pt_all_next) {
    // Off-queue lwps (sleepers, stopped) must not keep a home CPU outside
    // the new set — RunqInsert indexes by it on wakeup.
    for (auto& l : p->lwps) {
      if (l->cpu >= n) {
        l->cpu = l->cpu % n;
      }
    }
    // One TLB bank per CPU for every live address space, and the shootdown
    // back-pointer so invalidations charge IPIs.
    if (p->as) {
      p->as->SetSmp(&smp_);
      p->as->SetCpuCount(n);
    }
  }
}

std::string Kernel::CpuStatsText() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "ncpus %d mode %s\n", smp_.ncpus(),
                smp_.mode() == SmpMode::kFreeRun ? "free" : "det");
  out += line;
  for (int i = 0; i < smp_.ncpus(); ++i) {
    const CpuState& c = smp_.cpu(i);
    std::snprintf(
        line, sizeof(line),
        "cpu%d runq=%zu quanta=%llu instructions=%llu steals=%llu "
        "switches=%llu ipis_sent=%llu ipis_received=%llu ipis_pending=%llu\n",
        i, c.runq_len, static_cast<unsigned long long>(c.stats.quanta),
        static_cast<unsigned long long>(c.stats.instructions),
        static_cast<unsigned long long>(c.stats.steals),
        static_cast<unsigned long long>(c.stats.switches),
        static_cast<unsigned long long>(c.stats.ipis_sent),
        static_cast<unsigned long long>(c.stats.ipis_received),
        static_cast<unsigned long long>(
            c.ipi_pending.load(std::memory_order_relaxed)));
    out += line;
  }
  return out;
}

void Kernel::DrainZombieSlim() {
  // Deferred one full step past ExitProc: quantum frames and blocking
  // control handlers may still hold Lwp pointers across the exit, and
  // RunUntil re-evaluates its predicate before every Step, so nothing can
  // observe the zombie between slimming and the controller's wait.
  while (!slim_list_.empty()) {
    Pid pid = slim_list_.back();
    slim_list_.pop_back();
    Proc* p = FindProc(pid);
    if (p == nullptr || p->state != Proc::State::kZombie) {
      continue;  // reaped, or pid reused by a live process
    }
    // Everything a wait(2) does not need: the audit ring (totals survive in
    // TraceState), the descriptor table, the profiler buckets, and the lwp
    // storage itself. The wait status, times, and pid linkage stay on the
    // Proc.
    ReleaseProf(p);
    p->trace.audit.reset();
    p->fds.clear();
    p->fds.shrink_to_fit();
    p->lwps.clear();
    p->lwps.shrink_to_fit();
  }
}

// Free-running super-step: a bulk-synchronous round that runs up to ncpus
// lwps' pure user execution on real threads, with all kernel work serial.
//   Phase A (serial): pick one lwp per CPU (same rotation and stealing as
//     the deterministic path), dequeue each for the super-step so stealing
//     cannot hand one lwp to two CPUs, and classify: anything that needs the
//     kernel now (mid-syscall, pending stop/signal, no address space, an
//     address space another pick already claimed, or writable shared memory)
//     runs a normal serial quantum instead.
//   Phase B (parallel): workers run RunUserChunk — user instructions only,
//     terminating at the first syscall/fault, chunk exhaustion, or a pending
//     IPI. No kernel state is touched off the BSP; the Dispatch join is the
//     happens-before edge for the fold.
//   Phase C (serial, fixed pick order): charge time/counters, perform each
//     chunk's terminating kernel work, re-insert still-runnable picks.
// Selection, classification, and fold order are all deterministic, so a
// free-running run is replayable too — just at chunk granularity instead of
// instruction granularity.
bool Kernel::StepFreeRun() {
  const int np = smp_.ncpus();
  struct Pick {
    Lwp* lwp = nullptr;
    int cpu = 0;
    bool parallel = false;
    uint32_t budget = 0;
    uint32_t executed = 0;
    StepResult last{};
  };
  Pick picks[kMaxCpus];
  int npicks = 0;
  const void* claimed[kMaxCpus];
  int nclaimed = 0;

  // Chunk size: big enough to amortize worker dispatch, capped so a pending
  // timer fires within roughly one super-step of its deadline.
  constexpr uint32_t kFreeChunk = 16384;
  uint32_t chunk = kFreeChunk;
  uint64_t next_timer = NextTimerTick();
  if (next_timer > ticks_) {
    uint64_t until = (next_timer - ticks_) / static_cast<uint64_t>(np);
    if (until < chunk) {
      chunk = static_cast<uint32_t>(std::max<uint64_t>(until, 64));
    }
  }

  for (int k = 0; k < np; ++k) {
    int cpu = cur_cpu_rr_;
    cur_cpu_rr_ = (cur_cpu_rr_ + 1) % np;
    Lwp* l = PickNextOn(cpu);
    if (l == nullptr) {
      continue;
    }
    smp_.AckIpis(cpu);  // this CPU reached a quantum boundary
    RunqRemove(l);      // held out of every queue until the fold
    Pick& pk = picks[npicks++];
    pk.lwp = l;
    pk.cpu = cpu;
    Proc* p = l->proc;
    AddressSpace* as = p->as.get();
    smp_.cpu(cpu).cur_as = as;
    bool needs_kernel = l->in_syscall || l->lwp_dstop || NeedIssig(l) ||
                        as == nullptr || as->HasWritableSharedMapping();
    for (int i = 0; !needs_kernel && i < nclaimed; ++i) {
      needs_kernel = claimed[i] == as;  // one worker per address space
    }
    // nice(2) weights the chunk exactly as it weights the quantum. Serial
    // picks get the same budget, just spent through the kernel-aware loop:
    // otherwise an lwp demoted to serial (shared address space, pending
    // kernel work) would fall a chunk/quantum ratio behind its peers.
    uint64_t b = static_cast<uint64_t>(chunk) *
                 static_cast<uint64_t>(40 - p->nice) / 20;
    pk.budget = static_cast<uint32_t>(std::max<uint64_t>(b, 64));
    if (!needs_kernel) {
      claimed[nclaimed++] = as;
      pk.parallel = true;
    }
  }
  if (npicks == 0) {
    uint64_t next = NextTimerTick();
    if (next == 0) {
      return false;
    }
    ticks_ = std::max(ticks_ + 1, next);
    FireDueTimers();
    return true;
  }

  // Serial picks first: their kernel work (syscalls, stops, shootdowns)
  // lands before any parallel user execution begins, so the workers see a
  // quiescent kernel.
  for (int i = 0; i < npicks; ++i) {
    Pick& pk = picks[i];
    if (pk.parallel) {
      continue;
    }
    if (pk.lwp->state != LwpState::kRunning ||
        pk.lwp->proc->state != Proc::State::kActive) {
      continue;  // an earlier serial quantum stopped or killed it
    }
    RunQuantumOn(pk.cpu, pk.lwp, static_cast<int>(pk.budget));
  }

  int par_idx[kMaxCpus];
  int npar = 0;
  for (int i = 0; i < npicks; ++i) {
    if (picks[i].parallel) {
      par_idx[npar++] = i;
    }
  }
  if (npar > 0) {
    workers_.Dispatch(npar, [&](int w) {
      Pick& pk = picks[par_idx[w]];
      Lwp* l = pk.lwp;
      if (l->state != LwpState::kRunning ||
          l->proc->state != Proc::State::kActive) {
        return;  // a serial quantum stopped or killed it meanwhile
      }
      pk.executed = RunUserChunk(l, pk.budget, pk.cpu, &pk.last);
    });
  }

  for (int i = 0; i < npicks; ++i) {
    Pick& pk = picks[i];
    if (pk.parallel) {
      CpuState& c = smp_.cpu(pk.cpu);
      ++c.stats.quanta;
      // Same engine attribution ExecuteLwp gives a quantum.
      if (exec_engine_ != ExecEngine::kInterp) {
        ++counters_.quanta_blocks;
      } else {
        ++counters_.quanta_interp;
      }
      c.stats.instructions += pk.executed;
      if (pk.lwp->proc->pid != c.sw_pid || pk.lwp->lwpid != c.sw_lwpid) {
        ++c.stats.switches;
        c.sw_pid = pk.lwp->proc->pid;
        c.sw_lwpid = pk.lwp->lwpid;
      }
      ticks_ += pk.executed;
      pk.lwp->proc->utime += pk.executed;
      counters_.instructions += pk.executed;
      cur_cpu_ = pk.cpu;
      if (pk.last.kind == StepResult::kSyscall) {
        SyscallTrap(pk.lwp);
      } else if (pk.last.kind == StepResult::kFault) {
        HandleFault(pk.lwp, pk.last.fault, pk.last.fault_addr);
      }
      cur_cpu_ = 0;
    }
    Lwp* l = pk.lwp;
    Proc* p = l->proc;
    if (l->state == LwpState::kRunning && l->q_where == Lwp::kQNone &&
        p->state == Proc::State::kActive && !p->native && !p->system_proc) {
      RunqInsert(l);
    }
  }
  FireDueTimers();
  return true;
}

uint32_t Kernel::RunUserChunk(Lwp* lwp, uint32_t budget, int cpu,
                              StepResult* last) {
  Proc* p = lwp->proc;
  AddressSpace& as = *p->as;
  as.BindCpu(cpu);  // this worker's translations go to its own bank
  last->kind = StepResult::kOk;
  CpuState& c = smp_.cpu(cpu);
  const bool blocks_ok = exec_engine_ != ExecEngine::kInterp;
  uint32_t executed = 0;
  while (executed < budget) {
    if (c.ipi_pending.load(std::memory_order_relaxed) != 0) {
      break;  // a peer shot this CPU down mid-chunk; yield to the fold
    }
    if (blocks_ok && (lwp->regs.psr & kPsrT) == 0 && as.CodeCacheActive()) {
      if (const Block* blk = as.blocks().Get(lwp->regs.pc, as)) {
        BlockRun run = ExecuteBlock(*blk, lwp->regs, lwp->fpregs, as,
                                    budget - executed);
        executed += run.executed;
        if (run.last.kind != StepResult::kOk) {
          *last = run.last;
          break;
        }
        continue;
      }
    }
    if (blocks_ok) {
      // Blocks engine falling back to a single interpreter step (block
      // miss, trace bit, cache inactive): same charge ExecuteLwpBlocks
      // makes. Race-free: this worker holds the address space exclusively.
      ++as.blocks().stats().fallback_steps;
    }
    StepResult r = CpuStep(lwp->regs, lwp->fpregs, as);
    ++executed;
    if (r.kind != StepResult::kOk) {
      *last = r;
      break;
    }
  }
  return executed;
}

bool Kernel::RunUntil(const std::function<bool()>& pred, uint64_t max_steps) {
  for (uint64_t i = 0; i < max_steps; ++i) {
    if (pred()) {
      return true;
    }
    if (!Step()) {
      return pred();
    }
  }
  return pred();
}

Result<int> Kernel::RunToExit(Pid pid, uint64_t max_steps) {
  int status = 0;
  bool gone = false;
  bool done = RunUntil(
      [&]() {
        Proc* p = FindProc(pid);
        if (p == nullptr) {
          gone = true;
          return true;
        }
        if (p->state == Proc::State::kZombie) {
          status = p->exit_status;
          return true;
        }
        return false;
      },
      max_steps);
  if (!done) {
    return Errno::kETIMEDOUT;
  }
  if (gone) {
    return Errno::kESRCH;
  }
  return status;
}

void Kernel::ExecuteLwp(Lwp* lwp, int budget) {
  // The perturbation hooks (fault injection, chaos preemption) are compiled
  // into a separate stamp of the loop so the common unhooked case keeps the
  // exact instruction path of a kernel without them. Tracing rides the same
  // gate: with tracing disarmed the unhooked stamp carries no tracing code
  // at all (events are emitted from the cold syscall/stop/fault functions
  // behind single-branch armed checks, never per instruction).
  // The sampling profiler is a second, orthogonal stamp axis: quanta of a
  // PIOCPROF-armed process run an instrumented instantiation; everything
  // else keeps the profiler-free loop, so a disarmed profiler costs one
  // predicted branch per quantum.
  const bool prof =
      prof_armed_ != 0 && lwp->proc->prof != nullptr && lwp->proc->prof->on;
  if (finj_ != nullptr || chaos_ || kt_.armed()) {
    ++counters_.quanta_interp;
    if (prof) {
      ExecuteLwpImpl<true, true>(lwp, budget);
    } else {
      ExecuteLwpImpl<true, false>(lwp, budget);
    }
    return;
  }
  // Un-hooked: the block engine is the default; kInterp pins the classic
  // interpreter (differential testing, benchmarking the baseline).
  if (exec_engine_ == ExecEngine::kInterp) {
    ++counters_.quanta_interp;
    if (prof) {
      ExecuteLwpImpl<false, true>(lwp, budget);
    } else {
      ExecuteLwpImpl<false, false>(lwp, budget);
    }
  } else {
    ++counters_.quanta_blocks;
    if (prof) {
      ExecuteLwpBlocks<true>(lwp, budget);
    } else {
      ExecuteLwpBlocks<false>(lwp, budget);
    }
  }
}

namespace {

// Charge profiler samples for the retired-instruction interval
// (before, after]: one sample per 2^period_log2 boundary crossed, all
// attributed to pc. Pure side-state writes — nothing the simulation
// observes can depend on this.
inline void ProfCharge(ProfState* ps, uint32_t pc, uint64_t before,
                       uint64_t after) {
  uint64_t n = (after >> ps->period_log2) - (before >> ps->period_log2);
  if (n != 0) {
    ps->samples += n;
    ps->pc_hits[pc] += n;
  }
}

}  // namespace

template <bool kHooks, bool kProf>
void Kernel::ExecuteLwpImpl(Lwp* lwp, int budget) {
  Proc* p = lwp->proc;
  if constexpr (kHooks) {
    if (finj_ && p->as && finj_->Fire(FaultSite::kTlbFlush)) {
      // Forced whole-TLB invalidation: every cached translation must be
      // re-derivable from the mapping structure (misses, never wrong data).
      p->as->FlushTlb();
    }
  }
  // Pending-work checks (direct-stop requests and signal delivery) only need
  // to re-run after events that can change that state: within this single-
  // threaded simulation, nothing outside this LWP's own syscalls, faults and
  // signal dispatch can post new work mid-quantum. Checking once and again
  // after each such event keeps the straight-line instruction path free of
  // per-instruction SigSet arithmetic.
  bool check_events = true;
  while (budget-- > 0 && lwp->state == LwpState::kRunning &&
         p->state == Proc::State::kActive) {
    if (lwp->in_syscall) {
      ++ticks_;
      ++p->stime;
      ContinueSyscall(lwp);
      check_events = true;
      if constexpr (kHooks) {
        // Chaos: the syscall-exit stop point is also a preemption point.
        if (chaos_ && !lwp->in_syscall && (ChaosNext() & 3) == 0) {
          break;
        }
      }
      continue;
    }
    if (check_events) {
      if (lwp->lwp_dstop) {
        lwp->lwp_dstop = false;
        StopLwp(lwp, PR_REQUESTED, 0, /*istop=*/true);
        break;
      }
      // "Just before a process returns to user level, it checks for the
      // presence of a signal to be acted upon."
      if (NeedIssig(lwp)) {
        if (Issig(lwp)) {
          Psig(lwp);
        }
        if (lwp->state != LwpState::kRunning || p->state != Proc::State::kActive) {
          break;
        }
        continue;
      }
      check_events = false;
    }
    [[maybe_unused]] uint32_t step_pc = 0;
    if constexpr (kProf) {
      step_pc = lwp->regs.pc;
    }
    StepResult r = CpuStep(lwp->regs, lwp->fpregs, *p->as);
    ++ticks_;
    ++p->utime;
    ++counters_.instructions;
    if constexpr (kProf) {
      ProfCharge(p->prof.get(), step_pc, p->utime - 1, p->utime);
    }
    if (r.kind == StepResult::kSyscall) {
      SyscallTrap(lwp);
      check_events = true;
      if constexpr (kHooks) {
        // Chaos: force preemption at the syscall-entry stop point so other
        // runnable lwps interleave with the entry/exit window.
        if (chaos_ && (ChaosNext() & 3) == 0) {
          break;
        }
      }
    } else if (r.kind == StepResult::kFault) {
      HandleFault(lwp, r.fault, r.fault_addr);
      check_events = true;
    }
  }
}

template <bool kProf>
void Kernel::ExecuteLwpBlocks(Lwp* lwp, int budget) {
  // This loop is the un-hooked interpreter quantum (ExecuteLwpImpl<false>)
  // with the single CpuStep replaced by a block-cache run. Everything
  // observable — ticks, utime/stime, instruction counts, the order of
  // event checks relative to executed instructions, fault/syscall pcs —
  // must stay byte-identical between the two; change them in lockstep.
  // kProf samples at block-entry-pc granularity: a run of N instructions
  // charges every period boundary it crosses to the block's entry pc.
  Proc* p = lwp->proc;
  bool check_events = true;
  while (budget-- > 0 && lwp->state == LwpState::kRunning &&
         p->state == Proc::State::kActive) {
    if (lwp->in_syscall) {
      ++ticks_;
      ++p->stime;
      ContinueSyscall(lwp);
      check_events = true;
      continue;
    }
    if (check_events) {
      if (lwp->lwp_dstop) {
        lwp->lwp_dstop = false;
        StopLwp(lwp, PR_REQUESTED, 0, /*istop=*/true);
        break;
      }
      if (NeedIssig(lwp)) {
        if (Issig(lwp)) {
          Psig(lwp);
        }
        if (lwp->state != LwpState::kRunning || p->state != Proc::State::kActive) {
          break;
        }
        continue;
      }
      check_events = false;
    }
    AddressSpace& as = *p->as;
    const Block* blk = nullptr;
    if ((lwp->regs.psr & kPsrT) == 0 && as.CodeCacheActive()) {
      blk = as.blocks().Get(lwp->regs.pc, as);
    }
    if (blk == nullptr) {
      // Single-step fallback: trace bit set, watchpoints active, TLB off,
      // or the pc is not block-cacheable (unmapped, shared text, ...). The
      // interpreter produces the authoritative result for this instruction.
      ++as.blocks().stats().fallback_steps;
      [[maybe_unused]] uint32_t step_pc = 0;
      if constexpr (kProf) {
        step_pc = lwp->regs.pc;
      }
      StepResult r = CpuStep(lwp->regs, lwp->fpregs, as);
      ++ticks_;
      ++p->utime;
      ++counters_.instructions;
      if constexpr (kProf) {
        ProfCharge(p->prof.get(), step_pc, p->utime - 1, p->utime);
      }
      if (r.kind == StepResult::kSyscall) {
        SyscallTrap(lwp);
        check_events = true;
      } else if (r.kind == StepResult::kFault) {
        HandleFault(lwp, r.fault, r.fault_addr);
        check_events = true;
      }
      continue;
    }
    // The loop condition already charged one budget unit for this
    // iteration, so the block may retire 1 + budget instructions; charge
    // the surplus afterwards. Exactly the accounting the per-instruction
    // loop would produce for the same run.
    [[maybe_unused]] uint32_t block_pc = 0;
    if constexpr (kProf) {
      block_pc = lwp->regs.pc;
    }
    BlockRun run =
        ExecuteBlock(*blk, lwp->regs, lwp->fpregs, as,
                     static_cast<uint32_t>(budget) + 1);
    budget -= static_cast<int>(run.executed) - 1;
    ticks_ += run.executed;
    p->utime += run.executed;
    counters_.instructions += run.executed;
    if constexpr (kProf) {
      ProfCharge(p->prof.get(), block_pc, p->utime - run.executed, p->utime);
    }
    if (run.last.kind == StepResult::kSyscall) {
      SyscallTrap(lwp);
      check_events = true;
    } else if (run.last.kind == StepResult::kFault) {
      HandleFault(lwp, run.last.fault, run.last.fault_addr);
      check_events = true;
    }
  }
}

std::string Kernel::ExecEngineMetricsText() const {
  BlockStats total;
  std::set<const AddressSpace*> seen;
  for (const Proc* p = all_head_; p != nullptr; p = p->pt_all_next) {
    if (!p->as || !seen.insert(p->as.get()).second) {
      continue;
    }
    if (const BlockCache* bc = p->as->blocks_if()) {
      const BlockStats& s = bc->stats();
      total.built += s.built;
      total.hits += s.hits;
      total.misses += s.misses;
      total.invalidations += s.invalidations;
      total.fallback_steps += s.fallback_steps;
    }
  }
  std::ostringstream os;
  os << "exec_engine "
     << (exec_engine_ == ExecEngine::kInterp
             ? "interp"
             : exec_engine_ == ExecEngine::kBlocks ? "blocks" : "auto")
     << "\n";
  os << "exec_quanta_interp " << counters_.quanta_interp << "\n";
  os << "exec_quanta_blocks " << counters_.quanta_blocks << "\n";
  os << "bb_built " << total.built << "\n";
  os << "bb_hits " << total.hits << "\n";
  os << "bb_misses " << total.misses << "\n";
  os << "bb_invalidations " << total.invalidations << "\n";
  os << "bb_fallback_steps " << total.fallback_steps << "\n";
  return os.str();
}

Result<void> Kernel::SetProfiling(Proc* p, int period_log2) {
  if (p == nullptr) {
    return Errno::kESRCH;
  }
  if (period_log2 < 0) {
    if (p->prof != nullptr && p->prof->on) {
      p->prof->on = false;
      --prof_armed_;
    }
    // Disarming keeps the buckets: /proc2/<pid>/prof stays readable after
    // the sampling window closes.
    return Result<void>::Ok();
  }
  if (period_log2 > 30) {
    return Errno::kEINVAL;
  }
  if (p->prof == nullptr) {
    p->prof = std::make_unique<ProfState>();
  }
  if (!p->prof->on) {
    ++prof_armed_;
  }
  p->prof->on = true;
  p->prof->period_log2 = static_cast<uint32_t>(period_log2);
  p->prof->samples = 0;
  p->prof->pc_hits.clear();
  return Result<void>::Ok();
}

void Kernel::ReleaseProf(Proc* p) {
  if (p->prof != nullptr) {
    if (p->prof->on) {
      --prof_armed_;
    }
    p->prof.reset();
  }
}

std::string Kernel::ProfText(const Proc& p) const {
  // Folded-stack text: one "frame1;frame2 count" line per bucket, which is
  // exactly what flamegraph.pl eats. Our "stack" is two frames deep — the
  // executable name and the sampled pc — sorted by pc for a deterministic
  // dump. An unprofiled process reads as an empty file, not an error.
  std::string out;
  if (p.prof == nullptr) {
    return out;
  }
  char line[128];
  for (const auto& [pc, hits] : p.prof->pc_hits) {
    std::snprintf(line, sizeof(line), "%s;0x%04x %llu\n", p.name.c_str(), pc,
                  static_cast<unsigned long long>(hits));
    out += line;
  }
  return out;
}

void Kernel::Wakeup(const void* chan) {
  if (chan == nullptr) {
    return;
  }
  // Walk only the sleep bucket this channel hashes to; waking an lwp moves
  // it off the bucket list, so save the link first.
  Lwp* l = sleepq_[SleepBucket(chan)];
  while (l != nullptr) {
    Lwp* next = l->q_next;
    if (l->sleep.chan == chan) {
      LwpSetState(l, LwpState::kRunning);
    }
    l = next;
  }
}

// --- Signals: issig()/psig() per Figure 4 -------------------------------------

bool Kernel::NeedIssig(Lwp* lwp) const {
  const Proc* p = lwp->proc;
  if (p->trace.dstop_pending || p->sig.cursig != 0) {
    return true;
  }
  SigSet deliverable = p->sig.pending;
  deliverable -= p->sig.hold;
  return !deliverable.Empty();
}

int Kernel::PromoteSignal(Proc* p) {
  SigSet deliverable = p->sig.pending;
  deliverable -= p->sig.hold;
  int s = deliverable.First();
  if (s != 0) {
    p->sig.pending.Remove(s);
    p->sig.cursig = s;
    p->sig.cursig_info = p->sig.pending_info[s];
  }
  return s;
}

bool Kernel::Issig(Lwp* lwp) {
  Proc* p = lwp->proc;
  for (;;) {
    if (p->sig.cursig == 0) {
      if (PromoteSignal(p) != 0) {
        lwp->sig_reported = false;
        lwp->pt_reported = false;
      }
    }
    int s = p->sig.cursig;
    if (s != 0) {
      if (s == SIGKILL) {
        // SIGKILL cannot be caught, held, or traced.
        ExitProc(p, WSignalStatus(SIGKILL, false));
        return false;
      }
      const SigAction& act = p->sig.actions[s];
      bool traced = p->trace.sigtrace.Has(s);
      if (act.handler == SIG_IGN && !traced && !p->pt_traced) {
        p->sig.cursig = 0;
        lwp->sig_reported = false;
        lwp->pt_reported = false;
        continue;
      }
      // Signalled stop: the signal is an event of interest.
      if (traced && !lwp->sig_reported) {
        lwp->sig_reported = true;
        StopLwp(lwp, PR_SIGNALLED, static_cast<uint16_t>(s), /*istop=*/true);
        return false;
      }
      // Job-control stop signals: the default action is taken within
      // issig(). A process may stop twice — first on the signalled stop
      // above, then here if it was set running without clearing the signal.
      if (IsJobControlStop(s) && act.handler == SIG_DFL) {
        p->sig.cursig = 0;
        lwp->sig_reported = false;
        lwp->pt_reported = false;
        JobControlStop(p, s);
        return false;
      }
      if (s == SIGCONT && act.handler == SIG_DFL) {
        // The continue action already happened when the signal was posted.
        p->sig.cursig = 0;
        lwp->sig_reported = false;
        lwp->pt_reported = false;
        continue;
      }
      // ptrace: a traced process stops on receipt of any signal, whether or
      // not that signal is traced via /proc (and after the /proc stop if it
      // is: "ptrace has control").
      if (p->pt_traced && !lwp->pt_reported) {
        lwp->pt_reported = true;
        p->pt_owned_stop = true;
        p->pt_stopsig = s;
        p->pt_wait_reported = false;
        StopLwp(lwp, PR_SIGNALLED, static_cast<uint16_t>(s), /*istop=*/false);
        Proc* parent = FindProc(p->ppid);
        if (parent != nullptr) {
          Wakeup(parent);
        }
        return false;
      }
    }
    // The /proc stop directive is checked last: "/proc gets the last word."
    if (p->trace.dstop_pending) {
      if (finj_ && finj_->Fire(FaultSite::kDelayedStop)) {
        // Chaos: delivery is deferred to a later issig(); the directive
        // itself stays pending, so the stop still lands eventually (the
        // rule's max_hits bounds the total deferral).
        return p->sig.cursig != 0;
      }
      p->trace.dstop_pending = false;
      StopLwp(lwp, PR_REQUESTED, 0, /*istop=*/true);
      return false;
    }
    return p->sig.cursig != 0;
  }
}

// The signal-handler stack frame psig() pushes and sigreturn restores.
namespace {
struct SigFrame {
  uint32_t magic;
  Regs regs;
  uint32_t hold_words[4];
};
constexpr uint32_t kSigFrameMagic = 0x51474953;  // "SIGQ"
}  // namespace

void Kernel::Psig(Lwp* lwp) {
  Proc* p = lwp->proc;
  int s = p->sig.cursig;
  if (s == 0) {
    return;
  }
  SigInfo info = p->sig.cursig_info;
  p->sig.cursig = 0;
  lwp->sig_reported = false;
  lwp->pt_reported = false;
  ++p->nsignals;

  const SigAction& act = p->sig.actions[s];
  kt_.Emit(KtEvent::kSignalDeliver, p->pid, lwp->lwpid, static_cast<uint32_t>(s),
           act.handler == SIG_IGN || act.handler == SIG_DFL ? 0 : act.handler);
  if (act.handler == SIG_IGN) {
    return;
  }
  if (act.handler == SIG_DFL) {
    switch (DefaultDisp(s)) {
      case SigDisp::kIgnore:
      case SigDisp::kContinue:
        return;
      case SigDisp::kStop:
        return;  // handled inside issig()
      case SigDisp::kTerminate:
        ExitProc(p, WSignalStatus(s, false));
        return;
      case SigDisp::kCore:
        ExitProc(p, WSignalStatus(s, true));
        return;
    }
    return;
  }

  // Deliver to a user handler: push the saved context onto the user stack,
  // enter the handler with the signal number in r1, and extend the hold
  // mask. sigreturn(2) unwinds.
  SigFrame frame;
  frame.magic = kSigFrameMagic;
  frame.regs = lwp->regs;
  static_assert(SigSet::kMaxMember == 128);
  std::memcpy(frame.hold_words, &p->sig.hold, sizeof(frame.hold_words));

  uint32_t nsp = lwp->regs.sp() - static_cast<uint32_t>(sizeof(SigFrame));
  if (!Copyout(p, nsp, &frame, sizeof(frame)).ok()) {
    // Cannot build the signal frame (stack gone): terminate, as real kernels
    // do on a double fault.
    ExitProc(p, WSignalStatus(SIGSEGV, true));
    return;
  }
  lwp->regs.set_sp(nsp);
  lwp->regs.pc = act.handler;
  lwp->regs.r[1] = static_cast<uint32_t>(s);
  lwp->regs.r[2] = info.si_addr;
  p->sig.hold |= act.mask;
  p->sig.hold.Add(s);
}

Kernel::SysResult Kernel::SysSigreturn(Lwp* lwp) {
  Proc* p = lwp->proc;
  SigFrame frame;
  if (!Copyin(p, lwp->regs.sp(), &frame, sizeof(frame)).ok() ||
      frame.magic != kSigFrameMagic) {
    return SysResult::Fail(Errno::kEFAULT);
  }
  lwp->regs = frame.regs;
  std::memcpy(&p->sig.hold, frame.hold_words, sizeof(frame.hold_words));
  // The restored registers are the complete interrupted context; the
  // syscall-return path must not touch them.
  return SysResult::OkNoRegs();
}

void Kernel::StopLwp(Lwp* lwp, uint16_t why, uint16_t what, bool istop) {
  LwpSetState(lwp, LwpState::kStopped);
  lwp->stop_why = why;
  lwp->stop_what = what;
  lwp->istop = istop;
  if (kt_.armed()) {
    Proc* p = lwp->proc;
    kt_.Emit(KtEvent::kStop, p->pid, lwp->lwpid, why, what);
    // If a stop directive was outstanding and this was the last lwp to
    // reach its stop, the request->all-stopped wait is complete.
    if (p->stop_req_tick != 0 && p->AllLwpsStopped()) {
      kt_.RecordStopWait(ticks_ - (p->stop_req_tick - 1));
      p->stop_req_tick = 0;
    }
  }
  Wakeup(kPollChan);
}

void Kernel::ResumeLwp(Lwp* lwp) {
  if (lwp->stop_why != 0) {
    kt_.Emit(KtEvent::kRun, lwp->proc->pid, lwp->lwpid, lwp->stop_why, 0);
  }
  lwp->stop_why = 0;
  lwp->stop_what = 0;
  lwp->istop = false;
  if (lwp->stopped_while_asleep) {
    lwp->stopped_while_asleep = false;
    // Restore the channel before the transition so the sleep-bucket insert
    // hashes the channel the lwp is actually sleeping on.
    lwp->sleep = lwp->saved_sleep;
    LwpSetState(lwp, LwpState::kSleeping);
    ArmSleepTimer(lwp);  // the heap entry went stale while it was stopped
  } else {
    LwpSetState(lwp, LwpState::kRunning);
  }
}

void Kernel::JobControlStop(Proc* p, int sig) {
  for (auto& l : p->lwps) {
    if (l->state == LwpState::kDead) {
      continue;
    }
    if (l->state == LwpState::kSleeping) {
      l->saved_sleep = l->sleep;
      l->stopped_while_asleep = true;
    }
    StopLwp(l.get(), PR_JOBCONTROL, static_cast<uint16_t>(sig), /*istop=*/false);
  }
  // Notify the parent (wait with WUNTRACED is not modelled, but SIGCLD is).
  Proc* parent = FindProc(p->ppid);
  if (parent != nullptr && !parent->native) {
    SigInfo info;
    info.si_signo = SIGCLD;
    info.si_pid = p->pid;
    PostSignal(parent, SIGCLD, info);
  }
}

void Kernel::JobControlCont(Proc* p) {
  for (auto& l : p->lwps) {
    if (l->state == LwpState::kStopped && l->stop_why == PR_JOBCONTROL) {
      ResumeLwp(l.get());
    }
  }
}

void Kernel::PostSignal(Proc* p, int sig, const SigInfo& info) {
  if (p == nullptr || p->state != Proc::State::kActive || !SigSet::Valid(sig)) {
    return;
  }
  if (p->native || p->system_proc) {
    return;  // controllers and system processes do not take signals
  }
  kt_.Emit(KtEvent::kSignalPost, p->pid, 0, static_cast<uint32_t>(sig),
           static_cast<uint32_t>(info.si_pid));
  if (sig == SIGCONT) {
    // Continuing is done when the signal is generated, not delivered.
    for (int stop_sig : {SIGSTOP, SIGTSTP, SIGTTIN, SIGTTOU}) {
      p->sig.pending.Remove(stop_sig);
    }
    JobControlCont(p);
  }
  if (IsJobControlStop(sig)) {
    p->sig.pending.Remove(SIGCONT);
  }
  if (sig == SIGKILL) {
    // SIGKILL terminates even stopped processes: force every lwp to a point
    // where issig() runs.
    for (auto& l : p->lwps) {
      if (l->state == LwpState::kStopped) {
        l->stopped_while_asleep = false;
        ResumeLwp(l.get());
      }
    }
  }

  const SigAction& act = p->sig.actions[sig];
  bool traced = p->trace.sigtrace.Has(sig) || p->pt_traced;
  if (!traced && sig != SIGKILL && sig != SIGSTOP) {
    // Discard at generation time when the disposition is to ignore.
    if (act.handler == SIG_IGN) {
      return;
    }
    if (act.handler == SIG_DFL) {
      SigDisp d = DefaultDisp(sig);
      if (d == SigDisp::kIgnore || (sig == SIGCONT && d == SigDisp::kContinue)) {
        return;
      }
    }
  }

  p->sig.pending.Add(sig);
  p->sig.pending_info[sig] = info;

  // Wake interruptible sleepers so the signal is noticed.
  for (auto& l : p->lwps) {
    if (l->state == LwpState::kSleeping && l->sleep.interruptible) {
      l->interrupted = true;
      LwpSetState(l.get(), LwpState::kRunning);
    }
  }
}

// --- Faults -------------------------------------------------------------------

void Kernel::HandleFault(Lwp* lwp, int fault, uint32_t addr) {
  Proc* p = lwp->proc;
  ++p->nfaults;
  kt_.Emit(KtEvent::kFault, p->pid, lwp->lwpid, static_cast<uint32_t>(fault), addr);
  if (fault == FLTTRACE) {
    lwp->regs.psr &= ~kPsrT;  // single-step is one-shot
  }
  if (p->trace.flttrace.Has(fault)) {
    p->trace.cur_fault = fault;
    p->trace.cur_fault_addr = addr;
    StopLwp(lwp, PR_FAULTED, static_cast<uint16_t>(fault), /*istop=*/true);
    return;
  }
  ConvertFaultToSignal(lwp, fault, addr);
}

void Kernel::ConvertFaultToSignal(Lwp* lwp, int fault, uint32_t addr) {
  Proc* p = lwp->proc;
  int sig = FaultToSignal(fault);
  const SigAction& act = p->sig.actions[sig];
  bool blocked = p->sig.hold.Has(sig);
  bool ignored = act.handler == SIG_IGN ||
                 (act.handler == SIG_DFL && DefaultDisp(sig) == SigDisp::kIgnore);
  if ((blocked || ignored) && !p->trace.sigtrace.Has(sig)) {
    // An ignored or held fault signal would re-execute the faulting
    // instruction forever; force the default fatal action.
    ExitProc(p, WSignalStatus(sig, true));
    return;
  }
  SigInfo info;
  info.si_signo = sig;
  info.si_code = fault;
  info.si_addr = addr;
  PostSignal(p, sig, info);
}

// --- /proc control primitives ---------------------------------------------------

Result<void> Kernel::PrStop(Proc* target) {
  if (target->state != Proc::State::kActive) {
    return Errno::kENOENT;
  }
  if (kt_.metrics_on() && target->stop_req_tick == 0 && !target->AllLwpsStopped()) {
    // Start the request->all-stopped clock (closed in StopLwp). Stored with
    // a +1 bias so tick 0 is distinguishable from "no request outstanding".
    target->stop_req_tick = ticks_ + 1;
  }
  bool any_pending = false;
  for (auto& l : target->lwps) {
    switch (l->state) {
      case LwpState::kDead:
        break;
      case LwpState::kStopped:
        // A process stopped by job control or owned by ptrace keeps the
        // directive pending: "when restarted by SIGCONT, it stops again on a
        // requested stop before exiting issig() — /proc gets the last word."
        if (!l->istop) {
          any_pending = true;
        }
        break;
      case LwpState::kSleeping:
        if (l->sleep.interruptible) {
          // Stop it in its sleep, without disturbing the system call.
          l->saved_sleep = l->sleep;
          l->stopped_while_asleep = true;
          StopLwp(l.get(), PR_REQUESTED, 0, /*istop=*/true);
        } else {
          any_pending = true;
        }
        break;
      case LwpState::kRunning:
        any_pending = true;
        // A running lwp may be mid-quantum on another CPU: the stop
        // directive reaches it as a reschedule IPI, honored at its next
        // quantum boundary.
        if (smp_.ncpus() > 1 && l->cpu != cur_cpu_) {
          smp_.ReschedIpi(l->cpu, target->pid, l->lwpid);
        }
        break;
    }
  }
  if (any_pending) {
    target->trace.dstop_pending = true;
  }
  return Result<void>::Ok();
}

Result<void> Kernel::PrStopLwp(Lwp* lwp) {
  if (lwp->proc->state != Proc::State::kActive) {
    return Errno::kENOENT;
  }
  switch (lwp->state) {
    case LwpState::kDead:
      return Errno::kENOENT;
    case LwpState::kStopped:
      return Result<void>::Ok();
    case LwpState::kSleeping:
      if (lwp->sleep.interruptible) {
        lwp->saved_sleep = lwp->sleep;
        lwp->stopped_while_asleep = true;
        StopLwp(lwp, PR_REQUESTED, 0, /*istop=*/true);
      } else {
        lwp->lwp_dstop = true;
      }
      return Result<void>::Ok();
    case LwpState::kRunning:
      lwp->lwp_dstop = true;
      if (smp_.ncpus() > 1 && lwp->cpu != cur_cpu_) {
        smp_.ReschedIpi(lwp->cpu, lwp->proc->pid, lwp->lwpid);
      }
      return Result<void>::Ok();
  }
  return Result<void>::Ok();
}

bool Kernel::PrIsStopped(const Proc* target) const {
  for (const auto& l : target->lwps) {
    if (l->state == LwpState::kStopped && l->istop) {
      return true;
    }
  }
  return false;
}

Result<void> Kernel::PrWaitStop(Proc* target) {
  Pid pid = target->pid;
  auto stopped_any = [](Proc* p) {
    for (const auto& l : p->lwps) {
      if (l->state == LwpState::kStopped) {
        return true;
      }
    }
    return false;
  };
  RunUntil([&]() {
    Proc* p = FindProc(pid);
    return p == nullptr || p->state != Proc::State::kActive || stopped_any(p);
  });
  Proc* p = FindProc(pid);
  if (p == nullptr || p->state != Proc::State::kActive) {
    return Errno::kENOENT;  // the process exited while we waited
  }
  if (!stopped_any(p)) {
    return Errno::kEDEADLK;  // simulation went idle without a stop
  }
  return Result<void>::Ok();
}

Result<void> Kernel::PrRunLwp(Lwp* lwp, const RunArgs& args) {
  Proc* p = lwp->proc;
  if (lwp->state != LwpState::kStopped || !lwp->istop) {
    return Errno::kEBUSY;
  }
  if (args.set_trace) {
    p->trace.sigtrace = args.trace;
  }
  if (args.set_fault) {
    p->trace.flttrace = args.fault;
  }
  if (args.set_hold) {
    p->sig.hold = args.hold;
    p->sig.hold.Remove(SIGKILL);
    p->sig.hold.Remove(SIGSTOP);
  }
  if (args.clear_sig) {
    p->sig.cursig = 0;
    for (auto& l : p->lwps) {
      l->sig_reported = false;
      l->pt_reported = false;
    }
  }
  if (args.clear_fault) {
    p->trace.cur_fault = 0;
  }
  if (args.set_vaddr) {
    lwp->regs.pc = args.vaddr;
  }
  if (args.step) {
    lwp->regs.psr |= kPsrT;
  }
  if (args.abort && lwp->in_syscall) {
    lwp->abort_syscall = true;
    // The aborted call must not resume its sleep; it goes straight to the
    // syscall exit path with EINTR.
    lwp->stopped_while_asleep = false;
  }
  if (args.stop) {
    p->trace.dstop_pending = true;
  }

  // An unclearned fault converts to its signal on resume.
  if (p->trace.cur_fault != 0) {
    int fault = p->trace.cur_fault;
    uint32_t addr = p->trace.cur_fault_addr;
    p->trace.cur_fault = 0;
    ConvertFaultToSignal(lwp, fault, addr);
    if (p->state != Proc::State::kActive) {
      return Result<void>::Ok();
    }
  }
  ResumeLwp(lwp);
  return Result<void>::Ok();
}

Result<void> Kernel::PrRun(Proc* target, const RunArgs& args) {
  if (target->state != Proc::State::kActive) {
    return Errno::kENOENT;
  }
  // Resume every lwp stopped on an event of interest; the process-level
  // interface treats the stop as a process-wide condition.
  Lwp* primary = nullptr;
  for (auto& l : target->lwps) {
    if (l->state == LwpState::kStopped && l->istop) {
      primary = l.get();
      break;
    }
  }
  if (primary == nullptr) {
    return Errno::kEBUSY;
  }
  SVR4_RETURN_IF_ERROR(PrRunLwp(primary, args));
  for (auto& l : target->lwps) {
    if (l.get() != primary && l->state == LwpState::kStopped && l->istop) {
      RunArgs rest;  // auxiliary lwps resume plainly
      (void)PrRunLwp(l.get(), rest);
    }
  }
  return Result<void>::Ok();
}

Result<void> Kernel::PrKill(Proc* target, int sig) {
  if (!SigSet::Valid(sig)) {
    return Errno::kEINVAL;
  }
  SigInfo info;
  info.si_signo = sig;
  PostSignal(target, sig, info);
  return Result<void>::Ok();
}

Result<void> Kernel::PrUnkill(Proc* target, int sig) {
  if (!SigSet::Valid(sig)) {
    return Errno::kEINVAL;
  }
  target->sig.pending.Remove(sig);
  return Result<void>::Ok();
}

Result<void> Kernel::PrSetSig(Proc* target, int sig, const SigInfo& info) {
  if (sig == 0) {
    target->sig.cursig = 0;
    for (auto& l : target->lwps) {
      l->sig_reported = false;
      l->pt_reported = false;
    }
    return Result<void>::Ok();
  }
  if (!SigSet::Valid(sig)) {
    return Errno::kEINVAL;
  }
  // A signal planted by the controlling process is not a fresh receipt: the
  // process acts on it when resumed rather than stopping to report it again.
  target->sig.cursig = sig;
  target->sig.cursig_info = info;
  for (auto& l : target->lwps) {
    l->sig_reported = true;
    l->pt_reported = true;
  }
  return Result<void>::Ok();
}

void Kernel::PrLastClose(Proc* target) {
  // Run-on-last-close: when the last writable /proc descriptor goes away,
  // clear all tracing flags and set the process running if it is stopped.
  TraceState& t = target->trace;
  t.excl = false;
  if (!t.run_on_last_close) {
    return;
  }
  t.sigtrace.Clear();
  t.flttrace.Clear();
  t.sysentry.Clear();
  t.sysexit.Clear();
  t.inherit_on_fork = false;
  t.run_on_last_close = false;
  t.dstop_pending = false;
  t.cur_fault = 0;
  for (auto& l : target->lwps) {
    if (l->state == LwpState::kStopped && l->stop_why != PR_JOBCONTROL &&
        !target->pt_owned_stop) {
      ResumeLwp(l.get());
    }
  }
}

void Kernel::PrStaleClose(Proc* target, bool counted_writable) {
  // A descriptor from a dead generation closes: the set-id exec already
  // moved its ledger entry to the stale side, so drain that side here.
  TraceState& t = target->trace;
  if (t.stale_total_opens > 0) {
    --t.stale_total_opens;
  }
  if (counted_writable && t.stale_writable_opens > 0) {
    --t.stale_writable_opens;
  }
  if (t.writable_opens > 0) {
    // A live-generation writer exists; last-close responsibility moved to it
    // the moment it opened, and a stale drain must not resume the target or
    // clear state a live controller now owns.
    return;
  }
  if (counted_writable && t.stale_writable_opens == 0) {
    // Last invalidated writer is gone: the exec-time directed stop and
    // run-on-last-close must fire exactly as if the writer closed normally.
    PrLastClose(target);
    return;
  }
  if (t.stale_writable_opens == 0 && t.stale_total_opens == 0 && t.run_on_last_close) {
    // The invalidated set held no writer at all (or its writers already
    // drained without tripping run-on-last-close) and this was the final
    // stale descriptor of any kind. Without this arm, a target whose
    // controllers were all read-only at exec time stays directed-stopped
    // forever after the last stale close.
    PrLastClose(target);
  }
}

// --- kill(2) and wait(2) for native processes ------------------------------------

Result<void> Kernel::Kill(Proc* sender, Pid pid, int sig) {
  if (sig < 0 || sig > SigSet::kMaxMember) {
    return Errno::kEINVAL;
  }
  auto permitted = [&](Proc* t) {
    return sender->creds.IsSuper() || sender->creds.euid == t->creds.euid ||
           sender->creds.euid == t->creds.ruid || sender->creds.ruid == t->creds.ruid;
  };
  auto send_one = [&](Proc* t) {
    if (sig != 0) {
      SigInfo info;
      info.si_signo = sig;
      info.si_pid = sender->pid;
      info.si_uid = static_cast<int32_t>(sender->creds.ruid);
      PostSignal(t, sig, info);
    }
  };
  if (pid > 0) {
    Proc* t = FindProc(pid);
    if (t == nullptr || t->state != Proc::State::kActive) {
      return Errno::kESRCH;
    }
    if (!permitted(t)) {
      return Errno::kEPERM;
    }
    send_one(t);
    return Result<void>::Ok();
  }
  // Process group: pid == 0 means the sender's group, negative a named one.
  Pid pgrp = pid == 0 ? sender->pgrp : -pid;
  bool hit = false;
  for (Proc* p = all_head_; p != nullptr; p = p->pt_all_next) {
    if (p->pgrp == pgrp && p->state == Proc::State::kActive && !p->system_proc &&
        !p->native) {
      if (permitted(p)) {
        send_one(p);
        hit = true;
      }
    }
  }
  return hit ? Result<void>::Ok() : Result<void>(Errno::kESRCH);
}

bool Kernel::WaitScan(Proc* parent, Pid filter, WaitResult* out, bool* any_children) {
  *any_children = false;
  // O(children of parent), not O(all procs): walk the intrusive children
  // list. ReapZombie frees the child, so hold the sibling link first.
  Proc* next = nullptr;
  for (Proc* p = parent->pt_first_child; p != nullptr; p = next) {
    next = p->pt_sib_next;
    if (p->ppid != parent->pid || p == parent) {
      continue;
    }
    if (filter > 0 && p->pid != filter) {
      continue;
    }
    *any_children = true;
    if (p->state == Proc::State::kZombie) {
      out->pid = p->pid;
      out->status = p->exit_status;
      ReapZombie(p, parent);
      return true;
    }
    // ptrace: a stop is reported to the parent via wait(2).
    if (p->pt_traced && p->pt_owned_stop && !p->pt_wait_reported) {
      bool stopped = false;
      for (auto& l : p->lwps) {
        if (l->state == LwpState::kStopped) {
          stopped = true;
        }
      }
      if (stopped) {
        p->pt_wait_reported = true;
        out->pid = p->pid;
        out->status = WStopStatus(p->pt_stopsig);
        return true;
      }
    }
  }
  return false;
}

Result<WaitResult> Kernel::Wait(Proc* p, Pid pid, bool nohang) {
  for (;;) {
    WaitResult out;
    bool any = false;
    if (WaitScan(p, pid, &out, &any)) {
      return out;
    }
    if (!any) {
      return Errno::kECHILD;
    }
    if (nohang) {
      out.pid = 0;
      return out;
    }
    if (!Step()) {
      return Errno::kEDEADLK;
    }
  }
}

Result<int64_t> Kernel::Ptrace(Proc* caller, int req, Pid pid, uint32_t addr, uint32_t data) {
  return PtraceImpl(caller, req, pid, addr, data);
}

// --- User memory helpers ----------------------------------------------------------

Result<void> Kernel::Copyin(Proc* p, uint32_t va, void* buf, uint32_t n) {
  if (!p->as) {
    return Errno::kEFAULT;
  }
  if (finj_ && finj_->Fire(FaultSite::kCopyin)) {
    return Errno::kEFAULT;
  }
  auto r = p->as->PrRead(va, std::span<uint8_t>(static_cast<uint8_t*>(buf), n));
  if (!r.ok() || *r != static_cast<int64_t>(n)) {
    return Errno::kEFAULT;
  }
  return Result<void>::Ok();
}

Result<void> Kernel::Copyout(Proc* p, uint32_t va, const void* buf, uint32_t n) {
  if (!p->as) {
    return Errno::kEFAULT;
  }
  if (finj_ && finj_->Fire(FaultSite::kCopyout)) {
    return Errno::kEFAULT;
  }
  auto r = p->as->PrWrite(va, std::span<const uint8_t>(static_cast<const uint8_t*>(buf), n));
  if (!r.ok() || *r != static_cast<int64_t>(n)) {
    return Errno::kEFAULT;
  }
  return Result<void>::Ok();
}

Result<std::string> Kernel::CopyinStr(Proc* p, uint32_t va, uint32_t max) {
  std::string out;
  for (uint32_t i = 0; i < max; ++i) {
    char c;
    SVR4_RETURN_IF_ERROR(Copyin(p, va + i, &c, 1));
    if (c == 0) {
      return out;
    }
    out += c;
  }
  return Errno::kENAMETOOLONG;
}

}  // namespace svr4
