#include "svr4proc/kernel/core.h"

#include <algorithm>
#include <cstring>

namespace svr4 {
namespace {

struct RawHeader {
  uint32_t magic;
  uint32_t version;
  int32_t sig;
  uint32_t nsegs;
  // PrStatus and PrPsinfo follow, then per-segment headers + bytes.
};

struct RawSeg {
  uint32_t vaddr;
  uint32_t mflags;
  uint32_t size;
};

constexpr uint32_t kVersion = 1;

template <typename T>
void Append(std::vector<uint8_t>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
bool Take(std::span<const uint8_t>& in, T* v) {
  if (in.size() < sizeof(T)) {
    return false;
  }
  std::memcpy(v, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

}  // namespace

std::vector<uint8_t> CoreDump::Serialize() const {
  std::vector<uint8_t> out;
  RawHeader hdr{kMagic, kVersion, sig, static_cast<uint32_t>(segments.size())};
  Append(out, hdr);
  Append(out, status);
  Append(out, psinfo);
  for (const auto& seg : segments) {
    RawSeg rs{seg.vaddr, seg.mflags, static_cast<uint32_t>(seg.bytes.size())};
    Append(out, rs);
    out.insert(out.end(), seg.bytes.begin(), seg.bytes.end());
  }
  return out;
}

Result<CoreDump> CoreDump::Parse(std::span<const uint8_t> bytes) {
  RawHeader hdr;
  if (!Take(bytes, &hdr) || hdr.magic != kMagic || hdr.version != kVersion) {
    return Errno::kEINVAL;
  }
  CoreDump core;
  core.sig = hdr.sig;
  if (!Take(bytes, &core.status) || !Take(bytes, &core.psinfo)) {
    return Errno::kEINVAL;
  }
  for (uint32_t i = 0; i < hdr.nsegs; ++i) {
    RawSeg rs;
    if (!Take(bytes, &rs) || bytes.size() < rs.size) {
      return Errno::kEINVAL;
    }
    Segment seg;
    seg.vaddr = rs.vaddr;
    seg.mflags = rs.mflags;
    seg.bytes.assign(bytes.begin(), bytes.begin() + rs.size);
    bytes = bytes.subspan(rs.size);
    core.segments.push_back(std::move(seg));
  }
  return core;
}

Result<int64_t> CoreDump::ReadMem(uint32_t vaddr, std::span<uint8_t> buf) const {
  for (const auto& seg : segments) {
    uint64_t end = seg.vaddr + seg.bytes.size();
    if (vaddr >= seg.vaddr && vaddr < end) {
      size_t n = std::min<uint64_t>(buf.size(), end - vaddr);
      std::memcpy(buf.data(), seg.bytes.data() + (vaddr - seg.vaddr), n);
      return static_cast<int64_t>(n);
    }
  }
  return Errno::kEIO;
}

}  // namespace svr4
