#include "svr4proc/kernel/syscall.h"

#include <array>

#include "svr4proc/fs/vnode.h"
#include "svr4proc/isa/assembler.h"
#include "svr4proc/kernel/signal.h"

namespace svr4 {
namespace {

struct SysEntry {
  int num;
  std::string_view name;
  int nargs;
};

constexpr std::array<SysEntry, 45> kSysTable = {{
    {SYS_exit, "exit", 1},
    {SYS_fork, "fork", 0},
    {SYS_read, "read", 3},
    {SYS_write, "write", 3},
    {SYS_open, "open", 3},
    {SYS_close, "close", 1},
    {SYS_wait, "wait", 0},
    {SYS_creat, "creat", 2},
    {SYS_unlink, "unlink", 1},
    {SYS_exec, "exec", 2},
    {SYS_time, "time", 0},
    {SYS_brk, "brk", 1},
    {SYS_stat, "stat", 2},
    {SYS_lseek, "lseek", 3},
    {SYS_getpid, "getpid", 0},
    {SYS_setuid, "setuid", 1},
    {SYS_getuid, "getuid", 0},
    {SYS_ptrace, "ptrace", 4},
    {SYS_alarm, "alarm", 1},
    {SYS_pause, "pause", 0},
    {SYS_nice, "nice", 1},
    {SYS_kill, "kill", 2},
    {SYS_setpgrp, "setpgrp", 0},
    {SYS_dup, "dup", 1},
    {SYS_pipe, "pipe", 0},
    {SYS_setgid, "setgid", 1},
    {SYS_getgid, "getgid", 0},
    {SYS_ioctl, "ioctl", 3},
    {SYS_umask, "umask", 1},
    {SYS_setsid, "setsid", 0},
    {SYS_getpgrp, "getpgrp", 0},
    {SYS_getppid, "getppid", 0},
    {SYS_sleep, "sleep", 1},
    {SYS_yield, "yield", 0},
    {SYS_poll, "poll", 3},
    {SYS_sigprocmask, "sigprocmask", 3},
    {SYS_sigsuspend, "sigsuspend", 1},
    {SYS_sigreturn, "sigreturn", 0},
    {SYS_sigaction, "sigaction", 3},
    {SYS_sigpending, "sigpending", 1},
    {SYS_mmap, "mmap", 6},
    {SYS_munmap, "munmap", 2},
    {SYS_mprotect, "mprotect", 3},
    {SYS_vfork, "vfork", 0},
    {SYS_otime, "otime", 0},
}};

}  // namespace

std::string_view SyscallName(int num) {
  for (const auto& e : kSysTable) {
    if (e.num == num) {
      return e.name;
    }
  }
  switch (num) {
    case SYS_lwp_create:
      return "lwp_create";
    case SYS_lwp_exit:
      return "lwp_exit";
    case SYS_lwp_self:
      return "lwp_self";
    default:
      break;
  }
  static thread_local char buf[16];
  std::snprintf(buf, sizeof(buf), "sys#%d", num);
  return buf;
}

int SyscallByName(std::string_view name) {
  for (const auto& e : kSysTable) {
    if (e.name == name) {
      return e.num;
    }
  }
  if (name == "lwp_create") {
    return SYS_lwp_create;
  }
  if (name == "lwp_exit") {
    return SYS_lwp_exit;
  }
  if (name == "lwp_self") {
    return SYS_lwp_self;
  }
  return 0;
}

int SyscallNargs(int num) {
  for (const auto& e : kSysTable) {
    if (e.num == num) {
      return e.nargs;
    }
  }
  switch (num) {
    case SYS_lwp_create:
      return 2;
    case SYS_lwp_exit:
      return 0;
    case SYS_lwp_self:
      return 0;
    default:
      return 0;
  }
}

void DefineSyscallSymbols(Assembler& as) {
  for (const auto& e : kSysTable) {
    as.Define("SYS_" + std::string(e.name), static_cast<uint32_t>(e.num));
  }
  as.Define("SYS_lwp_create", SYS_lwp_create);
  as.Define("SYS_lwp_exit", SYS_lwp_exit);
  as.Define("SYS_lwp_self", SYS_lwp_self);

  for (int s = 1; s <= kNumSignals; ++s) {
    as.Define(std::string(SignalName(s)), static_cast<uint32_t>(s));
  }
  as.Define("SIG_DFL", SIG_DFL);
  as.Define("SIG_IGN", SIG_IGN);

  as.Define("O_RDONLY", O_RDONLY);
  as.Define("O_WRONLY", O_WRONLY);
  as.Define("O_RDWR", O_RDWR);
  as.Define("O_CREAT", O_CREAT);
  as.Define("O_TRUNC", O_TRUNC);
  as.Define("O_EXCL", O_EXCL);

  as.Define("PROT_READ", MA_READ);
  as.Define("PROT_WRITE", MA_WRITE);
  as.Define("PROT_EXEC", MA_EXEC);
  as.Define("MAP_SHARED", 1);
  as.Define("MAP_PRIVATE", 2);
}

}  // namespace svr4
