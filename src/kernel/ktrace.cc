// Trace ring and metrics registry. See ktrace.h for the design; this file
// is only the snapshot serializer and the text rendering — emission is all
// in the header-inlined gates plus Emit() below.
#include "svr4proc/kernel/ktrace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "svr4proc/kernel/faults.h"
#include "svr4proc/kernel/syscall.h"

namespace svr4 {

const char* KtEventName(KtEvent e) {
  switch (e) {
    case KtEvent::kNone: return "none";
    case KtEvent::kSchedSwitch: return "sched_switch";
    case KtEvent::kStop: return "stop";
    case KtEvent::kRun: return "run";
    case KtEvent::kSignalPost: return "signal_post";
    case KtEvent::kSignalDeliver: return "signal_deliver";
    case KtEvent::kFault: return "fault";
    case KtEvent::kSyscallEntry: return "syscall_entry";
    case KtEvent::kSyscallExit: return "syscall_exit";
    case KtEvent::kCowBreak: return "cow_break";
    case KtEvent::kTlbFlush: return "tlb_flush";
    case KtEvent::kFork: return "fork";
    case KtEvent::kExec: return "exec";
    case KtEvent::kExit: return "exit";
    case KtEvent::kProcOpen: return "proc_open";
    case KtEvent::kProcClose: return "proc_close";
    case KtEvent::kFaultInject: return "fault_inject";
    case KtEvent::kIpi: return "ipi";
  }
  return "?";
}

KTrace::KTrace(const uint64_t* tick_src, const int* cpu_src, size_t cap)
    : tick_(tick_src), cpu_(cpu_src), ring_(cap == 0 ? 1 : cap) {}

void KTrace::Emit(KtEvent e, int32_t pid, int32_t lwpid, uint32_t a0, uint32_t a1) {
  if (!armed_) {
    return;
  }
  uint32_t code = static_cast<uint32_t>(e);
  if (code >= kKtEventCount) {
    code = 0;
    e = KtEvent::kNone;
  }
  if (metrics_on_) {
    ++events_[code];
    if (e == KtEvent::kSyscallExit) {
      // a0 carries syscall | errno<<16, a1 the entry->exit latency; fold
      // them into the per-syscall stats here so every exit site stays a
      // one-line Emit.
      uint32_t num = a0 & 0xFFFFu;
      if (num < static_cast<uint32_t>(kKtMaxSyscall)) {
        KtSyscallStat& s = sys_[num];
        ++s.calls;
        if ((a0 >> 16) != 0) {
          ++s.errors;
        }
        s.lat.Record(a1);
      }
    } else if (e == KtEvent::kSchedSwitch) {
      runq_depth_.Record(a1);
    }
  }
  if (ring_on_) {
    KtRec& r = ring_[total_ % ring_.size()];
    r.kt_tick = *tick_;
    r.kt_pid = pid;
    r.kt_lwpid = lwpid;
    r.kt_event = code;
    r.kt_a0 = a0;
    r.kt_a1 = a1;
    r.kt_cpu = cpu_ != nullptr ? static_cast<uint32_t>(*cpu_) : 0;
    ++total_;
  }
}

std::vector<uint8_t> KTrace::Snapshot(int32_t pid_filter) const {
  if (total_ == 0) {
    return {};
  }
  uint64_t kept = std::min<uint64_t>(total_, ring_.size());
  uint64_t first = total_ - kept;
  std::vector<KtRec> recs;
  recs.reserve(kept);
  for (uint64_t i = 0; i < kept; ++i) {
    const KtRec& r = ring_[(first + i) % ring_.size()];
    if (pid_filter >= 0 && r.kt_pid != pid_filter) {
      continue;
    }
    recs.push_back(r);
  }
  KtSnapHeader h{};
  h.kt_magic = kKtMagic;
  h.kt_version = kKtVersion;
  h.kt_recsize = sizeof(KtRec);
  h.kt_nrec = static_cast<uint32_t>(recs.size());
  h.kt_total = total_;
  h.kt_dropped = total_ - kept;
  std::vector<uint8_t> out(sizeof(h) + recs.size() * sizeof(KtRec));
  std::memcpy(out.data(), &h, sizeof(h));
  if (!recs.empty()) {
    std::memcpy(out.data() + sizeof(h), recs.data(), recs.size() * sizeof(KtRec));
  }
  return out;
}

namespace {

void RenderHist(std::string& out, const char* name, const std::string& tag,
                const KtHist& h) {
  char line[192];
  std::snprintf(line, sizeof(line), "hist %s%s count=%llu sum=%llu max=%llu mean=%.1f",
                name, tag.c_str(), static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.sum),
                static_cast<unsigned long long>(h.max), h.Mean());
  out += line;
  for (size_t i = 0; i < h.bucket.size(); ++i) {
    if (h.bucket[i] != 0) {
      std::snprintf(line, sizeof(line), " b%zu:%llu", i,
                    static_cast<unsigned long long>(h.bucket[i]));
      out += line;
    }
  }
  out += '\n';
}

}  // namespace

std::string KTrace::MetricsText(const FaultInjector* finj) const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line), "ktrace ring=%s metrics=%s cap=%zu total=%llu dropped=%llu\n",
                ring_on_ ? "on" : "off", metrics_on_ ? "on" : "off", ring_.size(),
                static_cast<unsigned long long>(total_),
                static_cast<unsigned long long>(dropped()));
  out += line;
  for (uint32_t i = 1; i < kKtEventCount; ++i) {
    if (events_[i] == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "counter event[%s] %llu\n",
                  KtEventName(static_cast<KtEvent>(i)),
                  static_cast<unsigned long long>(events_[i]));
    out += line;
  }
  for (int n = 0; n < kKtMaxSyscall; ++n) {
    const KtSyscallStat& s = sys_[n];
    if (s.calls == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "counter syscall[%s] calls=%llu errors=%llu\n",
                  std::string(SyscallName(n)).c_str(),
                  static_cast<unsigned long long>(s.calls),
                  static_cast<unsigned long long>(s.errors));
    out += line;
    RenderHist(out, "syscall_lat[", std::string(SyscallName(n)) + "]", s.lat);
  }
  RenderHist(out, "stop_wait", "", stop_wait_);
  RenderHist(out, "runq_depth", "", runq_depth_);
  for (int c = 0; c < kKtMaxCpus; ++c) {
    if (runq_wait_[c].count != 0) {
      RenderHist(out, "runq_wait[cpu", std::to_string(c) + "]", runq_wait_[c]);
    }
  }
  for (int c = 0; c < kKtMaxCpus; ++c) {
    if (steal_lat_[c].count != 0) {
      RenderHist(out, "steal_lat[cpu", std::to_string(c) + "]", steal_lat_[c]);
    }
  }
  if (finj != nullptr) {
    // The injector's per-site counters have exactly one home (FaultInjector
    // itself); both /proc2/kernel/faults and this registry render from it.
    for (int i = 0; i < kFaultSiteCount; ++i) {
      FaultSite s = static_cast<FaultSite>(i);
      if (finj->evals(s) == 0 && finj->fires(s) == 0) {
        continue;
      }
      std::snprintf(line, sizeof(line), "counter fault_site[%s] evals=%llu fires=%llu\n",
                    FaultSiteName(s), static_cast<unsigned long long>(finj->evals(s)),
                    static_cast<unsigned long long>(finj->fires(s)));
      out += line;
    }
  }
  return out;
}

}  // namespace svr4
