// Fault injection, the seeded chaos scheduler, and the kernel-wide
// invariant checker. Everything here is test machinery in the sense that
// production runs never arm it, but it lives in the kernel proper because
// the injection sites and the invariants are statements about kernel
// structure, not about any one test.
#include "svr4proc/kernel/faults.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "svr4proc/kernel/kernel.h"
#include "svr4proc/kernel/ktrace.h"

namespace svr4 {
namespace {

// splitmix64: tiny, well-distributed, and stateful enough that every site
// gets an independent deterministic stream.
uint64_t SplitMix64(uint64_t* s) {
  uint64_t z = (*s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite s) {
  switch (s) {
    case FaultSite::kCopyin: return "COPYIN";
    case FaultSite::kCopyout: return "COPYOUT";
    case FaultSite::kVmMap: return "VM_MAP";
    case FaultSite::kVmGrow: return "VM_GROW";
    case FaultSite::kVfsResolve: return "VFS_RESOLVE";
    case FaultSite::kVnodeRead: return "VNODE_READ";
    case FaultSite::kVnodeWrite: return "VNODE_WRITE";
    case FaultSite::kTlbFlush: return "TLB_FLUSH";
    case FaultSite::kSpuriousWakeup: return "SPURIOUS_WAKEUP";
    case FaultSite::kDelayedStop: return "DELAYED_STOP";
    case FaultSite::kIpiDelay: return "IPI_DELAY";
    case FaultSite::kPeerDisconnect: return "PEER_DISCONNECT";
  }
  return "?";
}

bool FaultPlan::AnyArmed() const {
  for (const FaultRule& r : rules_) {
    if (r.num != 0) {
      return true;
    }
  }
  return false;
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  for (int i = 0; i < kFaultSiteCount; ++i) {
    // Decorrelate sites that share a seed by folding the site index in.
    state_[i].rng =
        plan_.rule(static_cast<FaultSite>(i)).seed + 0x9E3779B97F4A7C15ull * (i + 1);
  }
}

bool FaultInjector::Fire(FaultSite s) {
  const FaultRule& r = plan_.rule(s);
  SiteState& st = state_[static_cast<int>(s)];
  ++st.evals;
  if (r.num == 0 || r.den == 0 || st.fires >= r.max_hits) {
    return false;
  }
  if (SplitMix64(&st.rng) % r.den >= r.num) {
    return false;
  }
  ++st.fires;
  if (kt_ != nullptr) {
    // pid 0: injection sites are kernel-wide seams, not per-process events.
    kt_->Emit(KtEvent::kFaultInject, 0, 0, static_cast<uint32_t>(s),
              static_cast<uint32_t>(st.fires));
  }
  return true;
}

std::string FaultInjector::Describe() const {
  std::string out = "faults: armed\n";
  for (int i = 0; i < kFaultSiteCount; ++i) {
    FaultSite s = static_cast<FaultSite>(i);
    const FaultRule& r = plan_.rule(s);
    if (r.num == 0) {
      continue;
    }
    char line[160];
    std::snprintf(line, sizeof(line),
                  "site=%s seed=%llu prob=%u/%u max_hits=%llu evals=%llu fires=%llu\n",
                  FaultSiteName(s), static_cast<unsigned long long>(r.seed), r.num, r.den,
                  static_cast<unsigned long long>(r.max_hits),
                  static_cast<unsigned long long>(state_[i].evals),
                  static_cast<unsigned long long>(state_[i].fires));
    out += line;
  }
  return out;
}

// --- Kernel integration ------------------------------------------------------

void Kernel::SetFaultPlan(const FaultPlan& plan) {
  finj_ = std::make_unique<FaultInjector>(plan);
  finj_->SetKtrace(&kt_);
  vfs_.SetFaultInjector(finj_.get());
  for (Proc* p = all_head_; p != nullptr; p = p->pt_all_next) {
    if (p->as) {
      p->as->SetFaultInjector(finj_.get());
    }
  }
}

void Kernel::ClearFaultPlan() {
  vfs_.SetFaultInjector(nullptr);
  for (Proc* p = all_head_; p != nullptr; p = p->pt_all_next) {
    if (p->as) {
      p->as->SetFaultInjector(nullptr);
    }
  }
  finj_.reset();
}

void Kernel::SetChaosScheduler(uint64_t seed) {
  chaos_ = true;
  chaos_rng_ = seed ^ 0xC4A05E7B9D2F1683ull;
}

void Kernel::ClearChaosScheduler() { chaos_ = false; }

uint64_t Kernel::ChaosNext() { return SplitMix64(&chaos_rng_); }

// PRNG-driven choice among every runnable lwp, replacing the round-robin
// rotation. The run-queue cursor is advanced past the pick so switching
// chaos off mid-run resumes fair rotation from the last chaotic choice.
// On a multi-CPU kernel the scheduler first draws which CPU fires this
// quantum (reported through *cpu_out), then picks chaotically within that
// CPU's queue — so chaos explores cross-CPU interleavings too. The CPU
// draw only happens when ncpus > 1, keeping uniprocessor chaos streams
// bit-identical to the pre-SMP kernel.
Lwp* Kernel::PickNextChaos(int* cpu_out) {
  int cpu = 0;
  if (smp_.ncpus() > 1) {
    cpu = static_cast<int>(ChaosNext() % static_cast<uint64_t>(smp_.ncpus()));
  }
  CpuState& c = smp_.cpu(cpu);
  if (c.runq_next == nullptr) {
    // The drawn CPU idles this quantum; steal like the fair scheduler so
    // chaos never starves a runnable lwp behind an empty queue.
    Lwp* stolen = StealFor(cpu);
    if (stolen == nullptr) {
      return nullptr;
    }
    *cpu_out = cpu;
    return stolen;
  }
  // Walk the circle once from the cursor: a deterministic ordering of the
  // runnable set, so one seed replays the same schedule.
  std::vector<Lwp*> runnable;
  Lwp* l = c.runq_next;
  do {
    runnable.push_back(l);
    l = l->q_next;
  } while (l != c.runq_next);
  Lwp* pick = runnable[ChaosNext() % runnable.size()];
  c.runq_next = pick->q_next;
  *cpu_out = cpu;
  return pick;
}

// --- Invariant checker -------------------------------------------------------

namespace {

std::string Violation(Pid pid, const char* what, long long got, long long want) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "pid %d: %s (got %lld, want %lld)", pid, what, got, want);
  return buf;
}

}  // namespace

std::vector<std::string> Kernel::CheckInvariants() {
  std::vector<std::string> v;

  // Recount /proc descriptor references from every descriptor table, split
  // by generation: a descriptor whose pr_gen matches the target's current
  // generation is live; a mismatched one was invalidated by a set-id exec
  // and must be accounted in the stale ledger instead.
  struct Counts {
    int total = 0;
    int writable = 0;
    int stale_total = 0;
    int stale_writable = 0;
  };
  std::unordered_map<Pid, Counts> seen_counts;
  std::unordered_set<const OpenFile*> seen;  // dup/fork share one OpenFile
  for (Proc* p = all_head_; p != nullptr; p = p->pt_all_next) {
    for (auto& of : p->fds) {
      if (!of || !of->vp) {
        continue;
      }
      int32_t target = of->vp->PrCountedTarget();
      if (target < 0) {
        continue;
      }
      if (!seen.insert(of.get()).second) {
        continue;
      }
      Proc* tp = FindProc(target);
      if (tp == nullptr) {
        continue;  // target reaped; its ledger went with it
      }
      if (of->pr_ident != 0 && of->pr_ident != tp->ident) {
        // The descriptor's process died and its pid was reused: the
        // descriptor names nobody, and the successor's ledger never
        // counted it.
        continue;
      }
      Counts& c = seen_counts[target];
      if (of->pr_gen == tp->trace.gen) {
        ++c.total;
        c.writable += of->writable ? 1 : 0;
      } else {
        ++c.stale_total;
        c.stale_writable += of->writable ? 1 : 0;
      }
    }
  }

  // Process-table coherence: the intrusive all-procs list, the pid hash,
  // the allocation bitmap and nprocs_ must all agree.
  {
    size_t list_len = 0;
    for (Proc* p = all_head_; p != nullptr; p = p->pt_all_next) {
      ++list_len;
      if (FindProc(p->pid) != p) {
        v.push_back(Violation(p->pid, "pid hash does not resolve to proc", 0, 1));
      }
    }
    if (list_len != nprocs_) {
      v.push_back(Violation(0, "all-procs list length != nprocs_",
                            static_cast<long long>(list_len),
                            static_cast<long long>(nprocs_)));
    }
    size_t popcount = 0;
    for (uint64_t w : pid_bitmap_) {
      popcount += static_cast<size_t>(std::popcount(w));
    }
    if (popcount != nprocs_) {
      v.push_back(Violation(0, "pid bitmap popcount != nprocs_",
                            static_cast<long long>(popcount),
                            static_cast<long long>(nprocs_)));
    }
    // Each per-CPU run queue is a closed circle whose members all claim
    // membership, are homed on that CPU, and appear on no other queue.
    std::unordered_set<const Lwp*> on_some_queue;
    for (int ci = 0; ci < smp_.ncpus(); ++ci) {
      const CpuState& cs = smp_.cpu(ci);
      size_t circle = 0;
      if (cs.runq_next != nullptr) {
        Lwp* l = cs.runq_next;
        do {
          ++circle;
          if (l->q_where != Lwp::kQRun) {
            v.push_back(Violation(l->proc->pid, "runq member not marked kQRun",
                                  l->lwpid, 0));
            break;
          }
          if (l->cpu != ci) {
            v.push_back(Violation(l->proc->pid, "runq member homed on other cpu",
                                  l->cpu, ci));
            break;
          }
          if (!on_some_queue.insert(l).second) {
            v.push_back(
                Violation(l->proc->pid, "lwp on two run queues", l->lwpid, 0));
            break;
          }
          l = l->q_next;
        } while (l != cs.runq_next && circle <= cs.runq_len);
      }
      if (circle != cs.runq_len) {
        v.push_back(Violation(0, "run-queue circle length != runq_len",
                              static_cast<long long>(circle),
                              static_cast<long long>(cs.runq_len)));
      }
    }
    // Cross-CPU interrupt conservation: every IPI charged to a sender is
    // either acknowledged by its target or still pending there.
    uint64_t acked = 0;
    for (int ci = 0; ci < smp_.ncpus(); ++ci) {
      acked += smp_.cpu(ci).stats.ipis_received;
    }
    if (smp_.TotalIpisSent() != acked + smp_.TotalIpisPending()) {
      v.push_back(Violation(0, "IPI conservation (sent != received + pending)",
                            static_cast<long long>(smp_.TotalIpisSent()),
                            static_cast<long long>(acked + smp_.TotalIpisPending())));
    }
  }

  for (Proc* p = all_head_; p != nullptr; p = p->pt_all_next) {
    const Pid pid = p->pid;
    const TraceState& t = p->trace;

    // Children-list coherence: every entry in a proc's children list names
    // it as parent, both in the intrusive link and in ppid.
    for (Proc* q = p->pt_first_child; q != nullptr; q = q->pt_sib_next) {
      if (q->pt_parent != p) {
        v.push_back(Violation(q->pid, "child link does not name parent", 0, pid));
      }
      if (q->ppid != p->pid) {
        v.push_back(Violation(q->pid, "child ppid != parent pid", q->ppid, p->pid));
      }
      if (q->pt_sib_next != nullptr && q->pt_sib_next->pt_sib_prev != q) {
        v.push_back(Violation(q->pid, "sibling list links inconsistent", 0, 1));
      }
    }

    // Open-count balance and conservation against the recount.
    if (t.writable_opens < 0) {
      v.push_back(Violation(pid, "writable_opens negative", t.writable_opens, 0));
    }
    if (t.total_opens < t.writable_opens) {
      v.push_back(Violation(pid, "total_opens < writable_opens", t.total_opens,
                            t.writable_opens));
    }
    if (t.stale_writable_opens < 0) {
      v.push_back(
          Violation(pid, "stale_writable_opens negative", t.stale_writable_opens, 0));
    }
    if (t.stale_total_opens < t.stale_writable_opens) {
      v.push_back(Violation(pid, "stale_total_opens < stale_writable_opens",
                            t.stale_total_opens, t.stale_writable_opens));
    }
    Counts c;
    auto it = seen_counts.find(pid);
    if (it != seen_counts.end()) {
      c = it->second;
    }
    if (c.total != t.total_opens) {
      v.push_back(Violation(pid, "total_opens conservation", t.total_opens, c.total));
    }
    if (c.writable != t.writable_opens) {
      v.push_back(
          Violation(pid, "writable_opens conservation", t.writable_opens, c.writable));
    }
    if (c.stale_total != t.stale_total_opens) {
      v.push_back(Violation(pid, "stale_total_opens conservation", t.stale_total_opens,
                            c.stale_total));
    }

    // An exclusive holder must itself be one of the writable opens.
    if (t.excl && t.writable_opens < 1) {
      v.push_back(Violation(pid, "excl set with no writable open", t.writable_opens, 1));
    }

    // Audit-ring monotonicity: the total never regresses across checks, and
    // the retained records carry non-decreasing completion ticks, none from
    // the future. Watermarks key on the birth identity, not the pid, so a
    // reused pid starts from its own zero. The ring is allocated lazily:
    // a null ring with a non-zero total is itself a violation.
    uint64_t& mark = audit_watermark_[p->ident];
    if (t.audit_total < mark) {
      v.push_back(Violation(pid, "audit_total regressed",
                            static_cast<long long>(t.audit_total),
                            static_cast<long long>(mark)));
    }
    mark = t.audit_total;
    // Zombies are exempt: exit releases the ring (keeping the totals) so a
    // dead proc's footprint shrinks to the reap record.
    if (t.audit_total > 0 && t.audit == nullptr &&
        p->state != Proc::State::kZombie) {
      v.push_back(Violation(pid, "audit total with no ring allocated",
                            static_cast<long long>(t.audit_total), 0));
    }
    if (t.audit != nullptr) {
      uint64_t kept = std::min<uint64_t>(t.audit_total, kCtlAuditCap);
      uint64_t first = t.audit_total - kept;
      uint64_t prev_tick = 0;
      for (uint64_t i = 0; i < kept; ++i) {
        const CtlAuditRec& rec = (*t.audit)[(first + i) % kCtlAuditCap];
        if (rec.pr_tick < prev_tick) {
          v.push_back(Violation(pid, "audit ring ticks out of order",
                                static_cast<long long>(rec.pr_tick),
                                static_cast<long long>(prev_tick)));
          break;
        }
        if (rec.pr_tick > ticks_) {
          v.push_back(Violation(pid, "audit record from the future",
                                static_cast<long long>(rec.pr_tick),
                                static_cast<long long>(ticks_)));
          break;
        }
        prev_tick = rec.pr_tick;
      }
    }

    // Lifecycle and scheduler coherence.
    if (p->state == Proc::State::kZombie) {
      if (p->as) {
        v.push_back(Violation(pid, "zombie retains an address space", 1, 0));
      }
      for (const auto& l : p->lwps) {
        if (l->state != LwpState::kDead) {
          v.push_back(Violation(pid, "zombie with a live lwp", l->lwpid, 0));
        }
      }
    }
    for (const auto& l : p->lwps) {
      // A runnable lwp must be schedulable: PickNext only considers active
      // non-native, non-system processes, so a kRunning lwp anywhere else
      // would spin forever unscheduled.
      if (l->state == LwpState::kRunning &&
          (p->state != Proc::State::kActive || p->system_proc)) {
        v.push_back(Violation(pid, "runnable lwp is unschedulable", l->lwpid, 0));
      }
      // A sleeper with no channel and no wake tick can never be woken.
      if (l->state == LwpState::kSleeping && l->sleep.chan == nullptr &&
          l->sleep.wake_tick == 0) {
        v.push_back(Violation(pid, "sleeping lwp has no wake source", l->lwpid, 0));
      }
      if (l->istop && l->state != LwpState::kStopped) {
        v.push_back(Violation(pid, "istop on a non-stopped lwp", l->lwpid, 0));
      }
      if (l->stopped_while_asleep && l->state != LwpState::kStopped) {
        v.push_back(
            Violation(pid, "stopped_while_asleep on a non-stopped lwp", l->lwpid, 0));
      }
      // Scheduler-queue membership mirrors the state machine exactly.
      bool should_run_q = l->state == LwpState::kRunning &&
                          p->state == Proc::State::kActive && !p->native &&
                          !p->system_proc;
      bool should_sleep_q =
          l->state == LwpState::kSleeping && l->sleep.chan != nullptr;
      uint8_t want_q = should_run_q ? Lwp::kQRun
                       : should_sleep_q ? Lwp::kQSleep
                                        : Lwp::kQNone;
      if (l->q_where != want_q) {
        v.push_back(Violation(pid, "lwp queue membership mismatch", l->q_where,
                              want_q));
      }
    }
  }
  return v;
}

}  // namespace svr4
