// The system call path: entry/exit stop points ("natural points of control
// for a process are where it enters and leaves the kernel"), restartable
// blocking handlers built on the classic while-condition-sleep structure,
// syscall aborting, and the individual handlers.
#include <algorithm>
#include <cstring>

#include "svr4proc/fs/dev.h"
#include "svr4proc/kernel/kernel.h"

namespace svr4 {

void Kernel::SyscallTrap(Lwp* lwp) {
  Proc* p = lwp->proc;
  uint32_t num = lwp->regs.r[0];
  ++p->nsyscalls;
  lwp->in_syscall = true;
  lwp->sys_phase = SysPhase::kEntry;
  lwp->cur_syscall = static_cast<uint16_t>(std::min<uint32_t>(num, SysSet::kMaxMember));
  lwp->abort_syscall = false;
  for (int i = 0; i < 6; ++i) {
    lwp->sysargs[i] = lwp->regs.r[i + 1];
  }
  lwp->sys_entry_tick = ticks_;
  kt_.Emit(KtEvent::kSyscallEntry, p->pid, lwp->lwpid, lwp->cur_syscall,
           lwp->sysargs[0]);
  // "A stop on system call entry occurs before the system has fetched the
  // system call arguments from the process."
  if (p->trace.sysentry.Has(lwp->cur_syscall)) {
    StopLwp(lwp, PR_SYSENTRY, lwp->cur_syscall, /*istop=*/true);
    return;
  }
  ContinueSyscall(lwp);
}

void Kernel::ContinueSyscall(Lwp* lwp) {
  Proc* p = lwp->proc;
  switch (lwp->sys_phase) {
    case SysPhase::kNone:
      lwp->in_syscall = false;
      return;
    case SysPhase::kEntry: {
      // The controlling process may have changed the argument registers
      // while we were stopped; fetch them now.
      for (int i = 0; i < 6; ++i) {
        lwp->sysargs[i] = lwp->regs.r[i + 1];
      }
      lwp->sys_phase = SysPhase::kExec;
      [[fallthrough]];
    }
    case SysPhase::kExec: {
      if (lwp->abort_syscall) {
        // "A process that is stopped on system call entry can be directed to
        // abort execution of the system call and go directly to system call
        // exit."
        lwp->abort_syscall = false;
        FinishSyscall(lwp, SysResult::Fail(Errno::kEINTR));
        return;
      }
      if (lwp->interrupted) {
        lwp->interrupted = false;
        // Woken from an interruptible sleep by a signal: issig() decides
        // whether the call fails with EINTR ("ask the question again").
        if (Issig(lwp)) {
          FinishSyscall(lwp, SysResult::Fail(Errno::kEINTR));
          return;
        }
        if (lwp->state != LwpState::kRunning) {
          return;  // stopped inside issig(); resume re-enters here
        }
        if (lwp->abort_syscall) {
          lwp->abort_syscall = false;
          FinishSyscall(lwp, SysResult::Fail(Errno::kEINTR));
          return;
        }
        // Not delivered after all: retry the sleep condition.
      }
      SysResult r = Dispatch(lwp);
      if (p->state != Proc::State::kActive || lwp->state == LwpState::kDead) {
        return;  // exit(2) or a fatal signal consumed the process
      }
      if (r.kind == SysResult::kBlock) {
        // Set the channel before the transition: the sleep bucket hashes it.
        lwp->sleep = r.sleep;
        LwpSetState(lwp, LwpState::kSleeping);
        ArmSleepTimer(lwp);
        return;
      }
      FinishSyscall(lwp, r);
      return;
    }
    case SysPhase::kExit: {
      // Resumed from a syscall-exit stop; the debugger may have manufactured
      // whatever return values it wished by writing the registers.
      lwp->in_syscall = false;
      lwp->sys_phase = SysPhase::kNone;
      lwp->sys_deadline = 0;
      lwp->vfork_child = 0;
      return;
    }
  }
}

void Kernel::FinishSyscall(Lwp* lwp, const SysResult& r) {
  Proc* p = lwp->proc;
  // "A stop on system call exit occurs after the system has stored all
  // return values in the traced process's data and saved registers."
  if (!r.no_regs) {
    if (r.kind == SysResult::kError) {
      lwp->regs.r[0] = static_cast<uint32_t>(r.err);
      lwp->regs.psr |= kPsrC;
    } else {
      lwp->regs.r[0] = r.rv0;
      if (r.has_rv1) {
        lwp->regs.r[1] = r.rv1;
      }
      lwp->regs.psr &= ~kPsrC;
    }
  }
  if (kt_.armed()) {
    // The exit record carries the errno and the entry->exit service latency
    // in ticks (time stopped at the exit stop point is not service time).
    uint32_t err = r.kind == SysResult::kError ? static_cast<uint32_t>(r.err) : 0;
    kt_.Emit(KtEvent::kSyscallExit, p->pid, lwp->lwpid,
             static_cast<uint32_t>(lwp->cur_syscall) | (err << 16),
             static_cast<uint32_t>(ticks_ - lwp->sys_entry_tick));
  }
  if (p->trace.sysexit.Has(lwp->cur_syscall)) {
    lwp->sys_phase = SysPhase::kExit;
    StopLwp(lwp, PR_SYSEXIT, lwp->cur_syscall, /*istop=*/true);
    return;
  }
  lwp->in_syscall = false;
  lwp->sys_phase = SysPhase::kNone;
  lwp->sys_deadline = 0;
  lwp->vfork_child = 0;
}

Kernel::SysResult Kernel::Dispatch(Lwp* lwp) {
  switch (lwp->cur_syscall) {
    case SYS_exit:
      return SysExit(lwp);
    case SYS_fork:
      return SysFork(lwp, /*vfork=*/false);
    case SYS_vfork:
      return SysFork(lwp, /*vfork=*/true);
    case SYS_read:
      return SysRead(lwp);
    case SYS_write:
      return SysWrite(lwp);
    case SYS_open:
      return SysOpen(lwp);
    case SYS_creat: {
      // creat(path, mode) == open(path, O_WRONLY|O_CREAT|O_TRUNC, mode)
      lwp->sysargs[2] = lwp->sysargs[1];
      lwp->sysargs[1] = O_WRONLY | O_CREAT | O_TRUNC;
      return SysOpen(lwp);
    }
    case SYS_close:
      return SysClose(lwp);
    case SYS_wait:
      return SysWait(lwp);
    case SYS_exec:
      return SysExec(lwp);
    case SYS_time:
      return SysResult::Ok(static_cast<uint32_t>(ticks_));
    case SYS_brk:
      return SysBrk(lwp);
    case SYS_stat:
      return SysStat(lwp);
    case SYS_unlink:
      return SysUnlink(lwp);
    case SYS_lseek:
      return SysLseek(lwp);
    case SYS_getpid:
      return SysResult::Ok(static_cast<uint32_t>(lwp->proc->pid));
    case SYS_getppid:
      return SysResult::Ok(static_cast<uint32_t>(lwp->proc->ppid));
    case SYS_getpgrp:
      return SysResult::Ok(static_cast<uint32_t>(lwp->proc->pgrp));
    case SYS_setpgrp:
      lwp->proc->pgrp = lwp->proc->pid;
      return SysResult::Ok(static_cast<uint32_t>(lwp->proc->pgrp));
    case SYS_setsid:
      lwp->proc->sid = lwp->proc->pid;
      lwp->proc->pgrp = lwp->proc->pid;
      return SysResult::Ok(static_cast<uint32_t>(lwp->proc->sid));
    case SYS_getuid:
      return SysResult::Ok(lwp->proc->creds.ruid);
    case SYS_getgid:
      return SysResult::Ok(lwp->proc->creds.rgid);
    case SYS_setuid: {
      Proc* p = lwp->proc;
      Uid u = lwp->sysargs[0];
      if (p->creds.IsSuper()) {
        p->creds.ruid = p->creds.euid = p->creds.suid = u;
      } else if (u == p->creds.ruid || u == p->creds.suid) {
        p->creds.euid = u;
      } else {
        return SysResult::Fail(Errno::kEPERM);
      }
      return SysResult::Ok(0);
    }
    case SYS_setgid: {
      Proc* p = lwp->proc;
      Gid g = lwp->sysargs[0];
      if (p->creds.IsSuper()) {
        p->creds.rgid = p->creds.egid = p->creds.sgid = g;
      } else if (g == p->creds.rgid || g == p->creds.sgid) {
        p->creds.egid = g;
      } else {
        return SysResult::Fail(Errno::kEPERM);
      }
      return SysResult::Ok(0);
    }
    case SYS_nice: {
      int delta = static_cast<int32_t>(lwp->sysargs[0]);
      if (delta < 0 && !lwp->proc->creds.IsSuper()) {
        return SysResult::Fail(Errno::kEPERM);
      }
      lwp->proc->nice = std::clamp(lwp->proc->nice + delta, 0, 39);
      return SysResult::Ok(static_cast<uint32_t>(lwp->proc->nice));
    }
    case SYS_umask: {
      uint32_t prev = lwp->proc->umask;
      lwp->proc->umask = lwp->sysargs[0] & 0777;
      return SysResult::Ok(prev);
    }
    case SYS_kill:
      return SysKill(lwp);
    case SYS_pipe:
      return SysPipe(lwp);
    case SYS_dup:
      return SysDup(lwp);
    case SYS_sigaction:
      return SysSigaction(lwp);
    case SYS_sigprocmask:
      return SysSigprocmask(lwp);
    case SYS_sigsuspend:
      return SysSigsuspend(lwp);
    case SYS_sigreturn:
      return SysSigreturn(lwp);
    case SYS_sigpending:
      return SysSigpending(lwp);
    case SYS_mmap:
      return SysMmap(lwp);
    case SYS_munmap:
      return SysMunmap(lwp);
    case SYS_mprotect:
      return SysMprotect(lwp);
    case SYS_sleep:
      return SysSleep(lwp);
    case SYS_pause:
      return SysPause(lwp);
    case SYS_alarm:
      return SysAlarm(lwp);
    case SYS_yield:
      return SysResult::Ok(0);
    case SYS_lwp_create:
      return SysLwpCreate(lwp);
    case SYS_lwp_exit:
      return SysLwpExit(lwp);
    case SYS_lwp_self:
      return SysResult::Ok(static_cast<uint32_t>(lwp->lwpid));
    case SYS_ptrace:
      return SysPtraceSys(lwp);
    case SYS_poll:
      return SysPoll(lwp);
    default:
      // Includes SYS_otime, the "obsolete" call the encapsulation example
      // emulates at user level through /proc.
      return SysResult::Fail(Errno::kENOSYS);
  }
}

// --- Individual handlers ------------------------------------------------------

Kernel::SysResult Kernel::SysExit(Lwp* lwp) {
  ExitProc(lwp->proc, WExitStatus(static_cast<int>(lwp->sysargs[0])));
  return SysResult::Ok(0);  // not observed
}

Kernel::SysResult Kernel::SysRead(Lwp* lwp) {
  Proc* p = lwp->proc;
  auto of = FdGet(p, static_cast<int>(lwp->sysargs[0]));
  if (!of.ok()) {
    return SysResult::Fail(of.error());
  }
  uint32_t va = lwp->sysargs[1];
  uint32_t n = std::min<uint32_t>(lwp->sysargs[2], 1 << 20);
  std::vector<uint8_t> buf(n);
  auto r = ReadCommon(p, **of, buf);
  if (!r.ok()) {
    if (r.error() == Errno::kEAGAIN) {
      // Blocking read: sleep at an interruptible priority on the object.
      const void* chan = (*of)->vp.get();
      if (auto* pipe = dynamic_cast<PipeVnode*>((*of)->vp.get())) {
        chan = pipe->buf().get();
      }
      return SysResult::Block(SleepSpec{chan, 0, true});
    }
    return SysResult::Fail(r.error());
  }
  if (*r > 0) {
    auto c = Copyout(p, va, buf.data(), static_cast<uint32_t>(*r));
    if (!c.ok()) {
      return SysResult::Fail(Errno::kEFAULT);
    }
  }
  return SysResult::Ok(static_cast<uint32_t>(*r));
}

Kernel::SysResult Kernel::SysWrite(Lwp* lwp) {
  Proc* p = lwp->proc;
  auto of = FdGet(p, static_cast<int>(lwp->sysargs[0]));
  if (!of.ok()) {
    return SysResult::Fail(of.error());
  }
  uint32_t va = lwp->sysargs[1];
  uint32_t n = std::min<uint32_t>(lwp->sysargs[2], 1 << 20);
  std::vector<uint8_t> buf(n);
  if (!Copyin(p, va, buf.data(), n).ok()) {
    return SysResult::Fail(Errno::kEFAULT);
  }
  auto r = WriteCommon(p, **of, buf);
  if (!r.ok()) {
    if (r.error() == Errno::kEAGAIN) {
      const void* chan = (*of)->vp.get();
      if (auto* pipe = dynamic_cast<PipeVnode*>((*of)->vp.get())) {
        chan = pipe->buf().get();
      }
      return SysResult::Block(SleepSpec{chan, 0, true});
    }
    if (r.error() == Errno::kEPIPE) {
      SigInfo info;
      info.si_signo = SIGPIPE;
      PostSignal(p, SIGPIPE, info);
    }
    return SysResult::Fail(r.error());
  }
  if (auto* pipe = dynamic_cast<PipeVnode*>((*of)->vp.get())) {
    Wakeup(pipe->buf().get());
  }
  return SysResult::Ok(static_cast<uint32_t>(*r));
}

Kernel::SysResult Kernel::SysOpen(Lwp* lwp) {
  Proc* p = lwp->proc;
  auto path = CopyinStr(p, lwp->sysargs[0]);
  if (!path.ok()) {
    return SysResult::Fail(path.error());
  }
  auto fd = OpenCommon(p, *path, static_cast<int>(lwp->sysargs[1]), lwp->sysargs[2]);
  if (!fd.ok()) {
    return SysResult::Fail(fd.error());
  }
  return SysResult::Ok(static_cast<uint32_t>(*fd));
}

Kernel::SysResult Kernel::SysClose(Lwp* lwp) {
  auto r = Close(lwp->proc, static_cast<int>(lwp->sysargs[0]));
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysWait(Lwp* lwp) {
  Proc* p = lwp->proc;
  WaitResult out;
  bool any = false;
  if (WaitScan(p, -1, &out, &any)) {
    return SysResult::Ok2(static_cast<uint32_t>(out.pid),
                          static_cast<uint32_t>(out.status));
  }
  if (!any) {
    return SysResult::Fail(Errno::kECHILD);
  }
  return SysResult::Block(SleepSpec{p, 0, true});
}

Kernel::SysResult Kernel::SysExec(Lwp* lwp) {
  Proc* p = lwp->proc;
  auto path = CopyinStr(p, lwp->sysargs[0]);
  if (!path.ok()) {
    return SysResult::Fail(path.error());
  }
  // argv: a null-terminated array of string pointers (may be 0).
  std::vector<std::string> argv;
  uint32_t argv_va = lwp->sysargs[1];
  if (argv_va != 0) {
    for (int i = 0; i < 64; ++i) {
      uint32_t ptr = 0;
      if (!Copyin(p, argv_va + 4 * static_cast<uint32_t>(i), &ptr, 4).ok()) {
        return SysResult::Fail(Errno::kEFAULT);
      }
      if (ptr == 0) {
        break;
      }
      auto s = CopyinStr(p, ptr);
      if (!s.ok()) {
        return SysResult::Fail(s.error());
      }
      argv.push_back(*s);
    }
  }
  if (argv.empty()) {
    argv.push_back(*path);
  }
  auto r = ExecImage(p, *path, argv);
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  // The registers now belong to the fresh image; do not let the return path
  // overwrite r1/r2 (argc/argv).
  return SysResult::OkNoRegs();
}

Kernel::SysResult Kernel::SysBrk(Lwp* lwp) {
  Proc* p = lwp->proc;
  auto r = p->as->SetBreak(lwp->sysargs[0]);
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysStat(Lwp* lwp) {
  Proc* p = lwp->proc;
  auto path = CopyinStr(p, lwp->sysargs[0]);
  if (!path.ok()) {
    return SysResult::Fail(path.error());
  }
  auto vp = vfs_.Resolve(*path);
  if (!vp.ok()) {
    return SysResult::Fail(vp.error());
  }
  auto attr = (*vp)->GetAttr();
  if (!attr.ok()) {
    return SysResult::Fail(attr.error());
  }
  // A compact on-wire stat: type, mode, uid, gid, size (5 x u32).
  uint32_t rec[5] = {static_cast<uint32_t>(attr->type), attr->mode, attr->uid, attr->gid,
                     static_cast<uint32_t>(attr->size)};
  if (!Copyout(p, lwp->sysargs[1], rec, sizeof(rec)).ok()) {
    return SysResult::Fail(Errno::kEFAULT);
  }
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysUnlink(Lwp* lwp) {
  Proc* p = lwp->proc;
  auto path = CopyinStr(p, lwp->sysargs[0]);
  if (!path.ok()) {
    return SysResult::Fail(path.error());
  }
  std::string leaf;
  auto parent = vfs_.ResolveParent(*path, &leaf);
  if (!parent.ok()) {
    return SysResult::Fail(parent.error());
  }
  auto r = (*parent)->Remove(leaf);
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysLseek(Lwp* lwp) {
  auto r = Lseek(lwp->proc, static_cast<int>(lwp->sysargs[0]),
                 static_cast<int32_t>(lwp->sysargs[1]), static_cast<int>(lwp->sysargs[2]));
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  return SysResult::Ok(static_cast<uint32_t>(*r));
}

Kernel::SysResult Kernel::SysKill(Lwp* lwp) {
  auto r = Kill(lwp->proc, static_cast<Pid>(static_cast<int32_t>(lwp->sysargs[0])),
                static_cast<int>(lwp->sysargs[1]));
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysPipe(Lwp* lwp) {
  Proc* p = lwp->proc;
  auto buf = std::make_shared<PipeBuf>();
  auto rd = std::make_shared<OpenFile>();
  rd->vp = std::make_shared<PipeVnode>(buf, /*write_end=*/false);
  rd->oflags = O_RDONLY;
  auto wr = std::make_shared<OpenFile>();
  wr->vp = std::make_shared<PipeVnode>(buf, /*write_end=*/true);
  wr->oflags = O_WRONLY;
  wr->writable = true;
  (void)rd->vp->Open(*rd, p->creds, p);
  (void)wr->vp->Open(*wr, p->creds, p);
  auto fd0 = FdAlloc(p, rd);
  if (!fd0.ok()) {
    return SysResult::Fail(fd0.error());
  }
  auto fd1 = FdAlloc(p, wr);
  if (!fd1.ok()) {
    (void)Close(p, *fd0);
    return SysResult::Fail(fd1.error());
  }
  return SysResult::Ok2(static_cast<uint32_t>(*fd0), static_cast<uint32_t>(*fd1));
}

Kernel::SysResult Kernel::SysDup(Lwp* lwp) {
  Proc* p = lwp->proc;
  auto of = FdGet(p, static_cast<int>(lwp->sysargs[0]));
  if (!of.ok()) {
    return SysResult::Fail(of.error());
  }
  auto fd = FdAlloc(p, *of);
  if (!fd.ok()) {
    return SysResult::Fail(fd.error());
  }
  return SysResult::Ok(static_cast<uint32_t>(*fd));
}

Kernel::SysResult Kernel::SysSigaction(Lwp* lwp) {
  Proc* p = lwp->proc;
  int sig = static_cast<int>(lwp->sysargs[0]);
  if (!SigSet::Valid(sig) || sig == SIGKILL || sig == SIGSTOP) {
    return SysResult::Fail(Errno::kEINVAL);
  }
  uint32_t handler = lwp->sysargs[1];
  uint32_t old = p->sig.actions[sig].handler;
  p->sig.actions[sig].handler = handler;
  // args[2], when set, points at a 16-byte mask to hold during the handler.
  if (lwp->sysargs[2] != 0) {
    SigSet mask;
    if (!Copyin(p, lwp->sysargs[2], &mask, sizeof(mask)).ok()) {
      return SysResult::Fail(Errno::kEFAULT);
    }
    p->sig.actions[sig].mask = mask;
  }
  return SysResult::Ok(old);
}

Kernel::SysResult Kernel::SysSigprocmask(Lwp* lwp) {
  Proc* p = lwp->proc;
  int how = static_cast<int>(lwp->sysargs[0]);  // 0 block, 1 unblock, 2 set
  SigSet mask;
  if (lwp->sysargs[1] != 0) {
    if (!Copyin(p, lwp->sysargs[1], &mask, sizeof(mask)).ok()) {
      return SysResult::Fail(Errno::kEFAULT);
    }
    switch (how) {
      case 0:
        p->sig.hold |= mask;
        break;
      case 1:
        p->sig.hold -= mask;
        break;
      case 2:
        p->sig.hold = mask;
        break;
      default:
        return SysResult::Fail(Errno::kEINVAL);
    }
    p->sig.hold.Remove(SIGKILL);
    p->sig.hold.Remove(SIGSTOP);
  }
  if (lwp->sysargs[2] != 0) {
    if (!Copyout(p, lwp->sysargs[2], &p->sig.hold, sizeof(SigSet)).ok()) {
      return SysResult::Fail(Errno::kEFAULT);
    }
  }
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysSigsuspend(Lwp* lwp) {
  Proc* p = lwp->proc;
  if (lwp->sys_deadline == 0) {
    // First pass: install the temporary mask. The saved mask travels in the
    // lwp scratch slot (restored by the EINTR unwind in user code).
    SigSet mask;
    if (!Copyin(p, lwp->sysargs[0], &mask, sizeof(mask)).ok()) {
      return SysResult::Fail(Errno::kEFAULT);
    }
    mask.Remove(SIGKILL);
    mask.Remove(SIGSTOP);
    p->sig.hold = mask;
    lwp->sys_deadline = 1;  // mark installed
  }
  return SysResult::Block(SleepSpec{lwp, 0, true});
}

Kernel::SysResult Kernel::SysSigpending(Lwp* lwp) {
  Proc* p = lwp->proc;
  if (!Copyout(p, lwp->sysargs[0], &p->sig.pending, sizeof(SigSet)).ok()) {
    return SysResult::Fail(Errno::kEFAULT);
  }
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysMmap(Lwp* lwp) {
  Proc* p = lwp->proc;
  uint32_t addr = lwp->sysargs[0];
  uint32_t len = lwp->sysargs[1];
  uint32_t prot = lwp->sysargs[2] & (MA_READ | MA_WRITE | MA_EXEC);
  uint32_t flags = lwp->sysargs[3];  // 1 shared, 2 private
  int fd = static_cast<int32_t>(lwp->sysargs[4]);
  uint32_t off = lwp->sysargs[5];
  bool shared = (flags & 1) != 0;
  if (addr % kPageSize != 0 || len == 0) {
    return SysResult::Fail(Errno::kEINVAL);
  }
  std::shared_ptr<VmObject> obj;
  std::string name;
  if (fd < 0) {
    obj = std::make_shared<AnonObject>();
  } else {
    auto of = FdGet(p, fd);
    if (!of.ok()) {
      return SysResult::Fail(of.error());
    }
    auto o = (*of)->vp->GetVmObject();
    if (!o.ok()) {
      return SysResult::Fail(o.error());
    }
    obj = *o;
  }
  uint32_t ma = prot | (shared ? uint32_t{MA_SHARED} : 0u);
  auto r = p->as->Map(addr, len, ma, obj, off, name);
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  return SysResult::Ok(addr);
}

Kernel::SysResult Kernel::SysMunmap(Lwp* lwp) {
  auto r = lwp->proc->as->Unmap(lwp->sysargs[0], lwp->sysargs[1]);
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysMprotect(Lwp* lwp) {
  auto r = lwp->proc->as->Protect(lwp->sysargs[0], lwp->sysargs[1],
                                  lwp->sysargs[2] & (MA_READ | MA_WRITE | MA_EXEC));
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysSleep(Lwp* lwp) {
  if (lwp->sys_deadline == 0) {
    lwp->sys_deadline = ticks_ + lwp->sysargs[0];
  }
  if (ticks_ >= lwp->sys_deadline) {
    return SysResult::Ok(0);
  }
  return SysResult::Block(SleepSpec{nullptr, lwp->sys_deadline, true});
}

Kernel::SysResult Kernel::SysPause(Lwp* lwp) {
  // Sleeps forever at an interruptible priority; only a signal ends it.
  return SysResult::Block(SleepSpec{lwp, 0, true});
}

Kernel::SysResult Kernel::SysAlarm(Lwp* lwp) {
  Proc* p = lwp->proc;
  uint64_t prev = p->alarm_tick == 0 ? 0 : p->alarm_tick - ticks_;
  uint32_t n = lwp->sysargs[0];
  p->alarm_tick = n == 0 ? 0 : ticks_ + n;
  ArmAlarm(p);
  return SysResult::Ok(static_cast<uint32_t>(prev));
}

Kernel::SysResult Kernel::SysLwpCreate(Lwp* lwp) {
  Proc* p = lwp->proc;
  uint32_t pc = lwp->sysargs[0];
  uint32_t sp = lwp->sysargs[1];
  if (pc == 0 || sp == 0) {
    return SysResult::Fail(Errno::kEINVAL);
  }
  auto nl = std::make_unique<Lwp>();
  nl->lwpid = ++p->next_lwpid;
  nl->proc = p;
  nl->regs.pc = pc;
  nl->regs.set_sp(sp);
  nl->regs.r[1] = static_cast<uint32_t>(nl->lwpid);
  int id = nl->lwpid;
  Lwp* raw = nl.get();
  p->lwps.push_back(std::move(nl));
  EnrollLwp(raw);
  return SysResult::Ok(static_cast<uint32_t>(id));
}

Kernel::SysResult Kernel::SysLwpExit(Lwp* lwp) {
  Proc* p = lwp->proc;
  int live = 0;
  for (auto& l : p->lwps) {
    if (l->state != LwpState::kDead) {
      ++live;
    }
  }
  if (live <= 1) {
    // Last thread of control: process exit.
    ExitProc(p, WExitStatus(0));
    return SysResult::Ok(0);
  }
  LwpSetState(lwp, LwpState::kDead);
  return SysResult::Ok(0);
}

Kernel::SysResult Kernel::SysPoll(Lwp* lwp) {
  Proc* p = lwp->proc;
  uint32_t fds_va = lwp->sysargs[0];
  uint32_t nfds = lwp->sysargs[1];
  if (nfds > poll_max_fds_) {
    // Truncating would silently drop entries and never write their revents
    // back; poll(2) specifies EINVAL for an over-limit nfds.
    return SysResult::Fail(Errno::kEINVAL);
  }
  int32_t timeout = static_cast<int32_t>(lwp->sysargs[2]);

  // On-wire pollfd: i32 fd, i32 events, i32 revents.
  struct WirePollFd {
    int32_t fd;
    int32_t events;
    int32_t revents;
  };
  std::vector<WirePollFd> fds(nfds);
  if (nfds > 0 &&
      !Copyin(p, fds_va, fds.data(), nfds * sizeof(WirePollFd)).ok()) {
    return SysResult::Fail(Errno::kEFAULT);
  }
  int ready = 0;
  for (auto& pf : fds) {
    pf.revents = 0;
    auto of = FdGet(p, pf.fd);
    if (!of.ok()) {
      pf.revents = POLLNVAL;
      ++ready;
      continue;
    }
    int bits = (*of)->vp->Poll(**of);
    // Only POLLERR/POLLHUP/POLLNVAL may be reported unrequested; POLLPRI
    // (like POLLIN/POLLOUT) must have been asked for in events.
    pf.revents = bits & (pf.events | POLLERR | POLLHUP | POLLNVAL);
    if (pf.revents != 0) {
      ++ready;
    }
  }
  if (timeout > 0 && lwp->sys_deadline == 0) {
    lwp->sys_deadline = ticks_ + static_cast<uint64_t>(timeout);
  }
  bool timed_out =
      timeout == 0 || (lwp->sys_deadline != 0 && ticks_ >= lwp->sys_deadline);
  if (ready > 0 || timed_out) {
    if (nfds > 0 &&
        !Copyout(p, fds_va, fds.data(), nfds * sizeof(WirePollFd)).ok()) {
      return SysResult::Fail(Errno::kEFAULT);
    }
    return SysResult::Ok(static_cast<uint32_t>(ready));
  }
  return SysResult::Block(SleepSpec{PollChan(), lwp->sys_deadline, true});
}

Kernel::SysResult Kernel::SysPtraceSys(Lwp* lwp) {
  auto r = PtraceImpl(lwp->proc, static_cast<int>(lwp->sysargs[0]),
                      static_cast<Pid>(static_cast<int32_t>(lwp->sysargs[1])),
                      lwp->sysargs[2], lwp->sysargs[3]);
  if (!r.ok()) {
    return SysResult::Fail(r.error());
  }
  return SysResult::Ok(static_cast<uint32_t>(*r));
}

}  // namespace svr4
