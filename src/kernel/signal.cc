#include "svr4proc/kernel/signal.h"

#include "svr4proc/kernel/process.h"

namespace svr4 {

std::string_view SignalName(int sig) {
  switch (sig) {
    case SIGHUP:
      return "SIGHUP";
    case SIGINT:
      return "SIGINT";
    case SIGQUIT:
      return "SIGQUIT";
    case SIGILL:
      return "SIGILL";
    case SIGTRAP:
      return "SIGTRAP";
    case SIGABRT:
      return "SIGABRT";
    case SIGEMT:
      return "SIGEMT";
    case SIGFPE:
      return "SIGFPE";
    case SIGKILL:
      return "SIGKILL";
    case SIGBUS:
      return "SIGBUS";
    case SIGSEGV:
      return "SIGSEGV";
    case SIGSYS:
      return "SIGSYS";
    case SIGPIPE:
      return "SIGPIPE";
    case SIGALRM:
      return "SIGALRM";
    case SIGTERM:
      return "SIGTERM";
    case SIGUSR1:
      return "SIGUSR1";
    case SIGUSR2:
      return "SIGUSR2";
    case SIGCLD:
      return "SIGCLD";
    case SIGPWR:
      return "SIGPWR";
    case SIGWINCH:
      return "SIGWINCH";
    case SIGURG:
      return "SIGURG";
    case SIGPOLL:
      return "SIGPOLL";
    case SIGSTOP:
      return "SIGSTOP";
    case SIGTSTP:
      return "SIGTSTP";
    case SIGCONT:
      return "SIGCONT";
    case SIGTTIN:
      return "SIGTTIN";
    case SIGTTOU:
      return "SIGTTOU";
    default:
      return "SIG???";
  }
}

SigDisp DefaultDisp(int sig) {
  switch (sig) {
    case SIGQUIT:
    case SIGILL:
    case SIGTRAP:
    case SIGABRT:
    case SIGEMT:
    case SIGFPE:
    case SIGBUS:
    case SIGSEGV:
    case SIGSYS:
      return SigDisp::kCore;
    case SIGCLD:
    case SIGPWR:
    case SIGWINCH:
    case SIGURG:
      return SigDisp::kIgnore;
    case SIGSTOP:
    case SIGTSTP:
    case SIGTTIN:
    case SIGTTOU:
      return SigDisp::kStop;
    case SIGCONT:
      return SigDisp::kContinue;
    default:
      return SigDisp::kTerminate;
  }
}

std::string_view PrWhyName(uint16_t why) {
  switch (why) {
    case PR_REQUESTED:
      return "PR_REQUESTED";
    case PR_SIGNALLED:
      return "PR_SIGNALLED";
    case PR_SYSENTRY:
      return "PR_SYSENTRY";
    case PR_SYSEXIT:
      return "PR_SYSEXIT";
    case PR_FAULTED:
      return "PR_FAULTED";
    case PR_JOBCONTROL:
      return "PR_JOBCONTROL";
    default:
      return "PR_???";
  }
}

}  // namespace svr4
