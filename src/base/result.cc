#include "svr4proc/base/result.h"

namespace svr4 {

std::string_view ErrnoName(Errno e) {
  switch (e) {
    case Errno::kOk:
      return "OK";
    case Errno::kEPERM:
      return "EPERM";
    case Errno::kENOENT:
      return "ENOENT";
    case Errno::kESRCH:
      return "ESRCH";
    case Errno::kEINTR:
      return "EINTR";
    case Errno::kEIO:
      return "EIO";
    case Errno::kENXIO:
      return "ENXIO";
    case Errno::kE2BIG:
      return "E2BIG";
    case Errno::kENOEXEC:
      return "ENOEXEC";
    case Errno::kEBADF:
      return "EBADF";
    case Errno::kECHILD:
      return "ECHILD";
    case Errno::kEAGAIN:
      return "EAGAIN";
    case Errno::kENOMEM:
      return "ENOMEM";
    case Errno::kEACCES:
      return "EACCES";
    case Errno::kEFAULT:
      return "EFAULT";
    case Errno::kEBUSY:
      return "EBUSY";
    case Errno::kEEXIST:
      return "EEXIST";
    case Errno::kENODEV:
      return "ENODEV";
    case Errno::kENOTDIR:
      return "ENOTDIR";
    case Errno::kEISDIR:
      return "EISDIR";
    case Errno::kEINVAL:
      return "EINVAL";
    case Errno::kENFILE:
      return "ENFILE";
    case Errno::kEMFILE:
      return "EMFILE";
    case Errno::kENOTTY:
      return "ENOTTY";
    case Errno::kEFBIG:
      return "EFBIG";
    case Errno::kENOSPC:
      return "ENOSPC";
    case Errno::kESPIPE:
      return "ESPIPE";
    case Errno::kEROFS:
      return "EROFS";
    case Errno::kEPIPE:
      return "EPIPE";
    case Errno::kEDOM:
      return "EDOM";
    case Errno::kERANGE:
      return "ERANGE";
    case Errno::kENOMSG:
      return "ENOMSG";
    case Errno::kEDEADLK:
      return "EDEADLK";
    case Errno::kENOTEMPTY:
      return "ENOTEMPTY";
    case Errno::kENAMETOOLONG:
      return "ENAMETOOLONG";
    case Errno::kENOSYS:
      return "ENOSYS";
    case Errno::kEOVERFLOW:
      return "EOVERFLOW";
    case Errno::kETIMEDOUT:
      return "ETIMEDOUT";
  }
  return "EUNKNOWN";
}

}  // namespace svr4
