#include "svr4proc/isa/assembler.h"

#include <cctype>
#include <cstring>
#include <optional>
#include <vector>

#include "svr4proc/isa/isa.h"

namespace svr4 {
namespace {

enum class Section { kText, kData, kBss };

// Where a label or fixup lives.
struct SecOff {
  Section sec;
  uint32_t off;
};

struct PendingRef {
  SecOff at;          // where the 32-bit absolute value must be patched
  std::string expr;   // label or label+n / label-n
  int line;
};

enum class Sig {
  kNone,  // 1-byte
  kRR,    // rd, rs
  kRI,    // rd, imm32
  kLoad,  // rv, [ra+off16]
  kStore, // rv, [ra+off16]
  kJump,  // addr32
  kReg,   // single register
  kFI,    // fd, double-literal
  kFF,    // fd, fs
  kRF,    // rd, fs
  kFR,    // fd, rs
};

struct Mnemonic {
  uint8_t opcode;
  Sig sig;
};

const std::map<std::string_view, Mnemonic>& MnemonicTable() {
  static const std::map<std::string_view, Mnemonic> table = {
      {"nop", {kOpNop, Sig::kNone}},   {"bpt", {kOpBpt, Sig::kNone}},
      {"ret", {kOpRet, Sig::kNone}},   {"hlt", {kOpHlt, Sig::kNone}},
      {"sys", {kOpSys, Sig::kNone}},   {"mov", {kOpMov, Sig::kRR}},
      {"add", {kOpAdd, Sig::kRR}},     {"sub", {kOpSub, Sig::kRR}},
      {"mul", {kOpMul, Sig::kRR}},     {"div", {kOpDiv, Sig::kRR}},
      {"mod", {kOpMod, Sig::kRR}},     {"and", {kOpAnd, Sig::kRR}},
      {"or", {kOpOr, Sig::kRR}},       {"xor", {kOpXor, Sig::kRR}},
      {"shl", {kOpShl, Sig::kRR}},     {"shr", {kOpShr, Sig::kRR}},
      {"cmp", {kOpCmp, Sig::kRR}},     {"addv", {kOpAddv, Sig::kRR}},
      {"ldi", {kOpLdi, Sig::kRI}},     {"addi", {kOpAddi, Sig::kRI}},
      {"cmpi", {kOpCmpi, Sig::kRI}},   {"ldw", {kOpLdw, Sig::kLoad}},
      {"ldb", {kOpLdb, Sig::kLoad}},   {"stw", {kOpStw, Sig::kStore}},
      {"stb", {kOpStb, Sig::kStore}},  {"jmp", {kOpJmp, Sig::kJump}},
      {"jz", {kOpJz, Sig::kJump}},     {"jnz", {kOpJnz, Sig::kJump}},
      {"jlt", {kOpJlt, Sig::kJump}},   {"jge", {kOpJge, Sig::kJump}},
      {"jgt", {kOpJgt, Sig::kJump}},   {"jle", {kOpJle, Sig::kJump}},
      {"jcs", {kOpJcs, Sig::kJump}},   {"jcc", {kOpJcc, Sig::kJump}},
      {"call", {kOpCall, Sig::kJump}}, {"push", {kOpPush, Sig::kReg}},
      {"pop", {kOpPop, Sig::kReg}},    {"callr", {kOpCallr, Sig::kReg}},
      {"jmpr", {kOpJmpr, Sig::kReg}},  {"fldi", {kOpFldi, Sig::kFI}},
      {"fmov", {kOpFmov, Sig::kFF}},   {"fadd", {kOpFadd, Sig::kFF}},
      {"fsub", {kOpFsub, Sig::kFF}},   {"fmul", {kOpFmul, Sig::kFF}},
      {"fdiv", {kOpFdiv, Sig::kFF}},   {"ftoi", {kOpFtoi, Sig::kRF}},
      {"itof", {kOpItof, Sig::kFR}},
  };
  return table;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Splits an operand list on top-level commas (commas inside quotes or
// brackets do not split).
std::vector<std::string> SplitOperands(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quote = false;
  int bracket = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_quote) {
      cur += c;
      if (c == '\\' && i + 1 < s.size()) {
        cur += s[++i];
      } else if (c == '"') {
        in_quote = false;
      }
      continue;
    }
    if (c == '"') {
      in_quote = true;
      cur += c;
    } else if (c == '[') {
      ++bracket;
      cur += c;
    } else if (c == ']') {
      --bracket;
      cur += c;
    } else if (c == ',' && bracket == 0) {
      out.push_back(std::string(Trim(cur)));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cur = std::string(Trim(cur));
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

std::optional<int> ParseReg(std::string_view tok) {
  if (tok == "sp") {
    return kRegSp;
  }
  if (tok == "fp") {
    return kRegFp;
  }
  if (tok.size() >= 2 && (tok[0] == 'r' || tok[0] == 'R')) {
    int v = 0;
    for (size_t i = 1; i < tok.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(tok[i]))) {
        return std::nullopt;
      }
      v = v * 10 + (tok[i] - '0');
    }
    if (v < kNumRegs) {
      return v;
    }
  }
  return std::nullopt;
}

std::optional<int> ParseFreg(std::string_view tok) {
  if (tok.size() >= 2 && (tok[0] == 'f' || tok[0] == 'F') && tok != "fp") {
    int v = 0;
    for (size_t i = 1; i < tok.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(tok[i]))) {
        return std::nullopt;
      }
      v = v * 10 + (tok[i] - '0');
    }
    if (v < kNumFpRegs) {
      return v;
    }
  }
  return std::nullopt;
}

std::optional<int64_t> ParseNumber(std::string_view tok) {
  if (tok.empty()) {
    return std::nullopt;
  }
  if (tok.size() >= 3 && tok.front() == '\'' && tok.back() == '\'') {
    if (tok.size() == 3) {
      return static_cast<int64_t>(tok[1]);
    }
    if (tok.size() == 4 && tok[1] == '\\') {
      switch (tok[2]) {
        case 'n':
          return '\n';
        case 't':
          return '\t';
        case '0':
          return 0;
        case '\\':
          return '\\';
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;
  }
  bool neg = false;
  size_t i = 0;
  if (tok[0] == '-') {
    neg = true;
    i = 1;
  } else if (tok[0] == '+') {
    i = 1;
  }
  if (i >= tok.size()) {
    return std::nullopt;
  }
  int64_t v = 0;
  if (tok.size() > i + 2 && tok[i] == '0' && (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
    for (size_t j = i + 2; j < tok.size(); ++j) {
      char c = tok[j];
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = c - 'A' + 10;
      } else {
        return std::nullopt;
      }
      v = v * 16 + d;
    }
  } else {
    for (size_t j = i; j < tok.size(); ++j) {
      if (!std::isdigit(static_cast<unsigned char>(tok[j]))) {
        return std::nullopt;
      }
      v = v * 10 + (tok[j] - '0');
    }
  }
  return neg ? -v : v;
}

bool ParseString(std::string_view tok, std::string* out) {
  if (tok.size() < 2 || tok.front() != '"' || tok.back() != '"') {
    return false;
  }
  out->clear();
  for (size_t i = 1; i + 1 < tok.size(); ++i) {
    char c = tok[i];
    if (c == '\\' && i + 2 < tok.size()) {
      char e = tok[++i];
      switch (e) {
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case '0':
          out->push_back('\0');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '"':
          out->push_back('"');
          break;
        default:
          out->push_back(e);
          break;
      }
    } else {
      out->push_back(c);
    }
  }
  return true;
}

struct Emitter {
  std::vector<uint8_t> text;
  std::vector<uint8_t> data;
  uint32_t bss_size = 0;
  Section cur = Section::kText;

  std::vector<uint8_t>* buf() { return cur == Section::kText ? &text : &data; }
  uint32_t offset() const {
    switch (cur) {
      case Section::kText:
        return static_cast<uint32_t>(text.size());
      case Section::kData:
        return static_cast<uint32_t>(data.size());
      case Section::kBss:
        return bss_size;
    }
    return 0;
  }
  void Byte(uint8_t b) { buf()->push_back(b); }
  void U16(uint16_t v) {
    Byte(static_cast<uint8_t>(v & 0xFF));
    Byte(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      Byte(static_cast<uint8_t>(v >> (i * 8)));
    }
  }
};

}  // namespace

Assembler::Assembler(AsmOptions opts) : opts_(opts) {}

void Assembler::Define(std::string name, uint32_t value) {
  predefined_[std::move(name)] = value;
}

void Assembler::ImportLibrary(const Aout& lib_image, std::string lib_name) {
  for (const auto& s : lib_image.symbols) {
    predefined_[s.name] = s.value;
  }
  lib_name_ = std::move(lib_name);
}

Result<Aout> Assembler::Assemble(std::string_view source) {
  error_.clear();
  Emitter em;
  std::map<std::string, SecOff, std::less<>> labels;
  std::map<std::string, uint32_t, std::less<>> equates = predefined_;
  std::vector<PendingRef> refs;
  std::string entry_label;
  std::string lib = lib_name_;

  auto fail = [this](int line, const std::string& msg) -> Errno {
    error_ = "line " + std::to_string(line) + ": " + msg;
    return Errno::kEINVAL;
  };

  // Resolves an expression that must be a plain number right now (no labels).
  auto number_now = [&equates](std::string_view tok) -> std::optional<int64_t> {
    if (auto n = ParseNumber(tok)) {
      return n;
    }
    auto it = equates.find(tok);
    if (it != equates.end()) {
      return static_cast<int64_t>(it->second);
    }
    return std::nullopt;
  };

  int line_no = 0;
  size_t pos = 0;
  while (pos <= source.size()) {
    size_t eol = source.find('\n', pos);
    std::string_view line =
        source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = (eol == std::string_view::npos) ? source.size() + 1 : eol + 1;
    ++line_no;

    // Strip comments (outside quotes).
    {
      bool q = false;
      size_t cut = line.size();
      for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '"') {
          q = !q;
        } else if (!q && (c == ';' || c == '#')) {
          cut = i;
          break;
        }
      }
      line = line.substr(0, cut);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }

    // Labels (possibly several, though one is typical).
    while (true) {
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        break;
      }
      std::string_view name = Trim(line.substr(0, colon));
      bool ident = !name.empty();
      for (char c : name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.')) {
          ident = false;
        }
      }
      if (!ident || name.find('"') != std::string_view::npos) {
        break;  // not a label (e.g. a char literal with ':')
      }
      if (labels.count(name) || equates.count(name)) {
        return fail(line_no, "duplicate label '" + std::string(name) + "'");
      }
      labels[std::string(name)] = SecOff{em.cur, em.offset()};
      line = Trim(line.substr(colon + 1));
      if (line.empty()) {
        break;
      }
    }
    if (line.empty()) {
      continue;
    }

    // Mnemonic / directive and operand string.
    size_t sp = line.find_first_of(" \t");
    std::string_view head = line.substr(0, sp);
    std::string_view rest = sp == std::string_view::npos ? std::string_view{} : Trim(line.substr(sp));
    std::vector<std::string> ops = SplitOperands(rest);

    if (head[0] == '.') {
      if (head == ".text") {
        em.cur = Section::kText;
      } else if (head == ".data") {
        em.cur = Section::kData;
      } else if (head == ".bss") {
        em.cur = Section::kBss;
      } else if (head == ".entry") {
        if (ops.size() != 1) {
          return fail(line_no, ".entry needs one label");
        }
        entry_label = ops[0];
      } else if (head == ".lib") {
        std::string s;
        if (ops.size() != 1 || !ParseString(ops[0], &s)) {
          return fail(line_no, ".lib needs a quoted name");
        }
        lib = s;
      } else if (head == ".equ") {
        if (ops.size() != 2) {
          return fail(line_no, ".equ needs name, value");
        }
        auto v = number_now(ops[1]);
        if (!v) {
          return fail(line_no, "bad .equ value '" + ops[1] + "'");
        }
        equates[ops[0]] = static_cast<uint32_t>(*v);
      } else if (head == ".word") {
        if (em.cur == Section::kBss) {
          return fail(line_no, ".word not allowed in .bss");
        }
        for (const auto& op : ops) {
          if (auto v = number_now(op)) {
            em.U32(static_cast<uint32_t>(*v));
          } else {
            refs.push_back({SecOff{em.cur, em.offset()}, op, line_no});
            em.U32(0);
          }
        }
      } else if (head == ".byte") {
        if (em.cur == Section::kBss) {
          return fail(line_no, ".byte not allowed in .bss");
        }
        for (const auto& op : ops) {
          auto v = number_now(op);
          if (!v) {
            return fail(line_no, "bad .byte value '" + op + "'");
          }
          em.Byte(static_cast<uint8_t>(*v));
        }
      } else if (head == ".ascii" || head == ".asciz") {
        if (em.cur == Section::kBss) {
          return fail(line_no, "strings not allowed in .bss");
        }
        std::string s;
        if (ops.size() != 1 || !ParseString(ops[0], &s)) {
          return fail(line_no, head == ".ascii" ? "bad .ascii" : "bad .asciz");
        }
        for (char c : s) {
          em.Byte(static_cast<uint8_t>(c));
        }
        if (head == ".asciz") {
          em.Byte(0);
        }
      } else if (head == ".space") {
        auto v = ops.size() == 1 ? number_now(ops[0]) : std::nullopt;
        if (!v || *v < 0) {
          return fail(line_no, "bad .space size");
        }
        if (em.cur == Section::kBss) {
          em.bss_size += static_cast<uint32_t>(*v);
        } else {
          for (int64_t i = 0; i < *v; ++i) {
            em.Byte(0);
          }
        }
      } else if (head == ".align") {
        auto v = ops.size() == 1 ? number_now(ops[0]) : std::nullopt;
        if (!v || *v <= 0) {
          return fail(line_no, "bad .align");
        }
        uint32_t a = static_cast<uint32_t>(*v);
        if (em.cur == Section::kBss) {
          em.bss_size = (em.bss_size + a - 1) / a * a;
        } else {
          while (em.offset() % a != 0) {
            em.Byte(0);
          }
        }
      } else {
        return fail(line_no, "unknown directive '" + std::string(head) + "'");
      }
      continue;
    }

    // Instruction.
    if (em.cur != Section::kText) {
      return fail(line_no, "instructions only allowed in .text");
    }
    auto mit = MnemonicTable().find(head);
    if (mit == MnemonicTable().end()) {
      return fail(line_no, "unknown mnemonic '" + std::string(head) + "'");
    }
    const Mnemonic& m = mit->second;

    // Immediate operand: number, equate, or label expression (fixed up later).
    auto emit_imm32 = [&](const std::string& op) {
      if (auto v = number_now(op)) {
        em.U32(static_cast<uint32_t>(*v));
      } else {
        refs.push_back({SecOff{em.cur, em.offset()}, op, line_no});
        em.U32(0);
      }
    };

    switch (m.sig) {
      case Sig::kNone:
        if (!ops.empty()) {
          return fail(line_no, "'" + std::string(head) + "' takes no operands");
        }
        em.Byte(m.opcode);
        break;
      case Sig::kRR: {
        auto rd = ops.size() == 2 ? ParseReg(ops[0]) : std::nullopt;
        auto rs = ops.size() == 2 ? ParseReg(ops[1]) : std::nullopt;
        if (!rd || !rs) {
          return fail(line_no, "expected 'rd, rs'");
        }
        em.Byte(m.opcode);
        em.Byte(static_cast<uint8_t>((*rd << 4) | *rs));
        break;
      }
      case Sig::kRI: {
        auto rd = ops.size() == 2 ? ParseReg(ops[0]) : std::nullopt;
        if (!rd) {
          return fail(line_no, "expected 'rd, imm'");
        }
        em.Byte(m.opcode);
        em.Byte(static_cast<uint8_t>(*rd));
        emit_imm32(ops[1]);
        break;
      }
      case Sig::kLoad:
      case Sig::kStore: {
        if (ops.size() != 2) {
          return fail(line_no, "expected 'rv, [ra+off]'");
        }
        auto rv = ParseReg(ops[0]);
        std::string_view memop = ops[1];
        if (!rv || memop.size() < 4 || memop.front() != '[' || memop.back() != ']') {
          return fail(line_no, "expected 'rv, [ra+off]'");
        }
        std::string_view inner = Trim(memop.substr(1, memop.size() - 2));
        size_t op_pos = inner.find_first_of("+-", 1);
        std::string_view reg_tok = Trim(op_pos == std::string_view::npos ? inner : inner.substr(0, op_pos));
        auto ra = ParseReg(reg_tok);
        if (!ra) {
          return fail(line_no, "bad base register in memory operand");
        }
        int32_t off = 0;
        if (op_pos != std::string_view::npos) {
          std::string off_tok(Trim(inner.substr(op_pos)));  // includes sign
          auto v = number_now(off_tok);
          if (!v) {
            // allow "+name" with equate
            auto v2 = number_now(std::string_view(off_tok).substr(1));
            if (!v2) {
              return fail(line_no, "bad offset in memory operand");
            }
            off = static_cast<int32_t>(*v2);
            if (off_tok[0] == '-') {
              off = -off;
            }
          } else {
            off = static_cast<int32_t>(*v);
          }
        }
        if (off < -32768 || off > 32767) {
          return fail(line_no, "memory offset out of range");
        }
        em.Byte(m.opcode);
        em.Byte(static_cast<uint8_t>((*rv << 4) | *ra));
        em.U16(static_cast<uint16_t>(static_cast<int16_t>(off)));
        break;
      }
      case Sig::kJump: {
        if (ops.size() != 1) {
          return fail(line_no, "expected one target");
        }
        em.Byte(m.opcode);
        emit_imm32(ops[0]);
        break;
      }
      case Sig::kReg: {
        auto r = ops.size() == 1 ? ParseReg(ops[0]) : std::nullopt;
        if (!r) {
          return fail(line_no, "expected one register");
        }
        em.Byte(m.opcode);
        em.Byte(static_cast<uint8_t>(*r));
        break;
      }
      case Sig::kFI: {
        auto fd = ops.size() == 2 ? ParseFreg(ops[0]) : std::nullopt;
        if (!fd) {
          return fail(line_no, "expected 'fd, literal'");
        }
        char* end = nullptr;
        double v = std::strtod(ops[1].c_str(), &end);
        if (end == ops[1].c_str() || *end != '\0') {
          return fail(line_no, "bad float literal");
        }
        em.Byte(m.opcode);
        em.Byte(static_cast<uint8_t>(*fd));
        uint8_t raw[8];
        std::memcpy(raw, &v, 8);
        for (uint8_t b : raw) {
          em.Byte(b);
        }
        break;
      }
      case Sig::kFF: {
        auto fd = ops.size() == 2 ? ParseFreg(ops[0]) : std::nullopt;
        auto fs = ops.size() == 2 ? ParseFreg(ops[1]) : std::nullopt;
        if (!fd || !fs) {
          return fail(line_no, "expected 'fd, fs'");
        }
        em.Byte(m.opcode);
        em.Byte(static_cast<uint8_t>((*fd << 4) | *fs));
        break;
      }
      case Sig::kRF: {
        auto rd = ops.size() == 2 ? ParseReg(ops[0]) : std::nullopt;
        auto fs = ops.size() == 2 ? ParseFreg(ops[1]) : std::nullopt;
        if (!rd || !fs) {
          return fail(line_no, "expected 'rd, fs'");
        }
        em.Byte(m.opcode);
        em.Byte(static_cast<uint8_t>((*rd << 4) | *fs));
        break;
      }
      case Sig::kFR: {
        auto fd = ops.size() == 2 ? ParseFreg(ops[0]) : std::nullopt;
        auto rs = ops.size() == 2 ? ParseReg(ops[1]) : std::nullopt;
        if (!fd || !rs) {
          return fail(line_no, "expected 'fd, rs'");
        }
        em.Byte(m.opcode);
        em.Byte(static_cast<uint8_t>((*fd << 4) | *rs));
        break;
      }
    }
  }

  // Lay out sections and resolve symbols.
  Aout out;
  out.text_vaddr = opts_.text_base;
  out.text = std::move(em.text);
  uint32_t data_base = opts_.text_base + static_cast<uint32_t>(out.text.size());
  data_base = (data_base + opts_.data_align - 1) / opts_.data_align * opts_.data_align;
  if (data_base == opts_.text_base) {
    data_base += opts_.data_align;  // keep data distinct even for empty text
  }
  out.data_vaddr = data_base;
  out.data = std::move(em.data);
  out.bss_vaddr = (out.data_vaddr + static_cast<uint32_t>(out.data.size()) + 3u) & ~3u;
  out.bss_size = em.bss_size;
  out.lib = lib;

  auto label_vaddr = [&](const SecOff& so) -> uint32_t {
    switch (so.sec) {
      case Section::kText:
        return out.text_vaddr + so.off;
      case Section::kData:
        return out.data_vaddr + so.off;
      case Section::kBss:
        return out.bss_vaddr + so.off;
    }
    return 0;
  };

  auto resolve = [&](std::string_view expr) -> std::optional<uint32_t> {
    // label, label+n, label-n
    size_t op_pos = expr.find_first_of("+-", 1);
    std::string_view base = op_pos == std::string_view::npos ? expr : Trim(expr.substr(0, op_pos));
    int64_t delta = 0;
    if (op_pos != std::string_view::npos) {
      auto v = ParseNumber(Trim(expr.substr(op_pos)));
      if (!v) {
        return std::nullopt;
      }
      delta = *v;
    }
    if (auto it = labels.find(base); it != labels.end()) {
      return static_cast<uint32_t>(label_vaddr(it->second) + delta);
    }
    if (auto it = equates.find(base); it != equates.end()) {
      return static_cast<uint32_t>(it->second + delta);
    }
    return std::nullopt;
  };

  for (const auto& ref : refs) {
    auto v = resolve(ref.expr);
    if (!v) {
      return fail(ref.line, "undefined symbol '" + ref.expr + "'");
    }
    std::vector<uint8_t>& buf = ref.at.sec == Section::kText ? out.text : out.data;
    uint32_t value = *v;
    std::memcpy(buf.data() + ref.at.off, &value, 4);
  }

  // Entry point.
  if (!entry_label.empty()) {
    auto v = resolve(entry_label);
    if (!v) {
      error_ = ".entry label '" + entry_label + "' undefined";
      return Errno::kEINVAL;
    }
    out.entry = *v;
  } else {
    out.entry = out.text_vaddr;
  }

  // Symbol table: every label plus .equ values.
  for (const auto& [name, so] : labels) {
    AoutSymbol s;
    s.name = name;
    s.value = label_vaddr(so);
    s.type = so.sec == Section::kText  ? SymType::kText
             : so.sec == Section::kData ? SymType::kData
                                        : SymType::kBss;
    out.symbols.push_back(std::move(s));
  }
  for (const auto& [name, value] : equates) {
    if (predefined_.count(name)) {
      continue;  // don't re-export imported symbols
    }
    out.symbols.push_back(AoutSymbol{name, value, SymType::kAbs});
  }
  return out;
}

}  // namespace svr4
