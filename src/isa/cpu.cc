#include "svr4proc/isa/cpu.h"

#include <cstring>
#include <limits>

namespace svr4 {
namespace {

StepResult FaultAt(int fault, uint32_t addr) {
  StepResult r;
  r.kind = StepResult::kFault;
  r.fault = fault;
  r.fault_addr = addr;
  return r;
}

StepResult FaultFromMem(const MemFault& mf) { return FaultAt(mf.fault, mf.addr); }

void SetZn(Regs& regs, uint32_t v) {
  regs.psr &= ~(kPsrZ | kPsrN);
  if (v == 0) {
    regs.psr |= kPsrZ;
  }
  if (static_cast<int32_t>(v) < 0) {
    regs.psr |= kPsrN;
  }
}

void SetCmpFlags(Regs& regs, uint32_t a, uint32_t b) {
  uint32_t d = a - b;
  regs.psr &= ~(kPsrZ | kPsrN | kPsrC | kPsrV);
  if (d == 0) {
    regs.psr |= kPsrZ;
  }
  if (static_cast<int32_t>(d) < 0) {
    regs.psr |= kPsrN;
  }
  if (a < b) {
    regs.psr |= kPsrC;  // borrow
  }
  bool v = ((a ^ b) & (a ^ d)) >> 31;
  if (v) {
    regs.psr |= kPsrV;
  }
}

bool SignedLt(const Regs& regs) {
  bool n = regs.psr & kPsrN;
  bool v = regs.psr & kPsrV;
  return n != v;
}

}  // namespace

StepResult CpuStep(Regs& regs, FpRegs& fp, MemoryIf& mem) {
  const uint32_t pc = regs.pc;

  // Fast fetch: pull opcode and operands in one translated window when the
  // memory supports it. `have` bytes of ibuf are valid executable bytes
  // starting at pc, from the same page. The buffer is wider than any
  // instruction so implementations can use a single fixed-size copy.
  alignas(8) uint8_t ibuf[kFetchWindowBytes] = {};
  static_assert(kFetchWindowBytes >= kMaxInstrLen);
  uint32_t have = mem.FetchWindow(pc, ibuf, kFetchWindowBytes);
  if (have == 0) {
    if (auto mf = mem.MemRead(pc, ibuf, 1, Access::kExec)) {
      return FaultFromMem(*mf);
    }
    have = 1;
  }
  const uint8_t opcode = ibuf[0];
  const int len = InstrLength(opcode);
  if (len == 0) {
    return FaultAt(FLTILL, pc);
  }
  if (opcode == kOpBpt) {
    // The breakpoint trap leaves pc at the breakpoint address itself.
    return FaultAt(FLTBPT, pc);
  }
  if (opcode == kOpHlt) {
    return FaultAt(FLTPRIV, pc);
  }

  if (static_cast<uint32_t>(len) > have) {
    // The instruction straddles the fetch window (a page boundary, or the
    // byte-exact fallback). Fetch the tail at its own address so a fault
    // reports the operand byte that faulted, not the opcode.
    if (auto mf =
            mem.MemRead(pc + have, ibuf + have, static_cast<uint32_t>(len) - have, Access::kExec)) {
      return FaultFromMem(*mf);
    }
  }
  uint8_t* const operand = ibuf + 1;
  auto imm32at = [&](int i) {
    uint32_t v;
    std::memcpy(&v, &operand[i], 4);
    return v;
  };
  auto imm16at = [&](int i) {
    int16_t v;
    std::memcpy(&v, &operand[i], 2);
    return static_cast<int32_t>(v);
  };

  const uint32_t next_pc = pc + static_cast<uint32_t>(len);
  StepResult result;  // kOk

  switch (opcode) {
    case kOpNop:
      regs.pc = next_pc;
      break;
    case kOpSys:
      regs.pc = next_pc;
      result.kind = StepResult::kSyscall;
      return result;  // kernel handles trace-bit interaction itself
    case kOpRet: {
      uint32_t ret;
      if (auto mf = mem.MemRead(regs.sp(), &ret, 4, Access::kRead)) {
        return FaultFromMem(*mf);
      }
      regs.set_sp(regs.sp() + 4);
      regs.pc = ret;
      break;
    }
    case kOpMov:
    case kOpAdd:
    case kOpSub:
    case kOpMul:
    case kOpDiv:
    case kOpMod:
    case kOpAnd:
    case kOpOr:
    case kOpXor:
    case kOpShl:
    case kOpShr:
    case kOpCmp:
    case kOpAddv: {
      int rd = operand[0] >> 4;
      int rs = operand[0] & 0x0F;
      uint32_t a = regs.r[rd];
      uint32_t b = regs.r[rs];
      uint32_t out = a;
      switch (opcode) {
        case kOpMov:
          out = b;
          break;
        case kOpAdd:
          out = a + b;
          break;
        case kOpSub:
          out = a - b;
          break;
        case kOpMul:
          out = a * b;
          break;
        case kOpDiv:
          if (b == 0) {
            return FaultAt(FLTIZDIV, pc);
          }
          if (a == 0x80000000u && b == 0xFFFFFFFFu) {
            return FaultAt(FLTIOVF, pc);
          }
          out = static_cast<uint32_t>(static_cast<int32_t>(a) / static_cast<int32_t>(b));
          break;
        case kOpMod:
          if (b == 0) {
            return FaultAt(FLTIZDIV, pc);
          }
          if (a == 0x80000000u && b == 0xFFFFFFFFu) {
            return FaultAt(FLTIOVF, pc);
          }
          out = static_cast<uint32_t>(static_cast<int32_t>(a) % static_cast<int32_t>(b));
          break;
        case kOpAnd:
          out = a & b;
          break;
        case kOpOr:
          out = a | b;
          break;
        case kOpXor:
          out = a ^ b;
          break;
        case kOpShl:
          out = (b >= 32) ? 0 : a << b;
          break;
        case kOpShr:
          out = (b >= 32) ? 0 : a >> b;
          break;
        case kOpCmp:
          SetCmpFlags(regs, a, b);
          regs.pc = next_pc;
          return result;
        case kOpAddv: {
          int64_t wide = static_cast<int64_t>(static_cast<int32_t>(a)) +
                         static_cast<int64_t>(static_cast<int32_t>(b));
          if (wide > std::numeric_limits<int32_t>::max() ||
              wide < std::numeric_limits<int32_t>::min()) {
            return FaultAt(FLTIOVF, pc);
          }
          out = static_cast<uint32_t>(wide);
          break;
        }
        default:
          break;
      }
      regs.r[rd] = out;
      SetZn(regs, out);
      regs.pc = next_pc;
      break;
    }
    case kOpLdi:
    case kOpAddi:
    case kOpCmpi: {
      int rd = operand[0] & 0x0F;
      uint32_t imm = imm32at(1);
      if (opcode == kOpLdi) {
        regs.r[rd] = imm;
        SetZn(regs, imm);
      } else if (opcode == kOpAddi) {
        regs.r[rd] += imm;
        SetZn(regs, regs.r[rd]);
      } else {
        SetCmpFlags(regs, regs.r[rd], imm);
      }
      regs.pc = next_pc;
      break;
    }
    case kOpLdw:
    case kOpLdb: {
      int rv = operand[0] >> 4;
      int ra = operand[0] & 0x0F;
      uint32_t addr = regs.r[ra] + static_cast<uint32_t>(imm16at(1));
      uint32_t v = 0;
      uint32_t sz = (opcode == kOpLdw) ? 4 : 1;
      if (auto mf = mem.MemRead(addr, &v, sz, Access::kRead)) {
        return FaultFromMem(*mf);
      }
      regs.r[rv] = v;
      SetZn(regs, v);
      regs.pc = next_pc;
      break;
    }
    case kOpStw:
    case kOpStb: {
      int rv = operand[0] >> 4;
      int ra = operand[0] & 0x0F;
      uint32_t addr = regs.r[ra] + static_cast<uint32_t>(imm16at(1));
      uint32_t v = regs.r[rv];
      uint32_t sz = (opcode == kOpStw) ? 4 : 1;
      if (auto mf = mem.MemWrite(addr, &v, sz)) {
        return FaultFromMem(*mf);
      }
      regs.pc = next_pc;
      break;
    }
    case kOpJmp:
    case kOpJz:
    case kOpJnz:
    case kOpJlt:
    case kOpJge:
    case kOpJgt:
    case kOpJle:
    case kOpJcs:
    case kOpJcc: {
      uint32_t target = imm32at(0);
      bool take = false;
      switch (opcode) {
        case kOpJmp:
          take = true;
          break;
        case kOpJz:
          take = regs.psr & kPsrZ;
          break;
        case kOpJnz:
          take = !(regs.psr & kPsrZ);
          break;
        case kOpJlt:
          take = SignedLt(regs);
          break;
        case kOpJge:
          take = !SignedLt(regs);
          break;
        case kOpJgt:
          take = !SignedLt(regs) && !(regs.psr & kPsrZ);
          break;
        case kOpJle:
          take = SignedLt(regs) || (regs.psr & kPsrZ);
          break;
        case kOpJcs:
          take = regs.psr & kPsrC;
          break;
        case kOpJcc:
          take = !(regs.psr & kPsrC);
          break;
        default:
          break;
      }
      regs.pc = take ? target : next_pc;
      break;
    }
    case kOpCall: {
      uint32_t target = imm32at(0);
      uint32_t ret = next_pc;
      uint32_t nsp = regs.sp() - 4;
      if (auto mf = mem.MemWrite(nsp, &ret, 4)) {
        // A faulted push is an unrecoverable stack fault unless it is a
        // watchpoint firing.
        if (mf->fault == FLTWATCH) {
          return FaultFromMem(*mf);
        }
        return FaultAt(FLTSTACK, mf->addr);
      }
      regs.set_sp(nsp);
      regs.pc = target;
      break;
    }
    case kOpPush: {
      int rs = operand[0] & 0x0F;
      uint32_t v = regs.r[rs];
      uint32_t nsp = regs.sp() - 4;
      if (auto mf = mem.MemWrite(nsp, &v, 4)) {
        if (mf->fault == FLTWATCH) {
          return FaultFromMem(*mf);
        }
        return FaultAt(FLTSTACK, mf->addr);
      }
      regs.set_sp(nsp);
      regs.pc = next_pc;
      break;
    }
    case kOpPop: {
      int rd = operand[0] & 0x0F;
      uint32_t v;
      if (auto mf = mem.MemRead(regs.sp(), &v, 4, Access::kRead)) {
        return FaultFromMem(*mf);
      }
      regs.set_sp(regs.sp() + 4);
      regs.r[rd] = v;
      regs.pc = next_pc;
      break;
    }
    case kOpCallr:
    case kOpJmpr: {
      int rs = operand[0] & 0x0F;
      uint32_t target = regs.r[rs];
      if (opcode == kOpCallr) {
        uint32_t ret = next_pc;
        uint32_t nsp = regs.sp() - 4;
        if (auto mf = mem.MemWrite(nsp, &ret, 4)) {
          if (mf->fault == FLTWATCH) {
            return FaultFromMem(*mf);
          }
          return FaultAt(FLTSTACK, mf->addr);
        }
        regs.set_sp(nsp);
      }
      regs.pc = target;
      break;
    }
    case kOpFldi: {
      int fd = operand[0] & 0x07;
      double v;
      std::memcpy(&v, &operand[1], 8);
      fp.f[fd] = v;
      regs.pc = next_pc;
      break;
    }
    case kOpFmov:
    case kOpFadd:
    case kOpFsub:
    case kOpFmul:
    case kOpFdiv: {
      int fd = (operand[0] >> 4) & 0x07;
      int fs = operand[0] & 0x07;
      double a = fp.f[fd];
      double b = fp.f[fs];
      switch (opcode) {
        case kOpFmov:
          fp.f[fd] = b;
          break;
        case kOpFadd:
          fp.f[fd] = a + b;
          break;
        case kOpFsub:
          fp.f[fd] = a - b;
          break;
        case kOpFmul:
          fp.f[fd] = a * b;
          break;
        case kOpFdiv:
          if (b == 0.0) {
            fp.fsr |= 1;  // sticky divide-by-zero
            return FaultAt(FLTFPE, pc);
          }
          fp.f[fd] = a / b;
          break;
        default:
          break;
      }
      regs.pc = next_pc;
      break;
    }
    case kOpFtoi: {
      int rd = (operand[0] >> 4) & 0x0F;
      int fs = operand[0] & 0x07;
      double v = fp.f[fs];
      if (v > 2147483647.0 || v < -2147483648.0) {
        fp.fsr |= 2;  // sticky invalid-conversion
        return FaultAt(FLTFPE, pc);
      }
      regs.r[rd] = static_cast<uint32_t>(static_cast<int32_t>(v));
      regs.pc = next_pc;
      break;
    }
    case kOpItof: {
      int fd = (operand[0] >> 4) & 0x07;
      int rs = operand[0] & 0x0F;
      fp.f[fd] = static_cast<double>(static_cast<int32_t>(regs.r[rs]));
      regs.pc = next_pc;
      break;
    }
    default:
      return FaultAt(FLTILL, pc);
  }

  if (regs.psr & kPsrT) {
    // Trace trap: reported after the instruction completes, pc advanced.
    return FaultAt(FLTTRACE, regs.pc);
  }
  return result;
}

}  // namespace svr4
