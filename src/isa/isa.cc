#include "svr4proc/isa/isa.h"

namespace svr4 {

std::string_view FaultName(int fault) {
  switch (fault) {
    case FLTILL:
      return "FLTILL";
    case FLTPRIV:
      return "FLTPRIV";
    case FLTBPT:
      return "FLTBPT";
    case FLTTRACE:
      return "FLTTRACE";
    case FLTACCESS:
      return "FLTACCESS";
    case FLTBOUNDS:
      return "FLTBOUNDS";
    case FLTIOVF:
      return "FLTIOVF";
    case FLTIZDIV:
      return "FLTIZDIV";
    case FLTFPE:
      return "FLTFPE";
    case FLTSTACK:
      return "FLTSTACK";
    case FLTPAGE:
      return "FLTPAGE";
    case FLTWATCH:
      return "FLTWATCH";
    default:
      return "FLT???";
  }
}

int InstrLength(uint8_t opcode) {
  switch (opcode) {
    case kOpNop:
    case kOpBpt:
    case kOpRet:
    case kOpHlt:
    case kOpSys:
      return 1;
    case kOpMov:
    case kOpAdd:
    case kOpSub:
    case kOpMul:
    case kOpDiv:
    case kOpMod:
    case kOpAnd:
    case kOpOr:
    case kOpXor:
    case kOpShl:
    case kOpShr:
    case kOpCmp:
    case kOpAddv:
    case kOpPush:
    case kOpPop:
    case kOpCallr:
    case kOpJmpr:
    case kOpFmov:
    case kOpFadd:
    case kOpFsub:
    case kOpFmul:
    case kOpFdiv:
    case kOpFtoi:
    case kOpItof:
      return 2;
    case kOpLdw:
    case kOpStw:
    case kOpLdb:
    case kOpStb:
      return 4;
    case kOpJmp:
    case kOpJz:
    case kOpJnz:
    case kOpJlt:
    case kOpJge:
    case kOpJgt:
    case kOpJle:
    case kOpJcs:
    case kOpJcc:
    case kOpCall:
      return 5;
    case kOpLdi:
    case kOpAddi:
    case kOpCmpi:
      return 6;
    case kOpFldi:
      return 10;
    default:
      return 0;
  }
}

std::string_view OpcodeName(uint8_t opcode) {
  switch (opcode) {
    case kOpNop:
      return "nop";
    case kOpBpt:
      return "bpt";
    case kOpRet:
      return "ret";
    case kOpHlt:
      return "hlt";
    case kOpSys:
      return "sys";
    case kOpMov:
      return "mov";
    case kOpLdi:
      return "ldi";
    case kOpAdd:
      return "add";
    case kOpSub:
      return "sub";
    case kOpMul:
      return "mul";
    case kOpDiv:
      return "div";
    case kOpMod:
      return "mod";
    case kOpAnd:
      return "and";
    case kOpOr:
      return "or";
    case kOpXor:
      return "xor";
    case kOpShl:
      return "shl";
    case kOpShr:
      return "shr";
    case kOpAddi:
      return "addi";
    case kOpCmp:
      return "cmp";
    case kOpCmpi:
      return "cmpi";
    case kOpAddv:
      return "addv";
    case kOpLdw:
      return "ldw";
    case kOpStw:
      return "stw";
    case kOpLdb:
      return "ldb";
    case kOpStb:
      return "stb";
    case kOpJmp:
      return "jmp";
    case kOpJz:
      return "jz";
    case kOpJnz:
      return "jnz";
    case kOpJlt:
      return "jlt";
    case kOpJge:
      return "jge";
    case kOpJgt:
      return "jgt";
    case kOpJle:
      return "jle";
    case kOpJcs:
      return "jcs";
    case kOpJcc:
      return "jcc";
    case kOpCall:
      return "call";
    case kOpPush:
      return "push";
    case kOpPop:
      return "pop";
    case kOpCallr:
      return "callr";
    case kOpJmpr:
      return "jmpr";
    case kOpFldi:
      return "fldi";
    case kOpFmov:
      return "fmov";
    case kOpFadd:
      return "fadd";
    case kOpFsub:
      return "fsub";
    case kOpFmul:
      return "fmul";
    case kOpFdiv:
      return "fdiv";
    case kOpFtoi:
      return "ftoi";
    case kOpItof:
      return "itof";
    default:
      return "";
  }
}

}  // namespace svr4
