#include "svr4proc/isa/aout.h"

#include <cstring>

namespace svr4 {
namespace {

// On-disk layout, little-endian, fixed width. Strings live in a string table
// at the end of the file; name_off indexes into it.
struct RawHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t entry;
  uint32_t text_vaddr;
  uint32_t text_size;
  uint32_t text_off;
  uint32_t data_vaddr;
  uint32_t data_size;
  uint32_t data_off;
  uint32_t bss_vaddr;
  uint32_t bss_size;
  uint32_t nsyms;
  uint32_t sym_off;
  uint32_t str_off;
  uint32_t str_size;
  uint32_t lib_name_off;  // 0xFFFFFFFF when no library dependency
};

struct RawSym {
  uint32_t name_off;
  uint32_t value;
  uint8_t type;
  uint8_t pad[3];
};

constexpr uint32_t kNoLib = 0xFFFFFFFFu;
constexpr uint32_t kVersion = 1;

}  // namespace

std::vector<uint8_t> Aout::Serialize() const {
  std::vector<uint8_t> strtab;
  auto intern = [&strtab](const std::string& s) {
    uint32_t off = static_cast<uint32_t>(strtab.size());
    strtab.insert(strtab.end(), s.begin(), s.end());
    strtab.push_back(0);
    return off;
  };

  std::vector<RawSym> raw_syms;
  raw_syms.reserve(symbols.size());
  for (const auto& s : symbols) {
    RawSym rs{};
    rs.name_off = intern(s.name);
    rs.value = s.value;
    rs.type = static_cast<uint8_t>(s.type);
    raw_syms.push_back(rs);
  }
  uint32_t lib_off = lib.empty() ? kNoLib : intern(lib);

  RawHeader hdr{};
  hdr.magic = kMagic;
  hdr.version = kVersion;
  hdr.entry = entry;
  hdr.text_vaddr = text_vaddr;
  hdr.text_size = static_cast<uint32_t>(text.size());
  hdr.data_vaddr = data_vaddr;
  hdr.data_size = static_cast<uint32_t>(data.size());
  hdr.bss_vaddr = bss_vaddr;
  hdr.bss_size = bss_size;
  hdr.nsyms = static_cast<uint32_t>(raw_syms.size());
  hdr.lib_name_off = lib_off;

  // Page-aligned segments: the exec loader maps the file object directly,
  // and the zero padding after data doubles as the first partial page of
  // bss.
  hdr.text_off = Aout::TextFileOffset();
  hdr.data_off = DataFileOffset();
  uint32_t off = hdr.data_off + hdr.data_size;
  off = (off + kFileAlign - 1) / kFileAlign * kFileAlign;
  hdr.sym_off = off;
  off += static_cast<uint32_t>(raw_syms.size() * sizeof(RawSym));
  hdr.str_off = off;
  hdr.str_size = static_cast<uint32_t>(strtab.size());

  std::vector<uint8_t> out(off + strtab.size());
  std::memcpy(out.data(), &hdr, sizeof(hdr));
  if (!text.empty()) {
    std::memcpy(out.data() + hdr.text_off, text.data(), text.size());
  }
  if (!data.empty()) {
    std::memcpy(out.data() + hdr.data_off, data.data(), data.size());
  }
  if (!raw_syms.empty()) {
    std::memcpy(out.data() + hdr.sym_off, raw_syms.data(), raw_syms.size() * sizeof(RawSym));
  }
  if (!strtab.empty()) {
    std::memcpy(out.data() + hdr.str_off, strtab.data(), strtab.size());
  }
  return out;
}

Result<Aout> Aout::Parse(std::span<const uint8_t> bytes) {
  if (bytes.size() < sizeof(RawHeader)) {
    return Errno::kENOEXEC;
  }
  RawHeader hdr;
  std::memcpy(&hdr, bytes.data(), sizeof(hdr));
  if (hdr.magic != kMagic || hdr.version != kVersion) {
    return Errno::kENOEXEC;
  }
  auto in_range = [&bytes](uint64_t off, uint64_t size) {
    return off + size <= bytes.size() && off + size >= off;
  };
  if (!in_range(hdr.text_off, hdr.text_size) || !in_range(hdr.data_off, hdr.data_size) ||
      !in_range(hdr.sym_off, static_cast<uint64_t>(hdr.nsyms) * sizeof(RawSym)) ||
      !in_range(hdr.str_off, hdr.str_size)) {
    return Errno::kENOEXEC;
  }

  Aout a;
  a.entry = hdr.entry;
  a.text_vaddr = hdr.text_vaddr;
  a.text.assign(bytes.begin() + hdr.text_off, bytes.begin() + hdr.text_off + hdr.text_size);
  a.data_vaddr = hdr.data_vaddr;
  a.data.assign(bytes.begin() + hdr.data_off, bytes.begin() + hdr.data_off + hdr.data_size);
  a.bss_vaddr = hdr.bss_vaddr;
  a.bss_size = hdr.bss_size;

  auto str_at = [&](uint32_t off) -> std::string {
    if (off >= hdr.str_size) {
      return {};
    }
    const char* base = reinterpret_cast<const char*>(bytes.data() + hdr.str_off);
    uint32_t end = off;
    while (end < hdr.str_size && base[end] != 0) {
      ++end;
    }
    return std::string(base + off, base + end);
  };

  a.symbols.reserve(hdr.nsyms);
  for (uint32_t i = 0; i < hdr.nsyms; ++i) {
    RawSym rs;
    std::memcpy(&rs, bytes.data() + hdr.sym_off + i * sizeof(RawSym), sizeof(rs));
    AoutSymbol s;
    s.name = str_at(rs.name_off);
    s.value = rs.value;
    s.type = static_cast<SymType>(rs.type);
    a.symbols.push_back(std::move(s));
  }
  if (hdr.lib_name_off != kNoLib) {
    a.lib = str_at(hdr.lib_name_off);
  }
  return a;
}

Result<uint32_t> Aout::SymbolValue(std::string_view name) const {
  for (const auto& s : symbols) {
    if (s.name == name) {
      return s.value;
    }
  }
  return Errno::kENOENT;
}

Aout::NearSym Aout::NearestSymbol(uint32_t addr) const {
  NearSym best;
  uint32_t best_value = 0;
  bool found = false;
  for (const auto& s : symbols) {
    if (s.type == SymType::kAbs) {
      continue;
    }
    if (s.value <= addr && (!found || s.value > best_value)) {
      best_value = s.value;
      best.name = s.name;
      best.offset = addr - s.value;
      found = true;
    }
  }
  return best;
}

}  // namespace svr4
