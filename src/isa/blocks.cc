#include "svr4proc/isa/blocks.h"

#include <cstring>
#include <limits>

#include "svr4proc/vm/vm.h"

// Threaded-code dispatch: computed goto on GCC/Clang, a dense jump-table
// switch elsewhere. Both forms dispatch directly on the predecoded BKind
// with no per-instruction fetch or operand extraction.
#if defined(__GNUC__) || defined(__clang__)
#define SVR4_COMPUTED_GOTO 1
#endif

namespace svr4 {
namespace {

// Flag helpers: exact copies of the interpreter's (cpu.cc); the two engines
// must agree bit-for-bit on psr effects.
inline void SetZn(Regs& regs, uint32_t v) {
  regs.psr &= ~(kPsrZ | kPsrN);
  if (v == 0) {
    regs.psr |= kPsrZ;
  }
  if (static_cast<int32_t>(v) < 0) {
    regs.psr |= kPsrN;
  }
}

inline void SetCmpFlags(Regs& regs, uint32_t a, uint32_t b) {
  uint32_t d = a - b;
  regs.psr &= ~(kPsrZ | kPsrN | kPsrC | kPsrV);
  if (d == 0) {
    regs.psr |= kPsrZ;
  }
  if (static_cast<int32_t>(d) < 0) {
    regs.psr |= kPsrN;
  }
  if (a < b) {
    regs.psr |= kPsrC;  // borrow
  }
  bool v = ((a ^ b) & (a ^ d)) >> 31;
  if (v) {
    regs.psr |= kPsrV;
  }
}

inline bool SignedLt(const Regs& regs) {
  bool n = regs.psr & kPsrN;
  bool v = regs.psr & kPsrV;
  return n != v;
}

// Opcode byte -> dense dispatch kind; B_ILL for every undefined byte.
constexpr std::array<uint8_t, 256> BuildKindTable() {
  std::array<uint8_t, 256> t{};
  for (auto& k : t) {
    k = B_ILL;
  }
  t[kOpNop] = B_NOP;
  t[kOpBpt] = B_BPT;
  t[kOpRet] = B_RET;
  t[kOpHlt] = B_HLT;
  t[kOpSys] = B_SYS;
  t[kOpMov] = B_MOV;
  t[kOpAdd] = B_ADD;
  t[kOpSub] = B_SUB;
  t[kOpMul] = B_MUL;
  t[kOpDiv] = B_DIV;
  t[kOpMod] = B_MOD;
  t[kOpAnd] = B_AND;
  t[kOpOr] = B_OR;
  t[kOpXor] = B_XOR;
  t[kOpShl] = B_SHL;
  t[kOpShr] = B_SHR;
  t[kOpCmp] = B_CMP;
  t[kOpAddv] = B_ADDV;
  t[kOpLdi] = B_LDI;
  t[kOpAddi] = B_ADDI;
  t[kOpCmpi] = B_CMPI;
  t[kOpLdw] = B_LDW;
  t[kOpStw] = B_STW;
  t[kOpLdb] = B_LDB;
  t[kOpStb] = B_STB;
  t[kOpJmp] = B_JMP;
  t[kOpJz] = B_JZ;
  t[kOpJnz] = B_JNZ;
  t[kOpJlt] = B_JLT;
  t[kOpJge] = B_JGE;
  t[kOpJgt] = B_JGT;
  t[kOpJle] = B_JLE;
  t[kOpJcs] = B_JCS;
  t[kOpJcc] = B_JCC;
  t[kOpCall] = B_CALL;
  t[kOpPush] = B_PUSH;
  t[kOpPop] = B_POP;
  t[kOpCallr] = B_CALLR;
  t[kOpJmpr] = B_JMPR;
  t[kOpFldi] = B_FLDI;
  t[kOpFmov] = B_FMOV;
  t[kOpFadd] = B_FADD;
  t[kOpFsub] = B_FSUB;
  t[kOpFmul] = B_FMUL;
  t[kOpFdiv] = B_FDIV;
  t[kOpFtoi] = B_FTOI;
  t[kOpItof] = B_ITOF;
  return t;
}

constexpr std::array<uint8_t, 256> kKindOf = BuildKindTable();

inline StepResult MakeFault(int fault, uint32_t addr) {
  StepResult r;
  r.kind = StepResult::kFault;
  r.fault = fault;
  r.fault_addr = addr;
  return r;
}

}  // namespace

bool IsBlockTerminator(uint8_t opcode) {
  switch (kKindOf[opcode]) {
    case B_ILL:
    case B_BPT:
    case B_RET:
    case B_HLT:
    case B_SYS:
    case B_JMP:
    case B_JZ:
    case B_JNZ:
    case B_JLT:
    case B_JGE:
    case B_JGT:
    case B_JLE:
    case B_JCS:
    case B_JCC:
    case B_CALL:
    case B_CALLR:
    case B_JMPR:
      return true;
    default:
      return false;
  }
}

int PredecodeOne(const uint8_t* bytes, uint32_t pc, PInstr* out) {
  const uint8_t opcode = bytes[0];
  const int len = InstrLength(opcode);
  out->kind = kKindOf[opcode];
  out->rd = 0;
  out->rs = 0;
  out->len = static_cast<uint8_t>(len == 0 ? 1 : len);
  out->imm = 0;
  out->pc = pc;
  if (len == 0) {
    return 1;  // undefined byte: a 1-byte FLTILL terminator
  }
  const uint8_t* operand = bytes + 1;
  auto imm32at = [&](int i) {
    uint32_t v;
    std::memcpy(&v, &operand[i], 4);
    return v;
  };
  switch (out->kind) {
    case B_MOV:
    case B_ADD:
    case B_SUB:
    case B_MUL:
    case B_DIV:
    case B_MOD:
    case B_AND:
    case B_OR:
    case B_XOR:
    case B_SHL:
    case B_SHR:
    case B_CMP:
    case B_ADDV:
      out->rd = operand[0] >> 4;
      out->rs = operand[0] & 0x0F;
      break;
    case B_LDI:
    case B_ADDI:
    case B_CMPI:
      out->rd = operand[0] & 0x0F;
      out->imm = imm32at(1);
      break;
    case B_LDW:
    case B_STW:
    case B_LDB:
    case B_STB: {
      out->rd = operand[0] >> 4;  // value register
      out->rs = operand[0] & 0x0F;  // address register
      int16_t off;
      std::memcpy(&off, &operand[1], 2);
      out->imm = static_cast<uint32_t>(static_cast<int32_t>(off));
      break;
    }
    case B_JMP:
    case B_JZ:
    case B_JNZ:
    case B_JLT:
    case B_JGE:
    case B_JGT:
    case B_JLE:
    case B_JCS:
    case B_JCC:
    case B_CALL:
      out->imm = imm32at(0);
      break;
    case B_PUSH:
    case B_POP:
    case B_CALLR:
    case B_JMPR:
      out->rs = operand[0] & 0x0F;
      out->rd = out->rs;
      break;
    case B_FLDI:
      out->rd = operand[0] & 0x07;
      // imm becomes the fimm[] index; the builder fills it in.
      break;
    case B_FMOV:
    case B_FADD:
    case B_FSUB:
    case B_FMUL:
    case B_FDIV:
      out->rd = (operand[0] >> 4) & 0x07;
      out->rs = operand[0] & 0x07;
      break;
    case B_FTOI:
      out->rd = (operand[0] >> 4) & 0x0F;
      out->rs = operand[0] & 0x07;
      break;
    case B_ITOF:
      out->rd = (operand[0] >> 4) & 0x07;
      out->rs = operand[0] & 0x0F;
      break;
    default:
      break;  // 1-byte instructions carry no operands
  }
  return len;
}

bool BlockCache::BuildInto(Slot& s, uint32_t start, AddressSpace& as) {
  Block& b = s.blk;
  b.code.clear();
  b.fimm.clear();
  b.start = start;
  b.gen = as.CodeGen();

  uint32_t pc = start;
  const uint32_t start_page = PageAlignDown(start);
  while (b.code.size() < kMaxBlockInstrs) {
    const bool first = b.code.empty();
    // Page-bounding: only the first instruction may start outside the
    // block's page. This keeps the builder's page touches (frame
    // materialization, referenced bits) a subset of what executing the
    // block would touch anyway, so the two engines stay byte-identical in
    // their VM side effects.
    if (!first && PageAlignDown(pc) != start_page) {
      break;
    }
    uint32_t flags = as.FlagsAt(pc);
    if ((flags & MA_EXEC) == 0 || (flags & MA_SHARED) != 0) {
      // Not executable here (let the interpreter report the precise fault),
      // or a shared-memory mapping whose pages can be rewritten through a
      // different address space without bumping our code generation — never
      // cache those.
      if (first) {
        return false;
      }
      break;
    }
    alignas(8) uint8_t ibuf[kFetchWindowBytes] = {};
    uint32_t have = as.FetchWindow(pc, ibuf, kFetchWindowBytes);
    if (have == 0) {
      if (as.MemRead(pc, ibuf, 1, Access::kExec)) {
        if (first) {
          return false;
        }
        break;
      }
      have = 1;
    }
    const int len = InstrLength(ibuf[0]);
    if (len != 0 && static_cast<uint32_t>(len) > have) {
      // Straddles the fetch window (page boundary): fetch the tail exactly
      // as the interpreter would when executing this instruction.
      if (as.MemRead(pc + have, ibuf + have, static_cast<uint32_t>(len) - have,
                     Access::kExec)) {
        if (first) {
          return false;
        }
        break;
      }
    }
    PInstr ins;
    PredecodeOne(ibuf, pc, &ins);
    if (ins.kind == B_FLDI) {
      double v;
      std::memcpy(&v, &ibuf[2], 8);
      ins.imm = static_cast<uint32_t>(b.fimm.size());
      b.fimm.push_back(v);
    }
    b.code.push_back(ins);
    if (IsBlockTerminator(ibuf[0])) {
      break;
    }
    pc += static_cast<uint32_t>(len);
    if (!first && pc < start) {
      break;  // pc wrapped; terminate defensively
    }
  }
  return !b.code.empty();
}

const Block* BlockCache::Get(uint32_t pc, AddressSpace& as) {
  // Fibonacci hash of the byte address; blocks start at branch targets, so
  // low bits alone would cluster.
  Slot& s = slots_[(pc * 2654435761u) >> (32 - 9)];
  static_assert(kBlockCacheSlots == 1u << 9);
  if (s.valid && s.blk.start == pc) {
    if (s.blk.gen == as.CodeGen()) {
      ++stats_.hits;
      return &s.blk;
    }
    ++stats_.invalidations;
  } else {
    ++stats_.misses;
  }
  if (!BuildInto(s, pc, as)) {
    s.valid = false;
    return nullptr;
  }
  s.valid = true;
  ++stats_.built;
  return &s.blk;
}

// The threaded executor. Control flow contract per instruction:
//  * non-terminators advance ip and fall through to the next dispatch;
//  * faults set regs.pc to the faulting instruction (counting it as
//    executed, exactly like one CpuStep that returned kFault);
//  * sys/branches/ret set regs.pc to the successor and end the block;
//  * running off the end (page-bounded or length-capped block) leaves
//    regs.pc at the next undecoded instruction and returns kOk.
// regs.pc is only materialized at exits; mid-block it is implied by ip.
BlockRun ExecuteBlock(const Block& b, Regs& regs, FpRegs& fp, AddressSpace& as,
                      uint32_t max_instrs) {
  const PInstr* ip = b.code.data();
  const PInstr* const end = ip + b.code.size();
  const uint32_t build_gen = b.gen;
  uint32_t executed = 0;
  StepResult last;  // kOk

#define SVR4_B_RETIRE_OK(next_pc)      \
  do {                                 \
    ++executed;                        \
    regs.pc = (next_pc);               \
    goto done;                         \
  } while (0)
#define SVR4_B_FAULT(fltno, fltaddr)             \
  do {                                           \
    ++executed;                                  \
    regs.pc = ip->pc;                            \
    last = MakeFault((fltno), (fltaddr));        \
    goto done;                                   \
  } while (0)
// Fall through to the next instruction. If the block is exhausted or the
// budget is spent, exit with pc at the successor.
#define SVR4_B_NEXT()                            \
  do {                                           \
    ++executed;                                  \
    uint32_t nxt = ip->pc + ip->len;             \
    ++ip;                                        \
    if (ip == end || executed >= max_instrs) {   \
      regs.pc = nxt;                             \
      goto done;                                 \
    }                                            \
    SVR4_B_DISPATCH();                           \
  } while (0)
// A store may have rewritten code anywhere, including later instructions of
// this very block: leave at the successor so the caller re-validates.
#define SVR4_B_NEXT_AFTER_STORE()                \
  do {                                           \
    if (as.CodeGen() != build_gen) {             \
      ++executed;                                \
      regs.pc = ip->pc + ip->len;                \
      goto done;                                 \
    }                                            \
    SVR4_B_NEXT();                               \
  } while (0)

#if defined(SVR4_COMPUTED_GOTO)
  static const void* const kLabels[B_KIND_COUNT] = {
      &&L_ILL,  &&L_NOP,  &&L_BPT,  &&L_RET,  &&L_HLT,  &&L_SYS,  &&L_MOV,
      &&L_ADD,  &&L_SUB,  &&L_MUL,  &&L_DIV,  &&L_MOD,  &&L_AND,  &&L_OR,
      &&L_XOR,  &&L_SHL,  &&L_SHR,  &&L_CMP,  &&L_ADDV, &&L_LDI,  &&L_ADDI,
      &&L_CMPI, &&L_LDW,  &&L_STW,  &&L_LDB,  &&L_STB,  &&L_JMP,  &&L_JZ,
      &&L_JNZ,  &&L_JLT,  &&L_JGE,  &&L_JGT,  &&L_JLE,  &&L_JCS,  &&L_JCC,
      &&L_CALL, &&L_PUSH, &&L_POP,  &&L_CALLR, &&L_JMPR, &&L_FLDI, &&L_FMOV,
      &&L_FADD, &&L_FSUB, &&L_FMUL, &&L_FDIV, &&L_FTOI, &&L_ITOF,
  };
#define SVR4_B_DISPATCH() goto* kLabels[ip->kind]
#define SVR4_B_CASE(name) L_##name:
  SVR4_B_DISPATCH();
#else
#define SVR4_B_DISPATCH() goto dispatch
#define SVR4_B_CASE(name) case B_##name:
dispatch:
  switch (static_cast<BKind>(ip->kind)) {
#endif

  SVR4_B_CASE(NOP) { SVR4_B_NEXT(); }

  SVR4_B_CASE(SYS) {
    ++executed;
    regs.pc = ip->pc + ip->len;
    last.kind = StepResult::kSyscall;
    goto done;
  }

  SVR4_B_CASE(RET) {
    uint32_t ret;
    if (!as.TlbLoad(regs.sp(), &ret, 4)) {
      if (auto mf = as.MemRead(regs.sp(), &ret, 4, Access::kRead)) {
        SVR4_B_FAULT(mf->fault, mf->addr);
      }
    }
    regs.set_sp(regs.sp() + 4);
    SVR4_B_RETIRE_OK(ret);
  }

  SVR4_B_CASE(BPT) {
    // pc stays at the breakpoint address itself.
    SVR4_B_FAULT(FLTBPT, ip->pc);
  }

  SVR4_B_CASE(HLT) { SVR4_B_FAULT(FLTPRIV, ip->pc); }

  SVR4_B_CASE(ILL) { SVR4_B_FAULT(FLTILL, ip->pc); }

  SVR4_B_CASE(MOV) {
    uint32_t out = regs.r[ip->rs];
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(ADD) {
    uint32_t out = regs.r[ip->rd] + regs.r[ip->rs];
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(SUB) {
    uint32_t out = regs.r[ip->rd] - regs.r[ip->rs];
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(MUL) {
    uint32_t out = regs.r[ip->rd] * regs.r[ip->rs];
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(DIV) {
    uint32_t a = regs.r[ip->rd];
    uint32_t bv = regs.r[ip->rs];
    if (bv == 0) {
      SVR4_B_FAULT(FLTIZDIV, ip->pc);
    }
    if (a == 0x80000000u && bv == 0xFFFFFFFFu) {
      SVR4_B_FAULT(FLTIOVF, ip->pc);
    }
    uint32_t out =
        static_cast<uint32_t>(static_cast<int32_t>(a) / static_cast<int32_t>(bv));
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(MOD) {
    uint32_t a = regs.r[ip->rd];
    uint32_t bv = regs.r[ip->rs];
    if (bv == 0) {
      SVR4_B_FAULT(FLTIZDIV, ip->pc);
    }
    if (a == 0x80000000u && bv == 0xFFFFFFFFu) {
      SVR4_B_FAULT(FLTIOVF, ip->pc);
    }
    uint32_t out =
        static_cast<uint32_t>(static_cast<int32_t>(a) % static_cast<int32_t>(bv));
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(AND) {
    uint32_t out = regs.r[ip->rd] & regs.r[ip->rs];
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(OR) {
    uint32_t out = regs.r[ip->rd] | regs.r[ip->rs];
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(XOR) {
    uint32_t out = regs.r[ip->rd] ^ regs.r[ip->rs];
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(SHL) {
    uint32_t b2 = regs.r[ip->rs];
    uint32_t out = (b2 >= 32) ? 0 : regs.r[ip->rd] << b2;
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(SHR) {
    uint32_t b2 = regs.r[ip->rs];
    uint32_t out = (b2 >= 32) ? 0 : regs.r[ip->rd] >> b2;
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(CMP) {
    SetCmpFlags(regs, regs.r[ip->rd], regs.r[ip->rs]);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(ADDV) {
    int64_t wide = static_cast<int64_t>(static_cast<int32_t>(regs.r[ip->rd])) +
                   static_cast<int64_t>(static_cast<int32_t>(regs.r[ip->rs]));
    if (wide > std::numeric_limits<int32_t>::max() ||
        wide < std::numeric_limits<int32_t>::min()) {
      SVR4_B_FAULT(FLTIOVF, ip->pc);
    }
    uint32_t out = static_cast<uint32_t>(wide);
    regs.r[ip->rd] = out;
    SetZn(regs, out);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(LDI) {
    regs.r[ip->rd] = ip->imm;
    SetZn(regs, ip->imm);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(ADDI) {
    regs.r[ip->rd] += ip->imm;
    SetZn(regs, regs.r[ip->rd]);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(CMPI) {
    SetCmpFlags(regs, regs.r[ip->rd], ip->imm);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(LDW) {
    uint32_t addr = regs.r[ip->rs] + ip->imm;
    uint32_t v = 0;
    if (!as.TlbLoad(addr, &v, 4)) {
      if (auto mf = as.MemRead(addr, &v, 4, Access::kRead)) {
        SVR4_B_FAULT(mf->fault, mf->addr);
      }
    }
    regs.r[ip->rd] = v;
    SetZn(regs, v);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(LDB) {
    uint32_t addr = regs.r[ip->rs] + ip->imm;
    uint32_t v = 0;
    if (!as.TlbLoad(addr, &v, 1)) {
      if (auto mf = as.MemRead(addr, &v, 1, Access::kRead)) {
        SVR4_B_FAULT(mf->fault, mf->addr);
      }
    }
    regs.r[ip->rd] = v;
    SetZn(regs, v);
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(STW) {
    uint32_t addr = regs.r[ip->rs] + ip->imm;
    uint32_t v = regs.r[ip->rd];
    if (!as.TlbStore(addr, &v, 4)) {
      if (auto mf = as.MemWrite(addr, &v, 4)) {
        SVR4_B_FAULT(mf->fault, mf->addr);
      }
    }
    SVR4_B_NEXT_AFTER_STORE();
  }

  SVR4_B_CASE(STB) {
    uint32_t addr = regs.r[ip->rs] + ip->imm;
    uint32_t v = regs.r[ip->rd];
    if (!as.TlbStore(addr, &v, 1)) {
      if (auto mf = as.MemWrite(addr, &v, 1)) {
        SVR4_B_FAULT(mf->fault, mf->addr);
      }
    }
    SVR4_B_NEXT_AFTER_STORE();
  }

  SVR4_B_CASE(JMP) { SVR4_B_RETIRE_OK(ip->imm); }

  SVR4_B_CASE(JZ) {
    SVR4_B_RETIRE_OK((regs.psr & kPsrZ) ? ip->imm : ip->pc + ip->len);
  }

  SVR4_B_CASE(JNZ) {
    SVR4_B_RETIRE_OK(!(regs.psr & kPsrZ) ? ip->imm : ip->pc + ip->len);
  }

  SVR4_B_CASE(JLT) {
    SVR4_B_RETIRE_OK(SignedLt(regs) ? ip->imm : ip->pc + ip->len);
  }

  SVR4_B_CASE(JGE) {
    SVR4_B_RETIRE_OK(!SignedLt(regs) ? ip->imm : ip->pc + ip->len);
  }

  SVR4_B_CASE(JGT) {
    SVR4_B_RETIRE_OK((!SignedLt(regs) && !(regs.psr & kPsrZ)) ? ip->imm
                                                              : ip->pc + ip->len);
  }

  SVR4_B_CASE(JLE) {
    SVR4_B_RETIRE_OK((SignedLt(regs) || (regs.psr & kPsrZ)) ? ip->imm
                                                            : ip->pc + ip->len);
  }

  SVR4_B_CASE(JCS) {
    SVR4_B_RETIRE_OK((regs.psr & kPsrC) ? ip->imm : ip->pc + ip->len);
  }

  SVR4_B_CASE(JCC) {
    SVR4_B_RETIRE_OK(!(regs.psr & kPsrC) ? ip->imm : ip->pc + ip->len);
  }

  SVR4_B_CASE(CALL) {
    uint32_t ret = ip->pc + ip->len;
    uint32_t nsp = regs.sp() - 4;
    if (!as.TlbStore(nsp, &ret, 4)) {
      if (auto mf = as.MemWrite(nsp, &ret, 4)) {
        // A faulted push is an unrecoverable stack fault unless it is a
        // watchpoint firing (identical to the interpreter; watchpoints are
        // never active here but the contract is kept verbatim).
        if (mf->fault == FLTWATCH) {
          SVR4_B_FAULT(mf->fault, mf->addr);
        }
        SVR4_B_FAULT(FLTSTACK, mf->addr);
      }
    }
    regs.set_sp(nsp);
    SVR4_B_RETIRE_OK(ip->imm);
  }

  SVR4_B_CASE(PUSH) {
    uint32_t v = regs.r[ip->rs];
    uint32_t nsp = regs.sp() - 4;
    if (!as.TlbStore(nsp, &v, 4)) {
      if (auto mf = as.MemWrite(nsp, &v, 4)) {
        if (mf->fault == FLTWATCH) {
          SVR4_B_FAULT(mf->fault, mf->addr);
        }
        SVR4_B_FAULT(FLTSTACK, mf->addr);
      }
    }
    regs.set_sp(nsp);
    SVR4_B_NEXT_AFTER_STORE();
  }

  SVR4_B_CASE(POP) {
    uint32_t v;
    if (!as.TlbLoad(regs.sp(), &v, 4)) {
      if (auto mf = as.MemRead(regs.sp(), &v, 4, Access::kRead)) {
        SVR4_B_FAULT(mf->fault, mf->addr);
      }
    }
    regs.set_sp(regs.sp() + 4);
    regs.r[ip->rd] = v;
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(CALLR) {
    uint32_t target = regs.r[ip->rs];
    uint32_t ret = ip->pc + ip->len;
    uint32_t nsp = regs.sp() - 4;
    if (!as.TlbStore(nsp, &ret, 4)) {
      if (auto mf = as.MemWrite(nsp, &ret, 4)) {
        if (mf->fault == FLTWATCH) {
          SVR4_B_FAULT(mf->fault, mf->addr);
        }
        SVR4_B_FAULT(FLTSTACK, mf->addr);
      }
    }
    regs.set_sp(nsp);
    SVR4_B_RETIRE_OK(target);
  }

  SVR4_B_CASE(JMPR) { SVR4_B_RETIRE_OK(regs.r[ip->rs]); }

  SVR4_B_CASE(FLDI) {
    fp.f[ip->rd] = b.fimm[ip->imm];
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(FMOV) {
    fp.f[ip->rd] = fp.f[ip->rs];
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(FADD) {
    fp.f[ip->rd] = fp.f[ip->rd] + fp.f[ip->rs];
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(FSUB) {
    fp.f[ip->rd] = fp.f[ip->rd] - fp.f[ip->rs];
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(FMUL) {
    fp.f[ip->rd] = fp.f[ip->rd] * fp.f[ip->rs];
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(FDIV) {
    double bv = fp.f[ip->rs];
    if (bv == 0.0) {
      fp.fsr |= 1;  // sticky divide-by-zero
      SVR4_B_FAULT(FLTFPE, ip->pc);
    }
    fp.f[ip->rd] = fp.f[ip->rd] / bv;
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(FTOI) {
    double v = fp.f[ip->rs];
    if (v > 2147483647.0 || v < -2147483648.0) {
      fp.fsr |= 2;  // sticky invalid-conversion
      SVR4_B_FAULT(FLTFPE, ip->pc);
    }
    regs.r[ip->rd] = static_cast<uint32_t>(static_cast<int32_t>(v));
    SVR4_B_NEXT();
  }

  SVR4_B_CASE(ITOF) {
    fp.f[ip->rd] = static_cast<double>(static_cast<int32_t>(regs.r[ip->rs]));
    SVR4_B_NEXT();
  }

#if !defined(SVR4_COMPUTED_GOTO)
  default:
    SVR4_B_FAULT(FLTILL, ip->pc);
  }
#endif

done:
#undef SVR4_B_DISPATCH
#undef SVR4_B_CASE
#undef SVR4_B_RETIRE_OK
#undef SVR4_B_FAULT
#undef SVR4_B_NEXT
#undef SVR4_B_NEXT_AFTER_STORE
  return BlockRun{executed, last};
}

}  // namespace svr4
