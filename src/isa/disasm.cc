#include "svr4proc/isa/disasm.h"

#include <cstdio>
#include <cstring>

#include "svr4proc/isa/isa.h"

namespace svr4 {
namespace {

std::string RegName(int r) {
  if (r == kRegSp) {
    return "sp";
  }
  if (r == kRegFp) {
    return "fp";
  }
  return "r" + std::to_string(r);
}

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

}  // namespace

DisasmResult DisassembleOne(std::span<const uint8_t> bytes, uint32_t /*addr*/) {
  DisasmResult out;
  if (bytes.empty()) {
    out.mnemonic = "<empty>";
    return out;
  }
  uint8_t opcode = bytes[0];
  int len = InstrLength(opcode);
  if (len == 0 || static_cast<size_t>(len) > bytes.size()) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "<illegal 0x%02x>", opcode);
    out.mnemonic = buf;
    out.length = 1;
    return out;
  }
  out.length = len;
  std::string name(OpcodeName(opcode));
  const uint8_t* op = bytes.data() + 1;
  auto u32 = [&](int i) {
    uint32_t v;
    std::memcpy(&v, op + i, 4);
    return v;
  };
  auto s16 = [&](int i) {
    int16_t v;
    std::memcpy(&v, op + i, 2);
    return static_cast<int>(v);
  };

  switch (opcode) {
    case kOpNop:
    case kOpBpt:
    case kOpRet:
    case kOpHlt:
    case kOpSys:
      out.mnemonic = name;
      break;
    case kOpMov:
    case kOpAdd:
    case kOpSub:
    case kOpMul:
    case kOpDiv:
    case kOpMod:
    case kOpAnd:
    case kOpOr:
    case kOpXor:
    case kOpShl:
    case kOpShr:
    case kOpCmp:
    case kOpAddv:
      out.mnemonic = name + " " + RegName(op[0] >> 4) + ", " + RegName(op[0] & 0x0F);
      break;
    case kOpLdi:
    case kOpAddi:
    case kOpCmpi:
      out.mnemonic = name + " " + RegName(op[0] & 0x0F) + ", " + Hex(u32(1));
      break;
    case kOpLdw:
    case kOpStw:
    case kOpLdb:
    case kOpStb: {
      int off = s16(1);
      std::string memop = "[" + RegName(op[0] & 0x0F);
      if (off > 0) {
        memop += "+" + std::to_string(off);
      } else if (off < 0) {
        memop += std::to_string(off);
      }
      memop += "]";
      out.mnemonic = name + " " + RegName(op[0] >> 4) + ", " + memop;
      break;
    }
    case kOpJmp:
    case kOpJz:
    case kOpJnz:
    case kOpJlt:
    case kOpJge:
    case kOpJgt:
    case kOpJle:
    case kOpJcs:
    case kOpJcc:
    case kOpCall:
      out.mnemonic = name + " " + Hex(u32(0));
      break;
    case kOpPush:
    case kOpPop:
    case kOpCallr:
    case kOpJmpr:
      out.mnemonic = name + " " + RegName(op[0] & 0x0F);
      break;
    case kOpFldi: {
      double v;
      std::memcpy(&v, op + 1, 8);
      char buf[48];
      std::snprintf(buf, sizeof(buf), "fldi f%d, %g", op[0] & 0x07, v);
      out.mnemonic = buf;
      break;
    }
    case kOpFmov:
    case kOpFadd:
    case kOpFsub:
    case kOpFmul:
    case kOpFdiv:
      out.mnemonic = name + " f" + std::to_string((op[0] >> 4) & 0x07) + ", f" +
                     std::to_string(op[0] & 0x07);
      break;
    case kOpFtoi:
      out.mnemonic = name + " " + RegName((op[0] >> 4) & 0x0F) + ", f" +
                     std::to_string(op[0] & 0x07);
      break;
    case kOpItof:
      out.mnemonic = name + " f" + std::to_string((op[0] >> 4) & 0x07) + ", " +
                     RegName(op[0] & 0x0F);
      break;
    default:
      out.mnemonic = "<illegal>";
      break;
  }
  return out;
}

}  // namespace svr4
