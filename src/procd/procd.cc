// The procd server: per-peer descriptor tables as native controller
// processes, frame dispatch onto the kernel's syscall surface, parked
// blocking operations, subscription event push, and the PEER_DISCONNECT
// chaos site. See procd.h for the protocol and lifetime rules.
#include "svr4proc/procd/procd.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "svr4proc/kernel/faults.h"
#include "svr4proc/procfs/ctl.h"
#include "svr4proc/procfs/procfs2.h"
#include "svr4proc/procfs/types.h"

namespace svr4 {

const char* PdOpName(PdOp op) {
  switch (op) {
    case PdOp::kHello: return "hello";
    case PdOp::kOpen: return "open";
    case PdOp::kClose: return "close";
    case PdOp::kRead: return "read";
    case PdOp::kPread: return "pread";
    case PdOp::kWrite: return "write";
    case PdOp::kLseek: return "lseek";
    case PdOp::kIoctl: return "ioctl";
    case PdOp::kPsall: return "psall";
    case PdOp::kReadDirChunk: return "readdir";
    case PdOp::kStat: return "stat";
    case PdOp::kPoll: return "poll";
    case PdOp::kSubscribe: return "subscribe";
    case PdOp::kUnsubscribe: return "unsubscribe";
    case PdOp::kSpawn: return "spawn";
    case PdOp::kStats: return "stats";
    case PdOp::kEvent: return "event";
  }
  return "unknown";
}

void PdWriteFrame(PdChannel& ch, PdOp op, uint16_t flags, uint32_t tag,
                  const std::vector<uint8_t>& body) {
  PdFrameHdr h;
  h.body_len = static_cast<uint32_t>(body.size());
  h.op = static_cast<uint16_t>(op);
  h.flags = flags;
  h.tag = tag;
  ch.Append(&h, sizeof(h));
  if (!body.empty()) {
    ch.Append(body.data(), body.size());
  }
}

void PdWriteError(PdChannel& ch, PdOp op, uint32_t tag, Errno e) {
  PdWriter w;
  w.Put<int32_t>(static_cast<int32_t>(e));
  PdWriteFrame(ch, op, kPdErrFlag, tag, w.bytes());
}

namespace {

// Masks poll bits exactly as Kernel::PollFds does: error conditions are
// always reportable, everything else must have been requested.
int MaskRevents(int bits, int events) {
  return bits & (events | POLLERR | POLLHUP | POLLNVAL);
}

// Span latency axis: host wall clock, because virtual ticks stand still
// while only native peers act (see EnableSpans in the header).
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Same line grammar as the metrics registry's renderer (ktrace.cc), so one
// parser handles /proc2/kernel/metrics and /proc2/kernel/procd alike.
void RenderHist(std::string& out, const char* name, const std::string& tag,
                const KtHist& h) {
  char line[192];
  std::snprintf(line, sizeof(line), "hist %s%s count=%llu sum=%llu max=%llu mean=%.1f",
                name, tag.c_str(), static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.sum),
                static_cast<unsigned long long>(h.max), h.Mean());
  out += line;
  for (size_t i = 0; i < h.bucket.size(); ++i) {
    if (h.bucket[i] != 0) {
      std::snprintf(line, sizeof(line), " b%zu:%llu", i,
                    static_cast<unsigned long long>(h.bucket[i]));
      out += line;
    }
  }
  out += '\n';
}

// Unknown wire codes share slot 0 rather than growing the array.
int OpSlot(uint16_t op) {
  return op > 0 && op < ProcdServer::kPdOpSlots ? op : 0;
}

}  // namespace

ProcdServer::ProcdServer(Kernel& k) : kernel_(&k) {
  kernel_->SetProcdStatsProvider([this] { return StatsText(); });
}

ProcdServer::~ProcdServer() {
  kernel_->SetProcdStatsProvider({});
  for (auto& up : peers_) {
    if (!up->dead) {
      Detach(*up, /*chaos=*/false);
    }
  }
}

std::shared_ptr<ProcdConn> ProcdServer::Connect(const Creds& creds,
                                                const std::string& name) {
  Proc* p = kernel_->CreateNativeProc(creds, name);
  if (p == nullptr) {
    return nullptr;
  }
  auto conn = std::make_shared<ProcdConn>();
  conn->id = next_conn_id_++;
  conn->server = this;
  auto peer = std::make_unique<Peer>();
  peer->conn = conn;
  peer->proc = p;
  peers_.push_back(std::move(peer));
  ++live_peers_;
  return conn;
}

void ProcdServer::Detach(Peer& peer, bool chaos) {
  if (peer.dead) {
    return;
  }
  peer.dead = true;
  peer.wait = Peer::Wait::kNone;
  peer.subs.clear();
  peer.conn->server_closed = true;
  // The one statement that makes "peer death == close of every descriptor
  // the peer held": stale ledgers drain, O_EXCL releases, run-on-last-close
  // fires, all through the ordinary vnode Close hooks.
  kernel_->DestroyNativeProc(peer.proc);
  --live_peers_;
  ++stats_.disconnects;
  if (chaos) {
    ++stats_.chaos_disconnects;
  }
  // An in-flight frame dies with the peer: no reply, no span sample.
  peer.frame_start_ns = 0;
  peer.park_start_tick = 0;
}

// --- RPC spans ---------------------------------------------------------------

void ProcdServer::SpanDequeue(Peer& peer, const PdFrame& f) {
  // Dequeue-time counters are unconditional and precede dispatch, so the
  // text a kStats reply carries already counts the kStats frame itself.
  ++stats_.frames_in;
  ++peer.frames;
  OpSpan& s = spans_[OpSlot(f.hdr.op)];
  ++s.count;
  if (spans_on_) {
    s.bytes.Record(f.hdr.body_len);
    peer.frame_start_ns = NowNs();
  }
}

void ProcdServer::SpanPark(Peer& peer, PdOp op) {
  ++spans_[OpSlot(static_cast<uint16_t>(op))].parks;
  ++peer.parks;
  if (peer.park_start_tick == 0) {
    // +1 bias so tick 0 still reads as "stamped" (cleared on reply).
    peer.park_start_tick = kernel_->Ticks() + 1;
  }
}

void ProcdServer::SpanReply(Peer& peer, PdOp op) {
  if (spans_on_) {
    OpSpan& s = spans_[OpSlot(static_cast<uint16_t>(op))];
    if (peer.frame_start_ns != 0) {
      s.lat_ns.Record(NowNs() - peer.frame_start_ns);
    }
    if (peer.park_start_tick != 0) {
      s.park_ticks.Record(kernel_->Ticks() - (peer.park_start_tick - 1));
    }
  }
  peer.frame_start_ns = 0;
  peer.park_start_tick = 0;
}

std::string ProcdServer::StatsText() const {
  std::string out;
  char line[256];
  uint64_t parked_now = 0;
  for (const auto& up : peers_) {
    if (!up->dead && up->wait != Peer::Wait::kNone) {
      ++parked_now;
    }
  }
  std::snprintf(line, sizeof(line),
                "procd peers=%zu pump_rounds=%llu peer_scans=%llu parked_now=%llu spans=%s\n",
                live_peers_, static_cast<unsigned long long>(stats_.pump_rounds),
                static_cast<unsigned long long>(stats_.peer_scans),
                static_cast<unsigned long long>(parked_now),
                spans_on_ ? "on" : "off");
  out += line;
  std::snprintf(line, sizeof(line),
                "counter procd_frames_in %llu\ncounter procd_ctl_ops %llu\n"
                "counter procd_events_pushed %llu\ncounter procd_disconnects %llu\n"
                "counter procd_chaos_disconnects %llu\n",
                static_cast<unsigned long long>(stats_.frames_in),
                static_cast<unsigned long long>(stats_.ctl_ops),
                static_cast<unsigned long long>(stats_.events_pushed),
                static_cast<unsigned long long>(stats_.disconnects),
                static_cast<unsigned long long>(stats_.chaos_disconnects));
  out += line;
  for (int i = 0; i < kPdOpSlots; ++i) {
    const OpSpan& s = spans_[i];
    if (s.count == 0 && s.parks == 0) {
      continue;
    }
    const char* name = PdOpName(static_cast<PdOp>(i));
    std::snprintf(line, sizeof(line), "counter procd_op[%s] count=%llu parks=%llu\n",
                  name, static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.parks));
    out += line;
    if (s.lat_ns.count != 0) {
      RenderHist(out, "procd_lat_ns[", std::string(name) + "]", s.lat_ns);
    }
    if (s.bytes.count != 0) {
      RenderHist(out, "procd_bytes[", std::string(name) + "]", s.bytes);
    }
    if (s.park_ticks.count != 0) {
      RenderHist(out, "procd_park_ticks[", std::string(name) + "]", s.park_ticks);
    }
  }
  if (parked_peers_.count != 0) {
    RenderHist(out, "procd_parked_peers", "", parked_peers_);
  }
  for (const auto& up : peers_) {
    if (up->dead) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "counter procd_peer[%d] frames=%llu ctl_ops=%llu parks=%llu\n",
                  up->proc->pid, static_cast<unsigned long long>(up->frames),
                  static_cast<unsigned long long>(up->ctl_ops),
                  static_cast<unsigned long long>(up->parks));
    out += line;
  }
  return out;
}

// --- Frame handlers ----------------------------------------------------------

void ProcdServer::HandleOpen(Peer& peer, uint32_t tag, PdReader& r) {
  int32_t oflags = 0;
  std::string path;
  if (!r.Get(&oflags) || !r.GetString(&path)) {
    PdWriteError(peer.conn->s2c, PdOp::kOpen, tag, Errno::kEINVAL);
    return;
  }
  auto fd = kernel_->Open(peer.proc, path, oflags);
  if (!fd.ok()) {
    PdWriteError(peer.conn->s2c, PdOp::kOpen, tag, fd.error());
    return;
  }
  PdWriter w;
  w.Put<int32_t>(*fd);
  PdWriteFrame(peer.conn->s2c, PdOp::kOpen, 0, tag, w.bytes());
}

void ProcdServer::HandleRead(Peer& peer, uint32_t tag, PdReader& r, bool pread) {
  PdOp op = pread ? PdOp::kPread : PdOp::kRead;
  int32_t fd = 0;
  uint64_t off = 0;
  uint32_t n = 0;
  if (!r.Get(&fd) || (pread && !r.Get(&off)) || !r.Get(&n) || n > (1u << 26)) {
    PdWriteError(peer.conn->s2c, op, tag, Errno::kEINVAL);
    return;
  }
  std::vector<uint8_t> buf(n);
  int64_t saved = -1;
  if (pread) {
    auto cur = kernel_->Lseek(peer.proc, fd, 0, SEEK_CUR_);
    if (!cur.ok()) {
      PdWriteError(peer.conn->s2c, op, tag, cur.error());
      return;
    }
    saved = *cur;
    auto seek = kernel_->Lseek(peer.proc, fd, static_cast<int64_t>(off), SEEK_SET_);
    if (!seek.ok()) {
      PdWriteError(peer.conn->s2c, op, tag, seek.error());
      return;
    }
  }
  auto got = kernel_->Read(peer.proc, fd, buf.data(), n);
  if (pread && saved >= 0) {
    (void)kernel_->Lseek(peer.proc, fd, saved, SEEK_SET_);
  }
  if (!got.ok()) {
    PdWriteError(peer.conn->s2c, op, tag, got.error());
    return;
  }
  buf.resize(static_cast<size_t>(*got));
  PdWriteFrame(peer.conn->s2c, op, 0, tag, buf);
}

bool ProcdServer::RunCtlWrite(Peer& peer, uint32_t tag, int fd,
                              std::vector<uint8_t> stream, int64_t consumed) {
  // Walk the ctl messages, batching non-blocking prefixes into plain
  // kernel writes and parking at a blocking code. `consumed` carries bytes
  // accepted by earlier segments of the same original write.
  size_t pos = 0;
  size_t flushed = 0;  // start of the unflushed prefix
  auto flush = [&](size_t end) -> Result<void> {
    if (end == flushed) {
      return Result<void>::Ok();
    }
    auto wr = kernel_->Write(peer.proc, fd, stream.data() + flushed, end - flushed);
    if (!wr.ok()) {
      return wr.error();
    }
    flushed = end;
    return Result<void>::Ok();
  };
  while (pos + 4 <= stream.size()) {
    int32_t code = 0;
    std::memcpy(&code, stream.data() + pos, 4);
    int opsize = PrCtlOperandSize(code);
    if (opsize < 0 || pos + 4 + static_cast<size_t>(opsize) > stream.size()) {
      // Unknown code or truncated operand: hand the tail to the kernel for
      // the canonical errno (executed prefix keeps its effect, as locally).
      break;
    }
    const CtlOp* row = FindCtlOpByPc(code);
    if (row != nullptr && row->blocking) {
      auto fr = flush(pos);
      if (!fr.ok()) {
        PdWriteError(peer.conn->s2c, PdOp::kWrite, tag, fr.error());
        return false;
      }
      // Validate the descriptor against the live target, mirroring the
      // local dispatch order (ident: ENOENT, generation: EACCES).
      auto of = kernel_->FdGet(peer.proc, fd);
      if (!of.ok()) {
        PdWriteError(peer.conn->s2c, PdOp::kWrite, tag, of.error());
        return false;
      }
      if (!(*of)->writable) {
        PdWriteError(peer.conn->s2c, PdOp::kWrite, tag, Errno::kEBADF);
        return false;
      }
      Proc* target = kernel_->FindProc((*of)->vp->PrCountedTarget());
      if (target == nullptr || (*of)->pr_ident != target->ident) {
        PdWriteError(peer.conn->s2c, PdOp::kWrite, tag, Errno::kENOENT);
        return false;
      }
      if ((*of)->pr_gen != target->trace.gen) {
        PdWriteError(peer.conn->s2c, PdOp::kWrite, tag, Errno::kEACCES);
        return false;
      }
      if (code == PCSTOP) {
        auto st = kernel_->PrStop(target);
        if (!st.ok()) {
          PdWriteError(peer.conn->s2c, PdOp::kWrite, tag, st.error());
          return false;
        }
      }
      peer.wait = Peer::Wait::kStopWait;
      peer.wait_op = PdOp::kWrite;
      peer.wait_tag = tag;
      peer.wait_pid = target->pid;
      peer.wait_out_cap = 0;
      peer.wait_fd = fd;
      peer.wait_consumed = consumed + static_cast<int64_t>(pos) + 4;
      peer.wait_cont.assign(stream.begin() + static_cast<long>(pos) + 4, stream.end());
      ++stats_.ctl_ops;
      ++peer.ctl_ops;
      SpanPark(peer, PdOp::kWrite);
      return true;
    }
    pos += 4 + static_cast<size_t>(opsize);
    ++stats_.ctl_ops;
    ++peer.ctl_ops;
  }
  auto fr = flush(stream.size());
  if (!fr.ok()) {
    PdWriteError(peer.conn->s2c, PdOp::kWrite, tag, fr.error());
    return false;
  }
  PdWriter w;
  w.Put<int64_t>(consumed + static_cast<int64_t>(stream.size()));
  PdWriteFrame(peer.conn->s2c, PdOp::kWrite, 0, tag, w.bytes());
  return false;
}

void ProcdServer::HandleWrite(Peer& peer, uint32_t tag, PdReader& r) {
  int32_t fd = 0;
  if (!r.Get(&fd)) {
    PdWriteError(peer.conn->s2c, PdOp::kWrite, tag, Errno::kEINVAL);
    return;
  }
  size_t n = r.remaining();
  const uint8_t* data = r.Raw(n);
  auto of = kernel_->FdGet(peer.proc, fd);
  if (of.ok() && (*of)->vp->PrCtlStream()) {
    // A batched control write: blocking messages park instead of pumping
    // the simulation inline (which would starve every other peer).
    (void)RunCtlWrite(peer, tag, fd, std::vector<uint8_t>(data, data + n), 0);
    return;
  }
  auto wr = kernel_->Write(peer.proc, fd, data, n);
  if (!wr.ok()) {
    PdWriteError(peer.conn->s2c, PdOp::kWrite, tag, wr.error());
    return;
  }
  PdWriter w;
  w.Put<int64_t>(*wr);
  PdWriteFrame(peer.conn->s2c, PdOp::kWrite, 0, tag, w.bytes());
}

void ProcdServer::HandleIoctl(Peer& peer, uint32_t tag, PdReader& r) {
  int32_t fd = 0;
  uint32_t op = 0, in_len = 0, out_cap = 0;
  if (!r.Get(&fd) || !r.Get(&op) || !r.Get(&in_len) || !r.Get(&out_cap) ||
      in_len > (1u << 22) || out_cap > (1u << 22)) {
    PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, Errno::kEINVAL);
    return;
  }
  const uint8_t* in = r.Raw(in_len);
  if (in == nullptr && in_len != 0) {
    PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, Errno::kEINVAL);
    return;
  }
  if (op == PIOCPSALL || op == PIOCPAGEDATA) {
    // Non-flat operand layouts: PSALL has its own RPC; page data has no
    // remote encoding.
    PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, Errno::kEINVAL);
    return;
  }
  ++stats_.ctl_ops;
  ++peer.ctl_ops;
  const CtlOp* row = FindCtlOpByPioc(op);
  if (row != nullptr && row->blocking) {
    // PIOCSTOP / PIOCWSTOP: replicate the local dispatch checks, execute
    // the directive half, park the wait half.
    auto of = kernel_->FdGet(peer.proc, fd);
    if (!of.ok()) {
      PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, of.error());
      return;
    }
    Proc* target = kernel_->FindProc((*of)->vp->PrCountedTarget());
    if (target == nullptr || (*of)->pr_ident != target->ident) {
      PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, Errno::kENOENT);
      return;
    }
    if ((*of)->pr_gen != target->trace.gen) {
      PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, Errno::kEACCES);
      return;
    }
    if (!row->read_only && !(*of)->writable) {
      PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, Errno::kEBADF);
      return;
    }
    if (target->state != Proc::State::kActive) {
      PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, Errno::kENOENT);
      return;
    }
    if (op == PIOCSTOP) {
      auto st = kernel_->PrStop(target);
      if (!st.ok()) {
        PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, st.error());
        return;
      }
    }
    peer.wait = Peer::Wait::kStopWait;
    peer.wait_op = PdOp::kIoctl;
    peer.wait_tag = tag;
    peer.wait_pid = target->pid;
    peer.wait_out_cap = out_cap;
    peer.wait_fd = fd;
    peer.wait_cont.clear();
    peer.wait_consumed = 0;
    SpanPark(peer, PdOp::kIoctl);
    return;
  }
  // Generic dispatch: every remaining flat operand is a trivially copyable
  // struct, so a sized scratch buffer round-trips it.
  size_t cap = std::max(in_len, out_cap);
  std::vector<uint64_t> scratch((cap + 7) / 8);
  if (in_len != 0) {
    std::memcpy(scratch.data(), in, in_len);
  }
  void* arg = cap != 0 ? scratch.data() : nullptr;
  auto rv = kernel_->Ioctl(peer.proc, fd, op, arg);
  if (!rv.ok()) {
    PdWriteError(peer.conn->s2c, PdOp::kIoctl, tag, rv.error());
    return;
  }
  PdWriter w;
  w.Put<int32_t>(*rv);
  if (out_cap != 0) {
    w.PutBytes(scratch.data(), out_cap);
  }
  PdWriteFrame(peer.conn->s2c, PdOp::kIoctl, 0, tag, w.bytes());
}

void ProcdServer::HandlePsall(Peer& peer, uint32_t tag, PdReader& r) {
  int32_t fd = 0, start = 0;
  uint32_t limit = 0;
  if (!r.Get(&fd) || !r.Get(&start) || !r.Get(&limit) || limit > (1u << 20)) {
    PdWriteError(peer.conn->s2c, PdOp::kPsall, tag, Errno::kEINVAL);
    return;
  }
  PrPsAll all;
  all.pr_start_pid = start;
  all.pr_limit = limit;
  auto rv = kernel_->Ioctl(peer.proc, fd, PIOCPSALL, &all);
  if (!rv.ok()) {
    PdWriteError(peer.conn->s2c, PdOp::kPsall, tag, rv.error());
    return;
  }
  ++stats_.ctl_ops;
  ++peer.ctl_ops;
  PdWriter w;
  w.Put<int32_t>(all.pr_next_pid);
  w.Put<uint32_t>(static_cast<uint32_t>(all.pr_procs.size()));
  if (!all.pr_procs.empty()) {
    w.PutBytes(all.pr_procs.data(), all.pr_procs.size() * sizeof(PrPsinfo));
  }
  PdWriteFrame(peer.conn->s2c, PdOp::kPsall, 0, tag, w.bytes());
}

int ProcdServer::EvalPoll(Peer& peer, std::vector<PollFd>& pfds) {
  int ready = 0;
  for (auto& pf : pfds) {
    pf.revents = 0;
    auto of = kernel_->FdGet(peer.proc, pf.fd);
    if (!of.ok()) {
      pf.revents = POLLNVAL;
      ++ready;
      continue;
    }
    pf.revents = MaskRevents((*of)->vp->Poll(**of), pf.events);
    if (pf.revents != 0) {
      ++ready;
    }
  }
  return ready;
}

void ProcdServer::HandlePoll(Peer& peer, uint32_t tag, PdReader& r) {
  int64_t timeout = 0;
  uint32_t n = 0;
  if (!r.Get(&timeout) || !r.Get(&n) || n > kernel_->poll_max_fds()) {
    PdWriteError(peer.conn->s2c, PdOp::kPoll, tag, Errno::kEINVAL);
    return;
  }
  std::vector<PollFd> pfds(n);
  for (auto& pf : pfds) {
    int32_t fd = 0, events = 0;
    if (!r.Get(&fd) || !r.Get(&events)) {
      PdWriteError(peer.conn->s2c, PdOp::kPoll, tag, Errno::kEINVAL);
      return;
    }
    pf.fd = fd;
    pf.events = events;
  }
  int ready = EvalPoll(peer, pfds);
  if (ready > 0 || timeout == 0) {
    PdWriter w;
    w.Put<int32_t>(ready);
    w.Put<uint32_t>(n);
    for (const auto& pf : pfds) {
      w.Put<int32_t>(pf.revents);
    }
    PdWriteFrame(peer.conn->s2c, PdOp::kPoll, 0, tag, w.bytes());
    return;
  }
  peer.wait = Peer::Wait::kPoll;
  peer.wait_op = PdOp::kPoll;
  peer.wait_tag = tag;
  peer.wait_pfds = std::move(pfds);
  peer.wait_deadline =
      timeout < 0 ? 0 : kernel_->Ticks() + static_cast<uint64_t>(timeout);
  SpanPark(peer, PdOp::kPoll);
}

void ProcdServer::HandleSpawn(Peer& peer, uint32_t tag, PdReader& r) {
  uint32_t ruid = 0, rgid = 0, argc = 0;
  std::string path;
  if (!r.Get(&ruid) || !r.Get(&rgid) || !r.GetString(&path) || !r.Get(&argc) ||
      argc > 64) {
    PdWriteError(peer.conn->s2c, PdOp::kSpawn, tag, Errno::kEINVAL);
    return;
  }
  std::vector<std::string> argv(argc);
  for (auto& a : argv) {
    if (!r.GetString(&a)) {
      PdWriteError(peer.conn->s2c, PdOp::kSpawn, tag, Errno::kEINVAL);
      return;
    }
  }
  Creds creds;
  creds.ruid = creds.euid = ruid;
  creds.rgid = creds.egid = rgid;
  auto pid = kernel_->Spawn(path, argv, creds);
  if (!pid.ok()) {
    PdWriteError(peer.conn->s2c, PdOp::kSpawn, tag, pid.error());
    return;
  }
  PdWriter w;
  w.Put<int32_t>(*pid);
  PdWriteFrame(peer.conn->s2c, PdOp::kSpawn, 0, tag, w.bytes());
}

bool ProcdServer::HandleFrame(Peer& peer, const PdFrame& f) {
  SpanDequeue(peer, f);
  PdReader r(f.body);
  uint32_t tag = f.hdr.tag;
  switch (static_cast<PdOp>(f.hdr.op)) {
    case PdOp::kHello: {
      PdWriter w;
      w.Put<int32_t>(peer.proc->pid);
      PdWriteFrame(peer.conn->s2c, PdOp::kHello, 0, tag, w.bytes());
      break;
    }
    case PdOp::kOpen:
      HandleOpen(peer, tag, r);
      break;
    case PdOp::kClose: {
      int32_t fd = 0;
      if (!r.Get(&fd)) {
        PdWriteError(peer.conn->s2c, PdOp::kClose, tag, Errno::kEINVAL);
        break;
      }
      peer.subs.erase(fd);
      auto res = kernel_->Close(peer.proc, fd);
      if (!res.ok()) {
        PdWriteError(peer.conn->s2c, PdOp::kClose, tag, res.error());
      } else {
        PdWriteFrame(peer.conn->s2c, PdOp::kClose, 0, tag, {});
      }
      break;
    }
    case PdOp::kRead:
      HandleRead(peer, tag, r, /*pread=*/false);
      break;
    case PdOp::kPread:
      HandleRead(peer, tag, r, /*pread=*/true);
      break;
    case PdOp::kWrite:
      HandleWrite(peer, tag, r);
      break;
    case PdOp::kLseek: {
      int32_t fd = 0, whence = 0;
      int64_t off = 0;
      if (!r.Get(&fd) || !r.Get(&off) || !r.Get(&whence)) {
        PdWriteError(peer.conn->s2c, PdOp::kLseek, tag, Errno::kEINVAL);
        break;
      }
      auto pos = kernel_->Lseek(peer.proc, fd, off, whence);
      if (!pos.ok()) {
        PdWriteError(peer.conn->s2c, PdOp::kLseek, tag, pos.error());
      } else {
        PdWriter w;
        w.Put<int64_t>(*pos);
        PdWriteFrame(peer.conn->s2c, PdOp::kLseek, 0, tag, w.bytes());
      }
      break;
    }
    case PdOp::kIoctl:
      HandleIoctl(peer, tag, r);
      break;
    case PdOp::kPsall:
      HandlePsall(peer, tag, r);
      break;
    case PdOp::kReadDirChunk: {
      uint64_t cookie = 0;
      uint32_t max = 0;
      std::string path;
      if (!r.Get(&cookie) || !r.Get(&max) || !r.GetString(&path) || max > (1u << 20)) {
        PdWriteError(peer.conn->s2c, PdOp::kReadDirChunk, tag, Errno::kEINVAL);
        break;
      }
      std::vector<DirEnt> ents;
      auto n = kernel_->ReadDirChunk(peer.proc, path, &cookie, max, &ents);
      if (!n.ok()) {
        PdWriteError(peer.conn->s2c, PdOp::kReadDirChunk, tag, n.error());
        break;
      }
      PdWriter w;
      w.Put<uint64_t>(cookie);
      w.Put<uint32_t>(static_cast<uint32_t>(ents.size()));
      for (const auto& e : ents) {
        w.Put<uint8_t>(static_cast<uint8_t>(e.type));
        w.PutString(e.name);
      }
      PdWriteFrame(peer.conn->s2c, PdOp::kReadDirChunk, 0, tag, w.bytes());
      break;
    }
    case PdOp::kStat: {
      std::string path;
      if (!r.GetString(&path)) {
        PdWriteError(peer.conn->s2c, PdOp::kStat, tag, Errno::kEINVAL);
        break;
      }
      auto attr = kernel_->Stat(peer.proc, path);
      if (!attr.ok()) {
        PdWriteError(peer.conn->s2c, PdOp::kStat, tag, attr.error());
        break;
      }
      PdWriter w;
      w.Put<uint8_t>(static_cast<uint8_t>(attr->type));
      w.Put<uint32_t>(attr->mode);
      w.Put<uint32_t>(attr->uid);
      w.Put<uint32_t>(attr->gid);
      w.Put<uint64_t>(attr->size);
      w.Put<uint64_t>(attr->mtime);
      w.Put<uint32_t>(attr->nlink);
      PdWriteFrame(peer.conn->s2c, PdOp::kStat, 0, tag, w.bytes());
      break;
    }
    case PdOp::kPoll:
      HandlePoll(peer, tag, r);
      break;
    case PdOp::kSubscribe: {
      int32_t fd = 0, events = 0;
      if (!r.Get(&fd) || !r.Get(&events)) {
        PdWriteError(peer.conn->s2c, PdOp::kSubscribe, tag, Errno::kEINVAL);
        break;
      }
      auto of = kernel_->FdGet(peer.proc, fd);
      if (!of.ok()) {
        PdWriteError(peer.conn->s2c, PdOp::kSubscribe, tag, of.error());
        break;
      }
      peer.subs[fd] = {events, 0};
      PdWriteFrame(peer.conn->s2c, PdOp::kSubscribe, 0, tag, {});
      break;
    }
    case PdOp::kUnsubscribe: {
      int32_t fd = 0;
      if (!r.Get(&fd)) {
        PdWriteError(peer.conn->s2c, PdOp::kUnsubscribe, tag, Errno::kEINVAL);
        break;
      }
      peer.subs.erase(fd);
      PdWriteFrame(peer.conn->s2c, PdOp::kUnsubscribe, 0, tag, {});
      break;
    }
    case PdOp::kSpawn:
      HandleSpawn(peer, tag, r);
      break;
    case PdOp::kStats: {
      std::string text = StatsText();
      PdWriteFrame(peer.conn->s2c, PdOp::kStats, 0, tag,
                   std::vector<uint8_t>(text.begin(), text.end()));
      break;
    }
    default:
      PdWriteError(peer.conn->s2c, static_cast<PdOp>(f.hdr.op), tag, Errno::kENOSYS);
      break;
  }
  if (peer.wait == Peer::Wait::kNone) {
    // Replied inline (ok or error); parked frames record at completion.
    SpanReply(peer, static_cast<PdOp>(f.hdr.op));
  }
  return true;
}

// --- Parked waits ------------------------------------------------------------

void ProcdServer::ReplyStopWait(Peer& peer, Errno e, bool ok) {
  PdOp op = peer.wait_op;
  uint32_t tag = peer.wait_tag;
  if (!ok) {
    peer.wait = Peer::Wait::kNone;
    PdWriteError(peer.conn->s2c, op, tag, e);
    SpanReply(peer, op);
    return;
  }
  if (op == PdOp::kWrite) {
    // A ctl stream parked mid-write: execute the continuation (which may
    // park again on another blocking message).
    std::vector<uint8_t> cont = std::move(peer.wait_cont);
    int64_t consumed = peer.wait_consumed;
    int fd = peer.wait_fd;
    peer.wait = Peer::Wait::kNone;
    if (!RunCtlWrite(peer, tag, fd, std::move(cont), consumed)) {
      SpanReply(peer, op);
    }
    return;
  }
  // Flat PIOCSTOP/PIOCWSTOP: optional PrStatus out-parameter.
  PdWriter w;
  w.Put<int32_t>(0);
  if (peer.wait_out_cap >= sizeof(PrStatus)) {
    Proc* target = kernel_->FindProc(peer.wait_pid);
    PrStatus st = BuildPrStatus(*kernel_, target);
    w.PutBytes(&st, sizeof(st));
  }
  peer.wait = Peer::Wait::kNone;
  PdWriteFrame(peer.conn->s2c, op, 0, tag, w.bytes());
  SpanReply(peer, op);
}

bool ProcdServer::TryCompleteWait(Peer& peer, bool idle) {
  switch (peer.wait) {
    case Peer::Wait::kNone:
      return false;
    case Peer::Wait::kStopWait: {
      // Mirrors Kernel::PrWaitStop's completion rules exactly.
      Proc* p = kernel_->FindProc(peer.wait_pid);
      if (p == nullptr || p->state != Proc::State::kActive) {
        ReplyStopWait(peer, Errno::kENOENT, /*ok=*/false);
        return true;
      }
      bool stopped_any = false;
      for (const auto& l : p->lwps) {
        if (l->state == LwpState::kStopped) {
          stopped_any = true;
          break;
        }
      }
      if (stopped_any) {
        ReplyStopWait(peer, Errno::kOk, /*ok=*/true);
        return true;
      }
      if (idle) {
        ReplyStopWait(peer, Errno::kEDEADLK, /*ok=*/false);
        return true;
      }
      return false;
    }
    case Peer::Wait::kPoll: {
      int ready = EvalPoll(peer, peer.wait_pfds);
      bool timed_out =
          peer.wait_deadline != 0 && kernel_->Ticks() >= peer.wait_deadline;
      if (ready == 0 && !timed_out && !idle) {
        return false;
      }
      PdWriter w;
      w.Put<int32_t>(ready);
      w.Put<uint32_t>(static_cast<uint32_t>(peer.wait_pfds.size()));
      for (const auto& pf : peer.wait_pfds) {
        w.Put<int32_t>(pf.revents);
      }
      PdOp op = peer.wait_op;
      uint32_t tag = peer.wait_tag;
      peer.wait = Peer::Wait::kNone;
      peer.wait_pfds.clear();
      PdWriteFrame(peer.conn->s2c, op, 0, tag, w.bytes());
      SpanReply(peer, op);
      return true;
    }
  }
  return false;
}

bool ProcdServer::PushEvents(Peer& peer) {
  bool pushed = false;
  for (auto& [fd, sub] : peer.subs) {
    auto& [events, last] = sub;
    int revents;
    auto of = kernel_->FdGet(peer.proc, fd);
    if (!of.ok()) {
      revents = POLLNVAL;
    } else {
      revents = MaskRevents((*of)->vp->Poll(**of), events);
    }
    if (revents != last) {
      last = revents;
      PdWriter w;
      w.Put<int32_t>(fd);
      w.Put<int32_t>(revents);
      PdWriteFrame(peer.conn->s2c, PdOp::kEvent, 0, /*tag=*/0, w.bytes());
      ++stats_.events_pushed;
      pushed = true;
    }
  }
  return pushed;
}

// --- The pump ----------------------------------------------------------------

bool ProcdServer::Pump() {
  bool progress = false;
  // Round accounting first (before any dispatch) so a kStats frame served
  // this round already sees the round that served it. peer_scans makes the
  // O(peers)-per-round pump scan a measurable quantity instead of folklore.
  ++stats_.pump_rounds;
  stats_.peer_scans += live_peers_;
  FaultInjector* finj = kernel_->fault_injector();
  for (auto& up : peers_) {
    Peer& peer = *up;
    if (peer.dead) {
      continue;
    }
    // The chaos window: the peer's transport can die before any frame,
    // between frames, or mid-parked-wait. One evaluation per peer per pump.
    if (finj != nullptr && finj->Fire(FaultSite::kPeerDisconnect)) {
      Detach(peer, /*chaos=*/true);
      progress = true;
      continue;
    }
    if (peer.conn->client_closed && !peer.conn->c2s.HasFrame()) {
      Detach(peer, /*chaos=*/false);
      progress = true;
      continue;
    }
    PdFrame f;
    while (peer.wait == Peer::Wait::kNone && !peer.dead &&
           peer.conn->c2s.NextFrame(&f)) {
      progress |= HandleFrame(peer, f);
    }
  }
  // Parked waits: evaluate without stepping first.
  uint64_t nparked = 0;
  for (auto& up : peers_) {
    if (up->dead) {
      continue;
    }
    if (up->wait != Peer::Wait::kNone) {
      if (TryCompleteWait(*up, /*idle=*/false)) {
        progress = true;
        // A completed ctl continuation may have re-parked or produced new
        // frames to process next pump.
      }
    }
    if (up->wait != Peer::Wait::kNone) {
      ++nparked;
    }
    progress |= PushEvents(*up);
  }
  bool any_parked = nparked != 0;
  if (spans_on_) {
    parked_peers_.Record(nparked);
  }
  if (!progress && any_parked) {
    // Parked waits are the only pending work: advance the simulation. If it
    // is already idle, the waits resolve the way local blocking calls do
    // (EDEADLK for stop-waits, 0-ready for polls).
    if (kernel_->Step()) {
      return true;
    }
    for (auto& up : peers_) {
      if (!up->dead && up->wait != Peer::Wait::kNone) {
        progress |= TryCompleteWait(*up, /*idle=*/true);
      }
    }
  }
  return progress;
}

}  // namespace svr4
