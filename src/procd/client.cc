// RemoteProcIo: the client half of procd. Each ProcIo operation becomes one
// wire frame; Call() pumps the server until the tagged reply arrives, so a
// blocking remote operation (PIOCWSTOP, poll) drives the simulation exactly
// the way a local blocking call does — just from the other side of a frame
// boundary.
#include "svr4proc/procd/client.h"

#include <cstring>

#include "svr4proc/isa/isa.h"
#include "svr4proc/kernel/signal.h"
#include "svr4proc/procfs/types.h"

namespace svr4 {

namespace {

struct IoSizes {
  uint32_t in = 0;
  uint32_t out = 0;
};

// Operand sizes for the flat (trivially copyable) PIOC operations — the
// client-side twin of the local dispatch's argument handling. Variable-size
// operations (PIOCMAP, PIOCGWATCH, PIOCPSALL, PIOCPAGEDATA) are intercepted
// before this table is consulted.
bool PiocSizes(uint32_t op, bool have_arg, IoSizes* s) {
  switch (op) {
    case PIOCSTATUS:
      s->out = sizeof(PrStatus);
      return true;
    case PIOCSTOP:
    case PIOCWSTOP:
      s->out = have_arg ? sizeof(PrStatus) : 0;
      return true;
    case PIOCRUN:
      s->in = sizeof(PrRun);
      return true;
    case PIOCSTRACE:
    case PIOCSHOLD:
      s->in = sizeof(SigSet);
      return true;
    case PIOCGTRACE:
    case PIOCGHOLD:
      s->out = sizeof(SigSet);
      return true;
    case PIOCSSIG:
      s->in = have_arg ? sizeof(SigInfo) : 0;
      return true;
    case PIOCKILL:
    case PIOCUNKILL:
    case PIOCNICE:
    case PIOCPROF:
      s->in = 4;
      return true;
    case PIOCMAXSIG:
    case PIOCNMAP:
    case PIOCNWATCH:
      s->out = sizeof(int);
      return true;
    case PIOCACTION:
      s->out = SigSet::kMaxMember * sizeof(SigAction);
      return true;
    case PIOCSFAULT:
      s->in = sizeof(FltSet);
      return true;
    case PIOCGFAULT:
      s->out = sizeof(FltSet);
      return true;
    case PIOCSENTRY:
    case PIOCSEXIT:
      s->in = sizeof(SysSet);
      return true;
    case PIOCGENTRY:
    case PIOCGEXIT:
      s->out = sizeof(SysSet);
      return true;
    case PIOCCFAULT:
    case PIOCSFORK:
    case PIOCRFORK:
    case PIOCSRLC:
    case PIOCRRLC:
      return true;
    case PIOCSREG:
      s->in = sizeof(Regs);
      return true;
    case PIOCGREG:
      s->out = sizeof(Regs);
      return true;
    case PIOCSFPREG:
      s->in = sizeof(FpRegs);
      return true;
    case PIOCGFPREG:
      s->out = sizeof(FpRegs);
      return true;
    case PIOCOPENM:
      s->in = have_arg ? 4 : 0;
      return true;
    case PIOCCRED:
      s->out = sizeof(PrCred);
      return true;
    case PIOCGROUPS:
      s->out = PRNGROUPS * sizeof(Gid);
      return true;
    case PIOCPSINFO:
      s->out = sizeof(PrPsinfo);
      return true;
    case PIOCGETPR:
      s->out = sizeof(PrRawProc);
      return true;
    case PIOCGETU:
      s->out = sizeof(PrRawUser);
      return true;
    case PIOCUSAGE:
      s->out = sizeof(PrUsage);
      return true;
    case PIOCSWATCH:
      s->in = sizeof(PrWatch);
      return true;
    case PIOCVMSTATS:
      s->out = sizeof(PrVmStats);
      return true;
    case PIOCAUDIT:
      s->out = sizeof(PrCtlAudit);
      return true;
    case PIOCKSTAT:
      s->out = sizeof(PrKstat);
      return true;
    case PIOCLWPIDS:
      s->out = sizeof(PrLwpIds);
      return true;
    default:
      return false;
  }
}

}  // namespace

void RemoteProcIo::Hangup() {
  if (conn_ == nullptr || conn_->client_closed) {
    return;
  }
  conn_->client_closed = true;
  // One pump lets the server observe the hangup and detach the peer now
  // rather than on the next unrelated pump.
  if (!conn_->server_closed && conn_->server != nullptr) {
    conn_->server->Pump();
  }
}

void RemoteProcIo::DrainPushed() {
  if (conn_ == nullptr) {
    return;
  }
  PdFrame f;
  while (conn_->s2c.NextFrame(&f)) {
    if (static_cast<PdOp>(f.hdr.op) == PdOp::kEvent) {
      PdReader r(f.body);
      Event ev;
      if (r.Get(&ev.fd) && r.Get(&ev.revents)) {
        events_.push_back(ev);
      }
    }
    // Non-event frames with no matching Call are stale replies from a
    // chaos-severed exchange; drop them.
  }
}

Result<PdFrame> RemoteProcIo::Call(PdOp op, std::vector<uint8_t> body) {
  if (conn_ == nullptr || conn_->client_closed || conn_->server_closed) {
    return Errno::kEIO;
  }
  uint32_t tag = next_tag_++;
  PdWriteFrame(conn_->c2s, op, 0, tag, body);
  int stalls = 0;
  for (;;) {
    PdFrame f;
    bool saw = false;
    while (conn_->s2c.NextFrame(&f)) {
      saw = true;
      if (static_cast<PdOp>(f.hdr.op) == PdOp::kEvent) {
        PdReader r(f.body);
        Event ev;
        if (r.Get(&ev.fd) && r.Get(&ev.revents)) {
          events_.push_back(ev);
        }
        continue;
      }
      if (f.hdr.tag != tag) {
        continue;  // stale reply from a severed exchange
      }
      if ((f.hdr.flags & kPdErrFlag) != 0) {
        int32_t e = 0;
        PdReader r(f.body);
        if (!r.Get(&e)) {
          return Errno::kEIO;
        }
        return static_cast<Errno>(e);
      }
      return f;
    }
    if (conn_->server_closed || conn_->server == nullptr) {
      // The peer died server-side (hangup raced, or PEER_DISCONNECT fired)
      // with our call in flight: the transport reports an I/O error and
      // every descriptor this peer held is already closed.
      return Errno::kEIO;
    }
    if (!conn_->server->Pump() && !saw) {
      // A fully idle daemon with our reply still missing means the frame
      // can never complete (defensive; a correct server always replies or
      // detaches).
      if (++stalls > 2) {
        return Errno::kEIO;
      }
    } else {
      stalls = 0;
    }
  }
}

Result<Pid> RemoteProcIo::PeerPid() {
  auto f = Call(PdOp::kHello, {});
  if (!f.ok()) {
    return f.error();
  }
  PdReader r(f->body);
  int32_t pid = 0;
  if (!r.Get(&pid)) {
    return Errno::kEIO;
  }
  return static_cast<Pid>(pid);
}

Result<std::string> RemoteProcIo::ProcdStats() {
  auto f = Call(PdOp::kStats, {});
  if (!f.ok()) {
    return f.error();
  }
  return std::string(f->body.begin(), f->body.end());
}

Result<int> RemoteProcIo::Open(const std::string& path, int oflags) {
  PdWriter w;
  w.Put<int32_t>(oflags);
  w.PutString(path);
  auto f = Call(PdOp::kOpen, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  PdReader r(f->body);
  int32_t fd = -1;
  if (!r.Get(&fd)) {
    return Errno::kEIO;
  }
  return static_cast<int>(fd);
}

Result<void> RemoteProcIo::Close(int fd) {
  PdWriter w;
  w.Put<int32_t>(fd);
  auto f = Call(PdOp::kClose, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  return Result<void>::Ok();
}

Result<int64_t> RemoteProcIo::Read(int fd, void* buf, uint64_t n) {
  PdWriter w;
  w.Put<int32_t>(fd);
  w.Put<uint32_t>(static_cast<uint32_t>(n));
  auto f = Call(PdOp::kRead, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  if (!f->body.empty()) {
    std::memcpy(buf, f->body.data(), f->body.size());
  }
  return static_cast<int64_t>(f->body.size());
}

Result<int64_t> RemoteProcIo::Write(int fd, const void* buf, uint64_t n) {
  PdWriter w;
  w.Put<int32_t>(fd);
  w.PutBytes(buf, n);
  auto f = Call(PdOp::kWrite, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  PdReader r(f->body);
  int64_t wrote = 0;
  if (!r.Get(&wrote)) {
    return Errno::kEIO;
  }
  return wrote;
}

Result<int64_t> RemoteProcIo::Lseek(int fd, int64_t off, int whence) {
  PdWriter w;
  w.Put<int32_t>(fd);
  w.Put<int64_t>(off);
  w.Put<int32_t>(whence);
  auto f = Call(PdOp::kLseek, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  PdReader r(f->body);
  int64_t pos = 0;
  if (!r.Get(&pos)) {
    return Errno::kEIO;
  }
  return pos;
}

Result<int32_t> RemoteProcIo::Ioctl(int fd, uint32_t op, void* arg) {
  if (op == PIOCPSALL) {
    // The one operand with internal pointers: its own RPC carries the
    // cursor inputs and the row array explicitly.
    auto* all = static_cast<PrPsAll*>(arg);
    if (all == nullptr) {
      return Errno::kEINVAL;
    }
    PdWriter w;
    w.Put<int32_t>(fd);
    w.Put<int32_t>(all->pr_start_pid);
    w.Put<uint32_t>(all->pr_limit);
    auto f = Call(PdOp::kPsall, std::move(w.bytes()));
    if (!f.ok()) {
      return f.error();
    }
    PdReader r(f->body);
    uint32_t n = 0;
    if (!r.Get(&all->pr_next_pid) || !r.Get(&n)) {
      return Errno::kEIO;
    }
    all->pr_procs.resize(n);
    const uint8_t* rows = r.Raw(n * sizeof(PrPsinfo));
    if (rows == nullptr) {
      return Errno::kEIO;
    }
    std::memcpy(all->pr_procs.data(), rows, n * sizeof(PrPsinfo));
    return 0;
  }
  if (op == PIOCPAGEDATA) {
    return Errno::kEINVAL;  // no remote encoding for page-data buffers
  }
  IoSizes s;
  if (op == PIOCMAP) {
    // The caller's buffer is PrMapEntry[n+1]; size it the way the caller
    // did, with a fresh PIOCNMAP.
    int n = 0;
    auto nr = Ioctl(fd, PIOCNMAP, &n);
    if (!nr.ok()) {
      return nr.error();
    }
    s.out = static_cast<uint32_t>(n + 1) * sizeof(PrMapEntry);
  } else if (op == PIOCGWATCH) {
    int n = 0;
    auto nr = Ioctl(fd, PIOCNWATCH, &n);
    if (!nr.ok()) {
      return nr.error();
    }
    s.out = static_cast<uint32_t>(n) * sizeof(PrWatch);
  } else if (!PiocSizes(op, arg != nullptr, &s)) {
    return Errno::kEINVAL;
  }
  if (arg == nullptr) {
    s.in = 0;
    s.out = 0;
  }
  PdWriter w;
  w.Put<int32_t>(fd);
  w.Put<uint32_t>(op);
  w.Put<uint32_t>(s.in);
  w.Put<uint32_t>(s.out);
  if (s.in != 0) {
    w.PutBytes(arg, s.in);
  }
  auto f = Call(PdOp::kIoctl, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  PdReader r(f->body);
  int32_t rv = 0;
  if (!r.Get(&rv)) {
    return Errno::kEIO;
  }
  if (s.out != 0) {
    const uint8_t* out = r.Raw(s.out);
    if (out == nullptr) {
      return Errno::kEIO;
    }
    std::memcpy(arg, out, s.out);
  }
  return rv;
}

Result<std::vector<DirEnt>> RemoteProcIo::ReadDir(const std::string& path) {
  std::vector<DirEnt> out;
  uint64_t cookie = 0;
  for (;;) {
    auto n = ReadDirChunk(path, &cookie, 256, &out);
    if (!n.ok()) {
      return n.error();
    }
    if (*n == 0) {
      return out;
    }
  }
}

Result<size_t> RemoteProcIo::ReadDirChunk(const std::string& path, uint64_t* cookie,
                                          size_t max, std::vector<DirEnt>* out) {
  PdWriter w;
  w.Put<uint64_t>(*cookie);
  w.Put<uint32_t>(static_cast<uint32_t>(max));
  w.PutString(path);
  auto f = Call(PdOp::kReadDirChunk, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  PdReader r(f->body);
  uint32_t n = 0;
  if (!r.Get(cookie) || !r.Get(&n)) {
    return Errno::kEIO;
  }
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t type = 0;
    DirEnt e;
    if (!r.Get(&type) || !r.GetString(&e.name)) {
      return Errno::kEIO;
    }
    e.type = static_cast<VType>(type);
    out->push_back(std::move(e));
  }
  return static_cast<size_t>(n);
}

Result<VAttr> RemoteProcIo::Stat(const std::string& path) {
  PdWriter w;
  w.PutString(path);
  auto f = Call(PdOp::kStat, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  PdReader r(f->body);
  uint8_t type = 0;
  uint32_t mode = 0, uid = 0, gid = 0, nlink = 0;
  uint64_t size = 0, mtime = 0;
  if (!r.Get(&type) || !r.Get(&mode) || !r.Get(&uid) || !r.Get(&gid) ||
      !r.Get(&size) || !r.Get(&mtime) || !r.Get(&nlink)) {
    return Errno::kEIO;
  }
  VAttr a;
  a.type = static_cast<VType>(type);
  a.mode = mode;
  a.uid = uid;
  a.gid = gid;
  a.size = size;
  a.mtime = mtime;
  a.nlink = nlink;
  return a;
}

Result<int> RemoteProcIo::PollFds(std::span<PollFd> fds, int64_t timeout_ticks) {
  PdWriter w;
  w.Put<int64_t>(timeout_ticks);
  w.Put<uint32_t>(static_cast<uint32_t>(fds.size()));
  for (const auto& pf : fds) {
    w.Put<int32_t>(pf.fd);
    w.Put<int32_t>(pf.events);
  }
  auto f = Call(PdOp::kPoll, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  PdReader r(f->body);
  int32_t ready = 0;
  uint32_t n = 0;
  if (!r.Get(&ready) || !r.Get(&n) || n != fds.size()) {
    return Errno::kEIO;
  }
  for (auto& pf : fds) {
    int32_t revents = 0;
    if (!r.Get(&revents)) {
      return Errno::kEIO;
    }
    pf.revents = revents;
  }
  return static_cast<int>(ready);
}

Result<Pid> RemoteProcIo::Spawn(const std::string& path,
                                const std::vector<std::string>& argv,
                                const Creds& creds) {
  PdWriter w;
  w.Put<uint32_t>(creds.ruid);
  w.Put<uint32_t>(creds.rgid);
  w.PutString(path);
  w.Put<uint32_t>(static_cast<uint32_t>(argv.size()));
  for (const auto& a : argv) {
    w.PutString(a);
  }
  auto f = Call(PdOp::kSpawn, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  PdReader r(f->body);
  int32_t pid = -1;
  if (!r.Get(&pid)) {
    return Errno::kEIO;
  }
  return static_cast<Pid>(pid);
}

Result<void> RemoteProcIo::Subscribe(int fd, int events) {
  PdWriter w;
  w.Put<int32_t>(fd);
  w.Put<int32_t>(events);
  auto f = Call(PdOp::kSubscribe, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  return Result<void>::Ok();
}

Result<void> RemoteProcIo::Unsubscribe(int fd) {
  PdWriter w;
  w.Put<int32_t>(fd);
  auto f = Call(PdOp::kUnsubscribe, std::move(w.bytes()));
  if (!f.ok()) {
    return f.error();
  }
  return Result<void>::Ok();
}

bool RemoteProcIo::NextEvent(Event* out) {
  DrainPushed();
  if (events_.empty()) {
    return false;
  }
  *out = events_.front();
  events_.pop_front();
  return true;
}

void RemoteProcIo::Poke() {
  if (conn_ != nullptr && !conn_->server_closed && conn_->server != nullptr) {
    conn_->server->Pump();
  }
  DrainPushed();
}

}  // namespace svr4
