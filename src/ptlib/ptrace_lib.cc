#include "svr4proc/ptlib/ptrace_lib.h"

#include <vector>

namespace svr4 {

Result<void> PtraceLib::Attach(Pid pid) {
  if (tracees_.count(pid)) {
    return Errno::kEBUSY;
  }
  auto h = ProcHandle::Grab(*kernel_, caller_, pid);
  if (!h.ok()) {
    return h.error();
  }
  // A ptrace'd process stops on receipt of any signal.
  SVR4_RETURN_IF_ERROR(h->SetSigTrace(SigSet::Full()));
  SVR4_RETURN_IF_ERROR(h->Kill(SIGSTOP));
  SVR4_RETURN_IF_ERROR(h->WaitStop());
  tracees_.emplace(pid, std::move(*h));
  return Result<void>::Ok();
}

Result<void> PtraceLib::Detach(Pid pid) {
  auto it = tracees_.find(pid);
  if (it == tracees_.end()) {
    return Errno::kESRCH;
  }
  ProcHandle& h = it->second;
  (void)h.SetSigTrace(SigSet{});
  auto st = h.Status();
  if (st.ok() && (st->pr_flags & PR_ISTOP)) {
    (void)h.RunClearSig();
  }
  tracees_.erase(it);
  return Result<void>::Ok();
}

Result<ProcHandle*> PtraceLib::Tracee(Pid pid) {
  auto it = tracees_.find(pid);
  if (it == tracees_.end()) {
    return Errno::kESRCH;
  }
  return &it->second;
}

Result<int64_t> PtraceLib::Ptrace(int req, Pid pid, uint32_t addr, uint32_t data) {
  auto hp = Tracee(pid);
  if (!hp.ok()) {
    return hp.error();
  }
  ProcHandle& h = **hp;
  switch (req) {
    case PT_PEEKTEXT:
    case PT_PEEKDATA: {
      uint32_t word = 0;
      auto n = h.ReadMem(addr, &word, 4);
      if (!n.ok() || *n != 4) {
        return Errno::kEIO;
      }
      return static_cast<int64_t>(word);
    }
    case PT_POKETEXT:
    case PT_POKEDATA: {
      auto n = h.WriteMem(addr, &data, 4);
      if (!n.ok() || *n != 4) {
        return Errno::kEIO;
      }
      return int64_t{0};
    }
    case PT_PEEKUSER: {
      auto regs = h.GetRegs();
      if (!regs.ok()) {
        return regs.error();
      }
      if (addr < kNumRegs) {
        return static_cast<int64_t>(regs->r[addr]);
      }
      if (addr == 16) {
        return static_cast<int64_t>(regs->pc);
      }
      if (addr == 17) {
        return static_cast<int64_t>(regs->psr);
      }
      return Errno::kEIO;
    }
    case PT_POKEUSER: {
      auto regs = h.GetRegs();
      if (!regs.ok()) {
        return regs.error();
      }
      if (addr < kNumRegs) {
        regs->r[addr] = data;
      } else if (addr == 16) {
        regs->pc = data;
      } else if (addr == 17) {
        regs->psr = data;
      } else {
        return Errno::kEIO;
      }
      SVR4_RETURN_IF_ERROR(h.SetRegs(*regs));
      return int64_t{0};
    }
    case PT_CONT:
    case PT_STEP: {
      PrRun r;
      if (addr != 1) {
        r.pr_flags |= PRSVADDR;
        r.pr_vaddr = addr;
      }
      if (data == 0) {
        r.pr_flags |= PRCSIG;
      } else {
        // PIOCSSIG plants the signal as the current one; the process acts on
        // it when resumed instead of reporting it again.
        SigInfo info;
        info.si_signo = static_cast<int32_t>(data);
        SVR4_RETURN_IF_ERROR(h.SetCurSig(info));
      }
      if (req == PT_STEP) {
        r.pr_flags |= PRSTEP;
      }
      SVR4_RETURN_IF_ERROR(h.Run(r));
      return int64_t{0};
    }
    case PT_KILL: {
      // Discard any reported-but-undelivered signal first so the process
      // dies of the SIGKILL, not of the old current signal.
      (void)h.ClearCurSig();
      SVR4_RETURN_IF_ERROR(h.Kill(SIGKILL));
      auto st = h.Status();
      if (st.ok() && (st->pr_flags & PR_ISTOP)) {
        (void)h.RunClearSig();
      }
      return int64_t{0};
    }
    default:
      return Errno::kEINVAL;
  }
}

Result<WaitResult> PtraceLib::Wait() {
  if (tracees_.empty()) {
    return Errno::kECHILD;
  }
  for (;;) {
    // poll(2) over the /proc descriptors: "much easier for a debugger to
    // wait for any one of a set of controlled processes to stop."
    std::vector<PollFd> pfds;
    std::vector<Pid> pids;
    for (auto& [pid, h] : tracees_) {
      PollFd pf;
      pf.fd = h.fd();
      pf.events = POLLPRI;
      pfds.push_back(pf);
      pids.push_back(pid);
    }
    auto n = kernel_->PollFds(caller_, pfds, 1'000'000'000);
    if (!n.ok()) {
      return n.error();
    }
    for (size_t i = 0; i < pfds.size(); ++i) {
      Pid pid = pids[i];
      if (pfds[i].revents & (POLLHUP | POLLNVAL)) {
        // Exited (or descriptor gone): report like wait(2) would.
        Proc* p = kernel_->FindProc(pid);
        WaitResult out;
        out.pid = pid;
        out.status = p != nullptr ? p->exit_status : 0;
        tracees_.erase(pid);
        return out;
      }
      if (pfds[i].revents & POLLPRI) {
        auto st = tracees_.at(pid).Status();
        if (!st.ok()) {
          continue;
        }
        // Every stop is reported through the wait interface, the way ptrace
        // folds them all into "stopped" statuses.
        WaitResult out;
        out.pid = pid;
        int sig = st->pr_why == PR_SIGNALLED    ? static_cast<int>(st->pr_what)
                  : st->pr_why == PR_REQUESTED ? static_cast<int>(SIGSTOP)
                                               : static_cast<int>(SIGTRAP);
        out.status = WStopStatus(sig);
        return out;
      }
    }
    if (*n == 0) {
      return Errno::kEDEADLK;  // simulation idle; nothing will stop
    }
  }
}

}  // namespace svr4
