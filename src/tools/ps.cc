#include "svr4proc/tools/ps.h"

#include <cstdio>

#include "svr4proc/tools/proclib.h"

namespace svr4 {

Result<std::vector<PrPsinfo>> PsSnapshot(ProcIo& io) {
  std::vector<PrPsinfo> out;
  uint64_t cookie = 0;
  std::vector<DirEnt> ents;
  for (;;) {
    ents.clear();
    auto n = io.ReadDirChunk("/proc", &cookie, 256, &ents);
    if (!n.ok()) {
      return n.error();
    }
    if (*n == 0) {
      break;
    }
    for (const auto& e : ents) {
      Pid pid = static_cast<Pid>(std::strtol(e.name.c_str(), nullptr, 10));
      auto h = ProcHandle::Grab(io, pid, O_RDONLY);
      if (!h.ok()) {
        continue;  // raced with exit, or not permitted
      }
      auto ps = h->Psinfo();
      if (ps.ok()) {
        out.push_back(*ps);
      }
    }
  }
  return out;
}

Result<std::vector<PrPsinfo>> PsSnapshot(Kernel& k, Proc* caller) {
  LocalProcIo io(k, caller);
  return PsSnapshot(io);
}

Result<std::vector<PrPsinfo>> PsSnapshotAll(ProcIo& io, Pid handle_pid) {
  auto h = ProcHandle::Grab(io, handle_pid, O_RDONLY);
  if (!h.ok()) {
    return h.error();
  }
  return h->PsinfoAll();
}

Result<std::vector<PrPsinfo>> PsSnapshotAll(Kernel& k, Proc* caller) {
  // Any live pid serves as the handle; the caller's own entry always exists.
  Pid handle_pid = caller != nullptr ? caller->pid : k.init_proc()->pid;
  LocalProcIo io(k, caller);
  return PsSnapshotAll(io, handle_pid);
}

Result<std::string> PsFormat(ProcIo& io, const PsOptions& opts) {
  auto snap = PsSnapshot(io);
  if (!snap.ok()) {
    return snap.error();
  }
  std::string out;
  char line[256];
  if (opts.full) {
    out += "     UID   PID  PPID S        TIME CMD\n";
  } else {
    out += "   PID S        TIME CMD\n";
  }
  for (const auto& ps : *snap) {
    if (opts.full) {
      std::snprintf(line, sizeof(line), "%8u %5d %5d %c %11llu %s\n", ps.pr_uid, ps.pr_pid,
                    ps.pr_ppid, ps.pr_state, static_cast<unsigned long long>(ps.pr_time),
                    ps.pr_psargs);
    } else {
      std::snprintf(line, sizeof(line), "%6d %c %11llu %s\n", ps.pr_pid, ps.pr_state,
                    static_cast<unsigned long long>(ps.pr_time), ps.pr_fname);
    }
    out += line;
  }
  return out;
}

Result<std::string> PsFormat(Kernel& k, Proc* caller, const PsOptions& opts) {
  LocalProcIo io(k, caller);
  return PsFormat(io, opts);
}

Result<std::string> LsProc(ProcIo& io) {
  auto ents = io.ReadDir("/proc");
  if (!ents.ok()) {
    return ents.error();
  }
  std::string out;
  char line[256];
  for (const auto& e : *ents) {
    auto attr = io.Stat("/proc/" + e.name);
    if (!attr.ok()) {
      continue;
    }
    // Figure 1's shape: mode, owner, group, size (total VM size), name.
    std::snprintf(line, sizeof(line), "-rw-------  1 %-8u %-8u %8llu %s\n", attr->uid,
                  attr->gid, static_cast<unsigned long long>(attr->size), e.name.c_str());
    out += line;
  }
  return out;
}

Result<std::string> LsProc(Kernel& k, Proc* caller) {
  LocalProcIo io(k, caller);
  return LsProc(io);
}

}  // namespace svr4
