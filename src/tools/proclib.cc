#include "svr4proc/tools/proclib.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace svr4 {
namespace {

std::string ProcPath(Pid pid) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "/proc/%05d", pid);
  return buf;
}

}  // namespace

Result<ProcHandle> ProcHandle::Grab(Kernel& k, Proc* controller, Pid pid, int oflags) {
  auto owned = std::make_unique<LocalProcIo>(k, controller);
  auto fd = owned->Open(ProcPath(pid), oflags);
  if (!fd.ok()) {
    return fd.error();
  }
  ProcIo* io = owned.get();
  return ProcHandle(std::move(owned), io, pid, *fd);
}

Result<ProcHandle> ProcHandle::Grab(ProcIo& io, Pid pid, int oflags) {
  auto fd = io.Open(ProcPath(pid), oflags);
  if (!fd.ok()) {
    return fd.error();
  }
  return ProcHandle(nullptr, &io, pid, *fd);
}

ProcHandle::ProcHandle(ProcHandle&& o) noexcept
    : owned_io_(std::move(o.owned_io_)), io_(o.io_), pid_(o.pid_), fd_(o.fd_) {
  o.io_ = nullptr;
  o.fd_ = -1;
}

ProcHandle& ProcHandle::operator=(ProcHandle&& o) noexcept {
  if (this != &o) {
    Close();
    owned_io_ = std::move(o.owned_io_);
    io_ = o.io_;
    pid_ = o.pid_;
    fd_ = o.fd_;
    o.io_ = nullptr;
    o.fd_ = -1;
  }
  return *this;
}

ProcHandle::~ProcHandle() { Close(); }

void ProcHandle::Close() {
  if (fd_ >= 0) {
    (void)io_->Close(fd_);
    fd_ = -1;
  }
}

Result<int32_t> ProcHandle::Io(uint32_t op, void* arg) {
  if (fd_ < 0) {
    return Errno::kEBADF;
  }
  return io_->Ioctl(fd_, op, arg);
}

Result<PrStatus> ProcHandle::Status() {
  PrStatus st;
  SVR4_RETURN_IF_ERROR(Io(PIOCSTATUS, &st));
  return st;
}

Result<void> ProcHandle::Stop() {
  SVR4_RETURN_IF_ERROR(Io(PIOCSTOP, nullptr));
  return Result<void>::Ok();
}

Result<void> ProcHandle::WaitStop() {
  SVR4_RETURN_IF_ERROR(Io(PIOCWSTOP, nullptr));
  return Result<void>::Ok();
}

Result<void> ProcHandle::Run(const PrRun& r) {
  PrRun copy = r;
  SVR4_RETURN_IF_ERROR(Io(PIOCRUN, &copy));
  return Result<void>::Ok();
}

Result<void> ProcHandle::RunClearSig() {
  PrRun r;
  r.pr_flags = PRCSIG;
  return Run(r);
}

Result<void> ProcHandle::RunClearFault() {
  PrRun r;
  r.pr_flags = PRCFAULT;
  return Run(r);
}

Result<void> ProcHandle::Step() {
  PrRun r;
  r.pr_flags = PRSTEP;
  return Run(r);
}

Result<void> ProcHandle::SetSigTrace(const SigSet& s) {
  SigSet copy = s;
  SVR4_RETURN_IF_ERROR(Io(PIOCSTRACE, &copy));
  return Result<void>::Ok();
}

Result<SigSet> ProcHandle::GetSigTrace() {
  SigSet s;
  SVR4_RETURN_IF_ERROR(Io(PIOCGTRACE, &s));
  return s;
}

Result<void> ProcHandle::SetFltTrace(const FltSet& f) {
  FltSet copy = f;
  SVR4_RETURN_IF_ERROR(Io(PIOCSFAULT, &copy));
  return Result<void>::Ok();
}

Result<FltSet> ProcHandle::GetFltTrace() {
  FltSet f;
  SVR4_RETURN_IF_ERROR(Io(PIOCGFAULT, &f));
  return f;
}

Result<void> ProcHandle::SetSysEntry(const SysSet& s) {
  SysSet copy = s;
  SVR4_RETURN_IF_ERROR(Io(PIOCSENTRY, &copy));
  return Result<void>::Ok();
}

Result<SysSet> ProcHandle::GetSysEntry() {
  SysSet s;
  SVR4_RETURN_IF_ERROR(Io(PIOCGENTRY, &s));
  return s;
}

Result<void> ProcHandle::SetSysExit(const SysSet& s) {
  SysSet copy = s;
  SVR4_RETURN_IF_ERROR(Io(PIOCSEXIT, &copy));
  return Result<void>::Ok();
}

Result<SysSet> ProcHandle::GetSysExit() {
  SysSet s;
  SVR4_RETURN_IF_ERROR(Io(PIOCGEXIT, &s));
  return s;
}

Result<void> ProcHandle::Kill(int sig) {
  SVR4_RETURN_IF_ERROR(Io(PIOCKILL, &sig));
  return Result<void>::Ok();
}

Result<void> ProcHandle::Unkill(int sig) {
  SVR4_RETURN_IF_ERROR(Io(PIOCUNKILL, &sig));
  return Result<void>::Ok();
}

Result<void> ProcHandle::SetCurSig(const SigInfo& info) {
  SigInfo copy = info;
  SVR4_RETURN_IF_ERROR(Io(PIOCSSIG, &copy));
  return Result<void>::Ok();
}

Result<void> ProcHandle::ClearCurSig() {
  SVR4_RETURN_IF_ERROR(Io(PIOCSSIG, nullptr));
  return Result<void>::Ok();
}

Result<void> ProcHandle::ClearCurFault() {
  SVR4_RETURN_IF_ERROR(Io(PIOCCFAULT, nullptr));
  return Result<void>::Ok();
}

Result<SigSet> ProcHandle::GetHold() {
  SigSet s;
  SVR4_RETURN_IF_ERROR(Io(PIOCGHOLD, &s));
  return s;
}

Result<void> ProcHandle::SetHold(const SigSet& s) {
  SigSet copy = s;
  SVR4_RETURN_IF_ERROR(Io(PIOCSHOLD, &copy));
  return Result<void>::Ok();
}

Result<std::vector<SigAction>> ProcHandle::GetActions() {
  std::vector<SigAction> acts(SigSet::kMaxMember);
  SVR4_RETURN_IF_ERROR(Io(PIOCACTION, acts.data()));
  return acts;
}

Result<void> ProcHandle::SetInheritOnFork(bool on) {
  SVR4_RETURN_IF_ERROR(Io(on ? PIOCSFORK : PIOCRFORK, nullptr));
  return Result<void>::Ok();
}

Result<void> ProcHandle::SetRunOnLastClose(bool on) {
  SVR4_RETURN_IF_ERROR(Io(on ? PIOCSRLC : PIOCRRLC, nullptr));
  return Result<void>::Ok();
}

Result<Regs> ProcHandle::GetRegs() {
  Regs r;
  SVR4_RETURN_IF_ERROR(Io(PIOCGREG, &r));
  return r;
}

Result<void> ProcHandle::SetRegs(const Regs& r) {
  Regs copy = r;
  SVR4_RETURN_IF_ERROR(Io(PIOCSREG, &copy));
  return Result<void>::Ok();
}

Result<FpRegs> ProcHandle::GetFpRegs() {
  FpRegs r;
  SVR4_RETURN_IF_ERROR(Io(PIOCGFPREG, &r));
  return r;
}

Result<void> ProcHandle::SetFpRegs(const FpRegs& r) {
  FpRegs copy = r;
  SVR4_RETURN_IF_ERROR(Io(PIOCSFPREG, &copy));
  return Result<void>::Ok();
}

Result<int64_t> ProcHandle::ReadMem(uint32_t vaddr, void* buf, uint64_t n) {
  if (fd_ < 0) {
    return Errno::kEBADF;
  }
  // "Data may be transferred from ... any valid locations in the process's
  // address space by applying lseek(2) to position the file at the virtual
  // address of interest followed by read(2)."
  SVR4_RETURN_IF_ERROR(io_->Lseek(fd_, vaddr, SEEK_SET_));
  return io_->Read(fd_, buf, n);
}

Result<int64_t> ProcHandle::WriteMem(uint32_t vaddr, const void* buf, uint64_t n) {
  if (fd_ < 0) {
    return Errno::kEBADF;
  }
  SVR4_RETURN_IF_ERROR(io_->Lseek(fd_, vaddr, SEEK_SET_));
  return io_->Write(fd_, buf, n);
}

Result<std::vector<PrMapEntry>> ProcHandle::GetMap() {
  int n = 0;
  SVR4_RETURN_IF_ERROR(Io(PIOCNMAP, &n));
  std::vector<PrMapEntry> maps(static_cast<size_t>(n) + 1);
  SVR4_RETURN_IF_ERROR(Io(PIOCMAP, maps.data()));
  maps.resize(static_cast<size_t>(n));
  return maps;
}

Result<int> ProcHandle::OpenMappedObject(bool use_exe, uint32_t vaddr) {
  auto fd = Io(PIOCOPENM, use_exe ? nullptr : &vaddr);
  if (!fd.ok()) {
    return fd.error();
  }
  return static_cast<int>(*fd);
}

Result<PrPsinfo> ProcHandle::Psinfo() {
  PrPsinfo ps;
  SVR4_RETURN_IF_ERROR(Io(PIOCPSINFO, &ps));
  return ps;
}

Result<PrCred> ProcHandle::Cred() {
  PrCred c;
  SVR4_RETURN_IF_ERROR(Io(PIOCCRED, &c));
  return c;
}

Result<PrUsage> ProcHandle::Usage() {
  PrUsage u;
  SVR4_RETURN_IF_ERROR(Io(PIOCUSAGE, &u));
  return u;
}

Result<PrVmStats> ProcHandle::VmStats() {
  PrVmStats s;
  SVR4_RETURN_IF_ERROR(Io(PIOCVMSTATS, &s));
  return s;
}

Result<PrCtlAudit> ProcHandle::Audit() {
  PrCtlAudit a;
  SVR4_RETURN_IF_ERROR(Io(PIOCAUDIT, &a));
  return a;
}

Result<PrKstat> ProcHandle::Kstat() {
  PrKstat ks;
  SVR4_RETURN_IF_ERROR(Io(PIOCKSTAT, &ks));
  return ks;
}

Result<std::vector<PrPsinfo>> ProcHandle::PsinfoAll() {
  // Page through the population in bounded windows instead of one bulk
  // snapshot: each ioctl marshals at most pr_limit records, and pr_next_pid
  // chains the windows. Entries appearing between windows may be missed and
  // exits may shift records — the same snapshot contract ps(1) already has.
  std::vector<PrPsinfo> out;
  PrPsAll a;
  a.pr_limit = 1024;
  for (;;) {
    SVR4_RETURN_IF_ERROR(Io(PIOCPSALL, &a));
    out.insert(out.end(), a.pr_procs.begin(), a.pr_procs.end());
    if (a.pr_next_pid < 0) {
      break;
    }
    a.pr_start_pid = a.pr_next_pid;
    a.pr_next_pid = -1;
  }
  return out;
}

Result<PrTrace> ProcHandle::Trace() {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc2/%05d/trace", pid_);
  return ReadTraceFile(*io_, path);
}

Result<PrTrace> ReadTraceFile(Kernel& k, Proc* caller, const std::string& path) {
  LocalProcIo io(k, caller);
  return ReadTraceFile(io, path);
}

Result<PrTrace> ReadTraceFile(ProcIo& io, const std::string& path) {
  auto fd = io.Open(path, O_RDONLY);
  if (!fd.ok()) {
    return fd.error();
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[4096];
  for (;;) {
    auto n = io.Read(*fd, chunk, sizeof(chunk));
    if (!n.ok()) {
      (void)io.Close(*fd);
      return n.error();
    }
    if (*n == 0) {
      break;
    }
    bytes.insert(bytes.end(), chunk, chunk + *n);
  }
  (void)io.Close(*fd);

  PrTrace t;
  if (bytes.empty()) {
    return t;  // ring never armed: an empty snapshot, by design
  }
  if (bytes.size() < sizeof(KtSnapHeader)) {
    return Errno::kEIO;
  }
  std::memcpy(&t.hdr, bytes.data(), sizeof(KtSnapHeader));
  if (t.hdr.kt_magic != kKtMagic || t.hdr.kt_recsize != sizeof(KtRec) ||
      bytes.size() < sizeof(KtSnapHeader) + t.hdr.kt_nrec * sizeof(KtRec)) {
    return Errno::kEIO;
  }
  t.recs.resize(t.hdr.kt_nrec);
  std::memcpy(t.recs.data(), bytes.data() + sizeof(KtSnapHeader),
              t.recs.size() * sizeof(KtRec));
  return t;
}

Result<void> ProcHandle::Nice(int delta) {
  SVR4_RETURN_IF_ERROR(Io(PIOCNICE, &delta));
  return Result<void>::Ok();
}

Result<void> ProcHandle::SetProf(int period_log2) {
  SVR4_RETURN_IF_ERROR(Io(PIOCPROF, &period_log2));
  return Result<void>::Ok();
}

Result<void> ProcHandle::ClearProf() {
  int off = -1;
  SVR4_RETURN_IF_ERROR(Io(PIOCPROF, &off));
  return Result<void>::Ok();
}

Result<std::string> ProcHandle::Prof() {
  char path[64];
  std::snprintf(path, sizeof(path), "/proc2/%05d/prof", pid_);
  return ReadTextFile(*io_, path);
}

Result<std::string> ReadTextFile(ProcIo& io, const std::string& path) {
  auto fd = io.Open(path, O_RDONLY);
  if (!fd.ok()) {
    return fd.error();
  }
  std::string out;
  char chunk[4096];
  for (;;) {
    auto n = io.Read(*fd, chunk, sizeof(chunk));
    if (!n.ok()) {
      (void)io.Close(*fd);
      return n.error();
    }
    if (*n == 0) {
      break;
    }
    out.append(chunk, static_cast<size_t>(*n));
  }
  (void)io.Close(*fd);
  return out;
}

Result<std::string> ProcdStats(ProcIo& io) {
  return ReadTextFile(io, "/proc2/kernel/procd");
}

namespace {

bool ValidMetricsKey(const std::string& t) {
  size_t i = 0;
  if (t.empty() || (!std::isalpha(static_cast<unsigned char>(t[0])) && t[0] != '_')) {
    return false;
  }
  while (i < t.size() &&
         (std::isalnum(static_cast<unsigned char>(t[i])) || t[i] == '_')) {
    ++i;
  }
  if (i == t.size()) {
    return true;
  }
  // name[tag]: tag is any non-empty run without ']' except at the end.
  if (t[i] != '[' || t.back() != ']' || t.size() - i < 3) {
    return false;
  }
  return t.find(']', i) == t.size() - 1;
}

}  // namespace

bool ValidateMetricsText(const std::string& text, std::string* bad_line) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    std::string line = text.substr(
        start, end == std::string::npos ? std::string::npos : end - start);
    if (end == std::string::npos) {
      // Unterminated final line: a truncated render.
      if (bad_line != nullptr) {
        *bad_line = line;
      }
      return false;
    }
    start = end + 1;
    // Tokenize on single spaces; empty tokens mean doubled/leading/trailing
    // spaces, which the renderers never emit.
    std::vector<std::string> toks;
    size_t p = 0;
    bool empty_tok = false;
    while (p <= line.size()) {
      size_t sp = line.find(' ', p);
      std::string tok =
          line.substr(p, sp == std::string::npos ? std::string::npos : sp - p);
      if (tok.empty()) {
        empty_tok = true;
      }
      toks.push_back(std::move(tok));
      if (sp == std::string::npos) {
        break;
      }
      p = sp + 1;
    }
    bool ok = !empty_tok && toks.size() >= 2 && ValidMetricsKey(toks[0]);
    for (size_t i = 1; ok && i < toks.size(); ++i) {
      for (char c : toks[i]) {
        if (!std::isprint(static_cast<unsigned char>(c))) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      if (bad_line != nullptr) {
        *bad_line = line;
      }
      return false;
    }
  }
  return true;
}

Result<void> ProcHandle::SetWatch(const PrWatch& w) {
  PrWatch copy = w;
  SVR4_RETURN_IF_ERROR(Io(PIOCSWATCH, &copy));
  return Result<void>::Ok();
}

Result<void> ProcHandle::ClearWatch(uint32_t vaddr) {
  PrWatch w;
  w.pr_vaddr = vaddr;
  w.pr_wflags = 0;
  SVR4_RETURN_IF_ERROR(Io(PIOCSWATCH, &w));
  return Result<void>::Ok();
}

Result<std::vector<PrWatch>> ProcHandle::GetWatches() {
  int n = 0;
  SVR4_RETURN_IF_ERROR(Io(PIOCNWATCH, &n));
  std::vector<PrWatch> out(static_cast<size_t>(n));
  if (n > 0) {
    SVR4_RETURN_IF_ERROR(Io(PIOCGWATCH, out.data()));
  }
  return out;
}

Result<PrPageData> ProcHandle::PageData(bool clear) {
  PrPageData pd;
  pd.clear = clear;
  SVR4_RETURN_IF_ERROR(Io(PIOCPAGEDATA, &pd));
  return pd;
}

Result<PrLwpIds> ProcHandle::LwpIds() {
  PrLwpIds ids;
  SVR4_RETURN_IF_ERROR(Io(PIOCLWPIDS, &ids));
  return ids;
}

}  // namespace svr4
