#include "svr4proc/tools/debugger.h"

#include <cstdio>

#include "svr4proc/isa/disasm.h"

namespace svr4 {

Result<void> Debugger::Attach(Pid pid) {
  auto h = ProcHandle::Grab(*kernel_, controller_, pid);
  if (!h.ok()) {
    return h.error();
  }
  SVR4_RETURN_IF_ERROR(h->Stop());
  // Field breakpoints as faults and support single-stepping.
  FltSet faults;
  faults.Add(FLTBPT);
  faults.Add(FLTTRACE);
  faults.Add(FLTWATCH);
  SVR4_RETURN_IF_ERROR(h->SetFltTrace(faults));
  handle_ = std::move(*h);

  // Locate the executable's symbol table through PIOCOPENM — no pathname
  // needed.
  auto fd = handle_->OpenMappedObject(/*use_exe=*/true);
  if (fd.ok()) {
    std::vector<uint8_t> bytes;
    bytes.resize(1 << 20);
    auto n = kernel_->Read(controller_, *fd, bytes.data(), bytes.size());
    (void)kernel_->Close(controller_, *fd);
    if (n.ok()) {
      bytes.resize(static_cast<size_t>(*n));
      auto parsed = Aout::Parse(bytes);
      if (parsed.ok()) {
        symbols_ = std::move(*parsed);
      }
    }
  }
  return Result<void>::Ok();
}

Result<void> Debugger::Detach() {
  if (!handle_) {
    return Errno::kESRCH;
  }
  (void)LiftAll();
  breakpoints_.clear();
  (void)handle_->SetFltTrace(FltSet{});
  (void)handle_->SetSigTrace(SigSet{});
  auto st = handle_->Status();
  if (st.ok() && (st->pr_flags & PR_ISTOP)) {
    (void)handle_->RunClearFault();
  }
  handle_.reset();
  return Result<void>::Ok();
}

Result<uint32_t> Debugger::Lookup(const std::string& name) const {
  return symbols_.SymbolValue(name);
}

std::string Debugger::SymbolAt(uint32_t addr) const {
  auto near = symbols_.NearestSymbol(addr);
  if (near.name.empty()) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%x", addr);
    return buf;
  }
  if (near.offset == 0) {
    return near.name;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s+0x%x", near.name.c_str(), near.offset);
  return buf;
}

Result<void> Debugger::SetBreakpoint(uint32_t addr) {
  return SetConditionalBreakpoint(addr, Condition{});
}

Result<void> Debugger::SetBreakpoint(const std::string& symbol) {
  auto addr = Lookup(symbol);
  if (!addr.ok()) {
    return addr.error();
  }
  return SetBreakpoint(*addr);
}

Result<void> Debugger::SetConditionalBreakpoint(uint32_t addr, Condition cond) {
  if (!handle_) {
    return Errno::kESRCH;
  }
  if (breakpoints_.count(addr)) {
    return Errno::kEEXIST;
  }
  Breakpoint bp;
  bp.cond = std::move(cond);
  auto n = handle_->ReadMem(addr, &bp.saved_byte, 1);
  if (!n.ok() || *n != 1) {
    return Errno::kEFAULT;
  }
  uint8_t bpt = kBreakpointByte;
  auto w = handle_->WriteMem(addr, &bpt, 1);
  if (!w.ok() || *w != 1) {
    return Errno::kEFAULT;
  }
  breakpoints_.emplace(addr, std::move(bp));
  return Result<void>::Ok();
}

Result<void> Debugger::ClearBreakpoint(uint32_t addr) {
  auto it = breakpoints_.find(addr);
  if (it == breakpoints_.end()) {
    return Errno::kESRCH;
  }
  auto w = handle_->WriteMem(addr, &it->second.saved_byte, 1);
  breakpoints_.erase(it);
  if (!w.ok()) {
    return w.error();
  }
  return Result<void>::Ok();
}

Result<void> Debugger::PlantAll() {
  for (auto& [addr, bp] : breakpoints_) {
    uint8_t bpt = kBreakpointByte;
    SVR4_RETURN_IF_ERROR(handle_->WriteMem(addr, &bpt, 1));
  }
  return Result<void>::Ok();
}

Result<void> Debugger::LiftAll() {
  for (auto& [addr, bp] : breakpoints_) {
    SVR4_RETURN_IF_ERROR(handle_->WriteMem(addr, &bp.saved_byte, 1));
  }
  return Result<void>::Ok();
}

Result<void> Debugger::WatchVariable(const std::string& symbol, uint32_t size, int wflags) {
  auto addr = Lookup(symbol);
  if (!addr.ok()) {
    return addr.error();
  }
  return handle_->SetWatch(PrWatch{*addr, size, wflags});
}

Result<void> Debugger::UnwatchVariable(const std::string& symbol) {
  auto addr = Lookup(symbol);
  if (!addr.ok()) {
    return addr.error();
  }
  return handle_->ClearWatch(*addr);
}

Result<void> Debugger::StepOverBreakpoint(uint32_t addr) {
  auto it = breakpoints_.find(addr);
  if (it == breakpoints_.end()) {
    return Result<void>::Ok();
  }
  // Restore the original instruction, single-step it, re-plant.
  SVR4_RETURN_IF_ERROR(handle_->WriteMem(addr, &it->second.saved_byte, 1));
  PrRun r;
  r.pr_flags = PRSTEP | PRCFAULT;
  SVR4_RETURN_IF_ERROR(handle_->Run(r));
  SVR4_RETURN_IF_ERROR(handle_->WaitStop());
  uint8_t bpt = kBreakpointByte;
  SVR4_RETURN_IF_ERROR(handle_->WriteMem(addr, &bpt, 1));
  // Consume the FLTTRACE stop's fault state; the caller decides how to
  // resume from here.
  SVR4_RETURN_IF_ERROR(handle_->ClearCurFault());
  return Result<void>::Ok();
}

Debugger::StopInfo Debugger::Classify(const PrStatus& st) {
  StopInfo info;
  info.status = st;
  info.what = st.pr_what;
  switch (st.pr_why) {
    case PR_FAULTED:
      if (st.pr_what == FLTBPT) {
        info.kind = StopInfo::kBreakpoint;
        info.addr = st.pr_reg.pc;
      } else if (st.pr_what == FLTWATCH) {
        info.kind = StopInfo::kWatchpoint;
        info.addr = st.pr_info.si_addr;
      } else {
        info.kind = StopInfo::kFault;
        info.addr = st.pr_info.si_addr;
      }
      break;
    case PR_SIGNALLED:
      info.kind = StopInfo::kSignal;
      break;
    case PR_SYSENTRY:
    case PR_SYSEXIT:
      info.kind = StopInfo::kSyscall;
      break;
    default:
      info.kind = StopInfo::kFault;
      break;
  }
  info.symbol = SymbolAt(info.addr ? info.addr : st.pr_reg.pc);
  return info;
}

Result<Debugger::StopInfo> Debugger::Continue() {
  if (!handle_) {
    return Errno::kESRCH;
  }
  for (;;) {
    // If we are parked on one of our breakpoints, step over it first.
    auto st0 = handle_->Status();
    if (st0.ok() && (st0->pr_flags & PR_ISTOP) && st0->pr_why == PR_FAULTED &&
        st0->pr_what == FLTBPT && breakpoints_.count(st0->pr_reg.pc)) {
      SVR4_RETURN_IF_ERROR(StepOverBreakpoint(st0->pr_reg.pc));
      auto after = handle_->Status();
      if (after.ok() && (after->pr_flags & PR_ISTOP)) {
        SVR4_RETURN_IF_ERROR(handle_->RunClearFault());
      }
    } else if (st0.ok() && (st0->pr_flags & PR_ISTOP)) {
      PrRun r;
      r.pr_flags = PRCFAULT;
      SVR4_RETURN_IF_ERROR(handle_->Run(r));
    }

    auto w = handle_->WaitStop();
    if (!w.ok()) {
      if (w.error() == Errno::kENOENT) {
        // The process exited (or was reaped). Report what we can find.
        StopInfo info;
        info.kind = StopInfo::kExited;
        Proc* p = kernel_->FindProc(handle_->pid());
        info.exit_status = p != nullptr ? p->exit_status : 0;
        return info;
      }
      return w.error();
    }
    auto st = handle_->Status();
    if (!st.ok()) {
      return st.error();
    }
    StopInfo info = Classify(*st);
    if (info.kind == StopInfo::kBreakpoint) {
      auto it = breakpoints_.find(info.addr);
      if (it != breakpoints_.end() && it->second.cond) {
        ++bp_evaluations_;
        if (!it->second.cond(*st)) {
          continue;  // condition false: resume transparently
        }
      }
    }
    return info;
  }
}

Result<PrStatus> Debugger::StepInstruction() {
  if (!handle_) {
    return Errno::kESRCH;
  }
  auto st0 = handle_->Status();
  if (st0.ok() && (st0->pr_flags & PR_ISTOP) && st0->pr_why == PR_FAULTED &&
      st0->pr_what == FLTBPT && breakpoints_.count(st0->pr_reg.pc)) {
    SVR4_RETURN_IF_ERROR(StepOverBreakpoint(st0->pr_reg.pc));
  } else {
    PrRun r;
    r.pr_flags = PRSTEP | PRCFAULT;
    SVR4_RETURN_IF_ERROR(handle_->Run(r));
    SVR4_RETURN_IF_ERROR(handle_->WaitStop());
    SVR4_RETURN_IF_ERROR(handle_->ClearCurFault());
  }
  return handle_->Status();
}

Result<uint32_t> Debugger::InjectSyscall(int num, const std::vector<uint32_t>& args) {
  if (!handle_) {
    return Errno::kESRCH;
  }
  if (args.size() > 6) {
    return Errno::kE2BIG;
  }
  auto st0 = handle_->Status();
  if (!st0.ok()) {
    return st0.error();
  }
  if (!(st0->pr_flags & PR_ISTOP)) {
    return Errno::kEBUSY;  // must be stopped on an event of interest
  }
  const Regs saved_regs = st0->pr_reg;
  uint32_t pc = saved_regs.pc;

  // Save the instruction byte under pc and plant a SYS there. The write is
  // copy-on-write; neither the executable file nor other processes see it.
  uint8_t saved_byte = 0;
  auto n = handle_->ReadMem(pc, &saved_byte, 1);
  if (!n.ok() || *n != 1) {
    return Errno::kEFAULT;
  }
  uint8_t sys_op = kOpSys;
  if (!handle_->WriteMem(pc, &sys_op, 1).ok()) {
    return Errno::kEFAULT;
  }

  // Arrange to stop on exit from the injected call, preserving the user's
  // traced sets around the operation.
  auto saved_exit = handle_->GetSysExit();
  auto saved_entry = handle_->GetSysEntry();
  SysSet exit_set;
  exit_set.Add(num);
  (void)handle_->SetSysExit(exit_set);
  (void)handle_->SetSysEntry(SysSet{});

  Regs call_regs = saved_regs;
  call_regs.r[0] = static_cast<uint32_t>(num);
  for (size_t i = 0; i < args.size(); ++i) {
    call_regs.r[i + 1] = args[i];
  }
  (void)handle_->SetRegs(call_regs);

  Errno err = Errno::kEIO;
  uint32_t value = 0;
  bool succeeded = false;
  PrRun r;
  r.pr_flags = PRCFAULT;  // we may be parked on a breakpoint fault
  if (handle_->Run(r).ok() && handle_->WaitStop().ok()) {
    auto st = handle_->Status();
    if (st.ok() && st->pr_why == PR_SYSEXIT && st->pr_what == num) {
      if (st->pr_reg.psr & kPsrC) {
        err = st->pr_reg.r[0] != 0 ? static_cast<Errno>(st->pr_reg.r[0]) : Errno::kEIO;
      } else {
        value = st->pr_reg.r[0];
        succeeded = true;
      }
    }
  }

  // Put the world back: original instruction byte, registers, traced sets.
  // The process is still stopped (on the syscall exit), as required.
  (void)handle_->WriteMem(pc, &saved_byte, 1);
  (void)handle_->SetRegs(saved_regs);
  if (saved_exit.ok()) {
    (void)handle_->SetSysExit(*saved_exit);
  }
  if (saved_entry.ok()) {
    (void)handle_->SetSysEntry(*saved_entry);
  }
  if (!succeeded) {
    return err;
  }
  return value;
}

Result<uint32_t> Debugger::ReadWord(const std::string& symbol, uint32_t addr) {
  if (!symbol.empty()) {
    auto a = Lookup(symbol);
    if (!a.ok()) {
      return a.error();
    }
    addr = *a;
  }
  uint32_t value = 0;
  auto n = handle_->ReadMem(addr, &value, 4);
  if (!n.ok() || *n != 4) {
    return Errno::kEFAULT;
  }
  return value;
}

Result<void> Debugger::WriteWord(const std::string& symbol, uint32_t value, uint32_t addr) {
  if (!symbol.empty()) {
    auto a = Lookup(symbol);
    if (!a.ok()) {
      return a.error();
    }
    addr = *a;
  }
  auto n = handle_->WriteMem(addr, &value, 4);
  if (!n.ok() || *n != 4) {
    return Errno::kEFAULT;
  }
  return Result<void>::Ok();
}

Result<std::string> Debugger::Disassemble(uint32_t addr, int count) {
  if (!handle_) {
    return Errno::kESRCH;
  }
  std::string out;
  uint32_t pc = addr;
  for (int i = 0; i < count; ++i) {
    uint8_t bytes[10] = {};
    auto n = handle_->ReadMem(pc, bytes, sizeof(bytes));
    if (!n.ok() || *n == 0) {
      break;
    }
    // Show the real instruction where we planted breakpoints.
    auto bp = breakpoints_.find(pc);
    if (bp != breakpoints_.end()) {
      bytes[0] = bp->second.saved_byte;
    }
    auto d = DisassembleOne(std::span<const uint8_t>(bytes, static_cast<size_t>(*n)), pc);
    char line[96];
    std::snprintf(line, sizeof(line), "%-24s %08x  %s\n", SymbolAt(pc).c_str(), pc,
                  d.mnemonic.c_str());
    out += line;
    pc += static_cast<uint32_t>(d.length);
  }
  return out;
}

}  // namespace svr4
