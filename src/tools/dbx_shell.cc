#include "svr4proc/tools/dbx_shell.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "svr4proc/kernel/syscall.h"
#include "svr4proc/tools/truss.h"

namespace svr4 {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) {
    out.push_back(tok);
  }
  return out;
}

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%x", v);
  return buf;
}

bool ParseNumber(const std::string& tok, uint32_t* out) {
  if (tok.empty()) {
    return false;
  }
  char* end = nullptr;
  unsigned long v = std::strtoul(tok.c_str(), &end, 0);
  if (end == tok.c_str() || *end != '\0') {
    return false;
  }
  *out = static_cast<uint32_t>(v);
  return true;
}

// Parses "rN" into a register index (also pc/sp/fp).
bool ParseRegName(const std::string& tok, int* idx) {
  if (tok == "pc") {
    *idx = 16;
    return true;
  }
  if (tok == "sp") {
    *idx = kRegSp;
    return true;
  }
  if (tok == "fp") {
    *idx = kRegFp;
    return true;
  }
  if (tok.size() >= 2 && tok[0] == 'r') {
    int v = std::atoi(tok.c_str() + 1);
    if (v >= 0 && v < kNumRegs) {
      *idx = v;
      return true;
    }
  }
  return false;
}

}  // namespace

Result<uint32_t> DbxShell::ResolveAddr(const std::string& tok) {
  uint32_t v;
  if (ParseNumber(tok, &v)) {
    return v;
  }
  return dbg_.Lookup(tok);
}

std::string DbxShell::CmdStopAt(const std::vector<std::string>& args) {
  // stop at <where> [if r<N> <op> <val>]
  if (args.size() < 3 || args[1] != "at") {
    return "usage: stop at <addr> [if rN <op> <val>]\n";
  }
  auto addr = ResolveAddr(args[2]);
  if (!addr.ok()) {
    return "no such symbol: " + args[2] + "\n";
  }
  if (args.size() == 3) {
    auto r = dbg_.SetBreakpoint(*addr);
    return r.ok() ? "breakpoint set at " + dbg_.SymbolAt(*addr) + "\n"
                  : std::string(ErrnoName(r.error())) + "\n";
  }
  if (args.size() != 7 || args[3] != "if") {
    return "usage: stop at <addr> if rN <op> <val>\n";
  }
  int reg;
  uint32_t val;
  if (!ParseRegName(args[4], &reg) || !ParseNumber(args[6], &val)) {
    return "bad condition\n";
  }
  std::string op = args[5];
  auto cond = [reg, op, val](const PrStatus& st) {
    uint32_t r = reg == 16 ? st.pr_reg.pc : st.pr_reg.r[reg];
    if (op == "==") {
      return r == val;
    }
    if (op == "!=") {
      return r != val;
    }
    if (op == "<") {
      return r < val;
    }
    if (op == ">") {
      return r > val;
    }
    if (op == "<=") {
      return r <= val;
    }
    if (op == ">=") {
      return r >= val;
    }
    return false;
  };
  auto r = dbg_.SetConditionalBreakpoint(*addr, cond);
  return r.ok() ? "conditional breakpoint set at " + dbg_.SymbolAt(*addr) + "\n"
                : std::string(ErrnoName(r.error())) + "\n";
}

std::string DbxShell::CmdCont() {
  auto stop = dbg_.Continue();
  if (!stop.ok()) {
    return std::string(ErrnoName(stop.error())) + "\n";
  }
  char buf[160];
  switch (stop->kind) {
    case Debugger::StopInfo::kBreakpoint:
      std::snprintf(buf, sizeof(buf), "breakpoint at %s (%s)\n", stop->symbol.c_str(),
                    Hex(stop->addr).c_str());
      break;
    case Debugger::StopInfo::kWatchpoint:
      std::snprintf(buf, sizeof(buf), "watchpoint: %s (%s) about to be written\n",
                    stop->symbol.c_str(), Hex(stop->addr).c_str());
      break;
    case Debugger::StopInfo::kSignal:
      std::snprintf(buf, sizeof(buf), "signal %s\n",
                    std::string(SignalName(stop->what)).c_str());
      break;
    case Debugger::StopInfo::kFault:
      std::snprintf(buf, sizeof(buf), "fault %s at %s\n",
                    std::string(FaultName(stop->what)).c_str(),
                    Hex(stop->status.pr_info.si_addr).c_str());
      break;
    case Debugger::StopInfo::kSyscall:
      std::snprintf(buf, sizeof(buf), "stopped in syscall %s\n",
                    std::string(SyscallName(stop->what)).c_str());
      break;
    case Debugger::StopInfo::kExited:
      std::snprintf(buf, sizeof(buf), "process exited (status 0x%x)\n",
                    static_cast<unsigned>(stop->exit_status));
      break;
  }
  return buf;
}

std::string DbxShell::CmdStep(const std::vector<std::string>& args) {
  int n = 1;
  if (args.size() > 1) {
    n = std::atoi(args[1].c_str());
  }
  std::string out;
  for (int i = 0; i < n; ++i) {
    auto st = dbg_.StepInstruction();
    if (!st.ok()) {
      return out + std::string(ErrnoName(st.error())) + "\n";
    }
    out += "stopped at " + dbg_.SymbolAt(st->pr_reg.pc) + " (" + Hex(st->pr_reg.pc) + ")\n";
  }
  return out;
}

std::string DbxShell::CmdRegs() {
  auto regs = dbg_.handle().GetRegs();
  if (!regs.ok()) {
    return std::string(ErrnoName(regs.error())) + "\n";
  }
  std::string out;
  char buf[64];
  for (int i = 0; i < kNumRegs; ++i) {
    std::snprintf(buf, sizeof(buf), "r%-2d %08x%s", i, regs->r[i],
                  (i % 4 == 3) ? "\n" : "  ");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "pc  %08x  psr %08x\n", regs->pc, regs->psr);
  out += buf;
  return out;
}

std::string DbxShell::CmdPrint(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return "usage: print <sym|addr>\n";
  }
  auto addr = ResolveAddr(args[1]);
  if (!addr.ok()) {
    return "no such symbol: " + args[1] + "\n";
  }
  auto v = dbg_.ReadWord("", *addr);
  if (!v.ok()) {
    return std::string(ErrnoName(v.error())) + "\n";
  }
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s = %u (%s)\n", args[1].c_str(), *v, Hex(*v).c_str());
  return buf;
}

std::string DbxShell::CmdAssign(const std::vector<std::string>& args) {
  // assign <sym> = <value>
  if (args.size() != 4 || args[2] != "=") {
    return "usage: assign <sym> = <value>\n";
  }
  auto addr = ResolveAddr(args[1]);
  uint32_t val;
  if (!addr.ok() || !ParseNumber(args[3], &val)) {
    return "bad assignment\n";
  }
  auto r = dbg_.WriteWord("", val, *addr);
  return r.ok() ? args[1] + " = " + args[3] + "\n"
                : std::string(ErrnoName(r.error())) + "\n";
}

std::string DbxShell::CmdDis(const std::vector<std::string>& args) {
  uint32_t addr = 0;
  int count = 5;
  if (args.size() >= 2) {
    auto a = ResolveAddr(args[1]);
    if (!a.ok()) {
      return "no such symbol: " + args[1] + "\n";
    }
    addr = *a;
  } else {
    auto st = dbg_.handle().Status();
    if (!st.ok()) {
      return std::string(ErrnoName(st.error())) + "\n";
    }
    addr = st->pr_reg.pc;
  }
  if (args.size() >= 3) {
    count = std::atoi(args[2].c_str());
  }
  auto out = dbg_.Disassemble(addr, count);
  return out.ok() ? *out : std::string(ErrnoName(out.error())) + "\n";
}

std::vector<uint32_t> DbxShell::Backtrace(int max_frames) {
  std::vector<uint32_t> frames;
  auto st = dbg_.handle().Status();
  if (!st.ok()) {
    return frames;
  }
  frames.push_back(st->pr_reg.pc);
  // Scan the stack for words that point into executable mappings: the
  // classic frame-pointer-less heuristic.
  auto maps = dbg_.handle().GetMap();
  if (!maps.ok()) {
    return frames;
  }
  auto executable = [&](uint32_t a) {
    for (const auto& m : *maps) {
      if ((m.pr_mflags & MA_EXEC) && a >= m.pr_vaddr && a < m.pr_vaddr + m.pr_size) {
        return true;
      }
    }
    return false;
  };
  uint32_t sp = st->pr_reg.sp();
  for (int i = 0; i < 256 && static_cast<int>(frames.size()) < max_frames; ++i) {
    uint32_t word = 0;
    auto n = dbg_.handle().ReadMem(sp + static_cast<uint32_t>(i) * 4, &word, 4);
    if (!n.ok() || *n != 4) {
      break;
    }
    if (executable(word)) {
      frames.push_back(word);
    }
  }
  return frames;
}

std::string DbxShell::CmdWhere() {
  auto frames = Backtrace();
  if (frames.empty()) {
    return "no stack\n";
  }
  std::string out;
  for (size_t i = 0; i < frames.size(); ++i) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "#%zu  %s (%s)\n", i,
                  dbg_.SymbolAt(frames[i]).c_str(), Hex(frames[i]).c_str());
    out += buf;
  }
  return out;
}

std::string DbxShell::CmdStatus() {
  auto st = dbg_.handle().Status();
  if (!st.ok()) {
    return std::string(ErrnoName(st.error())) + "\n";
  }
  char buf[200];
  std::string why = st->pr_flags & PR_STOPPED
                        ? std::string(PrWhyName(st->pr_why))
                        : "running";
  std::snprintf(buf, sizeof(buf),
                "pid %d  %s  pc=%s  cursig=%d  nlwp=%u  utime=%llu\n", st->pr_pid,
                why.c_str(), Hex(st->pr_reg.pc).c_str(), st->pr_cursig, st->pr_nlwp,
                static_cast<unsigned long long>(st->pr_utime));
  return buf;
}

std::string DbxShell::CmdAudit() {
  auto a = dbg_.handle().Audit();
  if (!a.ok()) {
    return std::string(ErrnoName(a.error())) + "\n";
  }
  return FormatCtlAudit(*a);
}

std::string DbxShell::CmdSyscall(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return "usage: syscall <name> [args...]\n";
  }
  int num = SyscallByName(args[1]);
  if (num == 0) {
    return "unknown syscall: " + args[1] + "\n";
  }
  std::vector<uint32_t> sysargs;
  for (size_t i = 2; i < args.size(); ++i) {
    uint32_t v;
    if (ParseNumber(args[i], &v)) {
      sysargs.push_back(v);
    } else {
      auto a = ResolveAddr(args[i]);
      if (!a.ok()) {
        return "bad argument: " + args[i] + "\n";
      }
      sysargs.push_back(*a);
    }
  }
  auto r = dbg_.InjectSyscall(num, sysargs);
  if (!r.ok()) {
    return args[1] + " failed: " + std::string(ErrnoName(r.error())) + "\n";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s = %u\n", args[1].c_str(), *r);
  return buf;
}

std::string DbxShell::Command(const std::string& line) {
  auto args = Tokenize(line);
  if (args.empty()) {
    return "";
  }
  const std::string& cmd = args[0];
  if (!dbg_.attached()) {
    return "not attached\n";
  }
  if (cmd == "stop") {
    return CmdStopAt(args);
  }
  if (cmd == "watch") {
    if (args.size() != 2) {
      return "usage: watch <sym>\n";
    }
    auto r = dbg_.WatchVariable(args[1], 4, WA_WRITE);
    return r.ok() ? "watchpoint on " + args[1] + "\n"
                  : std::string(ErrnoName(r.error())) + "\n";
  }
  if (cmd == "unwatch") {
    if (args.size() != 2) {
      return "usage: unwatch <sym>\n";
    }
    auto r = dbg_.UnwatchVariable(args[1]);
    return r.ok() ? "" : std::string(ErrnoName(r.error())) + "\n";
  }
  if (cmd == "delete") {
    if (args.size() != 2) {
      return "usage: delete <sym|addr>\n";
    }
    auto addr = ResolveAddr(args[1]);
    if (!addr.ok()) {
      return "no such symbol\n";
    }
    auto r = dbg_.ClearBreakpoint(*addr);
    return r.ok() ? "" : std::string(ErrnoName(r.error())) + "\n";
  }
  if (cmd == "cont" || cmd == "run") {
    return CmdCont();
  }
  if (cmd == "step") {
    return CmdStep(args);
  }
  if (cmd == "regs") {
    return CmdRegs();
  }
  if (cmd == "print") {
    return CmdPrint(args);
  }
  if (cmd == "assign") {
    return CmdAssign(args);
  }
  if (cmd == "dis") {
    return CmdDis(args);
  }
  if (cmd == "where") {
    return CmdWhere();
  }
  if (cmd == "status") {
    return CmdStatus();
  }
  if (cmd == "audit") {
    return CmdAudit();
  }
  if (cmd == "syscall") {
    return CmdSyscall(args);
  }
  if (cmd == "kill") {
    (void)dbg_.handle().Kill(SIGKILL);
    auto st = dbg_.handle().Status();
    if (st.ok() && (st->pr_flags & PR_ISTOP)) {
      (void)dbg_.handle().RunClearSig();
    }
    return "killed\n";
  }
  if (cmd == "detach") {
    (void)dbg_.Detach();
    return "detached\n";
  }
  return "unknown command: " + cmd + "\n";
}

std::string DbxShell::Script(const std::string& script) {
  std::string transcript;
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    transcript += "dbx> " + line + "\n";
    transcript += Command(line);
  }
  return transcript;
}

}  // namespace svr4
