#include "svr4proc/tools/truss.h"

#include <cstdio>

#include "svr4proc/kernel/syscall.h"

namespace svr4 {
namespace {

std::string FormatSyscall(const PrStatus& st) {
  std::string line(SyscallName(st.pr_syscall));
  line += "(";
  int nargs = st.pr_nsysarg;
  for (int i = 0; i < nargs; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%x", st.pr_sysarg[i]);
    if (i) {
      line += ", ";
    }
    line += buf;
  }
  line += ")";
  // The return value was stored before the exit stop.
  char rv[48];
  if (st.pr_reg.psr & kPsrC) {
    std::snprintf(rv, sizeof(rv), " Err#%u %s", st.pr_reg.r[0],
                  std::string(ErrnoName(static_cast<Errno>(st.pr_reg.r[0]))).c_str());
  } else {
    std::snprintf(rv, sizeof(rv), " = %u", st.pr_reg.r[0]);
  }
  line += rv;
  return line;
}

}  // namespace

std::string FormatCtlAudit(const PrCtlAudit& a) {
  std::string out;
  char line[96];
  std::snprintf(line, sizeof(line), "ctl audit: %llu total, %u retained\n",
                static_cast<unsigned long long>(a.pr_total), a.pr_n);
  out += line;
  uint64_t first = a.pr_total - a.pr_n;  // sequence number of pr_rec[0]
  for (uint32_t i = 0; i < a.pr_n; ++i) {
    const CtlAuditRec& r = a.pr_rec[i];
    std::snprintf(line, sizeof(line), "%6llu: %-10s caller=%d lwp=%d tick=%llu",
                  static_cast<unsigned long long>(first + i), r.pr_op, r.pr_caller,
                  r.pr_lwpid, static_cast<unsigned long long>(r.pr_tick));
    out += line;
    if (r.pr_errno != 0) {
      out += " Err#";
      out += std::to_string(r.pr_errno);
      out += " ";
      out += ErrnoName(static_cast<Errno>(r.pr_errno));
    }
    out += "\n";
  }
  return out;
}

Truss::Truss(Kernel& k, Proc* caller, TrussOptions opts)
    : owned_io_(std::make_unique<LocalProcIo>(k, caller)),
      io_(owned_io_.get()),
      opts_(opts) {}

Truss::Truss(ProcIo& io, TrussOptions opts) : io_(&io), opts_(opts) {}

Result<void> Truss::Arm(ProcHandle& h) {
  // Report syscalls at exit (the line carries arguments and result), every
  // signal, and every machine fault. Calls that never return (exit) are
  // reported at entry instead. With -t, only the selected calls are traced.
  SysSet exits = opts_.filter.Empty() ? SysSet::Full() : opts_.filter;
  if (opts_.follow_fork) {
    exits.Add(SYS_fork);
    exits.Add(SYS_vfork);
  }
  SVR4_RETURN_IF_ERROR(h.SetSysExit(exits));
  SysSet entries;
  if (opts_.filter.Empty() || opts_.filter.Has(SYS_exit)) {
    entries.Add(SYS_exit);
  }
  SVR4_RETURN_IF_ERROR(h.SetSysEntry(entries));
  SVR4_RETURN_IF_ERROR(h.SetSigTrace(SigSet::Full()));
  FltSet faults = FltSet::Full();
  faults.Remove(FLTPAGE);  // resolved internally; not an event
  SVR4_RETURN_IF_ERROR(h.SetFltTrace(faults));
  if (opts_.follow_fork) {
    SVR4_RETURN_IF_ERROR(h.SetInheritOnFork(true));
  }
  // If truss dies, its targets must keep running.
  SVR4_RETURN_IF_ERROR(h.SetRunOnLastClose(true));
  return Result<void>::Ok();
}

void Truss::Emit(Pid pid, const std::string& line) {
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "%5d: ", pid);
  report_ += prefix;
  report_ += line;
  report_ += '\n';
}

Result<void> Truss::HandleStop(ProcHandle& h) {
  auto st = h.Status();
  if (!st.ok()) {
    return st.error();
  }
  ++events_;
  switch (st->pr_why) {
    case PR_SYSEXIT: {
      ++counts_[st->pr_what];
      if (!opts_.counts_only) {
        Emit(h.pid(), FormatSyscall(*st));
      }
      if (opts_.follow_fork &&
          (st->pr_what == SYS_fork || st->pr_what == SYS_vfork) &&
          !(st->pr_reg.psr & kPsrC) && st->pr_reg.r[0] != 0) {
        Pid child = static_cast<Pid>(st->pr_reg.r[0]);
        if (!tracees_.count(child)) {
          auto ch = ProcHandle::Grab(*io_, child);
          if (ch.ok()) {
            // The child inherited the tracing flags (inherit-on-fork); it is
            // stopped at its own exit from fork.
            tracees_.emplace(child, std::move(*ch));
          }
        }
      }
      return h.Run();
    }
    case PR_SYSENTRY: {
      ++counts_[st->pr_what];
      if (!opts_.counts_only) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s(0x%x)",
                      std::string(SyscallName(st->pr_what)).c_str(), st->pr_sysarg[0]);
        Emit(h.pid(), buf);
      }
      return h.Run();
    }
    case PR_SIGNALLED: {
      if (!opts_.counts_only) {
        Emit(h.pid(), "    Received signal " +
                          std::string(SignalName(st->pr_what)));
      }
      return h.Run();  // without clearing: the signal takes its course
    }
    case PR_FAULTED: {
      if (!opts_.counts_only) {
        Emit(h.pid(), "    Incurred fault " + std::string(FaultName(st->pr_what)));
      }
      return h.Run();  // uncleared fault converts to its signal
    }
    default:
      return h.Run();
  }
}

Result<void> Truss::Trace(Pid pid) {
  {
    auto h = ProcHandle::Grab(*io_, pid);
    if (!h.ok()) {
      return h.error();
    }
    SVR4_RETURN_IF_ERROR(h->Stop());
    SVR4_RETURN_IF_ERROR(Arm(*h));
    if (opts_.counts_only) {
      // -c: arm the metrics registry (if not already on) and take the
      // baseline through PIOCKSTAT, so the summary table reports registry
      // deltas over exactly the traced window. Arming needs the kernel
      // object; over a remote transport the registry must already be on, or
      // the table falls back to truss's own event counts.
      Kernel* lk = io_->local_kernel();
      if (lk != nullptr && !lk->ktrace().metrics_on()) {
        lk->SetTracing(lk->ktrace().ring_on(), true);
      }
      auto base = h->Kstat();
      if (base.ok() && (lk != nullptr || base->pr_metrics_on)) {
        kstat_base_ = *base;
        kstat_valid_ = true;
      }
    }
    SVR4_RETURN_IF_ERROR(h->Run());
    tracees_.emplace(pid, std::move(*h));
  }

  while (!tracees_.empty() && events_ < opts_.max_events) {
    // Multiplex over all tracees with poll(2) — the proposed extension that
    // makes multiprocess tracing natural.
    std::vector<PollFd> pfds;
    std::vector<Pid> pids;
    for (auto& [tp, h] : tracees_) {
      PollFd pf;
      pf.fd = h.fd();
      pf.events = POLLPRI;
      pfds.push_back(pf);
      pids.push_back(tp);
    }
    auto n = io_->PollFds(pfds, 1'000'000'000);
    if (!n.ok()) {
      return n.error();
    }
    if (*n == 0) {
      break;  // simulation idle: all targets wedged or gone
    }
    for (size_t i = 0; i < pfds.size(); ++i) {
      Pid tp = pids[i];
      if (pfds[i].revents & (POLLHUP | POLLNVAL)) {
        if (!opts_.counts_only) {
          Emit(tp, "    *** process exited ***");
        }
        tracees_.erase(tp);
        continue;
      }
      if (pfds[i].revents & POLLPRI) {
        auto it = tracees_.find(tp);
        if (it == tracees_.end()) {
          continue;
        }
        auto r = HandleStop(it->second);
        if (!r.ok() && r.error() == Errno::kENOENT) {
          tracees_.erase(tp);
        }
      }
    }
  }
  if (kstat_valid_) {
    if (Kernel* lk = io_->local_kernel()) {
      kstat_end_ = BuildPrKstat(*lk);
    } else if (auto h = ProcHandle::Grab(*io_, 1, O_RDONLY); h.ok()) {
      // Remote: the closing snapshot rides a PIOCKSTAT on init's entry
      // (PIOCKSTAT is kernel-wide; any descriptor serves).
      auto end = h->Kstat();
      if (end.ok()) {
        kstat_end_ = *end;
      } else {
        kstat_valid_ = false;
      }
    } else {
      kstat_valid_ = false;
    }
  }
  return Result<void>::Ok();
}

Result<void> Truss::TraceCommand(const std::string& path,
                                 const std::vector<std::string>& argv,
                                 const Creds& creds) {
  auto pid = io_->Spawn(path, argv, creds);
  if (!pid.ok()) {
    return pid.error();
  }
  // The process has not executed an instruction yet; Trace() arms it while
  // it is still stopped at its first issig().
  return Trace(*pid);
}

std::string Truss::CountsTable() const {
  if (!kstat_valid_) {
    // Registry unavailable: truss's own event counts, as before.
    std::string out = "syscall               seen calls\n";
    for (const auto& [num, count] : counts_) {
      char line[64];
      std::snprintf(line, sizeof(line), "%-20s %10llu\n",
                    std::string(SyscallName(num)).c_str(),
                    static_cast<unsigned long long>(count));
      out += line;
    }
    return out;
  }
  std::string out =
      "syscall                   calls     errors  avg(ticks)  max(ticks)\n";
  uint64_t tcalls = 0, terrs = 0, tsum = 0;
  for (const auto& [num, count] : counts_) {
    (void)count;
    if (num < 0 || num >= kPrKstatSyscalls) {
      continue;
    }
    const PrKstatSys& b = kstat_base_.pr_sys[num];
    const PrKstatSys& e = kstat_end_.pr_sys[num];
    uint64_t calls = e.pr_calls - b.pr_calls;
    uint64_t errors = e.pr_errors - b.pr_errors;
    uint64_t latsum = e.pr_latsum - b.pr_latsum;
    // The max column is a trace-lifetime watermark, not a windowed delta;
    // report it only if this window contributed calls.
    uint64_t latmax = calls != 0 ? e.pr_latmax : 0;
    double avg = calls != 0 ? static_cast<double>(latsum) / static_cast<double>(calls)
                            : 0.0;
    char line[112];
    std::snprintf(line, sizeof(line), "%-20s %10llu %10llu %11.1f %11llu\n",
                  std::string(SyscallName(num)).c_str(),
                  static_cast<unsigned long long>(calls),
                  static_cast<unsigned long long>(errors), avg,
                  static_cast<unsigned long long>(latmax));
    out += line;
    tcalls += calls;
    terrs += errors;
    tsum += latsum;
  }
  char totals[112];
  std::snprintf(totals, sizeof(totals), "%-20s %10llu %10llu %11.1f\n", "total",
                static_cast<unsigned long long>(tcalls),
                static_cast<unsigned long long>(terrs),
                tcalls != 0 ? static_cast<double>(tsum) / static_cast<double>(tcalls)
                            : 0.0);
  out += totals;

  // Span summary: where the traced window's time went besides executing —
  // stop-request convergence, run-queue waits, and steal migrations, as
  // registry deltas (PIOCKSTAT carries kernel-wide aggregates of the
  // per-CPU histograms, so this table is transport-independent too).
  struct SpanRow {
    const char* name;
    uint64_t count, sum, max;
  };
  const SpanRow rows[] = {
      {"stop_wait", kstat_end_.pr_stop_wait_count - kstat_base_.pr_stop_wait_count,
       kstat_end_.pr_stop_wait_sum - kstat_base_.pr_stop_wait_sum,
       kstat_end_.pr_stop_wait_max},
      {"runq_wait", kstat_end_.pr_runq_wait_count - kstat_base_.pr_runq_wait_count,
       kstat_end_.pr_runq_wait_sum - kstat_base_.pr_runq_wait_sum,
       kstat_end_.pr_runq_wait_max},
      {"steal", kstat_end_.pr_steal_count - kstat_base_.pr_steal_count,
       kstat_end_.pr_steal_sum - kstat_base_.pr_steal_sum,
       kstat_end_.pr_steal_max},
  };
  out += "\nwait                      count             avg(ticks)  max(ticks)\n";
  for (const SpanRow& r : rows) {
    double avg =
        r.count != 0 ? static_cast<double>(r.sum) / static_cast<double>(r.count) : 0.0;
    // Like latmax above: the max is a lifetime watermark, reported only
    // when this window contributed samples.
    char line[112];
    std::snprintf(line, sizeof(line), "%-20s %10llu %22.1f %11llu\n", r.name,
                  static_cast<unsigned long long>(r.count), avg,
                  static_cast<unsigned long long>(r.count != 0 ? r.max : 0));
    out += line;
  }
  return out;
}

}  // namespace svr4
