#include "svr4proc/tools/sim.h"

#include "svr4proc/kernel/syscall.h"
#include "svr4proc/procfs/procfs.h"
#include "svr4proc/procfs/procfs2.h"

namespace svr4 {

Sim::Sim() : kernel_(std::make_unique<Kernel>()) {
  (void)MountProcFs(*kernel_);
  (void)MountProcFs2(*kernel_);
  controller_ = kernel_->CreateNativeProc(Creds::Root(), "controller");
}

Assembler Sim::NewAssembler(AsmOptions opts) const {
  Assembler as(opts);
  DefineSyscallSymbols(as);
  return as;
}

Result<Aout> Sim::InstallProgram(const std::string& path, const std::string& source,
                                 uint32_t mode, Uid uid, Gid gid) {
  Assembler as = NewAssembler();
  auto image = as.Assemble(source);
  if (!image.ok()) {
    return image;
  }
  SVR4_RETURN_IF_ERROR(kernel_->InstallAout(path, *image, mode, uid, gid));
  return image;
}

Result<Aout> Sim::InstallLibrary(const std::string& name, const std::string& source,
                                 uint32_t lib_base) {
  Assembler as = NewAssembler(AsmOptions{.text_base = lib_base, .data_align = 0x8000});
  auto image = as.Assemble(source);
  if (!image.ok()) {
    return image;
  }
  SVR4_RETURN_IF_ERROR(kernel_->InstallAout("/lib/" + name, *image, 0755, 0, 0));
  return image;
}

Result<Pid> Sim::Start(const std::string& path, const std::vector<std::string>& argv,
                       const Creds& creds) {
  return kernel_->Spawn(path, argv.empty() ? std::vector<std::string>{path} : argv, creds);
}

Proc* Sim::NewController(const Creds& creds, const std::string& name) {
  return kernel_->CreateNativeProc(creds, name);
}

}  // namespace svr4
