#include "svr4proc/fs/vnode.h"

#include <cstring>

namespace svr4 {

bool CredsPermit(const Creds& cr, Uid file_uid, Gid file_gid, uint32_t mode, uint32_t want) {
  if (cr.IsSuper()) {
    return true;
  }
  uint32_t bits;
  if (cr.euid == file_uid) {
    bits = (mode >> 6) & 7;
  } else if (cr.InGroup(file_gid)) {
    bits = (mode >> 3) & 7;
  } else {
    bits = mode & 7;
  }
  return (bits & want) == want;
}

Result<void> Vnode::Open(OpenFile& of, const Creds& cr, Proc* caller) {
  (void)of;
  (void)cr;
  (void)caller;
  return Result<void>::Ok();
}

void Vnode::Close(OpenFile& of) { (void)of; }

Result<int64_t> Vnode::Read(OpenFile&, uint64_t, std::span<uint8_t>) {
  return Errno::kEINVAL;
}

Result<int64_t> Vnode::Write(OpenFile&, uint64_t, std::span<const uint8_t>) {
  return Errno::kEINVAL;
}

Result<int32_t> Vnode::Ioctl(OpenFile&, Proc*, uint32_t, void*) { return Errno::kENOTTY; }

int Vnode::Poll(OpenFile&) { return POLLIN | POLLOUT; }

Result<VnodePtr> Vnode::Lookup(const std::string&) { return Errno::kENOTDIR; }

Result<VnodePtr> Vnode::Create(const std::string&, const VAttr&) { return Errno::kENOTDIR; }

Result<VnodePtr> Vnode::Mkdir(const std::string&, const VAttr&) { return Errno::kENOTDIR; }

Result<void> Vnode::Remove(const std::string&) { return Errno::kENOTDIR; }

Result<std::vector<DirEnt>> Vnode::Readdir() { return Errno::kENOTDIR; }

Result<size_t> Vnode::ReaddirChunk(uint64_t* cookie, size_t max,
                                   std::vector<DirEnt>* out) {
  // Generic fallback: materialize and slice by index. Correct for any
  // directory; fstypes with huge or churning directories override this with
  // a real cursor (the /proc roots key the cookie on the next pid).
  auto all = Readdir();
  if (!all.ok()) {
    return all.error();
  }
  size_t n = 0;
  for (; *cookie < all->size() && n < max; ++*cookie, ++n) {
    out->push_back(std::move((*all)[*cookie]));
  }
  return n;
}

Result<std::shared_ptr<VmObject>> Vnode::GetVmObject() { return Errno::kENODEV; }

Result<PagePtr> FileVmObject::GetPage(uint64_t page_index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(page_index);
  if (it != cache_.end()) {
    return it->second;
  }
  auto page = std::make_shared<VmPage>();
  OpenFile of;  // kernel-internal transient handle
  of.vp = file_;
  auto n = file_->Read(of, page_index * kPageSize,
                       std::span<uint8_t>(page->bytes.data(), kPageSize));
  if (!n.ok()) {
    return n.error();
  }
  // Short reads leave the page zero-filled past EOF, matching demand paging
  // of the final partial page of a file.
  cache_.emplace(page_index, page);
  return page;
}

std::string FileVmObject::Name() const { return std::string(); }

}  // namespace svr4
