#include "svr4proc/fs/vfs.h"

#include "svr4proc/fs/memfs.h"
#include "svr4proc/kernel/faults.h"

namespace svr4 {
namespace {

// Splits "/a/b/c" into components, ignoring duplicate slashes.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) {
        parts.push_back(std::move(cur));
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    parts.push_back(std::move(cur));
  }
  return parts;
}

}  // namespace

Vfs::Vfs() {
  VAttr root_attr;
  root_attr.type = VType::kDir;
  root_attr.mode = 0755;
  root_ = std::make_shared<MemDir>(root_attr);
}

VnodePtr Vfs::CrossMounts(VnodePtr vp) const {
  // A vnode may be covered by at most one mount in this implementation;
  // loop in case a mount root is itself covered.
  while (true) {
    auto it = mounts_.find(vp.get());
    if (it == mounts_.end()) {
      return vp;
    }
    vp = it->second;
  }
}

Result<VnodePtr> Vfs::Resolve(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Errno::kEINVAL;
  }
  if (finj_ && finj_->Fire(FaultSite::kVfsResolve)) {
    return Errno::kEIO;
  }
  VnodePtr cur = CrossMounts(root_);
  for (const auto& part : SplitPath(path)) {
    if (part == ".") {
      continue;
    }
    auto next = cur->Lookup(part);
    if (!next.ok()) {
      return next.error();
    }
    cur = CrossMounts(*next);
  }
  return cur;
}

Result<VnodePtr> Vfs::ResolveParent(const std::string& path, std::string* leaf) {
  if (path.empty() || path[0] != '/') {
    return Errno::kEINVAL;
  }
  auto parts = SplitPath(path);
  if (parts.empty()) {
    return Errno::kEINVAL;
  }
  *leaf = parts.back();
  parts.pop_back();
  VnodePtr cur = CrossMounts(root_);
  for (const auto& part : parts) {
    auto next = cur->Lookup(part);
    if (!next.ok()) {
      return next.error();
    }
    cur = CrossMounts(*next);
  }
  if (cur->type() != VType::kDir) {
    return Errno::kENOTDIR;
  }
  return cur;
}

Result<void> Vfs::Mount(const std::string& path, VnodePtr fs_root) {
  auto covered = Resolve(path);
  if (!covered.ok()) {
    return covered.error();
  }
  if ((*covered)->type() != VType::kDir) {
    return Errno::kENOTDIR;
  }
  mounts_[covered->get()] = std::move(fs_root);
  return Result<void>::Ok();
}

Result<VnodePtr> Vfs::MkdirAll(const std::string& path, const VAttr& attr) {
  if (path.empty() || path[0] != '/') {
    return Errno::kEINVAL;
  }
  VnodePtr cur = CrossMounts(root_);
  for (const auto& part : SplitPath(path)) {
    auto next = cur->Lookup(part);
    if (next.ok()) {
      cur = CrossMounts(*next);
      continue;
    }
    auto made = cur->Mkdir(part, attr);
    if (!made.ok()) {
      return made.error();
    }
    cur = *made;
  }
  return cur;
}

}  // namespace svr4
