#include "svr4proc/fs/memfs.h"

#include <algorithm>
#include <cstring>

namespace svr4 {

Result<VAttr> MemFile::GetAttr() {
  VAttr a = attr_;
  a.size = data_.size();
  return a;
}

Result<void> MemFile::Open(OpenFile& of, const Creds& cr, Proc* /*caller*/) {
  uint32_t want = 0;
  int acc = of.oflags & O_ACCMODE;
  if (acc == O_RDONLY || acc == O_RDWR) {
    want |= kPermRead;
  }
  if (acc == O_WRONLY || acc == O_RDWR) {
    want |= kPermWrite;
  }
  if (!CredsPermit(cr, attr_.uid, attr_.gid, attr_.mode, want)) {
    return Errno::kEACCES;
  }
  if ((of.oflags & O_TRUNC) && (want & kPermWrite)) {
    data_.clear();
  }
  return Result<void>::Ok();
}

Result<int64_t> MemFile::Read(OpenFile& /*of*/, uint64_t off, std::span<uint8_t> buf) {
  if (off >= data_.size()) {
    return int64_t{0};
  }
  size_t n = std::min<uint64_t>(buf.size(), data_.size() - off);
  std::memcpy(buf.data(), data_.data() + off, n);
  return static_cast<int64_t>(n);
}

Result<int64_t> MemFile::Write(OpenFile& /*of*/, uint64_t off, std::span<const uint8_t> buf) {
  if (off + buf.size() > data_.size()) {
    data_.resize(off + buf.size());
  }
  std::memcpy(data_.data() + off, buf.data(), buf.size());
  return static_cast<int64_t>(buf.size());
}

int MemFile::Poll(OpenFile& /*of*/) { return POLLIN | POLLOUT; }

Result<std::shared_ptr<VmObject>> MemFile::GetVmObject() {
  std::shared_ptr<FileVmObject> obj = vmobj_.lock();
  if (!obj) {
    obj = std::make_shared<FileVmObject>(shared_from_this());
    vmobj_ = obj;
  }
  return std::static_pointer_cast<VmObject>(obj);
}

Result<VAttr> MemDir::GetAttr() {
  VAttr a = attr_;
  a.size = entries_.size();
  a.nlink = 2;
  return a;
}

Result<void> MemDir::Open(OpenFile& of, const Creds& cr, Proc* /*caller*/) {
  if ((of.oflags & O_ACCMODE) != O_RDONLY) {
    return Errno::kEISDIR;
  }
  if (!CredsPermit(cr, attr_.uid, attr_.gid, attr_.mode, kPermRead)) {
    return Errno::kEACCES;
  }
  return Result<void>::Ok();
}

Result<VnodePtr> MemDir::Lookup(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Errno::kENOENT;
  }
  return it->second;
}

Result<VnodePtr> MemDir::Create(const std::string& name, const VAttr& attr) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Errno::kEINVAL;
  }
  if (entries_.count(name)) {
    return Errno::kEEXIST;
  }
  auto file = std::make_shared<MemFile>(attr);
  entries_[name] = file;
  return std::static_pointer_cast<Vnode>(file);
}

Result<VnodePtr> MemDir::Mkdir(const std::string& name, const VAttr& attr) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Errno::kEINVAL;
  }
  if (entries_.count(name)) {
    return Errno::kEEXIST;
  }
  auto dir = std::make_shared<MemDir>(attr);
  entries_[name] = dir;
  return std::static_pointer_cast<Vnode>(dir);
}

Result<void> MemDir::Remove(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Errno::kENOENT;
  }
  if (it->second->type() == VType::kDir) {
    auto entries = it->second->Readdir();
    if (entries.ok() && !entries->empty()) {
      return Errno::kENOTEMPTY;
    }
  }
  entries_.erase(it);
  return Result<void>::Ok();
}

Result<std::vector<DirEnt>> MemDir::Readdir() {
  std::vector<DirEnt> out;
  out.reserve(entries_.size());
  for (const auto& [name, vp] : entries_) {
    out.push_back(DirEnt{name, vp->type()});
  }
  return out;
}

}  // namespace svr4
