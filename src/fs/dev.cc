#include "svr4proc/fs/dev.h"

#include <algorithm>

namespace svr4 {

Result<VAttr> ConsoleVnode::GetAttr() {
  VAttr a;
  a.type = VType::kChr;
  a.mode = 0666;
  return a;
}

Result<int64_t> ConsoleVnode::Read(OpenFile& /*of*/, uint64_t /*off*/, std::span<uint8_t> buf) {
  if (input_.empty()) {
    return int64_t{0};  // EOF when no test input queued
  }
  size_t n = std::min(buf.size(), input_.size());
  for (size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<uint8_t>(input_.front());
    input_.pop_front();
  }
  return static_cast<int64_t>(n);
}

Result<int64_t> ConsoleVnode::Write(OpenFile& /*of*/, uint64_t /*off*/,
                                    std::span<const uint8_t> buf) {
  output_.append(reinterpret_cast<const char*>(buf.data()), buf.size());
  return static_cast<int64_t>(buf.size());
}

int ConsoleVnode::Poll(OpenFile& /*of*/) {
  int r = POLLOUT;
  if (!input_.empty()) {
    r |= POLLIN;
  }
  return r;
}

Result<VAttr> PipeVnode::GetAttr() {
  VAttr a;
  a.type = VType::kFifo;
  a.mode = 0600;
  a.size = buf_->data.size();
  return a;
}

Result<void> PipeVnode::Open(OpenFile& /*of*/, const Creds& /*cr*/, Proc* /*caller*/) {
  if (write_end_) {
    ++buf_->writers;
  } else {
    ++buf_->readers;
  }
  return Result<void>::Ok();
}

void PipeVnode::Close(OpenFile& /*of*/) {
  if (write_end_) {
    --buf_->writers;
  } else {
    --buf_->readers;
  }
}

Result<int64_t> PipeVnode::Read(OpenFile& /*of*/, uint64_t /*off*/, std::span<uint8_t> buf) {
  if (write_end_) {
    return Errno::kEBADF;
  }
  if (buf_->data.empty()) {
    if (buf_->writers == 0) {
      return int64_t{0};  // EOF
    }
    return Errno::kEAGAIN;  // kernel sleeps the caller
  }
  size_t n = std::min(buf.size(), buf_->data.size());
  for (size_t i = 0; i < n; ++i) {
    buf[i] = buf_->data.front();
    buf_->data.pop_front();
  }
  return static_cast<int64_t>(n);
}

Result<int64_t> PipeVnode::Write(OpenFile& /*of*/, uint64_t /*off*/,
                                 std::span<const uint8_t> buf) {
  if (!write_end_) {
    return Errno::kEBADF;
  }
  if (buf_->readers == 0) {
    return Errno::kEPIPE;
  }
  if (buf_->data.size() >= PipeBuf::kCapacity) {
    return Errno::kEAGAIN;
  }
  size_t room = PipeBuf::kCapacity - buf_->data.size();
  size_t n = std::min(buf.size(), room);
  buf_->data.insert(buf_->data.end(), buf.begin(), buf.begin() + n);
  return static_cast<int64_t>(n);
}

int PipeVnode::Poll(OpenFile& /*of*/) {
  int r = 0;
  if (write_end_) {
    if (buf_->data.size() < PipeBuf::kCapacity) {
      r |= POLLOUT;
    }
    if (buf_->readers == 0) {
      r |= POLLERR;
    }
  } else {
    if (!buf_->data.empty()) {
      r |= POLLIN;
    }
    if (buf_->writers == 0) {
      r |= POLLHUP;
    }
  }
  return r;
}

}  // namespace svr4
