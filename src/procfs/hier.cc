// The hierarchical /proc2: per-process directories, read(2)-based status
// files, write(2)-based structured control messages, and per-lwp
// subdirectories. Control-message semantics live in the shared control-plane
// table (procfs/ctl.h); ctl/lwpctl writes only hand the stream to it.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "svr4proc/procfs/ctl.h"
#include "svr4proc/procfs/procfs.h"
#include "svr4proc/procfs/procfs2.h"

namespace svr4 {
namespace {

// Per-descriptor state: who opened it (blocking ctl messages need to know
// whether the opener is a native controller) and exclusivity accounting.
struct Pr2Priv {
  Proc* opener = nullptr;
  bool counted_writable = false;
};

enum class Pr2Kind {
  kStatus, kPsinfo, kCred, kUsage, kSigact, kMap, kAs, kCtl, kCtlAudit, kTrace,
  kProf
};

std::string PidName(Pid pid) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%05d", pid);
  return buf;
}

// Serves a read of a POD snapshot at the given offset.
template <typename T>
Result<int64_t> ServeStruct(const T& value, uint64_t off, std::span<uint8_t> buf) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (off >= sizeof(T)) {
    return int64_t{0};
  }
  size_t n = std::min<uint64_t>(buf.size(), sizeof(T) - off);
  std::memcpy(buf.data(), reinterpret_cast<const uint8_t*>(&value) + off, n);
  return static_cast<int64_t>(n);
}

Result<int64_t> ServeBytes(const std::vector<uint8_t>& bytes, uint64_t off,
                           std::span<uint8_t> buf) {
  if (off >= bytes.size()) {
    return int64_t{0};
  }
  size_t n = std::min<uint64_t>(buf.size(), bytes.size() - off);
  std::memcpy(buf.data(), bytes.data() + off, n);
  return static_cast<int64_t>(n);
}

class Pr2FileVnode : public Vnode {
 public:
  Pr2FileVnode(Kernel* k, Pid pid, Pr2Kind kind) : kernel_(k), pid_(pid), kind_(kind) {}

  VType type() const override { return VType::kProc; }

  Result<VAttr> GetAttr() override {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr) {
      return Errno::kENOENT;
    }
    VAttr a;
    a.type = VType::kProc;
    a.uid = p->creds.ruid;
    a.gid = p->creds.rgid;
    switch (kind_) {
      case Pr2Kind::kCtl:
        a.mode = 0200;  // write-only control file
        break;
      case Pr2Kind::kAs:
        a.mode = 0600;
        a.size = p->as ? p->as->VirtualSize() : 0;
        break;
      default:
        a.mode = 0400;  // read-only status files
        break;
    }
    return a;
  }

  Result<void> Open(OpenFile& of, const Creds& cr, Proc* caller) override {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr) {
      return Errno::kENOENT;
    }
    SVR4_RETURN_IF_ERROR(ProcOpenPermission(cr, p));
    bool want_write = of.writable;
    if (kind_ == Pr2Kind::kCtl && !want_write) {
      return Errno::kEACCES;  // ctl is write-only
    }
    if (want_write && kind_ != Pr2Kind::kCtl && kind_ != Pr2Kind::kAs) {
      return Errno::kEACCES;  // status files are read-only
    }
    auto priv = std::make_shared<Pr2Priv>();
    priv->opener = caller;
    if (want_write) {
      if (p->trace.excl) {
        return Errno::kEBUSY;
      }
      if (of.oflags & O_EXCL) {
        if (p->trace.writable_opens > 0) {
          return Errno::kEBUSY;
        }
        p->trace.excl = true;
      }
      ++p->trace.writable_opens;
      priv->counted_writable = true;
    }
    ++p->trace.total_opens;
    of.pr_gen = p->trace.gen;
    of.pr_ident = p->ident;
    of.priv = priv;
    kernel_->ktrace().Emit(
        KtEvent::kProcOpen, p->pid, 0,
        caller != nullptr ? static_cast<uint32_t>(caller->pid) : 0,
        want_write ? 1 : 0);
    return Result<void>::Ok();
  }

  void Close(OpenFile& of) override {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr) {
      return;
    }
    if (of.pr_ident != p->ident) {
      // The pid was reused: the successor's ledger never counted this
      // descriptor, so its close must leave it alone.
      return;
    }
    auto* priv = static_cast<Pr2Priv*>(of.priv.get());
    kernel_->ktrace().Emit(
        KtEvent::kProcClose, p->pid, 0,
        priv != nullptr && priv->opener != nullptr
            ? static_cast<uint32_t>(priv->opener->pid)
            : 0,
        priv != nullptr && priv->counted_writable ? 1 : 0);
    bool counted_writable = priv != nullptr && priv->counted_writable;
    if (of.pr_gen != p->trace.gen) {
      // Invalidated by a set-id exec: drain the stale ledger only (shared
      // rule with the flat implementation); the live incarnation's counters
      // and exclusivity are off limits.
      kernel_->PrStaleClose(p, counted_writable);
      return;
    }
    if ((of.oflags & O_EXCL) && counted_writable) {
      p->trace.excl = false;
    }
    --p->trace.total_opens;
    if (counted_writable) {
      if (--p->trace.writable_opens == 0) {
        kernel_->PrLastClose(p);
      }
    }
  }

  Result<int64_t> Read(OpenFile& of, uint64_t off, std::span<uint8_t> buf) override {
    if (kind_ == Pr2Kind::kTrace) {
      // The per-process trace is a filtered view of the *global* ring; the
      // records outlive the process, so the read deliberately bypasses the
      // process lookup — a descriptor held across the reap still serves the
      // reaped pid's history.
      return ServeBytes(kernel_->ktrace().Snapshot(pid_), off, buf);
    }
    auto tp = Target(of);
    if (!tp.ok()) {
      return tp.error();
    }
    Proc* p = *tp;
    switch (kind_) {
      case Pr2Kind::kStatus:
        return ServeStruct(BuildPrStatus(*kernel_, p), off, buf);
      case Pr2Kind::kPsinfo:
        return ServeStruct(BuildPrPsinfo(*kernel_, p), off, buf);
      case Pr2Kind::kCred:
        return ServeStruct(BuildPrCred(p), off, buf);
      case Pr2Kind::kUsage:
        return ServeStruct(BuildPrUsage(*kernel_, p), off, buf);
      case Pr2Kind::kSigact: {
        std::vector<uint8_t> bytes(sizeof(SigAction) * SigSet::kMaxMember);
        for (int s = 1; s <= SigSet::kMaxMember; ++s) {
          std::memcpy(bytes.data() + (s - 1) * sizeof(SigAction), &p->sig.actions[s],
                      sizeof(SigAction));
        }
        return ServeBytes(bytes, off, buf);
      }
      case Pr2Kind::kMap: {
        auto maps = BuildPrMap(p);
        std::vector<uint8_t> bytes(maps.size() * sizeof(PrMapEntry));
        std::memcpy(bytes.data(), maps.data(), bytes.size());
        return ServeBytes(bytes, off, buf);
      }
      case Pr2Kind::kAs: {
        if (!p->as || off > 0xFFFFFFFFull) {
          return Errno::kEIO;
        }
        return p->as->PrRead(static_cast<uint32_t>(off), buf);
      }
      case Pr2Kind::kCtlAudit:
        return ServeStruct(BuildPrCtlAudit(p), off, buf);
      case Pr2Kind::kProf: {
        // Folded-stack profiler dump; an unprofiled process reads empty.
        std::string text = kernel_->ProfText(*p);
        return ServeBytes(std::vector<uint8_t>(text.begin(), text.end()), off,
                          buf);
      }
      case Pr2Kind::kCtl:
        return Errno::kEACCES;
      case Pr2Kind::kTrace:
        break;  // handled above, before the process lookup
    }
    return Errno::kEINVAL;
  }

  Result<int64_t> Write(OpenFile& of, uint64_t off, std::span<const uint8_t> buf) override {
    auto tp = Target(of);
    if (!tp.ok()) {
      return tp.error();
    }
    Proc* p = *tp;
    switch (kind_) {
      case Pr2Kind::kAs: {
        if (!p->as || off > 0xFFFFFFFFull) {
          return Errno::kEIO;
        }
        return p->as->PrWrite(static_cast<uint32_t>(off), buf);
      }
      case Pr2Kind::kCtl: {
        auto* priv = static_cast<Pr2Priv*>(of.priv.get());
        bool native = priv != nullptr && priv->opener != nullptr && priv->opener->native;
        return RunCtlStream(*kernel_, p, nullptr, buf, native,
                            priv ? priv->opener : nullptr);
      }
      default:
        return Errno::kEACCES;
    }
  }

  int Poll(OpenFile& of) override {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr || of.pr_ident != p->ident || of.pr_gen != p->trace.gen) {
      return POLLNVAL;
    }
    if (p->state == Proc::State::kZombie) {
      return POLLHUP;
    }
    return kernel_->PrIsStopped(p) ? POLLPRI : 0;
  }

  int32_t PrCountedTarget() const override { return pid_; }

  bool PrCtlStream() const override { return kind_ == Pr2Kind::kCtl; }

 private:
  Result<Proc*> Target(const OpenFile& of) const {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr) {
      return Errno::kENOENT;
    }
    if (of.pr_ident != p->ident) {
      // Pid wraparound: the descriptor's process is gone, and the pid now
      // names a stranger.
      return Errno::kENOENT;
    }
    if (of.pr_gen != p->trace.gen) {
      return Errno::kEACCES;
    }
    if (p->state == Proc::State::kZombie && kind_ != Pr2Kind::kPsinfo &&
        kind_ != Pr2Kind::kCred && kind_ != Pr2Kind::kUsage &&
        kind_ != Pr2Kind::kCtlAudit) {
      return Errno::kENOENT;
    }
    return p;
  }

  Kernel* kernel_;
  Pid pid_;
  Pr2Kind kind_;
};

class Pr2LwpFileVnode : public Vnode {
 public:
  Pr2LwpFileVnode(Kernel* k, Pid pid, int lwpid, bool ctl)
      : kernel_(k), pid_(pid), lwpid_(lwpid), ctl_(ctl) {}

  VType type() const override { return VType::kProc; }

  Result<VAttr> GetAttr() override {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr || p->FindLwp(lwpid_) == nullptr) {
      return Errno::kENOENT;
    }
    VAttr a;
    a.type = VType::kProc;
    a.uid = p->creds.ruid;
    a.gid = p->creds.rgid;
    a.mode = ctl_ ? 0200 : 0400;
    return a;
  }

  Result<void> Open(OpenFile& of, const Creds& cr, Proc* caller) override {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr || p->FindLwp(lwpid_) == nullptr) {
      return Errno::kENOENT;
    }
    SVR4_RETURN_IF_ERROR(ProcOpenPermission(cr, p));
    if (ctl_ && !of.writable) {
      return Errno::kEACCES;
    }
    if (!ctl_ && of.writable) {
      return Errno::kEACCES;
    }
    auto priv = std::make_shared<Pr2Priv>();
    priv->opener = caller;
    of.priv = priv;
    of.pr_gen = p->trace.gen;
    of.pr_ident = p->ident;
    return Result<void>::Ok();
  }

  Result<int64_t> Read(OpenFile& of, uint64_t off, std::span<uint8_t> buf) override {
    if (ctl_) {
      return Errno::kEACCES;
    }
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr || of.pr_ident != p->ident || of.pr_gen != p->trace.gen) {
      return Errno::kENOENT;
    }
    Lwp* l = p->FindLwp(lwpid_);
    if (l == nullptr) {
      return Errno::kENOENT;
    }
    return ServeStruct(BuildPrLwpStatus(p, l), off, buf);
  }

  Result<int64_t> Write(OpenFile& of, uint64_t /*off*/,
                        std::span<const uint8_t> buf) override {
    if (!ctl_) {
      return Errno::kEACCES;
    }
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr || of.pr_ident != p->ident || of.pr_gen != p->trace.gen) {
      return Errno::kENOENT;
    }
    Lwp* l = p->FindLwp(lwpid_);
    if (l == nullptr) {
      return Errno::kENOENT;
    }
    auto* priv = static_cast<Pr2Priv*>(of.priv.get());
    bool native = priv != nullptr && priv->opener != nullptr && priv->opener->native;
    return RunCtlStream(*kernel_, p, l, buf, native, priv ? priv->opener : nullptr);
  }

 private:
  Kernel* kernel_;
  Pid pid_;
  int lwpid_;
  bool ctl_;
};

class Pr2LwpDirVnode : public Vnode {
 public:
  Pr2LwpDirVnode(Kernel* k, Pid pid, int lwpid) : kernel_(k), pid_(pid), lwpid_(lwpid) {}

  VType type() const override { return VType::kDir; }
  Result<VAttr> GetAttr() override {
    VAttr a;
    a.type = VType::kDir;
    a.mode = 0500;
    return a;
  }
  Result<VnodePtr> Lookup(const std::string& name) override {
    if (name == "lwpstatus") {
      return VnodePtr(std::make_shared<Pr2LwpFileVnode>(kernel_, pid_, lwpid_, false));
    }
    if (name == "lwpctl") {
      return VnodePtr(std::make_shared<Pr2LwpFileVnode>(kernel_, pid_, lwpid_, true));
    }
    return Errno::kENOENT;
  }
  Result<std::vector<DirEnt>> Readdir() override {
    return std::vector<DirEnt>{{"lwpstatus", VType::kProc}, {"lwpctl", VType::kProc}};
  }

 private:
  Kernel* kernel_;
  Pid pid_;
  int lwpid_;
};

class Pr2LwpListVnode : public Vnode {
 public:
  Pr2LwpListVnode(Kernel* k, Pid pid) : kernel_(k), pid_(pid) {}

  VType type() const override { return VType::kDir; }
  Result<VAttr> GetAttr() override {
    VAttr a;
    a.type = VType::kDir;
    a.mode = 0500;
    return a;
  }
  Result<VnodePtr> Lookup(const std::string& name) override {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr) {
      return Errno::kENOENT;
    }
    int id = 0;
    for (char c : name) {
      if (c < '0' || c > '9') {
        return Errno::kENOENT;
      }
      id = id * 10 + (c - '0');
    }
    if (p->FindLwp(id) == nullptr) {
      return Errno::kENOENT;
    }
    return VnodePtr(std::make_shared<Pr2LwpDirVnode>(kernel_, pid_, id));
  }
  Result<std::vector<DirEnt>> Readdir() override {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr) {
      return Errno::kENOENT;
    }
    std::vector<DirEnt> out;
    for (const auto& l : p->lwps) {
      if (l->state != LwpState::kDead) {
        out.push_back(DirEnt{std::to_string(l->lwpid), VType::kDir});
      }
    }
    return out;
  }

 private:
  Kernel* kernel_;
  Pid pid_;
};

// "The thread-ids of sibling threads appear as sub-directories within a
// hierarchy that has the process-id at the top."
class Pr2ProcDirVnode : public Vnode {
 public:
  Pr2ProcDirVnode(Kernel* k, Pid pid) : kernel_(k), pid_(pid) {}

  VType type() const override { return VType::kDir; }
  Result<VAttr> GetAttr() override {
    Proc* p = kernel_->FindProc(pid_);
    if (p == nullptr) {
      return Errno::kENOENT;
    }
    VAttr a;
    a.type = VType::kDir;
    a.mode = 0500;
    a.uid = p->creds.ruid;
    a.gid = p->creds.rgid;
    return a;
  }
  Result<VnodePtr> Lookup(const std::string& name) override {
    if (kernel_->FindProc(pid_) == nullptr) {
      return Errno::kENOENT;
    }
    Pr2Kind kind;
    if (name == "status") {
      kind = Pr2Kind::kStatus;
    } else if (name == "psinfo") {
      kind = Pr2Kind::kPsinfo;
    } else if (name == "cred") {
      kind = Pr2Kind::kCred;
    } else if (name == "usage") {
      kind = Pr2Kind::kUsage;
    } else if (name == "sigact") {
      kind = Pr2Kind::kSigact;
    } else if (name == "map") {
      kind = Pr2Kind::kMap;
    } else if (name == "as") {
      kind = Pr2Kind::kAs;
    } else if (name == "ctl") {
      kind = Pr2Kind::kCtl;
    } else if (name == "ctlaudit") {
      kind = Pr2Kind::kCtlAudit;
    } else if (name == "trace") {
      kind = Pr2Kind::kTrace;
    } else if (name == "prof") {
      kind = Pr2Kind::kProf;
    } else if (name == "lwp") {
      return VnodePtr(std::make_shared<Pr2LwpListVnode>(kernel_, pid_));
    } else {
      return Errno::kENOENT;
    }
    return VnodePtr(std::make_shared<Pr2FileVnode>(kernel_, pid_, kind));
  }
  Result<std::vector<DirEnt>> Readdir() override {
    return std::vector<DirEnt>{
        {"as", VType::kProc},     {"ctl", VType::kProc},   {"status", VType::kProc},
        {"psinfo", VType::kProc}, {"map", VType::kProc},   {"cred", VType::kProc},
        {"sigact", VType::kProc}, {"usage", VType::kProc}, {"ctlaudit", VType::kProc},
        {"trace", VType::kProc},  {"prof", VType::kProc},  {"lwp", VType::kDir},
    };
  }

 private:
  Kernel* kernel_;
  Pid pid_;
};

// /proc2/kernel/faults: read-only introspection of the armed fault plan and
// its per-site hit counters. Zombie-safe by construction — no process is
// involved, so it reads identically whatever the process table holds.
class Pr2FaultsVnode : public Vnode {
 public:
  explicit Pr2FaultsVnode(Kernel* k) : kernel_(k) {}

  VType type() const override { return VType::kProc; }
  Result<VAttr> GetAttr() override {
    VAttr a;
    a.type = VType::kProc;
    a.mode = 0444;
    a.size = Render().size();
    return a;
  }
  Result<void> Open(OpenFile& of, const Creds& /*cr*/, Proc* /*caller*/) override {
    if (of.writable) {
      return Errno::kEACCES;
    }
    return Result<void>::Ok();
  }
  Result<int64_t> Read(OpenFile& /*of*/, uint64_t off, std::span<uint8_t> buf) override {
    std::string text = Render();
    std::vector<uint8_t> bytes(text.begin(), text.end());
    return ServeBytes(bytes, off, buf);
  }

 private:
  std::string Render() const {
    FaultInjector* finj = kernel_->fault_injector();
    return finj ? finj->Describe() : std::string("faults: off\n");
  }

  Kernel* kernel_;
};

// /proc2/kernel/trace: binary snapshot of the global event ring
// (KtSnapHeader then oldest-first KtRec records). A disabled or never-armed
// ring reads as an empty file, not an error.
class Pr2KtraceVnode : public Vnode {
 public:
  explicit Pr2KtraceVnode(Kernel* k) : kernel_(k) {}

  VType type() const override { return VType::kProc; }
  Result<VAttr> GetAttr() override {
    VAttr a;
    a.type = VType::kProc;
    a.mode = 0444;
    a.size = kernel_->ktrace().Snapshot().size();
    return a;
  }
  Result<void> Open(OpenFile& of, const Creds& /*cr*/, Proc* /*caller*/) override {
    if (of.writable) {
      return Errno::kEACCES;
    }
    return Result<void>::Ok();
  }
  Result<int64_t> Read(OpenFile& /*of*/, uint64_t off, std::span<uint8_t> buf) override {
    return ServeBytes(kernel_->ktrace().Snapshot(), off, buf);
  }

 private:
  Kernel* kernel_;
};

// /proc2/kernel/metrics: the metrics registry rendered as text, one line
// per counter or histogram, with the fault injector's per-site counters
// folded in from their single home.
class Pr2KmetricsVnode : public Vnode {
 public:
  explicit Pr2KmetricsVnode(Kernel* k) : kernel_(k) {}

  VType type() const override { return VType::kProc; }
  Result<VAttr> GetAttr() override {
    VAttr a;
    a.type = VType::kProc;
    a.mode = 0444;
    a.size = Render().size();
    return a;
  }
  Result<void> Open(OpenFile& of, const Creds& /*cr*/, Proc* /*caller*/) override {
    if (of.writable) {
      return Errno::kEACCES;
    }
    return Result<void>::Ok();
  }
  Result<int64_t> Read(OpenFile& /*of*/, uint64_t off, std::span<uint8_t> buf) override {
    std::string text = Render();
    std::vector<uint8_t> bytes(text.begin(), text.end());
    return ServeBytes(bytes, off, buf);
  }

 private:
  std::string Render() const {
    return kernel_->ktrace().MetricsText(kernel_->fault_injector()) +
           kernel_->ExecEngineMetricsText();
  }

  Kernel* kernel_;
};

// /proc2/kernel/psall: the bulk population snapshot as packed PrPsinfo
// records, ascending pid order, zombies included — the read(2) face of
// PIOCPSALL. One open+read covers the whole process table; the per-pid
// alternative costs four name resolutions per process.
class Pr2PsallVnode : public Vnode {
 public:
  explicit Pr2PsallVnode(Kernel* k) : kernel_(k) {}

  VType type() const override { return VType::kProc; }
  Result<VAttr> GetAttr() override {
    VAttr a;
    a.type = VType::kProc;
    a.mode = 0444;
    a.size = kernel_->ProcCount() * sizeof(PrPsinfo);
    return a;
  }
  Result<void> Open(OpenFile& of, const Creds& /*cr*/, Proc* /*caller*/) override {
    if (of.writable) {
      return Errno::kEACCES;
    }
    return Result<void>::Ok();
  }
  Result<int64_t> Read(OpenFile& /*of*/, uint64_t off, std::span<uint8_t> buf) override {
    // Rebuilt per read: each read(2) is a fresh snapshot, like the other
    // kernel-dir files. A reader paging through with a growing offset sees
    // each record torn-free (PrPsinfo is trivially copyable and records are
    // only appended in pid order), though procs that exit mid-pagination
    // may shift later records — same contract as ps(1) over readdir.
    //
    // pread-style windowing: only the records the [off, off+len) window
    // touches are built. The scan still walks earlier pids to find the
    // window start (pid order, not density, determines record position),
    // but skips the BuildPrPsinfo cost — at 10^6 processes that is the
    // difference between copying 100 bytes and marshalling tens of MB.
    constexpr uint64_t kRow = sizeof(PrPsinfo);
    uint64_t first_row = off / kRow;
    uint64_t last_row = (off + buf.size() + kRow - 1) / kRow;  // exclusive
    std::vector<uint8_t> window;
    window.reserve(static_cast<size_t>(last_row - first_row) * kRow);
    uint64_t row = 0;
    for (Pid pid = kernel_->NextAllocatedPid(0);
         pid >= 0 && row < last_row; pid = kernel_->NextAllocatedPid(pid + 1)) {
      Proc* p = kernel_->FindProc(pid);
      if (p == nullptr) {
        continue;
      }
      if (row >= first_row) {
        PrPsinfo ps = BuildPrPsinfo(*kernel_, p);
        const auto* raw = reinterpret_cast<const uint8_t*>(&ps);
        window.insert(window.end(), raw, raw + sizeof(ps));
      }
      ++row;
    }
    // Serve from the window's own origin.
    uint64_t woff = off - std::min(off, first_row * kRow);
    return ServeBytes(window, woff, buf);
  }

 private:
  Kernel* kernel_;
};

// /proc2/kernel/cpus: per-CPU scheduler and IPI accounting — run-queue
// depth, quanta, instructions, steals, context switches, shootdowns. The
// observability face of the SMP model (DESIGN.md has the protocol).
class Pr2CpusVnode : public Vnode {
 public:
  explicit Pr2CpusVnode(Kernel* k) : kernel_(k) {}

  VType type() const override { return VType::kProc; }
  Result<VAttr> GetAttr() override {
    VAttr a;
    a.type = VType::kProc;
    a.mode = 0444;
    a.size = kernel_->CpuStatsText().size();
    return a;
  }
  Result<void> Open(OpenFile& of, const Creds& /*cr*/, Proc* /*caller*/) override {
    if (of.writable) {
      return Errno::kEACCES;
    }
    return Result<void>::Ok();
  }
  Result<int64_t> Read(OpenFile& /*of*/, uint64_t off, std::span<uint8_t> buf) override {
    std::string text = kernel_->CpuStatsText();
    std::vector<uint8_t> bytes(text.begin(), text.end());
    return ServeBytes(bytes, off, buf);
  }

 private:
  Kernel* kernel_;
};

// /proc2/kernel/procd: the network daemon's span/occupancy registry,
// rendered in the /proc2/kernel/metrics style. The kernel has no procd
// dependency: a running ProcdServer registers a renderer via
// SetProcdStatsProvider; without one the file reads "procd off".
class Pr2ProcdVnode : public Vnode {
 public:
  explicit Pr2ProcdVnode(Kernel* k) : kernel_(k) {}

  VType type() const override { return VType::kProc; }
  Result<VAttr> GetAttr() override {
    VAttr a;
    a.type = VType::kProc;
    a.mode = 0444;
    a.size = Render().size();
    return a;
  }
  Result<void> Open(OpenFile& of, const Creds& /*cr*/, Proc* /*caller*/) override {
    if (of.writable) {
      return Errno::kEACCES;
    }
    return Result<void>::Ok();
  }
  Result<int64_t> Read(OpenFile& /*of*/, uint64_t off, std::span<uint8_t> buf) override {
    std::string text = Render();
    std::vector<uint8_t> bytes(text.begin(), text.end());
    return ServeBytes(bytes, off, buf);
  }

 private:
  std::string Render() const {
    const auto& provider = kernel_->procd_stats_provider();
    return provider ? provider() : std::string("procd off\n");
  }

  Kernel* kernel_;
};

// /proc2/kernel: kernel-wide (process-independent) introspection files.
class Pr2KernelDirVnode : public Vnode {
 public:
  explicit Pr2KernelDirVnode(Kernel* k) : kernel_(k) {}

  VType type() const override { return VType::kDir; }
  Result<VAttr> GetAttr() override {
    VAttr a;
    a.type = VType::kDir;
    a.mode = 0555;
    a.nlink = 2;
    return a;
  }
  Result<VnodePtr> Lookup(const std::string& name) override {
    if (name == "faults") {
      return VnodePtr(std::make_shared<Pr2FaultsVnode>(kernel_));
    }
    if (name == "trace") {
      return VnodePtr(std::make_shared<Pr2KtraceVnode>(kernel_));
    }
    if (name == "metrics") {
      return VnodePtr(std::make_shared<Pr2KmetricsVnode>(kernel_));
    }
    if (name == "psall") {
      return VnodePtr(std::make_shared<Pr2PsallVnode>(kernel_));
    }
    if (name == "cpus") {
      return VnodePtr(std::make_shared<Pr2CpusVnode>(kernel_));
    }
    if (name == "procd") {
      return VnodePtr(std::make_shared<Pr2ProcdVnode>(kernel_));
    }
    return Errno::kENOENT;
  }
  Result<std::vector<DirEnt>> Readdir() override {
    return std::vector<DirEnt>{{"faults", VType::kProc},
                               {"trace", VType::kProc},
                               {"metrics", VType::kProc},
                               {"psall", VType::kProc},
                               {"cpus", VType::kProc},
                               {"procd", VType::kProc}};
  }

 private:
  Kernel* kernel_;
};

}  // namespace

Result<VAttr> Pr2RootVnode::GetAttr() {
  VAttr a;
  a.type = VType::kDir;
  a.mode = 0555;
  a.size = kernel_->ProcCount();
  a.nlink = 2;
  return a;
}

Result<VnodePtr> Pr2RootVnode::Lookup(const std::string& name) {
  if (name == "kernel") {
    return VnodePtr(std::make_shared<Pr2KernelDirVnode>(kernel_));
  }
  if (name.empty() || name.size() > 10) {
    return Errno::kENOENT;
  }
  Pid pid = 0;
  for (char c : name) {
    if (c < '0' || c > '9') {
      return Errno::kENOENT;
    }
    pid = pid * 10 + (c - '0');
  }
  if (kernel_->FindProc(pid) == nullptr) {
    return Errno::kENOENT;
  }
  return VnodePtr(std::make_shared<Pr2ProcDirVnode>(kernel_, pid));
}

Result<std::vector<DirEnt>> Pr2RootVnode::Readdir() {
  std::vector<DirEnt> out;
  out.push_back(DirEnt{"kernel", VType::kDir});
  for (Pid pid : kernel_->AllPids()) {
    out.push_back(DirEnt{PidName(pid), VType::kDir});
  }
  return out;
}

Result<size_t> Pr2RootVnode::ReaddirChunk(uint64_t* cookie, size_t max,
                                          std::vector<DirEnt>* out) {
  // Cookie 0 = start (emit "kernel" first); otherwise cookie-1 is the next
  // pid to consider. Same churn-stability contract as the flat root: the
  // cursor is a pid, so entries never repeat and survivors always appear.
  size_t n = 0;
  if (*cookie == 0 && n < max) {
    out->push_back(DirEnt{"kernel", VType::kDir});
    ++n;
    *cookie = 1;
  }
  Pid next = static_cast<Pid>(*cookie - 1);
  while (n < max) {
    Pid pid = kernel_->NextAllocatedPid(next);
    if (pid < 0) {
      break;
    }
    out->push_back(DirEnt{PidName(pid), VType::kDir});
    ++n;
    next = pid + 1;
  }
  *cookie = static_cast<uint64_t>(next) + 1;
  return n;
}

Result<void> MountProcFs2(Kernel& k, const std::string& path) {
  return k.vfs().Mount(path, std::make_shared<Pr2RootVnode>(&k));
}

}  // namespace svr4
