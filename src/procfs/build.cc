// Builders translating kernel process state into the proc(4) structures.
// These present "a complete and consistent process model as independent as
// possible of internal system implementation details."
#include <algorithm>
#include <cstring>

#include "svr4proc/kernel/kernel.h"
#include "svr4proc/kernel/ktrace.h"
#include "svr4proc/kernel/syscall.h"
#include "svr4proc/procfs/types.h"

namespace svr4 {
namespace {

void CopyStr(char* dst, size_t cap, const std::string& src) {
  size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = 0;
}

}  // namespace

PrStatus BuildPrStatus(Kernel& k, Proc* p) {
  PrStatus st;
  st.pr_pid = p->pid;
  st.pr_ppid = p->ppid;
  st.pr_pgrp = p->pgrp;
  st.pr_sid = p->sid;
  st.pr_utime = p->utime;
  st.pr_stime = p->stime;
  st.pr_cutime = p->cutime;
  st.pr_cstime = p->cstime;
  CopyStr(st.pr_clname, PRCLSZ, "TS");
  st.pr_cursig = static_cast<uint16_t>(p->sig.cursig);
  st.pr_sigpend = p->sig.pending;
  st.pr_sighold = p->sig.hold;
  uint32_t nlwp = 0;
  for (const auto& l : p->lwps) {
    if (l->state != LwpState::kDead) {
      ++nlwp;
    }
  }
  st.pr_nlwp = nlwp;
  if (const Lwp* rl = p->RepresentativeLwp()) {
    st.pr_cpuid = static_cast<uint32_t>(rl->cpu);
  }

  if (p->system_proc) {
    st.pr_flags |= PR_ISSYS;
  }
  if (p->trace.inherit_on_fork) {
    st.pr_flags |= PR_FORK;
  }
  if (p->trace.run_on_last_close) {
    st.pr_flags |= PR_RLC;
  }
  if (p->pt_traced) {
    st.pr_flags |= PR_PTRACE;
  }
  if (p->trace.dstop_pending) {
    st.pr_flags |= PR_DSTOP;
  }

  Lwp* l = p->RepresentativeLwp();
  if (l != nullptr) {
    st.pr_lwpid = static_cast<uint16_t>(l->lwpid);
    st.pr_reg = l->regs;
    if (l->regs.psr & kPsrT) {
      st.pr_flags |= PR_STEP;
    }
    if (l->state == LwpState::kStopped) {
      st.pr_flags |= PR_STOPPED;
      if (l->istop) {
        st.pr_flags |= PR_ISTOP;
      }
      st.pr_why = l->stop_why;
      st.pr_what = l->stop_what;
      if (l->stopped_while_asleep) {
        st.pr_flags |= PR_ASLEEP;
      }
      if (l->stop_why == PR_FAULTED) {
        st.pr_info.si_signo = 0;
        st.pr_info.si_code = p->trace.cur_fault;
        st.pr_info.si_addr = p->trace.cur_fault_addr;
      } else if (l->stop_why == PR_SIGNALLED) {
        st.pr_info = p->sig.cursig_info;
      }
    } else if (l->state == LwpState::kSleeping && l->sleep.interruptible) {
      st.pr_flags |= PR_ASLEEP;
    }
    if (l->in_syscall) {
      st.pr_syscall = l->cur_syscall;
      st.pr_nsysarg = static_cast<uint16_t>(SyscallNargs(l->cur_syscall));
      for (int i = 0; i < 6; ++i) {
        st.pr_sysarg[i] = l->sysargs[i];
      }
    }
    if (p->as) {
      uint32_t instr = 0;
      auto n = p->as->PrRead(l->regs.pc,
                             std::span<uint8_t>(reinterpret_cast<uint8_t*>(&instr), 4));
      if (n.ok() && *n > 0) {
        st.pr_instr = instr;
      } else {
        st.pr_flags |= PR_PCINVAL;
      }
    } else {
      st.pr_flags |= PR_PCINVAL;
    }
  }
  (void)k;
  return st;
}

PrPsinfo BuildPrPsinfo(Kernel& k, Proc* p) {
  PrPsinfo ps;
  ps.pr_pid = p->pid;
  ps.pr_ppid = p->ppid;
  ps.pr_pgrp = p->pgrp;
  ps.pr_sid = p->sid;
  ps.pr_uid = p->creds.ruid;
  ps.pr_gid = p->creds.rgid;
  ps.pr_nice = static_cast<char>(p->nice);
  ps.pr_start = p->start_tick;
  ps.pr_time = p->utime + p->stime;
  CopyStr(ps.pr_clname, PRCLSZ, "TS");
  CopyStr(ps.pr_fname, PRFNSZ, p->name);
  CopyStr(ps.pr_psargs, PRARGSZ, p->psargs);
  uint16_t nlwp = 0;
  for (const auto& l : p->lwps) {
    if (l->state != LwpState::kDead) {
      ++nlwp;
    }
  }
  ps.pr_nlwp = nlwp;

  if (p->state == Proc::State::kZombie) {
    ps.pr_state = 'Z';
    ps.pr_zomb = 1;
  } else {
    const Lwp* l = p->RepresentativeLwp();
    if (l == nullptr) {
      ps.pr_state = p->native || p->system_proc ? 'S' : 'R';
    } else {
      switch (l->state) {
        case LwpState::kRunning:
          ps.pr_state = 'R';
          break;
        case LwpState::kSleeping:
          ps.pr_state = 'S';
          break;
        case LwpState::kStopped:
          ps.pr_state = 'T';
          break;
        case LwpState::kDead:
          ps.pr_state = 'Z';
          break;
      }
      if (l->in_syscall) {
        ps.pr_syscall = l->cur_syscall;
      }
      ps.pr_cpuid = static_cast<uint16_t>(l->cpu);
    }
  }
  if (p->as) {
    ps.pr_size = p->as->VirtualSize() / kPageSize;
    ps.pr_rssize = p->as->ResidentPages();
  }
  (void)k;
  return ps;
}

PrCred BuildPrCred(const Proc* p) {
  PrCred c;
  c.pr_euid = p->creds.euid;
  c.pr_ruid = p->creds.ruid;
  c.pr_suid = p->creds.suid;
  c.pr_egid = p->creds.egid;
  c.pr_rgid = p->creds.rgid;
  c.pr_sgid = p->creds.sgid;
  c.pr_ngroups = static_cast<uint32_t>(std::min<size_t>(p->creds.groups.size(), PRNGROUPS));
  for (uint32_t i = 0; i < c.pr_ngroups; ++i) {
    c.pr_groups[i] = p->creds.groups[i];
  }
  return c;
}

PrUsage BuildPrUsage(const Kernel& k, const Proc* p) {
  PrUsage u;
  u.pr_tstamp = k.Ticks();
  u.pr_create = p->start_tick;
  u.pr_rtime = k.Ticks() - p->start_tick;
  u.pr_utime = p->utime;
  u.pr_stime = p->stime;
  // Fault counts live in the address space; the bases fold in counts from
  // address spaces the process has already discarded (exec replaces the
  // image, exit drops it before the zombie is interrogated).
  u.pr_minf = p->minflt_base;
  u.pr_majf = p->majflt_base;
  if (p->as) {
    u.pr_minf += p->as->counters().minor_faults;
    u.pr_majf += p->as->counters().major_faults;
  }
  u.pr_nsig = p->nsignals;
  u.pr_sysc = p->nsyscalls;
  u.pr_ioch = p->ioch;
  return u;
}

// The array bounds in the PrKstat ABI must track the kernel enums; a new
// KtEvent or syscall past the bound would silently vanish from snapshots.
static_assert(kPrKstatEvents >= kKtEventCount, "PrKstat event array too small");
static_assert(kPrKstatSyscalls >= kKtMaxSyscall, "PrKstat syscall array too small");

PrKstat BuildPrKstat(const Kernel& k) {
  PrKstat ks;
  ks.pr_ticks = k.Ticks();
  ks.pr_instructions = k.counters().instructions;
  ks.pr_timer_events = k.counters().timer_events;
  ks.pr_reaps = k.counters().reaps;
  const KTrace& kt = k.ktrace();
  ks.pr_ring_on = kt.ring_on() ? 1 : 0;
  ks.pr_metrics_on = kt.metrics_on() ? 1 : 0;
  ks.pr_trace_total = kt.total();
  ks.pr_trace_dropped = kt.dropped();
  for (uint32_t e = 0; e < kKtEventCount; ++e) {
    ks.pr_events[e] = kt.event_count(static_cast<KtEvent>(e));
  }
  for (int s = 0; s < kKtMaxSyscall; ++s) {
    const KtSyscallStat& st = kt.syscall_stat(s);
    ks.pr_sys[s].pr_calls = st.calls;
    ks.pr_sys[s].pr_errors = st.errors;
    ks.pr_sys[s].pr_latsum = st.lat.sum;
    ks.pr_sys[s].pr_latmax = st.lat.max;
  }
  ks.pr_stop_wait_count = kt.stop_wait().count;
  ks.pr_stop_wait_sum = kt.stop_wait().sum;
  ks.pr_stop_wait_max = kt.stop_wait().max;
  for (int c = 0; c < kKtMaxCpus; ++c) {
    const KtHist& rw = kt.runq_wait(c);
    ks.pr_runq_wait_count += rw.count;
    ks.pr_runq_wait_sum += rw.sum;
    ks.pr_runq_wait_max = std::max(ks.pr_runq_wait_max, rw.max);
    const KtHist& sl = kt.steal_lat(c);
    ks.pr_steal_count += sl.count;
    ks.pr_steal_sum += sl.sum;
    ks.pr_steal_max = std::max(ks.pr_steal_max, sl.max);
  }
  return ks;
}

std::vector<PrMapEntry> BuildPrMap(const Proc* p) {
  std::vector<PrMapEntry> out;
  if (!p->as) {
    return out;
  }
  for (const auto& m : p->as->Maps()) {
    PrMapEntry e;
    e.pr_vaddr = m.vaddr;
    e.pr_size = m.size;
    e.pr_off = m.offset;
    e.pr_mflags = m.flags;
    e.pr_pagesize = kPageSize;
    CopyStr(e.pr_mapname, PRMAPNMSZ, m.name);
    out.push_back(e);
  }
  return out;
}

PrLwpStatus BuildPrLwpStatus(const Proc* p, const Lwp* l) {
  PrLwpStatus st;
  st.pr_lwpid = static_cast<uint16_t>(l->lwpid);
  st.pr_reg = l->regs;
  st.pr_fpreg = l->fpregs;
  st.pr_cursig = static_cast<uint16_t>(p->sig.cursig);
  if (l->state == LwpState::kStopped) {
    st.pr_flags |= PR_STOPPED;
    if (l->istop) {
      st.pr_flags |= PR_ISTOP;
    }
    st.pr_why = l->stop_why;
    st.pr_what = l->stop_what;
  }
  if (l->in_syscall) {
    st.pr_syscall = l->cur_syscall;
  }
  return st;
}

}  // namespace svr4
