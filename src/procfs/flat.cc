// The flat SVR4 /proc: prlookup/preaddir, address-space I/O, the PIOC*
// front-end, and the security provisions. Operation semantics — access
// class, zombie behaviour, privilege rules, handlers — live in the shared
// control-plane table (procfs/ctl.h); Ioctl() only marshals into it.
#include <cstdio>

#include "svr4proc/procfs/procfs.h"

#include "svr4proc/procfs/ctl.h"

namespace svr4 {
namespace {

// Per-OpenFile private state for a /proc descriptor.
struct PrPriv {
  bool excl = false;   // this descriptor holds the exclusive-write right
  Pid opener = 0;      // who opened it, for the PROC_CLOSE trace record
};

std::string PidName(Pid pid) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%05d", pid);
  return buf;
}

}  // namespace

Result<void> ProcOpenPermission(const Creds& cr, const Proc* target) {
  if (cr.IsSuper()) {
    return Result<void>::Ok();
  }
  if (target->setid) {
    return Errno::kEACCES;  // set-id processes: super-user only
  }
  if (cr.euid != target->creds.ruid || cr.egid != target->creds.rgid) {
    return Errno::kEACCES;  // both the uid and gid must match
  }
  return Result<void>::Ok();
}

Result<int32_t> ProcOpenMappedObject(Kernel& k, Proc* caller, Proc* target, bool use_exe,
                                     uint32_t vaddr) {
  VnodePtr vp;
  if (use_exe) {
    vp = target->exe;
  } else {
    if (!target->as) {
      return Errno::kEINVAL;
    }
    auto obj = target->as->ObjectAt(vaddr);
    auto* fo = dynamic_cast<FileVmObject*>(obj.get());
    if (fo == nullptr) {
      return Errno::kEINVAL;
    }
    vp = fo->vnode();
  }
  if (!vp) {
    return Errno::kEINVAL;
  }
  auto of = std::make_shared<OpenFile>();
  of->vp = vp;
  of->oflags = O_RDONLY;
  // The descriptor is read-only and bypasses path permission checks: a
  // debugger can reach symbol tables "without having to know pathnames".
  auto fd = k.FdAlloc(caller, of);
  if (!fd.ok()) {
    return fd.error();
  }
  return static_cast<int32_t>(*fd);
}

// --- Directory ---------------------------------------------------------------

Result<VAttr> ProcDirVnode::GetAttr() {
  VAttr a;
  a.type = VType::kDir;
  a.mode = 0555;
  a.size = kernel_->ProcCount();
  a.nlink = 2;
  return a;
}

Result<VnodePtr> ProcDirVnode::Lookup(const std::string& name) {
  if (name.empty() || name.size() > 10) {
    return Errno::kENOENT;
  }
  Pid pid = 0;
  for (char c : name) {
    if (c < '0' || c > '9') {
      return Errno::kENOENT;
    }
    pid = pid * 10 + (c - '0');
  }
  Proc* p = kernel_->FindProc(pid);
  if (p == nullptr) {
    return Errno::kENOENT;
  }
  return std::static_pointer_cast<Vnode>(std::make_shared<ProcVnode>(kernel_, pid));
}

Result<std::vector<DirEnt>> ProcDirVnode::Readdir() {
  std::vector<DirEnt> out;
  for (Pid pid : kernel_->AllPids()) {
    out.push_back(DirEnt{PidName(pid), VType::kProc});
  }
  return out;
}

Result<size_t> ProcDirVnode::ReaddirChunk(uint64_t* cookie, size_t max,
                                          std::vector<DirEnt>* out) {
  // The cookie is the next pid to consider, so the cursor survives any
  // amount of fork/exit between calls: a pid created behind the cursor is
  // skipped, one created ahead is picked up, and nothing repeats because
  // the cursor only moves forward. O(chunk), never O(population).
  Pid next = static_cast<Pid>(*cookie);
  size_t n = 0;
  while (n < max) {
    Pid pid = kernel_->NextAllocatedPid(next);
    if (pid < 0) {
      break;
    }
    out->push_back(DirEnt{PidName(pid), VType::kProc});
    ++n;
    next = pid + 1;
  }
  *cookie = static_cast<uint64_t>(next);
  return n;
}

// --- Process file -------------------------------------------------------------

Result<Proc*> ProcVnode::Target(const OpenFile& of) const {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr) {
    return Errno::kENOENT;
  }
  if (of.pr_ident != p->ident) {
    // Pid wraparound: the process this descriptor named is gone and the pid
    // now belongs to a stranger. The descriptor dangles exactly as if the
    // pid were free.
    return Errno::kENOENT;
  }
  if (of.pr_gen != p->trace.gen) {
    // Invalidated by a set-id exec: "no further operation on that file
    // descriptor will succeed except close(2)".
    return Errno::kEACCES;
  }
  return p;
}

Result<VAttr> ProcVnode::GetAttr() {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr) {
    return Errno::kENOENT;
  }
  VAttr a;
  a.type = VType::kProc;
  a.mode = 0600;
  a.uid = p->creds.ruid;  // "the owner and group ... are the process's real
  a.gid = p->creds.rgid;  //  user-id and group-id"
  a.size = p->as ? p->as->VirtualSize() : 0;
  a.mtime = p->start_tick;
  return a;
}

Result<void> ProcVnode::Open(OpenFile& of, const Creds& cr, Proc* caller) {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr) {
    return Errno::kENOENT;
  }
  SVR4_RETURN_IF_ERROR(ProcOpenPermission(cr, p));
  auto priv = std::make_shared<PrPriv>();
  priv->opener = caller != nullptr ? caller->pid : 0;
  if (of.writable) {
    if (p->trace.excl) {
      return Errno::kEBUSY;  // an exclusive controller exists
    }
    if (of.oflags & O_EXCL) {
      // "A /proc file can be opened for exclusive read/write use ... a
      // controlling process can avoid collisions with other controlling
      // processes." Read-only opens are unaffected.
      if (p->trace.writable_opens > 0) {
        return Errno::kEBUSY;
      }
      p->trace.excl = true;
      priv->excl = true;
    }
    ++p->trace.writable_opens;
  }
  ++p->trace.total_opens;
  of.pr_gen = p->trace.gen;
  of.pr_ident = p->ident;
  of.priv = priv;
  kernel_->ktrace().Emit(KtEvent::kProcOpen, p->pid, 0,
                         static_cast<uint32_t>(priv->opener), of.writable ? 1 : 0);
  return Result<void>::Ok();
}

void ProcVnode::Close(OpenFile& of) {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr) {
    return;
  }
  if (of.pr_ident != p->ident) {
    // A reused pid: this descriptor was never counted in the successor's
    // ledger, so its close must not touch it.
    return;
  }
  if (of.pr_gen != p->trace.gen) {
    // Invalidated by a set-id exec: this descriptor's counts were moved to
    // the stale ledger at invalidation time, so its close must never touch
    // the new incarnation's counters or exclusivity. The shared drain rule
    // decides when run-on-last-close fires.
    kernel_->PrStaleClose(p, of.writable);
    return;
  }
  auto* priv = static_cast<PrPriv*>(of.priv.get());
  if (priv != nullptr && priv->excl) {
    p->trace.excl = false;
  }
  kernel_->ktrace().Emit(KtEvent::kProcClose, p->pid, 0,
                         priv != nullptr ? static_cast<uint32_t>(priv->opener) : 0,
                         of.writable ? 1 : 0);
  --p->trace.total_opens;
  if (of.writable) {
    if (--p->trace.writable_opens == 0) {
      kernel_->PrLastClose(p);
    }
  }
}

Result<int64_t> ProcVnode::Read(OpenFile& of, uint64_t off, std::span<uint8_t> buf) {
  auto p = Target(of);
  if (!p.ok()) {
    return p.error();
  }
  if (!(*p)->as || off > 0xFFFFFFFFull) {
    return Errno::kEIO;
  }
  return (*p)->as->PrRead(static_cast<uint32_t>(off), buf);
}

Result<int64_t> ProcVnode::Write(OpenFile& of, uint64_t off, std::span<const uint8_t> buf) {
  auto p = Target(of);
  if (!p.ok()) {
    return p.error();
  }
  if (!(*p)->as || off > 0xFFFFFFFFull) {
    return Errno::kEIO;
  }
  return (*p)->as->PrWrite(static_cast<uint32_t>(off), buf);
}

int ProcVnode::Poll(OpenFile& of) {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr || of.pr_ident != p->ident || of.pr_gen != p->trace.gen) {
    return POLLNVAL;
  }
  if (p->state == Proc::State::kZombie) {
    return POLLHUP;
  }
  // "Ready" for a /proc file: stopped on an event of interest.
  if (kernel_->PrIsStopped(p)) {
    return POLLPRI;
  }
  return 0;
}

Result<int32_t> ProcVnode::Ioctl(OpenFile& of, Proc* caller, uint32_t op, void* arg) {
  if (caller == nullptr || !caller->native) {
    // Control operands are host-memory pointers; only native controllers
    // may issue them in this simulation.
    return Errno::kEINVAL;
  }
  auto tp = Target(of);
  if (!tp.ok()) {
    return tp.error();
  }
  CtlCtx ctx;
  ctx.k = kernel_;
  ctx.p = *tp;
  ctx.caller = caller;
  ctx.native_caller = true;  // enforced above
  ctx.fd_writable = of.writable;
  ctx.source = CtlSource::kIoctl;
  return CtlDispatchPioc(ctx, op, arg);
}

Result<void> MountProcFs(Kernel& k, const std::string& path) {
  return k.vfs().Mount(path, std::make_shared<ProcDirVnode>(&k));
}

}  // namespace svr4
