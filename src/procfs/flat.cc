// The flat SVR4 /proc: prlookup/preaddir, address-space I/O, the PIOC*
// operation family, and the security provisions.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "svr4proc/procfs/procfs.h"

namespace svr4 {
namespace {

// Per-OpenFile private state for a /proc descriptor.
struct PrPriv {
  bool excl = false;  // this descriptor holds the exclusive-write right
};

// Operations permitted on a read-only descriptor; everything else modifies
// process state or behaviour and needs write access.
bool IsReadOnlyOp(uint32_t op) {
  switch (op) {
    case PIOCSTATUS:
    case PIOCGTRACE:
    case PIOCGHOLD:
    case PIOCMAXSIG:
    case PIOCACTION:
    case PIOCGFAULT:
    case PIOCGENTRY:
    case PIOCGEXIT:
    case PIOCGREG:
    case PIOCGFPREG:
    case PIOCNMAP:
    case PIOCMAP:
    case PIOCOPENM:
    case PIOCCRED:
    case PIOCGROUPS:
    case PIOCPSINFO:
    case PIOCGETPR:
    case PIOCGETU:
    case PIOCUSAGE:
    case PIOCNWATCH:
    case PIOCGWATCH:
    case PIOCPAGEDATA:
    case PIOCLWPIDS:
    case PIOCVMSTATS:
      return true;
    default:
      return false;
  }
}

// Operations that still work on a zombie (it has status but no context).
bool WorksOnZombie(uint32_t op) {
  switch (op) {
    case PIOCPSINFO:
    case PIOCCRED:
    case PIOCGROUPS:
    case PIOCUSAGE:
    case PIOCMAXSIG:
      return true;
    default:
      return false;
  }
}

std::string PidName(Pid pid) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%05d", pid);
  return buf;
}

}  // namespace

Result<void> ProcOpenPermission(const Creds& cr, const Proc* target) {
  if (cr.IsSuper()) {
    return Result<void>::Ok();
  }
  if (target->setid) {
    return Errno::kEACCES;  // set-id processes: super-user only
  }
  if (cr.euid != target->creds.ruid || cr.egid != target->creds.rgid) {
    return Errno::kEACCES;  // both the uid and gid must match
  }
  return Result<void>::Ok();
}

RunArgs ToRunArgs(const PrRun& r) {
  RunArgs a;
  a.clear_sig = r.pr_flags & PRCSIG;
  a.clear_fault = r.pr_flags & PRCFAULT;
  a.set_trace = r.pr_flags & PRSTRACE;
  a.trace = r.pr_trace;
  a.set_hold = r.pr_flags & PRSHOLD;
  a.hold = r.pr_hold;
  a.set_fault = r.pr_flags & PRSFAULT;
  a.fault = r.pr_fault;
  a.set_vaddr = r.pr_flags & PRSVADDR;
  a.vaddr = r.pr_vaddr;
  a.step = r.pr_flags & PRSTEP;
  a.abort = r.pr_flags & PRSABORT;
  a.stop = r.pr_flags & PRSTOP;
  return a;
}

Result<int32_t> ProcOpenMappedObject(Kernel& k, Proc* caller, Proc* target, bool use_exe,
                                     uint32_t vaddr) {
  VnodePtr vp;
  if (use_exe) {
    vp = target->exe;
  } else {
    if (!target->as) {
      return Errno::kEINVAL;
    }
    auto obj = target->as->ObjectAt(vaddr);
    auto* fo = dynamic_cast<FileVmObject*>(obj.get());
    if (fo == nullptr) {
      return Errno::kEINVAL;
    }
    vp = fo->vnode();
  }
  if (!vp) {
    return Errno::kEINVAL;
  }
  auto of = std::make_shared<OpenFile>();
  of->vp = vp;
  of->oflags = O_RDONLY;
  // The descriptor is read-only and bypasses path permission checks: a
  // debugger can reach symbol tables "without having to know pathnames".
  auto fd = k.FdAlloc(caller, of);
  if (!fd.ok()) {
    return fd.error();
  }
  return static_cast<int32_t>(*fd);
}

// --- Directory ---------------------------------------------------------------

Result<VAttr> ProcDirVnode::GetAttr() {
  VAttr a;
  a.type = VType::kDir;
  a.mode = 0555;
  a.size = kernel_->AllPids().size();
  a.nlink = 2;
  return a;
}

Result<VnodePtr> ProcDirVnode::Lookup(const std::string& name) {
  if (name.empty() || name.size() > 10) {
    return Errno::kENOENT;
  }
  Pid pid = 0;
  for (char c : name) {
    if (c < '0' || c > '9') {
      return Errno::kENOENT;
    }
    pid = pid * 10 + (c - '0');
  }
  Proc* p = kernel_->FindProc(pid);
  if (p == nullptr) {
    return Errno::kENOENT;
  }
  return std::static_pointer_cast<Vnode>(std::make_shared<ProcVnode>(kernel_, pid));
}

Result<std::vector<DirEnt>> ProcDirVnode::Readdir() {
  std::vector<DirEnt> out;
  for (Pid pid : kernel_->AllPids()) {
    out.push_back(DirEnt{PidName(pid), VType::kProc});
  }
  return out;
}

// --- Process file -------------------------------------------------------------

Result<Proc*> ProcVnode::Target(const OpenFile& of) const {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr) {
    return Errno::kENOENT;
  }
  if (of.pr_gen != p->trace.gen) {
    // Invalidated by a set-id exec: "no further operation on that file
    // descriptor will succeed except close(2)".
    return Errno::kEACCES;
  }
  return p;
}

Result<VAttr> ProcVnode::GetAttr() {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr) {
    return Errno::kENOENT;
  }
  VAttr a;
  a.type = VType::kProc;
  a.mode = 0600;
  a.uid = p->creds.ruid;  // "the owner and group ... are the process's real
  a.gid = p->creds.rgid;  //  user-id and group-id"
  a.size = p->as ? p->as->VirtualSize() : 0;
  a.mtime = p->start_tick;
  return a;
}

Result<void> ProcVnode::Open(OpenFile& of, const Creds& cr, Proc* /*caller*/) {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr) {
    return Errno::kENOENT;
  }
  SVR4_RETURN_IF_ERROR(ProcOpenPermission(cr, p));
  auto priv = std::make_shared<PrPriv>();
  if (of.writable) {
    if (p->trace.excl) {
      return Errno::kEBUSY;  // an exclusive controller exists
    }
    if (of.oflags & O_EXCL) {
      // "A /proc file can be opened for exclusive read/write use ... a
      // controlling process can avoid collisions with other controlling
      // processes." Read-only opens are unaffected.
      if (p->trace.writable_opens > 0) {
        return Errno::kEBUSY;
      }
      p->trace.excl = true;
      priv->excl = true;
    }
    ++p->trace.writable_opens;
  }
  ++p->trace.total_opens;
  of.pr_gen = p->trace.gen;
  of.priv = priv;
  return Result<void>::Ok();
}

void ProcVnode::Close(OpenFile& of) {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr) {
    return;
  }
  auto* priv = static_cast<PrPriv*>(of.priv.get());
  if (priv != nullptr && priv->excl) {
    p->trace.excl = false;
  }
  --p->trace.total_opens;
  if (of.writable) {
    if (--p->trace.writable_opens == 0) {
      kernel_->PrLastClose(p);
    }
  }
}

Result<int64_t> ProcVnode::Read(OpenFile& of, uint64_t off, std::span<uint8_t> buf) {
  auto p = Target(of);
  if (!p.ok()) {
    return p.error();
  }
  if (!(*p)->as || off > 0xFFFFFFFFull) {
    return Errno::kEIO;
  }
  return (*p)->as->PrRead(static_cast<uint32_t>(off), buf);
}

Result<int64_t> ProcVnode::Write(OpenFile& of, uint64_t off, std::span<const uint8_t> buf) {
  auto p = Target(of);
  if (!p.ok()) {
    return p.error();
  }
  if (!(*p)->as || off > 0xFFFFFFFFull) {
    return Errno::kEIO;
  }
  return (*p)->as->PrWrite(static_cast<uint32_t>(off), buf);
}

int ProcVnode::Poll(OpenFile& of) {
  Proc* p = kernel_->FindProc(pid_);
  if (p == nullptr || of.pr_gen != p->trace.gen) {
    return POLLNVAL;
  }
  if (p->state == Proc::State::kZombie) {
    return POLLHUP;
  }
  // "Ready" for a /proc file: stopped on an event of interest.
  if (kernel_->PrIsStopped(p)) {
    return POLLPRI;
  }
  return 0;
}

Result<int32_t> ProcVnode::Ioctl(OpenFile& of, Proc* caller, uint32_t op, void* arg) {
  if (caller == nullptr || !caller->native) {
    // Control operands are host-memory pointers; only native controllers
    // may issue them in this simulation.
    return Errno::kEINVAL;
  }
  auto tp = Target(of);
  if (!tp.ok()) {
    return tp.error();
  }
  Proc* p = *tp;
  Kernel& k = *kernel_;

  if (!IsReadOnlyOp(op) && !of.writable) {
    return Errno::kEBADF;
  }
  if (p->state == Proc::State::kZombie && !WorksOnZombie(op)) {
    return Errno::kENOENT;
  }

  switch (op) {
    case PIOCSTATUS:
      *static_cast<PrStatus*>(arg) = BuildPrStatus(k, p);
      return 0;
    case PIOCSTOP: {
      SVR4_RETURN_IF_ERROR(k.PrStop(p));
      SVR4_RETURN_IF_ERROR(k.PrWaitStop(p));
      if (arg != nullptr) {
        *static_cast<PrStatus*>(arg) = BuildPrStatus(k, p);
      }
      return 0;
    }
    case PIOCWSTOP: {
      SVR4_RETURN_IF_ERROR(k.PrWaitStop(p));
      if (arg != nullptr) {
        *static_cast<PrStatus*>(arg) = BuildPrStatus(k, p);
      }
      return 0;
    }
    case PIOCRUN: {
      PrRun run;
      if (arg != nullptr) {
        run = *static_cast<PrRun*>(arg);
      }
      SVR4_RETURN_IF_ERROR(k.PrRun(p, ToRunArgs(run)));
      return 0;
    }
    case PIOCGTRACE:
      *static_cast<SigSet*>(arg) = p->trace.sigtrace;
      return 0;
    case PIOCSTRACE:
      p->trace.sigtrace = *static_cast<SigSet*>(arg);
      return 0;
    case PIOCSSIG: {
      if (arg == nullptr) {
        SVR4_RETURN_IF_ERROR(k.PrSetSig(p, 0, SigInfo{}));
        return 0;
      }
      const SigInfo& info = *static_cast<SigInfo*>(arg);
      SVR4_RETURN_IF_ERROR(k.PrSetSig(p, info.si_signo, info));
      return 0;
    }
    case PIOCKILL:
      SVR4_RETURN_IF_ERROR(k.PrKill(p, *static_cast<int*>(arg)));
      return 0;
    case PIOCUNKILL:
      SVR4_RETURN_IF_ERROR(k.PrUnkill(p, *static_cast<int*>(arg)));
      return 0;
    case PIOCGHOLD:
      *static_cast<SigSet*>(arg) = p->sig.hold;
      return 0;
    case PIOCSHOLD: {
      SigSet hold = *static_cast<SigSet*>(arg);
      hold.Remove(SIGKILL);
      hold.Remove(SIGSTOP);
      p->sig.hold = hold;
      return 0;
    }
    case PIOCMAXSIG:
      *static_cast<int*>(arg) = SigSet::kMaxMember;
      return 0;
    case PIOCACTION: {
      auto* actions = static_cast<SigAction*>(arg);
      for (int s = 1; s <= SigSet::kMaxMember; ++s) {
        actions[s - 1] = p->sig.actions[s];
      }
      return 0;
    }
    case PIOCGFAULT:
      *static_cast<FltSet*>(arg) = p->trace.flttrace;
      return 0;
    case PIOCSFAULT:
      p->trace.flttrace = *static_cast<FltSet*>(arg);
      return 0;
    case PIOCCFAULT:
      p->trace.cur_fault = 0;
      return 0;
    case PIOCGENTRY:
      *static_cast<SysSet*>(arg) = p->trace.sysentry;
      return 0;
    case PIOCSENTRY:
      p->trace.sysentry = *static_cast<SysSet*>(arg);
      return 0;
    case PIOCGEXIT:
      *static_cast<SysSet*>(arg) = p->trace.sysexit;
      return 0;
    case PIOCSEXIT:
      p->trace.sysexit = *static_cast<SysSet*>(arg);
      return 0;
    case PIOCSFORK:
      p->trace.inherit_on_fork = true;
      return 0;
    case PIOCRFORK:
      p->trace.inherit_on_fork = false;
      return 0;
    case PIOCSRLC:
      p->trace.run_on_last_close = true;
      return 0;
    case PIOCRRLC:
      p->trace.run_on_last_close = false;
      return 0;
    case PIOCGREG: {
      Lwp* l = p->RepresentativeLwp();
      if (l == nullptr) {
        return Errno::kENOENT;
      }
      *static_cast<Regs*>(arg) = l->regs;
      return 0;
    }
    case PIOCSREG: {
      Lwp* l = p->RepresentativeLwp();
      if (l == nullptr) {
        return Errno::kENOENT;
      }
      l->regs = *static_cast<Regs*>(arg);
      return 0;
    }
    case PIOCGFPREG: {
      Lwp* l = p->RepresentativeLwp();
      if (l == nullptr) {
        return Errno::kENOENT;
      }
      *static_cast<FpRegs*>(arg) = l->fpregs;
      return 0;
    }
    case PIOCSFPREG: {
      Lwp* l = p->RepresentativeLwp();
      if (l == nullptr) {
        return Errno::kENOENT;
      }
      l->fpregs = *static_cast<FpRegs*>(arg);
      return 0;
    }
    case PIOCNMAP:
      *static_cast<int*>(arg) = static_cast<int>(BuildPrMap(p).size());
      return 0;
    case PIOCMAP: {
      auto maps = BuildPrMap(p);
      auto* out = static_cast<PrMapEntry*>(arg);
      for (size_t i = 0; i < maps.size(); ++i) {
        out[i] = maps[i];
      }
      out[maps.size()] = PrMapEntry{};  // zero-filled terminator
      return 0;
    }
    case PIOCOPENM: {
      bool use_exe = arg == nullptr;
      uint32_t vaddr = use_exe ? 0 : *static_cast<uint32_t*>(arg);
      return ProcOpenMappedObject(k, caller, p, use_exe, vaddr);
    }
    case PIOCCRED:
      *static_cast<PrCred*>(arg) = BuildPrCred(p);
      return 0;
    case PIOCGROUPS: {
      auto* out = static_cast<Gid*>(arg);
      size_t n = std::min<size_t>(p->creds.groups.size(), PRNGROUPS);
      for (size_t i = 0; i < n; ++i) {
        out[i] = p->creds.groups[i];
      }
      return static_cast<int32_t>(n);
    }
    case PIOCPSINFO:
      *static_cast<PrPsinfo*>(arg) = BuildPrPsinfo(k, p);
      return 0;
    case PIOCNICE: {
      int delta = *static_cast<int*>(arg);
      if (delta < 0 && !caller->creds.IsSuper()) {
        return Errno::kEPERM;
      }
      p->nice = std::clamp(p->nice + delta, 0, 39);
      return 0;
    }
    case PIOCGETPR: {
      // Deprecated: exposes the raw proc structure.
      auto* raw = static_cast<PrRawProc*>(arg);
      raw->p_pid = p->pid;
      raw->p_ppid = p->ppid;
      raw->p_pgrp = p->pgrp;
      raw->p_stat = p->state == Proc::State::kZombie ? 5 : 1;
      raw->p_uid = p->creds.ruid;
      raw->p_nice = static_cast<uint32_t>(p->nice);
      raw->p_nlwp = static_cast<uint32_t>(p->lwps.size());
      uint64_t low = 0;
      for (int s = 1; s <= 64; ++s) {
        if (p->sig.pending.Has(s)) {
          low |= uint64_t{1} << (s - 1);
        }
      }
      raw->p_sig_pending_low = low;
      return 0;
    }
    case PIOCGETU: {
      // Deprecated: exposes the user area.
      auto* raw = static_cast<PrRawUser*>(arg);
      raw->u_nofiles = static_cast<uint32_t>(p->fds.size());
      raw->u_cmask = p->umask;
      std::snprintf(raw->u_comm, PRFNSZ, "%s", p->name.c_str());
      std::snprintf(raw->u_psargs, PRARGSZ, "%s", p->psargs.c_str());
      raw->u_utime = p->utime;
      raw->u_stime = p->stime;
      return 0;
    }
    case PIOCUSAGE:
      *static_cast<PrUsage*>(arg) = BuildPrUsage(k, p);
      return 0;
    case PIOCVMSTATS: {
      if (!p->as) {
        return Errno::kEINVAL;  // zombie: no address space
      }
      auto* out = static_cast<PrVmStats*>(arg);
      const VmCounters& c = p->as->counters();
      out->pr_tlb_hits = c.tlb_hits;
      out->pr_tlb_misses = c.tlb_misses;
      out->pr_slow_lookups = c.slow_lookups;
      out->pr_tlb_flushes = c.tlb_flushes;
      out->pr_instructions = k.counters().instructions;
      return 0;
    }
    case PIOCNWATCH:
      *static_cast<int*>(arg) =
          p->as ? static_cast<int>(p->as->Watches().size()) : 0;
      return 0;
    case PIOCGWATCH: {
      if (!p->as) {
        return Errno::kEINVAL;
      }
      auto* out = static_cast<PrWatch*>(arg);
      int i = 0;
      for (const auto& w : p->as->Watches()) {
        out[i].pr_vaddr = w.vaddr;
        out[i].pr_size = w.size;
        out[i].pr_wflags = w.wflags;
        ++i;
      }
      return i;
    }
    case PIOCSWATCH: {
      if (!p->as) {
        return Errno::kEINVAL;
      }
      const auto& w = *static_cast<PrWatch*>(arg);
      if (w.pr_wflags == 0) {
        SVR4_RETURN_IF_ERROR(p->as->ClearWatch(w.pr_vaddr));
        return 0;
      }
      SVR4_RETURN_IF_ERROR(
          p->as->AddWatch(Watch{w.pr_vaddr, w.pr_size, w.pr_wflags}));
      return 0;
    }
    case PIOCPAGEDATA: {
      if (!p->as) {
        return Errno::kEINVAL;
      }
      auto* pd = static_cast<PrPageData*>(arg);
      pd->segs = p->as->SamplePageData(pd->clear);
      return 0;
    }
    case PIOCLWPIDS: {
      auto* out = static_cast<PrLwpIds*>(arg);
      out->n = 0;
      for (const auto& l : p->lwps) {
        if (l->state != LwpState::kDead && out->n < PRNLWPIDS) {
          out->ids[out->n++] = l->lwpid;
        }
      }
      return 0;
    }
    default:
      return Errno::kEINVAL;
  }
}

Result<void> MountProcFs(Kernel& k, const std::string& path) {
  return k.vfs().Mount(path, std::make_shared<ProcDirVnode>(&k));
}

}  // namespace svr4
