// The unified /proc control-plane core: the declarative operation table,
// one handler per operation, the shared dispatcher with its access checks
// and audit ring, and the two front-end entry points (PIOC* ioctl codes,
// ctl-message streams). See ctl.h for the design.
#include "svr4proc/procfs/ctl.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "svr4proc/isa/blocks.h"
#include "svr4proc/procfs/procfs.h"

namespace svr4 {

RunArgs ToRunArgs(const PrRun& r) {
  RunArgs a;
  a.clear_sig = r.pr_flags & PRCSIG;
  a.clear_fault = r.pr_flags & PRCFAULT;
  a.set_trace = r.pr_flags & PRSTRACE;
  a.trace = r.pr_trace;
  a.set_hold = r.pr_flags & PRSHOLD;
  a.hold = r.pr_hold;
  a.set_fault = r.pr_flags & PRSFAULT;
  a.fault = r.pr_fault;
  a.set_vaddr = r.pr_flags & PRSVADDR;
  a.vaddr = r.pr_vaddr;
  a.step = r.pr_flags & PRSTEP;
  a.abort = r.pr_flags & PRSABORT;
  a.stop = r.pr_flags & PRSTOP;
  return a;
}

PrCtlAudit BuildPrCtlAudit(const Proc* p) {
  PrCtlAudit a;
  const TraceState& t = p->trace;
  if (t.audit == nullptr) {
    return a;  // ring never allocated: no control op has run
  }
  a.pr_total = t.audit_total;
  uint64_t n = std::min<uint64_t>(t.audit_total, kCtlAuditCap);
  a.pr_n = static_cast<uint32_t>(n);
  uint64_t start = t.audit_total - n;
  for (uint64_t i = 0; i < n; ++i) {
    a.pr_rec[i] = (*t.audit)[(start + i) % kCtlAuditCap];
  }
  return a;
}

namespace {

// --- Handlers: exactly one per operation -----------------------------------

Result<int32_t> OpNull(CtlCtx&, void*) { return 0; }

Result<int32_t> OpStop(CtlCtx& c, void*) {
  if (c.lwp != nullptr) {
    SVR4_RETURN_IF_ERROR(c.k->PrStopLwp(c.lwp));
  } else {
    SVR4_RETURN_IF_ERROR(c.k->PrStop(c.p));
  }
  SVR4_RETURN_IF_ERROR(c.k->PrWaitStop(c.p));
  return 0;
}

Result<int32_t> OpDirectedStop(CtlCtx& c, void*) {
  if (c.lwp != nullptr) {
    SVR4_RETURN_IF_ERROR(c.k->PrStopLwp(c.lwp));
  } else {
    SVR4_RETURN_IF_ERROR(c.k->PrStop(c.p));
  }
  return 0;
}

Result<int32_t> OpWaitStop(CtlCtx& c, void*) {
  SVR4_RETURN_IF_ERROR(c.k->PrWaitStop(c.p));
  return 0;
}

Result<int32_t> OpRun(CtlCtx& c, void* arg) {
  PrRun run;
  if (arg != nullptr) {
    run = *static_cast<PrRun*>(arg);
  }
  RunArgs a = ToRunArgs(run);
  if (c.lwp != nullptr) {
    SVR4_RETURN_IF_ERROR(c.k->PrRunLwp(c.lwp, a));
  } else {
    SVR4_RETURN_IF_ERROR(c.k->PrRun(c.p, a));
  }
  return 0;
}

Result<int32_t> OpSetSigTrace(CtlCtx& c, void* arg) {
  c.p->trace.sigtrace = *static_cast<SigSet*>(arg);
  return 0;
}

Result<int32_t> OpGetSigTrace(CtlCtx& c, void* arg) {
  *static_cast<SigSet*>(arg) = c.p->trace.sigtrace;
  return 0;
}

Result<int32_t> OpSetFltTrace(CtlCtx& c, void* arg) {
  c.p->trace.flttrace = *static_cast<FltSet*>(arg);
  return 0;
}

Result<int32_t> OpGetFltTrace(CtlCtx& c, void* arg) {
  *static_cast<FltSet*>(arg) = c.p->trace.flttrace;
  return 0;
}

Result<int32_t> OpSetSysEntry(CtlCtx& c, void* arg) {
  c.p->trace.sysentry = *static_cast<SysSet*>(arg);
  return 0;
}

Result<int32_t> OpGetSysEntry(CtlCtx& c, void* arg) {
  *static_cast<SysSet*>(arg) = c.p->trace.sysentry;
  return 0;
}

Result<int32_t> OpSetSysExit(CtlCtx& c, void* arg) {
  c.p->trace.sysexit = *static_cast<SysSet*>(arg);
  return 0;
}

Result<int32_t> OpGetSysExit(CtlCtx& c, void* arg) {
  *static_cast<SysSet*>(arg) = c.p->trace.sysexit;
  return 0;
}

Result<int32_t> OpSetHold(CtlCtx& c, void* arg) {
  SigSet hold = *static_cast<SigSet*>(arg);
  hold.Remove(SIGKILL);  // SIGKILL and SIGSTOP can never be held
  hold.Remove(SIGSTOP);
  c.p->sig.hold = hold;
  return 0;
}

Result<int32_t> OpGetHold(CtlCtx& c, void* arg) {
  *static_cast<SigSet*>(arg) = c.p->sig.hold;
  return 0;
}

Result<int32_t> OpKill(CtlCtx& c, void* arg) {
  SVR4_RETURN_IF_ERROR(c.k->PrKill(c.p, *static_cast<int*>(arg)));
  return 0;
}

Result<int32_t> OpUnkill(CtlCtx& c, void* arg) {
  SVR4_RETURN_IF_ERROR(c.k->PrUnkill(c.p, *static_cast<int*>(arg)));
  return 0;
}

Result<int32_t> OpSetSig(CtlCtx& c, void* arg) {
  const SigInfo& info = *static_cast<SigInfo*>(arg);
  SVR4_RETURN_IF_ERROR(c.k->PrSetSig(c.p, info.si_signo, info));
  return 0;
}

Result<int32_t> OpClearSig(CtlCtx& c, void*) {
  SVR4_RETURN_IF_ERROR(c.k->PrSetSig(c.p, 0, SigInfo{}));
  return 0;
}

Result<int32_t> OpClearFault(CtlCtx& c, void*) {
  c.p->trace.cur_fault = 0;
  return 0;
}

// lwp-scoped register ops fall back to the representative lwp at process
// scope, as the flat interface always did.
Lwp* ScopedLwp(CtlCtx& c) {
  return c.lwp != nullptr ? c.lwp : c.p->RepresentativeLwp();
}

Result<int32_t> OpSetRegs(CtlCtx& c, void* arg) {
  Lwp* l = ScopedLwp(c);
  if (l == nullptr) {
    return Errno::kENOENT;
  }
  l->regs = *static_cast<Regs*>(arg);
  return 0;
}

Result<int32_t> OpGetRegs(CtlCtx& c, void* arg) {
  Lwp* l = ScopedLwp(c);
  if (l == nullptr) {
    return Errno::kENOENT;
  }
  *static_cast<Regs*>(arg) = l->regs;
  return 0;
}

Result<int32_t> OpSetFpRegs(CtlCtx& c, void* arg) {
  Lwp* l = ScopedLwp(c);
  if (l == nullptr) {
    return Errno::kENOENT;
  }
  l->fpregs = *static_cast<FpRegs*>(arg);
  return 0;
}

Result<int32_t> OpGetFpRegs(CtlCtx& c, void* arg) {
  Lwp* l = ScopedLwp(c);
  if (l == nullptr) {
    return Errno::kENOENT;
  }
  *static_cast<FpRegs*>(arg) = l->fpregs;
  return 0;
}

// Unified privilege rule (historically duplicated, with drift, between
// PIOCNICE and PCNICE): lowering the nice value — raising priority — needs
// super-user credentials on the *calling* process; an anonymous caller can
// only cede priority.
Result<void> NicePriv(const CtlCtx& c, const void* arg) {
  int delta = *static_cast<const int*>(arg);
  if (delta < 0 && (c.caller == nullptr || !c.caller->creds.IsSuper())) {
    return Errno::kEPERM;
  }
  return Result<void>::Ok();
}

Result<int32_t> OpNice(CtlCtx& c, void* arg) {
  int delta = *static_cast<int*>(arg);
  c.p->nice = std::clamp(c.p->nice + delta, 0, 39);
  return 0;
}

Result<int32_t> OpSetModes(CtlCtx& c, void* arg) {
  uint32_t flags = *static_cast<uint32_t*>(arg);
  if (flags & PR_FORK) {
    c.p->trace.inherit_on_fork = true;
  }
  if (flags & PR_RLC) {
    c.p->trace.run_on_last_close = true;
  }
  return 0;
}

Result<int32_t> OpClearModes(CtlCtx& c, void* arg) {
  uint32_t flags = *static_cast<uint32_t*>(arg);
  if (flags & PR_FORK) {
    c.p->trace.inherit_on_fork = false;
  }
  if (flags & PR_RLC) {
    c.p->trace.run_on_last_close = false;
  }
  return 0;
}

Result<int32_t> OpWatch(CtlCtx& c, void* arg) {
  if (!c.p->as) {
    return Errno::kEINVAL;
  }
  const auto& w = *static_cast<PrWatch*>(arg);
  if (w.pr_wflags == 0) {
    SVR4_RETURN_IF_ERROR(c.p->as->ClearWatch(w.pr_vaddr));
    return 0;
  }
  SVR4_RETURN_IF_ERROR(c.p->as->AddWatch(Watch{w.pr_vaddr, w.pr_size, w.pr_wflags}));
  return 0;
}

// --- Flat-only query handlers ----------------------------------------------

Result<int32_t> OpStatus(CtlCtx& c, void* arg) {
  *static_cast<PrStatus*>(arg) = BuildPrStatus(*c.k, c.p);
  return 0;
}

Result<int32_t> OpMaxSig(CtlCtx&, void* arg) {
  *static_cast<int*>(arg) = SigSet::kMaxMember;
  return 0;
}

Result<int32_t> OpActions(CtlCtx& c, void* arg) {
  auto* actions = static_cast<SigAction*>(arg);
  for (int s = 1; s <= SigSet::kMaxMember; ++s) {
    actions[s - 1] = c.p->sig.actions[s];
  }
  return 0;
}

Result<int32_t> OpNMap(CtlCtx& c, void* arg) {
  *static_cast<int*>(arg) = static_cast<int>(BuildPrMap(c.p).size());
  return 0;
}

Result<int32_t> OpMap(CtlCtx& c, void* arg) {
  auto maps = BuildPrMap(c.p);
  auto* out = static_cast<PrMapEntry*>(arg);
  for (size_t i = 0; i < maps.size(); ++i) {
    out[i] = maps[i];
  }
  out[maps.size()] = PrMapEntry{};  // zero-filled terminator
  return 0;
}

Result<int32_t> OpOpenMapped(CtlCtx& c, void* arg) {
  bool use_exe = arg == nullptr;
  uint32_t vaddr = use_exe ? 0 : *static_cast<uint32_t*>(arg);
  return ProcOpenMappedObject(*c.k, c.caller, c.p, use_exe, vaddr);
}

Result<int32_t> OpCred(CtlCtx& c, void* arg) {
  *static_cast<PrCred*>(arg) = BuildPrCred(c.p);
  return 0;
}

Result<int32_t> OpGroups(CtlCtx& c, void* arg) {
  auto* out = static_cast<Gid*>(arg);
  size_t n = std::min<size_t>(c.p->creds.groups.size(), PRNGROUPS);
  for (size_t i = 0; i < n; ++i) {
    out[i] = c.p->creds.groups[i];
  }
  return static_cast<int32_t>(n);
}

Result<int32_t> OpPsinfo(CtlCtx& c, void* arg) {
  *static_cast<PrPsinfo*>(arg) = BuildPrPsinfo(*c.k, c.p);
  return 0;
}

Result<int32_t> OpGetProcRaw(CtlCtx& c, void* arg) {
  // Deprecated: exposes the raw proc structure.
  Proc* p = c.p;
  auto* raw = static_cast<PrRawProc*>(arg);
  raw->p_pid = p->pid;
  raw->p_ppid = p->ppid;
  raw->p_pgrp = p->pgrp;
  raw->p_stat = p->state == Proc::State::kZombie ? 5 : 1;
  raw->p_uid = p->creds.ruid;
  raw->p_nice = static_cast<uint32_t>(p->nice);
  raw->p_nlwp = static_cast<uint32_t>(p->lwps.size());
  uint64_t low = 0;
  for (int s = 1; s <= 64; ++s) {
    if (p->sig.pending.Has(s)) {
      low |= uint64_t{1} << (s - 1);
    }
  }
  raw->p_sig_pending_low = low;
  return 0;
}

Result<int32_t> OpGetUserRaw(CtlCtx& c, void* arg) {
  // Deprecated: exposes the user area.
  Proc* p = c.p;
  auto* raw = static_cast<PrRawUser*>(arg);
  raw->u_nofiles = static_cast<uint32_t>(p->fds.size());
  raw->u_cmask = p->umask;
  std::snprintf(raw->u_comm, PRFNSZ, "%s", p->name.c_str());
  std::snprintf(raw->u_psargs, PRARGSZ, "%s", p->psargs.c_str());
  raw->u_utime = p->utime;
  raw->u_stime = p->stime;
  return 0;
}

Result<int32_t> OpUsage(CtlCtx& c, void* arg) {
  *static_cast<PrUsage*>(arg) = BuildPrUsage(*c.k, c.p);
  return 0;
}

Result<int32_t> OpVmStats(CtlCtx& c, void* arg) {
  if (!c.p->as) {
    return Errno::kEINVAL;  // zombie: no address space
  }
  auto* out = static_cast<PrVmStats*>(arg);
  const VmCounters& vc = c.p->as->counters();
  out->pr_tlb_hits = vc.tlb_hits;
  out->pr_tlb_misses = vc.tlb_misses;
  out->pr_slow_lookups = vc.slow_lookups;
  out->pr_tlb_flushes = vc.tlb_flushes;
  out->pr_instructions = c.k->counters().instructions;
  if (const BlockCache* bc = c.p->as->blocks_if()) {
    const BlockStats& bs = bc->stats();
    out->pr_bb_built = bs.built;
    out->pr_bb_hits = bs.hits;
    out->pr_bb_misses = bs.misses;
    out->pr_bb_invalidations = bs.invalidations;
    out->pr_bb_fallbacks = bs.fallback_steps;
  }
  return 0;
}

Result<int32_t> OpNWatch(CtlCtx& c, void* arg) {
  *static_cast<int*>(arg) = c.p->as ? static_cast<int>(c.p->as->Watches().size()) : 0;
  return 0;
}

Result<int32_t> OpGetWatches(CtlCtx& c, void* arg) {
  if (!c.p->as) {
    return Errno::kEINVAL;
  }
  auto* out = static_cast<PrWatch*>(arg);
  int i = 0;
  for (const auto& w : c.p->as->Watches()) {
    out[i].pr_vaddr = w.vaddr;
    out[i].pr_size = w.size;
    out[i].pr_wflags = w.wflags;
    ++i;
  }
  return i;
}

Result<int32_t> OpPageData(CtlCtx& c, void* arg) {
  if (!c.p->as) {
    return Errno::kEINVAL;
  }
  auto* pd = static_cast<PrPageData*>(arg);
  pd->segs = c.p->as->SamplePageData(pd->clear);
  return 0;
}

Result<int32_t> OpLwpIds(CtlCtx& c, void* arg) {
  auto* out = static_cast<PrLwpIds*>(arg);
  out->n = 0;
  for (const auto& l : c.p->lwps) {
    if (l->state != LwpState::kDead && out->n < PRNLWPIDS) {
      out->ids[out->n++] = l->lwpid;
    }
  }
  return 0;
}

Result<int32_t> OpAudit(CtlCtx& c, void* arg) {
  *static_cast<PrCtlAudit*>(arg) = BuildPrCtlAudit(c.p);
  return 0;
}

Result<int32_t> OpKstat(CtlCtx& c, void* arg) {
  // Kernel-wide: the target process is only the handle the caller used.
  *static_cast<PrKstat*>(arg) = BuildPrKstat(*c.k);
  return 0;
}

Result<int32_t> OpPsAll(CtlCtx& c, void* arg) {
  // Kernel-wide bulk snapshot: one descriptor, one operation, ps info for
  // the whole population in ascending pid order (zombies included — they
  // are exactly what ps must still show).
  auto* all = static_cast<PrPsAll*>(arg);
  all->pr_procs.clear();
  all->pr_next_pid = -1;
  // Window operands (both default to "everything"): start the scan at
  // pr_start_pid and stop after pr_limit records, reporting the resume
  // pid — at 10^6 processes a caller pages through in bounded memory.
  Pid start = std::max<Pid>(all->pr_start_pid, 0);
  size_t limit = all->pr_limit == 0 ? static_cast<size_t>(-1)
                                    : static_cast<size_t>(all->pr_limit);
  all->pr_procs.reserve(std::min(limit, c.k->ProcCount()));
  for (Pid pid = c.k->NextAllocatedPid(start); pid >= 0;
       pid = c.k->NextAllocatedPid(pid + 1)) {
    Proc* p = c.k->FindProc(pid);
    if (p == nullptr) {
      continue;
    }
    if (all->pr_procs.size() >= limit) {
      all->pr_next_pid = pid;  // first pid NOT included: the resume point
      break;
    }
    all->pr_procs.push_back(BuildPrPsinfo(*c.k, p));
  }
  return static_cast<int32_t>(all->pr_procs.size());
}

Result<int32_t> OpProf(CtlCtx& c, void* arg) {
  // Arm (value >= 0: sample every 2^value retired instructions) or disarm
  // (value < 0) the deterministic pc sampler. The dump is read back from
  // /proc2/<pid>/prof as folded-stack text.
  int v = *static_cast<int*>(arg);
  auto r = c.k->SetProfiling(c.p, v);
  if (!r.ok()) {
    return r.error();
  }
  return 0;
}

// --- The table --------------------------------------------------------------

constexpr int32_t kNoPc = -1;
constexpr uint32_t kNoPioc = 0;

// Field order: name, pioc, pc, arg, operand_size, read_only, zombie_ok,
// lwp_scope, blocking, status_out, alias_pc, alias_operand, priv, handler.
const CtlOp kCtlOps[] = {
    // Control operations, shared by both encodings. Dual rows carry the
    // canonical PC* name so either front-end leaves the same audit trail.
    {"PCNULL", kNoPioc, PCNULL, CtlArgKind::kNone, 0,
     true, true, false, false, false, kNoPc, 0, nullptr, OpNull},
    {"PCSTOP", PIOCSTOP, PCSTOP, CtlArgKind::kNone, 0,
     false, false, true, true, true, kNoPc, 0, nullptr, OpStop},
    {"PCDSTOP", kNoPioc, PCDSTOP, CtlArgKind::kNone, 0,
     false, false, true, false, false, kNoPc, 0, nullptr, OpDirectedStop},
    {"PCWSTOP", PIOCWSTOP, PCWSTOP, CtlArgKind::kNone, 0,
     false, false, false, true, true, kNoPc, 0, nullptr, OpWaitStop},
    {"PCRUN", PIOCRUN, PCRUN, CtlArgKind::kRun, 8,
     false, false, true, false, false, kNoPc, 0, nullptr, OpRun},
    {"PCSTRACE", PIOCSTRACE, PCSTRACE, CtlArgKind::kSigSet, sizeof(SigSet),
     false, false, false, false, false, kNoPc, 0, nullptr, OpSetSigTrace},
    {"PCSFAULT", PIOCSFAULT, PCSFAULT, CtlArgKind::kFltSet, sizeof(FltSet),
     false, false, false, false, false, kNoPc, 0, nullptr, OpSetFltTrace},
    {"PCSENTRY", PIOCSENTRY, PCSENTRY, CtlArgKind::kSysSet, sizeof(SysSet),
     false, false, false, false, false, kNoPc, 0, nullptr, OpSetSysEntry},
    {"PCSEXIT", PIOCSEXIT, PCSEXIT, CtlArgKind::kSysSet, sizeof(SysSet),
     false, false, false, false, false, kNoPc, 0, nullptr, OpSetSysExit},
    {"PCSHOLD", PIOCSHOLD, PCSHOLD, CtlArgKind::kSigSet, sizeof(SigSet),
     false, false, false, false, false, kNoPc, 0, nullptr, OpSetHold},
    {"PCKILL", PIOCKILL, PCKILL, CtlArgKind::kInt, 4,
     false, false, false, false, false, kNoPc, 0, nullptr, OpKill},
    {"PCUNKILL", PIOCUNKILL, PCUNKILL, CtlArgKind::kInt, 4,
     false, false, false, false, false, kNoPc, 0, nullptr, OpUnkill},
    {"PCSSIG", PIOCSSIG, PCSSIG, CtlArgKind::kSigInfo, sizeof(SigInfo),
     false, false, false, false, false, kNoPc, 0, nullptr, OpSetSig},
    {"PCCSIG", kNoPioc, PCCSIG, CtlArgKind::kNone, 0,
     false, false, false, false, false, kNoPc, 0, nullptr, OpClearSig},
    {"PCCFAULT", PIOCCFAULT, PCCFAULT, CtlArgKind::kNone, 0,
     false, false, false, false, false, kNoPc, 0, nullptr, OpClearFault},
    {"PCSREG", PIOCSREG, PCSREG, CtlArgKind::kRegs, sizeof(Regs),
     false, false, true, false, false, kNoPc, 0, nullptr, OpSetRegs},
    {"PCSFPREG", PIOCSFPREG, PCSFPREG, CtlArgKind::kFpRegs, sizeof(FpRegs),
     false, false, true, false, false, kNoPc, 0, nullptr, OpSetFpRegs},
    {"PCNICE", PIOCNICE, PCNICE, CtlArgKind::kInt, 4,
     false, false, false, false, false, kNoPc, 0, NicePriv, OpNice},
    {"PCSET", kNoPioc, PCSET, CtlArgKind::kFlags, 4,
     false, false, false, false, false, kNoPc, 0, nullptr, OpSetModes},
    {"PCUNSET", kNoPioc, PCUNSET, CtlArgKind::kFlags, 4,
     false, false, false, false, false, kNoPc, 0, nullptr, OpClearModes},
    {"PCWATCH", PIOCSWATCH, PCWATCH, CtlArgKind::kWatch, sizeof(PrWatch),
     false, false, false, false, false, kNoPc, 0, nullptr, OpWatch},

    // Flat mode codes: pure aliases marshalling to PCSET/PCUNSET with a
    // fixed operand, so the mode semantics exist in exactly one handler.
    {"PIOCSFORK", PIOCSFORK, kNoPc, CtlArgKind::kNone, -1,
     false, false, false, false, false, PCSET, PR_FORK, nullptr, nullptr},
    {"PIOCRFORK", PIOCRFORK, kNoPc, CtlArgKind::kNone, -1,
     false, false, false, false, false, PCUNSET, PR_FORK, nullptr, nullptr},
    {"PIOCSRLC", PIOCSRLC, kNoPc, CtlArgKind::kNone, -1,
     false, false, false, false, false, PCSET, PR_RLC, nullptr, nullptr},
    {"PIOCRRLC", PIOCRRLC, kNoPc, CtlArgKind::kNone, -1,
     false, false, false, false, false, PCUNSET, PR_RLC, nullptr, nullptr},

    // Flat-only queries: status interrogation travels over ioctl in the
    // flat interface and over read(2) of status files in the hierarchy.
    {"PIOCSTATUS", PIOCSTATUS, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpStatus},
    {"PIOCGTRACE", PIOCGTRACE, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpGetSigTrace},
    {"PIOCGHOLD", PIOCGHOLD, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpGetHold},
    {"PIOCMAXSIG", PIOCMAXSIG, kNoPc, CtlArgKind::kOut, -1,
     true, true, false, false, false, kNoPc, 0, nullptr, OpMaxSig},
    {"PIOCACTION", PIOCACTION, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpActions},
    {"PIOCGFAULT", PIOCGFAULT, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpGetFltTrace},
    {"PIOCGENTRY", PIOCGENTRY, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpGetSysEntry},
    {"PIOCGEXIT", PIOCGEXIT, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpGetSysExit},
    {"PIOCGREG", PIOCGREG, kNoPc, CtlArgKind::kOut, -1,
     true, false, true, false, false, kNoPc, 0, nullptr, OpGetRegs},
    {"PIOCGFPREG", PIOCGFPREG, kNoPc, CtlArgKind::kOut, -1,
     true, false, true, false, false, kNoPc, 0, nullptr, OpGetFpRegs},
    {"PIOCNMAP", PIOCNMAP, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpNMap},
    {"PIOCMAP", PIOCMAP, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpMap},
    {"PIOCOPENM", PIOCOPENM, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpOpenMapped},
    {"PIOCCRED", PIOCCRED, kNoPc, CtlArgKind::kOut, -1,
     true, true, false, false, false, kNoPc, 0, nullptr, OpCred},
    {"PIOCGROUPS", PIOCGROUPS, kNoPc, CtlArgKind::kOut, -1,
     true, true, false, false, false, kNoPc, 0, nullptr, OpGroups},
    {"PIOCPSINFO", PIOCPSINFO, kNoPc, CtlArgKind::kOut, -1,
     true, true, false, false, false, kNoPc, 0, nullptr, OpPsinfo},
    {"PIOCGETPR", PIOCGETPR, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpGetProcRaw},
    {"PIOCGETU", PIOCGETU, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpGetUserRaw},
    {"PIOCUSAGE", PIOCUSAGE, kNoPc, CtlArgKind::kOut, -1,
     true, true, false, false, false, kNoPc, 0, nullptr, OpUsage},
    {"PIOCNWATCH", PIOCNWATCH, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpNWatch},
    {"PIOCGWATCH", PIOCGWATCH, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpGetWatches},
    {"PIOCPAGEDATA", PIOCPAGEDATA, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpPageData},
    {"PIOCLWPIDS", PIOCLWPIDS, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpLwpIds},
    {"PIOCVMSTATS", PIOCVMSTATS, kNoPc, CtlArgKind::kOut, -1,
     true, false, false, false, false, kNoPc, 0, nullptr, OpVmStats},
    {"PIOCAUDIT", PIOCAUDIT, kNoPc, CtlArgKind::kOut, -1,
     true, true, false, false, false, kNoPc, 0, nullptr, OpAudit},
    {"PIOCKSTAT", PIOCKSTAT, kNoPc, CtlArgKind::kOut, -1,
     true, true, false, false, false, kNoPc, 0, nullptr, OpKstat},
    {"PIOCPSALL", PIOCPSALL, kNoPc, CtlArgKind::kOut, -1,
     true, true, false, false, false, kNoPc, 0, nullptr, OpPsAll},
    {"PIOCPROF", PIOCPROF, kNoPc, CtlArgKind::kInt, 4,
     false, false, false, false, false, kNoPc, 0, nullptr, OpProf},
};

// Both code spaces are dense — PIOC codes are kPiocBase|1..48, PC codes
// 0..20 — so the indexes are direct-addressed arrays: dispatch stays on
// par with the switch statements the table replaced.
constexpr int kPiocSlots = 64;
constexpr int kPcSlots = 32;

struct CtlIndex {
  const CtlOp* by_pioc[kPiocSlots] = {};
  const CtlOp* by_pc[kPcSlots] = {};
};

const CtlIndex& Index() {
  static const auto* index = [] {
    auto* x = new CtlIndex();
    for (const CtlOp& op : kCtlOps) {
      if (op.pioc != kNoPioc) {
        x->by_pioc[op.pioc & 0xFF] = &op;
      }
      if (op.pc != kNoPc) {
        x->by_pc[op.pc] = &op;
      }
    }
    return x;
  }();
  return *index;
}

void AppendAudit(const CtlCtx& ctx, const CtlOp& op, const Result<int32_t>& r) {
  TraceState& t = ctx.p->trace;
  if (t.audit == nullptr) {
    // Lazily allocated: most of a large population is never controlled, so
    // paying 2.5KB of ring per proc up front would dominate Proc's footprint.
    t.audit = std::make_unique<std::array<CtlAuditRec, kCtlAuditCap>>();
  }
  CtlAuditRec& rec = (*t.audit)[t.audit_total % kCtlAuditCap];
  std::strncpy(rec.pr_op, op.name, sizeof(rec.pr_op) - 1);  // NUL-pads the slot
  rec.pr_op[sizeof(rec.pr_op) - 1] = '\0';
  rec.pr_caller = ctx.caller != nullptr ? ctx.caller->pid : 0;
  rec.pr_lwpid = ctx.lwp != nullptr ? ctx.lwp->lwpid : 0;
  rec.pr_errno = r.ok() ? 0 : static_cast<int32_t>(r.error());
  rec.pr_tick = ctx.k->Ticks();
  ++t.audit_total;
}

Result<int32_t> RunChecksAndHandler(CtlCtx& ctx, const CtlOp& op, void* arg) {
  if (!op.read_only && !ctx.fd_writable) {
    return Errno::kEBADF;  // control operations need the write right
  }
  if (ctx.p->state == Proc::State::kZombie && !op.zombie_ok) {
    return Errno::kENOENT;  // a zombie has status but no context
  }
  if (op.blocking && !ctx.native_caller) {
    return Errno::kEINVAL;  // blocking operations need a native controller
  }
  if (op.priv != nullptr) {
    SVR4_RETURN_IF_ERROR(op.priv(ctx, arg));
  }
  return op.handler(ctx, arg);
}

}  // namespace

std::span<const CtlOp> CtlOpTable() { return kCtlOps; }

const CtlOp* FindCtlOpByPioc(uint32_t pioc) {
  if ((pioc & ~0xFFu) != kPiocBase || (pioc & 0xFF) >= kPiocSlots) {
    return nullptr;
  }
  return Index().by_pioc[pioc & 0xFF];
}

const CtlOp* FindCtlOpByPc(int32_t pc) {
  if (pc < 0 || pc >= kPcSlots) {
    return nullptr;
  }
  return Index().by_pc[pc];
}

int PrCtlOperandSize(int32_t code) {
  const CtlOp* op = FindCtlOpByPc(code);
  return op == nullptr ? -1 : op->operand_size;
}

Result<int32_t> CtlDispatchOp(CtlCtx& ctx, const CtlOp& op, void* arg) {
  auto r = RunChecksAndHandler(ctx, op, arg);
  if (!op.read_only) {
    AppendAudit(ctx, op, r);
  }
  return r;
}

Result<int32_t> CtlDispatchPioc(CtlCtx& ctx, uint32_t code, void* arg) {
  const CtlOp* op = FindCtlOpByPioc(code);
  if (op == nullptr) {
    // Unknown codes keep the historical errno order: they are treated as
    // control-class with no zombie semantics.
    if (!ctx.fd_writable) {
      return Errno::kEBADF;
    }
    if (ctx.p->state == Proc::State::kZombie) {
      return Errno::kENOENT;
    }
    return Errno::kEINVAL;
  }
  if (code == PIOCSSIG && arg == nullptr) {
    op = FindCtlOpByPc(PCCSIG);  // a null siginfo clears the current signal
  }
  uint32_t fixed = op->alias_operand;
  if (op->alias_pc != kNoPc) {
    op = FindCtlOpByPc(op->alias_pc);
    arg = &fixed;
  }
  auto r = CtlDispatchOp(ctx, *op, arg);
  if (r.ok() && op->status_out && arg != nullptr) {
    *static_cast<PrStatus*>(arg) = BuildPrStatus(*ctx.k, ctx.p);
  }
  return r;
}

Result<int64_t> RunCtlStream(Kernel& k, Proc* p, Lwp* lwp, std::span<const uint8_t> buf,
                             bool native_caller, Proc* caller) {
  CtlCtx ctx;
  ctx.k = &k;
  ctx.p = p;
  ctx.lwp = lwp;
  ctx.caller = caller;
  ctx.native_caller = native_caller;
  ctx.fd_writable = true;  // ctl files are write-only by construction
  ctx.source = CtlSource::kCtlMsg;

  size_t pos = 0;
  while (pos + 4 <= buf.size()) {
    int32_t code;
    std::memcpy(&code, buf.data() + pos, 4);
    const CtlOp* op = FindCtlOpByPc(code);
    if (op == nullptr ||
        pos + 4 + static_cast<size_t>(op->operand_size) > buf.size()) {
      return Errno::kEINVAL;
    }
    const uint8_t* wire = buf.data() + pos + 4;

    // Decode the wire operand into the canonical in-memory type.
    Result<int32_t> r = Errno::kEINVAL;
    switch (op->arg) {
      case CtlArgKind::kNone:
        r = CtlDispatchOp(ctx, *op, nullptr);
        break;
      case CtlArgKind::kInt:
      case CtlArgKind::kFlags: {
        uint32_t v;
        std::memcpy(&v, wire, 4);
        r = CtlDispatchOp(ctx, *op, &v);
        break;
      }
      case CtlArgKind::kSigSet: {
        SigSet v;
        std::memcpy(&v, wire, sizeof(v));
        r = CtlDispatchOp(ctx, *op, &v);
        break;
      }
      case CtlArgKind::kFltSet: {
        FltSet v;
        std::memcpy(&v, wire, sizeof(v));
        r = CtlDispatchOp(ctx, *op, &v);
        break;
      }
      case CtlArgKind::kSysSet: {
        SysSet v;
        std::memcpy(&v, wire, sizeof(v));
        r = CtlDispatchOp(ctx, *op, &v);
        break;
      }
      case CtlArgKind::kSigInfo: {
        SigInfo v;
        std::memcpy(&v, wire, sizeof(v));
        r = CtlDispatchOp(ctx, *op, &v);
        break;
      }
      case CtlArgKind::kRegs: {
        Regs v;
        std::memcpy(&v, wire, sizeof(v));
        r = CtlDispatchOp(ctx, *op, &v);
        break;
      }
      case CtlArgKind::kFpRegs: {
        FpRegs v;
        std::memcpy(&v, wire, sizeof(v));
        r = CtlDispatchOp(ctx, *op, &v);
        break;
      }
      case CtlArgKind::kRun: {
        PrRun run;
        std::memcpy(&run.pr_flags, wire, 4);
        std::memcpy(&run.pr_vaddr, wire + 4, 4);
        // The 8-byte wire form cannot carry the signal/fault sets; honoring
        // a set-flag here would install an *empty* set. Reject explicitly
        // (the sets travel as separate PCSTRACE/PCSHOLD/PCSFAULT messages)
        // instead of silently masking, which this encoding once did.
        if (run.pr_flags & (PRSTRACE | PRSHOLD | PRSFAULT)) {
          return Errno::kEINVAL;
        }
        r = CtlDispatchOp(ctx, *op, &run);
        break;
      }
      case CtlArgKind::kWatch: {
        PrWatch v;
        std::memcpy(&v, wire, sizeof(v));
        r = CtlDispatchOp(ctx, *op, &v);
        break;
      }
      case CtlArgKind::kOut:
        // Query operations have no ctl-message encoding (pc == -1), so a
        // table row can never route here.
        return Errno::kEINVAL;
    }
    if (!r.ok()) {
      // Messages already executed keep their effect.
      return r.error();
    }
    pos += 4 + static_cast<size_t>(op->operand_size);
  }
  if (pos != buf.size()) {
    return Errno::kEINVAL;  // trailing garbage
  }
  return static_cast<int64_t>(buf.size());
}

}  // namespace svr4
