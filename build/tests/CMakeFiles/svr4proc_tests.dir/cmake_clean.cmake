file(REMOVE_RECURSE
  "CMakeFiles/svr4proc_tests.dir/asm_extra_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/asm_extra_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/dbx_shell_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/dbx_shell_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/extended_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/extended_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/fs_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/fs_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/fuzz_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/fuzz_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/isa_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/isa_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/kernel_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/kernel_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/procfs2_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/procfs2_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/procfs_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/procfs_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/property_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/property_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/ptrace_core_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/ptrace_core_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/tools_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/tools_test.cc.o.d"
  "CMakeFiles/svr4proc_tests.dir/vm_test.cc.o"
  "CMakeFiles/svr4proc_tests.dir/vm_test.cc.o.d"
  "svr4proc_tests"
  "svr4proc_tests.pdb"
  "svr4proc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svr4proc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
