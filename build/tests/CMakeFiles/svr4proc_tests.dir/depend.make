# Empty dependencies file for svr4proc_tests.
# This may be replaced when dependencies are built.
