
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/asm_extra_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/asm_extra_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/asm_extra_test.cc.o.d"
  "/root/repo/tests/dbx_shell_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/dbx_shell_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/dbx_shell_test.cc.o.d"
  "/root/repo/tests/extended_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/extended_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/extended_test.cc.o.d"
  "/root/repo/tests/fs_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/fs_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/fs_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/isa_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/isa_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/isa_test.cc.o.d"
  "/root/repo/tests/kernel_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/kernel_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/kernel_test.cc.o.d"
  "/root/repo/tests/procfs2_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/procfs2_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/procfs2_test.cc.o.d"
  "/root/repo/tests/procfs_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/procfs_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/procfs_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/ptrace_core_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/ptrace_core_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/ptrace_core_test.cc.o.d"
  "/root/repo/tests/tools_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/tools_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/tools_test.cc.o.d"
  "/root/repo/tests/vm_test.cc" "tests/CMakeFiles/svr4proc_tests.dir/vm_test.cc.o" "gcc" "tests/CMakeFiles/svr4proc_tests.dir/vm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/svr4proc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
