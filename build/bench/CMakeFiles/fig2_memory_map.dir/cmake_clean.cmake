file(REMOVE_RECURSE
  "CMakeFiles/fig2_memory_map.dir/fig2_memory_map.cc.o"
  "CMakeFiles/fig2_memory_map.dir/fig2_memory_map.cc.o.d"
  "fig2_memory_map"
  "fig2_memory_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_memory_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
