# Empty compiler generated dependencies file for fig2_memory_map.
# This may be replaced when dependencies are built.
