file(REMOVE_RECURSE
  "CMakeFiles/tbl_breakpoints.dir/tbl_breakpoints.cc.o"
  "CMakeFiles/tbl_breakpoints.dir/tbl_breakpoints.cc.o.d"
  "tbl_breakpoints"
  "tbl_breakpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_breakpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
