# Empty compiler generated dependencies file for tbl_breakpoints.
# This may be replaced when dependencies are built.
