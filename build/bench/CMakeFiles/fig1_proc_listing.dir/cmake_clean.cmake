file(REMOVE_RECURSE
  "CMakeFiles/fig1_proc_listing.dir/fig1_proc_listing.cc.o"
  "CMakeFiles/fig1_proc_listing.dir/fig1_proc_listing.cc.o.d"
  "fig1_proc_listing"
  "fig1_proc_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_proc_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
