# Empty dependencies file for fig1_proc_listing.
# This may be replaced when dependencies are built.
