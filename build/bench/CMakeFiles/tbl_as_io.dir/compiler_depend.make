# Empty compiler generated dependencies file for tbl_as_io.
# This may be replaced when dependencies are built.
