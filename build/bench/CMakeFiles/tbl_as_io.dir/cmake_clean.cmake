file(REMOVE_RECURSE
  "CMakeFiles/tbl_as_io.dir/tbl_as_io.cc.o"
  "CMakeFiles/tbl_as_io.dir/tbl_as_io.cc.o.d"
  "tbl_as_io"
  "tbl_as_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_as_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
