file(REMOVE_RECURSE
  "CMakeFiles/tbl_ctl_batching.dir/tbl_ctl_batching.cc.o"
  "CMakeFiles/tbl_ctl_batching.dir/tbl_ctl_batching.cc.o.d"
  "tbl_ctl_batching"
  "tbl_ctl_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_ctl_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
