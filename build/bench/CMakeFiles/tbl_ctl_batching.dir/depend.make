# Empty dependencies file for tbl_ctl_batching.
# This may be replaced when dependencies are built.
