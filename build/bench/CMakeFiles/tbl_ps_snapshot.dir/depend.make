# Empty dependencies file for tbl_ps_snapshot.
# This may be replaced when dependencies are built.
