file(REMOVE_RECURSE
  "CMakeFiles/tbl_ps_snapshot.dir/tbl_ps_snapshot.cc.o"
  "CMakeFiles/tbl_ps_snapshot.dir/tbl_ps_snapshot.cc.o.d"
  "tbl_ps_snapshot"
  "tbl_ps_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_ps_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
