# Empty compiler generated dependencies file for tbl_watchpoints.
# This may be replaced when dependencies are built.
