file(REMOVE_RECURSE
  "CMakeFiles/tbl_watchpoints.dir/tbl_watchpoints.cc.o"
  "CMakeFiles/tbl_watchpoints.dir/tbl_watchpoints.cc.o.d"
  "tbl_watchpoints"
  "tbl_watchpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_watchpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
