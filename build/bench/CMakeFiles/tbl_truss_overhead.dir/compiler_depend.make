# Empty compiler generated dependencies file for tbl_truss_overhead.
# This may be replaced when dependencies are built.
