file(REMOVE_RECURSE
  "CMakeFiles/tbl_truss_overhead.dir/tbl_truss_overhead.cc.o"
  "CMakeFiles/tbl_truss_overhead.dir/tbl_truss_overhead.cc.o.d"
  "tbl_truss_overhead"
  "tbl_truss_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_truss_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
