file(REMOVE_RECURSE
  "CMakeFiles/fig3_stop_points.dir/fig3_stop_points.cc.o"
  "CMakeFiles/fig3_stop_points.dir/fig3_stop_points.cc.o.d"
  "fig3_stop_points"
  "fig3_stop_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stop_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
