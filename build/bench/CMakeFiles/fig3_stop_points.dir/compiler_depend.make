# Empty compiler generated dependencies file for fig3_stop_points.
# This may be replaced when dependencies are built.
