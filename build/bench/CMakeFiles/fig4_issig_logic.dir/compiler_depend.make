# Empty compiler generated dependencies file for fig4_issig_logic.
# This may be replaced when dependencies are built.
