file(REMOVE_RECURSE
  "CMakeFiles/fig4_issig_logic.dir/fig4_issig_logic.cc.o"
  "CMakeFiles/fig4_issig_logic.dir/fig4_issig_logic.cc.o.d"
  "fig4_issig_logic"
  "fig4_issig_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_issig_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
