# Empty compiler generated dependencies file for example_debugger_tool.
# This may be replaced when dependencies are built.
