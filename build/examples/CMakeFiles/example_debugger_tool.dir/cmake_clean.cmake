file(REMOVE_RECURSE
  "CMakeFiles/example_debugger_tool.dir/debugger_tool.cpp.o"
  "CMakeFiles/example_debugger_tool.dir/debugger_tool.cpp.o.d"
  "example_debugger_tool"
  "example_debugger_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_debugger_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
