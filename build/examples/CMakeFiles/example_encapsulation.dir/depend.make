# Empty dependencies file for example_encapsulation.
# This may be replaced when dependencies are built.
