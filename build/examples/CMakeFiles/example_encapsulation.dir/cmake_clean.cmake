file(REMOVE_RECURSE
  "CMakeFiles/example_encapsulation.dir/encapsulation.cpp.o"
  "CMakeFiles/example_encapsulation.dir/encapsulation.cpp.o.d"
  "example_encapsulation"
  "example_encapsulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_encapsulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
