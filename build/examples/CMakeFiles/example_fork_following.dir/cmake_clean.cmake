file(REMOVE_RECURSE
  "CMakeFiles/example_fork_following.dir/fork_following.cpp.o"
  "CMakeFiles/example_fork_following.dir/fork_following.cpp.o.d"
  "example_fork_following"
  "example_fork_following.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fork_following.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
