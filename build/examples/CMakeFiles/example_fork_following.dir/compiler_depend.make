# Empty compiler generated dependencies file for example_fork_following.
# This may be replaced when dependencies are built.
