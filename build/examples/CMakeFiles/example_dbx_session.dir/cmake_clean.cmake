file(REMOVE_RECURSE
  "CMakeFiles/example_dbx_session.dir/dbx_session.cpp.o"
  "CMakeFiles/example_dbx_session.dir/dbx_session.cpp.o.d"
  "example_dbx_session"
  "example_dbx_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dbx_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
