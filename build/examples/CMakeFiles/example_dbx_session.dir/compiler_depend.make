# Empty compiler generated dependencies file for example_dbx_session.
# This may be replaced when dependencies are built.
