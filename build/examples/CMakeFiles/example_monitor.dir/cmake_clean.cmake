file(REMOVE_RECURSE
  "CMakeFiles/example_monitor.dir/monitor.cpp.o"
  "CMakeFiles/example_monitor.dir/monitor.cpp.o.d"
  "example_monitor"
  "example_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
