# Empty dependencies file for example_truss_tool.
# This may be replaced when dependencies are built.
