file(REMOVE_RECURSE
  "CMakeFiles/example_truss_tool.dir/truss_tool.cpp.o"
  "CMakeFiles/example_truss_tool.dir/truss_tool.cpp.o.d"
  "example_truss_tool"
  "example_truss_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_truss_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
