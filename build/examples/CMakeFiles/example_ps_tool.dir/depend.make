# Empty dependencies file for example_ps_tool.
# This may be replaced when dependencies are built.
