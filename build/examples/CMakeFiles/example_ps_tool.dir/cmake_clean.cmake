file(REMOVE_RECURSE
  "CMakeFiles/example_ps_tool.dir/ps_tool.cpp.o"
  "CMakeFiles/example_ps_tool.dir/ps_tool.cpp.o.d"
  "example_ps_tool"
  "example_ps_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ps_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
