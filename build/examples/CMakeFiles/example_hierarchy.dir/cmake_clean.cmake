file(REMOVE_RECURSE
  "CMakeFiles/example_hierarchy.dir/hierarchy.cpp.o"
  "CMakeFiles/example_hierarchy.dir/hierarchy.cpp.o.d"
  "example_hierarchy"
  "example_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
