# Empty dependencies file for example_hierarchy.
# This may be replaced when dependencies are built.
