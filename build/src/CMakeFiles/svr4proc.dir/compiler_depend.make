# Empty compiler generated dependencies file for svr4proc.
# This may be replaced when dependencies are built.
