file(REMOVE_RECURSE
  "libsvr4proc.a"
)
