
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/result.cc" "src/CMakeFiles/svr4proc.dir/base/result.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/base/result.cc.o.d"
  "/root/repo/src/fs/dev.cc" "src/CMakeFiles/svr4proc.dir/fs/dev.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/fs/dev.cc.o.d"
  "/root/repo/src/fs/memfs.cc" "src/CMakeFiles/svr4proc.dir/fs/memfs.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/fs/memfs.cc.o.d"
  "/root/repo/src/fs/vfs.cc" "src/CMakeFiles/svr4proc.dir/fs/vfs.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/fs/vfs.cc.o.d"
  "/root/repo/src/fs/vnode.cc" "src/CMakeFiles/svr4proc.dir/fs/vnode.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/fs/vnode.cc.o.d"
  "/root/repo/src/isa/aout.cc" "src/CMakeFiles/svr4proc.dir/isa/aout.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/isa/aout.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/svr4proc.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/cpu.cc" "src/CMakeFiles/svr4proc.dir/isa/cpu.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/isa/cpu.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/CMakeFiles/svr4proc.dir/isa/disasm.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/isa/disasm.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/svr4proc.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/isa/isa.cc.o.d"
  "/root/repo/src/kernel/core.cc" "src/CMakeFiles/svr4proc.dir/kernel/core.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/kernel/core.cc.o.d"
  "/root/repo/src/kernel/exec.cc" "src/CMakeFiles/svr4proc.dir/kernel/exec.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/kernel/exec.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/CMakeFiles/svr4proc.dir/kernel/kernel.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/ptrace.cc" "src/CMakeFiles/svr4proc.dir/kernel/ptrace.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/kernel/ptrace.cc.o.d"
  "/root/repo/src/kernel/signal.cc" "src/CMakeFiles/svr4proc.dir/kernel/signal.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/kernel/signal.cc.o.d"
  "/root/repo/src/kernel/syscall_table.cc" "src/CMakeFiles/svr4proc.dir/kernel/syscall_table.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/kernel/syscall_table.cc.o.d"
  "/root/repo/src/kernel/syscalls.cc" "src/CMakeFiles/svr4proc.dir/kernel/syscalls.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/kernel/syscalls.cc.o.d"
  "/root/repo/src/procfs/build.cc" "src/CMakeFiles/svr4proc.dir/procfs/build.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/procfs/build.cc.o.d"
  "/root/repo/src/procfs/flat.cc" "src/CMakeFiles/svr4proc.dir/procfs/flat.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/procfs/flat.cc.o.d"
  "/root/repo/src/procfs/hier.cc" "src/CMakeFiles/svr4proc.dir/procfs/hier.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/procfs/hier.cc.o.d"
  "/root/repo/src/ptlib/ptrace_lib.cc" "src/CMakeFiles/svr4proc.dir/ptlib/ptrace_lib.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/ptlib/ptrace_lib.cc.o.d"
  "/root/repo/src/tools/dbx_shell.cc" "src/CMakeFiles/svr4proc.dir/tools/dbx_shell.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/tools/dbx_shell.cc.o.d"
  "/root/repo/src/tools/debugger.cc" "src/CMakeFiles/svr4proc.dir/tools/debugger.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/tools/debugger.cc.o.d"
  "/root/repo/src/tools/proclib.cc" "src/CMakeFiles/svr4proc.dir/tools/proclib.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/tools/proclib.cc.o.d"
  "/root/repo/src/tools/ps.cc" "src/CMakeFiles/svr4proc.dir/tools/ps.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/tools/ps.cc.o.d"
  "/root/repo/src/tools/sim.cc" "src/CMakeFiles/svr4proc.dir/tools/sim.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/tools/sim.cc.o.d"
  "/root/repo/src/tools/truss.cc" "src/CMakeFiles/svr4proc.dir/tools/truss.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/tools/truss.cc.o.d"
  "/root/repo/src/vm/vm.cc" "src/CMakeFiles/svr4proc.dir/vm/vm.cc.o" "gcc" "src/CMakeFiles/svr4proc.dir/vm/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
