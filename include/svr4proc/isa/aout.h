// The executable file format ("a.out") for the virtual ISA.
//
// An a.out image carries text, initialized data, a bss size, an entry point,
// a symbol table, and optionally the name of one shared library the program
// was linked against. The exec loader maps text as a private read/execute
// mapping of the file, data as a private read/write mapping, and bss/stack
// as anonymous zero-fill — reproducing the segment structure of Figure 2 of
// the paper. Debuggers read symbol tables from these files, located at run
// time through the PIOCOPENM /proc operation rather than by pathname.
#ifndef SVR4PROC_ISA_AOUT_H_
#define SVR4PROC_ISA_AOUT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "svr4proc/base/result.h"

namespace svr4 {

// Symbol types.
enum class SymType : uint8_t {
  kText = 'T',
  kData = 'D',
  kBss = 'B',
  kAbs = 'A',
};

struct AoutSymbol {
  std::string name;
  uint32_t value = 0;
  SymType type = SymType::kAbs;
};

struct Aout {
  static constexpr uint32_t kMagic = 0x53563441;  // "SV4A"
  // Segments are page-aligned in the file so the exec loader can map the
  // file object directly (text shared between all processes running it).
  static constexpr uint32_t kFileAlign = 4096;

  uint32_t entry = 0;
  uint32_t text_vaddr = 0;
  std::vector<uint8_t> text;
  uint32_t data_vaddr = 0;
  std::vector<uint8_t> data;
  uint32_t bss_vaddr = 0;
  uint32_t bss_size = 0;
  std::string lib;  // name of a shared library dependency; empty if none
  std::vector<AoutSymbol> symbols;

  std::vector<uint8_t> Serialize() const;
  static Result<Aout> Parse(std::span<const uint8_t> bytes);

  // Value of a named symbol; ENOENT if absent.
  Result<uint32_t> SymbolValue(std::string_view name) const;

  // Name of the symbol with the greatest value <= addr within the image, and
  // the offset from it; empty result if addr precedes all symbols.
  struct NearSym {
    std::string name;
    uint32_t offset = 0;
  };
  NearSym NearestSymbol(uint32_t addr) const;

  // Total virtual size (text + data + bss), as /proc reports for file size.
  uint32_t VirtualSize() const {
    return static_cast<uint32_t>(text.size() + data.size()) + bss_size;
  }

  // File offsets of the segments in the serialized image (page-aligned).
  static constexpr uint32_t TextFileOffset() { return kFileAlign; }
  uint32_t DataFileOffset() const {
    uint32_t t = TextFileOffset() + static_cast<uint32_t>(text.size());
    return (t + kFileAlign - 1) / kFileAlign * kFileAlign;
  }
};

}  // namespace svr4

#endif  // SVR4PROC_ISA_AOUT_H_
