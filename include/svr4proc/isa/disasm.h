// Single-instruction disassembler; used by the debugger and by truss-style
// reporting of pr_instr.
#ifndef SVR4PROC_ISA_DISASM_H_
#define SVR4PROC_ISA_DISASM_H_

#include <cstdint>
#include <span>
#include <string>

namespace svr4 {

struct DisasmResult {
  std::string mnemonic;  // "ldi r1, 0x50" or "<illegal 0xAB>"
  int length = 1;        // bytes consumed (1 for illegal bytes)
};

// Disassembles the instruction at the start of `bytes`. `addr` is used only
// for rendering (absolute targets are shown as-is).
DisasmResult DisassembleOne(std::span<const uint8_t> bytes, uint32_t addr = 0);

}  // namespace svr4

#endif  // SVR4PROC_ISA_DISASM_H_
