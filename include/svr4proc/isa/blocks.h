// Predecoded basic-block execution engine for the virtual ISA.
//
// The decode-dispatch interpreter (CpuStep) pays an instruction fetch, a
// length check, and operand extraction on every instruction. This engine
// decodes each straight-line block once — terminated by any control
// transfer, syscall, trapping instruction, or a length/page cap — into an
// array of predecoded operands, and executes blocks with threaded-code
// dispatch (computed goto where the compiler supports it, a dense jump-table
// switch otherwise). Architectural behaviour is byte-identical to CpuStep:
// the same faults at the same pc with the same register and flag effects.
//
// Validity is generation-based: a block records the owning AddressSpace's
// code generation (AddressSpace::CodeGen()) at build time and is dropped the
// moment the generations disagree. The generation advances on every mapping
// or protection change, COW break, watchpoint change, TLB flush, and on any
// store into an executable mapping — so a planted breakpoint, a /proc text
// write, or self-modifying code can never execute out of a stale block. The
// executor additionally re-checks the generation after every store it
// performs, so code that patches an instruction *later in its own block*
// observes the new bytes exactly as the interpreter would.
//
// The engine never runs when per-instruction observation is required: the
// kernel falls back to the interpreter whenever hooks are armed (fault
// injection, chaos, tracing), the trace bit is set, watchpoints are active,
// or the software TLB is disabled.
#ifndef SVR4PROC_ISA_BLOCKS_H_
#define SVR4PROC_ISA_BLOCKS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "svr4proc/isa/cpu.h"
#include "svr4proc/isa/isa.h"

namespace svr4 {

class AddressSpace;

// Dense dispatch indices, one per defined opcode. Kept dense (unlike the
// sparse Opcode byte space) so the dispatch table has no holes.
enum BKind : uint8_t {
  B_ILL,  // any undefined opcode byte; raises FLTILL at the instruction
  B_NOP,
  B_BPT,
  B_RET,
  B_HLT,
  B_SYS,
  B_MOV,
  B_ADD,
  B_SUB,
  B_MUL,
  B_DIV,
  B_MOD,
  B_AND,
  B_OR,
  B_XOR,
  B_SHL,
  B_SHR,
  B_CMP,
  B_ADDV,
  B_LDI,
  B_ADDI,
  B_CMPI,
  B_LDW,
  B_STW,
  B_LDB,
  B_STB,
  B_JMP,
  B_JZ,
  B_JNZ,
  B_JLT,
  B_JGE,
  B_JGT,
  B_JLE,
  B_JCS,
  B_JCC,
  B_CALL,
  B_PUSH,
  B_POP,
  B_CALLR,
  B_JMPR,
  B_FLDI,
  B_FMOV,
  B_FADD,
  B_FSUB,
  B_FMUL,
  B_FDIV,
  B_FTOI,
  B_ITOF,
  B_KIND_COUNT,
};

// One predecoded instruction: operands extracted, lengths resolved, no
// byte-level work left at execution time. 16 bytes, array-of-structs.
struct PInstr {
  uint8_t kind = B_ILL;  // BKind dispatch index
  uint8_t rd = 0;        // destination register / fp register
  uint8_t rs = 0;        // source register / fp register
  uint8_t len = 1;       // encoded length in bytes
  uint32_t imm = 0;      // imm32, branch target, sign-extended off16,
                         // or fimm[] index for fldi
  uint32_t pc = 0;       // virtual address of this instruction
};

struct Block {
  uint32_t start = 0;  // pc of the first instruction
  uint32_t gen = 0;    // AddressSpace::CodeGen() at build time
  std::vector<PInstr> code;
  std::vector<double> fimm;  // fldi payloads, indexed by PInstr::imm
};

// Per-address-space engine counters, exposed through PIOCVMSTATS and
// aggregated into /proc2/kernel/metrics.
struct BlockStats {
  uint64_t built = 0;          // blocks (re)decoded
  uint64_t hits = 0;           // lookups served by a valid cached block
  uint64_t misses = 0;         // lookups with no block cached at that pc
  uint64_t invalidations = 0;  // cached blocks dropped on generation mismatch
  uint64_t fallback_steps = 0; // instructions run via the interpreter while
                               // the block engine was selected (trace bit,
                               // watchpoints, TLB off, unfetchable pc)
};

// Predecodes the single instruction at `bytes` (which holds at least
// InstrLength(bytes[0]) valid bytes; undefined opcodes need 1). Fills *out
// and returns its encoded length. Shared by the block builder and the
// decoder-consistency tests.
int PredecodeOne(const uint8_t* bytes, uint32_t pc, PInstr* out);

// True when the opcode ends a basic block: control transfers, syscalls, and
// every instruction that can only trap (bpt/hlt/undefined).
bool IsBlockTerminator(uint8_t opcode);

// Direct-mapped block cache slots; power of two.
inline constexpr uint32_t kBlockCacheSlots = 512;
// Block length cap in instructions.
inline constexpr uint32_t kMaxBlockInstrs = 64;

// Per-AddressSpace cache of predecoded blocks keyed by start pc.
class BlockCache {
 public:
  // Returns a valid block starting at pc, building one if necessary.
  // Returns nullptr when pc cannot be block-cached right now (first
  // instruction unfetchable, or its page is not a cacheable private
  // executable mapping) — the caller must interpret that instruction.
  const Block* Get(uint32_t pc, AddressSpace& as);

  BlockStats& stats() { return stats_; }
  const BlockStats& stats() const { return stats_; }

 private:
  struct Slot {
    bool valid = false;
    Block blk;
  };

  bool BuildInto(Slot& s, uint32_t pc, AddressSpace& as);

  std::array<Slot, kBlockCacheSlots> slots_;
  BlockStats stats_;
};

// Result of running (a prefix of) a block.
struct BlockRun {
  uint32_t executed = 0;  // instructions retired
  StepResult last;        // kOk: ran to the block end or the instruction
                          // budget; kSyscall/kFault: the terminating event,
                          // with regs.pc positioned exactly as CpuStep would
};

// Executes up to max_instrs instructions of the block (max_instrs >= 1).
// The caller guarantees b is valid for as's current code generation and
// that the trace bit is clear and watchpoints are inactive.
BlockRun ExecuteBlock(const Block& b, Regs& regs, FpRegs& fp, AddressSpace& as,
                      uint32_t max_instrs);

}  // namespace svr4

#endif  // SVR4PROC_ISA_BLOCKS_H_
