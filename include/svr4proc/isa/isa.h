// The virtual instruction set architecture executed by simulated processes.
//
// Design constraints come straight from the paper's breakpoint discussion:
//  * variable-length instructions, with the approved breakpoint instruction
//    (BPT) being the shortest instruction in the set (1 byte), so a planted
//    breakpoint never overwrites the following instruction;
//  * executing BPT leaves the program counter at the breakpoint address
//    itself ("preferably the breakpoint address itself");
//  * a trace bit in the processor status register produces a FLTTRACE
//    machine fault after each instruction (single-stepping);
//  * distinct machine faults for illegal instructions, privileged
//    instructions, access violations, bounds errors, integer and floating
//    faults, and watchpoints, mirroring the SVR4 fault vector.
#ifndef SVR4PROC_ISA_ISA_H_
#define SVR4PROC_ISA_ISA_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace svr4 {

// Machine fault numbers (fltset_t members). Enumerated from 1.
enum Fault : int {
  FLTILL = 1,     // illegal instruction
  FLTPRIV = 2,    // privileged instruction
  FLTBPT = 3,     // breakpoint instruction
  FLTTRACE = 4,   // trace trap (trace bit set)
  FLTACCESS = 5,  // memory access violation (protection)
  FLTBOUNDS = 6,  // memory bounds violation (unmapped address)
  FLTIOVF = 7,    // integer overflow
  FLTIZDIV = 8,   // integer zero divide
  FLTFPE = 9,     // floating point exception
  FLTSTACK = 10,  // unrecoverable stack fault
  FLTPAGE = 11,   // recoverable page fault (resolved internally; never user-visible unless traced)
  FLTWATCH = 12,  // watchpoint trap (proposed extension)
  kNumFaults = 12,
};

std::string_view FaultName(int fault);

// Processor status register bits.
enum PsrBit : uint32_t {
  kPsrZ = 1u << 0,  // zero
  kPsrN = 1u << 1,  // negative
  kPsrC = 1u << 2,  // carry (set by the kernel on syscall error)
  kPsrV = 1u << 3,  // overflow
  kPsrT = 1u << 4,  // trace: FLTTRACE after every instruction
};

// General-purpose register file. r15 doubles as the stack pointer and r14
// as the conventional frame pointer.
inline constexpr int kNumRegs = 16;
inline constexpr int kRegSp = 15;
inline constexpr int kRegFp = 14;

struct Regs {
  std::array<uint32_t, kNumRegs> r{};
  uint32_t pc = 0;
  uint32_t psr = 0;

  uint32_t sp() const { return r[kRegSp]; }
  void set_sp(uint32_t v) { r[kRegSp] = v; }

  friend bool operator==(const Regs&, const Regs&) = default;
};

inline constexpr int kNumFpRegs = 8;

struct FpRegs {
  std::array<double, kNumFpRegs> f{};
  uint32_t fsr = 0;  // sticky floating-point status

  friend bool operator==(const FpRegs&, const FpRegs&) = default;
};

// Opcodes. The byte value is the first (and sometimes only) byte of the
// instruction; operand bytes follow in the encodings documented per group.
enum Opcode : uint8_t {
  // 1-byte instructions.
  kOpIll = 0x00,   // guaranteed-illegal (FLTILL)
  kOpNop = 0x01,
  kOpBpt = 0x02,   // approved breakpoint instruction (FLTBPT)
  kOpRet = 0x03,   // pop pc
  kOpHlt = 0x04,   // privileged; FLTPRIV in user mode
  kOpSys = 0x05,   // system call: number in r0, args r1..r6

  // 2-byte register/register: opcode, (rd << 4) | rs.
  kOpMov = 0x10,
  kOpAdd = 0x12,
  kOpSub = 0x13,
  kOpMul = 0x14,
  kOpDiv = 0x15,   // FLTIZDIV if rs == 0
  kOpMod = 0x16,   // FLTIZDIV if rs == 0
  kOpAnd = 0x17,
  kOpOr = 0x18,
  kOpXor = 0x19,
  kOpShl = 0x1A,
  kOpShr = 0x1B,
  kOpCmp = 0x1D,   // flags := rd ? rs
  kOpAddv = 0x1F,  // add with signed-overflow check (FLTIOVF)

  // 6-byte register/immediate: opcode, rd, imm32 (little endian).
  kOpLdi = 0x11,
  kOpAddi = 0x1C,
  kOpCmpi = 0x1E,

  // 4-byte loads/stores: opcode, (rv << 4) | ra, off16 (signed LE).
  kOpLdw = 0x20,   // rv := mem32[ra + off]
  kOpStw = 0x21,   // mem32[ra + off] := rv
  kOpLdb = 0x22,   // rv := zero-extended mem8[ra + off]
  kOpStb = 0x23,   // mem8[ra + off] := low byte of rv

  // 5-byte absolute control transfer: opcode, addr32.
  kOpJmp = 0x30,
  kOpJz = 0x31,
  kOpJnz = 0x32,
  kOpJlt = 0x33,   // signed <   (N != V)
  kOpJge = 0x34,   // signed >=
  kOpJgt = 0x35,   // signed >
  kOpJle = 0x36,   // signed <=
  kOpJcs = 0x37,   // carry set (syscall error path)
  kOpJcc = 0x38,   // carry clear
  kOpCall = 0x40,  // push return address, jump

  // 2-byte register forms.
  kOpPush = 0x41,  // opcode, rs
  kOpPop = 0x42,   // opcode, rd
  kOpCallr = 0x43, // opcode, rs: indirect call
  kOpJmpr = 0x44,  // opcode, rs: indirect jump

  // Floating point.
  kOpFldi = 0x50,  // 10 bytes: opcode, fd, ieee754 double (LE)
  kOpFmov = 0x51,  // 2 bytes: opcode, (fd << 4) | fs
  kOpFadd = 0x52,
  kOpFsub = 0x53,
  kOpFmul = 0x54,
  kOpFdiv = 0x55,  // FLTFPE on divide by zero
  kOpFtoi = 0x56,  // 2 bytes: opcode, (rd << 4) | fs
  kOpItof = 0x57,  // 2 bytes: opcode, (fd << 4) | rs
};

// Length in bytes of the instruction starting with the given opcode byte,
// or 0 if the opcode is illegal.
int InstrLength(uint8_t opcode);

// Mnemonic for an opcode ("add", "bpt", ...), or empty if illegal.
std::string_view OpcodeName(uint8_t opcode);

// The shortest instruction length in the ISA; the breakpoint instruction is
// exactly this long, per the paper's guidance.
inline constexpr int kBreakpointLength = 1;
inline constexpr uint8_t kBreakpointByte = kOpBpt;

// The longest instruction in the ISA (fldi: opcode, fd, 8-byte double).
inline constexpr int kMaxInstrLen = 10;

// Fetch-window size the interpreter requests per instruction: a power of two
// no smaller than kMaxInstrLen, so memory implementations can satisfy a full
// window with one fixed-size copy instead of a variable-length one.
inline constexpr uint32_t kFetchWindowBytes = 16;

}  // namespace svr4

#endif  // SVR4PROC_ISA_ISA_H_
