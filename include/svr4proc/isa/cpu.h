// Single-instruction interpreter for the virtual ISA.
//
// The CPU is stateless: all architectural state lives in Regs/FpRegs (owned
// by the LWP) and memory is accessed through MemoryIf (implemented by the VM
// layer's AddressSpace). This mirrors how the real kernel's trap handlers
// operate on a saved register context.
#ifndef SVR4PROC_ISA_CPU_H_
#define SVR4PROC_ISA_CPU_H_

#include <cstdint>
#include <optional>

#include "svr4proc/isa/isa.h"

namespace svr4 {

enum class Access { kRead, kWrite, kExec };

// A memory access that could not be completed, expressed as a machine fault.
struct MemFault {
  int fault = 0;       // Fault enum value
  uint32_t addr = 0;   // faulting virtual address
};

// Abstract byte-addressed memory with protection semantics. Accesses never
// partially complete: on fault nothing is transferred.
class MemoryIf {
 public:
  virtual ~MemoryIf() = default;
  virtual std::optional<MemFault> MemRead(uint32_t addr, void* buf, uint32_t len,
                                          Access kind) = 0;
  virtual std::optional<MemFault> MemWrite(uint32_t addr, const void* buf, uint32_t len) = 0;

  // Best-effort wide instruction fetch: copies up to len executable bytes
  // starting at addr into buf, never crossing a page, and returns how many
  // were copied. 0 means "unsupported or not fetchable this way" — the
  // caller must fall back to exact MemRead fetches, which also yields the
  // precise faulting byte address. Implementations may over-read past the
  // instruction, so they must not have byte-granular side effects (e.g.
  // watchpoints) on the fetched range.
  virtual uint32_t FetchWindow(uint32_t addr, void* buf, uint32_t len) {
    (void)addr;
    (void)buf;
    (void)len;
    return 0;
  }
};

struct StepResult {
  enum Kind { kOk, kSyscall, kFault };
  Kind kind = kOk;
  int fault = 0;           // valid when kind == kFault
  uint32_t fault_addr = 0;
};

// Executes exactly one instruction.
//
// Fault semantics: on any fault the program counter is left at the faulting
// instruction (restartable); in particular a BPT fault leaves pc at the
// breakpoint address. FLTTRACE (trace bit) is reported after the instruction
// completes, with pc already advanced. kSyscall is returned with pc advanced
// past the SYS instruction; the kernel performs dispatch.
StepResult CpuStep(Regs& regs, FpRegs& fp, MemoryIf& mem);

}  // namespace svr4

#endif  // SVR4PROC_ISA_CPU_H_
