// Two-pass assembler producing a.out images for the virtual ISA.
//
// Syntax summary (one statement per line; ';' or '#' starts a comment):
//
//   label:  mnemonic operand, operand        ; instruction
//           .text / .data / .bss             ; section switch
//           .word v, v, ...                  ; 32-bit data (values or labels)
//           .byte v, v, ...
//           .ascii "str" / .asciz "str"
//           .space n                         ; n zero bytes (.bss too)
//           .align n                         ; pad to n-byte boundary
//           .entry label                     ; program entry point
//           .lib "name"                      ; shared library dependency
//           .equ name, value                 ; absolute symbol
//
// Operands: registers r0..r15 (aliases sp=r15, fp=r14), float registers
// f0..f7, immediates (decimal, 0x hex, 'c' char, label, label+n, label-n),
// memory operands [rN], [rN+imm], [rN-imm], and float literals for fldi.
//
// All labels are global and are emitted into the a.out symbol table, which
// is how the debugger example resolves names through PIOCOPENM.
#ifndef SVR4PROC_ISA_ASSEMBLER_H_
#define SVR4PROC_ISA_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "svr4proc/base/result.h"
#include "svr4proc/isa/aout.h"

namespace svr4 {

struct AsmOptions {
  uint32_t text_base = 0x80000000;  // Figure 2's a.out text address
  uint32_t data_align = 0x8000;     // data segment alignment after text
};

class Assembler {
 public:
  explicit Assembler(AsmOptions opts = {});

  // Predefine an absolute symbol (e.g. syscall numbers).
  void Define(std::string name, uint32_t value);

  // Import every symbol of a shared-library image as absolute definitions so
  // programs can call into the mapped library at its linked addresses.
  void ImportLibrary(const Aout& lib_image, std::string lib_name);

  // Assemble a complete source text. On failure the result carries EINVAL
  // and error() describes the first problem ("line 12: unknown mnemonic").
  Result<Aout> Assemble(std::string_view source);

  const std::string& error() const { return error_; }

 private:
  AsmOptions opts_;
  std::map<std::string, uint32_t, std::less<>> predefined_;
  std::string lib_name_;
  std::string error_;
};

}  // namespace svr4

#endif  // SVR4PROC_ISA_ASSEMBLER_H_
