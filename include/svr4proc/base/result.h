// Error model for the svr4proc library.
//
// Kernel-style code paths report failure as a UNIX errno; Result<T> carries
// either a value or an Errno without exceptions, mirroring how the simulated
// syscall layer reports errors to user code (carry flag + errno register).
#ifndef SVR4PROC_BASE_RESULT_H_
#define SVR4PROC_BASE_RESULT_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

namespace svr4 {

// UNIX System V errno values (the subset the simulation uses).
enum class Errno : int32_t {
  kOk = 0,
  kEPERM = 1,
  kENOENT = 2,
  kESRCH = 3,
  kEINTR = 4,
  kEIO = 5,
  kENXIO = 6,
  kE2BIG = 7,
  kENOEXEC = 8,
  kEBADF = 9,
  kECHILD = 10,
  kEAGAIN = 11,
  kENOMEM = 12,
  kEACCES = 13,
  kEFAULT = 14,
  kEBUSY = 16,
  kEEXIST = 17,
  kENODEV = 19,
  kENOTDIR = 20,
  kEISDIR = 21,
  kEINVAL = 22,
  kENFILE = 23,
  kEMFILE = 24,
  kENOTTY = 25,
  kEFBIG = 27,
  kENOSPC = 28,
  kESPIPE = 29,
  kEROFS = 30,
  kEPIPE = 32,
  kEDOM = 33,
  kERANGE = 34,
  kENOMSG = 35,
  kEDEADLK = 45,
  kENOTEMPTY = 93,
  kENAMETOOLONG = 78,
  kENOSYS = 89,
  kEOVERFLOW = 79,
  kETIMEDOUT = 145,
};

// Symbolic name ("EINVAL") for an errno; "EUNKNOWN" if not recognized.
std::string_view ErrnoName(Errno e);

// A value-or-errno carrier. An Errno of kOk is not a valid error; use the
// value constructor for success.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)), error_(Errno::kOk) {}  // NOLINT(google-explicit-constructor)
  Result(Errno e) : error_(e) { assert(e != Errno::kOk); }  // NOLINT(google-explicit-constructor)

  bool ok() const { return error_ == Errno::kOk; }
  explicit operator bool() const { return ok(); }

  Errno error() const { return error_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  // Rvalue access moves the value out, so `auto v = *SomeCall();` works for
  // move-only payloads.
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Errno error_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : error_(Errno::kOk) {}
  Result(Errno e) : error_(e) {}  // NOLINT(google-explicit-constructor)

  static Result Ok() { return Result(); }

  bool ok() const { return error_ == Errno::kOk; }
  explicit operator bool() const { return ok(); }
  Errno error() const { return error_; }

 private:
  Errno error_;
};

// Propagate-on-error helper: evaluates expr (a Result<...>) and returns its
// error from the enclosing function if it failed.
#define SVR4_RETURN_IF_ERROR(expr)          \
  do {                                      \
    auto svr4_status_ = (expr);             \
    if (!svr4_status_.ok()) {               \
      return svr4_status_.error();          \
    }                                       \
  } while (0)

}  // namespace svr4

#endif  // SVR4PROC_BASE_RESULT_H_
