// Fixed-size bit sets used to express "events of interest" in the /proc
// interface: sets of signals (sigset_t), machine faults (fltset_t), and
// system calls (sysset_t). Members are enumerated from 1, as the paper
// specifies: "there is no fault number 0 or system call number 0".
#ifndef SVR4PROC_BASE_FIXED_SET_H_
#define SVR4PROC_BASE_FIXED_SET_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <initializer_list>

namespace svr4 {

template <int N>
class FixedSet {
 public:
  static_assert(N > 0 && N % 32 == 0, "set size must be a positive multiple of 32");
  static constexpr int kMaxMember = N;

  constexpr FixedSet() : words_{} {}
  constexpr FixedSet(std::initializer_list<int> members) : words_{} {
    for (int m : members) {
      Add(m);
    }
  }

  // Number range check: valid members are 1..N inclusive.
  static constexpr bool Valid(int member) { return member >= 1 && member <= N; }

  constexpr void Add(int member) {
    const int w = Word(member);
    if (Valid(member) && w >= 0 && w < kWords) {
      words_[static_cast<size_t>(w)] |= Bit(member);
    }
  }
  constexpr void Remove(int member) {
    const int w = Word(member);
    if (Valid(member) && w >= 0 && w < kWords) {
      words_[static_cast<size_t>(w)] &= ~Bit(member);
    }
  }
  constexpr bool Has(int member) const {
    const int w = Word(member);
    return Valid(member) && w >= 0 && w < kWords &&
           (words_[static_cast<size_t>(w)] & Bit(member)) != 0;
  }

  constexpr void Fill() {
    for (auto& w : words_) {
      w = 0xFFFFFFFFu;
    }
  }
  constexpr void Clear() {
    for (auto& w : words_) {
      w = 0;
    }
  }
  constexpr bool Empty() const {
    for (auto w : words_) {
      if (w != 0) {
        return false;
      }
    }
    return true;
  }

  constexpr int Count() const {
    int n = 0;
    for (auto w : words_) {
      n += __builtin_popcount(w);
    }
    return n;
  }

  // Lowest member present, or 0 if the set is empty.
  constexpr int First() const {
    for (int i = 0; i < kWords; ++i) {
      if (words_[i] != 0) {
        return i * 32 + __builtin_ctz(words_[i]) + 1;
      }
    }
    return 0;
  }

  constexpr FixedSet& operator|=(const FixedSet& o) {
    for (int i = 0; i < kWords; ++i) {
      words_[i] |= o.words_[i];
    }
    return *this;
  }
  constexpr FixedSet& operator&=(const FixedSet& o) {
    for (int i = 0; i < kWords; ++i) {
      words_[i] &= o.words_[i];
    }
    return *this;
  }
  // Set difference: removes o's members from this set.
  constexpr FixedSet& operator-=(const FixedSet& o) {
    for (int i = 0; i < kWords; ++i) {
      words_[i] &= ~o.words_[i];
    }
    return *this;
  }

  friend constexpr bool operator==(const FixedSet& a, const FixedSet& b) {
    return a.words_ == b.words_;
  }

  static constexpr FixedSet Full() {
    FixedSet s;
    s.Fill();
    return s;
  }

 private:
  // Member m occupies bit (m - 1): members are enumerated from 1.
  static constexpr int kWords = N / 32;
  static constexpr int Word(int member) { return (member - 1) / 32; }
  static constexpr uint32_t Bit(int member) { return 1u << ((member - 1) % 32); }

  std::array<uint32_t, kWords> words_;
};

// The SVR4 implementation provides for up to 128 signals, 128 faults and
// 512 system calls.
using SigSet = FixedSet<128>;
using FltSet = FixedSet<128>;
using SysSet = FixedSet<512>;

}  // namespace svr4

#endif  // SVR4PROC_BASE_FIXED_SET_H_
