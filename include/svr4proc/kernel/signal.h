// UNIX System V signal numbers, default actions, and related structures.
#ifndef SVR4PROC_KERNEL_SIGNAL_H_
#define SVR4PROC_KERNEL_SIGNAL_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "svr4proc/base/fixed_set.h"

// The host C library defines these as macros; this simulation defines its
// own System V values and never raises host signals. Include the host header
// here (its include guard then makes any later inclusion a no-op) and remove
// its macros for good.
#include <csignal>
#undef SIGHUP
#undef SIGINT
#undef SIGQUIT
#undef SIGILL
#undef SIGTRAP
#undef SIGABRT
#undef SIGEMT
#undef SIGFPE
#undef SIGKILL
#undef SIGBUS
#undef SIGSEGV
#undef SIGSYS
#undef SIGPIPE
#undef SIGALRM
#undef SIGTERM
#undef SIGUSR1
#undef SIGUSR2
#undef SIGCLD
#undef SIGPWR
#undef SIGWINCH
#undef SIGURG
#undef SIGPOLL
#undef SIGSTOP
#undef SIGTSTP
#undef SIGCONT
#undef SIGTTIN
#undef SIGTTOU
#undef SIG_DFL
#undef SIG_IGN
// glibc defines the siginfo_t accessors as macros over a union.
#undef si_signo
#undef si_code
#undef si_errno
#undef si_pid
#undef si_uid
#undef si_addr
#undef si_status
#undef si_band
#undef si_value
#undef si_int
#undef si_ptr

namespace svr4 {

enum Signal : int {
  SIGHUP = 1,
  SIGINT = 2,
  SIGQUIT = 3,
  SIGILL = 4,
  SIGTRAP = 5,
  SIGABRT = 6,
  SIGEMT = 7,
  SIGFPE = 8,
  SIGKILL = 9,
  SIGBUS = 10,
  SIGSEGV = 11,
  SIGSYS = 12,
  SIGPIPE = 13,
  SIGALRM = 14,
  SIGTERM = 15,
  SIGUSR1 = 16,
  SIGUSR2 = 17,
  SIGCLD = 18,
  SIGPWR = 19,
  SIGWINCH = 20,
  SIGURG = 21,
  SIGPOLL = 22,
  SIGSTOP = 23,
  SIGTSTP = 24,
  SIGCONT = 25,
  SIGTTIN = 26,
  SIGTTOU = 27,
  kNumSignals = 27,  // of up to 128 the set type provides for
};

std::string_view SignalName(int sig);

enum class SigDisp {
  kTerminate,
  kCore,
  kIgnore,
  kStop,      // job control stop (handled inside issig, per the paper)
  kContinue,  // SIGCONT
};

// Default disposition of a signal.
SigDisp DefaultDisp(int sig);

inline bool IsJobControlStop(int sig) {
  return sig == SIGSTOP || sig == SIGTSTP || sig == SIGTTIN || sig == SIGTTOU;
}

// Special handler values.
inline constexpr uint32_t SIG_DFL = 0;
inline constexpr uint32_t SIG_IGN = 1;

struct SigAction {
  uint32_t handler = SIG_DFL;  // SIG_DFL, SIG_IGN, or a user virtual address
  SigSet mask;                 // additionally held while the handler runs
  uint32_t flags = 0;
};

// Machine-independent extra information accompanying a signal or fault,
// exposed through /proc as prstatus.pr_info.
struct SigInfo {
  int32_t si_signo = 0;
  int32_t si_code = 0;   // fault number for hardware signals; 0 for kill()
  int32_t si_errno = 0;
  int32_t si_pid = 0;    // sender, for user-generated signals
  int32_t si_uid = 0;
  uint32_t si_addr = 0;  // faulting address, for hardware faults
};

// siginfo si_code values (subset).
inline constexpr int32_t SI_USER = 0;
inline constexpr int32_t SI_FAULT = 1;
inline constexpr int32_t TRAP_BRKPT = 2;

}  // namespace svr4

#endif  // SVR4PROC_KERNEL_SIGNAL_H_
