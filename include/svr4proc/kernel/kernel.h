// The simulated UNIX System V kernel.
//
// One Kernel instance is a complete system: a process table, a scheduler
// driven by Step()/RunUntil(), a virtual clock that advances one tick per
// executed instruction, signals with the full issig() stop logic of the
// paper's Figure 4, a VFS with memfs mounted at / and the process file
// systems at /proc (flat, ioctl-based) and /proc2 (hierarchical,
// read/write-based), and an in-kernel ptrace(2) as the competing mechanism.
//
// Two kinds of processes exist:
//  * simulated processes execute virtual-ISA programs under the scheduler;
//  * native processes (controllers: debuggers, ps, truss, tests) are driven
//    by host code calling the syscall-shaped methods below. Blocking calls
//    (Wait, PIOCWSTOP, Poll) pump the simulation until satisfied.
#ifndef SVR4PROC_KERNEL_KERNEL_H_
#define SVR4PROC_KERNEL_KERNEL_H_

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "svr4proc/base/result.h"
#include "svr4proc/fs/dev.h"
#include "svr4proc/fs/vfs.h"
#include "svr4proc/isa/aout.h"
#include "svr4proc/kernel/faults.h"
#include "svr4proc/kernel/ktrace.h"
#include "svr4proc/kernel/process.h"
#include "svr4proc/kernel/smp.h"
#include "svr4proc/kernel/syscall.h"

namespace svr4 {

// Default poll(2) descriptor-count ceiling. Exceeding the configured cap
// (Kernel::SetPollMaxFds) is an EINVAL, never a silent truncation: dropped
// entries would simply never get their revents written back. The poll set
// itself is dynamically sized — the cap is policy, not a wired array.
inline constexpr uint32_t kPollDefaultMaxFds = 16384;

// Default per-process descriptor-table ceiling (EMFILE above it).
inline constexpr size_t kFdDefaultLimit = 256;

// Default pid-space size: pids live in [0, max_pid); allocation wraps and
// reuses reaped pids, guarded by a bitmap. Large enough for a 10^6-process
// population with headroom; SetMaxPid shrinks it for wraparound tests.
inline constexpr Pid kDefaultMaxPid = 1 << 21;

// Resume arguments for a stopped process (prrun_t semantics).
struct RunArgs {
  bool clear_sig = false;     // PRCSIG: clear the current signal
  bool clear_fault = false;   // PRCFAULT: clear the current fault
  bool set_trace = false;     // PRSTRACE: set the traced-signal set first
  SigSet trace;
  bool set_fault = false;     // PRSFAULT
  FltSet fault;
  bool set_hold = false;      // PRSHOLD
  SigSet hold;
  bool set_vaddr = false;     // PRSVADDR: resume at a specified address
  uint32_t vaddr = 0;
  bool step = false;          // PRSTEP: single-step (FLTTRACE after one instr)
  bool abort = false;         // PRSABORT: abort the system call (entry stop
                              // or stopped-while-asleep) with EINTR
  bool stop = false;          // PRSTOP: direct it to stop again at issig
};

// Cheap scheduler/execution counters (plain increments on existing paths).
struct KernelCounters {
  uint64_t instructions = 0;  // virtual-ISA instructions retired
  uint64_t timer_events = 0;  // alarms fired + timed sleeps woken
  uint64_t reaps = 0;         // zombies reaped into init off the reap list
  uint64_t quanta_interp = 0;  // quanta run by the interpreter (incl. hooked)
  uint64_t quanta_blocks = 0;  // quanta run by the block engine
};

// Which execution engine runs un-hooked quanta. Hooked quanta (fault
// injection, chaos, trace ring armed) always take the instrumented
// interpreter regardless of this setting, so observation hooks never miss an
// instruction.
enum class ExecEngine {
  kAuto,    // block engine whenever hooks are off (the default)
  kInterp,  // force the decode-dispatch interpreter
  kBlocks,  // force the predecoded-block engine (still interp when hooked)
};

// ptrace(2) requests (the SVR4 set; no attach — controlling unrelated
// processes is exactly what /proc added).
enum PtReq : int {
  PT_TRACEME = 0,
  PT_PEEKTEXT = 1,
  PT_PEEKDATA = 2,
  PT_PEEKUSER = 3,
  PT_POKETEXT = 4,
  PT_POKEDATA = 5,
  PT_POKEUSER = 6,
  PT_CONT = 7,
  PT_KILL = 8,
  PT_STEP = 9,
};

class Kernel {
 public:
  Kernel();
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- System assembly -----------------------------------------------------
  Vfs& vfs() { return vfs_; }
  ConsoleVnode& console() { return *console_; }
  uint64_t Ticks() const { return ticks_; }
  const KernelCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = KernelCounters{}; }

  // Writes a regular file (creating directories as needed).
  Result<void> WriteFileAt(const std::string& path, std::span<const uint8_t> bytes,
                           uint32_t mode = 0644, Uid uid = 0, Gid gid = 0);
  // Serializes an a.out image into the file system.
  Result<void> InstallAout(const std::string& path, const Aout& image, uint32_t mode = 0755,
                           Uid uid = 0, Gid gid = 0);

  // --- Processes ------------------------------------------------------------
  // Creates a native controller process (debugger, ps, truss, a test).
  Proc* CreateNativeProc(const Creds& creds, std::string name);
  // Tears a native controller process down: every descriptor it holds is
  // closed (each vnode Close hook runs — /proc ledgers drain exactly as for
  // explicit closes) and the proc exits and is reaped on the next Step().
  // procd uses this when a remote peer's transport dies; the equivalence
  // "peer death == close of everything the peer held" is this one call.
  void DestroyNativeProc(Proc* p);
  // Creates a simulated process running the executable at `path`.
  // The new process is a child of `parent` (init if null).
  Result<Pid> Spawn(const std::string& path, const std::vector<std::string>& argv,
                    const Creds& creds, Proc* parent = nullptr);

  Proc* FindProc(Pid pid);
  std::vector<Pid> AllPids() const;
  Proc* init_proc() { return init_; }
  // Number of processes in the table (zombies included).
  size_t ProcCount() const { return nprocs_; }
  // Smallest allocated pid >= from (live or zombie); -1 when none. The
  // streaming /proc readdir cursors and the bulk-snapshot op iterate the
  // population with this, one bitmap probe per step.
  Pid NextAllocatedPid(Pid from) const;
  // Pid-space bound: allocation wraps within [0, max). Shrinking below pids
  // already in use is allowed (they stay valid until reaped); meant to be
  // set at system assembly time, e.g. tiny for wraparound tests.
  void SetMaxPid(Pid max);
  Pid max_pid() const { return max_pid_; }

  // poll(2) descriptor-count cap (EINVAL above it); default
  // kPollDefaultMaxFds. Dynamically sized sets make large monitors
  // practical; the old wired 64 is still available to tests via this knob.
  void SetPollMaxFds(uint32_t n) { poll_max_fds_ = n; }
  uint32_t poll_max_fds() const { return poll_max_fds_; }
  // Per-process descriptor-table cap (EMFILE above it); default
  // kFdDefaultLimit. Raised by monitors holding one descriptor per process.
  void SetFdLimit(size_t n) { fd_limit_ = n; }
  size_t fd_limit() const { return fd_limit_; }

  // --- Syscall-shaped interface for native processes ------------------------
  Result<int> Open(Proc* p, const std::string& path, int oflags, uint32_t mode = 0644);
  Result<void> Close(Proc* p, int fd);
  Result<int64_t> Read(Proc* p, int fd, void* buf, uint64_t n);
  Result<int64_t> Write(Proc* p, int fd, const void* buf, uint64_t n);
  Result<int64_t> Lseek(Proc* p, int fd, int64_t off, int whence);
  Result<int32_t> Ioctl(Proc* p, int fd, uint32_t op, void* arg);
  Result<std::vector<DirEnt>> ReadDir(Proc* p, const std::string& path);
  // Chunked directory read (Vnode::ReaddirChunk): appends at most `max`
  // entries to `out` and advances `*cookie`; returns the count appended, 0
  // at end-of-directory. O(chunk) even on a /proc root over 10^6 processes.
  Result<size_t> ReadDirChunk(Proc* p, const std::string& path, uint64_t* cookie,
                              size_t max, std::vector<DirEnt>* out);
  Result<VAttr> Stat(Proc* p, const std::string& path);
  Result<int> PollFds(Proc* p, std::span<PollFd> fds, int64_t timeout_ticks);
  // Blocking wait for a child transition; pumps the simulation.
  Result<WaitResult> Wait(Proc* p, Pid pid = -1, bool nohang = false);
  Result<void> Kill(Proc* sender, Pid pid, int sig);
  Result<int64_t> Ptrace(Proc* caller, int req, Pid pid, uint32_t addr, uint32_t data);

  // --- Process-control primitives (used by both /proc implementations) ------
  // Directs the process to stop; takes effect at the next issig() or
  // immediately if it is sleeping interruptibly.
  Result<void> PrStop(Proc* target);
  // True when stopped on an event of interest.
  bool PrIsStopped(const Proc* target) const;
  // Pumps the simulation until the target stops (or exits: ENOENT).
  Result<void> PrWaitStop(Proc* target);
  // Makes a stopped process runnable, applying RunArgs. EBUSY if it is not
  // stopped on an event of interest (e.g. a job-control stop, which only
  // SIGCONT can resume, or a stop owned by ptrace — "/proc gets the last
  // word" works the other way around too).
  Result<void> PrRun(Proc* target, const RunArgs& args);
  // Per-lwp variants used by the hierarchical interface's lwp directories.
  Result<void> PrRunLwp(Lwp* lwp, const RunArgs& args);
  Result<void> PrStopLwp(Lwp* lwp);
  // Sends/clears a signal directly (PIOCKILL / PIOCUNKILL / PIOCSSIG).
  Result<void> PrKill(Proc* target, int sig);
  Result<void> PrUnkill(Proc* target, int sig);
  Result<void> PrSetSig(Proc* target, int sig, const SigInfo& info);

  // Posts a signal from kernel context (faults, alarms, SIGCLD).
  void PostSignal(Proc* target, int sig, const SigInfo& info);

  // Called by procfs when the last writable descriptor closes.
  void PrLastClose(Proc* target);
  // Called by procfs when a descriptor from a dead generation (invalidated
  // by a set-id exec) closes: drains the stale ledger and runs last-close
  // actions when the invalidated set is fully gone. Shared by both /proc
  // front-ends so the drain rules cannot drift.
  void PrStaleClose(Proc* target, bool counted_writable);

  // --- Fault injection & chaos (faults.cc) ----------------------------------
  // Arms (or replaces) the fault plan; the injector pointer is propagated to
  // every live address space and the vfs so their sites fire too. With no
  // plan set every site is one branch on a null pointer.
  void SetFaultPlan(const FaultPlan& plan);
  void ClearFaultPlan();
  FaultInjector* fault_injector() { return finj_.get(); }
  // Seeded chaos scheduling: PRNG-driven choice among runnable lwps plus
  // forced preemption at syscall entry/exit stop points.
  void SetChaosScheduler(uint64_t seed);
  void ClearChaosScheduler();
  bool ChaosSchedulerEnabled() const { return chaos_; }
  // Checks kernel-wide structural invariants (open-count balance and
  // conservation, exclusive-holder consistency, audit-ring monotonicity,
  // scheduler and sleep coherence). Returns one string per violation; empty
  // means consistent. Cheap enough to call after every tick.
  std::vector<std::string> CheckInvariants();

  // --- Tracing & metrics (ktrace.h) -----------------------------------------
  // The global event ring and metrics registry, served through
  // /proc2/kernel/{trace,metrics}, /proc2/<pid>/trace, and PIOCKSTAT.
  // Disarmed by default; every emission site is one predicted branch then.
  KTrace& ktrace() { return kt_; }
  const KTrace& ktrace() const { return kt_; }
  void SetTracing(bool ring, bool metrics) {
    kt_.EnableRing(ring);
    kt_.EnableMetrics(metrics);
  }

  // --- Sampling profiler (PIOCPROF, /proc2/<pid>/prof) ----------------------
  // Arms (period_log2 >= 0, samples every 2^period_log2 retired
  // instructions) or disarms (period_log2 < 0) the deterministic pc sampler
  // on one process. Arming resets the accumulated buckets; disarming keeps
  // them readable. prof_armed() counting lets ExecuteLwp route unprofiled
  // quanta through the profiler-free loop stamps.
  Result<void> SetProfiling(Proc* p, int period_log2);
  int prof_armed() const { return prof_armed_; }
  // /proc2/<pid>/prof rendering: folded-stack text, one
  // "<name>;0x<pc> <count>" line per bucket, flamegraph.pl-consumable.
  std::string ProfText(const Proc& p) const;

  // --- procd stats hook ------------------------------------------------------
  // A running ProcdServer registers its stats renderer here so
  // /proc2/kernel/procd can serve daemon span data through the filesystem
  // like every other kernel metric. Null (the default) reads as "procd off".
  void SetProcdStatsProvider(std::function<std::string()> fn) {
    procd_stats_ = std::move(fn);
  }
  const std::function<std::string()>& procd_stats_provider() const {
    return procd_stats_;
  }

  // --- Execution engine (isa/blocks.h) --------------------------------------
  // Engine selection for un-hooked quanta. The constructor honors the
  // SVR4PROC_EXEC_ENGINE environment variable ("interp" or "blocks") so
  // tests, benches, and CI sweeps can pin an engine without code changes.
  void SetExecEngine(ExecEngine e) { exec_engine_ = e; }
  ExecEngine exec_engine() const { return exec_engine_; }
  // Block-cache counters aggregated over all live address spaces, rendered
  // in /proc2/kernel/metrics format (one "name value" line each).
  std::string ExecEngineMetricsText() const;

  // --- Simulated SMP (kernel/smp.h) ------------------------------------------
  // Number of simulated CPUs, default 1 (bit-identical to the uniprocessor
  // kernel). Runnable lwps are redistributed round-robin over the new CPU
  // set; live address spaces get one TLB bank per CPU. The constructor
  // honors SVR4PROC_NCPUS and SVR4PROC_SMP_MODE ("det"/"free") so CI sweeps
  // can pin a topology without code changes. Clamped to [1, kMaxCpus].
  void SetNumCpus(int n);
  int ncpus() const { return smp_.ncpus(); }
  // Deterministic round-robin stepping (default) vs free-running
  // std::thread workers. Free-running only engages with ncpus > 1 and no
  // observation hooks armed; otherwise Step() takes the deterministic path.
  void SetSmpMode(SmpMode m) { smp_.set_mode(m); }
  SmpMode smp_mode() const { return smp_.mode(); }
  SmpState& smp() { return smp_; }
  const SmpState& smp() const { return smp_; }
  // Per-CPU stats rendered for /proc2/kernel/cpus.
  std::string CpuStatsText() const;

  // --- Simulation control ----------------------------------------------------
  // Executes one scheduling quantum. Returns false when nothing can run
  // (no runnable lwps and no timed sleepers).
  bool Step();
  // Pumps until pred() holds; false if the system went idle or the step
  // budget was exhausted first.
  bool RunUntil(const std::function<bool()>& pred, uint64_t max_steps = 200'000'000);
  // Runs until the process exits; returns its wait status.
  Result<int> RunToExit(Pid pid, uint64_t max_steps = 200'000'000);

  // Internal hooks shared with procfs (part of the kernel proper: "/proc is
  // an unconventional file system and not an add-on").
  void Wakeup(const void* chan);
  uint64_t NextProcGen() { return ++gen_counter_; }
  // Descriptor-table access for procfs (PIOCOPENM installs a descriptor in
  // the calling process).
  Result<int> FdAlloc(Proc* p, OpenFilePtr of);
  Result<OpenFilePtr> FdGet(Proc* p, int fd);

 private:
  friend class KernelTestPeer;

  struct SysResult {
    enum Kind { kDone, kError, kBlock } kind = kDone;
    uint32_t rv0 = 0;
    uint32_t rv1 = 0;
    bool has_rv1 = false;   // also store rv1 into r1
    bool no_regs = false;   // do not touch registers at all (sigreturn, exec)
    Errno err = Errno::kEINVAL;
    SleepSpec sleep;

    static SysResult Ok(uint32_t a = 0) { return {kDone, a, 0, false, false, Errno::kOk, {}}; }
    static SysResult Ok2(uint32_t a, uint32_t b) {
      return {kDone, a, b, true, false, Errno::kOk, {}};
    }
    static SysResult OkNoRegs() { return {kDone, 0, 0, false, true, Errno::kOk, {}}; }
    static SysResult Fail(Errno e) { return {kError, 0, 0, false, false, e, {}}; }
    static SysResult Block(SleepSpec s) {
      return {kBlock, 0, 0, false, false, Errno::kOk, s};
    }
  };

  // Scheduling. Every CPU owns a run queue; PickNextOn serves the given
  // CPU's cursor, stealing a runnable lwp from a seeded-random nonempty
  // victim queue when its own has drained. The chaos scheduler draws the
  // CPU too (only when ncpus > 1, so uniprocessor chaos streams replay
  // unchanged).
  Lwp* PickNextOn(int cpu);
  Lwp* StealFor(int thief);
  Lwp* PickNextChaos(int* cpu_out);
  uint64_t ChaosNext();
  size_t RunqLenTotal() const;
  // One deterministic quantum on `cpu`: IPI acknowledge, SCHED_SWITCH
  // attribution, TLB-bank bind, execute, per-CPU accounting. A positive
  // budget_override replaces the nice-weighted quantum (the free-running
  // super-step uses it to give serial picks the same chunk as workers).
  void RunQuantumOn(int cpu, Lwp* lwp, int budget_override = 0);
  // Free-running super-step: picks up to ncpus lwps, runs pure user
  // execution on worker threads, folds results and does kernel work
  // serially (kernel.cc has the phase breakdown).
  bool StepFreeRun();
  // Pure user execution for one lwp on a worker thread: no kernel state is
  // touched; returns instructions retired and the terminating event.
  uint32_t RunUserChunk(Lwp* lwp, uint32_t budget, int cpu, StepResult* last);
  void ExecuteLwp(Lwp* lwp, int budget);
  // The interpreter loop, stamped once without perturbation hooks (the hot
  // path stays byte-identical to an unhooked kernel) and once with the
  // fault-injection and chaos-preemption checks compiled in. kProf is an
  // orthogonal stamp axis: only PIOCPROF-armed processes run the sampling
  // instantiations, so a disarmed profiler leaves the hot loops untouched.
  template <bool kHooks, bool kProf>
  void ExecuteLwpImpl(Lwp* lwp, int budget);
  // The block-engine quantum loop: identical event/budget structure to
  // ExecuteLwpImpl<false>, but straight-line runs execute from the
  // predecoded block cache. Falls back to single CpuStep calls whenever a
  // block cannot be used (trace bit, watchpoints, TLB off, uncacheable pc).
  template <bool kProf>
  void ExecuteLwpBlocks(Lwp* lwp, int budget);
  // Drops a dying process's profiler state, keeping prof_armed_ honest.
  void ReleaseProf(Proc* p);

  // O(1)-amortized timer bookkeeping: every timed sleep and alarm pushes a
  // TimerEvent; entries are validated lazily against current process/lwp
  // state when popped, so cancellation and re-arming cost nothing.
  struct TimerEvent {
    uint64_t tick = 0;
    Pid pid = 0;
    int lwpid = 0;  // 0: process alarm; else a timed lwp sleep
    bool operator>(const TimerEvent& o) const { return tick > o.tick; }
  };
  void ArmAlarm(Proc* p);
  void ArmSleepTimer(Lwp* lwp);
  // Fires every due timer (alarm signals, timed wakeups).
  void FireDueTimers();
  // Earliest tick with a live timer, discarding stale entries; 0 if none.
  uint64_t NextTimerTick();

  // Event-driven zombie reaping: ExitProc marks processes whose zombie will
  // never be waited for (parent is init or gone); Step() drains the list.
  void MarkReapable(Pid pid);
  void DrainReapList();
  // Zombie slimming: ExitProc queues the pid; the next Step() releases the
  // zombie's audit ring, descriptor table, and lwp storage. Deferred one
  // step because quantum frames and blocking control handlers may still
  // hold Lwp pointers across the exit.
  void DrainZombieSlim();

  // Signals & stops (issig/psig per Figure 4).
  bool NeedIssig(Lwp* lwp) const;
  // Returns true if a signal should be delivered (psig). May stop the lwp,
  // in which case it returns false and will be re-entered on resume.
  bool Issig(Lwp* lwp);
  void Psig(Lwp* lwp);
  void StopLwp(Lwp* lwp, uint16_t why, uint16_t what, bool istop);
  void ResumeLwp(Lwp* lwp);
  void JobControlStop(Proc* p, int sig);
  void JobControlCont(Proc* p);
  int PromoteSignal(Proc* p);

  // Syscall path.
  void SyscallTrap(Lwp* lwp);
  void ContinueSyscall(Lwp* lwp);
  SysResult Dispatch(Lwp* lwp);
  void FinishSyscall(Lwp* lwp, const SysResult& r);

  // Fault path.
  void HandleFault(Lwp* lwp, int fault, uint32_t addr);
  void ConvertFaultToSignal(Lwp* lwp, int fault, uint32_t addr);

  // Process table: sharded pid hash + intrusive all-procs list + bitmap pid
  // allocator (FreeBSD-style). Procs are owned raw pointers threaded on
  // their intrusive links; FreeProc unlinks everything and deletes.
  Pid AllocPid();                 // -1 when the pid space is exhausted
  void PidHashInsert(Proc* p);
  void PidHashRemove(Proc* p);
  void ChildLink(Proc* parent, Proc* child);    // append to children tail
  void ChildUnlink(Proc* child);
  void FreeProc(Proc* p);        // unlink from every structure and delete

  // Scheduler queues. LwpSetState is the single owner of Lwp::state: it
  // dequeues from whichever list the lwp is on and enqueues per the new
  // state (run queue if kRunning and schedulable, sleep bucket if kSleeping
  // with a channel). EnrollLwp enqueues a newly created lwp, whose default
  // state is kRunning without ever having transitioned.
  void LwpSetState(Lwp* l, LwpState ns);
  void EnrollLwp(Lwp* l);
  void RunqInsert(Lwp* l);
  void RunqRemove(Lwp* l);
  void SleepqInsert(Lwp* l);
  void SleepqRemove(Lwp* l);
  static size_t SleepBucket(const void* chan);

  // Process lifecycle.
  Proc* AllocProc(const std::string& name, const Creds& creds, Proc* parent);
  void ExitProc(Proc* p, int wstatus);
  void DumpCore(Proc* p, int sig);
  void ReapZombie(Proc* zombie, Proc* parent);
  Result<void> ExecImage(Proc* p, const std::string& path,
                         const std::vector<std::string>& argv);
  Result<Pid> ForkCommon(Lwp* parent_lwp, bool vfork);
  // Non-blocking wait scan; fills out and returns true when a child event
  // is available. Sets *any_children.
  bool WaitScan(Proc* parent, Pid filter, WaitResult* out, bool* any_children);

  // Descriptor helpers (shared by native API and VCPU syscalls).
  void FdCloseAll(Proc* p);
  void FdRelease(OpenFilePtr of);
  Result<int> OpenCommon(Proc* p, const std::string& path, int oflags, uint32_t mode);
  Result<int64_t> ReadCommon(Proc* p, OpenFile& of, std::span<uint8_t> buf);
  Result<int64_t> WriteCommon(Proc* p, OpenFile& of, std::span<const uint8_t> buf);

  // Syscall handlers (syscalls.cc).
  SysResult SysExit(Lwp*);
  SysResult SysFork(Lwp*, bool vfork);
  SysResult SysRead(Lwp*);
  SysResult SysWrite(Lwp*);
  SysResult SysOpen(Lwp*);
  SysResult SysClose(Lwp*);
  SysResult SysWait(Lwp*);
  SysResult SysExec(Lwp*);
  SysResult SysBrk(Lwp*);
  SysResult SysLseek(Lwp*);
  SysResult SysKill(Lwp*);
  SysResult SysPipe(Lwp*);
  SysResult SysDup(Lwp*);
  SysResult SysSigaction(Lwp*);
  SysResult SysSigprocmask(Lwp*);
  SysResult SysSigsuspend(Lwp*);
  SysResult SysSigreturn(Lwp*);
  SysResult SysSigpending(Lwp*);
  SysResult SysMmap(Lwp*);
  SysResult SysMunmap(Lwp*);
  SysResult SysMprotect(Lwp*);
  SysResult SysSleep(Lwp*);
  SysResult SysPause(Lwp*);
  SysResult SysAlarm(Lwp*);
  SysResult SysLwpCreate(Lwp*);
  SysResult SysLwpExit(Lwp*);
  SysResult SysStat(Lwp*);
  SysResult SysUnlink(Lwp*);
  SysResult SysPtraceSys(Lwp*);
  SysResult SysPoll(Lwp*);

  // Wait channel for poll-style sleeps, woken on any event that could
  // change poll results (stops, exits, pipe traffic).
  static const void* PollChan();

  // User-memory copy helpers for VCPU syscalls.
  Result<std::string> CopyinStr(Proc* p, uint32_t va, uint32_t max = 1024);
  Result<void> Copyin(Proc* p, uint32_t va, void* buf, uint32_t n);
  Result<void> Copyout(Proc* p, uint32_t va, const void* buf, uint32_t n);

  // ptrace internals.
  Result<int64_t> PtraceImpl(Proc* caller, int req, Pid pid, uint32_t addr, uint32_t data);

  Vfs vfs_;
  std::shared_ptr<ConsoleVnode> console_;

  // The process table. Lookup is a power-of-two pid hash chained through
  // Proc::pt_hash_next (doubled when the population outgrows the buckets);
  // enumeration is the intrusive all-procs list (insertion order) or the
  // allocation bitmap (pid order); ownership is raw — FreeProc deletes.
  std::vector<Proc*> pid_hash_;
  Proc* all_head_ = nullptr;
  Proc* all_tail_ = nullptr;
  size_t nprocs_ = 0;
  // Pid allocation: bit set = pid in use (live or zombie). The cursor scans
  // forward from the last allocation and wraps at max_pid_, so freed pids
  // are reused only after the space has been traversed once — held stale
  // /proc descriptors get the longest possible grace period.
  std::vector<uint64_t> pid_bitmap_;
  Pid max_pid_ = kDefaultMaxPid;
  Pid next_pid_ = 0;  // allocation cursor, not a high-water mark

  uint64_t ticks_ = 0;
  uint64_t gen_counter_ = 1;
  Proc* init_ = nullptr;

  // The run queues live in the per-CPU state (SmpState): one circular
  // doubly-linked list of runnable lwps per CPU, threaded on
  // Lwp::q_prev/q_next with Lwp::cpu naming the owning queue. At the
  // default ncpus == 1 this is exactly the old single queue. cur_cpu_rr_
  // rotates dispatch over the CPUs; cur_cpu_ is the CPU the kernel is
  // currently executing a quantum for (0 in controller context) — trace
  // records and shootdowns read it through pointers.
  SmpState smp_;
  int cur_cpu_ = 0;
  int cur_cpu_rr_ = 0;
  uint64_t enroll_seq_ = 0;  // round-robin home-CPU assignment for new lwps
  SmpWorkers workers_;       // free-running mode's persistent thread pool
  // Sleeping lwps with a wait channel, hashed by channel so Wakeup(chan)
  // walks one bucket instead of every process. Purely timed sleeps
  // (chan == nullptr) are not enqueued; only FireDueTimers wakes them.
  static constexpr size_t kSleepBuckets = 512;  // power of two
  std::array<Lwp*, kSleepBuckets> sleepq_{};

  // Configurable caps (see SetPollMaxFds / SetFdLimit).
  uint32_t poll_max_fds_ = kPollDefaultMaxFds;
  size_t fd_limit_ = kFdDefaultLimit;

  // Pending wakeups/alarms (min-heap by tick) and zombies awaiting reap.
  std::priority_queue<TimerEvent, std::vector<TimerEvent>, std::greater<TimerEvent>> timerq_;
  std::vector<Pid> reap_list_;
  std::vector<Pid> slim_list_;  // zombies awaiting storage release
  KernelCounters counters_;

  // Execution-engine selection (see SetExecEngine).
  ExecEngine exec_engine_ = ExecEngine::kAuto;

  // Fault injection and chaos scheduling; both off by default.
  std::unique_ptr<FaultInjector> finj_;
  bool chaos_ = false;
  uint64_t chaos_rng_ = 0;
  // Last observed audit_total per process, for the monotonicity invariant.
  // Keyed by birth identity, not pid: a recycled pid is a new process whose
  // audit history starts from zero.
  std::unordered_map<uint64_t, uint64_t> audit_watermark_;

  // Event-trace ring + metrics registry (reads ticks_ and the executing
  // CPU through pointers so every layer can emit without seeing the
  // kernel). Per-CPU SCHED_SWITCH attribution lives in CpuState.
  KTrace kt_{&ticks_, &cur_cpu_};

  // Count of live processes with the sampling profiler armed; ExecuteLwp's
  // routing gate and Step()'s free-run gate read it.
  int prof_armed_ = 0;

  // Stats renderer registered by a running ProcdServer (see
  // SetProcdStatsProvider); /proc2/kernel/procd reads through it.
  std::function<std::string()> procd_stats_;

  static constexpr int kQuantum = 64;
};

}  // namespace svr4

#endif  // SVR4PROC_KERNEL_KERNEL_H_
