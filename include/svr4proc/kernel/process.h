// The process model: processes (proc structures), lightweight processes
// (threads of control sharing an address space), tracing state, and stop
// bookkeeping. This is the state /proc exposes and manipulates.
#ifndef SVR4PROC_KERNEL_PROCESS_H_
#define SVR4PROC_KERNEL_PROCESS_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "svr4proc/base/fixed_set.h"
#include "svr4proc/fs/cred.h"
#include "svr4proc/fs/vnode.h"
#include "svr4proc/isa/isa.h"
#include "svr4proc/kernel/signal.h"
#include "svr4proc/vm/vm.h"

namespace svr4 {

using Pid = int32_t;

// Why a process (lwp) stopped — prstatus pr_why values.
enum PrWhy : uint16_t {
  PR_REQUESTED = 1,  // /proc stop directive
  PR_SIGNALLED = 2,  // receipt of a traced signal
  PR_SYSENTRY = 3,   // entry to a traced system call
  PR_SYSEXIT = 4,    // exit from a traced system call
  PR_FAULTED = 5,    // a traced machine fault
  PR_JOBCONTROL = 6, // default action of a job-control stop signal
};

std::string_view PrWhyName(uint16_t why);

// prstatus pr_flags bits.
enum PrFlag : uint32_t {
  PR_STOPPED = 0x0001,  // process (lwp) is stopped
  PR_ISTOP = 0x0002,    // stopped on an event of interest (awaits PIOCRUN)
  PR_DSTOP = 0x0004,    // a stop directive is pending
  PR_ASLEEP = 0x0008,   // sleeping in an interruptible system call
  PR_FORK = 0x0010,     // inherit-on-fork is set
  PR_RLC = 0x0020,      // run-on-last-close is set
  PR_PTRACE = 0x0040,   // process is being traced via ptrace(2)
  PR_PCINVAL = 0x0080,  // pc does not address a valid instruction
  PR_ISSYS = 0x0100,    // system process (no user address space)
  PR_STEP = 0x0200,     // single-step directive in effect
};

enum class LwpState {
  kRunning,   // eligible to execute user instructions / syscall work
  kSleeping,  // blocked in a system call
  kStopped,   // stopped (events of interest, directives, job control)
  kDead,
};

// Phase of the in-progress system call for an lwp.
enum class SysPhase { kNone, kEntry, kExec, kExit };

struct SleepSpec {
  const void* chan = nullptr;  // wait channel; nullptr when purely timed
  uint64_t wake_tick = 0;      // absolute tick to auto-wake; 0 = no timeout
  bool interruptible = true;
};

struct Proc;

struct Lwp {
  int lwpid = 1;
  Proc* proc = nullptr;
  LwpState state = LwpState::kRunning;

  // Scheduler queue linkage, owned by Kernel::LwpSetState: the run queue is
  // a circular doubly-linked list of runnable lwps; sleepers with a wait
  // channel hang off a chan-hashed bucket. q_where says which list (if any)
  // the links are threaded on so transitions unlink in O(1).
  enum QWhere : uint8_t { kQNone = 0, kQRun = 1, kQSleep = 2 };
  Lwp* q_prev = nullptr;
  Lwp* q_next = nullptr;
  uint8_t q_where = kQNone;
  // Home CPU: names the per-CPU run queue this lwp enqueues on (and, while
  // running, the CPU executing it). Assigned round-robin at enroll, updated
  // by work stealing; always 0 on a uniprocessor kernel.
  int cpu = 0;

  Regs regs;
  FpRegs fpregs;

  // In-progress system call.
  bool in_syscall = false;
  SysPhase sys_phase = SysPhase::kNone;
  uint16_t cur_syscall = 0;
  std::array<uint32_t, 6> sysargs{};
  bool abort_syscall = false;  // PRSABORT: skip to syscall exit with EINTR
  SleepSpec sleep;
  bool interrupted = false;  // a signal arrived while sleeping

  // Stop bookkeeping.
  uint16_t stop_why = 0;
  uint16_t stop_what = 0;
  bool istop = false;          // stopped on an event of interest
  bool stopped_while_asleep = false;  // PR_ASLEEP at stop time
  SleepSpec saved_sleep;       // to resume the sleep undisturbed

  // issig() progress flags (reset when the current signal is resolved).
  bool sig_reported = false;   // signalled stop already taken for cursig
  bool pt_reported = false;    // ptrace stop already taken for cursig

  // Restartable-handler scratch state, cleared when the syscall finishes.
  uint64_t sys_deadline = 0;   // absolute wake tick for timed syscalls
  Pid vfork_child = 0;         // child being waited on by vfork

  // Tick at the trap into the current syscall; the exit trace record and
  // the per-syscall latency histogram measure from here.
  uint64_t sys_entry_tick = 0;

  // Tick+1 at which this lwp last became runnable (0 = not stamped).
  // Stamped by RunqInsert when the metrics registry is armed; harvested
  // into the per-CPU runq-wait histogram at first dispatch, or into the
  // steal-latency histogram when a thief claims the lwp first. The +1
  // bias distinguishes "stamped at tick 0" from "never stamped", same as
  // Proc::stop_req_tick.
  uint64_t runq_enq_tick = 0;

  // Per-lwp stop directive (hierarchical /proc lwpctl).
  bool lwp_dstop = false;
};

// Process-level signal state. The hold mask and actions are process-wide,
// as in single-threaded SVR4.
struct SignalState {
  SigSet pending;
  std::array<SigInfo, SigSet::kMaxMember + 1> pending_info{};
  SigSet hold;
  std::array<SigAction, SigSet::kMaxMember + 1> actions{};
  int cursig = 0;  // promoted from pending by issig(); at most one
  SigInfo cursig_info;
};

// One record of the per-process control audit ring: who issued which
// control operation, against which lwp, with what result. Appended by the
// shared control-plane core for every control (non-read-only) operation,
// whichever front-end — PIOC* ioctl or ctl-message write — carried it, so
// the ring doubles as an oracle for differential testing of the two
// encodings. Identified by canonical operation name, not wire code: the
// same script driven through either front-end produces identical records.
inline constexpr int kCtlAuditCap = 64;
struct CtlAuditRec {
  char pr_op[16] = {};    // canonical operation name ("PCRUN", "PCKILL", ...)
  Pid pr_caller = 0;      // controlling process; 0 if issued anonymously
  int32_t pr_lwpid = 0;   // lwp-scoped target; 0 = process scope
  int32_t pr_errno = 0;   // Errno result; 0 = success
  uint64_t pr_tick = 0;   // virtual time at completion
};

// /proc tracing state; persists when the process file is closed unless
// run-on-last-close is set.
struct TraceState {
  SigSet sigtrace;    // traced signals
  FltSet flttrace;    // traced machine faults
  SysSet sysentry;    // traced system call entries
  SysSet sysexit;     // traced system call exits
  bool inherit_on_fork = false;  // PR_FORK
  bool run_on_last_close = false;  // PR_RLC
  bool dstop_pending = false;    // a /proc stop directive is outstanding

  // A traced fault awaiting PIOCRUN; cleared by PRCFAULT, otherwise
  // converted to its signal on resume.
  int cur_fault = 0;
  uint32_t cur_fault_addr = 0;

  // Control audit ring (bounded; audit_total % kCtlAuditCap is the next
  // slot, so the ring and its drop count need no separate head pointer).
  // Allocated on first append: the ring is 2.5KB and the overwhelming
  // majority of a large population is never touched by a controller, so an
  // uncontrolled Proc stays small. audit_total > 0 implies audit != null.
  std::unique_ptr<std::array<CtlAuditRec, kCtlAuditCap>> audit;
  uint64_t audit_total = 0;  // records ever appended

  // Security bookkeeping. The live counters track descriptors of the
  // current generation only; when a set-id exec bumps `gen`, outstanding
  // counts move to the stale ledger so closes of invalidated descriptors
  // can never disturb a new controller's accounting or exclusivity.
  int writable_opens = 0;   // writable /proc descriptors outstanding
  int total_opens = 0;      // all /proc descriptors outstanding
  int stale_writable_opens = 0;  // invalidated writable descriptors not yet closed
  int stale_total_opens = 0;     // invalidated descriptors not yet closed
  bool excl = false;        // an O_EXCL writer exists
  uint64_t gen = 1;         // descriptor generation; bumped on set-id exec
};

struct WaitResult {
  Pid pid = 0;
  int status = 0;
};

// Deterministic sampling-profiler state, armed per process by PIOCPROF.
// The sampler is driven by the process's own retired-instruction count
// (utime): a sample fires every 2^period_log2 instructions and charges
// one hit to a pc bucket. Both execution engines feed it — the
// interpreter at exact-pc granularity, the block engine at
// block-entry-pc granularity (a run of N instructions advances utime by
// N and attributes every boundary crossed to the block's entry pc).
// Sampling writes only this side state, so an armed profiler cannot
// perturb scheduling, ticks, or chaos streams. Allocated lazily on the
// first PIOCPROF arm (same discipline as TraceState::audit); released by
// zombie slimming.
struct ProfState {
  bool on = false;
  uint32_t period_log2 = 0;
  uint64_t samples = 0;
  // Ordered so the /proc2/<pid>/prof folded dump renders deterministically.
  std::map<uint32_t, uint64_t> pc_hits;
};

// wait(2) status encoding helpers.
inline int WExitStatus(int code) { return (code & 0xFF) << 8; }
inline int WSignalStatus(int sig, bool core) { return (sig & 0x7F) | (core ? 0x80 : 0); }
inline int WStopStatus(int sig) { return 0x7F | (sig << 8); }
inline bool WIfExited(int st) { return (st & 0xFF) == 0; }
inline bool WIfStopped(int st) { return (st & 0xFF) == 0x7F; }
inline bool WIfSignaled(int st) { return !WIfExited(st) && !WIfStopped(st); }
inline int WExitCode(int st) { return (st >> 8) & 0xFF; }
inline int WStopSig(int st) { return (st >> 8) & 0xFF; }
inline int WTermSig(int st) { return st & 0x7F; }

struct Proc {
  Pid pid = 0;
  Pid ppid = 0;
  Pid pgrp = 0;
  Pid sid = 0;

  // Birth identity: unique across the whole life of the kernel, never
  // recycled. A /proc descriptor records the ident of the process it named
  // so that, after pid wraparound hands the same pid to a new process, the
  // held descriptor goes invalid (ENOENT) instead of attaching to the
  // impostor. Orthogonal to trace.gen, which tracks set-id-exec
  // invalidation *within* one process's life.
  uint64_t ident = 0;

  // Process-table linkage, owned by the Kernel (kernel.h): pid-hash chain,
  // all-procs list, and the parent/children tree that makes exit-time
  // reparenting and wait() scans O(children) instead of O(procs).
  Proc* pt_hash_next = nullptr;
  Proc* pt_all_prev = nullptr;
  Proc* pt_all_next = nullptr;
  Proc* pt_parent = nullptr;       // null only for sched (pid 0)
  Proc* pt_first_child = nullptr;  // creation order, oldest first
  Proc* pt_last_child = nullptr;
  Proc* pt_sib_prev = nullptr;
  Proc* pt_sib_next = nullptr;

  std::string name;    // pr_fname: executable basename
  std::string psargs;  // pr_psargs: initial argument list

  Creds creds;
  bool setid = false;       // set-id since last exec (restricts /proc opens)
  bool system_proc = false; // sched/pageout: no user address space
  bool native = false;      // host-driven controller; never scheduled

  enum class State { kActive, kZombie } state = State::kActive;
  int exit_status = 0;

  AddressSpacePtr as;
  VnodePtr exe;  // executable file vnode (PIOCOPENM with a null address)

  std::vector<std::unique_ptr<Lwp>> lwps;
  int next_lwpid = 1;

  SignalState sig;
  TraceState trace;

  // Sampling-profiler state; null until PIOCPROF first arms it.
  std::unique_ptr<ProfState> prof;

  // ptrace(2) state (the competing mechanism the paper discusses).
  bool pt_traced = false;
  bool pt_owned_stop = false;  // current stop belongs to ptrace
  bool pt_wait_reported = false;  // parent already saw this stop via wait()
  int pt_stopsig = 0;

  bool is_vfork_child = false;  // shares its parent's address space for now
  bool vfork_done = false;      // child of vfork has exec'd or exited

  std::vector<OpenFilePtr> fds;

  // Accounting (prusage / prpsinfo).
  uint64_t utime = 0;   // instructions executed
  uint64_t stime = 0;   // kernel work on this process's behalf
  uint64_t cutime = 0;
  uint64_t cstime = 0;
  uint64_t nsyscalls = 0;
  uint64_t nsignals = 0;
  uint64_t nfaults = 0;
  uint64_t ioch = 0;    // bytes read+written
  // Page-fault classes folded out of address spaces this process has shed
  // (exec replaces the AS; exit destroys it). The live totals the usage
  // interface reports are these bases plus the current AS's counters.
  uint64_t minflt_base = 0;  // satisfied without simulated I/O
  uint64_t majflt_base = 0;  // first touch of a file-backed page
  uint64_t start_tick = 0;
  int nice = 20;
  uint32_t umask = 022;
  uint64_t alarm_tick = 0;  // 0 = no alarm pending

  // Tick of the oldest outstanding stop directive; when the last lwp
  // reaches its stop the request->all-stopped wait feeds the stop_wait
  // histogram and this resets to 0.
  uint64_t stop_req_tick = 0;

  Lwp* MainLwp() {
    for (auto& l : lwps) {
      if (l->state != LwpState::kDead) {
        return l.get();
      }
    }
    return lwps.empty() ? nullptr : lwps.front().get();
  }

  bool AllLwpsStopped() const {
    bool any = false;
    for (const auto& l : lwps) {
      if (l->state == LwpState::kDead) {
        continue;
      }
      any = true;
      if (l->state != LwpState::kStopped) {
        return false;
      }
    }
    return any;
  }

  Lwp* FindLwp(int lwpid) {
    for (auto& l : lwps) {
      if (l->lwpid == lwpid && l->state != LwpState::kDead) {
        return l.get();
      }
    }
    return nullptr;
  }

  // The lwp whose stop the process-level interface reports: prefer one
  // stopped on an event of interest.
  Lwp* RepresentativeLwp() {
    Lwp* stopped = nullptr;
    for (auto& l : lwps) {
      if (l->state == LwpState::kDead) {
        continue;
      }
      if (l->state == LwpState::kStopped) {
        if (l->istop) {
          return l.get();
        }
        if (!stopped) {
          stopped = l.get();
        }
      }
    }
    return stopped ? stopped : MainLwp();
  }
};

// Heap-owned storage hanging off a Proc: the quantity zombie slimming
// releases at exit (audit ring, descriptor table, lwp records). The scale
// suite asserts a slimmed zombie's footprint collapses to ~0 while the Proc
// record itself survives until reap.
inline size_t ProcDynamicFootprint(const Proc& p) {
  size_t n = 0;
  if (p.trace.audit != nullptr) {
    n += sizeof(*p.trace.audit);
  }
  if (p.prof != nullptr) {
    n += sizeof(*p.prof) +
         p.prof->pc_hits.size() * (sizeof(uint32_t) + sizeof(uint64_t));
  }
  n += p.fds.capacity() * sizeof(OpenFilePtr);
  n += p.lwps.capacity() * sizeof(std::unique_ptr<Lwp>);
  n += p.lwps.size() * sizeof(Lwp);
  return n;
}

}  // namespace svr4

#endif  // SVR4PROC_KERNEL_PROCESS_H_
