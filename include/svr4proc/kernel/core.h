// Core dumps: when the default action of a signal is to terminate with a
// core dump ("psig() terminates the process, possibly with a core dump"),
// the kernel writes a post-mortem image — the terminal status structure
// plus every address-space segment — to /tmp/core.<pid>. Debuggers examine
// these offline, the other half of the sdb/dbx workflow the paper's
// interface was built to serve.
#ifndef SVR4PROC_KERNEL_CORE_H_
#define SVR4PROC_KERNEL_CORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "svr4proc/base/result.h"
#include "svr4proc/procfs/types.h"

namespace svr4 {

struct CoreDump {
  static constexpr uint32_t kMagic = 0x45524F43;  // "CORE"

  int32_t sig = 0;       // the terminating signal
  PrStatus status;       // context at the time of death
  PrPsinfo psinfo;

  struct Segment {
    uint32_t vaddr = 0;
    uint32_t mflags = 0;
    std::vector<uint8_t> bytes;
  };
  std::vector<Segment> segments;

  std::vector<uint8_t> Serialize() const;
  static Result<CoreDump> Parse(std::span<const uint8_t> bytes);

  // Reads memory out of the dump; EIO outside any segment (short reads
  // truncate at segment boundaries, mirroring live /proc semantics).
  Result<int64_t> ReadMem(uint32_t vaddr, std::span<uint8_t> buf) const;
};

}  // namespace svr4

#endif  // SVR4PROC_KERNEL_CORE_H_
