// Kernel event tracing and the metrics registry.
//
// KTrace is a bounded, overwriting ring of fixed-size typed records plus a
// registry of monotonic counters and log2-bucketed latency histograms. The
// ring answers "what just happened, in order"; the registry answers "how
// often and how long" without retaining individual events. Both are armed
// independently so the cost of each layer is measurable on its own, and
// both are served through /proc itself (/proc2/kernel/trace,
// /proc2/kernel/metrics, /proc2/<pid>/trace, PIOCKSTAT) — following the
// paper's position that the filesystem is the interface a performance
// monitor should sample.
//
// Cost when disarmed: every emission site is one load + one predicted
// branch (Emit returns immediately), the same discipline as the fault
// injector's null-pointer gates. Nothing is emitted per instruction, so
// the interpreter hot loop carries no tracing code in either template
// stamp.
//
// This header is self-contained (no kernel types) so the vm and fault
// layers can hold a KTrace pointer without a layering inversion.
#ifndef SVR4PROC_KERNEL_KTRACE_H_
#define SVR4PROC_KERNEL_KTRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace svr4 {

class FaultInjector;

// Stable on-the-wire event codes for /proc2/kernel/trace snapshots.
// Append-only; renumbering breaks the record ABI.
enum class KtEvent : uint32_t {
  kNone = 0,
  kSchedSwitch = 1,    // pid/lwpid = incoming; a0 = previous pid, a1 = run-queue depth
  kStop = 2,           // a0 = PrWhy, a1 = what (syscall/signal/fault number)
  kRun = 3,            // a0 = the stop why being cleared
  kSignalPost = 4,     // pid = target; a0 = sig, a1 = posting pid (0 = kernel)
  kSignalDeliver = 5,  // a0 = sig, a1 = handler address (0 = default action)
  kFault = 6,          // a0 = fault code, a1 = faulting vaddr
  kSyscallEntry = 7,   // a0 = syscall number, a1 = first argument
  kSyscallExit = 8,    // a0 = syscall | errno<<16, a1 = entry->exit latency (ticks)
  kCowBreak = 9,       // a0 = page vaddr whose copy-on-write broke
  kTlbFlush = 10,      // a0 = translation generation after the flush
  kFork = 11,          // pid = parent; a0 = child pid, a1 = 1 for vfork
  kExec = 12,          // a0 = new entry point
  kExit = 13,          // a0 = wait status
  kProcOpen = 14,      // pid = target; a0 = opener pid, a1 = 1 if writable
  kProcClose = 15,     // pid = target; a0 = closer pid, a1 = 1 if writable
  kFaultInject = 16,   // a0 = FaultSite, a1 = cumulative fires at that site
  kIpi = 17,           // cross-CPU interrupt charged: a0 = sending cpu,
                       // a1 = target cpu | pending-depth<<16 (smp.h)
};
inline constexpr uint32_t kKtEventCount = 18;

const char* KtEventName(KtEvent e);

// One trace record; the layout is the snapshot ABI. 32 bytes, fields in
// host byte order. kt_cpu (v2) occupies what was v1's always-zero pad
// word, so uniprocessor snapshots are byte-identical across the versions.
struct KtRec {
  uint64_t kt_tick;
  int32_t kt_pid;
  int32_t kt_lwpid;
  uint32_t kt_event;  // KtEvent
  uint32_t kt_a0;
  uint32_t kt_a1;
  uint32_t kt_cpu;    // CPU the kernel was executing for (0 = controller)
};
static_assert(sizeof(KtRec) == 32, "trace record ABI is 32 bytes");

// Snapshot header preceding the records in a /proc2/kernel/trace read.
struct KtSnapHeader {
  uint32_t kt_magic;    // kKtMagic
  uint32_t kt_version;  // kKtVersion (2: kt_pad became kt_cpu, kIpi added)
  uint32_t kt_recsize;  // sizeof(KtRec)
  uint32_t kt_nrec;     // records following this header
  uint64_t kt_total;    // records ever appended (>= kt_nrec before filtering)
  uint64_t kt_dropped;  // appended but overwritten before this snapshot
};
static_assert(sizeof(KtSnapHeader) == 32, "snapshot header ABI is 32 bytes");
inline constexpr uint32_t kKtMagic = 0x4B545243u;  // "CRTK" read LE = "KTRC"
inline constexpr uint32_t kKtVersion = 2;

inline constexpr size_t kKtDefaultCap = 4096;

// Syscall numbering headroom for the per-syscall stats (kMaxSyscall is 200;
// this is part of the PrKstat ABI so it is pinned independently).
inline constexpr int kKtMaxSyscall = 200;

// CPU headroom for the per-CPU scheduler-wait histograms. Mirrors
// smp.h's kMaxCpus without including it (this header stays free of
// kernel types).
inline constexpr int kKtMaxCpus = 64;

// Log2-bucketed histogram: bucket 0 counts zero-valued samples, bucket i>0
// counts samples in [2^(i-1), 2^i); the top bucket absorbs the tail.
struct KtHist {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, 32> bucket{};

  static uint32_t BucketOf(uint64_t v) {
    uint32_t b = 0;
    while (v != 0 && b < 31) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  void Record(uint64_t v) {
    ++count;
    sum += v;
    if (v > max) {
      max = v;
    }
    ++bucket[BucketOf(v)];
  }
  double Mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }

  // Upper bound of the bucket holding quantile q (0 <= q <= 1), capped by
  // the observed max. Log2 buckets bound the answer to within 2x, which is
  // what a latency-attribution readout needs.
  uint64_t Quantile(double q) const {
    if (count == 0) {
      return 0;
    }
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < bucket.size(); ++i) {
      seen += bucket[i];
      if (seen >= rank) {
        uint64_t hi = i == 0 ? 0 : (uint64_t{1} << i) - 1;
        return hi < max ? hi : max;
      }
    }
    return max;
  }
};

struct KtSyscallStat {
  uint64_t calls = 0;
  uint64_t errors = 0;
  KtHist lat;  // entry->exit latency in ticks
};

class KTrace {
 public:
  // tick_src points at the kernel clock and cpu_src at the executing-CPU
  // slot so emission sites (including the vm layer, which has no notion of
  // time or topology) never pass either explicitly.
  explicit KTrace(const uint64_t* tick_src, const int* cpu_src = nullptr,
                  size_t cap = kKtDefaultCap);

  // Arming. The ring and the registry gate independently; Emit() is a
  // single predicted branch when both are off.
  void EnableRing(bool on) {
    ring_on_ = on;
    armed_ = ring_on_ || metrics_on_;
  }
  void EnableMetrics(bool on) {
    metrics_on_ = on;
    armed_ = ring_on_ || metrics_on_;
  }
  bool ring_on() const { return ring_on_; }
  bool metrics_on() const { return metrics_on_; }
  bool armed() const { return armed_; }

  // Appends a record (ring armed) and folds it into the registry (metrics
  // armed). Safe to call disarmed: it is a no-op.
  void Emit(KtEvent e, int32_t pid, int32_t lwpid, uint32_t a0 = 0, uint32_t a1 = 0);

  // Registry-only samples with no ring record.
  void RecordStopWait(uint64_t ticks) {
    if (metrics_on_) {
      stop_wait_.Record(ticks);
    }
  }

  // Scheduler wait accounting: per-CPU enqueue->first-dispatch waits and
  // enqueue->steal latencies, in ticks. Charged to the CPU that dispatched
  // (or stole) the lwp.
  void RecordRunqWait(int cpu, uint64_t ticks) {
    if (metrics_on_ && cpu >= 0 && cpu < kKtMaxCpus) {
      runq_wait_[cpu].Record(ticks);
    }
  }
  void RecordStealLat(int cpu, uint64_t ticks) {
    if (metrics_on_ && cpu >= 0 && cpu < kKtMaxCpus) {
      steal_lat_[cpu].Record(ticks);
    }
  }

  // Serialized snapshot: KtSnapHeader then oldest-first records, optionally
  // filtered to one pid. Returns an empty buffer (a 0-byte file read, not
  // an error) while nothing has ever been appended — a disabled ring reads
  // empty rather than ENOENT.
  std::vector<uint8_t> Snapshot(int32_t pid_filter = -1) const;

  // The registry rendered as text for /proc2/kernel/metrics, one
  // `name value...` line per counter/histogram. The fault injector's
  // per-site eval/fire counters are folded in (from their single home in
  // FaultInjector) so one sampler sees chaos activity too.
  std::string MetricsText(const FaultInjector* finj = nullptr) const;

  // Registry readouts (PIOCKSTAT is built from these).
  uint64_t total() const { return total_; }
  uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  size_t capacity() const { return ring_.size(); }
  uint64_t event_count(KtEvent e) const { return events_[static_cast<uint32_t>(e)]; }
  const KtSyscallStat& syscall_stat(int num) const { return sys_[num]; }
  const KtHist& stop_wait() const { return stop_wait_; }
  const KtHist& runq_depth() const { return runq_depth_; }
  const KtHist& runq_wait(int cpu) const { return runq_wait_[cpu]; }
  const KtHist& steal_lat(int cpu) const { return steal_lat_[cpu]; }

 private:
  const uint64_t* tick_;
  const int* cpu_;  // null = always CPU 0
  bool ring_on_ = false;
  bool metrics_on_ = false;
  bool armed_ = false;

  std::vector<KtRec> ring_;
  uint64_t total_ = 0;  // records ever appended; slot = total_ % cap

  std::array<uint64_t, kKtEventCount> events_{};
  std::array<KtSyscallStat, kKtMaxSyscall> sys_{};
  KtHist stop_wait_;   // PCSTOP request -> all lwps stopped, in ticks
  KtHist runq_depth_;  // sampled at every scheduler switch
  // Wait accounting, per dispatching CPU (kernel.cc stamps the enqueue
  // tick in RunqInsert and harvests it at first dispatch / steal).
  std::array<KtHist, kKtMaxCpus> runq_wait_{};
  std::array<KtHist, kKtMaxCpus> steal_lat_{};
};

}  // namespace svr4

#endif  // SVR4PROC_KERNEL_KTRACE_H_
