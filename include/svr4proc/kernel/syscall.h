// System call numbers, names, and argument counts for the simulated kernel.
//
// The calling convention: syscall number in r0, arguments in r1..r6. On
// return, r0 holds the primary result (r1 a secondary result for fork/wait/
// pipe) with the carry flag clear; on error the carry flag is set and r0
// holds the errno — the classic System V trap convention.
#ifndef SVR4PROC_KERNEL_SYSCALL_H_
#define SVR4PROC_KERNEL_SYSCALL_H_

#include <cstdint>
#include <string_view>

// The host C library defines SYS_* syscall-number macros; this simulated
// kernel has its own numbering. Include the host header here (its include
// guard then makes any later inclusion a no-op) and remove its macros for
// good.
#if __has_include(<sys/syscall.h>)
#include <sys/syscall.h>
#endif
#undef SYS_exit
#undef SYS_fork
#undef SYS_read
#undef SYS_write
#undef SYS_open
#undef SYS_close
#undef SYS_wait
#undef SYS_creat
#undef SYS_unlink
#undef SYS_exec
#undef SYS_time
#undef SYS_brk
#undef SYS_stat
#undef SYS_lseek
#undef SYS_getpid
#undef SYS_setuid
#undef SYS_getuid
#undef SYS_ptrace
#undef SYS_alarm
#undef SYS_pause
#undef SYS_nice
#undef SYS_kill
#undef SYS_setpgrp
#undef SYS_dup
#undef SYS_pipe
#undef SYS_setgid
#undef SYS_getgid
#undef SYS_ioctl
#undef SYS_umask
#undef SYS_setsid
#undef SYS_getpgrp
#undef SYS_getppid
#undef SYS_sleep
#undef SYS_yield
#undef SYS_poll
#undef SYS_sigprocmask
#undef SYS_sigsuspend
#undef SYS_sigreturn
#undef SYS_sigaction
#undef SYS_sigpending
#undef SYS_mmap
#undef SYS_munmap
#undef SYS_mprotect
#undef SYS_vfork
#undef SYS_lwp_create
#undef SYS_lwp_exit
#undef SYS_lwp_self
#undef SYS_otime

namespace svr4 {

class Assembler;

enum Sys : int {
  SYS_exit = 1,
  SYS_fork = 2,
  SYS_read = 3,
  SYS_write = 4,
  SYS_open = 5,
  SYS_close = 6,
  SYS_wait = 7,
  SYS_creat = 8,
  SYS_unlink = 10,
  SYS_exec = 11,
  SYS_time = 13,
  SYS_brk = 17,
  SYS_stat = 18,
  SYS_lseek = 19,
  SYS_getpid = 20,
  SYS_setuid = 23,
  SYS_getuid = 24,
  SYS_ptrace = 26,
  SYS_alarm = 27,
  SYS_pause = 29,
  SYS_nice = 34,
  SYS_kill = 37,
  SYS_setpgrp = 39,
  SYS_dup = 41,
  SYS_pipe = 42,
  SYS_setgid = 46,
  SYS_getgid = 47,
  SYS_ioctl = 54,
  SYS_umask = 60,
  SYS_setsid = 62,
  SYS_getpgrp = 63,
  SYS_getppid = 64,
  SYS_sleep = 65,   // sleep for N clock ticks (interruptible)
  SYS_yield = 66,
  SYS_poll = 87,
  SYS_sigprocmask = 95,
  SYS_sigsuspend = 96,
  SYS_sigreturn = 97,  // private: return from a signal handler
  SYS_sigaction = 98,
  SYS_sigpending = 99,
  SYS_mmap = 115,
  SYS_munmap = 116,
  SYS_mprotect = 117,
  SYS_vfork = 119,
  SYS_lwp_create = 120,
  SYS_lwp_exit = 121,
  SYS_lwp_self = 122,
  // An "older system call" no longer provided by the kernel; the syscall
  // encapsulation example emulates it entirely at user level through /proc,
  // exactly as the paper suggests obsolete facilities could be supported
  // "forever" without cluttering up the operating system.
  SYS_otime = 150,
  kMaxSyscall = 200,  // of up to 512 the set type provides for
};

// Name ("read") for a syscall number; "sys#N" if unknown.
std::string_view SyscallName(int num);
// Returns the syscall number for a name, or 0.
int SyscallByName(std::string_view name);
// Number of arguments the syscall consumes (for prstatus pr_nsysarg).
int SyscallNargs(int num);

// Predefines SYS_* numbers, signal numbers, and common constants (O_RDONLY
// etc.) as assembler symbols so test programs read naturally.
void DefineSyscallSymbols(Assembler& as);

}  // namespace svr4

#endif  // SVR4PROC_KERNEL_SYSCALL_H_
