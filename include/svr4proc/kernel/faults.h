// Deterministic fault injection for the simulated kernel.
//
// A FaultPlan arms named injection sites — the error and lifecycle seams
// that real workloads almost never exercise — with a per-site seed, a fire
// probability expressed as a ratio, and a hit cap. The FaultInjector built
// from a plan makes every decision with a private splitmix64 stream, so a
// given (plan, workload) pair replays identically: every chaos failure is a
// reproducible test case. Sites are wired through the kernel, vm, and fs
// layers behind a branch on a null injector pointer, so a kernel with no
// plan set pays one predicted-not-taken branch per site.
//
// This header is self-contained (no kernel types) so the vm and fs layers
// can hold an injector pointer without a layering inversion.
#ifndef SVR4PROC_KERNEL_FAULTS_H_
#define SVR4PROC_KERNEL_FAULTS_H_

#include <array>
#include <cstdint>
#include <string>

namespace svr4 {

class KTrace;

// Named injection sites. Each maps to one seam:
//   kCopyin / kCopyout  user-memory copies fail with EFAULT
//   kVmMap              AddressSpace::Map fails with ENOMEM
//   kVmGrow             brk growth / automatic stack growth refused
//   kVfsResolve         path resolution fails with EIO
//   kVnodeRead          vnode read path (ReadCommon) fails with EIO
//   kVnodeWrite         vnode write path (WriteCommon) fails with EIO
//   kTlbFlush           whole-TLB invalidation forced before a quantum
//   kSpuriousWakeup     Wakeup(PollChan()) with nothing actually ready
//   kDelayedStop        issig() defers delivery of a pending stop directive
//   kIpiDelay           a CPU's pending cross-CPU interrupts go one more
//                       quantum unacknowledged (models slow IPI delivery;
//                       generation-based invalidation keeps it safe)
//   kPeerDisconnect     a procd peer's transport dies between frames: the
//                       daemon must close every descriptor the peer held
//                       (evaluated once per connected peer per server pump)
enum class FaultSite : int {
  kCopyin = 0,
  kCopyout,
  kVmMap,
  kVmGrow,
  kVfsResolve,
  kVnodeRead,
  kVnodeWrite,
  kTlbFlush,
  kSpuriousWakeup,
  kDelayedStop,
  kIpiDelay,
  kPeerDisconnect,
};
inline constexpr int kFaultSiteCount = 12;

const char* FaultSiteName(FaultSite s);

// How one site fires. Probability is the ratio num/den per evaluation;
// max_hits caps total fires so any armed plan eventually goes quiet and
// workloads terminate (kDelayedStop in particular must not defer forever).
struct FaultRule {
  uint64_t seed = 0;
  uint32_t num = 0;       // fire with probability num/den; 0 disarms
  uint32_t den = 1;
  uint64_t max_hits = 64;
};

class FaultPlan {
 public:
  FaultPlan& Arm(FaultSite s, const FaultRule& r) {
    rules_[static_cast<int>(s)] = r;
    return *this;
  }
  const FaultRule& rule(FaultSite s) const { return rules_[static_cast<int>(s)]; }
  bool AnyArmed() const;

 private:
  std::array<FaultRule, kFaultSiteCount> rules_{};
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  // One deterministic decision for the site; counts the evaluation and, on
  // true, the fire. The caller applies the site's failure.
  bool Fire(FaultSite s);

  const FaultPlan& plan() const { return plan_; }
  uint64_t evals(FaultSite s) const { return state_[static_cast<int>(s)].evals; }
  uint64_t fires(FaultSite s) const { return state_[static_cast<int>(s)].fires; }

  // Text rendering served by /proc2/kernel/faults: one line per armed site.
  std::string Describe() const;

  // Wires the kernel trace ring so every firing emits a FAULT_INJECT
  // record. The eval/fire counters themselves stay here (their single
  // home); the metrics registry renders them from this object.
  void SetKtrace(KTrace* kt) { kt_ = kt; }

 private:
  struct SiteState {
    uint64_t rng = 0;
    uint64_t evals = 0;
    uint64_t fires = 0;
  };

  FaultPlan plan_;
  std::array<SiteState, kFaultSiteCount> state_{};
  KTrace* kt_ = nullptr;
};

}  // namespace svr4

#endif  // SVR4PROC_KERNEL_FAULTS_H_
