// Simulated symmetric multiprocessing: per-CPU scheduler state, seeded work
// stealing, and the cross-CPU interrupt (IPI) protocol.
//
// The kernel models N CPUs. Each CPU owns a run queue (the same circular
// doubly-linked machinery the uniprocessor kernel used, one cursor per CPU)
// and a bank of every address space's software TLB. Correctness never
// depends on IPI delivery — translation and code staleness are prevented by
// the generation counters, which invalidate every bank at once — but the
// shootdown *protocol* is modeled faithfully and observably: whenever an
// address space's translations or cached code are invalidated, an IPI is
// charged to every other CPU whose last-dispatched address space matches,
// emitted as a KtEvent::kIpi trace record, and acknowledged at the target
// CPU's next quantum boundary. PIOCSTOP-style stop directives against an
// lwp homed on another CPU charge a reschedule IPI the same way. The
// invariant checker proves conservation: ipis_sent == ipis_received +
// ipi_pending, summed over CPUs.
//
// Two modes:
//  * kDeterministic (default): the quantum loop in Step() rotates over the
//    CPUs round-robin and executes one quantum at a time on the chosen CPU.
//    Fully deterministic and, at ncpus == 1, bit-identical to the
//    uniprocessor kernel (no extra PRNG draws, no IPIs, no trace changes).
//  * kFreeRun: Step() becomes a bulk-synchronous super-step that runs up to
//    ncpus lwps' *user* instructions on real std::thread workers, then
//    folds results and performs all kernel work serially. Used only when no
//    observation hooks are armed (fault injection, chaos, tracing force the
//    deterministic path, mirroring the block engine's fallback contract).
#ifndef SVR4PROC_KERNEL_SMP_H_
#define SVR4PROC_KERNEL_SMP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace svr4 {

struct Lwp;
class KTrace;

// Upper bound on simulated CPUs (SetNumCpus clamps). Small and fixed so
// per-pick scratch arrays live on the stack.
inline constexpr int kMaxCpus = 64;

enum class SmpMode {
  kDeterministic,  // round-robin CPU stepping from the quantum loop
  kFreeRun,        // std::thread workers execute user chunks in parallel
};

// Per-CPU accounting, exposed through /proc2/kernel/cpus.
struct CpuStats {
  uint64_t quanta = 0;         // quanta dispatched on this CPU
  uint64_t instructions = 0;   // user instructions retired on this CPU
  uint64_t steals = 0;         // lwps this CPU stole from a peer's queue
  uint64_t switches = 0;       // dispatches that changed the running lwp
  uint64_t ipis_sent = 0;      // IPIs charged to other CPUs by work here
  uint64_t ipis_received = 0;  // IPIs acknowledged at quantum boundaries
};

struct CpuState {
  int id = 0;

  // This CPU's run queue: circular doubly-linked list threaded on
  // Lwp::q_prev/q_next (Lwp::cpu names the owning queue), with the same
  // insert-before-cursor FIFO round-robin as the uniprocessor kernel.
  Lwp* runq_next = nullptr;  // rotation cursor; null iff the queue is empty
  size_t runq_len = 0;

  // The address space last dispatched on this CPU — the shootdown targeting
  // state. A real MMU holds live translations for this AS until the next
  // context switch, so invalidations elsewhere must interrupt this CPU.
  const void* cur_as = nullptr;

  // Per-CPU SCHED_SWITCH attribution (trace records) and switch counting
  // (stats; tracked separately so arming the trace ring mid-run cannot
  // change what records a previously-disarmed kernel would emit).
  int32_t last_pid = 0;
  int last_lwpid = 0;
  int32_t sw_pid = 0;
  int sw_lwpid = 0;

  // Seeded per-CPU splitmix64 stream driving victim choice when this CPU's
  // queue drains; reseeded deterministically by SmpState::Resize.
  uint64_t steal_rng = 0;

  // Outstanding cross-CPU interrupts charged to this CPU, acknowledged at
  // its next quantum boundary. Atomic because free-running workers poll it
  // to break out of a user chunk early.
  std::atomic<uint64_t> ipi_pending{0};

  CpuStats stats;

  CpuState() = default;
  CpuState(const CpuState& o) { *this = o; }
  CpuState& operator=(const CpuState& o) {
    id = o.id;
    runq_next = o.runq_next;
    runq_len = o.runq_len;
    cur_as = o.cur_as;
    last_pid = o.last_pid;
    last_lwpid = o.last_lwpid;
    sw_pid = o.sw_pid;
    sw_lwpid = o.sw_lwpid;
    steal_rng = o.steal_rng;
    ipi_pending.store(o.ipi_pending.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    stats = o.stats;
    return *this;
  }
};

// The kernel's CPU set. Owned by Kernel; address spaces hold a pointer so
// translation/code invalidations can charge shootdown IPIs without the VM
// layer seeing the kernel.
class SmpState {
 public:
  SmpState() { Resize(1); }

  int ncpus() const { return static_cast<int>(cpus_.size()); }
  CpuState& cpu(int i) { return cpus_[static_cast<size_t>(i)]; }
  const CpuState& cpu(int i) const { return cpus_[static_cast<size_t>(i)]; }

  SmpMode mode() const { return mode_; }
  void set_mode(SmpMode m) { mode_ = m; }

  // Trace ring for kIpi emission and the CPU the kernel is currently
  // executing a quantum for (0 in controller/idle context). Wired once at
  // kernel construction.
  void SetKtrace(KTrace* kt) { kt_ = kt; }
  void SetCpuSource(const int* src) { cur_cpu_src_ = src; }

  // Resets to n CPUs with deterministically reseeded steal streams. Queue
  // migration is the kernel's job (it owns the lwps); callers must drain
  // and re-insert around this.
  void Resize(int n);

  // Charges a TLB/code shootdown IPI to every CPU other than the currently
  // executing one whose last-dispatched address space is `as`. No-op on a
  // uniprocessor. `pid` stamps the trace record.
  void Shootdown(const void* as, int32_t pid);

  // Charges a reschedule IPI to `target_cpu` (stop directive against an lwp
  // homed there). No-op when target_cpu is the executing CPU.
  void ReschedIpi(int target_cpu, int32_t pid, int lwpid);

  // Acknowledges (and clears) the target CPU's pending IPIs; returns how
  // many were outstanding.
  uint64_t AckIpis(int cpu);

  // Forgets a dying address space wherever it is the shootdown target.
  // Heap reuse could otherwise hand a new space the old address and charge
  // IPIs whose presence depends on allocator layout — nondeterminism.
  void DropAs(const void* as) {
    for (CpuState& c : cpus_) {
      if (c.cur_as == as) {
        c.cur_as = nullptr;
      }
    }
  }

  // Next value of the thief CPU's seeded steal stream.
  uint64_t StealDraw(int cpu);

  uint64_t TotalIpisSent() const;
  uint64_t TotalIpisPending() const;

 private:
  std::vector<CpuState> cpus_;
  SmpMode mode_ = SmpMode::kDeterministic;
  KTrace* kt_ = nullptr;
  const int* cur_cpu_src_ = nullptr;
};

// Persistent worker pool for free-running mode. Threads are started lazily
// on the first dispatch and parked on a condition variable between
// super-steps; Dispatch(n, fn) runs fn(0..n-1) concurrently and returns when
// all have finished (the join is the happens-before edge that lets the
// serial fold read worker results without atomics).
class SmpWorkers {
 public:
  SmpWorkers() = default;
  ~SmpWorkers();

  SmpWorkers(const SmpWorkers&) = delete;
  SmpWorkers& operator=(const SmpWorkers&) = delete;

  void Dispatch(int n, const std::function<void(int)>& fn);

 private:
  void Ensure(int n);
  void WorkerMain(int idx);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* fn_ = nullptr;
  uint64_t seq_ = 0;   // dispatch generation; workers run when it advances
  int nwork_ = 0;      // workers participating in the current dispatch
  int active_ = 0;     // participants still running
  bool stop_ = false;
};

}  // namespace svr4

#endif  // SVR4PROC_KERNEL_SMP_H_
